// Micro-benchmarks (google-benchmark) for the hot kernels and data
// structures: quantization, pooling, caches, order-invariant hashing, Zipf
// sampling, the event loop, and the end-to-end simulated lookup path.
#include <benchmark/benchmark.h>

#include "cache/cpu_optimized_cache.h"
#include "cache/memory_optimized_cache.h"
#include "cache/pooled_cache.h"
#include "common/event_loop.h"
#include "common/rng.h"
#include "core/lookup_engine.h"
#include "core/model_loader.h"
#include "dlrm/mlp.h"
#include "dlrm/model_zoo.h"
#include "embedding/quantization.h"
#include "obs/observability.h"
#include "trace/trace_gen.h"

#include "common/logging.h"

namespace sdm {
namespace {

const bool g_quiet_logs = [] {
  SetLogLevel(LogLevel::kWarn);
  return true;
}();

// ---------------------------------------------------------------------------
// Quantization kernels.
// ---------------------------------------------------------------------------

void BM_QuantizeRow(benchmark::State& state) {
  const auto type = static_cast<DataType>(state.range(0));
  const auto dim = static_cast<uint32_t>(state.range(1));
  Rng rng(1);
  std::vector<float> values(dim);
  for (auto& v : values) v = static_cast<float>(rng.NextDouble(-1, 1));
  std::vector<uint8_t> stored(StoredRowBytes(type, dim));
  for (auto _ : state) {
    QuantizeRow(type, values, stored);
    benchmark::DoNotOptimize(stored.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * dim * 4);
}
BENCHMARK(BM_QuantizeRow)
    ->Args({static_cast<int>(DataType::kInt8Rowwise), 64})
    ->Args({static_cast<int>(DataType::kInt8Rowwise), 256})
    ->Args({static_cast<int>(DataType::kInt4Rowwise), 64})
    ->Args({static_cast<int>(DataType::kFp16), 64});

void BM_DequantizeAccumulate(benchmark::State& state) {
  const auto type = static_cast<DataType>(state.range(0));
  const auto dim = static_cast<uint32_t>(state.range(1));
  Rng rng(2);
  std::vector<float> values(dim);
  for (auto& v : values) v = static_cast<float>(rng.NextDouble(-1, 1));
  std::vector<uint8_t> stored(StoredRowBytes(type, dim));
  QuantizeRow(type, values, stored);
  std::vector<float> acc(dim, 0.0f);
  for (auto _ : state) {
    DequantizeAccumulate(type, stored, acc);
    benchmark::DoNotOptimize(acc.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(stored.size()));
}
BENCHMARK(BM_DequantizeAccumulate)
    ->Args({static_cast<int>(DataType::kInt8Rowwise), 64})
    ->Args({static_cast<int>(DataType::kInt8Rowwise), 256})
    ->Args({static_cast<int>(DataType::kInt4Rowwise), 128})
    ->Args({static_cast<int>(DataType::kFp32), 64});

// ---------------------------------------------------------------------------
// Row caches.
// ---------------------------------------------------------------------------

void BM_CpuOptimizedCacheLookup(benchmark::State& state) {
  CpuOptimizedCacheConfig cfg;
  cfg.capacity = 64 * kMiB;
  CpuOptimizedCache cache(cfg);
  const std::vector<uint8_t> value(72, 1);
  for (uint64_t i = 0; i < 100'000; ++i) {
    cache.Insert(RowKey{MakeTableId(0), i}, value);
  }
  Rng rng(3);
  std::vector<uint8_t> out(72);
  for (auto _ : state) {
    const RowKey key{MakeTableId(0), rng.NextBounded(100'000)};
    size_t len = 0;
    benchmark::DoNotOptimize(cache.Lookup(key, out, &len));
  }
}
BENCHMARK(BM_CpuOptimizedCacheLookup);

void BM_MemoryOptimizedCacheLookup(benchmark::State& state) {
  MemoryOptimizedCacheConfig cfg;
  cfg.capacity = 64 * kMiB;
  cfg.expected_value_bytes = 72;
  MemoryOptimizedCache cache(cfg);
  const std::vector<uint8_t> value(72, 1);
  for (uint64_t i = 0; i < 100'000; ++i) {
    cache.Insert(RowKey{MakeTableId(0), i}, value);
  }
  Rng rng(4);
  std::vector<uint8_t> out(72);
  for (auto _ : state) {
    const RowKey key{MakeTableId(0), rng.NextBounded(100'000)};
    size_t len = 0;
    benchmark::DoNotOptimize(cache.Lookup(key, out, &len));
  }
}
BENCHMARK(BM_MemoryOptimizedCacheLookup);

void BM_CacheInsertEvict(benchmark::State& state) {
  CpuOptimizedCacheConfig cfg;
  cfg.capacity = 4 * kMiB;  // small: every insert evicts at steady state
  CpuOptimizedCache cache(cfg);
  const std::vector<uint8_t> value(72, 1);
  uint64_t i = 0;
  for (auto _ : state) {
    cache.Insert(RowKey{MakeTableId(0), i++}, value);
  }
}
BENCHMARK(BM_CacheInsertEvict);

// ---------------------------------------------------------------------------
// Pooled cache / hashing.
// ---------------------------------------------------------------------------

void BM_OrderInvariantHash(benchmark::State& state) {
  const auto len = static_cast<size_t>(state.range(0));
  Rng rng(5);
  std::vector<RowIndex> indices(len);
  for (auto& i : indices) i = rng.Next();
  for (auto _ : state) {
    benchmark::DoNotOptimize(OrderInvariantHash(indices));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(len));
}
BENCHMARK(BM_OrderInvariantHash)->Arg(8)->Arg(32)->Arg(128);

void BM_PooledCacheLookup(benchmark::State& state) {
  PooledCacheConfig cfg;
  cfg.capacity = 16 * kMiB;
  cfg.len_threshold = 1;
  PooledEmbeddingCache cache(cfg);
  Rng rng(6);
  std::vector<std::vector<RowIndex>> seqs;
  for (int i = 0; i < 1000; ++i) {
    std::vector<RowIndex> seq(20);
    for (auto& s : seq) s = rng.Next();
    cache.Insert(MakeTableId(0), seq, std::vector<float>(64, 1.0f));
    seqs.push_back(std::move(seq));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.Lookup(MakeTableId(0), seqs[i++ % seqs.size()]));
  }
}
BENCHMARK(BM_PooledCacheLookup);

// ---------------------------------------------------------------------------
// Sampling / simulation infrastructure.
// ---------------------------------------------------------------------------

void BM_ZipfSample(benchmark::State& state) {
  ZipfSampler zipf(static_cast<uint64_t>(state.range(0)), 0.9);
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Sample(rng));
  }
}
BENCHMARK(BM_ZipfSample)->Arg(1'000)->Arg(1'000'000);

void BM_FeistelPermute(benchmark::State& state) {
  IndexPermuter perm(1'000'000, 8);
  Rng rng(9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(perm.Permute(rng.NextBounded(1'000'000)));
  }
}
BENCHMARK(BM_FeistelPermute);

void BM_EventLoopScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    EventLoop loop;
    int sink = 0;
    for (int i = 0; i < 1000; ++i) {
      loop.ScheduleAt(SimTime(i * 100), [&sink] { ++sink; });
    }
    loop.RunUntilIdle();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventLoopScheduleRun);

void BM_EventLoopHeavyCallbacks(benchmark::State& state) {
  // Callbacks with out-of-line capture state (a payload buffer, like the
  // fabric response path's): the dequeue must MOVE the std::function out of
  // the heap, not copy it — a copy clones the capture allocation per event.
  for (auto _ : state) {
    EventLoop loop;
    uint64_t sink = 0;
    for (int i = 0; i < 1000; ++i) {
      std::vector<uint8_t> payload(256, static_cast<uint8_t>(i));
      loop.ScheduleAt(SimTime(i * 100),
                      [&sink, payload = std::move(payload)] { sink += payload[0]; });
    }
    loop.RunUntilIdle();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventLoopHeavyCallbacks);

void BM_EventLoopWindowedRun(benchmark::State& state) {
  // The sharded runtime's inner step: drain [G, G+L) windows one lookahead
  // at a time instead of one RunUntilIdle sweep.
  const SimDuration lookahead = Micros(5);
  for (auto _ : state) {
    EventLoop loop;
    int sink = 0;
    for (int i = 0; i < 1000; ++i) {
      loop.ScheduleAt(SimTime(i * 1000), [&sink] { ++sink; });
    }
    while (!loop.idle()) {
      const SimTime g = loop.next_event_time();
      loop.RunWindow(g + lookahead);
    }
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventLoopWindowedRun);

void BM_MlpForward(benchmark::State& state) {
  const std::vector<uint32_t> widths = {64, 256, 256, 64};
  Mlp mlp(widths, LinearLayer::Activation::kRelu, 10);
  std::vector<float> in(64, 0.5f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mlp.Forward(in));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(mlp.flops()));
}
BENCHMARK(BM_MlpForward);

// ---------------------------------------------------------------------------
// End-to-end simulated lookup (wall-clock cost of the simulator itself).
// ---------------------------------------------------------------------------

/// arg 0: observability off (0), metrics only (1), metrics + tracing (2).
/// The CI overhead gate compares 0 vs 2 — the instrumented hot path (one
/// null check per site when off, a handful of counter bumps plus span
/// records when on) must stay within a few percent of the bare path.
void BM_SimulatedLookup(benchmark::State& state) {
  const bool obs_on = state.range(0) != 0;
  EventLoop loop;
  ObsConfig ocfg;
  ocfg.enable_metrics = obs_on;
  ocfg.enable_tracing = state.range(0) >= 2;
  Observability obs(ocfg);
  SdmStoreConfig cfg;
  cfg.fm_capacity = 8 * kMiB;
  cfg.sm_specs = {MakeOptaneSsdSpec()};
  cfg.sm_backing_bytes = {16 * kMiB};
  if (obs_on) {
    cfg.obs = &obs;
    cfg.obs_prefix = "host0/";
  }
  SdmStore store(cfg, &loop);
  const ModelConfig model = MakeTinyUniformModel(16, 2, 1, 2000);
  auto report = ModelLoader::Load(model, {}, &store);
  if (!report.ok()) {
    state.SkipWithError("load failed");
    return;
  }
  LookupEngine engine(&store);
  Rng rng(11);
  for (auto _ : state) {
    LookupRequest req;
    req.table = MakeTableId(0);
    req.indices = {rng.NextBounded(2000), rng.NextBounded(2000), rng.NextBounded(2000)};
    bool done = false;
    engine.Lookup(std::move(req),
                  [&done](Status, std::vector<float>, const LookupTrace&) { done = true; });
    loop.RunUntilIdle();
    benchmark::DoNotOptimize(done);
  }
}
BENCHMARK(BM_SimulatedLookup)->Arg(0)->Arg(1)->Arg(2);

}  // namespace
}  // namespace sdm
