// Speculative prefetch through the BatchScheduler's low-priority lane:
// locality-driven readahead vs the demand-only baseline.
//
// The paper's Fig. 4 shows user-table accesses concentrate in few rows
// (temporal locality) — exactly the regime where a hot-set predictor can
// convert demand SM latency into background bandwidth: re-populate hot
// rows after eviction BEFORE the next demand miss pays device latency for
// them. This bench sweeps Zipf alpha (the Fig. 4 skew axis) x prefetch
// strategy x depth against a row cache deliberately smaller than the hot
// working set, and reports p95 latency, cache/prefetch hit rates, and
// wasted speculative bytes. A final section replays a sequential scan —
// the regime where the kNextBlock stride predictor (classic block-layer
// readahead) wins and kHotSet has nothing to learn.
//
// `--json` emits the perf-trajectory metrics; the headline pair is
// `prefetch_hit_rate` and `p95_reduction_pct` at alpha = 1.0 (the
// high-locality end of Fig. 4's user tables). CI gates the hit rate
// against bench/baselines/prefetch.json.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <vector>

#include "bench_util.h"
#include "common/histogram.h"
#include "core/lookup_engine.h"
#include "core/model_loader.h"
#include "core/sdm_store.h"
#include "trace/trace_gen.h"

using namespace sdm;

namespace {

constexpr int kConcurrency = 8;
constexpr int kBagLen = 16;
constexpr int kWarmupWaves = 60;
constexpr int kMeasuredWaves = 400;
constexpr uint64_t kNumRows = 32768;
constexpr uint32_t kDim = 32;  // fp32: 128B rows, 32 per 4KB block

TableConfig MakeTable(double alpha) {
  TableConfig t;
  t.name = "pf.user";
  t.role = TableRole::kUser;
  t.num_rows = kNumRows;
  t.dim = kDim;
  t.dtype = DataType::kFp32;
  t.avg_pooling_factor = kBagLen;
  t.zipf_alpha = alpha;
  return t;
}

struct RunResult {
  double p95_us = 0;
  double mean_us = 0;
  double row_hit_rate = 0;
  double reads_per_query = 0;
  uint64_t pf_issued = 0;
  double pf_hit_rate = 0;
  uint64_t pf_wasted_kib = 0;
  uint64_t pf_dropped = 0;
};

struct PrefetchMode {
  PrefetchStrategy strategy = PrefetchStrategy::kHotSet;
  int depth = 8;
};

/// Replays `waves` against a fresh store; measurement starts after the
/// warmup waves (caches and predictor at steady state).
RunResult RunWorkload(const TableConfig& table,
                      const std::vector<std::vector<std::vector<RowIndex>>>& waves,
                      std::optional<PrefetchMode> prefetch) {
  EventLoop loop;
  SdmStoreConfig cfg;
  cfg.fm_capacity = 32 * kMiB;
  cfg.sm_specs = {MakeOptaneSsdSpec()};
  cfg.sm_backing_bytes = {table.total_bytes() + kMiB};
  cfg.tuning.coalesce_io = true;
  cfg.tuning.cross_request_batching = true;
  cfg.tuning.max_batch_delay = Micros(10);
  // The row cache holds a fraction of the hot set, so steady-state demand
  // misses exist for speculation to beat (capacity >> hot set would hide
  // the effect behind a ~100% demand hit rate).
  cfg.tuning.row_cache.capacity = 256 * kKiB;
  // Tight §4.1 outstanding-IO budget: with more misses than slots, queries
  // queue for throttle rounds and the latency tail tracks the demand-miss
  // count — the quantity prefetching reduces. (Prefetch reads hold no
  // slots; they are budgeted by prefetch_max_inflight_bytes instead.)
  cfg.tuning.throttle.max_outstanding_per_table = 8;
  cfg.tuning.user_tables_only_on_sm = false;
  if (prefetch.has_value()) {
    cfg.tuning.enable_prefetch = true;
    cfg.tuning.prefetch_strategy = prefetch->strategy;
    cfg.tuning.prefetch_depth = prefetch->depth;
  }
  SdmStore store(cfg, &loop);

  ModelConfig model;
  model.name = "prefetch";
  model.tables = {table};
  if (!ModelLoader::Load(model, {}, &store).ok()) {
    std::fprintf(stderr, "model load failed\n");
    std::abort();
  }
  LookupEngine engine(&store);

  Histogram measured;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t queries = 0;
  uint64_t reads0 = 0;
  PrefetchStats pf0;
  for (size_t w = 0; w < waves.size(); ++w) {
    if (w == kWarmupWaves) {
      reads0 = store.sm_device(0).stats().CounterValue("reads");
      pf0 = store.prefetch_stats();
    }
    const bool count = w >= kWarmupWaves;
    for (const auto& bag : waves[w]) {
      LookupRequest req;
      req.table = MakeTableId(0);
      req.indices = bag;
      engine.Lookup(std::move(req),
                    [&, count](Status s, std::vector<float>, const LookupTrace& t) {
                      if (!s.ok()) std::abort();
                      if (!count) return;
                      measured.Record(t.latency);
                      hits += t.rows_from_cache;
                      misses += t.rows_from_sm;
                      ++queries;
                    });
    }
    loop.RunUntilIdle();
  }

  RunResult r;
  r.p95_us = static_cast<double>(measured.P95()) / 1e3;
  r.mean_us = measured.mean() / 1e3;
  r.row_hit_rate = hits + misses == 0
                       ? 0
                       : static_cast<double>(hits) / static_cast<double>(hits + misses);
  const uint64_t reads1 = store.sm_device(0).stats().CounterValue("reads");
  r.reads_per_query =
      queries == 0 ? 0 : static_cast<double>(reads1 - reads0) / static_cast<double>(queries);
  // Hit rate and waste use whole-run totals (claims are bounded by issues
  // cumulatively; measured-window deltas could claim warmup-issued rows).
  const PrefetchStats pf1 = store.prefetch_stats();
  r.pf_issued = pf1.rows_issued - pf0.rows_issued;
  r.pf_hit_rate = pf1.HitRate();
  r.pf_wasted_kib = pf1.WastedBytes() / kKiB;
  r.pf_dropped = pf1.dropped_rows - pf0.dropped_rows;
  return r;
}

std::vector<std::vector<std::vector<RowIndex>>> ZipfWaves(const TableConfig& table,
                                                          uint64_t seed) {
  TableAccessStream stream(table, seed);
  Rng rng(seed ^ 0x51a3c7b9ULL);
  std::vector<std::vector<std::vector<RowIndex>>> out(kWarmupWaves + kMeasuredWaves);
  for (auto& wave : out) {
    wave.resize(kConcurrency);
    for (auto& bag : wave) {
      bag.reserve(kBagLen);
      for (int k = 0; k < kBagLen; ++k) bag.push_back(stream.Next(rng));
    }
  }
  return out;
}

/// Sequential scan: one reader walking the table in row order (table-dump
/// / model-refresh shape; no row is ever revisited). Single stream so the
/// stride detector sees a clean miss sequence, as block-layer readahead
/// would per file descriptor.
std::vector<std::vector<std::vector<RowIndex>>> ScanWaves(int waves) {
  std::vector<std::vector<std::vector<RowIndex>>> out(waves);
  uint64_t cursor = 0;
  for (auto& wave : out) {
    wave.resize(1);
    for (int k = 0; k < kBagLen; ++k) {
      wave[0].push_back(cursor++ % kNumRows);
    }
  }
  return out;
}

const char* ModeName(const std::optional<PrefetchMode>& m) {
  if (!m.has_value()) return "off";
  return ToString(m->strategy);
}

}  // namespace

int main(int argc, char** argv) {
  bench::QuietLogs quiet;
  bench::JsonReporter json(argc, argv, "prefetch");

  bench::Section(bench::Fmt(
      "speculative prefetch — %llu rows x %uB, bag %d, C=%d, cache 256KiB",
      static_cast<unsigned long long>(kNumRows), kDim * 4, kBagLen, kConcurrency));

  // ---- Zipf alpha x strategy (Fig. 4's temporal-locality axis) ----
  bench::Table t({"alpha", "prefetch", "depth", "p95 us", "mean us", "row hit %",
                  "reads/query", "pf issued", "pf hit %", "waste KiB"});
  double hit_rate_a10 = 0;
  double p95_reduction_a10 = 0;
  for (const double alpha : {0.6, 0.8, 1.0, 1.2}) {
    const TableConfig table = MakeTable(alpha);
    const auto waves = ZipfWaves(table, /*seed=*/1234);
    const RunResult off = RunWorkload(table, waves, std::nullopt);
    t.Row(alpha, "off", 0, off.p95_us, off.mean_us, off.row_hit_rate * 100,
          off.reads_per_query, uint64_t{0}, 0.0, uint64_t{0});
    for (const PrefetchStrategy strategy :
         {PrefetchStrategy::kHotSet, PrefetchStrategy::kNextBlock}) {
      const PrefetchMode mode{strategy, 8};
      const RunResult on = RunWorkload(table, waves, mode);
      t.Row(alpha, ToString(strategy), mode.depth, on.p95_us, on.mean_us,
            on.row_hit_rate * 100, on.reads_per_query, on.pf_issued,
            on.pf_hit_rate * 100, on.pf_wasted_kib);
      const double reduction =
          off.p95_us == 0 ? 0 : (off.p95_us - on.p95_us) / off.p95_us * 100;
      if (strategy == PrefetchStrategy::kHotSet) {
        const std::string a = bench::Fmt("a%.1f", alpha);
        json.Metric(a + "_hot_set_hit_rate", on.pf_hit_rate);
        json.Metric(a + "_p95_off_us", off.p95_us);
        json.Metric(a + "_p95_hot_set_us", on.p95_us);
        json.Metric(a + "_p95_reduction_pct", reduction);
        if (alpha == 1.0) {
          hit_rate_a10 = on.pf_hit_rate;
          p95_reduction_a10 = reduction;
        }
      }
    }
  }
  t.Print();
  bench::Note(bench::Fmt(
      "alpha=1.0 hot-set: prefetch hit rate %.1f%%, p95 %.1f%% lower than no-prefetch",
      hit_rate_a10 * 100, p95_reduction_a10));

  // ---- Depth sweep at the Fig. 4 high-locality point ----
  bench::Section("depth sweep — alpha 1.0, hot_set");
  bench::Table d({"depth", "p95 us", "row hit %", "pf issued", "pf hit %", "waste KiB",
                  "dropped rows"});
  {
    const TableConfig table = MakeTable(1.0);
    const auto waves = ZipfWaves(table, /*seed=*/1234);
    for (const int depth : {4, 8, 16, 64}) {
      const RunResult on = RunWorkload(table, waves, PrefetchMode{PrefetchStrategy::kHotSet, depth});
      d.Row(depth, on.p95_us, on.row_hit_rate * 100, on.pf_issued, on.pf_hit_rate * 100,
            on.pf_wasted_kib, on.pf_dropped);
      json.Metric(bench::Fmt("depth%d_hit_rate", depth), on.pf_hit_rate);
    }
  }
  d.Print();

  // ---- Sequential scan: the stride predictor's regime ----
  bench::Section("sequential scan — one stream in row order (no reuse, pure stride)");
  bench::Table s({"prefetch", "p95 us", "mean us", "row hit %", "pf issued", "pf hit %"});
  {
    const TableConfig table = MakeTable(0.0);
    const auto waves = ScanWaves(kWarmupWaves + kMeasuredWaves);
    for (const auto& mode : std::vector<std::optional<PrefetchMode>>{
             std::nullopt, PrefetchMode{PrefetchStrategy::kHotSet, 8},
             PrefetchMode{PrefetchStrategy::kNextBlock, 8}}) {
      const RunResult r = RunWorkload(table, waves, mode);
      s.Row(ModeName(mode), r.p95_us, r.mean_us, r.row_hit_rate * 100, r.pf_issued,
            r.pf_hit_rate * 100);
      if (mode.has_value() && mode->strategy == PrefetchStrategy::kNextBlock) {
        json.Metric("scan_next_block_hit_rate", r.pf_hit_rate);
        json.Metric("scan_next_block_row_hit_rate", r.row_hit_rate);
      }
    }
  }
  s.Print();

  // Headline pair for the CI gate and the perf trajectory.
  json.Metric("prefetch_hit_rate", hit_rate_a10);
  json.Metric("p95_reduction_pct", p95_reduction_a10);

  bench::Note("");
  bench::Note("paper tie-in: Fig. 4's temporal skew is what makes hot-set readahead pay —");
  bench::Note("the decayed top-K re-fills evicted hot rows from background bandwidth, so");
  bench::Note("demand finds them in FM. Fig. 5's low spatial locality is why next_block");
  bench::Note("readahead only wins on scan-shaped workloads. Speculation rides the");
  bench::Note("BatchScheduler's low-priority lane: byte-budgeted, dropped under pressure,");
  bench::Note("promoted to demand on overlap (TuningConfig::enable_prefetch).");
  return 0;
}
