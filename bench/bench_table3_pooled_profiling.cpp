// Table 3 reproduction: pooled-embedding subsequence profiling.
//
// Paper profiles 100M queries for repeating index (sub)sequences:
//   c=10              : hit 26%, but O(C(avgP,10)) generated subsequences
//   c=10, top indices : hit 19%, O(100) sequences
//   c=P (full)        : hit  5%, exactly 1 sequence per request
// Only c=P is cheap enough to exploit (Algorithm 1). We profile a scaled
// query stream the same three ways.
#include <algorithm>
#include <cstdio>
#include <unordered_set>

#include "bench_util.h"
#include "cache/pooled_cache.h"
#include "dlrm/model_zoo.h"
#include "trace/trace_gen.h"

using namespace sdm;

namespace {

constexpr int kQueries = 60'000;
constexpr int kSubseqLen = 10;  // the paper's c=10

uint64_t HashSeq(std::span<const RowIndex> seq) { return OrderInvariantHash(seq); }

}  // namespace

int main() {
  bench::QuietLogs quiet;
  ModelConfig model = MakeTinyUniformModel(16, 4, 0, 50'000);
  // Pooling factors around the paper's user averages so len(indices) > 10.
  for (auto& t : model.tables) t.avg_pooling_factor = 20;

  WorkloadConfig w;
  w.num_users = 15'000;  // user repeat probability ~ pooled hit opportunity
  w.user_zipf_alpha = 0.85;
  w.user_index_churn = 0.12;
  w.seed = 33;
  QueryGenerator gen(model, w);

  // Profile table 0's operator across queries.
  uint64_t hit_full = 0;
  uint64_t hit_sub10 = 0;
  uint64_t hit_sub10_top = 0;
  uint64_t sub10_generated = 0;
  uint64_t sub10_top_generated = 0;

  std::unordered_set<uint64_t> full_seen;
  std::unordered_set<uint64_t> sub10_seen;
  std::unordered_set<uint64_t> sub10_top_seen;

  // "Top indices": restrict c=10 subsequences to the globally hottest rows
  // of the generator's own table-0 stream.
  std::unordered_set<RowIndex> top_rows;
  for (uint64_t r = 0; r < 400; ++r) top_rows.insert(gen.stream(0).IndexAtRank(r));

  for (int q = 0; q < kQueries; ++q) {
    const Query query = gen.Next();
    const auto& idx = query.indices[0];

    // c = P: one key per request.
    const uint64_t full = HashSeq(idx);
    if (full_seen.contains(full)) {
      ++hit_full;
    } else {
      full_seen.insert(full);
    }

    if (idx.size() >= kSubseqLen) {
      // c = 10: a sliding-window sample of the combinatorial space (the
      // paper notes enumerating C(P,10) is prohibitive; it also sampled).
      std::vector<RowIndex> sorted(idx.begin(), idx.end());
      std::sort(sorted.begin(), sorted.end());
      bool any_hit = false;
      for (size_t s = 0; s + kSubseqLen <= sorted.size(); ++s) {
        const std::span<const RowIndex> window(sorted.data() + s, kSubseqLen);
        const uint64_t h = HashSeq(window);
        ++sub10_generated;
        if (sub10_seen.contains(h)) {
          any_hit = true;
        } else {
          sub10_seen.insert(h);
        }
      }
      if (any_hit) ++hit_sub10;

      // c = 10 over top indices only.
      std::vector<RowIndex> tops;
      for (const RowIndex r : sorted) {
        if (top_rows.contains(r)) tops.push_back(r);
      }
      if (tops.size() >= kSubseqLen) {
        const std::span<const RowIndex> window(tops.data(), kSubseqLen);
        const uint64_t h = HashSeq(window);
        ++sub10_top_generated;
        if (sub10_top_seen.contains(h)) {
          ++hit_sub10_top;
        } else {
          sub10_top_seen.insert(h);
        }
      }
    }
  }

  bench::Section("Table 3 — pooled-embedding subsequence profiling");
  bench::Table t({"Scheme", "Hit rate %", "Generated sequences", "paper"});
  t.Row("c=10 (windowed sample)", 100.0 * hit_sub10 / kQueries,
        bench::Fmt("%.1f per query", static_cast<double>(sub10_generated) / kQueries),
        "26% / O(C(avgP,10))");
  t.Row("c=10, top indices", 100.0 * hit_sub10_top / kQueries,
        bench::Fmt("%.2f per query", static_cast<double>(sub10_top_generated) / kQueries),
        "19% / O(100)");
  t.Row("c=P (full sequence)", 100.0 * hit_full / kQueries, "1 per query", "5% / 1");
  t.Print();
  bench::Note("paper shape: shorter subsequences repeat more often but the candidate");
  bench::Note("space explodes; the full sequence (c=P) repeats a few percent of the time");
  bench::Note("at O(1) overhead — the only scheme cheap enough to serve (Algorithm 1).");
  return 0;
}
