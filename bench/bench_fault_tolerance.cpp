// Chaos bench: a 4-host disaggregated cluster rides out a scripted fault
// storm — a 1% media error burst, a 10x fail-slow window, and a full
// fabric partition — with and without the serving-side fault responses
// (IO deadlines, backoff retries, adaptive hedging, health-monitor
// shedding, graceful zero-fill degradation).
//
// Four legs:
//   storm/ablation   responses OFF: the storm is absorbed only by blocking
//                    retries; the partition parks reads until it heals.
//   storm/responses  responses ON: deadlines unwedge partition-parked
//                    reads, hedges duck the fail-slow window, exhausted
//                    retries degrade to zero-filled rows instead of
//                    failing queries.
//   self-healing     an error burst sickens one device, the Replication-
//                    Manager re-replicates its extents mid-run, then a
//                    long bit-rot storm rots every primary read: detect-
//                    only zero-fills those rows, healing serves them from
//                    the replica.
//   fault-free       the same cluster with no injector vs an installed
//                    empty-plan injector — reports must be byte-identical
//                    (the injector's hooks are provably inert when idle).
//
// `--json` emits availability_pct, degraded-row accounting, the rescued
// fraction of would-be-zero-filled rows, the identity bit, and the p99
// cut responses deliver vs the ablation; CI gates these against
// bench/baselines/fault.json.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>

#include "bench_util.h"
#include "dlrm/model_zoo.h"
#include "fault/fault_injector.h"
#include "serving/cluster.h"

using namespace sdm;

namespace {

constexpr size_t kHosts = 4;
constexpr double kTotalQps = 400;
constexpr uint64_t kStormQueries = 4000;  // ~10s virtual: storm fits inside

/// Capacity-bound shared-device profile (the disaggregated bench's), plus
/// the fault-response knobs when `responses` is on.
HostSimConfig StormHostConfig(bool responses) {
  HostSimConfig cfg;
  cfg.host = MakeHwFAO(2);
  cfg.fm_capacity = 4 * kMiB;
  cfg.sm_backing_per_device = 32 * kMiB;
  cfg.workload.num_users = 2000;
  cfg.workload.seed = 11;
  cfg.seed = 11;
  cfg.tuning.sub_block_reads = false;
  cfg.tuning.enable_row_cache = false;
  cfg.tuning.max_batch_delay = Micros(200);
  cfg.tuning.fabric_latency = Micros(5);
  cfg.inference.max_concurrent_queries = 32;
  if (responses) {
    cfg.tuning.io_deadline = Millis(2);
    cfg.tuning.retry_backoff_base = Micros(20);
    cfg.tuning.hedge_latency_factor = 2.0;
    cfg.tuning.hedge_min_samples = 64;
    cfg.tuning.enable_health_monitor = true;
  }
  return cfg;
}

ModelConfig StormModel() {
  ModelConfig model = MakeTinyUniformModel(64, 3, 1, 40'000);
  model.tables.back().num_rows = 4'000;  // item side stays FM-direct
  return model;
}

/// The scripted storm, phased across a ~10s run: error burst early, a
/// fail-slow device mid-run, a fabric partition late.
FaultPlan StormPlan(SimTime t0) {
  FaultPlan plan;
  plan.ErrorBurst(t0 + Millis(500), t0 + Millis(8000), /*probability=*/0.01)
      .FailSlow(t0 + Millis(2000), t0 + Millis(3000), /*multiplier=*/10.0,
                /*device=*/0)
      .FabricPartition(t0 + Millis(5000), t0 + Millis(5200));
  return plan;
}

struct LegResult {
  DisaggregatedRunReport report;
  uint64_t completed = 0;
  uint64_t served = 0;
  double availability_pct = 0;
  double p99_ms = 0;  // worst host
  uint64_t degraded = 0;
  uint64_t rows_failed = 0;
};

/// Writes an export artifact; fatal on failure so CI never uploads an
/// empty file silently.
void WriteDoc(const std::string& path, const std::string& doc) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fwrite(doc.data(), 1, doc.size(), f);
  std::fclose(f);
}

/// With `trace_out` set, the run carries full-fat observability (metrics,
/// per-query tracing, SLO watchdogs on p99 and degraded queries) and writes
/// the Chrome trace to `trace_out` plus `.metrics.json` / `.slo.json`
/// siblings — the CI artifact leg, and a live check that instrumenting the
/// storm does not move a single counter.
LegResult RunStorm(bool responses, const std::string* trace_out = nullptr) {
  DisaggregatedConfig dc;
  dc.enabled = true;
  HostSimConfig cfg = StormHostConfig(responses);
  if (trace_out != nullptr) {
    cfg.tuning.obs.enable_metrics = true;
    cfg.tuning.obs.enable_tracing = true;
    SloRule p99;
    p99.name = "storm-p99";
    p99.metric = "host0/query/latency_ns";
    p99.stat = SloRule::Stat::kP99;
    p99.op = SloRule::Op::kAbove;
    p99.threshold = static_cast<double>(Millis(2).nanos());
    p99.for_windows = 3;
    SloRule degraded;
    degraded.name = "degraded-queries";
    degraded.metric = "host0/query/degraded";
    degraded.stat = SloRule::Stat::kValue;
    degraded.op = SloRule::Op::kAbove;
    degraded.threshold = 0;
    cfg.tuning.obs.slo_rules = {p99, degraded};
  }
  ClusterSimulation cluster(kHosts, cfg, RoutingPolicy::kLocal, dc);
  Status st = cluster.LoadModel(StormModel());
  if (!st.ok()) {
    std::fprintf(stderr, "LoadModel: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  EventLoop* loop = cluster.host_store(0).loop();
  FaultInjector injector(StormPlan(loop->Now()), loop, /*seed=*/2024);
  cluster.fabric_service()->InstallFaultInjector(&injector);

  LegResult leg;
  leg.report = cluster.RunDisaggregated(kTotalQps, kStormQueries);
  if (trace_out != nullptr) {
    WriteDoc(*trace_out, cluster.ObsTraceJson());
    WriteDoc(*trace_out + ".metrics.json", cluster.ObsMetricsJson());
    WriteDoc(*trace_out + ".slo.json", cluster.ObsSloJson());
  }
  for (const auto& h : leg.report.hosts) {
    leg.completed += h.run.queries_completed;
    leg.served += h.run.queries_served;
    leg.degraded += h.run.queries_degraded;
    leg.rows_failed += h.run.rows_failed;
    leg.p99_ms = std::max(leg.p99_ms, h.run.p99.nanos() / 1e6);
  }
  leg.availability_pct =
      leg.served == 0 ? 0 : 100.0 * static_cast<double>(leg.completed) /
                                static_cast<double>(leg.served);
  return leg;
}

/// Tail-rescue leg: hedging ALONE (no deadline, no faults) against a
/// tail-heavy device — 0.5% of reads run 20x slow, the regime hedging
/// targets. In the storm above deadlines dominate (a uniformly slowed
/// device gives a hedge nothing faster to race), so hedging's own p99
/// contribution is measured here.
HostRunReport RunTailLeg(bool hedge) {
  HostSimConfig cfg;
  cfg.host = MakeHwAO();
  for (auto& ssd : cfg.host.ssds) {
    ssd.tail_probability = 0.005;
    ssd.tail_multiplier = 20.0;
  }
  cfg.fm_capacity = 8 * kMiB;
  cfg.sm_backing_per_device = 16 * kMiB;
  cfg.workload.num_users = 1000;
  cfg.workload.seed = 5;
  cfg.seed = 5;
  // Row cache off: every lookup reads SM, so a query sees several chances
  // at the read tail and the tail crosses query-level p99.
  cfg.tuning.enable_row_cache = false;
  if (hedge) {
    cfg.tuning.hedge_latency_factor = 2.0;
    cfg.tuning.hedge_min_samples = 64;
  }
  HostSimulation sim(cfg);
  Status st = sim.LoadModel(MakeTinyUniformModel(16, 2, 1, 2000));
  if (!st.ok()) {
    std::fprintf(stderr, "LoadModel: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  return sim.Run(200, 2000);
}

/// Self-healing leg, single host (2 Optane SSDs, one user table per
/// device). A total error burst sickens device 0 early; with healing ON
/// the ReplicationManager re-replicates its extent onto device 1 (copy
/// chunks backoff-retry past the burst's end), and the long bit-rot
/// storm that follows — every device-0 read corrupt for the rest of the
/// run — is served from the replica instead of zero-filling. Detect-only
/// (checksums, no healing) measures the would-be-zero-filled rows.
HostRunReport RunHealLeg(bool heal) {
  HostSimConfig cfg;
  cfg.host = MakeHwAO();
  cfg.fm_capacity = 8 * kMiB;
  cfg.sm_backing_per_device = 16 * kMiB;
  cfg.workload.num_users = 1000;
  cfg.workload.seed = 5;
  cfg.seed = 5;
  // Checksums verify whole 4KB blocks at bounce-buffer fill; sub-block
  // SGL reads would sail past them. Row cache off so every lookup reads
  // SM and meets the rot.
  cfg.tuning.enable_checksums = true;
  cfg.tuning.sub_block_reads = false;
  cfg.tuning.enable_row_cache = false;
  // Both legs share the retry schedule (fair ablation). 150ms backoff
  // puts a copy chunk's third attempt past the burst's end, so the
  // replica lands while the endpoint is still sick.
  cfg.tuning.retry_backoff_base = Millis(150);
  if (heal) {
    cfg.tuning.enable_health_monitor = true;
    cfg.tuning.enable_replication = true;
  }
  HostSimulation sim(cfg);
  Status st = sim.LoadModel(MakeTinyUniformModel(16, 2, 1, 2000));
  if (!st.ok()) {
    std::fprintf(stderr, "LoadModel: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  const SimTime t0 = sim.loop().Now();
  FaultPlan plan;
  plan.ErrorBurst(t0 + Millis(500), t0 + Millis(1000), /*probability=*/1.0,
                  /*device=*/0)
      .BitRot(t0 + Millis(2000), t0 + Millis(29'500), /*probability=*/1.0,
              /*device=*/0);
  FaultInjector injector(plan, &sim.loop(), /*seed=*/77);
  sim.store().device_service().InstallFaultInjector(&injector);
  return sim.Run(200, 6000);  // ~30s virtual: the storm fits inside
}

/// One fault-free run; with `install_empty`, an empty-plan injector is
/// installed across the whole device stack first. Returns every report
/// summary concatenated — the byte-identity comparator.
std::string FaultFreeFingerprint(bool install_empty) {
  DisaggregatedConfig dc;
  dc.enabled = true;
  ClusterSimulation cluster(kHosts, StormHostConfig(/*responses=*/true),
                            RoutingPolicy::kLocal, dc);
  Status st = cluster.LoadModel(StormModel());
  if (!st.ok()) {
    std::fprintf(stderr, "LoadModel: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  std::unique_ptr<FaultInjector> injector;
  if (install_empty) {
    injector = std::make_unique<FaultInjector>(
        FaultPlan(), cluster.host_store(0).loop(), /*seed=*/99);
    cluster.fabric_service()->InstallFaultInjector(injector.get());
  }
  const DisaggregatedRunReport r =
      cluster.RunDisaggregated(kTotalQps, kStormQueries / 4);
  std::string fp = r.Summary();
  for (const auto& h : r.hosts) {
    fp += "\n";
    fp += h.run.Summary();
  }
  return fp;
}

}  // namespace

int main(int argc, char** argv) {
  bench::QuietLogs quiet;
  bench::JsonReporter json(argc, argv, "fault_tolerance");
  std::string trace_out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--trace-out=", 0) == 0) trace_out = arg.substr(12);
  }

  bench::Section("Fault storm: 1% error burst + 10x fail-slow + fabric partition");
  const LegResult ablation = RunStorm(/*responses=*/false);
  const LegResult responses = RunStorm(/*responses=*/true);

  if (!trace_out.empty()) {
    bench::Section("Traced storm: Chrome trace / metrics / SLO artifacts");
    const LegResult traced = RunStorm(/*responses=*/true, &trace_out);
    // Observability must be timing-inert under the storm too: the traced
    // rerun has to reproduce the untraced leg counter for counter.
    if (traced.completed != responses.completed ||
        traced.degraded != responses.degraded ||
        traced.rows_failed != responses.rows_failed ||
        traced.p99_ms != responses.p99_ms) {
      std::fprintf(stderr, "traced storm diverged from untraced storm\n");
      return 1;
    }
    bench::Note(bench::Fmt("wrote %s (+.metrics.json, +.slo.json); "
                           "traced run matched untraced counters",
                           trace_out.c_str()));
  }

  bench::Table t({"leg", "completed", "availability%", "p99 ms", "degraded",
                  "rows zero-filled", "deadline", "hedges won", "shed"});
  const auto row = [&](const char* name, const LegResult& leg) {
    t.Row(name, leg.completed, bench::Fmt("%.3f", leg.availability_pct),
          bench::Fmt("%.3f", leg.p99_ms), leg.degraded, leg.rows_failed,
          leg.report.io.deadline_expired, leg.report.io.hedges_won,
          bench::Fmt("%llu", (unsigned long long)(
                                 leg.served - leg.completed)));
  };
  row("no responses", ablation);
  row("responses on", responses);
  t.Print();

  const double p99_cut_pct =
      ablation.p99_ms <= 0
          ? 0
          : 100.0 * (ablation.p99_ms - responses.p99_ms) / ablation.p99_ms;
  bench::Note(bench::Fmt(
      "deadlines+hedging cut storm p99 %.3fms -> %.3fms (%.1f%%)",
      ablation.p99_ms, responses.p99_ms, p99_cut_pct));
  bench::Note(bench::Fmt(
      "fabric: %llu transfers rode out the partition; %llu reads expired",
      (unsigned long long)responses.report.fabric.partition_deferred,
      (unsigned long long)responses.report.io.deadline_expired));

  bench::Section("Tail rescue: hedging alone vs a 0.5% 20x-slow read tail");
  const HostRunReport tail_off = RunTailLeg(false);
  const HostRunReport tail_on = RunTailLeg(true);
  const double tail_off_p99_us = tail_off.p99.nanos() / 1e3;
  const double tail_on_p99_us = tail_on.p99.nanos() / 1e3;
  const double hedge_p99_cut_pct =
      tail_off_p99_us <= 0
          ? 0
          : 100.0 * (tail_off_p99_us - tail_on_p99_us) / tail_off_p99_us;
  bench::Note(bench::Fmt(
      "hedging cut p99 %.1fus -> %.1fus (%.1f%%); %llu/%llu hedges won",
      tail_off_p99_us, tail_on_p99_us, hedge_p99_cut_pct,
      (unsigned long long)tail_on.hedges_won,
      (unsigned long long)tail_on.hedges_issued));

  bench::Section("Self-healing: error burst sickens a device, bit rot storms it");
  const HostRunReport detect = RunHealLeg(/*heal=*/false);
  const HostRunReport healed = RunHealLeg(/*heal=*/true);
  bench::Table ht({"leg", "completed", "availability%", "corrupt blocks",
                   "rows zero-filled", "replica reads", "repairs",
                   "extents replicated"});
  const auto heal_row = [&](const char* name, const HostRunReport& r) {
    const double avail =
        r.queries_served == 0
            ? 0
            : 100.0 * static_cast<double>(r.queries_completed) /
                  static_cast<double>(r.queries_served);
    ht.Row(name, r.queries_completed, bench::Fmt("%.3f", avail),
           r.blocks_corrupt, r.rows_failed, r.replica_reads, r.read_repairs,
           r.extents_replicated);
    return avail;
  };
  heal_row("detect only", detect);
  const double heal_availability_pct = heal_row("self-healing", healed);
  ht.Print();
  const double rows_rescued_pct =
      detect.rows_failed == 0
          ? 0
          : 100.0 * (1.0 - static_cast<double>(healed.rows_failed) /
                               static_cast<double>(detect.rows_failed));
  bench::Note(bench::Fmt(
      "replication + read-repair rescued %.1f%% of %llu would-be-zero-filled "
      "rows (%llu still zero-filled)",
      rows_rescued_pct, (unsigned long long)detect.rows_failed,
      (unsigned long long)healed.rows_failed));

  bench::Section("Fault-free byte-identity (empty-plan injector installed)");
  const bool identical =
      FaultFreeFingerprint(false) == FaultFreeFingerprint(true);
  bench::Note(identical ? "identical: installing an idle injector changes nothing"
                        : "MISMATCH: idle injector perturbed the simulation");

  json.Metric("availability_pct", responses.availability_pct);
  json.Metric("queries_degraded", responses.degraded);
  json.Metric("rows_failed", responses.rows_failed);
  json.Metric("deadline_expired", responses.report.io.deadline_expired);
  json.Metric("hedges_issued", responses.report.io.hedges_issued);
  json.Metric("hedges_won", tail_on.hedges_won);
  json.Metric("hedge_p99_cut_pct", hedge_p99_cut_pct);
  json.Metric("partition_deferred", responses.report.fabric.partition_deferred);
  json.Metric("p99_ablation_ms", ablation.p99_ms);
  json.Metric("p99_responses_ms", responses.p99_ms);
  json.Metric("p99_cut_pct", p99_cut_pct);
  json.Metric("heal_availability_pct", heal_availability_pct);
  json.Metric("rows_rescued_pct", rows_rescued_pct);
  json.Metric("detect_rows_failed", detect.rows_failed);
  json.Metric("heal_blocks_corrupt", healed.blocks_corrupt);
  json.Metric("heal_replica_reads", healed.replica_reads);
  json.Metric("heal_extents_replicated", healed.extents_replicated);
  json.Metric("fault_free_identical", identical ? 1 : 0);
  return identical ? 0 : 1;
}
