// Table 10 reproduction: SDM-based hardware sizing for the future model M3
// (§5.3) — how many Optane SSDs the user-embedding IOPS demand requires.
//
// Paper row: QPS 3150, 2000 user tables, PF 30, emb dim 512, hit rate 80%
// -> 36 MIOPS -> 9 Optane SSDs (4 MIOPS each).
#include <cstdio>

#include "bench_util.h"
#include "common/event_loop.h"
#include "io/io_engine.h"
#include "serving/power_model.h"

using namespace sdm;

namespace {

/// Validates the "4 MIOPS per Optane SSD" assumption against the device
/// model: saturate one simulated device with 512B reads.
double MeasuredOptaneMiops() {
  EventLoop loop;
  NvmeDevice dev(MakeOptaneSsdSpec(), 8 * kMiB, &loop, 10);
  std::vector<uint8_t> init(8 * kMiB, 1);
  (void)dev.Write(0, init);
  IoEngineConfig cfg;
  cfg.queue_depth = 1024;
  cfg.completion_mode = CompletionMode::kPolling;
  IoEngine engine(&dev, &loop, cfg);
  Rng rng(11);
  const int kIos = 200'000;
  std::vector<uint8_t> buf(512);
  uint64_t done = 0;
  for (int i = 0; i < kIos; ++i) {
    const Bytes offset = rng.NextBounded(8 * kMiB / 512 - 1) * 512;
    engine.SubmitRead(offset, 512, true, buf, [&](Status, SimDuration) { ++done; });
  }
  loop.RunUntilIdle();
  return static_cast<double>(done) / loop.Now().seconds() / 1e6;
}

}  // namespace

int main() {
  bench::QuietLogs quiet;

  bench::Section("device validation — one simulated Optane SSD, 512B random reads");
  const double miops = MeasuredOptaneMiops();
  bench::Note(bench::Fmt("saturated throughput: %.2f MIOPS (Table 1 rating: 4.0)", miops));

  bench::Section("Table 10 — M3 SM sizing (roofline, paper parameters)");
  bench::Table t({"Model", "QPS", "User tables", "PF", "Emb dim", "Hit rate",
                  "MIOPS", "numSSDs"});
  SsdSizingInput in;
  in.qps = 3150;
  in.user_tables = 2000;
  in.avg_pooling = 30;
  in.cache_hit_rate = 0.80;
  in.per_ssd_iops = 4e6;
  const SsdSizingResult r = ComputeSsdRequirement(in);
  t.Row("M3", in.qps, in.user_tables, in.avg_pooling, 512,
        bench::Fmt("%.0f%%", in.cache_hit_rate * 100), r.required_iops / 1e6,
        r.ssds_needed);
  t.Print();
  bench::Note("paper: 36 MIOPS -> 9 SSDs (3150*2000*30*0.2 = 37.8M exact; the paper");
  bench::Note("rounds to 36). Our exact math gives 37.8 MIOPS -> 10 SSDs at 4M each;");
  bench::Note("with the paper's rounded 36 MIOPS figure: 9 SSDs.");

  bench::Section("sensitivity — SSDs needed vs cache hit rate");
  bench::Table s({"hit rate %", "MIOPS", "numSSDs"});
  for (const double hit : {0.0, 0.5, 0.7, 0.8, 0.9, 0.95}) {
    SsdSizingInput i2 = in;
    i2.cache_hit_rate = hit;
    const SsdSizingResult r2 = ComputeSsdRequirement(i2);
    s.Row(hit * 100, r2.required_iops / 1e6, r2.ssds_needed);
  }
  s.Print();
  bench::Note("the FM cache is what makes SM-based serving of M3-class models viable:");
  bench::Note("without it the raw 189 MIOPS would need ~48 SSDs per host.");
  return 0;
}
