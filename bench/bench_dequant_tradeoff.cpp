// Appendix A.5 reproduction: de-quantization at load time.
//
// Paper: storing fp32 rows in SM saves run-time dequantization CPU, but
// each cached row is ~4x bigger, so the FM cache holds fewer rows. "While
// under very CPU bound usecases dequantization could help, but for most of
// the usecases the impact on cache is dominant and does not lead to
// benefit."
#include <cstdio>

#include "bench_util.h"
#include "dlrm/model_zoo.h"
#include "serving/host.h"

using namespace sdm;

namespace {

struct VariantResult {
  HostRunReport report;
  double cpu_us_per_query;
  Bytes row_bytes;
};

VariantResult Run(bool dequant_at_load, Bytes fm_capacity, double dequant_bytes_per_sec) {
  ModelConfig model = MakeTinyUniformModel(64, 4, 1, 30'000);
  HostSimConfig cfg;
  cfg.host = MakeHwAO();
  cfg.fm_capacity = fm_capacity;
  cfg.sm_backing_per_device = 128 * kMiB;
  cfg.tuning.dequantize_at_load = dequant_at_load;
  cfg.workload.num_users = 4000;
  cfg.workload.user_index_churn = 0.04;
  cfg.workload.seed = 25;
  cfg.seed = 25;
  HostSimulation sim(cfg);
  if (Status s = sim.LoadModel(model); !s.ok()) {
    std::fprintf(stderr, "load failed: %s\n", s.ToString().c_str());
    return {};
  }
  // Model the CPU-boundness knob through the dequant kernel throughput.
  sim.engine().lookups().cost_model().dequant_bytes_per_sec = dequant_bytes_per_sec;
  sim.Warmup(5000);
  VariantResult v;
  v.report = sim.Run(250, 2000);
  v.cpu_us_per_query = v.report.avg_cpu_per_query.micros();
  v.row_bytes = sim.store().table(MakeTableId(0)).config.row_bytes();
  return v;
}

}  // namespace

int main() {
  bench::QuietLogs quiet;

  bench::Section("A.5 — de-quantization at load: cache-bound regime (tight FM)");
  bench::Table t({"variant", "stored row B", "hit %", "p95 ms", "CPU us/query"});
  {
    const VariantResult q = Run(false, 3 * kMiB, 4e9);
    const VariantResult d = Run(true, 3 * kMiB, 4e9);
    t.Row("int8 rows (dequant at run)", static_cast<uint64_t>(q.row_bytes),
          q.report.row_cache_hit_rate * 100, q.report.p95.millis(), q.cpu_us_per_query);
    t.Row("fp32 rows (dequant at load)", static_cast<uint64_t>(d.row_bytes),
          d.report.row_cache_hit_rate * 100, d.report.p95.millis(), d.cpu_us_per_query);
    t.Print();
    bench::Note(bench::Fmt("hit rate drops %.1f -> %.1f%%: 4x bigger cached rows "
                           "dominate — de-quantization loses (paper's common case)",
                           q.report.row_cache_hit_rate * 100,
                           d.report.row_cache_hit_rate * 100));
  }

  bench::Section("A.5 — CPU-bound regime (ample FM, slow dequant kernel)");
  bench::Table t2({"variant", "hit %", "p95 ms", "CPU us/query"});
  {
    // Plenty of FM (cache holds everything either way) + a 10x slower
    // dequant kernel: now run-time dequantization is the bottleneck.
    const VariantResult q = Run(false, 48 * kMiB, 0.4e9);
    const VariantResult d = Run(true, 48 * kMiB, 0.4e9);
    t2.Row("int8 rows (dequant at run)", q.report.row_cache_hit_rate * 100,
           q.report.p95.millis(), q.cpu_us_per_query);
    t2.Row("fp32 rows (dequant at load)", d.report.row_cache_hit_rate * 100,
           d.report.p95.millis(), d.cpu_us_per_query);
    t2.Print();
    bench::Note(bench::Fmt("CPU/query %.0f -> %.0f us: when FM is not the constraint, "
                           "loading fp32 saves the dequant kernel (paper's 'very CPU "
                           "bound' exception)",
                           q.cpu_us_per_query, d.cpu_us_per_query));
  }
  bench::Note("paper conclusion: pooled-embedding caching (§4.4) is the more selective");
  bench::Note("way to exploit cheap SM capacity than blanket de-quantization.");
  return 0;
}
