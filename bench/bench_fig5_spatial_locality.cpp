// Figure 5 reproduction: spatial locality heat map proxy.
//
// Paper: "average ratio of unique index to unique 4KB block, normalized to
// the maximum unique index per block per table ... Value 1.0 indicates high
// spatial locality. The heat map and the cooler temperature overall
// indicates low spatial locality." Windows average ~25M accesses at
// production scale; we use 50K at 1/1024 scale.
#include <cstdio>

#include "bench_util.h"
#include "dlrm/model_zoo.h"
#include "trace/locality.h"
#include "trace/trace_gen.h"

using namespace sdm;

namespace {

double RoleHeatmap(const ModelConfig& model, TableRole role) {
  bench::Section(bench::Fmt("Fig. 5 — %s tables: (unique idx / unique block) / max",
                            ToString(role)));
  bench::Table t({"table", "row B", "rows/4KB", "mean ratio", "min", "max"});
  Rng rng(9);
  int tracked = 0;
  double mean_sum = 0;
  for (size_t i = 0; i < model.tables.size() && tracked < 12; ++i) {
    if (model.tables[i].role != role) continue;
    const TableConfig& cfg = model.tables[i];
    TableAccessStream stream(cfg, 1000 + i);
    std::vector<RowIndex> trace;
    trace.reserve(200'000);
    for (int a = 0; a < 200'000; ++a) trace.push_back(stream.Next(rng));
    const SpatialLocality loc = AnalyzeSpatialLocality(trace, cfg.row_bytes(), 50'000);
    t.Row(cfg.name, static_cast<uint64_t>(cfg.row_bytes()), loc.rows_per_block,
          loc.mean_ratio, loc.min_ratio, loc.max_ratio);
    mean_sum += loc.mean_ratio;
    ++tracked;
  }
  t.Print();
  bench::Note(bench::Fmt("mean ratio over %d tables: %.3f (1.0 = perfectly packed)",
                         tracked, mean_sum / tracked));
  return mean_sum / tracked;
}

}  // namespace

int main(int argc, char** argv) {
  bench::QuietLogs quiet;
  bench::JsonReporter json(argc, argv, "fig5_spatial_locality");
  // Trace-scale model: production row counts, so windows touch only the hot
  // subset of each table (a scaled-down table saturates — every row gets
  // touched and the ratio trivially approaches 1).
  const ModelConfig model = MakeM2(/*capacity_scale=*/1.0);
  json.Metric("user_mean_ratio", RoleHeatmap(model, TableRole::kUser));
  json.Metric("item_mean_ratio", RoleHeatmap(model, TableRole::kItem));

  // Contrast: what a spatially-local (sequential) workload would score.
  bench::Section("contrast — sequential scan of one table (not the production pattern)");
  std::vector<RowIndex> seq;
  for (int r = 0; r < 2; ++r) {
    for (RowIndex i = 0; i < 100'000; ++i) seq.push_back(i);
  }
  const SpatialLocality s = AnalyzeSpatialLocality(seq, 128, 50'000);
  json.Metric("sequential_ratio", s.mean_ratio);
  bench::Note(bench::Fmt("sequential ratio: %.3f", s.mean_ratio));
  bench::Note("");
  bench::Note("paper shape: production (Zipf-over-permuted-rows) traces score far below");
  bench::Note("1.0 — low spatial locality, motivating row-granular caching + sub-block IO");
  bench::Note("instead of block/page caching (mmap) or row grouping.");
  return 0;
}
