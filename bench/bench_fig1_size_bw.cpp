// Figure 1 reproduction: per-table Size vs Bytes-per-query skew.
//
// Paper: "Embedding Table Size (x-axis) and Bytes per query (y-axis) in a
// 140GB model. The model has 734 tables, out of which 445 are user tables
// accounting for 100GB. Majority of tables, and hence model capacity,
// requires low BW."
#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "dlrm/model_zoo.h"

using namespace sdm;

int main() {
  bench::QuietLogs quiet;
  const ModelConfig model = MakeFig1Model();  // capacities scaled 1/1024

  bench::Section("Fig. 1 — table size vs bytes/query (scaled 1/1024)");
  std::printf("model: %zu tables, %zu user, total %.1f MiB (paper: 734 / 445 / 140GB)\n",
              model.tables.size(), model.CountFor(TableRole::kUser),
              AsMiB(model.TotalBytes()));

  // The scatter itself, binned for a terminal: rows = size deciles,
  // columns = BW deciles, cell = table count.
  struct Point {
    double size_mib;
    double bytes_per_query;  // batched (Eq. 2)
    TableRole role;
  };
  std::vector<Point> points;
  for (const auto& t : model.tables) {
    const double batch =
        t.role == TableRole::kUser ? model.user_batch_size : model.item_batch_size;
    points.push_back({AsMiB(t.total_bytes()), t.bytes_per_query() * batch, t.role});
  }

  bench::Table scatter({"size bucket (MiB)", "tables", "user", "item", "capacity share %",
                        "avg KB/query"});
  std::vector<double> edges = {0, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 1e9};
  const double total_mib = AsMiB(model.TotalBytes());
  for (size_t b = 0; b + 1 < edges.size(); ++b) {
    int n = 0;
    int users = 0;
    double cap = 0;
    double bw = 0;
    for (const auto& p : points) {
      if (p.size_mib >= edges[b] && p.size_mib < edges[b + 1]) {
        ++n;
        if (p.role == TableRole::kUser) ++users;
        cap += p.size_mib;
        bw += p.bytes_per_query;
      }
    }
    if (n == 0) continue;
    scatter.Row(bench::Fmt("[%.2f, %.2f)", edges[b], edges[b + 1]), n, users, n - users,
                cap / total_mib * 100.0, bw / n / 1024.0);
  }
  scatter.Print();

  // The paper's headline: what fraction of capacity needs only low BW?
  std::sort(points.begin(), points.end(), [](const Point& a, const Point& b) {
    return a.bytes_per_query < b.bytes_per_query;
  });
  double cum_cap = 0;
  double cum_bw = 0;
  double total_bw = 0;
  for (const auto& p : points) total_bw += p.bytes_per_query;
  bench::Section("cumulative: capacity covered vs BW demanded (tables sorted by BW)");
  bench::Table cum({"lowest-BW tables %", "capacity share %", "BW share %"});
  size_t next = points.size() / 10;
  for (size_t i = 0; i < points.size(); ++i) {
    cum_cap += points[i].size_mib;
    cum_bw += points[i].bytes_per_query;
    if (i + 1 == next || i + 1 == points.size()) {
      cum.Row(bench::Fmt("%.0f", 100.0 * (i + 1) / points.size()),
              cum_cap / total_mib * 100.0, cum_bw / total_bw * 100.0);
      next += points.size() / 10;
    }
  }
  cum.Print();

  const double user_share =
      static_cast<double>(model.BytesFor(TableRole::kUser)) /
      static_cast<double>(model.TotalBytes());
  bench::Note(bench::Fmt("user tables hold %.0f%% of capacity (paper: >2/3)",
                         user_share * 100));
  bench::Note("paper shape: most tables (and most capacity) sit in the low-BW region;");
  bench::Note("the cumulative table shows the 70-90% of tables with least BW demand");
  bench::Note("covering the bulk of capacity while a small table subset dominates BW.");
  return 0;
}
