// Ablation (§3): the same serving workload across every Table 1 technology.
//
// Paper: "The choice of technology for SM depends on specific usecase and
// model characteristics... Nand Flash and Optane SSD enable tiered memory
// for a wide range of DLRM models... As the model's capacity and BW scale
// overtime, CXL based solution would become more relevant."
#include <cstdio>

#include "bench_util.h"
#include "dlrm/model_zoo.h"
#include "serving/host.h"

using namespace sdm;

namespace {

ModelConfig ServingModel() {
  // IOPS-heavy: 6 user tables at PF 40 = 240 raw SM lookups per query, so
  // the devices (not CPU) decide the outcome.
  ModelConfig model = MakeTinyUniformModel(64, 6, 1, 30'000);
  model.tables.back().num_rows = 2000;
  for (auto& t : model.tables) {
    if (t.role == TableRole::kUser) t.avg_pooling_factor = 40;
  }
  return model;
}

}  // namespace

int main() {
  bench::QuietLogs quiet;
  const ModelConfig model = ServingModel();
  bench::Section("§3 ablation — one workload, every SM technology (2 devices each)");
  bench::Table t({"technology", "max QPS @ p95<=2ms", "p95 ms @ 400qps", "hit %",
                  "SM IOPS", "cost vs DRAM"});

  for (const DeviceSpec& spec : Table1Specs()) {
    HostSimConfig cfg;
    cfg.host.name = spec.name;
    cfg.host.cpu_sockets = 1;
    cfg.host.ssds = {spec, spec};
    cfg.host.dense_flops = 2.0e10;
    cfg.fm_capacity = 4 * kMiB;
    cfg.sm_backing_per_device = 64 * kMiB;
    cfg.workload.num_users = 20'000;  // wide working set: devices matter
    cfg.workload.user_index_churn = 0.15;
    cfg.workload.seed = 29;
    cfg.seed = 29;
    HostSimulation sim(cfg);
    if (Status s = sim.LoadModel(model); !s.ok()) {
      bench::Note(bench::Fmt("%s: load failed: %s", ToString(spec.technology),
                             s.ToString().c_str()));
      continue;
    }
    sim.Warmup(5000);
    const HostRunReport fixed = sim.Run(400, 2500);
    const double qps = sim.FindMaxQps(Millis(2), /*use_p99=*/false, 1200, 25, 300'000);
    t.Row(ToString(spec.technology), qps, fixed.p95.millis(),
          fixed.row_cache_hit_rate * 100, fixed.sm_iops,
          bench::Fmt("1/%.0f", 1.0 / spec.cost_per_gb_rel_dram));
  }
  t.Print();
  bench::Note("paper shape: Nand/ZSSD trail on latency-sensitive QPS; Optane covers");
  bench::Note("the high-BW frontier; DIMM/CXL 3DXP approach DRAM-class behaviour and");
  bench::Note("become relevant as models outscale SSD IOPS (§3's closing remark).");
  return 0;
}
