// §4.1.1 reproduction: sub-block (SGL bit-bucket) reads vs 4KB block reads.
//
// Paper: "By only reading the parts of a block that is necessary, we save
// around 75% of the bus bandwidth ... This reduces the observed latency of
// a given read by 3-5%. The savings at the application level are more given
// removal of the extra memcpy."
#include <cstdio>

#include "bench_util.h"
#include "common/event_loop.h"
#include "common/histogram.h"
#include "io/direct_reader.h"

using namespace sdm;

namespace {

struct GranResult {
  double mean_us;
  double bus_bytes_per_read;
  double read_amp;
  double fm_bytes_per_read;
  double achieved_kiops;
};

GranResult Run(const DeviceSpec& spec, bool sub_block, Bytes row_bytes, double util) {
  EventLoop loop;
  NvmeDevice dev(spec, 16 * kMiB, &loop, 15);
  std::vector<uint8_t> init(16 * kMiB, 1);
  (void)dev.Write(0, init);
  IoEngine engine(&dev, &loop, {});
  DirectIoReader reader(&engine, DirectReaderConfig{sub_block, 12e9});

  Rng rng(16);
  Histogram lat;
  const int kReads = 30'000;
  // Offered load as a fraction of the device's 512B IOPS ceiling.
  const double rate = spec.max_read_iops * util;
  SimTime arrival(0);
  uint64_t completed = 0;
  std::vector<std::unique_ptr<std::vector<uint8_t>>> bufs;
  for (int i = 0; i < kReads; ++i) {
    arrival += Seconds(rng.NextExponential(1.0 / rate));
    loop.ScheduleAt(arrival, [&] {
      const Bytes offset = rng.NextBounded(16 * kMiB / row_bytes - 1) * row_bytes;
      auto buf = std::make_unique<std::vector<uint8_t>>(row_bytes);
      const std::span<uint8_t> dest(buf->data(), buf->size());
      bufs.push_back(std::move(buf));
      reader.ReadRow(offset, dest, [&](Status s, SimDuration l) {
        if (s.ok()) {
          lat.Record(l);
          ++completed;
        }
      });
    });
  }
  loop.RunUntilIdle();

  GranResult r;
  r.mean_us = lat.mean() / 1e3;
  r.bus_bytes_per_read =
      static_cast<double>(dev.stats().CounterValue("bus_bytes")) / kReads;
  r.read_amp = dev.ReadAmplification();
  r.fm_bytes_per_read = static_cast<double>(reader.fm_bytes_moved()) / kReads;
  r.achieved_kiops = static_cast<double>(completed) / loop.Now().seconds() / 1e3;
  return r;
}

}  // namespace

int main() {
  bench::QuietLogs quiet;
  constexpr Bytes kRow = 128;

  // Paper's 75% bus-saving claim compares against the device's natural
  // minimum transfer (512B on Optane): a 128B row in a 512B read wastes 3/4
  // of the bus. We model the 512B baseline as a 512B-long read.
  bench::Section("§4.1.1 — Optane: 512B-granularity vs DWORD sub-block (128B rows)");
  bench::Table g({"mode", "bus B/read", "read amp", "mean us"});
  const GranResult o512 = Run(MakeOptaneSsdSpec(), true, 512, 0.05);
  const GranResult o128 = Run(MakeOptaneSsdSpec(), true, kRow, 0.05);
  g.Row("512B native reads", o512.bus_bytes_per_read, 512.0 / kRow, o512.mean_us);
  g.Row("DWORD sub-block (SGL)", o128.bus_bytes_per_read, o128.read_amp, o128.mean_us);
  g.Print();
  bench::Note(bench::Fmt("bus saving: %.0f%% (paper: ~75%%)",
                         100.0 * (1 - o128.bus_bytes_per_read / o512.bus_bytes_per_read)));

  bench::Section("§4.1.1 — Nand: 4KB block vs sub-block reads (128B rows)");
  bench::Table t({"mode", "bus B/read", "read amp", "FM B/read", "mean us", "kIOPS"});
  const GranResult blk = Run(MakeNandFlashSpec(), false, kRow, 0.3);
  const GranResult sgl = Run(MakeNandFlashSpec(), true, kRow, 0.3);
  t.Row("4KB block", blk.bus_bytes_per_read, blk.read_amp, blk.fm_bytes_per_read,
        blk.mean_us, blk.achieved_kiops);
  t.Row("sub-block (SGL)", sgl.bus_bytes_per_read, sgl.read_amp, sgl.fm_bytes_per_read,
        sgl.mean_us, sgl.achieved_kiops);
  t.Print();
  bench::Note(bench::Fmt("device latency saving: %.1f%% (paper: 3-5%% — the 4KB bus "
                         "transfer eliminated); FM traffic per read drops %.0fx "
                         "(no bounce-buffer memcpy)",
                         100.0 * (1 - sgl.mean_us / blk.mean_us),
                         blk.fm_bytes_per_read / sgl.fm_bytes_per_read));

  bench::Section("under load — the IOPS benefit of small granularity (util sweep)");
  bench::Table u({"offered util of 4M", "block mean us", "sub-block mean us",
                  "block kIOPS", "sub-block kIOPS"});
  for (const double util : {0.05, 0.10, 0.12}) {
    const GranResult b2 = Run(MakeOptaneSsdSpec(), false, kRow, util);
    const GranResult s2 = Run(MakeOptaneSsdSpec(), true, kRow, util);
    u.Row(util, b2.mean_us, s2.mean_us, b2.achieved_kiops, s2.achieved_kiops);
  }
  u.Print();
  bench::Note("block reads occupy the media for 8 units per 128B row, so the device");
  bench::Note("saturates at ~1/8th of its rated IOPS — sub-block reads avoid the");
  bench::Note("amplification entirely (and skip the bounce-buffer memcpy in FM).");
  return 0;
}
