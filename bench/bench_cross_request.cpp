// Cross-request IO batching: per-request batches (PR 1, the bypass mode)
// vs the src/sched BatchScheduler combining reads across concurrent
// lookups (single-flight + cross-request merging + shared doorbells).
//
// Setup mirrors bench_coalescing: Zipf access streams against M2 tables
// served from SM at the standard 1/1024 capacity scale, row/pooled caches
// off so every query exercises the IO path. Queries are issued in waves of
// C concurrent lookups — the inter-op/multi-tenant regime the scheduler
// targets: as C rises, concurrent bags miss the same hot blocks, and
// single-flight collapses those misses into one device read.
//
// Reports device reads per query, single-flight hits, cross-request
// merges, SQEs per ring doorbell, and latency, for both paths across a
// concurrency sweep. `--json` emits the same numbers for the perf
// trajectory; the headline metric is the device-read reduction at C=8.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_util.h"
#include "core/lookup_engine.h"
#include "core/model_loader.h"
#include "core/sdm_store.h"
#include "dlrm/model_zoo.h"
#include "trace/trace_gen.h"

using namespace sdm;

namespace {

struct RunResult {
  uint64_t queries = 0;
  uint64_t device_reads = 0;
  uint64_t singleflight = 0;
  uint64_t merges = 0;
  uint64_t bus_bytes = 0;
  double occupancy = 0;
  double io_cpu_s = 0;
  double mean_latency_us = 0;
  double p99_latency_us = 0;

  [[nodiscard]] double ReadsPerQuery() const {
    return queries == 0 ? 0
                        : static_cast<double>(device_reads) / static_cast<double>(queries);
  }
  [[nodiscard]] double BusBytesPerQuery() const {
    return queries == 0 ? 0
                        : static_cast<double>(bus_bytes) / static_cast<double>(queries);
  }
};

/// Replays `waves` (each wave = concurrent bags) against a fresh
/// single-table store with the scheduler in `cross_request` mode.
RunResult RunWorkload(const TableConfig& table,
                      const std::vector<std::vector<std::vector<RowIndex>>>& waves,
                      bool cross_request) {
  EventLoop loop;
  SdmStoreConfig cfg;
  cfg.fm_capacity = 32 * kMiB;
  cfg.sm_specs = {MakeOptaneSsdSpec()};
  cfg.sm_backing_bytes = {table.total_bytes() + kMiB};
  cfg.tuning.coalesce_io = true;
  cfg.tuning.cross_request_batching = cross_request;
  // A short batching window covers the CPU-phase skew between concurrent
  // operators without adding visible latency at Optane timescales.
  cfg.tuning.max_batch_delay = Micros(10);
  // The per-table throttle stays at its default: admission now counts
  // device reads *after* merging (a single-flighted/merged run frees its
  // slot at enqueue), so concurrent runs reach the scheduler inside the
  // batching window without lifting the budget. PR 2 had to zero this —
  // shared runs used to pin slots and starve the merge window.
  cfg.tuning.enable_row_cache = false;
  cfg.tuning.user_tables_only_on_sm = false;
  SdmStore store(cfg, &loop);

  ModelConfig model;
  model.name = "xreq";
  model.tables = {table};
  if (!ModelLoader::Load(model, {}, &store).ok()) {
    std::fprintf(stderr, "model load failed\n");
    std::abort();
  }
  LookupEngine engine(&store);

  RunResult r;
  for (const auto& wave : waves) {
    for (const auto& bag : wave) {
      LookupRequest req;
      req.table = MakeTableId(0);
      req.indices = bag;
      engine.Lookup(std::move(req),
                    [](Status s, std::vector<float>, const LookupTrace&) {
                      if (!s.ok()) std::abort();
                    });
      ++r.queries;
    }
    loop.RunUntilIdle();
  }

  r.device_reads = store.sm_device(0).stats().CounterValue("reads");
  r.bus_bytes = store.sm_device(0).stats().CounterValue("bus_bytes");
  const StatsRegistry& sched = store.scheduler(0).stats();
  r.singleflight = sched.CounterValue("singleflight_hits");
  r.merges = sched.CounterValue("cross_request_merges");
  r.occupancy = store.scheduler(0).BatchOccupancy();
  r.io_cpu_s = store.io_engine(0).cpu_time().seconds();
  r.mean_latency_us = engine.latency().mean() / 1e3;
  r.p99_latency_us = static_cast<double>(engine.latency().P99()) / 1e3;
  return r;
}

std::vector<std::vector<std::vector<RowIndex>>> MakeWaves(const TableConfig& table,
                                                          int waves, int concurrency,
                                                          int bag_len, uint64_t seed) {
  TableAccessStream stream(table, seed);
  Rng rng(seed ^ 0x9d2c5680ULL);
  std::vector<std::vector<std::vector<RowIndex>>> out(waves);
  for (auto& wave : out) {
    wave.resize(concurrency);
    for (auto& bag : wave) {
      bag.reserve(bag_len);
      for (int k = 0; k < bag_len; ++k) bag.push_back(stream.Next(rng));
    }
  }
  return out;
}

/// Median-sized M2 table of `role` (as in bench_coalescing).
TableConfig PickTable(TableRole role) {
  const ModelConfig m2 = MakeM2();
  std::vector<const TableConfig*> picks;
  for (const auto& t : m2.tables) {
    if (t.role == role) picks.push_back(&t);
  }
  std::sort(picks.begin(), picks.end(), [](const TableConfig* a, const TableConfig* b) {
    return a->total_bytes() < b->total_bytes();
  });
  return *picks[picks.size() / 2];
}

double Sweep(const char* title, const TableConfig& table, int queries_total, int bag_len,
             uint64_t seed, const char* json_prefix, bench::JsonReporter& json) {
  bench::Section(bench::Fmt(
      "%s — table %s: %llu rows x %llu B, bag %d, zipf %.2f", title, table.name.c_str(),
      static_cast<unsigned long long>(table.num_rows),
      static_cast<unsigned long long>(table.row_bytes()), bag_len, table.zipf_alpha));

  bench::Table t({"concurrency", "path", "reads/query", "bus B/query", "singleflight",
                  "xmerges", "SQE/doorbell", "mean us", "p99 us"});
  double reduction_at_8 = 0;
  for (const int c : {1, 2, 4, 8, 16}) {
    const auto waves = MakeWaves(table, queries_total / c, c, bag_len, seed);
    const RunResult bypass = RunWorkload(table, waves, /*cross_request=*/false);
    const RunResult cross = RunWorkload(table, waves, /*cross_request=*/true);
    t.Row(c, "per-request", bypass.ReadsPerQuery(), bypass.BusBytesPerQuery(),
          bypass.singleflight, bypass.merges, bypass.occupancy, bypass.mean_latency_us,
          bypass.p99_latency_us);
    t.Row(c, "cross-request", cross.ReadsPerQuery(), cross.BusBytesPerQuery(),
          cross.singleflight, cross.merges, cross.occupancy, cross.mean_latency_us,
          cross.p99_latency_us);
    const double reduction = cross.device_reads == 0
                                 ? 0
                                 : static_cast<double>(bypass.device_reads) /
                                       static_cast<double>(cross.device_reads);
    if (c == 8) {
      reduction_at_8 = reduction;
      json.Metric(bench::Fmt("%s_c8_bypass_reads_per_query", json_prefix),
                  bypass.ReadsPerQuery());
      json.Metric(bench::Fmt("%s_c8_cross_reads_per_query", json_prefix),
                  cross.ReadsPerQuery());
      json.Metric(bench::Fmt("%s_c8_read_reduction_x", json_prefix), reduction);
      json.Metric(bench::Fmt("%s_c8_singleflight_hits", json_prefix),
                  static_cast<double>(cross.singleflight));
      json.Metric(bench::Fmt("%s_c8_batch_occupancy", json_prefix), cross.occupancy);
      json.Metric(bench::Fmt("%s_c8_cross_p99_us", json_prefix), cross.p99_latency_us);
      json.Metric(bench::Fmt("%s_c8_bypass_p99_us", json_prefix), bypass.p99_latency_us);
    }
  }
  t.Print();
  bench::Note(bench::Fmt("device reads at 8 concurrent queries: %.2fx fewer cross-request",
                         reduction_at_8));
  return reduction_at_8;
}

}  // namespace

int main(int argc, char** argv) {
  bench::QuietLogs quiet;
  bench::JsonReporter json(argc, argv, "cross_request");
  const int item_batch = 150;  // M2's B_I

  // User path: small per-query bags; sharing comes from concurrent queries
  // hitting the same Zipf-hot blocks.
  const TableConfig user = PickTable(TableRole::kUser);
  const double user_reduction =
      Sweep("user path", user, /*queries_total=*/2000,
            static_cast<int>(user.avg_pooling_factor), /*seed=*/91, "user", json);

  // Item path: the flattened PF x B_I bag every query issues; concurrent
  // queries rank overlapping item sets — single-flight's best case.
  const TableConfig item = PickTable(TableRole::kItem);
  const double item_reduction =
      Sweep("item path (PF x B_I bag)", item, /*queries_total=*/240,
            static_cast<int>(item.avg_pooling_factor) * item_batch, /*seed=*/92, "item",
            json);

  json.Metric("c8_read_reduction_x", std::max(user_reduction, item_reduction));

  bench::Note("");
  bench::Note("paper tie-in: §4's io_uring deployment amortizes doorbells host-wide; the");
  bench::Note("BatchScheduler extends that across concurrent operators, so device reads");
  bench::Note("per query FALL as concurrency rises instead of staying flat. Bypass mode");
  bench::Note("(TuningConfig::cross_request_batching=false) preserves PR 1 per-request");
  bench::Note("batches for ablation. The §4.1 per-table throttle runs at its default");
  bench::Note("here: admission counts device reads after merging (a run the scheduler");
  bench::Note("will fully cover skips the slot queue via WouldShare), so single-flight");
  bench::Note("survives a finite outstanding-IO budget.");
  return 0;
}
