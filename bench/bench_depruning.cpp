// §4.5 reproduction: de-pruning at load time.
//
// Paper: serving pruned tables from SM keeps per-table mapping tensors in
// FM — memory taken away from the SM cache. De-pruning at load frees the
// mapping tensors ("allowing for up to 2x cache size in some
// configurations") at the cost of ~2.5% extra SM requests (previously-
// pruned rows are now fetched) and more SM capacity; net effect: "up to 48%
// increase in performance for cases where performance is bounded by user
// embeddings in SM."
#include <cstdio>

#include <memory>
#include <unordered_set>
#include <vector>

#include "bench_util.h"
#include "dlrm/model_zoo.h"
#include "serving/host.h"
#include "trace/trace_gen.h"

using namespace sdm;

namespace {

ModelConfig PrunableModel() {
  // Large user tables (big mapping tensors) + one small FM item table.
  ModelConfig model = MakeTinyUniformModel(64, 4, 1, 60'000);
  model.tables.back().num_rows = 2'000;
  for (auto& t : model.tables) {
    if (t.role == TableRole::kUser) t.avg_pooling_factor = 12;
  }
  return model;
}

struct Variant {
  HostRunReport report;
  Bytes cache_budget = 0;
  Bytes mapping_bytes = 0;
  Bytes sm_bytes = 0;
  double max_qps = 0;
  uint64_t sm_requests = 0;
};

Variant Run(bool deprune) {
  const ModelConfig model = PrunableModel();
  HostSimConfig cfg;
  cfg.host = MakeHwSS();
  cfg.fm_capacity = 1536 * kKiB;  // tight FM: mapping tensors matter
  cfg.sm_backing_per_device = 64 * kMiB;
  cfg.tuning.deprune_at_load = deprune;
  cfg.workload.num_users = 4000;
  cfg.workload.user_index_churn = 0.04;
  cfg.workload.seed = 17;
  cfg.seed = 17;

  // Production pruning removes *cold* rows. Keep each user table's hottest
  // 50% of popularity ranks — the same streams the workload will draw from
  // (QueryGenerator is deterministic in (model, workload config)).
  QueryGenerator reference(model, cfg.workload);
  auto keep_sets = std::make_shared<std::vector<std::unordered_set<RowIndex>>>();
  for (size_t t = 0; t < model.tables.size(); ++t) {
    std::unordered_set<RowIndex> kept;
    if (model.tables[t].role == TableRole::kUser) {
      const uint64_t keep_rows = model.tables[t].num_rows / 2;
      for (uint64_t r = 0; r < keep_rows; ++r) {
        kept.insert(reference.stream(t).IndexAtRank(r));
      }
    }
    keep_sets->push_back(std::move(kept));
  }
  cfg.loader.prune_keep_predicate = [keep_sets](size_t table, RowIndex row) {
    return table < keep_sets->size() && (*keep_sets)[table].contains(row);
  };

  HostSimulation sim(cfg);
  const Status s = sim.LoadModel(model);
  if (!s.ok()) {
    std::fprintf(stderr, "load failed: %s\n", s.ToString().c_str());
    return {};
  }
  sim.Warmup(5000);
  Variant v;
  v.max_qps = sim.FindMaxQps(Millis(5), /*use_p99=*/false, 1000, 25, 60'000);
  v.report = sim.Run(std::max(25.0, v.max_qps * 0.9), 2000);
  v.cache_budget = sim.store().fm_cache_budget();
  v.mapping_bytes = sim.store().fm_mapping_bytes();
  v.sm_bytes = sim.store().sm_used_bytes();
  v.sm_requests = sim.engine().lookups().stats().CounterValue("rows_sm_read") +
                  sim.engine().lookups().stats().CounterValue("rows_cache_hit");
  return v;
}

}  // namespace

int main() {
  bench::QuietLogs quiet;
  const Variant mapping = Run(/*deprune=*/false);
  const Variant depruned = Run(/*deprune=*/true);

  bench::Section("§4.5 — pruned tables: FM mapping tensor vs de-pruning at load");
  bench::Table t({"variant", "mapping KiB in FM", "cache KiB", "SM MiB", "hit %",
                  "SM rows/query", "max QPS"});
  auto row = [&](const char* name, const Variant& v) {
    const double rows_per_q =
        static_cast<double>(v.report.sm_iops) / std::max(1.0, v.report.achieved_qps);
    t.Row(name, static_cast<uint64_t>(v.mapping_bytes / kKiB),
          static_cast<uint64_t>(v.cache_budget / kKiB), AsMiB(v.sm_bytes),
          v.report.row_cache_hit_rate * 100, rows_per_q, v.max_qps);
  };
  row("pruned + FM mapping", mapping);
  row("de-pruned at load", depruned);
  t.Print();

  bench::Note(bench::Fmt("cache grew %.2fx (paper: up to 2x in some configurations)",
                         static_cast<double>(depruned.cache_budget) /
                             std::max<double>(1.0, static_cast<double>(mapping.cache_budget))));
  bench::Note(bench::Fmt("total row requests: %+.1f%% (paper: +2.5%% — de-pruned zero "
                         "rows now get fetched and cached)",
                         100.0 * (static_cast<double>(depruned.sm_requests) /
                                      std::max<uint64_t>(1, mapping.sm_requests) -
                                  1.0)));
  bench::Note(bench::Fmt("max QPS: %+.0f%% (paper: up to +48%% when bounded by user "
                         "embeddings in SM)",
                         100.0 * (depruned.max_qps / std::max(1.0, mapping.max_qps) - 1.0)));
  return 0;
}
