// Table 2 reproduction: the two use cases the stack must serve well.
//
//   Inference      user batch = 1, item batch O(100); latency sensitive.
//   InferenceEval  user batch == item batch > 1; accuracy validation after
//                  inference-specific transformation.
//
// Paper §4: "we evaluate the design choices ... by evaluating a wide range
// of target models ... We also consider both Inference as well as
// Inference Eval ... to avoid over designing for a particular usecase."
// InferenceEval multiplies the user-side (SM) traffic by the batch size and
// destroys per-query stickiness, so it is the configuration most sensitive
// to cache size and placement (Fig. 6's bottom-right panel runs it).
#include <cstdio>

#include "bench_util.h"
#include "dlrm/model_zoo.h"
#include "serving/host.h"

using namespace sdm;

namespace {

struct UsecaseResult {
  HostRunReport report;
  double sm_lookups_per_query = 0;
};

UsecaseResult Run(int user_batch, int item_batch, double qps) {
  ModelConfig model = MakeTinyUniformModel(32, 4, 2, 20'000);
  model.user_batch_size = user_batch;
  model.item_batch_size = item_batch;
  HostSimConfig cfg;
  cfg.host = MakeHwAO();
  cfg.fm_capacity = 6 * kMiB;
  cfg.sm_backing_per_device = 32 * kMiB;
  cfg.workload.num_users = 4000;
  cfg.workload.user_index_churn = 0.05;
  cfg.workload.seed = 31;
  cfg.seed = 31;
  HostSimulation sim(cfg);
  if (Status s = sim.LoadModel(model); !s.ok()) {
    std::fprintf(stderr, "load failed: %s\n", s.ToString().c_str());
    return {};
  }
  sim.Warmup(4000);
  UsecaseResult r;
  r.report = sim.Run(qps, 2000);
  const uint64_t sm_rows =
      sim.engine().lookups().stats().CounterValue("rows_sm_read") +
      sim.engine().lookups().stats().CounterValue("rows_cache_hit");
  r.sm_lookups_per_query =
      static_cast<double>(sm_rows) /
      std::max<uint64_t>(1, sim.engine().stats().CounterValue("queries"));
  return r;
}

}  // namespace

int main() {
  bench::QuietLogs quiet;
  bench::Section("Table 2 — Inference vs InferenceEval on the same SDM host");
  bench::Table t({"usecase", "user batch", "item batch", "SM lookups/query", "hit %",
                  "p95 ms", "p99 ms"});
  const UsecaseResult inference = Run(/*user_batch=*/1, /*item_batch=*/16, 300);
  const UsecaseResult eval = Run(/*user_batch=*/16, /*item_batch=*/16, 300);
  t.Row("Inference", 1, 16, inference.sm_lookups_per_query,
        inference.report.row_cache_hit_rate * 100, inference.report.p95.millis(),
        inference.report.p99.millis());
  t.Row("InferenceEval", 16, 16, eval.sm_lookups_per_query,
        eval.report.row_cache_hit_rate * 100, eval.report.p95.millis(),
        eval.report.p99.millis());
  t.Print();
  bench::Note(bench::Fmt(
      "InferenceEval multiplies user-side SM traffic ~%.0fx (hit rate %.1f -> %.1f%%, "
      "p95 %.2f -> %.2fms): the design must hold up under both (paper §4).",
      eval.sm_lookups_per_query / std::max(1.0, inference.sm_lookups_per_query),
      inference.report.row_cache_hit_rate * 100, eval.report.row_cache_hit_rate * 100,
      inference.report.p95.millis(), eval.report.p95.millis()));
  bench::Note("this is why Fig. 6's placement study runs InferenceEval — it is the");
  bench::Note("configuration most sensitive to cache capacity and table placement.");
  return 0;
}
