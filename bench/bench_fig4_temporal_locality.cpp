// Figure 4 reproduction: temporal locality CDFs for user and item tables,
// plus the per-host (sticky-routed) view.
//
// Paper: 50 tables tracked at random over 6 days; most show power-law
// concentration; item tables (b) show more locality than user tables (a);
// the same user tables observed from one serving host (c) show more
// locality than the global trace.
#include <cstdio>

#include "bench_util.h"
#include "dlrm/model_zoo.h"
#include "trace/locality.h"
#include "trace/trace_gen.h"

using namespace sdm;

namespace {

constexpr int kTablesPerGroup = 20;
constexpr int kAccessesPerTable = 200'000;

/// Aggregated CDF stats over a set of tables of one role.
void GroupCdf(const ModelConfig& model, TableRole role, const char* label) {
  bench::Section(bench::Fmt("Fig. 4(%s) — %s tables, cumulative access share", label,
                            ToString(role)));
  bench::Table t({"table", "rows", "alpha", "top 0.1% rows", "top 1% rows",
                  "top 10% rows"});
  double sum01 = 0;
  double sum1 = 0;
  double sum10 = 0;
  int tracked = 0;
  Rng rng(123);
  for (size_t i = 0; i < model.tables.size() && tracked < kTablesPerGroup; ++i) {
    if (model.tables[i].role != role) continue;
    const TableConfig& cfg = model.tables[i];
    TableAccessStream stream(cfg, 77 + i);
    std::vector<RowIndex> trace;
    trace.reserve(kAccessesPerTable);
    for (int a = 0; a < kAccessesPerTable; ++a) trace.push_back(stream.Next(rng));
    const TemporalLocality loc = AnalyzeTemporalLocality(trace);
    const double s01 = loc.ShareOfTopRows(0.001);
    const double s1 = loc.ShareOfTopRows(0.01);
    const double s10 = loc.ShareOfTopRows(0.10);
    if (tracked < 8) {  // print a sample; aggregate all
      t.Row(cfg.name, cfg.num_rows, cfg.zipf_alpha, s01, s1, s10);
    }
    sum01 += s01;
    sum1 += s1;
    sum10 += s10;
    ++tracked;
  }
  t.Print();
  bench::Note(bench::Fmt("mean over %d tables: top0.1%%=%.2f top1%%=%.2f top10%%=%.2f",
                         tracked, sum01 / tracked, sum1 / tracked, sum10 / tracked));
}

/// Fig. 4(c): per-host view of the same user tables under sticky routing.
/// Uses a slim query model (a few user tables from the full model) so query
/// generation stays cheap — locality only needs the trace.
void PerHostView(const ModelConfig& model) {
  bench::Section("Fig. 4(c) — user tables as observed by ONE host (sticky routing)");
  ModelConfig slim;
  slim.name = "fig4c";
  slim.item_batch_size = 1;
  slim.user_batch_size = 1;
  for (const auto& t : model.tables) {
    if (t.role == TableRole::kUser) {
      slim.tables.push_back(t);
      if (slim.tables.size() == 4) break;
    }
  }
  WorkloadConfig w;
  w.num_users = 20'000;
  w.user_zipf_alpha = 0.8;
  w.user_index_churn = 0.05;
  w.seed = 5;
  QueryGenerator gen(slim, w);
  constexpr size_t kHosts = 16;
  constexpr size_t table = 0;

  Rng route_rng(17);
  std::vector<RowIndex> sticky_host;
  std::vector<RowIndex> random_host;
  for (int q = 0; q < 120'000; ++q) {
    const Query query = gen.Next();
    const bool on_sticky = (query.user % kHosts) == 0;
    const bool on_random = route_rng.NextBounded(kHosts) == 0;
    for (const RowIndex idx : query.indices[table]) {
      if (on_sticky) sticky_host.push_back(idx);
      if (on_random) random_host.push_back(idx);
    }
  }
  const auto s = AnalyzeTemporalLocality(sticky_host);
  const auto r = AnalyzeTemporalLocality(random_host);
  bench::Table t({"one host's view", "accesses", "unique rows", "unique/access",
                  "top 1% rows", "top 10% rows"});
  t.Row("sticky user->host routing", s.total_accesses, s.unique_rows,
        static_cast<double>(s.unique_rows) / static_cast<double>(s.total_accesses),
        s.ShareOfTopRows(0.01), s.ShareOfTopRows(0.10));
  t.Row("random routing", r.total_accesses, r.unique_rows,
        static_cast<double>(r.unique_rows) / static_cast<double>(r.total_accesses),
        r.ShareOfTopRows(0.01), r.ShareOfTopRows(0.10));
  t.Print();
  bench::Note("paper: the per-host trace shows higher locality under user-to-host");
  bench::Note("sticky routing — all of a user's repeats land on one host's cache, so");
  bench::Note("the host's working set (unique rows per access) shrinks.");
}

}  // namespace

int main() {
  bench::QuietLogs quiet;
  // Trace-scale model: production row counts (no table data materialized —
  // locality analysis needs only index streams).
  const ModelConfig model = MakeM2(/*capacity_scale=*/1.0);
  GroupCdf(model, TableRole::kUser, "a");
  GroupCdf(model, TableRole::kItem, "b");
  PerHostView(model);
  bench::Note("");
  bench::Note("paper shape: power law in (a) and (b), item > user concentration,");
  bench::Note("per-host (c) > global (a).");
  return 0;
}
