// §4.1 design-choice reproduction: mmap vs DIRECT_IO + application cache.
//
// Paper: "we observed that mmap would not provide the best use of FM space,
// and results in higher access latency (by 3x. e.g. reading in and
// maintaining 4KB into memory for a 128B request). Hence we opted for
// DIRECT_IO with an application level cache."
#include <cstdio>

#include "bench_util.h"
#include "cache/cpu_optimized_cache.h"
#include "common/event_loop.h"
#include "common/histogram.h"
#include "io/direct_reader.h"
#include "io/mmap_reader.h"

using namespace sdm;

namespace {

struct PathResult {
  double mean_us;
  double p99_us;
  double hit_rate;
  double fm_per_useful;  // FM bytes moved per useful byte delivered
};

constexpr Bytes kRowBytes = 128;
constexpr Bytes kStore = 32 * kMiB;
constexpr int kReads = 30'000;

PathResult RunMmap(Bytes fm_budget, double alpha) {
  EventLoop loop;
  NvmeDevice dev(MakeOptaneSsdSpec(), kStore, &loop, 12);
  std::vector<uint8_t> init(kStore, 1);
  (void)dev.Write(0, init);
  IoEngine engine(&dev, &loop, {});
  MmapReader mmap(&engine, MmapReaderConfig{fm_budget});

  const uint64_t rows = kStore / kRowBytes;
  ZipfSampler zipf(rows, alpha);
  IndexPermuter perm(rows, 13);
  Rng rng(14);
  Histogram lat;
  std::vector<uint8_t> out(kRowBytes);
  for (int i = 0; i < kReads; ++i) {
    const Bytes offset = perm.Permute(zipf.Sample(rng)) * kRowBytes;
    mmap.Read(offset, out, [&](Status s, SimDuration l) {
      if (s.ok()) lat.Record(l);
    });
    loop.RunUntilIdle();
  }
  PathResult r;
  r.mean_us = lat.mean() / 1e3;
  r.p99_us = static_cast<double>(lat.P99()) / 1e3;
  const double faults = static_cast<double>(mmap.page_faults());
  r.hit_rate = 1.0 - faults / kReads;
  // Every fault pulls a 4KB page into FM for 128B of useful data.
  r.fm_per_useful = faults * kBlockSize / (static_cast<double>(kReads) * kRowBytes);
  return r;
}

PathResult RunDirect(Bytes fm_budget, double alpha, bool sub_block) {
  EventLoop loop;
  NvmeDevice dev(MakeOptaneSsdSpec(), kStore, &loop, 12);
  std::vector<uint8_t> init(kStore, 1);
  (void)dev.Write(0, init);
  IoEngine engine(&dev, &loop, {});
  DirectIoReader reader(&engine, DirectReaderConfig{sub_block, 12e9});
  CpuOptimizedCacheConfig ccfg;
  ccfg.capacity = fm_budget;
  CpuOptimizedCache cache(ccfg);

  const uint64_t rows = kStore / kRowBytes;
  ZipfSampler zipf(rows, alpha);
  IndexPermuter perm(rows, 13);
  Rng rng(14);
  Histogram lat;
  uint64_t hits = 0;
  std::vector<uint8_t> out(kRowBytes);
  for (int i = 0; i < kReads; ++i) {
    const RowIndex row = perm.Permute(zipf.Sample(rng));
    const RowKey key{MakeTableId(0), row};
    size_t len = 0;
    if (cache.Lookup(key, out, &len)) {
      ++hits;
      lat.Record(ccfg.lookup_cpu);
      continue;
    }
    reader.ReadRow(row * kRowBytes, out, [&](Status s, SimDuration l) {
      if (s.ok()) {
        lat.Record(l);
        cache.Insert(key, out);
      }
    });
    loop.RunUntilIdle();
  }
  PathResult r;
  r.mean_us = lat.mean() / 1e3;
  r.p99_us = static_cast<double>(lat.P99()) / 1e3;
  r.hit_rate = static_cast<double>(hits) / kReads;
  r.fm_per_useful = static_cast<double>(reader.fm_bytes_moved()) /
                    (static_cast<double>(kReads) * kRowBytes);
  return r;
}

}  // namespace

int main() {
  bench::QuietLogs quiet;
  const double alpha = 0.9;
  bench::Section("mmap vs DIRECT_IO + row cache (Optane, 128B rows, Zipf 0.9)");
  bench::Table t({"FM budget MiB", "path", "mean us", "p99 us", "hit %",
                  "FM bytes/useful byte"});
  for (const Bytes budget : {1 * kMiB, 4 * kMiB, 8 * kMiB}) {
    const PathResult m = RunMmap(budget, alpha);
    const PathResult d = RunDirect(budget, alpha, /*sub_block=*/true);
    t.Row(AsMiB(budget), "mmap (page cache)", m.mean_us, m.p99_us, m.hit_rate * 100,
          m.fm_per_useful);
    t.Row(AsMiB(budget), "DIRECT_IO + row cache", d.mean_us, d.p99_us, d.hit_rate * 100,
          d.fm_per_useful);
  }
  t.Print();
  const PathResult m1 = RunMmap(4 * kMiB, alpha);
  const PathResult d1 = RunDirect(4 * kMiB, alpha, true);
  bench::Note(bench::Fmt("at 4MiB FM: mmap mean latency is %.1fx DIRECT_IO's "
                         "(paper: ~3x)",
                         m1.mean_us / d1.mean_us));
  bench::Note("mechanism: a 4KB page per 128B row wastes ~32x of FM, so the page cache");
  bench::Note("hit rate collapses versus a row cache with the same budget.");
  return 0;
}
