// Table 8 reproduction: M1 on simpler hardware (§5.1).
//
// Paper: serving M1 (143GB) from HW-L (2-socket, 256GB DRAM) at 240 QPS
// versus HW-SS (1-socket, 64GB + 2x2TB Nand) with SDM at 120 QPS. Same
// latency SLA (p95), steady-state cache hit >96%, sustained IOPS <10K
// (246K raw), fleet power 1200 -> 960 (20% saving), 159.4TB DRAM saved.
#include <cstdio>

#include "bench_util.h"
#include "dlrm/model_zoo.h"
#include "serving/cluster.h"

using namespace sdm;

namespace {

/// M1-mini: the M1 ratios (61/30 tables, pf 42/9, item batch 50) scaled to
/// bench-friendly table counts and pooling factors.
ModelConfig M1Mini() {
  ModelConfig model;
  model.name = "m1-mini";
  model.item_batch_size = 10;
  model.user_batch_size = 1;
  model.num_mlp_layers = 31;
  model.avg_mlp_width = 300;
  Rng rng(0x81);
  for (int i = 0; i < 12; ++i) {
    TableConfig t;
    t.name = bench::Fmt("m1.user.%d", i);
    t.role = TableRole::kUser;
    t.dtype = DataType::kInt8Rowwise;
    t.dim = 120;  // 128B stored rows (paper dims 90-172B)
    t.num_rows = 30'000;
    t.avg_pooling_factor = 10;
    t.zipf_alpha = rng.NextDouble(0.65, 0.9);
    model.tables.push_back(t);
  }
  for (int i = 0; i < 6; ++i) {
    TableConfig t;
    t.name = bench::Fmt("m1.item.%d", i);
    t.role = TableRole::kItem;
    t.dtype = DataType::kInt8Rowwise;
    t.dim = 120;
    t.num_rows = 2'000;
    t.avg_pooling_factor = 4;
    t.zipf_alpha = rng.NextDouble(0.9, 1.15);
    model.tables.push_back(t);
  }
  return model;
}

struct Scenario {
  double max_qps = 0;
  HostRunReport steady;
};

Scenario RunHwL(const ModelConfig& model, SimDuration sla) {
  HostSimConfig cfg;
  cfg.host = MakeHwL();
  cfg.fm_capacity = 64 * kMiB;  // big DRAM: everything direct-mapped
  // DRAM-only host: pin every table to FM.
  for (const auto& t : model.tables) cfg.tuning.never_on_sm.insert(t.name);
  cfg.tuning.enable_row_cache = false;
  cfg.workload.num_users = 1500;
  cfg.workload.seed = 8;
  cfg.seed = 8;
  HostSimulation sim(cfg);
  Status s = sim.LoadModel(model);
  if (!s.ok()) {
    std::fprintf(stderr, "HW-L load failed: %s\n", s.ToString().c_str());
    return {};
  }
  Scenario out;
  out.max_qps = sim.FindMaxQps(sla, /*use_p99=*/false, 1500, 50, 500'000);
  out.steady = sim.Run(out.max_qps * 0.9, 1500);
  // Eq. 5: QPS(HW) is the min of the latency/BW bound and the compute bound.
  out.max_qps = std::min(out.max_qps, out.steady.cpu_qps_bound);
  return out;
}

Scenario RunHwSS(const ModelConfig& model, SimDuration sla) {
  HostSimConfig cfg;
  cfg.host = MakeHwSS();  // 2x Nand
  cfg.fm_capacity = 28 * kMiB;  // 64GB-equivalent vs 95GB user side (scaled ratio)
  cfg.sm_backing_per_device = 64 * kMiB;
  // Production-like steady state: a bounded active-user population whose
  // sticky sets fit the cache (the paper reaches >96% hit within minutes).
  cfg.workload.num_users = 1500;
  cfg.workload.user_index_churn = 0.02;
  cfg.workload.seed = 8;
  cfg.seed = 8;
  HostSimulation sim(cfg);
  Status s = sim.LoadModel(model);
  if (!s.ok()) {
    std::fprintf(stderr, "HW-SS load failed: %s\n", s.ToString().c_str());
    return {};
  }
  sim.Warmup(6000);  // paper: steady state within minutes of a model update
  Scenario out;
  out.max_qps = sim.FindMaxQps(sla, /*use_p99=*/false, 1500, 25, 500'000);
  out.steady = sim.Run(out.max_qps * 0.9, 1500);
  out.max_qps = std::min(out.max_qps, out.steady.cpu_qps_bound);
  return out;
}

}  // namespace

int main() {
  bench::QuietLogs quiet;
  const ModelConfig model = M1Mini();
  const SimDuration sla = Millis(10);

  std::printf("model %s: %.1f MiB total, %.1f MiB user side\n", model.name.c_str(),
              AsMiB(model.TotalBytes()), AsMiB(model.BytesFor(TableRole::kUser)));

  const Scenario hw_l = RunHwL(model, sla);
  const Scenario hw_ss = RunHwSS(model, sla);

  bench::Section("measured per-host behaviour (p95 SLA = 10ms)");
  bench::Table m({"host", "max QPS", "p95 ms @ 0.9max", "hit %", "SM IOPS",
                  "IOPS raw (Eq. 8)"});
  const double raw_iops_per_q = model.LookupsPerQuery(TableRole::kUser);
  m.Row("HW-L (DRAM only)", hw_l.max_qps, hw_l.steady.p95.millis(), "-", "-", "-");
  m.Row("HW-SS + SDM", hw_ss.max_qps, hw_ss.steady.p95.millis(),
        hw_ss.steady.row_cache_hit_rate * 100, hw_ss.steady.sm_iops,
        hw_ss.steady.achieved_qps * raw_iops_per_q);
  m.Print();
  bench::Note(bench::Fmt(
      "paper: hit rate > 96%%; raw 246K IOPS reduced to <10K sustained. Measured "
      "reduction: %.0fx",
      hw_ss.steady.achieved_qps * raw_iops_per_q / std::max(1.0, hw_ss.steady.sm_iops)));

  bench::Section("Table 8 — fleet power at equal aggregate throughput");
  // Fleet demand scaled from the paper: 1200 HW-L hosts' worth of traffic.
  const double total_qps = hw_l.max_qps * 1200;
  const FleetEstimate e_l =
      EvaluateFleet({"HW-L", total_qps, hw_l.max_qps, MakeHwL().power, 0, 0});
  const FleetEstimate e_ss =
      EvaluateFleet({"HW-SS + SDM", total_qps, hw_ss.max_qps, MakeHwSS().power, 0, 0});
  bench::Table t({"Scenario", "QPS/host", "Power/host", "Total hosts", "Total power",
                  "paper"});
  t.Row("HW-L", hw_l.max_qps, MakeHwL().power, e_l.main_hosts, e_l.total_power,
        "240 / 1.0 / 1200 / 1200");
  t.Row("HW-SS + SDM", hw_ss.max_qps, MakeHwSS().power, e_ss.main_hosts, e_ss.total_power,
        "120 / 0.4 / 2400 / 960");
  t.Print();
  bench::Note(bench::Fmt("power saving: %.1f%% (paper: 20%%)",
                         PowerSaving(e_l, e_ss) * 100));

  // DRAM saved: user-side bytes move from DRAM to Nand across the fleet.
  const double dram_saved_tb = AsGiB(model.BytesFor(TableRole::kUser)) * 1024.0 /* scale */ *
                               e_ss.main_hosts / 1024.0;
  bench::Note(bench::Fmt("DRAM displaced to SM at production scale: ~%.0f TB "
                         "(paper: 159.4 TB)",
                         dram_saved_tb));
  return 0;
}
