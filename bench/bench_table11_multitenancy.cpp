// Table 11 reproduction: multi-tenancy through SDM (§5.3).
//
// Paper: experimental models run at low per-model QPS and leave accelerator
// hosts memory-capacity-bound at 63% utilization. Adding Optane SM lets
// more models co-locate, lifting utilization to 90% at +1% host power:
//   HW-FA       power 1.0,  util 0.63, fleet power 1.0
//   HW-FAO+SDM  power 1.01, util 0.90, fleet power 0.71   (29% saving)
#include <cstdio>

#include "bench_util.h"
#include "dlrm/model_zoo.h"
#include "serving/cluster.h"

using namespace sdm;

int main() {
  bench::QuietLogs quiet;

  // ---- Feasibility simulation: co-locate experimental models ------------
  bench::Section("simulation — co-locating experimental models on one HW-FAO host");
  HostSimConfig base;
  base.host = MakeHwFAO(2);
  base.fm_capacity = 24 * kMiB;  // host FM pool (scaled)
  base.sm_backing_per_device = 64 * kMiB;
  base.workload.num_users = 2000;
  base.workload.seed = 11;
  base.seed = 11;

  MultiTenantHost host(base, 0x7e);
  // Experimental models: M-class shapes at small scale, each too big for
  // its FM share alone.
  ModelConfig tenants[] = {
      MakeTinyUniformModel(64, 3, 1, 40'000),
      MakeTinyUniformModel(96, 2, 1, 35'000),
      MakeTinyUniformModel(64, 4, 1, 30'000),
      MakeTinyUniformModel(48, 2, 1, 45'000),
  };
  int exp_id = 0;
  for (auto& m : tenants) m.name = bench::Fmt("exp-model-%d", exp_id++);
  for (const auto& m : tenants) {
    if (Status s = host.AddTenant(m, 4 * kMiB); !s.ok()) {
      std::fprintf(stderr, "tenant load failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  const MultiTenantReport r = host.Run(/*qps_per_tenant=*/150, /*queries=*/1200);

  bench::Table t({"tenant", "QPS", "p95 ms", "hit %", "FM share MiB", "SM MiB"});
  Bytes sm_total = 0;
  for (const auto& tr : r.tenants) {
    t.Row(tr.model_name, tr.run.achieved_qps, tr.run.p95.millis(),
          tr.run.row_cache_hit_rate * 100, AsMiB(tr.fm_used), AsMiB(tr.sm_used));
    sm_total += tr.sm_used;
  }
  t.Print();
  bench::Note(bench::Fmt(
      "FM used %.1f / %.1f MiB; the tenant set needs %.1f MiB more than the host "
      "FM without SM (fits without SM: %s)",
      AsMiB(r.fm_total), AsMiB(r.fm_capacity), AsMiB(r.fm_total + sm_total) - AsMiB(r.fm_capacity),
      r.fits_in_fm ? "yes" : "NO"));

  // ---- Table 11 roofline -------------------------------------------------
  bench::Section("Table 11 — fleet perf/watt roofline");
  MultiTenancyScenario sc;  // paper numbers: 0.63 -> 0.90 util, power 1.0 -> 1.01
  const MultiTenancyEstimate e = EvaluateMultiTenancy(sc);
  bench::Table f({"Scenario", "Power", "Utilization", "fleet power", "paper"});
  f.Row("HW-FA", sc.base_host_power, sc.base_utilization, 1.0, "1.0 / 0.63 / 1.0");
  f.Row("HW-FAO + SDM", sc.sdm_host_power, sc.sdm_utilization, e.fleet_power_ratio,
        "1.01 / 0.90 / 0.71");
  f.Print();
  bench::Note(bench::Fmt("fleet power ratio %.2f -> %.0f%% power saving (paper: 29%%), "
                         "perf/watt +%.0f%%",
                         e.fleet_power_ratio, (1 - e.fleet_power_ratio) * 100,
                         e.perf_per_watt_gain * 100));

  bench::Section("sensitivity — fleet power vs achievable utilization");
  bench::Table s({"util with SDM", "fleet power ratio", "saving %"});
  for (const double util : {0.63, 0.70, 0.80, 0.90, 0.95}) {
    MultiTenancyScenario sc2;
    sc2.sdm_utilization = util;
    const auto e2 = EvaluateMultiTenancy(sc2);
    s.Row(util, e2.fleet_power_ratio, (1 - e2.fleet_power_ratio) * 100);
  }
  s.Print();
  return 0;
}
