// Table 11 reproduction: multi-tenancy through SDM (§5.3) — now on the
// real shared-device path (src/tenant).
//
// Paper: experimental models run at low per-model QPS and leave accelerator
// hosts memory-capacity-bound at 63% utilization. Adding Optane SM lets
// more models co-locate, lifting utilization to 90% at +1% host power:
//   HW-FA       power 1.0,  util 0.63, fleet power 1.0
//   HW-FAO+SDM  power 1.01, util 0.90, fleet power 0.71   (29% saving)
//
// This bench drives the mechanism behind that claim at IO granularity:
// tenants serving the same base model (A/B variants) co-locate on ONE
// device stack, their table content dedups to shared extents, and their
// overlapping hot sets single-flight in the shared BatchScheduler —
// versus the isolated baseline where every tenant runs a private stack.
// A QoS-mix section adds background-class tenants and checks the
// foreground p99 they are NOT allowed to destroy.
//
// Headline --json metrics (gated in CI against bench/baselines/
// multitenant.json):
//   cN_read_reduction_x : isolated device reads / shared device reads
//   fg_p99_ratio        : fg-only p99 / fg p99 with background tenants added
#include <cstdio>

#include "bench_util.h"
#include "dlrm/model_zoo.h"
#include "serving/cluster.h"

using namespace sdm;

namespace {

HostSimConfig BaseConfig() {
  HostSimConfig base;
  base.host = MakeHwFAO(2);
  base.fm_capacity = 24 * kMiB;  // host FM pool (scaled)
  base.sm_backing_per_device = 64 * kMiB;
  base.workload.num_users = 2000;
  base.workload.seed = 11;
  base.seed = 11;
  // Widen the cross-request merge window a little: co-located tenants miss
  // the same hot blocks within tens of microseconds of each other, not in
  // the same instant.
  base.tuning.max_batch_delay = Micros(200);
  // Block-granularity reads: one tenant's 4KiB block read covers ~60 rows
  // that co-located tenants' misses then join — the paper's "share each
  // other's hot blocks" claim at its natural granularity.
  base.tuning.sub_block_reads = false;
  // Experimental shards serve user embeddings straight from SM: FM shares
  // this small leave no useful row-cache, so the hot set lives at the
  // device and co-location either shares it or pays for it N times.
  base.tuning.enable_row_cache = false;
  return base;
}

/// Physical SM device reads across the host, both modes.
uint64_t TotalDeviceReads(MultiTenantHost& host) {
  if (host.shared_device()) {
    uint64_t reads = 0;
    for (size_t d = 0; d < host.service()->device_count(); ++d) {
      reads += host.service()->device(d).stats().CounterValue("reads");
    }
    return reads;
  }
  uint64_t reads = 0;
  for (size_t i = 0; i < host.tenant_count(); ++i) {
    SdmStore& store = host.tenant_store(i);
    for (size_t d = 0; d < store.sm_device_count(); ++d) {
      reads += store.sm_device(d).stats().CounterValue("reads");
    }
  }
  return reads;
}

struct SweepPoint {
  MultiTenantReport report;
  uint64_t device_reads = 0;
  double fg_p99_ms = 0;   ///< mean p99 over foreground tenants
  double fg_qps = 0;      ///< aggregate foreground achieved QPS
};

/// Co-locates `foreground` + `background` tenants of the same base model
/// and runs one measured pass.
SweepPoint RunTenants(bool shared, int foreground, int background, double qps,
                      uint64_t queries) {
  const HostSimConfig base = BaseConfig();
  MultiTenantHost host(base, /*seed=*/0x7e, shared);
  // Capacity-bound tenants (the §5.3 premise): user tables far larger than
  // the FM share, so the row cache cannot hold the hot set and hot-block
  // misses recur — the traffic co-location must absorb. The item table is
  // kept small so the FM share is spent on cache, not direct tables.
  ModelConfig model = MakeTinyUniformModel(64, 3, 1, 40'000);
  model.tables.back().num_rows = 4'000;  // item side stays FM-direct
  // Production user-table skew (Fig. 4: most accesses concentrate in few
  // rows). The hot blocks this concentrates are exactly what co-located
  // tenants can share.
  for (auto& tc : model.tables) {
    if (tc.role == TableRole::kUser) tc.zipf_alpha = 1.1;
  }
  const Bytes fm_share = 1 * kMiB;
  for (int i = 0; i < foreground; ++i) {
    if (Status s = host.AddTenant(model, fm_share, TenantClass::kForeground); !s.ok()) {
      std::fprintf(stderr, "tenant load failed: %s\n", s.ToString().c_str());
      std::exit(1);
    }
  }
  for (int i = 0; i < background; ++i) {
    if (Status s = host.AddTenant(model, fm_share, TenantClass::kBackground); !s.ok()) {
      std::fprintf(stderr, "tenant load failed: %s\n", s.ToString().c_str());
      std::exit(1);
    }
  }
  SweepPoint pt;
  const uint64_t reads0 = TotalDeviceReads(host);
  pt.report = host.Run(qps, queries);
  pt.device_reads = TotalDeviceReads(host) - reads0;
  int fg = 0;
  for (const auto& t : pt.report.tenants) {
    if (t.cls != TenantClass::kForeground) continue;
    pt.fg_p99_ms += t.run.p99.millis();
    pt.fg_qps += t.run.achieved_qps;
    ++fg;
  }
  if (fg > 0) pt.fg_p99_ms /= fg;
  return pt;
}

}  // namespace

int main(int argc, char** argv) {
  bench::QuietLogs quiet;
  bench::JsonReporter json(argc, argv, "table11_multitenancy");

  constexpr double kQps = 8000;
  constexpr uint64_t kQueries = 3000;

  // ---- Isolated vs shared device stack, tenant-count sweep ---------------
  bench::Section("shared-device co-location — isolated stacks vs one SharedDeviceService");
  bench::Table t({"tenants", "mode", "device reads", "sf hits", "x-tenant", "fg p99 ms",
                  "SM MiB (phys/logical)", "read reduction"});
  for (const int tenants : {2, 4, 6}) {
    const SweepPoint iso = RunTenants(false, tenants, 0, kQps, kQueries);
    const SweepPoint sh = RunTenants(true, tenants, 0, kQps, kQueries);
    uint64_t xt = 0;
    for (const auto& tr : sh.report.tenants) xt += tr.cross_tenant_hits;
    // Isolated mode still single-flights WITHIN each tenant (per-host
    // scheduler); only cross-tenant sharing is impossible there.
    uint64_t iso_sf = 0;
    for (const auto& tr : iso.report.tenants) iso_sf += tr.run.singleflight_hits;
    const double reduction = sh.device_reads == 0
                                 ? 0
                                 : static_cast<double>(iso.device_reads) /
                                       static_cast<double>(sh.device_reads);
    t.Row(tenants, "isolated", iso.device_reads, iso_sf,
          uint64_t{0}, iso.fg_p99_ms,
          bench::Fmt("%.1f / %.1f", AsMiB(iso.report.sm_unique_bytes),
                     AsMiB(iso.report.sm_logical_bytes)),
          "1.00");
    t.Row(tenants, "shared", sh.device_reads, sh.report.io.singleflight_hits, xt,
          sh.fg_p99_ms,
          bench::Fmt("%.1f / %.1f", AsMiB(sh.report.sm_unique_bytes),
                     AsMiB(sh.report.sm_logical_bytes)),
          bench::Fmt("%.2f", reduction));
    json.Metric(bench::Fmt("c%d_read_reduction_x", tenants), reduction);
    json.Metric(bench::Fmt("c%d_cross_tenant_hits", tenants), xt);
    if (tenants == 4) {
      json.Metric("c4_dedup_saved_mib", AsMiB(sh.report.sm_logical_bytes -
                                              sh.report.sm_unique_bytes));
    }
  }
  t.Print();
  bench::Note("same base model across tenants (A/B variants): identical tables dedup");
  bench::Note("to shared extents, so overlapping hot-set misses single-flight across");
  bench::Note("store boundaries. Isolated mode issues every tenant's reads privately —");
  bench::Note("and over-provisions hardware (N private 2-SSD stacks vs ONE shared one),");
  bench::Note("so the comparable metric is device reads; shared mode also holds its p99");
  bench::Note("on a quarter (or sixth) of the devices.");

  // ---- QoS mix: background tenants must not starve foreground p99 --------
  bench::Section("QoS lanes — adding background tenants to a foreground pair");
  const SweepPoint fg_only = RunTenants(true, 2, 0, kQps, kQueries);
  const SweepPoint mixed = RunTenants(true, 2, 2, kQps, kQueries);
  double bg_p99 = 0;
  int bg_n = 0;
  for (const auto& tr : mixed.report.tenants) {
    if (tr.cls == TenantClass::kBackground) {
      bg_p99 += tr.run.p99.millis();
      ++bg_n;
    }
  }
  if (bg_n > 0) bg_p99 /= bg_n;
  bench::Table q({"config", "fg p99 ms", "bg p99 ms", "bg reads", "bg parked",
                  "bg promoted"});
  q.Row("2 fg", fg_only.fg_p99_ms, 0.0, fg_only.report.io.background_reads,
        fg_only.report.io.background_parked, fg_only.report.io.background_promoted);
  q.Row("2 fg + 2 bg", mixed.fg_p99_ms, bg_p99, mixed.report.io.background_reads,
        mixed.report.io.background_parked, mixed.report.io.background_promoted);
  q.Print();
  const double fg_p99_ratio =
      mixed.fg_p99_ms == 0 ? 0 : fg_only.fg_p99_ms / mixed.fg_p99_ms;
  bench::Note(bench::Fmt(
      "fg p99 ratio (fg-only / mixed) %.2f — background demand rides the byte-"
      "budgeted lane (parked under pressure, promoted on fg overlap), so doubling "
      "tenancy with background scorers costs foreground %.0f%% p99",
      fg_p99_ratio, (1 / std::max(fg_p99_ratio, 1e-9) - 1) * 100));
  json.Metric("fg_p99_ratio", fg_p99_ratio);
  json.Metric("bg_reads", mixed.report.io.background_reads);
  for (const auto& tr : mixed.report.tenants) {
    bench::Note(tr.Summary());
  }

  // ---- Feasibility: the tenant set does not fit in FM without SM ---------
  bench::Section("capacity — the co-located set needs SM (§5.3 setup)");
  bench::Table f2({"tenant", "QPS", "p95 ms", "hit %", "FM share MiB", "SM MiB"});
  Bytes sm_total = 0;
  for (const auto& tr : mixed.report.tenants) {
    f2.Row(tr.model_name, tr.run.achieved_qps, tr.run.p95.millis(),
           tr.run.row_cache_hit_rate * 100, AsMiB(tr.fm_used), AsMiB(tr.sm_used));
    sm_total += tr.sm_used;
  }
  f2.Print();
  bench::Note(bench::Fmt(
      "FM used %.1f / %.1f MiB; the tenant set needs %.1f MiB more than the host "
      "FM without SM (fits without SM: %s); extent dedup keeps physical SM at "
      "%.1f of %.1f logical MiB",
      AsMiB(mixed.report.fm_total), AsMiB(mixed.report.fm_capacity),
      AsMiB(mixed.report.fm_total + sm_total) - AsMiB(mixed.report.fm_capacity),
      mixed.report.fits_in_fm ? "yes" : "NO", AsMiB(mixed.report.sm_unique_bytes),
      AsMiB(mixed.report.sm_logical_bytes)));

  // ---- Table 11 roofline -------------------------------------------------
  bench::Section("Table 11 — fleet perf/watt roofline");
  MultiTenancyScenario sc;  // paper numbers: 0.63 -> 0.90 util, power 1.0 -> 1.01
  const MultiTenancyEstimate e = EvaluateMultiTenancy(sc);
  bench::Table f({"Scenario", "Power", "Utilization", "fleet power", "paper"});
  f.Row("HW-FA", sc.base_host_power, sc.base_utilization, 1.0, "1.0 / 0.63 / 1.0");
  f.Row("HW-FAO + SDM", sc.sdm_host_power, sc.sdm_utilization, e.fleet_power_ratio,
        "1.01 / 0.90 / 0.71");
  f.Print();
  bench::Note(bench::Fmt("fleet power ratio %.2f -> %.0f%% power saving (paper: 29%%), "
                         "perf/watt +%.0f%%",
                         e.fleet_power_ratio, (1 - e.fleet_power_ratio) * 100,
                         e.perf_per_watt_gain * 100));

  bench::Section("sensitivity — fleet power vs achievable utilization");
  bench::Table s({"util with SDM", "fleet power ratio", "saving %"});
  for (const double util : {0.63, 0.70, 0.80, 0.90, 0.95}) {
    MultiTenancyScenario sc2;
    sc2.sdm_utilization = util;
    const auto e2 = EvaluateMultiTenancy(sc2);
    s.Row(util, e2.fleet_power_ratio, (1 - e2.fleet_power_ratio) * 100);
  }
  s.Print();
  return 0;
}
