// Ablation (§4.3): multi-level cache — row cache backed by a block cache.
//
// Paper: "We also evaluated multi-level cache (row cache backed by a block
// cache) but did not observe any benefit." Reason: Fig. 5 shows almost no
// spatial locality, so a cached 4KB block rarely serves a second row; the
// block layer just takes FM away from the row cache (32x denser for 128B
// rows) and adds a probe to every miss path.
#include <cstdio>

#include "bench_util.h"
#include "dlrm/model_zoo.h"
#include "serving/host.h"

using namespace sdm;

namespace {

struct Config {
  const char* name;
  bool block_cache;
  double block_fraction;
};

struct Outcome {
  HostRunReport report;
  uint64_t block_hits = 0;
  uint64_t row_hits = 0;
  uint64_t sm_reads = 0;
};

Outcome Run(const Config& c) {
  ModelConfig model = MakeTinyUniformModel(120, 4, 1, 40'000);  // 128B rows
  model.tables.back().num_rows = 2000;
  HostSimConfig cfg;
  cfg.host = MakeHwAO();
  cfg.fm_capacity = 8 * kMiB;
  cfg.sm_backing_per_device = 64 * kMiB;
  cfg.tuning.enable_block_cache = c.block_cache;
  cfg.tuning.block_cache_fraction = c.block_fraction;
  cfg.workload.num_users = 6000;
  cfg.workload.user_index_churn = 0.05;
  cfg.workload.seed = 27;
  cfg.seed = 27;
  HostSimulation sim(cfg);
  if (Status s = sim.LoadModel(model); !s.ok()) {
    std::fprintf(stderr, "%s: load failed: %s\n", c.name, s.ToString().c_str());
    return {};
  }
  sim.Warmup(6000);
  Outcome out;
  out.report = sim.Run(400, 3000);
  out.block_hits = sim.engine().lookups().stats().CounterValue("rows_block_hit");
  out.row_hits = sim.engine().lookups().stats().CounterValue("rows_cache_hit");
  out.sm_reads = sim.engine().lookups().stats().CounterValue("rows_sm_read");
  return out;
}

}  // namespace

int main() {
  bench::QuietLogs quiet;
  bench::Section("§4.3 ablation — single-level row cache vs row-over-block cache");
  bench::Table t({"configuration", "row hit %", "block hits", "SM rows/query", "p95 ms",
                  "mean us"});
  const Config configs[] = {
      {"row cache only", false, 0.0},
      {"row + block (25% FM to blocks)", true, 0.25},
      {"row + block (50% FM to blocks)", true, 0.50},
      {"row + block (75% FM to blocks)", true, 0.75},
  };
  Outcome baseline{};
  for (const Config& c : configs) {
    const Outcome o = Run(c);
    if (o.report.queries_completed == 0) continue;
    if (!c.block_cache) baseline = o;
    const double rows_per_q = static_cast<double>(o.report.sm_iops) /
                              std::max(1.0, o.report.achieved_qps);
    t.Row(c.name, o.report.row_cache_hit_rate * 100, o.block_hits, rows_per_q,
          o.report.p95.millis(),
          static_cast<double>(o.report.mean.nanos()) / 1e3);
  }
  t.Print();
  bench::Note("paper conclusion reproduced: the block layer serves almost nothing");
  bench::Note("(no spatial locality to exploit) while shrinking the row cache, so");
  bench::Note("hit rate and latency only get worse as FM shifts to blocks.");
  (void)baseline;
  return 0;
}
