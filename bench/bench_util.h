// Shared helpers for the paper-reproduction benches: aligned table printing
// and standard scaled host/model setups. Every bench prints the paper's
// rows/series followed by a "paper vs measured" note where applicable.
#pragma once

#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "serving/host.h"

namespace sdm::bench {

/// Fixed-width table printer: Row("a", "b", ...) then Print().
class Table {
 public:
  explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  template <typename... Ts>
  void Row(Ts&&... cells) {
    rows_.push_back({ToCell(std::forward<Ts>(cells))...});
  }

  void Print() const {
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    }
    PrintRow(headers_, widths);
    std::string sep;
    for (size_t c = 0; c < widths.size(); ++c) {
      sep += std::string(widths[c] + 2, '-');
    }
    std::printf("%s\n", sep.c_str());
    for (const auto& row : rows_) PrintRow(row, widths);
  }

 private:
  static std::string ToCell(const char* s) { return s; }
  static std::string ToCell(std::string s) { return s; }
  static std::string ToCell(double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.2f", v);
    return buf;
  }
  static std::string ToCell(int v) { return std::to_string(v); }
  static std::string ToCell(uint64_t v) { return std::to_string(v); }

  static void PrintRow(const std::vector<std::string>& cells,
                       const std::vector<size_t>& widths) {
    std::string line;
    for (size_t c = 0; c < cells.size() && c < widths.size(); ++c) {
      line += cells[c];
      line += std::string(widths[c] - cells[c].size() + 2, ' ');
    }
    std::printf("%s\n", line.c_str());
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline void Section(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void Note(const std::string& text) { std::printf("  %s\n", text.c_str()); }

inline std::string Fmt(const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  return buf;
}

/// Quiet logging for benches.
struct QuietLogs {
  QuietLogs() { SetLogLevel(LogLevel::kWarn); }
};

/// Machine-readable bench output for the BENCH_*.json perf trajectory.
///
/// Construct from main's argc/argv; `--json` (stdout) or `--json=PATH`
/// (file) enables it. Metrics accumulate and are emitted as one JSON
/// object on Flush() or destruction:
///
///   {"bench": "coalescing", "metrics": {"device_reads": 123, ...}}
///
/// Without the flag every call is a no-op, so benches can report
/// unconditionally and keep their human-readable tables as the default.
class JsonReporter {
 public:
  JsonReporter(int argc, char** argv, std::string bench_name)
      : bench_name_(std::move(bench_name)) {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--json") {
        enabled_ = true;
      } else if (arg.rfind("--json=", 0) == 0) {
        enabled_ = true;
        path_ = arg.substr(7);
      }
    }
  }

  JsonReporter(const JsonReporter&) = delete;
  JsonReporter& operator=(const JsonReporter&) = delete;
  ~JsonReporter() { Flush(); }

  [[nodiscard]] bool enabled() const { return enabled_; }

  void Metric(const std::string& name, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    fields_.emplace_back(name, buf);
  }
  void Metric(const std::string& name, uint64_t value) {
    fields_.emplace_back(name, std::to_string(value));
  }
  void Metric(const std::string& name, int value) {
    fields_.emplace_back(name, std::to_string(value));
  }

  void Flush() {
    if (!enabled_ || flushed_) return;
    flushed_ = true;
    std::string out = "{\"bench\": \"" + bench_name_ + "\", \"metrics\": {";
    for (size_t i = 0; i < fields_.size(); ++i) {
      if (i > 0) out += ", ";
      out += "\"" + fields_[i].first + "\": " + fields_[i].second;
    }
    out += "}}\n";
    if (path_.empty()) {
      std::printf("%s", out.c_str());
    } else if (std::FILE* f = std::fopen(path_.c_str(), "w")) {
      std::fputs(out.c_str(), f);
      std::fclose(f);
    } else {
      std::fprintf(stderr, "JsonReporter: cannot write %s\n", path_.c_str());
    }
  }

 private:
  std::string bench_name_;
  bool enabled_ = false;
  bool flushed_ = false;
  std::string path_;
  std::vector<std::pair<std::string, std::string>> fields_;
};

}  // namespace sdm::bench
