// Shared helpers for the paper-reproduction benches: aligned table printing
// and standard scaled host/model setups. Every bench prints the paper's
// rows/series followed by a "paper vs measured" note where applicable.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

#include "common/logging.h"
#include "serving/host.h"

namespace sdm::bench {

/// Fixed-width table printer: Row("a", "b", ...) then Print().
class Table {
 public:
  explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  template <typename... Ts>
  void Row(Ts&&... cells) {
    rows_.push_back({ToCell(std::forward<Ts>(cells))...});
  }

  void Print() const {
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    }
    PrintRow(headers_, widths);
    std::string sep;
    for (size_t c = 0; c < widths.size(); ++c) {
      sep += std::string(widths[c] + 2, '-');
    }
    std::printf("%s\n", sep.c_str());
    for (const auto& row : rows_) PrintRow(row, widths);
  }

 private:
  static std::string ToCell(const char* s) { return s; }
  static std::string ToCell(std::string s) { return s; }
  static std::string ToCell(double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.2f", v);
    return buf;
  }
  static std::string ToCell(int v) { return std::to_string(v); }
  static std::string ToCell(uint64_t v) { return std::to_string(v); }

  static void PrintRow(const std::vector<std::string>& cells,
                       const std::vector<size_t>& widths) {
    std::string line;
    for (size_t c = 0; c < cells.size() && c < widths.size(); ++c) {
      line += cells[c];
      line += std::string(widths[c] - cells[c].size() + 2, ' ');
    }
    std::printf("%s\n", line.c_str());
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline void Section(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void Note(const std::string& text) { std::printf("  %s\n", text.c_str()); }

inline std::string Fmt(const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  return buf;
}

/// Quiet logging for benches.
struct QuietLogs {
  QuietLogs() { SetLogLevel(LogLevel::kWarn); }
};

}  // namespace sdm::bench
