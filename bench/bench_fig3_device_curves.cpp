// Figure 3 reproduction: IOPS vs loaded latency for PCIe Nand Flash and
// Optane SSD.
//
// Paper methodology: "Given each query to a table involves multiple lookups
// (pooling factor), we benchmark each device with average of 20 lookups per
// IO [batch]. The latency is for the batch of 20 lookups." Expected shape:
// Optane holds O(10)us latency to ~4M IOPS; Nand starts at O(100)us and
// collapses well below 0.5M IOPS.
#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "common/event_loop.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "io/io_engine.h"

using namespace sdm;

namespace {

struct CurvePoint {
  double offered_kiops;
  double achieved_kiops;
  double mean_us;
  double p95_us;
  double p99_us;
};

CurvePoint MeasureAt(const DeviceSpec& spec, double offered_iops, int num_batches) {
  constexpr int kLookupsPerBatch = 20;
  constexpr Bytes kRowBytes = 128;
  EventLoop loop;
  NvmeDevice dev(spec, 8 * kMiB, &loop, 42);
  std::vector<uint8_t> init(8 * kMiB, 1);
  (void)dev.Write(0, init);
  IoEngineConfig ecfg;
  ecfg.queue_depth = 512;
  IoEngine engine(&dev, &loop, ecfg);

  Rng rng(7);
  Histogram batch_latency;
  uint64_t completed_ios = 0;
  // Each batch arrival issues 20 reads; batch latency = last completion.
  SimTime arrival(0);
  const double batch_rate = offered_iops / kLookupsPerBatch;
  std::vector<std::unique_ptr<std::vector<uint8_t>>> buffers;
  for (int b = 0; b < num_batches; ++b) {
    arrival += Seconds(rng.NextExponential(1.0 / batch_rate));
    loop.ScheduleAt(arrival, [&, b] {
      auto remaining = std::make_shared<int>(kLookupsPerBatch);
      const SimTime start = loop.Now();
      for (int i = 0; i < kLookupsPerBatch; ++i) {
        const Bytes offset =
            (rng.NextBounded(8 * kMiB / kRowBytes - 1)) * kRowBytes;
        const bool sgl = spec.supports_sub_block;
        auto buf = std::make_unique<std::vector<uint8_t>>(
            NvmeDevice::BusBytes(offset, kRowBytes, sgl));
        const std::span<uint8_t> dest(buf->data(), buf->size());
        buffers.push_back(std::move(buf));
        engine.SubmitRead(offset, kRowBytes, sgl, dest,
                          [&, remaining, start](Status, SimDuration) {
                            ++completed_ios;
                            if (--*remaining == 0) {
                              batch_latency.Record(loop.Now() - start);
                            }
                          });
      }
    });
  }
  loop.RunUntilIdle();

  CurvePoint p;
  p.offered_kiops = offered_iops / 1e3;
  p.achieved_kiops = static_cast<double>(completed_ios) / loop.Now().seconds() / 1e3;
  p.mean_us = batch_latency.mean() / 1e3;
  p.p95_us = static_cast<double>(batch_latency.P95()) / 1e3;
  p.p99_us = static_cast<double>(batch_latency.P99()) / 1e3;
  return p;
}

void Curve(const DeviceSpec& spec, const std::vector<double>& utilizations) {
  bench::Section(bench::Fmt("Fig. 3 — %s (20-lookup batches, 128B rows)",
                            ToString(spec.technology)));
  bench::Table t({"offered kIOPS", "achieved kIOPS", "mean us", "p95 us", "p99 us"});
  for (const double util : utilizations) {
    const double offered = spec.max_read_iops * util;
    // Enough batches to stabilize percentiles, bounded for runtime.
    const int batches = 3000;
    const CurvePoint p = MeasureAt(spec, offered, batches);
    t.Row(p.offered_kiops, p.achieved_kiops, p.mean_us, p.p95_us, p.p99_us);
  }
  t.Print();
}

}  // namespace

int main() {
  bench::QuietLogs quiet;
  const std::vector<double> utils = {0.05, 0.2, 0.4, 0.6, 0.8, 0.95, 1.1};
  Curve(MakeNandFlashSpec(), utils);
  Curve(MakeOptaneSsdSpec(), utils);
  bench::Note("paper shape: Optane sustains ~8x the IOPS at ~1/10th the latency;");
  bench::Note("Nand latency grows quickly with load and has a pronounced p99 tail.");
  return 0;
}
