// Appendix A.1 reproduction: interrupt-driven vs polling IO completion.
//
// Paper: "removing the IRQ overhead and performing polling based IO at the
// OS side could show better performance for both latency and IOPS/Core. We
// observe 50% improvement on IOPS/Core when enabling polling."
#include <cstdio>

#include "bench_util.h"
#include "common/event_loop.h"
#include "io/io_engine.h"

using namespace sdm;

namespace {

struct ModeResult {
  double iops_per_core;
  double mean_us;
  double p99_us;
  double cpu_us_per_io;
};

ModeResult Run(CompletionMode mode, double util) {
  EventLoop loop;
  NvmeDevice dev(MakeOptaneSsdSpec(), 8 * kMiB, &loop, 18);
  std::vector<uint8_t> init(8 * kMiB, 1);
  (void)dev.Write(0, init);
  IoEngineConfig cfg;
  cfg.completion_mode = mode;
  cfg.queue_depth = 512;
  IoEngine engine(&dev, &loop, cfg);

  Rng rng(19);
  const int kIos = 100'000;
  const double rate = MakeOptaneSsdSpec().max_read_iops * util;
  SimTime arrival(0);
  std::vector<uint8_t> buf(512);
  for (int i = 0; i < kIos; ++i) {
    arrival += Seconds(rng.NextExponential(1.0 / rate));
    loop.ScheduleAt(arrival, [&] {
      const Bytes offset = rng.NextBounded(8 * kMiB / 512 - 1) * 512;
      engine.SubmitRead(offset, 512, true, buf, [](Status, SimDuration) {});
    });
  }
  loop.RunUntilIdle();

  ModeResult r;
  r.iops_per_core = engine.IopsPerCore();
  r.mean_us = engine.latency().mean() / 1e3;
  r.p99_us = static_cast<double>(engine.latency().P99()) / 1e3;
  r.cpu_us_per_io = static_cast<double>(engine.cpu_time().nanos()) / kIos / 1e3;
  return r;
}

}  // namespace

int main() {
  bench::QuietLogs quiet;
  bench::Section("A.1 — interrupt vs polling completions (Optane, 512B reads)");
  bench::Table t({"util", "mode", "IOPS/core", "CPU us/IO", "mean us", "p99 us"});
  ModeResult irq_hi{};
  ModeResult poll_hi{};
  for (const double util : {0.3, 0.8}) {
    const ModeResult irq = Run(CompletionMode::kInterrupt, util);
    const ModeResult poll = Run(CompletionMode::kPolling, util);
    t.Row(util, "interrupt", irq.iops_per_core, irq.cpu_us_per_io, irq.mean_us,
          irq.p99_us);
    t.Row(util, "polling", poll.iops_per_core, poll.cpu_us_per_io, poll.mean_us,
          poll.p99_us);
    irq_hi = irq;
    poll_hi = poll;
  }
  t.Print();
  bench::Note(bench::Fmt("IOPS/core improvement from polling: %.0f%% (paper: 50%%)",
                         100.0 * (poll_hi.iops_per_core / irq_hi.iops_per_core - 1.0)));
  bench::Note("paper also notes polling was prohibitively complex to deploy under");
  bench::Note("operator-based execution (no producer-consumer pool across operators);");
  bench::Note("the engine keeps both modes behind one flag (IoEngineConfig).");
  return 0;
}
