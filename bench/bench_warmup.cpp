// Appendix A.4 reproduction: cold-cache warmup after a model update.
//
// Paper: "caches warmup in order of a few minutes. But the perf impact need
// to be compensated by over-provisioning the capacity. For example if
// r=10% of hosts are being updated, p=50% perf during warmup, update every
// t=30 minutes, warmup in w=5 minutes, we need (r*w)/(p*t) = 1.2% more
// capacity."
#include <cstdio>

#include "bench_util.h"
#include "core/model_updater.h"
#include "dlrm/model_zoo.h"
#include "serving/host.h"

using namespace sdm;

int main() {
  bench::QuietLogs quiet;
  const ModelConfig model = MakeTinyUniformModel(32, 4, 1, 20'000);
  HostSimConfig cfg;
  cfg.host = MakeHwSS();
  cfg.fm_capacity = 6 * kMiB;
  cfg.sm_backing_per_device = 64 * kMiB;
  cfg.workload.num_users = 3000;
  cfg.workload.user_index_churn = 0.03;
  cfg.workload.seed = 23;
  cfg.seed = 23;
  HostSimulation sim(cfg);
  if (Status s = sim.LoadModel(model); !s.ok()) {
    std::fprintf(stderr, "load failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // Steady state first.
  sim.Warmup(6000);
  const HostRunReport steady = sim.Run(200, 1000);

  // Full offline update -> cold caches.
  ModelUpdater updater(&sim.store());
  UpdateOptions opts;
  opts.online = false;
  if (auto r = updater.Update(opts); !r.ok()) {
    std::fprintf(stderr, "update failed: %s\n", r.status().ToString().c_str());
    return 1;
  }

  bench::Section("A.4 — hit rate & latency recovery after a full (offline) update");
  bench::Table t({"queries since update", "virtual seconds", "hit %", "p95 ms",
                  "perf vs steady %"});
  double recovered_at_queries = -1;
  double served = 0;
  for (int chunk = 0; chunk < 12; ++chunk) {
    const HostRunReport r = sim.Run(200, 500);
    served += 500;
    const double perf = steady.p95.nanos() > 0
                            ? 100.0 * static_cast<double>(steady.p95.nanos()) /
                                  static_cast<double>(r.p95.nanos())
                            : 0;
    t.Row(static_cast<uint64_t>(served), served / 200.0, r.row_cache_hit_rate * 100,
          r.p95.millis(), perf);
    if (recovered_at_queries < 0 &&
        r.row_cache_hit_rate > steady.row_cache_hit_rate - 0.02) {
      recovered_at_queries = served;
    }
  }
  t.Print();
  if (recovered_at_queries > 0) {
    bench::Note(bench::Fmt("hit rate back within 2%% of steady after ~%.0f queries "
                           "(~%.0f virtual seconds at 200 QPS)",
                           recovered_at_queries, recovered_at_queries / 200.0));
  }
  bench::Note(bench::Fmt("steady state reference: hit %.1f%%, p95 %.2fms",
                         steady.row_cache_hit_rate * 100, steady.p95.millis()));

  bench::Section("A.4 — capacity over-provisioning roofline (r*w)/(p*t)");
  bench::Table c({"rolling r", "warmup w (min)", "perf p", "interval t (min)",
                  "extra capacity %"});
  struct Case {
    double r, w, p, t;
  };
  for (const Case k : {Case{0.10, 5, 0.50, 30}, Case{0.10, 2, 0.70, 30},
                       Case{0.20, 5, 0.50, 15}, Case{0.05, 5, 0.80, 60}}) {
    c.Row(k.r, k.w, k.p, k.t,
          ModelUpdater::WarmupCapacityOverhead(k.r, k.w, k.p, k.t) * 100);
  }
  c.Print();
  bench::Note("paper's worked example (r=10%, w=5, p=50%, t=30) gives 3.3% by the");
  bench::Note("formula as printed; the paper's own arithmetic states 1.2% — see");
  bench::Note("EXPERIMENTS.md for the discrepancy note.");
  return 0;
}
