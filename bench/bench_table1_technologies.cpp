// Table 1 reproduction: SM technology options, plus derived quantities the
// paper discusses alongside them (update-interval endurance math, relative
// cost of a deployment-sized device).
#include <cstdio>

#include "bench_util.h"
#include "device/device_spec.h"
#include "device/endurance.h"

using namespace sdm;

int main() {
  bench::Section("Table 1 — slow-memory (SM) technology options");
  bench::Table t({"Technology", "IOPS (M)", "Latency (us)", "Endurance (DWPD)",
                  "Granularity (B)", "Cost vs DRAM", "Sourcing"});
  for (const DeviceSpec& s : Table1Specs()) {
    t.Row(ToString(s.technology), s.max_read_iops / 1e6, s.base_read_latency.micros(),
          s.endurance_dwpd, static_cast<uint64_t>(s.access_granularity),
          bench::Fmt("1/%.0f", 1.0 / s.cost_per_gb_rel_dram),
          s.sourcing == Sourcing::kMulti ? "multi" : "single");
  }
  t.Print();

  bench::Section("derived: endurance-limited update interval (paper §3 formula)");
  bench::Table u({"Technology", "device", "model", "min update interval"});
  const auto cases = {
      std::pair{MakeNandFlashSpec(), Bytes{143} * kGiB},   // M1 on 2TB Nand
      std::pair{MakeOptaneSsdSpec(), Bytes{100} * kGiB},   // M2 user side on 400GB Optane
  };
  for (const auto& [spec, model_size] : cases) {
    WearTracker wear(spec.capacity, spec.endurance_dwpd);
    u.Row(ToString(spec.technology), bench::Fmt("%.0f GB", AsGiB(spec.capacity)),
          bench::Fmt("%.0f GB", AsGiB(model_size)),
          bench::Fmt("%.1f min", wear.MinUpdateIntervalMinutes(model_size)));
  }
  u.Print();
  bench::Note("Optane's 100 DWPD admits update intervals in minutes; Nand's 5 DWPD");
  bench::Note("constrains refresh frequency (paper: endurance translates to update interval).");
  return 0;
}
