// Figure 6 reproduction: performance implications of cache organization.
//
// Paper panels:
//  - memory-optimized vs CPU-optimized cache trade-off (overhead per entry
//    vs CPU per lookup) and the dual-cache router that picks per table
//    ("Embedding dim <= 255 will be routed to memory optimized cache");
//  - bottom right: QPS vs DRAM budget for direct placement on a 150GB-class
//    model running inferenceEval (placement-sensitive configuration).
#include <cstdio>

#include "bench_util.h"
#include "dlrm/model_zoo.h"

using namespace sdm;

namespace {

/// Mixed-dim serving model: half small rows (routed to the memory-optimized
/// partition), half large rows (routed to the CPU-optimized one).
ModelConfig MixedDimModel() {
  ModelConfig model;
  model.name = "fig6";
  model.item_batch_size = 8;
  model.user_batch_size = 1;
  model.num_mlp_layers = 8;
  model.avg_mlp_width = 128;
  Rng rng(0xf16);
  for (int i = 0; i < 24; ++i) {
    TableConfig t;
    const bool small = i % 2 == 0;
    t.name = bench::Fmt("fig6.user.%d", i);
    t.role = TableRole::kUser;
    t.dtype = DataType::kInt8Rowwise;
    t.dim = small ? 40 : 300;  // 48B vs 308B stored rows
    t.num_rows = small ? 40'000 : 8'000;
    t.avg_pooling_factor = 6;
    t.zipf_alpha = rng.NextDouble(0.7, 0.95);
    model.tables.push_back(t);
  }
  // Two scorching small tables: tiny capacity, huge pooling factor. Their
  // BW density makes them the first candidates for direct FM placement,
  // where a plain memory read replaces a (costlier) cache probe per lookup
  // — the effect behind the paper's bottom-right panel.
  for (int i = 0; i < 2; ++i) {
    TableConfig t;
    t.name = bench::Fmt("fig6.hot.%d", i);
    t.role = TableRole::kUser;
    t.dtype = DataType::kInt8Rowwise;
    t.dim = 40;
    t.num_rows = 2'000;
    t.avg_pooling_factor = 80;
    t.zipf_alpha = 1.1;
    model.tables.push_back(t);
  }
  for (int i = 0; i < 6; ++i) {
    TableConfig t;
    t.name = bench::Fmt("fig6.item.%d", i);
    t.role = TableRole::kItem;
    t.dtype = DataType::kInt8Rowwise;
    t.dim = 64;
    t.num_rows = 4'000;
    t.avg_pooling_factor = 3;
    t.zipf_alpha = 1.0;
    model.tables.push_back(t);
  }
  return model;
}

HostSimConfig BaseCfg() {
  HostSimConfig cfg;
  cfg.host = MakeHwAO();
  cfg.fm_capacity = 6 * kMiB;
  cfg.sm_backing_per_device = 64 * kMiB;
  cfg.workload.num_users = 4000;
  cfg.workload.user_index_churn = 0.05;
  cfg.workload.seed = 6;
  cfg.seed = 6;
  return cfg;
}

void CacheOrganizationPanel() {
  bench::Section("Fig. 6 — cache organization: memory-opt vs CPU-opt vs dual");
  bench::Table t({"organization", "hit %", "entries", "metadata overhead %",
                  "cache CPU us/query", "p95 ms"});
  struct Org {
    const char* name;
    double mem_fraction;   // capacity share for the memory-optimized side
    Bytes routing_threshold;
  };
  // Routing threshold 0 forces everything into the CPU-optimized cache;
  // a huge threshold forces everything into the memory-optimized one.
  const Org orgs[] = {{"memory-optimized only", 0.95, 100'000},
                      {"cpu-optimized only", 0.05, 0},
                      {"dual (route at 255B)", 0.5, 255}};
  for (const Org& org : orgs) {
    HostSimConfig cfg = BaseCfg();
    cfg.tuning.row_cache.capacity = 0;  // auto-size
    cfg.tuning.row_cache.memory_optimized_fraction = org.mem_fraction;
    cfg.tuning.row_cache.routing_threshold = org.routing_threshold;
    HostSimulation sim(cfg);
    const ModelConfig model = MixedDimModel();
    if (Status s = sim.LoadModel(model); !s.ok()) {
      bench::Note(bench::Fmt("%s: load failed: %s", org.name, s.ToString().c_str()));
      continue;
    }
    sim.Warmup(4000);
    const HostRunReport r = sim.Run(400, 2000);
    auto* cache = sim.store().row_cache();
    // Metadata bytes per partition: 16B/entry (memory-optimized CLOCK
    // buckets) vs 56B/entry (hash + exact LRU).
    const double metadata =
        16.0 * static_cast<double>(cache->memory_optimized().entry_count()) +
        56.0 * static_cast<double>(cache->cpu_optimized().entry_count());
    const double overhead =
        cache->memory_used() == 0
            ? 0
            : 100.0 * metadata / static_cast<double>(cache->memory_used());
    const double cache_cpu_us =
        static_cast<double>(cache->LookupCpuCost().nanos()) / 1e3 *
        (static_cast<double>(cache->stats().hits + cache->stats().misses) /
         std::max<uint64_t>(1, r.queries_completed));
    t.Row(org.name, r.row_cache_hit_rate * 100, cache->entry_count(), overhead,
          cache_cpu_us, r.p95.millis());
  }
  t.Print();
  bench::Note("paper shape: memory-optimized fits more entries (higher hit rate for");
  bench::Note("small rows) but costs more CPU per lookup; the dual cache takes the");
  bench::Note("better side per table.");
}

void DirectPlacementPanel() {
  bench::Section("Fig. 6 (bottom right) — QPS vs DRAM budget for direct placement");
  bench::Note("Nand-backed host (HW-SS), inferenceEval-like pressure: misses are");
  bench::Note("expensive, so moving the highest-BW-density tables to DRAM pays.");
  bench::Table t({"DRAM budget (KiB)", "direct tables", "SM-probe hit %",
                  "CPU us/query", "CPU-bound QPS (Eq.5)"});
  const ModelConfig model = MixedDimModel();
  for (const Bytes budget_kib : {Bytes{0}, Bytes{256}, Bytes{2048}, Bytes{8192}}) {
    HostSimConfig cfg = BaseCfg();
    cfg.host = MakeHwSS();
    cfg.fm_capacity = 16 * kMiB;
    cfg.workload.num_users = 20'000;  // wide working set: cache under pressure
    cfg.workload.user_index_churn = 0.15;
    if (budget_kib > 0) {
      cfg.tuning.placement = PlacementPolicy::kFixedFmSmWithCache;
      cfg.tuning.placement_dram_budget = budget_kib * kKiB;
    }
    HostSimulation sim(cfg);
    if (Status s = sim.LoadModel(model); !s.ok()) {
      bench::Note(bench::Fmt("budget %llu KiB: load failed: %s",
                             static_cast<unsigned long long>(budget_kib),
                             s.ToString().c_str()));
      continue;
    }
    sim.Warmup(4000);
    const HostRunReport fixed = sim.Run(400, 2500);
    size_t direct = 0;
    for (size_t i = 0; i < sim.store().table_count(); ++i) {
      const auto& rt = sim.store().table(MakeTableId(static_cast<uint32_t>(i)));
      if (rt.tier == MemoryTier::kFm && rt.config.role == TableRole::kUser) ++direct;
    }
    t.Row(static_cast<uint64_t>(budget_kib), direct, fixed.row_cache_hit_rate * 100,
          fixed.avg_cpu_per_query.micros(), fixed.cpu_qps_bound);
  }
  t.Print();
  bench::Note("paper shape (Eq. 5: QPS bounded by compute): direct placement of the");
  bench::Note("highest-BW-density tables replaces cache probes with plain memory reads");
  bench::Note("and buys QPS — until the budget starts stealing useful cache space");
  bench::Note("(the largest budget hurts, matching the paper's 'cache performs well");
  bench::Note("across the board, placement refines' framing).");
}

}  // namespace

int main() {
  bench::QuietLogs quiet;
  CacheOrganizationPanel();
  DirectPlacementPanel();
  return 0;
}
