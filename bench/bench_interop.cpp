// Appendix A.2 reproduction: inter-op parallelism.
//
// Paper: "we have observed 20% reduction in latency per query through
// inter-Op parallelism, resulting in 20% more QPS per host at the desired
// latency for model M1."
#include <cstdio>

#include "bench_util.h"
#include "dlrm/model_zoo.h"
#include "serving/host.h"

using namespace sdm;

namespace {

ModelConfig M1Mini() {
  ModelConfig model;
  model.name = "m1-mini";
  model.item_batch_size = 10;
  model.user_batch_size = 1;
  model.num_mlp_layers = 31;
  model.avg_mlp_width = 300;
  Rng rng(0xa2);
  for (int i = 0; i < 12; ++i) {
    TableConfig t;
    t.name = bench::Fmt("u%d", i);
    t.role = TableRole::kUser;
    t.dtype = DataType::kInt8Rowwise;
    t.dim = 120;
    t.num_rows = 20'000;
    t.avg_pooling_factor = 8;
    t.zipf_alpha = rng.NextDouble(0.65, 0.9);
    model.tables.push_back(t);
  }
  for (int i = 0; i < 6; ++i) {
    TableConfig t;
    t.name = bench::Fmt("i%d", i);
    t.role = TableRole::kItem;
    t.dtype = DataType::kInt8Rowwise;
    t.dim = 120;
    t.num_rows = 8'000;
    t.avg_pooling_factor = 4;
    t.zipf_alpha = 1.0;
    model.tables.push_back(t);
  }
  return model;
}

struct InterOpResult {
  HostRunReport fixed_load;
  double max_qps;
};

InterOpResult Run(bool inter_op) {
  HostSimConfig cfg;
  cfg.host = MakeHwSS();
  cfg.fm_capacity = 6 * kMiB;
  cfg.sm_backing_per_device = 64 * kMiB;
  cfg.inference.inter_op_parallelism = inter_op;
  cfg.workload.num_users = 4000;
  cfg.workload.user_index_churn = 0.04;
  cfg.workload.seed = 20;
  cfg.seed = 20;
  HostSimulation sim(cfg);
  if (Status s = sim.LoadModel(M1Mini()); !s.ok()) {
    std::fprintf(stderr, "load failed: %s\n", s.ToString().c_str());
    return {};
  }
  sim.Warmup(5000);
  InterOpResult r;
  r.fixed_load = sim.Run(120, 2000);
  r.max_qps = sim.FindMaxQps(Millis(10), /*use_p99=*/false, 500, 25, 20'000);
  return r;
}

}  // namespace

int main() {
  bench::QuietLogs quiet;
  const InterOpResult serial = Run(false);
  const InterOpResult parallel = Run(true);

  bench::Section("A.2 — inter-op parallelism (M1-mini on HW-SS, fixed 120 QPS)");
  bench::Table t({"execution", "p50 ms", "p95 ms", "p99 ms", "max QPS @ p95<=10ms"});
  t.Row("serial operators", serial.fixed_load.p50.millis(), serial.fixed_load.p95.millis(),
        serial.fixed_load.p99.millis(), serial.max_qps);
  t.Row("inter-op parallel", parallel.fixed_load.p50.millis(),
        parallel.fixed_load.p95.millis(), parallel.fixed_load.p99.millis(),
        parallel.max_qps);
  t.Print();

  const double lat_cut =
      1.0 - static_cast<double>(parallel.fixed_load.p50.nanos()) /
                static_cast<double>(serial.fixed_load.p50.nanos());
  const double qps_gain = parallel.max_qps / std::max(1.0, serial.max_qps) - 1.0;
  bench::Note(bench::Fmt("latency reduction: %.0f%% (paper: 20%%); QPS gain at SLA: "
                         "%+.0f%% (paper: +20%%)",
                         lat_cut * 100, qps_gain * 100));
  bench::Note("mechanism: concurrent operators discover IOs earlier and overlap IO");
  bench::Note("with compute, so per-query latency drops and the host sustains more");
  bench::Note("QPS at the same latency target.");
  return 0;
}
