// Coalesced batch IO: per-row IO vs dedup + block coalescing + batched SQE
// submission (the TuningConfig::coalesce_io ablation).
//
// Setup mirrors bench_fig5_spatial_locality: Zipf-over-permuted-rows access
// streams against an M2 user table, served from SM at the standard 1/1024
// capacity scale every serving bench runs at. At that scale windows touch a
// large share of each table, so misses share 4KB blocks and coalescing
// collapses them into merged reads; a second section re-runs the same
// stream against a production-sized index space (the paper's low-locality
// regime, Fig. 5) where dedup and amortized submission are the only wins.
//
// Reports, for both paths: device reads per query, bus bytes per query,
// IO-thread CPU, modeled IOPS/core (completed device IOs per IO-core
// second), row fetches per IO-core second, and request latency. `--json`
// emits the same numbers machine-readably for the perf trajectory.
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_util.h"
#include "core/lookup_engine.h"
#include "core/model_loader.h"
#include "core/sdm_store.h"
#include "dlrm/model_zoo.h"
#include "trace/locality.h"
#include "trace/trace_gen.h"

using namespace sdm;

namespace {

struct RunResult {
  uint64_t queries = 0;
  uint64_t rows_from_sm = 0;
  uint64_t rows_deduped = 0;
  uint64_t device_reads = 0;
  uint64_t bus_bytes = 0;
  uint64_t batches = 0;
  uint64_t io_bytes_saved = 0;
  double io_cpu_s = 0;
  double lookup_cpu_s = 0;
  double iops_per_core = 0;
  double mean_latency_us = 0;
  double p99_latency_us = 0;

  [[nodiscard]] double ReadsPerQuery() const {
    return queries == 0 ? 0 : static_cast<double>(device_reads) / static_cast<double>(queries);
  }
  [[nodiscard]] double BusBytesPerQuery() const {
    return queries == 0 ? 0 : static_cast<double>(bus_bytes) / static_cast<double>(queries);
  }
  /// Row fetches completed per second of IO-thread CPU — the per-row vs
  /// coalesced comparison that matters for QPS/host (same rows served,
  /// less IO-core time).
  [[nodiscard]] double RowsPerIoCoreSec() const {
    return io_cpu_s <= 0 ? 0 : static_cast<double>(rows_from_sm) / io_cpu_s;
  }
};

/// Replays `bags` against a fresh single-table store and collects the IO
/// counters. Row/pooled caches are off so every query exercises the IO
/// path (cache organization is benched elsewhere).
RunResult RunWorkload(const TableConfig& table, const std::vector<std::vector<RowIndex>>& bags,
                      bool coalesce) {
  EventLoop loop;
  SdmStoreConfig cfg;
  cfg.fm_capacity = 32 * kMiB;
  cfg.sm_specs = {MakeOptaneSsdSpec()};
  cfg.sm_backing_bytes = {table.total_bytes() + kMiB};
  cfg.tuning.coalesce_io = coalesce;
  cfg.tuning.enable_row_cache = false;
  // Serve whatever table we're given from SM — including item tables (the
  // M3 / multi-tenant scenario where the item side outgrows FM).
  cfg.tuning.user_tables_only_on_sm = false;
  SdmStore store(cfg, &loop);

  ModelConfig model;
  model.name = "coalescing";
  model.tables = {table};
  if (!ModelLoader::Load(model, {}, &store).ok()) {
    std::fprintf(stderr, "model load failed\n");
    std::abort();
  }
  LookupEngine engine(&store);

  for (const auto& bag : bags) {
    LookupRequest req;
    req.table = MakeTableId(0);
    req.indices = bag;
    engine.Lookup(std::move(req),
                  [](Status s, std::vector<float>, const LookupTrace&) {
                    if (!s.ok()) std::abort();
                  });
    loop.RunUntilIdle();
  }

  RunResult r;
  r.queries = bags.size();
  r.rows_from_sm = engine.stats().CounterValue("rows_sm_read");
  r.rows_deduped = engine.stats().CounterValue("rows_deduped");
  r.device_reads = engine.stats().CounterValue("device_reads");
  r.io_bytes_saved = engine.stats().CounterValue("io_bytes_saved");
  r.bus_bytes = store.sm_device(0).stats().CounterValue("bus_bytes");
  r.batches = store.io_engine(0).stats().CounterValue("batches");
  r.io_cpu_s = store.io_engine(0).cpu_time().seconds();
  r.lookup_cpu_s = engine.cpu_time().seconds();
  r.iops_per_core = store.io_engine(0).IopsPerCore();
  r.mean_latency_us = engine.latency().mean() / 1e3;
  r.p99_latency_us = static_cast<double>(engine.latency().P99()) / 1e3;
  return r;
}

std::vector<std::vector<RowIndex>> MakeBags(const TableConfig& table, int queries,
                                            int bag_len, uint64_t seed) {
  TableAccessStream stream(table, seed);
  Rng rng(seed ^ 0x9d2c5680ULL);
  std::vector<std::vector<RowIndex>> bags(queries);
  for (auto& bag : bags) {
    bag.reserve(bag_len);
    for (int k = 0; k < bag_len; ++k) bag.push_back(stream.Next(rng));
  }
  return bags;
}

/// Median-sized M2 table of `role` (the fig5 population).
TableConfig PickTable(TableRole role) {
  const ModelConfig m2 = MakeM2();  // 1/1024 scale, as in the serving benches
  std::vector<const TableConfig*> picks;
  for (const auto& t : m2.tables) {
    if (t.role == role) picks.push_back(&t);
  }
  std::sort(picks.begin(), picks.end(), [](const TableConfig* a, const TableConfig* b) {
    return a->total_bytes() < b->total_bytes();
  });
  return *picks[picks.size() / 2];
}

void Compare(const char* title, const TableConfig& table, int queries, int bag_len,
             uint64_t seed, const char* json_prefix, bench::JsonReporter& json) {
  const auto bags = MakeBags(table, queries, bag_len, seed);

  // Fig. 5's metric for this exact stream: how packed accessed rows are
  // within 4KB blocks (1.0 = perfectly packed).
  std::vector<RowIndex> flat;
  for (const auto& b : bags) flat.insert(flat.end(), b.begin(), b.end());
  const SpatialLocality loc =
      AnalyzeSpatialLocality(flat, table.row_bytes(), /*window=*/50'000);

  const RunResult per_row = RunWorkload(table, bags, /*coalesce=*/false);
  const RunResult coal = RunWorkload(table, bags, /*coalesce=*/true);

  bench::Section(bench::Fmt("%s — table %s: %llu rows x %llu B (%llu rows/4KB), "
                            "bag %d, zipf %.2f, spatial ratio %.3f",
                            title, table.name.c_str(),
                            static_cast<unsigned long long>(table.num_rows),
                            static_cast<unsigned long long>(table.row_bytes()),
                            static_cast<unsigned long long>(kBlockSize / table.row_bytes()),
                            bag_len, table.zipf_alpha, loc.mean_ratio));

  bench::Table t({"path", "reads/query", "bus B/query", "io cpu ms", "IOPS/core",
                  "row-fetch/core-s", "mean us", "p99 us"});
  t.Row("per-row", per_row.ReadsPerQuery(), per_row.BusBytesPerQuery(),
        per_row.io_cpu_s * 1e3, per_row.iops_per_core, per_row.RowsPerIoCoreSec(),
        per_row.mean_latency_us, per_row.p99_latency_us);
  t.Row("coalesced", coal.ReadsPerQuery(), coal.BusBytesPerQuery(), coal.io_cpu_s * 1e3,
        coal.iops_per_core, coal.RowsPerIoCoreSec(), coal.mean_latency_us,
        coal.p99_latency_us);
  t.Print();

  const double read_reduction =
      coal.device_reads == 0 ? 0
                             : static_cast<double>(per_row.device_reads) /
                                   static_cast<double>(coal.device_reads);
  const double iops_gain = per_row.iops_per_core <= 0
                               ? 0
                               : coal.iops_per_core / per_row.iops_per_core;
  const double row_throughput_gain =
      per_row.RowsPerIoCoreSec() <= 0 ? 0
                                      : coal.RowsPerIoCoreSec() / per_row.RowsPerIoCoreSec();
  bench::Note(bench::Fmt(
      "device reads: %.2fx fewer; IOPS/core: %.2fx; row fetches per IO-core-second: %.2fx",
      read_reduction, iops_gain, row_throughput_gain));
  bench::Note(bench::Fmt(
      "deduped %.1f%% of SM rows; %llu ring doorbells for %llu reads; %.1f KiB bus saved/query",
      100.0 * static_cast<double>(coal.rows_deduped) /
          static_cast<double>(std::max<uint64_t>(1, coal.rows_from_sm + coal.rows_deduped)),
      static_cast<unsigned long long>(coal.batches),
      static_cast<unsigned long long>(coal.device_reads),
      static_cast<double>(coal.io_bytes_saved) / 1024.0 / static_cast<double>(queries)));

  json.Metric(bench::Fmt("%s_spatial_ratio", json_prefix), loc.mean_ratio);
  json.Metric(bench::Fmt("%s_perrow_reads_per_query", json_prefix), per_row.ReadsPerQuery());
  json.Metric(bench::Fmt("%s_coalesced_reads_per_query", json_prefix), coal.ReadsPerQuery());
  json.Metric(bench::Fmt("%s_read_reduction_x", json_prefix), read_reduction);
  json.Metric(bench::Fmt("%s_perrow_iops_per_core", json_prefix), per_row.iops_per_core);
  json.Metric(bench::Fmt("%s_coalesced_iops_per_core", json_prefix), coal.iops_per_core);
  json.Metric(bench::Fmt("%s_perrow_rowfetch_per_core_s", json_prefix),
              per_row.RowsPerIoCoreSec());
  json.Metric(bench::Fmt("%s_coalesced_rowfetch_per_core_s", json_prefix),
              coal.RowsPerIoCoreSec());
  json.Metric(bench::Fmt("%s_coalesced_p99_us", json_prefix), coal.p99_latency_us);
  json.Metric(bench::Fmt("%s_perrow_p99_us", json_prefix), per_row.p99_latency_us);
}

}  // namespace

int main(int argc, char** argv) {
  bench::QuietLogs quiet;
  bench::JsonReporter json(argc, argv, "coalescing");
  const int item_batch = 150;  // M2's B_I

  // Item table, one query = the flattened item-side bag (PF x B_I, how the
  // inference engine issues it). Hundreds of indices over a small hot set:
  // heavy duplication and dense block sharing — coalescing's home turf.
  const TableConfig item = PickTable(TableRole::kItem);
  Compare("item path (PF x B_I bag)", item, /*queries=*/300,
          static_cast<int>(item.avg_pooling_factor) * item_batch, /*seed=*/77, "item",
          json);

  // User table at serving scale: small per-query bags with the Fig. 5
  // scatter — mostly dedup + amortized submission.
  const TableConfig user = PickTable(TableRole::kUser);
  Compare("user path", user, /*queries=*/2000,
          static_cast<int>(user.avg_pooling_factor), /*seed=*/78, "user", json);

  // Production-sized index space: Fig. 5's low-spatial-locality regime —
  // block sharing disappears; dedup + batched submission remain.
  TableConfig prod = user;
  prod.num_rows *= 256;
  Compare("user path, production-scale index space", prod, /*queries=*/2000,
          static_cast<int>(user.avg_pooling_factor), /*seed=*/79, "prod", json);

  bench::Note("");
  bench::Note("paper tie-in: coalescing wins scale with Fig. 5 spatial locality (item >>");
  bench::Note("user); the per-row path stays available via TuningConfig::coalesce_io=false");
  bench::Note("for ablation.");
  return 0;
}
