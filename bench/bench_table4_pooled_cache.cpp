// Table 4 reproduction: PooledEmbeddingCache hit rate and average hit
// length versus LenThreshold at a fixed cache size.
//
// Paper (4GB cache at production scale):
//   LenThreshold  Hit Rate  Hit Avg Len
//   1             4.39%     11
//   4             4.58%     35
//   8             4.02%     40
//   16            4%        56
//   32            3.9%      76
#include <cstdio>

#include "bench_util.h"
#include "cache/pooled_cache.h"
#include "dlrm/model_zoo.h"
#include "trace/trace_gen.h"

using namespace sdm;

int main() {
  bench::QuietLogs quiet;
  // Wide pooling-factor spread so thresholds bite (paper tables span pf
  // 1..100s); 4MB cache at our 1/1024 scale mirrors the paper's 4GB.
  ModelConfig model = MakeTinyUniformModel(32, 6, 0, 80'000);
  model.tables[0].avg_pooling_factor = 4;
  model.tables[1].avg_pooling_factor = 10;
  model.tables[2].avg_pooling_factor = 20;
  model.tables[3].avg_pooling_factor = 40;
  model.tables[4].avg_pooling_factor = 60;
  model.tables[5].avg_pooling_factor = 90;

  WorkloadConfig w;
  w.num_users = 20'000;
  w.user_zipf_alpha = 0.85;
  w.user_index_churn = 0.10;
  w.seed = 44;

  bench::Section("Table 4 — pooled-embedding cache vs LenThreshold (4MiB cache)");
  bench::Table t({"LenThreshold", "Hit rate %", "Hit avg len", "entries", "paper hit%/len"});
  const char* paper[] = {"4.39 / 11", "4.58 / 35", "4.02 / 40", "4.00 / 56", "3.90 / 76"};
  int row = 0;
  for (const size_t threshold : {1u, 4u, 8u, 16u, 32u}) {
    PooledCacheConfig pcfg;
    pcfg.capacity = 4 * kMiB;
    pcfg.len_threshold = threshold;
    PooledEmbeddingCache cache(pcfg);
    QueryGenerator gen(model, w);
    const int kQueries = 40'000;
    for (int q = 0; q < kQueries; ++q) {
      const Query query = gen.Next();
      for (size_t tab = 0; tab < model.tables.size(); ++tab) {
        const auto& idx = query.indices[tab];
        const TableId id = MakeTableId(static_cast<uint32_t>(tab));
        if (cache.Lookup(id, idx) == nullptr) {
          cache.Insert(id, idx, std::vector<float>(model.tables[tab].dim, 1.0f));
        }
      }
    }
    const auto& s = cache.stats();
    t.Row(static_cast<uint64_t>(threshold), s.HitRate() * 100, s.AvgHitLength(),
          cache.entry_count(), paper[row++]);
  }
  t.Print();
  bench::Note("paper shape: hit rate stays in a narrow band (a few %) across thresholds");
  bench::Note("while the average length of a hit — the work saved per hit — grows");
  bench::Note("steadily with LenThreshold, since only long sequences are admitted.");
  return 0;
}
