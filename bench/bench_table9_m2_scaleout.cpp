// Table 9 reproduction: M2 — avoiding scale-out with SDM (§5.2) — plus the
// MEASURED disaggregated-SM alternative (src/fabric).
//
// Paper: M2 needs 100GB of user embeddings that don't fit the accelerator
// host's 64GB DRAM. Alternatives:
//   HW-AN + ScaleOut : remote HW-S hosts serve user embeddings; 450 QPS,
//                      power 1.0 + 0.25/5, fleet 1575.
//   HW-AN + SDM      : Nand can't sustain the accelerated IOPS (4.8M raw);
//                      QPS collapses to 230 -> fleet 2978. Nand loses.
//   HW-AO + SDM      : Optane keeps user embeddings off the critical path;
//                      450 QPS, fleet 1500 -> 5% saving and no scale-out.
//
// The paper's scale-out column is an ANALYTIC penalty (ScaleOutModel:
// rtt + helper service on every remote fetch). The disaggregated sweep
// below measures the real thing: N hosts share ONE fabric-attached SM
// stack (FabricAttachedService), so replicas of the model dedup to one
// extent set and the hosts single-flight each other's hot blocks — versus
// the local-SM baseline where every host runs a private stack and pays for
// its hot set alone.
//
// Headline --json metrics (gated in CI against bench/baselines/
// scaleout.json):
//   cross_host_read_reduction_x : local-SM device reads / disaggregated
//                                 device reads at 4 hosts (fabric rtt 5us)
//   c4_cross_host_hits          : single-flight hits served by ANOTHER
//                                 host's read at 4 hosts
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string_view>
#include <thread>

#include "bench_util.h"
#include "dlrm/model_zoo.h"
#include "serving/cluster.h"
#include "serving/sharded_cluster.h"

using namespace sdm;

namespace {

/// M2-mini: accelerator-class model — many user tables, high aggregate
/// pooling, big item batch (dense side on the accelerator).
ModelConfig M2Mini() {
  ModelConfig model;
  model.name = "m2-mini";
  model.item_batch_size = 30;
  model.user_batch_size = 1;
  model.num_mlp_layers = 43;
  model.avg_mlp_width = 735;
  Rng rng(0x92);
  for (int i = 0; i < 30; ++i) {
    TableConfig t;
    t.name = bench::Fmt("m2.user.%d", i);
    t.role = TableRole::kUser;
    t.dtype = DataType::kInt8Rowwise;
    t.dim = 56;  // 64B stored rows (paper avg 64B)
    t.num_rows = 25'000;
    t.avg_pooling_factor = 8;
    t.zipf_alpha = rng.NextDouble(0.65, 0.9);
    model.tables.push_back(t);
  }
  for (int i = 0; i < 15; ++i) {
    TableConfig t;
    t.name = bench::Fmt("m2.item.%d", i);
    t.role = TableRole::kItem;
    t.dtype = DataType::kInt8Rowwise;
    t.dim = 32;
    t.num_rows = 3'000;
    t.avg_pooling_factor = 4;
    t.zipf_alpha = rng.NextDouble(0.9, 1.15);
    model.tables.push_back(t);
  }
  return model;
}

double MaxQps(const HostSpec& host, const ModelConfig& model, SimDuration sla,
              HostRunReport* steady) {
  HostSimConfig cfg;
  cfg.host = host;
  cfg.fm_capacity = 24 * kMiB;  // 64GB-equivalent vs 100GB user side (scaled ratio)
  cfg.sm_backing_per_device = 64 * kMiB;
  cfg.workload.num_users = 6000;
  cfg.workload.user_index_churn = 0.05;
  cfg.workload.seed = 9;
  cfg.inference.max_concurrent_queries = 0;  // auto: one per core
  cfg.seed = 9;
  HostSimulation sim(cfg);
  Status s = sim.LoadModel(model);
  if (!s.ok()) {
    std::fprintf(stderr, "%s load failed: %s\n", host.name.c_str(), s.ToString().c_str());
    return 0;
  }
  sim.Warmup(8000);
  double qps = sim.FindMaxQps(sla, /*use_p99=*/false, 1500, 25, 500'000);
  const HostRunReport r = sim.Run(std::max(25.0, qps * 0.9), 1500);
  // Eq. 5: min of the latency/BW bound and the compute bound.
  qps = std::min(qps, r.cpu_qps_bound);
  if (steady != nullptr) *steady = r;
  return qps;
}

// ---------------------------------------------------------------------------
// Disaggregated sweep (the measured scale-out alternative).
// ---------------------------------------------------------------------------

/// Capacity-bound host profile (the multitenant bench's): block-granularity
/// reads, no row cache, widened merge window — the hot set lives at the
/// device, which is exactly the traffic cross-host sharing can absorb.
HostSimConfig DisaggBase() {
  HostSimConfig base;
  base.host = MakeHwFAO(2);
  base.fm_capacity = 1 * kMiB;
  base.sm_backing_per_device = 64 * kMiB;
  base.workload.num_users = 2000;
  base.workload.seed = 11;
  base.seed = 11;
  base.tuning.max_batch_delay = Micros(200);
  base.tuning.sub_block_reads = false;
  base.tuning.enable_row_cache = false;
  return base;
}

/// The replicated model every host serves (user side far larger than the
/// per-host FM share; Fig. 4 production skew).
ModelConfig DisaggModel() {
  ModelConfig model = MakeTinyUniformModel(64, 3, 1, 40'000);
  model.tables.back().num_rows = 4'000;  // item side stays FM-direct
  for (auto& t : model.tables) {
    if (t.role == TableRole::kUser) t.zipf_alpha = 1.1;
  }
  return model;
}

struct LocalPoint {
  uint64_t device_reads = 0;
  double p95_ms = 0;  ///< mean over hosts
};

/// Local-SM baseline: N hosts with PRIVATE device stacks serving the same
/// replicated model (MultiTenantHost isolated mode, one "tenant" per host).
LocalPoint RunLocal(int hosts, double qps_per_host, uint64_t queries_per_host) {
  const HostSimConfig base = DisaggBase();
  MultiTenantHost fleet(base, base.seed, /*shared_device=*/false);
  const ModelConfig model = DisaggModel();
  for (int i = 0; i < hosts; ++i) {
    if (Status s = fleet.AddTenant(model, base.fm_capacity); !s.ok()) {
      std::fprintf(stderr, "local host load failed: %s\n", s.ToString().c_str());
      std::exit(1);
    }
  }
  const MultiTenantReport r = fleet.Run(qps_per_host, queries_per_host);
  LocalPoint pt;
  for (size_t i = 0; i < fleet.tenant_count(); ++i) {
    SdmStore& store = fleet.tenant_store(i);
    for (size_t d = 0; d < store.sm_device_count(); ++d) {
      pt.device_reads += store.sm_device(d).stats().CounterValue("reads");
    }
  }
  for (const auto& t : r.tenants) pt.p95_ms += t.run.p95.millis();
  pt.p95_ms /= static_cast<double>(hosts);
  return pt;
}

struct DisaggPoint {
  DisaggregatedRunReport report;
  double p95_ms = 0;  ///< mean over hosts
};

/// Disaggregated: N hosts attach to ONE fabric-attached stack behind
/// `rtt/2` one-way latency (25 GB/s per direction, FIFO-queued hops).
DisaggPoint RunDisagg(int hosts, SimDuration rtt, double qps_per_host,
                      uint64_t queries_per_host) {
  HostSimConfig base = DisaggBase();
  base.tuning.fabric_latency = rtt / 2;
  base.tuning.fabric_bandwidth_bytes_per_sec = 25e9;
  base.tuning.fabric_queueing = true;
  DisaggregatedConfig dc;
  dc.enabled = true;
  ClusterSimulation cluster(hosts, base, RoutingPolicy::kUserSticky, dc);
  if (Status s = cluster.LoadModel(DisaggModel()); !s.ok()) {
    std::fprintf(stderr, "disaggregated load failed: %s\n", s.ToString().c_str());
    std::exit(1);
  }
  DisaggPoint pt;
  pt.report = cluster.RunDisaggregated(qps_per_host * hosts, queries_per_host * hosts);
  for (const auto& h : pt.report.hosts) pt.p95_ms += h.run.p95.millis();
  pt.p95_ms /= static_cast<double>(hosts);
  return pt;
}

// ---------------------------------------------------------------------------
// Sharded parallel runtime (src/serving/sharded_cluster.h): wall-clock cost
// of simulating the same 16-host sweep on 1 vs 8 shards.
// ---------------------------------------------------------------------------

struct ShardedPoint {
  DisaggPoint dis;
  double wall_sec = 0;    ///< real time spent inside RunDisaggregated
  uint64_t events = 0;    ///< simulator events executed by that run
  uint64_t windows = 0;   ///< conservative windows (barrier rounds) paid
};

ShardedPoint RunDisaggSharded(int hosts, SimDuration rtt, double qps_per_host,
                              uint64_t queries_per_host, size_t num_shards) {
  HostSimConfig base = DisaggBase();
  base.tuning.fabric_latency = rtt / 2;
  base.tuning.fabric_bandwidth_bytes_per_sec = 25e9;
  base.tuning.fabric_queueing = true;
  DisaggregatedConfig dc;
  dc.enabled = true;
  dc.num_shards = num_shards;
  ClusterSimulation cluster(hosts, base, RoutingPolicy::kUserSticky, dc);
  if (Status s = cluster.LoadModel(DisaggModel()); !s.ok()) {
    std::fprintf(stderr, "sharded load failed: %s\n", s.ToString().c_str());
    std::exit(1);
  }
  const uint64_t events_before =
      num_shards >= 2 ? cluster.sharded_runtime()->runtime().events_run()
                      : cluster.host_store(0).loop()->events_run();
  const auto t0 = std::chrono::steady_clock::now();
  ShardedPoint pt;
  pt.dis.report =
      cluster.RunDisaggregated(qps_per_host * hosts, queries_per_host * hosts);
  pt.wall_sec = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                    .count();
  const uint64_t events_after =
      num_shards >= 2 ? cluster.sharded_runtime()->runtime().events_run()
                      : cluster.host_store(0).loop()->events_run();
  pt.events = events_after - events_before;
  if (num_shards >= 2) pt.windows = cluster.sharded_runtime()->runtime().windows();
  for (const auto& h : pt.dis.report.hosts) pt.dis.p95_ms += h.run.p95.millis();
  pt.dis.p95_ms /= static_cast<double>(hosts);
  return pt;
}

}  // namespace

int main(int argc, char** argv) {
  bench::QuietLogs quiet;
  // --sharded-smoke: run ONLY a small shards>1 sweep and exit. CI's TSan
  // job uses this (with SDM_SHARD_WORKERS forcing real worker threads) to
  // put the lock-free mailbox + barrier machinery under the race detector
  // without paying for the full bench at sanitizer speed.
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--sharded-smoke") {
      const ShardedPoint pt = RunDisaggSharded(4, Micros(20), 2000, 500, 8);
      uint64_t served = 0;
      for (const auto& h : pt.dis.report.hosts) served += h.run.queries_served;
      std::printf("sharded smoke: %llu queries served, %llu events, %llu windows\n",
                  static_cast<unsigned long long>(served),
                  static_cast<unsigned long long>(pt.events),
                  static_cast<unsigned long long>(pt.windows));
      if (served != 4 * 500 || pt.windows == 0) {
        std::fprintf(stderr, "sharded smoke FAILED\n");
        return 1;
      }
      return 0;
    }
  }
  bench::JsonReporter json(argc, argv, "table9_m2_scaleout");
  const ModelConfig model = M2Mini();
  const SimDuration sla = Millis(8);

  std::printf("model %s: %.1f MiB total, %.1f MiB user side, raw user IOPS/query %.0f\n",
              model.name.c_str(), AsMiB(model.TotalBytes()),
              AsMiB(model.BytesFor(TableRole::kUser)),
              model.LookupsPerQuery(TableRole::kUser));

  HostRunReport nand_steady;
  HostRunReport optane_steady;
  const double nand_qps = MaxQps(MakeHwAN(), model, sla, &nand_steady);
  const double optane_qps = MaxQps(MakeHwAO(), model, sla, &optane_steady);

  bench::Section("measured per-host (p95 SLA = 8ms)");
  bench::Table m({"host", "max QPS", "hit %", "SM IOPS sustained", "p95 ms"});
  m.Row("HW-AN (Nand) + SDM", nand_qps, nand_steady.row_cache_hit_rate * 100,
        nand_steady.sm_iops, nand_steady.p95.millis());
  m.Row("HW-AO (Optane) + SDM", optane_qps, optane_steady.row_cache_hit_rate * 100,
        optane_steady.sm_iops, optane_steady.p95.millis());
  m.Print();
  bench::Note(bench::Fmt("paper: >90%% hit rate; 4.8M raw -> ~480K sustained IOPS; "
                         "Nand QPS collapses to %.0f%% of Optane (paper: 230/450 = 51%%)",
                         100.0 * nand_qps / std::max(1.0, optane_qps)));

  // Scale-out alternative serves user embeddings from remote DRAM, so its
  // mains run at the accelerator-bound QPS (== Optane's), plus helpers.
  bench::Section("Table 9 — fleet power at equal aggregate throughput");
  const double total_qps = optane_qps * 1500;
  ScaleOutModel so;
  const FleetEstimate e_so = EvaluateFleet(
      so.Fleet("HW-AN + ScaleOut", total_qps, optane_qps, MakeHwAN().power,
               MakeHwS().power));
  const FleetEstimate e_nand = EvaluateFleet(
      {"HW-AN + SDM", total_qps, std::max(1.0, nand_qps), MakeHwAN().power, 0, 0});
  const FleetEstimate e_opt =
      EvaluateFleet({"HW-AO + SDM", total_qps, optane_qps, MakeHwAO().power, 0, 0});

  bench::Table t({"Scenario", "QPS/host", "Hosts", "Total power (HW-AN=0.6)", "paper"});
  t.Row("HW-AN + ScaleOut", optane_qps,
        bench::Fmt("%.0f + %.0f", e_so.main_hosts, e_so.helper_hosts), e_so.total_power,
        "450 / 1500+300 / 1575");
  t.Row("HW-AN + SDM", nand_qps, e_nand.main_hosts, e_nand.total_power,
        "230 / 2978 / 2978");
  t.Row("HW-AO + SDM", optane_qps, e_opt.main_hosts, e_opt.total_power,
        "450 / 1500 / 1500");
  t.Print();
  bench::Note(bench::Fmt("Optane vs ScaleOut power saving: %.1f%% (paper: ~5%%)",
                         PowerSaving(e_so, e_opt) * 100));
  bench::Note(bench::Fmt("Nand vs ScaleOut: %.1f%% (paper: Nand is WORSE: -89%%)",
                         PowerSaving(e_so, e_nand) * 100));
  bench::Note("plus: no scale-out fan-out -> simpler serving, fewer failure domains.");
  json.Metric("optane_vs_scaleout_power_saving_pct", PowerSaving(e_so, e_opt) * 100);

  // -------------------------------------------------------------------------
  // Disaggregated SM, measured: local per-host stacks vs one fabric stack.
  // -------------------------------------------------------------------------
  constexpr double kQpsPerHost = 8000;
  constexpr uint64_t kQueriesPerHost = 2500;
  const SimDuration kRtt = Micros(5);

  bench::Section("disaggregated SM — N hosts, one fabric-attached stack (rtt 5us)");
  bench::Table d({"hosts", "mode", "device reads", "sf hits", "x-host", "p95 ms",
                  "SM MiB (phys/logical)", "read reduction"});
  double headline_reduction = 0;
  DisaggPoint four_hosts_rtt5;  // reused by the rtt sweep (deterministic)
  for (const int hosts : {2, 4, 6}) {
    const LocalPoint local = RunLocal(hosts, kQpsPerHost, kQueriesPerHost);
    const DisaggPoint dis = RunDisagg(hosts, kRtt, kQpsPerHost, kQueriesPerHost);
    const double reduction =
        dis.report.sm_device_reads == 0
            ? 0
            : static_cast<double>(local.device_reads) /
                  static_cast<double>(dis.report.sm_device_reads);
    d.Row(hosts, "local SM", local.device_reads, uint64_t{0}, uint64_t{0},
          local.p95_ms, "private stacks", "1.00");
    d.Row(hosts, "disaggregated", dis.report.sm_device_reads,
          dis.report.io.singleflight_hits, dis.report.cross_host_hits, dis.p95_ms,
          bench::Fmt("%.1f / %.1f", AsMiB(dis.report.sm_unique_bytes),
                     AsMiB(dis.report.sm_logical_bytes)),
          bench::Fmt("%.2f", reduction));
    json.Metric(bench::Fmt("c%d_read_reduction_x", hosts), reduction);
    json.Metric(bench::Fmt("c%d_cross_host_hits", hosts),
                dis.report.cross_host_hits);
    if (hosts == 4) {
      headline_reduction = reduction;
      four_hosts_rtt5 = dis;
      json.Metric("cross_host_read_reduction_x", reduction);
    }
  }
  d.Print();
  bench::Note("every host serves a replica of one model: the fabric service dedups");
  bench::Note("the replicas to ONE extent set, so hosts single-flight each other's");
  bench::Note("hot blocks in the shared schedulers; local mode pays for every host's");
  bench::Note("hot set privately (and provisions N private 2-SSD stacks vs one).");
  bench::Note(bench::Fmt("headline cross_host_read_reduction_x = %.2f at 4 hosts",
                         headline_reduction));

  // ---- Fabric RTT sensitivity at 4 hosts ----------------------------------
  bench::Section("fabric rtt sweep (4 hosts) — sharing window vs latency cost");
  bench::Table f({"fabric rtt us", "device reads", "x-host hits", "p95 ms",
                  "fabric resp MiB", "fabric queue us"});
  for (const double rtt_us : {0.0, 5.0, 20.0}) {
    // The 5us point is the host-count sweep's 4-host run (deterministic).
    const DisaggPoint dis =
        rtt_us == 5.0 ? four_hosts_rtt5
                      : RunDisagg(4, Micros(rtt_us), kQpsPerHost, kQueriesPerHost);
    f.Row(rtt_us, dis.report.sm_device_reads, dis.report.cross_host_hits,
          dis.p95_ms, AsMiB(dis.report.fabric.response_bytes),
          dis.report.fabric.queue_time.micros());
    if (rtt_us == 20.0) {
      json.Metric("rtt20_p95_ms", dis.p95_ms);
      json.Metric("rtt20_cross_host_hits", dis.report.cross_host_hits);
    }
  }
  f.Print();
  bench::Note(bench::Fmt(
      "a longer rtt holds reads in flight longer, so late hosts JOIN them "
      "(merged-read admission) instead of reissuing — sharing rises with rtt "
      "while p95 pays the hop. The analytic ScaleOutModel charges every remote "
      "fetch rtt+helper = %.0fus flat; the fabric charges only real device "
      "reads, and dedup+single-flight remove a growing share of those.",
      so.UserPathLatency().micros()));

  // ---- Sharded parallel runtime: 16 hosts, 1 vs 8 shards ------------------
  // Same cluster, same virtual-time run; what changes is the SIMULATOR's
  // execution: one event loop vs 17 LPs (16 host shards + the device shard)
  // on 8 worker threads under conservative fabric-lookahead windows.
  // Wall-clock metrics are hardware-dependent: speedup needs cores (the
  // runtime clamps its workers to the machine), so the CI floor only gates
  // catastrophic regression while dev machines should see the real scaling.
  bench::Section("sharded runtime — 16-host sweep, wall clock (rtt 20us)");
  constexpr int kShardHosts = 16;
  // Half the per-host load of the 2/4/6-host sweep: 16 hosts on one 2-SSD
  // stack saturate at 8000 QPS each, and a saturated system's stats drown
  // the wall-clock comparison in backlog simulation.
  constexpr double kShardQps = 4000;
  constexpr uint64_t kShardQueries = 2500;
  const SimDuration kShardRtt = Micros(20);
  bench::Table s({"shards", "wall s", "events", "events/s", "p95 ms",
                  "x-host hits", "windows"});
  const ShardedPoint single =
      RunDisaggSharded(kShardHosts, kShardRtt, kShardQps, kShardQueries, 1);
  const ShardedPoint sharded =
      RunDisaggSharded(kShardHosts, kShardRtt, kShardQps, kShardQueries, 8);
  s.Row(1, single.wall_sec, single.events,
        static_cast<double>(single.events) / std::max(1e-9, single.wall_sec),
        single.dis.p95_ms, single.dis.report.cross_host_hits, single.windows);
  s.Row(8, sharded.wall_sec, sharded.events,
        static_cast<double>(sharded.events) / std::max(1e-9, sharded.wall_sec),
        sharded.dis.p95_ms, sharded.dis.report.cross_host_hits, sharded.windows);
  s.Print();
  const double speedup = sharded.wall_sec <= 0 ? 0 : single.wall_sec / sharded.wall_sec;
  bench::Note(bench::Fmt(
      "shard_speedup_x = %.2f on this machine (hw threads: %u; the runtime "
      "caps its workers there — single-core machines run the degenerate "
      "inline schedule and measure pure windowing overhead)",
      speedup, std::thread::hardware_concurrency()));
  bench::Note("note: 1-shard and 8-shard runs simulate DIFFERENT fabric "
              "models under concurrent load (shared vs per-host links), so "
              "their virtual-time stats are close but not identical; the "
              "bit-exact oracles live in sharded_runtime_test.");
  json.Metric("shard_speedup_x", speedup);
  json.Metric("sharded_events_per_sec",
              static_cast<double>(sharded.events) / std::max(1e-9, sharded.wall_sec));
  json.Metric("c16_sharded_cross_host_hits",
              sharded.dis.report.cross_host_hits);
  return 0;
}
