// Table 9 reproduction: M2 — avoiding scale-out with SDM (§5.2).
//
// Paper: M2 needs 100GB of user embeddings that don't fit the accelerator
// host's 64GB DRAM. Alternatives:
//   HW-AN + ScaleOut : remote HW-S hosts serve user embeddings; 450 QPS,
//                      power 1.0 + 0.25/5, fleet 1575.
//   HW-AN + SDM      : Nand can't sustain the accelerated IOPS (4.8M raw);
//                      QPS collapses to 230 -> fleet 2978. Nand loses.
//   HW-AO + SDM      : Optane keeps user embeddings off the critical path;
//                      450 QPS, fleet 1500 -> 5% saving and no scale-out.
#include <cstdio>

#include "bench_util.h"
#include "dlrm/model_zoo.h"
#include "serving/cluster.h"

using namespace sdm;

namespace {

/// M2-mini: accelerator-class model — many user tables, high aggregate
/// pooling, big item batch (dense side on the accelerator).
ModelConfig M2Mini() {
  ModelConfig model;
  model.name = "m2-mini";
  model.item_batch_size = 30;
  model.user_batch_size = 1;
  model.num_mlp_layers = 43;
  model.avg_mlp_width = 735;
  Rng rng(0x92);
  for (int i = 0; i < 30; ++i) {
    TableConfig t;
    t.name = bench::Fmt("m2.user.%d", i);
    t.role = TableRole::kUser;
    t.dtype = DataType::kInt8Rowwise;
    t.dim = 56;  // 64B stored rows (paper avg 64B)
    t.num_rows = 25'000;
    t.avg_pooling_factor = 8;
    t.zipf_alpha = rng.NextDouble(0.65, 0.9);
    model.tables.push_back(t);
  }
  for (int i = 0; i < 15; ++i) {
    TableConfig t;
    t.name = bench::Fmt("m2.item.%d", i);
    t.role = TableRole::kItem;
    t.dtype = DataType::kInt8Rowwise;
    t.dim = 32;
    t.num_rows = 3'000;
    t.avg_pooling_factor = 4;
    t.zipf_alpha = rng.NextDouble(0.9, 1.15);
    model.tables.push_back(t);
  }
  return model;
}

double MaxQps(const HostSpec& host, const ModelConfig& model, SimDuration sla,
              HostRunReport* steady) {
  HostSimConfig cfg;
  cfg.host = host;
  cfg.fm_capacity = 24 * kMiB;  // 64GB-equivalent vs 100GB user side (scaled ratio)
  cfg.sm_backing_per_device = 64 * kMiB;
  cfg.workload.num_users = 6000;
  cfg.workload.user_index_churn = 0.05;
  cfg.workload.seed = 9;
  cfg.inference.max_concurrent_queries = 0;  // auto: one per core
  cfg.seed = 9;
  HostSimulation sim(cfg);
  Status s = sim.LoadModel(model);
  if (!s.ok()) {
    std::fprintf(stderr, "%s load failed: %s\n", host.name.c_str(), s.ToString().c_str());
    return 0;
  }
  sim.Warmup(8000);
  double qps = sim.FindMaxQps(sla, /*use_p99=*/false, 1500, 25, 500'000);
  const HostRunReport r = sim.Run(std::max(25.0, qps * 0.9), 1500);
  // Eq. 5: min of the latency/BW bound and the compute bound.
  qps = std::min(qps, r.cpu_qps_bound);
  if (steady != nullptr) *steady = r;
  return qps;
}

}  // namespace

int main() {
  bench::QuietLogs quiet;
  const ModelConfig model = M2Mini();
  const SimDuration sla = Millis(8);

  std::printf("model %s: %.1f MiB total, %.1f MiB user side, raw user IOPS/query %.0f\n",
              model.name.c_str(), AsMiB(model.TotalBytes()),
              AsMiB(model.BytesFor(TableRole::kUser)),
              model.LookupsPerQuery(TableRole::kUser));

  HostRunReport nand_steady;
  HostRunReport optane_steady;
  const double nand_qps = MaxQps(MakeHwAN(), model, sla, &nand_steady);
  const double optane_qps = MaxQps(MakeHwAO(), model, sla, &optane_steady);

  bench::Section("measured per-host (p95 SLA = 8ms)");
  bench::Table m({"host", "max QPS", "hit %", "SM IOPS sustained", "p95 ms"});
  m.Row("HW-AN (Nand) + SDM", nand_qps, nand_steady.row_cache_hit_rate * 100,
        nand_steady.sm_iops, nand_steady.p95.millis());
  m.Row("HW-AO (Optane) + SDM", optane_qps, optane_steady.row_cache_hit_rate * 100,
        optane_steady.sm_iops, optane_steady.p95.millis());
  m.Print();
  bench::Note(bench::Fmt("paper: >90%% hit rate; 4.8M raw -> ~480K sustained IOPS; "
                         "Nand QPS collapses to %.0f%% of Optane (paper: 230/450 = 51%%)",
                         100.0 * nand_qps / std::max(1.0, optane_qps)));

  // Scale-out alternative serves user embeddings from remote DRAM, so its
  // mains run at the accelerator-bound QPS (== Optane's), plus helpers.
  bench::Section("Table 9 — fleet power at equal aggregate throughput");
  const double total_qps = optane_qps * 1500;
  ScaleOutModel so;
  const FleetEstimate e_so = EvaluateFleet(
      so.Fleet("HW-AN + ScaleOut", total_qps, optane_qps, MakeHwAN().power,
               MakeHwS().power));
  const FleetEstimate e_nand = EvaluateFleet(
      {"HW-AN + SDM", total_qps, std::max(1.0, nand_qps), MakeHwAN().power, 0, 0});
  const FleetEstimate e_opt =
      EvaluateFleet({"HW-AO + SDM", total_qps, optane_qps, MakeHwAO().power, 0, 0});

  bench::Table t({"Scenario", "QPS/host", "Hosts", "Total power (HW-AN=0.6)", "paper"});
  t.Row("HW-AN + ScaleOut", optane_qps,
        bench::Fmt("%.0f + %.0f", e_so.main_hosts, e_so.helper_hosts), e_so.total_power,
        "450 / 1500+300 / 1575");
  t.Row("HW-AN + SDM", nand_qps, e_nand.main_hosts, e_nand.total_power,
        "230 / 2978 / 2978");
  t.Row("HW-AO + SDM", optane_qps, e_opt.main_hosts, e_opt.total_power,
        "450 / 1500 / 1500");
  t.Print();
  bench::Note(bench::Fmt("Optane vs ScaleOut power saving: %.1f%% (paper: ~5%%)",
                         PowerSaving(e_so, e_opt) * 100));
  bench::Note(bench::Fmt("Nand vs ScaleOut: %.1f%% (paper: Nand is WORSE: -89%%)",
                         PowerSaving(e_so, e_nand) * 100));
  bench::Note("plus: no scale-out fan-out -> simpler serving, fewer failure domains.");
  return 0;
}
