// Quickstart: load a small DLRM onto a tiered FM+SM store, run one query
// end to end, and inspect what the SDM did.
//
//   $ ./examples/quickstart
//
// Walks through the whole public API surface:
//   1. describe a model (tables + dense architecture)
//   2. build an SdmStore over a simulated Optane SSD
//   3. load the model (placement decides FM vs SM; the cache auto-sizes)
//   4. execute embedding lookups through the LookupEngine (Algorithm 1)
//   5. score the query with the real DLRM MLPs
#include <cstdio>

#include "common/logging.h"
#include "core/lookup_engine.h"
#include "core/model_loader.h"
#include "dlrm/dlrm_model.h"
#include "dlrm/model_zoo.h"
#include "trace/trace_gen.h"

using namespace sdm;

int main() {
  SetLogLevel(LogLevel::kInfo);

  // -- 1. A small uniform-dim model: 6 user tables + 2 item tables. --------
  const ModelConfig model = MakeTinyUniformModel(/*dim=*/32, /*user_tables=*/6,
                                                 /*item_tables=*/2,
                                                 /*rows_per_table=*/20'000);
  std::printf("model '%s': %zu tables, %.1f MiB total (%.1f MiB user side)\n",
              model.name.c_str(), model.tables.size(), AsMiB(model.TotalBytes()),
              AsMiB(model.BytesFor(TableRole::kUser)));

  // -- 2. A host: 16 MiB of FM and one simulated Optane SSD. ----------------
  EventLoop loop;
  SdmStoreConfig store_cfg;
  store_cfg.fm_capacity = 16 * kMiB;
  store_cfg.sm_specs = {MakeOptaneSsdSpec()};
  store_cfg.sm_backing_bytes = {32 * kMiB};
  // Tuning API (§4): all defaults — sub-block reads on, unified dual row
  // cache auto-sized from leftover FM, SM-only placement for user tables.
  SdmStore store(store_cfg, &loop);

  // -- 3. Load: generates deterministic tables, places, writes, seals. ------
  const auto load = ModelLoader::Load(model, LoaderOptions{}, &store);
  if (!load.ok()) {
    std::fprintf(stderr, "load failed: %s\n", load.status().ToString().c_str());
    return 1;
  }
  std::printf("loaded: %.2f MiB on SM, %.2f MiB FM direct, cache budget %.2f MiB\n",
              AsMiB(store.sm_used_bytes()), AsMiB(store.fm_direct_bytes()),
              AsMiB(store.fm_cache_budget()));

  // -- 4. One query's embedding work through the SDM. -----------------------
  WorkloadConfig wl;
  wl.num_users = 1000;
  QueryGenerator workload(model, wl);
  const Query query = workload.Next();

  LookupEngine engine(&store);
  std::vector<std::vector<float>> pooled(model.tables.size());
  size_t pending = model.tables.size();
  for (size_t t = 0; t < model.tables.size(); ++t) {
    LookupRequest req;
    req.table = MakeTableId(static_cast<uint32_t>(t));
    req.indices = query.indices[t];
    engine.Lookup(std::move(req),
                  [&, t](Status status, std::vector<float> out, const LookupTrace& trace) {
                    if (!status.ok()) {
                      std::fprintf(stderr, "lookup failed: %s\n",
                                   status.ToString().c_str());
                      return;
                    }
                    std::printf(
                        "  table %zu: %u indices -> %u cache hits, %u SM reads, %u FM "
                        "reads (%.1f us)\n",
                        t, trace.rows_requested, trace.rows_from_cache, trace.rows_from_sm,
                        trace.rows_from_fm_direct, trace.latency.micros());
                    pooled[t] = std::move(out);
                    --pending;
                  });
  }
  loop.RunUntilIdle();  // drive the simulation until all IO completes
  if (pending != 0) {
    std::fprintf(stderr, "lookups did not complete\n");
    return 1;
  }

  // -- 5. Score with the real dense side. -----------------------------------
  DlrmArchitecture arch;
  arch.dense_features = 13;
  arch.bottom_widths = {64};
  arch.top_widths = {64, 32};
  arch.embedding_dim = 32;
  const DlrmModel dlrm(arch, model);
  const std::vector<float> dense_features(13, 0.5f);
  const auto score = dlrm.Score(dense_features, pooled);
  if (!score.ok()) {
    std::fprintf(stderr, "score failed: %s\n", score.status().ToString().c_str());
    return 1;
  }
  std::printf("CTR score: %.4f\n", score.value());

  // Run the same query again: everything now comes from the row cache.
  LookupRequest again;
  again.table = MakeTableId(0);
  again.indices = query.indices[0];
  engine.Lookup(std::move(again),
                [](Status, std::vector<float>, const LookupTrace& trace) {
                  std::printf("re-run table 0: %u/%u rows from cache (%.1f us)\n",
                              trace.rows_from_cache, trace.rows_requested,
                              trace.latency.micros());
                });
  loop.RunUntilIdle();
  return 0;
}
