// Multi-tenant serving on one shared SM device stack (§5.3 + src/tenant):
// a latency-sensitive recommender (foreground) co-locates with a batch
// scorer replaying the same model offline (background). Both shards attach
// to ONE SharedDeviceService, so:
//
//   - the scorer's byte-identical tables dedup to the recommender's device
//     extents (no second copy on SM);
//   - overlapping hot-block misses single-flight across the two stores;
//   - the scorer's demand reads ride the scheduler's byte-budgeted
//     background lane — parked under pressure, promoted when the
//     recommender overlaps them — so it cannot starve the foreground p99.
//
//   $ ./examples/multi_tenant_serving [qps_per_tenant]
#include <cstdio>
#include <cstdlib>

#include "common/logging.h"
#include "dlrm/model_zoo.h"
#include "tenant/multi_tenant_host.h"

using namespace sdm;

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarn);
  const double qps = argc > 1 ? std::atof(argv[1]) : 4000;

  // One base model served twice: the online recommender and its offline
  // batch scorer (an A/B or replay tenant sees identical table bytes).
  ModelConfig model = MakeTinyUniformModel(64, 3, 1, 40'000);
  model.name = "recsys-base";
  std::printf("model: %zu tables, %.1f MiB\n", model.tables.size(),
              AsMiB(model.TotalBytes()));

  HostSimConfig base;
  base.host = MakeHwFAO(2);  // accelerator + 2x Optane (Table 11's platform)
  base.fm_capacity = 24 * kMiB;
  base.sm_backing_per_device = 64 * kMiB;
  base.workload.num_users = 2000;
  base.tuning.max_batch_delay = Micros(50);

  MultiTenantHost host(base, /*seed=*/0x5e, /*shared_device=*/true);
  if (Status s = host.AddTenant(model, 4 * kMiB, TenantClass::kForeground); !s.ok()) {
    std::fprintf(stderr, "foreground tenant failed: %s\n", s.ToString().c_str());
    return 1;
  }
  if (Status s = host.AddTenant(model, 4 * kMiB, TenantClass::kBackground); !s.ok()) {
    std::fprintf(stderr, "background tenant failed: %s\n", s.ToString().c_str());
    return 1;
  }

  const MultiTenantReport r = host.Run(qps, 4000);
  std::printf("\n%s\n\n", r.Summary().c_str());
  for (const auto& t : r.tenants) {
    std::printf("  %s\n", t.Summary().c_str());
  }

  std::printf(
      "\nthe scorer reused %.1f MiB of the recommender's device extents and %llu of\n"
      "its in-flight reads; its own reads rode the background lane (%llu parked,\n"
      "%llu promoted on foreground overlap), keeping the recommender's p99 at\n"
      "%.2f ms while both tenants run from one device stack.\n",
      AsMiB(r.sm_logical_bytes - r.sm_unique_bytes),
      static_cast<unsigned long long>(r.tenants[1].cross_tenant_hits),
      static_cast<unsigned long long>(r.io.background_parked),
      static_cast<unsigned long long>(r.io.background_promoted),
      r.tenants[0].run.p99.millis());
  return 0;
}
