// Capacity planner: given a model's shape and a QPS target, size the SM
// deployment — which technology, how many devices, what cache hit rate is
// needed, and whether endurance sustains the model-refresh cadence.
// This automates the arithmetic behind the paper's Tables 1, 9 and 10.
//
//   $ ./examples/capacity_planner [qps] [user_tables] [avg_pf] [hit_rate]
#include <cstdio>
#include <cstdlib>

#include "common/logging.h"
#include "device/device_spec.h"
#include "device/endurance.h"
#include "serving/power_model.h"

using namespace sdm;

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarn);
  const double qps = argc > 1 ? std::atof(argv[1]) : 3150;        // paper's M3 row
  const double user_tables = argc > 2 ? std::atof(argv[2]) : 2000;
  const double avg_pf = argc > 3 ? std::atof(argv[3]) : 30;
  const double hit_rate = argc > 4 ? std::atof(argv[4]) : 0.80;
  const Bytes model_size = 1000 * kGiB;  // SM-resident (user) capacity

  std::printf("plan for: %.0f QPS/host, %.0f user tables, PF %.0f, cache hit %.0f%%\n\n",
              qps, user_tables, avg_pf, hit_rate * 100);
  std::printf("raw SM demand (Eq. 8): %.1f MIOPS -> %.1f MIOPS after cache\n",
              qps * user_tables * avg_pf / 1e6,
              qps * user_tables * avg_pf * (1 - hit_rate) / 1e6);

  std::printf("\n%-22s %-8s %-10s %-12s %-14s %-16s\n", "technology", "devices",
              "capacity", "cost vs DRAM", "latency (us)", "min update (min)");
  for (const DeviceSpec& spec : Table1Specs()) {
    SsdSizingInput in;
    in.qps = qps;
    in.user_tables = user_tables;
    in.avg_pooling = avg_pf;
    in.cache_hit_rate = hit_rate;
    in.per_ssd_iops = spec.max_read_iops;
    const SsdSizingResult sizing = ComputeSsdRequirement(in);

    // Enough devices for IOPS; check capacity and endurance too.
    int devices = sizing.ssds_needed;
    while (static_cast<Bytes>(devices) * spec.capacity < model_size) ++devices;
    WearTracker wear(static_cast<Bytes>(devices) * spec.capacity, spec.endurance_dwpd);
    const double update_min =
        spec.endurance_dwpd > 0 ? wear.MinUpdateIntervalMinutes(model_size) : 0.0;
    const double rel_cost = spec.cost_per_gb_rel_dram * static_cast<double>(devices) *
                            AsGiB(spec.capacity) / AsGiB(model_size);
    std::printf("%-22s %-8d %-10.0fG %-12.2f %-14.1f %-16.1f\n", ToString(spec.technology),
                devices, AsGiB(spec.capacity) * devices, rel_cost,
                spec.base_read_latency.micros(), update_min);
  }

  std::printf("\nnotes:\n");
  std::printf("- devices = max(IOPS-driven count, capacity-driven count)\n");
  std::printf("- 'cost vs DRAM' compares the SM complement against holding the same\n");
  std::printf("  bytes in DRAM (1.0 = DRAM-equivalent cost)\n");
  std::printf("- 'min update' is the endurance-limited refresh interval (0 = unlimited);\n");
  std::printf("  the paper flags this as Nand's weakness and Optane's strength (Table 1)\n");
  return 0;
}
