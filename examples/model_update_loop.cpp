// Model-update loop: serve a model while refreshing it on a cadence,
// watching hit-rate dips, write endurance, and the online/offline update
// trade-off (paper Appendix A.3/A.4).
//
//   $ ./examples/model_update_loop [cycles]
#include <cstdio>
#include <cstdlib>

#include "common/logging.h"
#include "core/model_updater.h"
#include "dlrm/model_zoo.h"
#include "serving/host.h"

using namespace sdm;

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarn);
  const int cycles = argc > 1 ? std::atoi(argv[1]) : 4;

  const ModelConfig model = MakeTinyUniformModel(32, 4, 1, 20'000);
  HostSimConfig cfg;
  cfg.host = MakeHwSS();
  cfg.fm_capacity = 8 * kMiB;
  cfg.sm_backing_per_device = 32 * kMiB;
  cfg.workload.num_users = 2000;
  cfg.workload.user_index_churn = 0.03;
  HostSimulation host(cfg);
  if (Status s = host.LoadModel(model); !s.ok()) {
    std::fprintf(stderr, "load failed: %s\n", s.ToString().c_str());
    return 1;
  }
  host.Warmup(4000);
  ModelUpdater updater(&host.store());

  std::printf("serving at 200 QPS with a refresh every cycle "
              "(incremental 20%% online vs full offline)\n\n");
  std::printf("%-7s %-22s %-10s %-10s %-12s %-14s %-12s\n", "cycle", "update kind",
              "rows", "write ms", "hit % after", "p95 ms after", "drive writes");

  for (int c = 0; c < cycles; ++c) {
    // Alternate: incremental online refresh, then a full offline one.
    UpdateOptions opts;
    opts.online = (c % 2 == 0);
    opts.row_fraction = opts.online ? 0.2 : 1.0;
    opts.seed = 1000 + c;
    const auto update = updater.Update(opts);
    if (!update.ok()) {
      std::fprintf(stderr, "update failed: %s\n", update.status().ToString().c_str());
      return 1;
    }
    const HostRunReport after = host.Run(200, 1200);
    std::printf("%-7d %-22s %-10llu %-10.2f %-12.1f %-14.2f %-12.3f\n", c,
                opts.online ? "incremental (online)" : "full (offline)",
                static_cast<unsigned long long>(update.value().rows_updated),
                update.value().write_time.millis(), after.row_cache_hit_rate * 100,
                after.p95.millis(), update.value().sm_drive_writes);
    if (!opts.online) {
      // Cold caches: warm back up before the next cycle, like the fleet's
      // rolling-update over-provisioning absorbs (A.4).
      host.Warmup(4000);
    }
  }

  // Endurance summary: how often could this drive sustain full refreshes?
  const auto& spec = host.store().sm_device(0).spec();
  WearTracker rated(spec.capacity, spec.endurance_dwpd);
  std::printf("\nendurance: %s rated %.0f DWPD -> a %.0fGB model could refresh every "
              "%.1f minutes at most\n",
              ToString(spec.technology), spec.endurance_dwpd, 143.0,
              rated.MinUpdateIntervalMinutes(143 * kGiB));
  std::printf("warmup roofline (A.4): r=10%%, w=5min, p=50%%, t=30min -> %.1f%% extra "
              "capacity\n",
              ModelUpdater::WarmupCapacityOverhead(0.10, 5, 0.50, 30) * 100);
  return 0;
}
