// Ads-ranking serving simulation: an M1-class CTR model on an HW-SS host
// (the paper's §5.1 deployment), driven at increasing load until the p95
// SLA breaks — the workflow a capacity engineer runs before enabling SDM
// for a use case.
//
//   $ ./examples/ads_ranking [target_qps]
#include <cstdio>
#include <cstdlib>

#include "common/logging.h"
#include "dlrm/model_zoo.h"
#include "serving/host.h"
#include "serving/power_model.h"

using namespace sdm;

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarn);
  const double target_qps = argc > 1 ? std::atof(argv[1]) : 0;  // 0 = sweep

  // The ads model: M1 ratios at 1/4096 scale (~35 MiB).
  const ModelConfig model = MakeM1(1.0 / 4096);
  std::printf("ads model: %zu tables, %.1f MiB (%zu user tables, avg PF %.0f)\n",
              model.tables.size(), AsMiB(model.TotalBytes()),
              model.CountFor(TableRole::kUser), model.AvgPoolingFactor(TableRole::kUser));

  HostSimConfig cfg;
  cfg.host = MakeHwSS();  // single socket + 2x Nand Flash
  cfg.fm_capacity = 24 * kMiB;
  cfg.sm_backing_per_device = 48 * kMiB;
  cfg.workload.num_users = 2000;
  cfg.workload.user_index_churn = 0.02;
  cfg.workload.pooling_scale = 0.25;
  HostSimulation host(cfg);
  if (Status s = host.LoadModel(model); !s.ok()) {
    std::fprintf(stderr, "load failed: %s\n", s.ToString().c_str());
    return 1;
  }

  std::printf("warming the SM cache (the paper reaches steady state in minutes)...\n");
  host.Warmup(4000);

  if (target_qps > 0) {
    const HostRunReport r = host.Run(target_qps, 3000);
    std::printf("@ %.0f QPS: %s\n", target_qps, r.Summary().c_str());
    return 0;
  }

  std::printf("\n%-10s %-10s %-10s %-10s %-12s %-10s\n", "QPS", "p50 ms", "p95 ms",
              "p99 ms", "hit %", "SM IOPS");
  for (const double qps : {60.0, 120.0, 240.0, 480.0, 960.0}) {
    const HostRunReport r = host.Run(qps, 2500);
    std::printf("%-10.0f %-10.2f %-10.2f %-10.2f %-12.1f %-10.0f\n", qps, r.p50.millis(),
                r.p95.millis(), r.p99.millis(), r.row_cache_hit_rate * 100, r.sm_iops);
  }

  const double max_qps = host.FindMaxQps(Millis(15), /*use_p99=*/false, 1200, 30, 50'000);
  std::printf("\nmax QPS at p95 <= 15ms: %.0f\n", max_qps);

  // What this host earns at fleet scale versus DRAM-only serving.
  const FleetEstimate dram_fleet = EvaluateFleet(
      {"HW-L", max_qps * 1000, max_qps * 2.0, MakeHwL().power, 0, 0});
  const FleetEstimate sdm_fleet =
      EvaluateFleet({"HW-SS + SDM", max_qps * 1000, max_qps, MakeHwSS().power, 0, 0});
  std::printf("fleet projection (HW-L at ~2x per-host QPS): %s vs %s -> %.0f%% power "
              "saving with SDM\n",
              dram_fleet.Summary().c_str(), sdm_fleet.Summary().c_str(),
              PowerSaving(dram_fleet, sdm_fleet) * 100);
  return 0;
}
