# Empty dependencies file for bench_fig5_spatial_locality.
# This may be replaced when dependencies are built.
