file(REMOVE_RECURSE
  "CMakeFiles/embedding_test.dir/tests/embedding_test.cpp.o"
  "CMakeFiles/embedding_test.dir/tests/embedding_test.cpp.o.d"
  "embedding_test"
  "embedding_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/embedding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
