# Empty dependencies file for embedding_test.
# This may be replaced when dependencies are built.
