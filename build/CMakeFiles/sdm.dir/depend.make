# Empty dependencies file for sdm.
# This may be replaced when dependencies are built.
