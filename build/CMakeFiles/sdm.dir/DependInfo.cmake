
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/block_cache.cpp" "CMakeFiles/sdm.dir/src/cache/block_cache.cpp.o" "gcc" "CMakeFiles/sdm.dir/src/cache/block_cache.cpp.o.d"
  "/root/repo/src/cache/cpu_optimized_cache.cpp" "CMakeFiles/sdm.dir/src/cache/cpu_optimized_cache.cpp.o" "gcc" "CMakeFiles/sdm.dir/src/cache/cpu_optimized_cache.cpp.o.d"
  "/root/repo/src/cache/dual_cache.cpp" "CMakeFiles/sdm.dir/src/cache/dual_cache.cpp.o" "gcc" "CMakeFiles/sdm.dir/src/cache/dual_cache.cpp.o.d"
  "/root/repo/src/cache/memory_optimized_cache.cpp" "CMakeFiles/sdm.dir/src/cache/memory_optimized_cache.cpp.o" "gcc" "CMakeFiles/sdm.dir/src/cache/memory_optimized_cache.cpp.o.d"
  "/root/repo/src/cache/pooled_cache.cpp" "CMakeFiles/sdm.dir/src/cache/pooled_cache.cpp.o" "gcc" "CMakeFiles/sdm.dir/src/cache/pooled_cache.cpp.o.d"
  "/root/repo/src/common/event_loop.cpp" "CMakeFiles/sdm.dir/src/common/event_loop.cpp.o" "gcc" "CMakeFiles/sdm.dir/src/common/event_loop.cpp.o.d"
  "/root/repo/src/common/histogram.cpp" "CMakeFiles/sdm.dir/src/common/histogram.cpp.o" "gcc" "CMakeFiles/sdm.dir/src/common/histogram.cpp.o.d"
  "/root/repo/src/common/logging.cpp" "CMakeFiles/sdm.dir/src/common/logging.cpp.o" "gcc" "CMakeFiles/sdm.dir/src/common/logging.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "CMakeFiles/sdm.dir/src/common/rng.cpp.o" "gcc" "CMakeFiles/sdm.dir/src/common/rng.cpp.o.d"
  "/root/repo/src/common/stats.cpp" "CMakeFiles/sdm.dir/src/common/stats.cpp.o" "gcc" "CMakeFiles/sdm.dir/src/common/stats.cpp.o.d"
  "/root/repo/src/common/thread_pool.cpp" "CMakeFiles/sdm.dir/src/common/thread_pool.cpp.o" "gcc" "CMakeFiles/sdm.dir/src/common/thread_pool.cpp.o.d"
  "/root/repo/src/core/lookup_engine.cpp" "CMakeFiles/sdm.dir/src/core/lookup_engine.cpp.o" "gcc" "CMakeFiles/sdm.dir/src/core/lookup_engine.cpp.o.d"
  "/root/repo/src/core/model_loader.cpp" "CMakeFiles/sdm.dir/src/core/model_loader.cpp.o" "gcc" "CMakeFiles/sdm.dir/src/core/model_loader.cpp.o.d"
  "/root/repo/src/core/model_updater.cpp" "CMakeFiles/sdm.dir/src/core/model_updater.cpp.o" "gcc" "CMakeFiles/sdm.dir/src/core/model_updater.cpp.o.d"
  "/root/repo/src/core/placement.cpp" "CMakeFiles/sdm.dir/src/core/placement.cpp.o" "gcc" "CMakeFiles/sdm.dir/src/core/placement.cpp.o.d"
  "/root/repo/src/core/sdm_store.cpp" "CMakeFiles/sdm.dir/src/core/sdm_store.cpp.o" "gcc" "CMakeFiles/sdm.dir/src/core/sdm_store.cpp.o.d"
  "/root/repo/src/core/tuning.cpp" "CMakeFiles/sdm.dir/src/core/tuning.cpp.o" "gcc" "CMakeFiles/sdm.dir/src/core/tuning.cpp.o.d"
  "/root/repo/src/device/device_spec.cpp" "CMakeFiles/sdm.dir/src/device/device_spec.cpp.o" "gcc" "CMakeFiles/sdm.dir/src/device/device_spec.cpp.o.d"
  "/root/repo/src/device/dram_device.cpp" "CMakeFiles/sdm.dir/src/device/dram_device.cpp.o" "gcc" "CMakeFiles/sdm.dir/src/device/dram_device.cpp.o.d"
  "/root/repo/src/device/endurance.cpp" "CMakeFiles/sdm.dir/src/device/endurance.cpp.o" "gcc" "CMakeFiles/sdm.dir/src/device/endurance.cpp.o.d"
  "/root/repo/src/device/latency_model.cpp" "CMakeFiles/sdm.dir/src/device/latency_model.cpp.o" "gcc" "CMakeFiles/sdm.dir/src/device/latency_model.cpp.o.d"
  "/root/repo/src/device/nvme_device.cpp" "CMakeFiles/sdm.dir/src/device/nvme_device.cpp.o" "gcc" "CMakeFiles/sdm.dir/src/device/nvme_device.cpp.o.d"
  "/root/repo/src/dlrm/dlrm_model.cpp" "CMakeFiles/sdm.dir/src/dlrm/dlrm_model.cpp.o" "gcc" "CMakeFiles/sdm.dir/src/dlrm/dlrm_model.cpp.o.d"
  "/root/repo/src/dlrm/mlp.cpp" "CMakeFiles/sdm.dir/src/dlrm/mlp.cpp.o" "gcc" "CMakeFiles/sdm.dir/src/dlrm/mlp.cpp.o.d"
  "/root/repo/src/dlrm/model_zoo.cpp" "CMakeFiles/sdm.dir/src/dlrm/model_zoo.cpp.o" "gcc" "CMakeFiles/sdm.dir/src/dlrm/model_zoo.cpp.o.d"
  "/root/repo/src/embedding/embedding_table.cpp" "CMakeFiles/sdm.dir/src/embedding/embedding_table.cpp.o" "gcc" "CMakeFiles/sdm.dir/src/embedding/embedding_table.cpp.o.d"
  "/root/repo/src/embedding/pooling.cpp" "CMakeFiles/sdm.dir/src/embedding/pooling.cpp.o" "gcc" "CMakeFiles/sdm.dir/src/embedding/pooling.cpp.o.d"
  "/root/repo/src/embedding/pruning.cpp" "CMakeFiles/sdm.dir/src/embedding/pruning.cpp.o" "gcc" "CMakeFiles/sdm.dir/src/embedding/pruning.cpp.o.d"
  "/root/repo/src/embedding/quantization.cpp" "CMakeFiles/sdm.dir/src/embedding/quantization.cpp.o" "gcc" "CMakeFiles/sdm.dir/src/embedding/quantization.cpp.o.d"
  "/root/repo/src/embedding/table_config.cpp" "CMakeFiles/sdm.dir/src/embedding/table_config.cpp.o" "gcc" "CMakeFiles/sdm.dir/src/embedding/table_config.cpp.o.d"
  "/root/repo/src/io/buffer_arena.cpp" "CMakeFiles/sdm.dir/src/io/buffer_arena.cpp.o" "gcc" "CMakeFiles/sdm.dir/src/io/buffer_arena.cpp.o.d"
  "/root/repo/src/io/direct_reader.cpp" "CMakeFiles/sdm.dir/src/io/direct_reader.cpp.o" "gcc" "CMakeFiles/sdm.dir/src/io/direct_reader.cpp.o.d"
  "/root/repo/src/io/io_engine.cpp" "CMakeFiles/sdm.dir/src/io/io_engine.cpp.o" "gcc" "CMakeFiles/sdm.dir/src/io/io_engine.cpp.o.d"
  "/root/repo/src/io/mmap_reader.cpp" "CMakeFiles/sdm.dir/src/io/mmap_reader.cpp.o" "gcc" "CMakeFiles/sdm.dir/src/io/mmap_reader.cpp.o.d"
  "/root/repo/src/io/throttle.cpp" "CMakeFiles/sdm.dir/src/io/throttle.cpp.o" "gcc" "CMakeFiles/sdm.dir/src/io/throttle.cpp.o.d"
  "/root/repo/src/serving/cluster.cpp" "CMakeFiles/sdm.dir/src/serving/cluster.cpp.o" "gcc" "CMakeFiles/sdm.dir/src/serving/cluster.cpp.o.d"
  "/root/repo/src/serving/host.cpp" "CMakeFiles/sdm.dir/src/serving/host.cpp.o" "gcc" "CMakeFiles/sdm.dir/src/serving/host.cpp.o.d"
  "/root/repo/src/serving/inference_engine.cpp" "CMakeFiles/sdm.dir/src/serving/inference_engine.cpp.o" "gcc" "CMakeFiles/sdm.dir/src/serving/inference_engine.cpp.o.d"
  "/root/repo/src/serving/power_model.cpp" "CMakeFiles/sdm.dir/src/serving/power_model.cpp.o" "gcc" "CMakeFiles/sdm.dir/src/serving/power_model.cpp.o.d"
  "/root/repo/src/trace/locality.cpp" "CMakeFiles/sdm.dir/src/trace/locality.cpp.o" "gcc" "CMakeFiles/sdm.dir/src/trace/locality.cpp.o.d"
  "/root/repo/src/trace/trace_gen.cpp" "CMakeFiles/sdm.dir/src/trace/trace_gen.cpp.o" "gcc" "CMakeFiles/sdm.dir/src/trace/trace_gen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
