file(REMOVE_RECURSE
  "libsdm.a"
)
