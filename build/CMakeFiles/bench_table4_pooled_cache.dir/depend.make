# Empty dependencies file for bench_table4_pooled_cache.
# This may be replaced when dependencies are built.
