file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_pooled_cache.dir/bench/bench_table4_pooled_cache.cpp.o"
  "CMakeFiles/bench_table4_pooled_cache.dir/bench/bench_table4_pooled_cache.cpp.o.d"
  "bench_table4_pooled_cache"
  "bench_table4_pooled_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_pooled_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
