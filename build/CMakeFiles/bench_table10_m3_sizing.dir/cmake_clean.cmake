file(REMOVE_RECURSE
  "CMakeFiles/bench_table10_m3_sizing.dir/bench/bench_table10_m3_sizing.cpp.o"
  "CMakeFiles/bench_table10_m3_sizing.dir/bench/bench_table10_m3_sizing.cpp.o.d"
  "bench_table10_m3_sizing"
  "bench_table10_m3_sizing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table10_m3_sizing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
