# Empty dependencies file for bench_table10_m3_sizing.
# This may be replaced when dependencies are built.
