# Empty dependencies file for bench_coalescing.
# This may be replaced when dependencies are built.
