file(REMOVE_RECURSE
  "CMakeFiles/bench_coalescing.dir/bench/bench_coalescing.cpp.o"
  "CMakeFiles/bench_coalescing.dir/bench/bench_coalescing.cpp.o.d"
  "bench_coalescing"
  "bench_coalescing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_coalescing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
