# Empty dependencies file for bench_fig6_cache_org.
# This may be replaced when dependencies are built.
