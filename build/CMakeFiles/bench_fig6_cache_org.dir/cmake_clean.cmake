file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_cache_org.dir/bench/bench_fig6_cache_org.cpp.o"
  "CMakeFiles/bench_fig6_cache_org.dir/bench/bench_fig6_cache_org.cpp.o.d"
  "bench_fig6_cache_org"
  "bench_fig6_cache_org.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_cache_org.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
