file(REMOVE_RECURSE
  "CMakeFiles/bench_interop.dir/bench/bench_interop.cpp.o"
  "CMakeFiles/bench_interop.dir/bench/bench_interop.cpp.o.d"
  "bench_interop"
  "bench_interop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_interop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
