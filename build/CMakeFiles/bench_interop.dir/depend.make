# Empty dependencies file for bench_interop.
# This may be replaced when dependencies are built.
