file(REMOVE_RECURSE
  "CMakeFiles/example_ads_ranking.dir/examples/ads_ranking.cpp.o"
  "CMakeFiles/example_ads_ranking.dir/examples/ads_ranking.cpp.o.d"
  "example_ads_ranking"
  "example_ads_ranking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_ads_ranking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
