# Empty dependencies file for example_ads_ranking.
# This may be replaced when dependencies are built.
