# Empty dependencies file for bench_ablation_multilevel.
# This may be replaced when dependencies are built.
