file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_multilevel.dir/bench/bench_ablation_multilevel.cpp.o"
  "CMakeFiles/bench_ablation_multilevel.dir/bench/bench_ablation_multilevel.cpp.o.d"
  "bench_ablation_multilevel"
  "bench_ablation_multilevel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_multilevel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
