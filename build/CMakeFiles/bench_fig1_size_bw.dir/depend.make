# Empty dependencies file for bench_fig1_size_bw.
# This may be replaced when dependencies are built.
