file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_size_bw.dir/bench/bench_fig1_size_bw.cpp.o"
  "CMakeFiles/bench_fig1_size_bw.dir/bench/bench_fig1_size_bw.cpp.o.d"
  "bench_fig1_size_bw"
  "bench_fig1_size_bw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_size_bw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
