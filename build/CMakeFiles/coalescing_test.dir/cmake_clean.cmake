file(REMOVE_RECURSE
  "CMakeFiles/coalescing_test.dir/tests/coalescing_test.cpp.o"
  "CMakeFiles/coalescing_test.dir/tests/coalescing_test.cpp.o.d"
  "coalescing_test"
  "coalescing_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coalescing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
