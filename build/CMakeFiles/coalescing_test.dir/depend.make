# Empty dependencies file for coalescing_test.
# This may be replaced when dependencies are built.
