# Empty dependencies file for example_model_update_loop.
# This may be replaced when dependencies are built.
