file(REMOVE_RECURSE
  "CMakeFiles/example_model_update_loop.dir/examples/model_update_loop.cpp.o"
  "CMakeFiles/example_model_update_loop.dir/examples/model_update_loop.cpp.o.d"
  "example_model_update_loop"
  "example_model_update_loop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_model_update_loop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
