file(REMOVE_RECURSE
  "CMakeFiles/extension_test.dir/tests/extension_test.cpp.o"
  "CMakeFiles/extension_test.dir/tests/extension_test.cpp.o.d"
  "extension_test"
  "extension_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
