# Empty dependencies file for extension_test.
# This may be replaced when dependencies are built.
