# Empty dependencies file for bench_table8_m1_power.
# This may be replaced when dependencies are built.
