file(REMOVE_RECURSE
  "CMakeFiles/bench_table8_m1_power.dir/bench/bench_table8_m1_power.cpp.o"
  "CMakeFiles/bench_table8_m1_power.dir/bench/bench_table8_m1_power.cpp.o.d"
  "bench_table8_m1_power"
  "bench_table8_m1_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_m1_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
