file(REMOVE_RECURSE
  "CMakeFiles/bench_granularity.dir/bench/bench_granularity.cpp.o"
  "CMakeFiles/bench_granularity.dir/bench/bench_granularity.cpp.o.d"
  "bench_granularity"
  "bench_granularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
