# Empty dependencies file for bench_granularity.
# This may be replaced when dependencies are built.
