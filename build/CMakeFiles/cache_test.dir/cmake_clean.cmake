file(REMOVE_RECURSE
  "CMakeFiles/cache_test.dir/tests/cache_test.cpp.o"
  "CMakeFiles/cache_test.dir/tests/cache_test.cpp.o.d"
  "cache_test"
  "cache_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
