# Empty dependencies file for dlrm_test.
# This may be replaced when dependencies are built.
