file(REMOVE_RECURSE
  "CMakeFiles/dlrm_test.dir/tests/dlrm_test.cpp.o"
  "CMakeFiles/dlrm_test.dir/tests/dlrm_test.cpp.o.d"
  "dlrm_test"
  "dlrm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlrm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
