# Empty dependencies file for bench_fig4_temporal_locality.
# This may be replaced when dependencies are built.
