file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_temporal_locality.dir/bench/bench_fig4_temporal_locality.cpp.o"
  "CMakeFiles/bench_fig4_temporal_locality.dir/bench/bench_fig4_temporal_locality.cpp.o.d"
  "bench_fig4_temporal_locality"
  "bench_fig4_temporal_locality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_temporal_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
