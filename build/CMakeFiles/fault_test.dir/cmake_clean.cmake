file(REMOVE_RECURSE
  "CMakeFiles/fault_test.dir/tests/fault_test.cpp.o"
  "CMakeFiles/fault_test.dir/tests/fault_test.cpp.o.d"
  "fault_test"
  "fault_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
