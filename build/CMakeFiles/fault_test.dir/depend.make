# Empty dependencies file for fault_test.
# This may be replaced when dependencies are built.
