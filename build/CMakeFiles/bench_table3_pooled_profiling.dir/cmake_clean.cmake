file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_pooled_profiling.dir/bench/bench_table3_pooled_profiling.cpp.o"
  "CMakeFiles/bench_table3_pooled_profiling.dir/bench/bench_table3_pooled_profiling.cpp.o.d"
  "bench_table3_pooled_profiling"
  "bench_table3_pooled_profiling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_pooled_profiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
