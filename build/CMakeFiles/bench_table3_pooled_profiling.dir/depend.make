# Empty dependencies file for bench_table3_pooled_profiling.
# This may be replaced when dependencies are built.
