file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_usecases.dir/bench/bench_table2_usecases.cpp.o"
  "CMakeFiles/bench_table2_usecases.dir/bench/bench_table2_usecases.cpp.o.d"
  "bench_table2_usecases"
  "bench_table2_usecases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_usecases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
