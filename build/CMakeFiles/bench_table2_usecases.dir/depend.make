# Empty dependencies file for bench_table2_usecases.
# This may be replaced when dependencies are built.
