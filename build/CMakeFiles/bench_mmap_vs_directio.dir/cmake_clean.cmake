file(REMOVE_RECURSE
  "CMakeFiles/bench_mmap_vs_directio.dir/bench/bench_mmap_vs_directio.cpp.o"
  "CMakeFiles/bench_mmap_vs_directio.dir/bench/bench_mmap_vs_directio.cpp.o.d"
  "bench_mmap_vs_directio"
  "bench_mmap_vs_directio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mmap_vs_directio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
