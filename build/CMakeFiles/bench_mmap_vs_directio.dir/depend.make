# Empty dependencies file for bench_mmap_vs_directio.
# This may be replaced when dependencies are built.
