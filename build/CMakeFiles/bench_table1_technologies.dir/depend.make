# Empty dependencies file for bench_table1_technologies.
# This may be replaced when dependencies are built.
