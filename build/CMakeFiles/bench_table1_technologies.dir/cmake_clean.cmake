file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_technologies.dir/bench/bench_table1_technologies.cpp.o"
  "CMakeFiles/bench_table1_technologies.dir/bench/bench_table1_technologies.cpp.o.d"
  "bench_table1_technologies"
  "bench_table1_technologies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_technologies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
