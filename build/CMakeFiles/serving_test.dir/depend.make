# Empty dependencies file for serving_test.
# This may be replaced when dependencies are built.
