file(REMOVE_RECURSE
  "CMakeFiles/serving_test.dir/tests/serving_test.cpp.o"
  "CMakeFiles/serving_test.dir/tests/serving_test.cpp.o.d"
  "serving_test"
  "serving_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serving_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
