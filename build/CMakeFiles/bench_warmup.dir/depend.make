# Empty dependencies file for bench_warmup.
# This may be replaced when dependencies are built.
