file(REMOVE_RECURSE
  "CMakeFiles/bench_warmup.dir/bench/bench_warmup.cpp.o"
  "CMakeFiles/bench_warmup.dir/bench/bench_warmup.cpp.o.d"
  "bench_warmup"
  "bench_warmup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_warmup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
