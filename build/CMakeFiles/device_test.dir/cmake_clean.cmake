file(REMOVE_RECURSE
  "CMakeFiles/device_test.dir/tests/device_test.cpp.o"
  "CMakeFiles/device_test.dir/tests/device_test.cpp.o.d"
  "device_test"
  "device_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/device_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
