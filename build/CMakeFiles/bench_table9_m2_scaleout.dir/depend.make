# Empty dependencies file for bench_table9_m2_scaleout.
# This may be replaced when dependencies are built.
