file(REMOVE_RECURSE
  "CMakeFiles/bench_table9_m2_scaleout.dir/bench/bench_table9_m2_scaleout.cpp.o"
  "CMakeFiles/bench_table9_m2_scaleout.dir/bench/bench_table9_m2_scaleout.cpp.o.d"
  "bench_table9_m2_scaleout"
  "bench_table9_m2_scaleout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table9_m2_scaleout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
