# Empty dependencies file for bench_table11_multitenancy.
# This may be replaced when dependencies are built.
