file(REMOVE_RECURSE
  "CMakeFiles/bench_table11_multitenancy.dir/bench/bench_table11_multitenancy.cpp.o"
  "CMakeFiles/bench_table11_multitenancy.dir/bench/bench_table11_multitenancy.cpp.o.d"
  "bench_table11_multitenancy"
  "bench_table11_multitenancy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table11_multitenancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
