file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_technology.dir/bench/bench_ablation_technology.cpp.o"
  "CMakeFiles/bench_ablation_technology.dir/bench/bench_ablation_technology.cpp.o.d"
  "bench_ablation_technology"
  "bench_ablation_technology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_technology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
