# Empty dependencies file for bench_ablation_technology.
# This may be replaced when dependencies are built.
