# Empty dependencies file for bench_polling.
# This may be replaced when dependencies are built.
