file(REMOVE_RECURSE
  "CMakeFiles/bench_polling.dir/bench/bench_polling.cpp.o"
  "CMakeFiles/bench_polling.dir/bench/bench_polling.cpp.o.d"
  "bench_polling"
  "bench_polling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_polling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
