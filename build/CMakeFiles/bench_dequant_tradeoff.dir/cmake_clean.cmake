file(REMOVE_RECURSE
  "CMakeFiles/bench_dequant_tradeoff.dir/bench/bench_dequant_tradeoff.cpp.o"
  "CMakeFiles/bench_dequant_tradeoff.dir/bench/bench_dequant_tradeoff.cpp.o.d"
  "bench_dequant_tradeoff"
  "bench_dequant_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dequant_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
