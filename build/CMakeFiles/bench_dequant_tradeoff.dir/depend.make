# Empty dependencies file for bench_dequant_tradeoff.
# This may be replaced when dependencies are built.
