file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_device_curves.dir/bench/bench_fig3_device_curves.cpp.o"
  "CMakeFiles/bench_fig3_device_curves.dir/bench/bench_fig3_device_curves.cpp.o.d"
  "bench_fig3_device_curves"
  "bench_fig3_device_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_device_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
