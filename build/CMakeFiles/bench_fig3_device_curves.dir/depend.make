# Empty dependencies file for bench_fig3_device_curves.
# This may be replaced when dependencies are built.
