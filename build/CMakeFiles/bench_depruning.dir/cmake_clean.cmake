file(REMOVE_RECURSE
  "CMakeFiles/bench_depruning.dir/bench/bench_depruning.cpp.o"
  "CMakeFiles/bench_depruning.dir/bench/bench_depruning.cpp.o.d"
  "bench_depruning"
  "bench_depruning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_depruning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
