# Empty dependencies file for bench_depruning.
# This may be replaced when dependencies are built.
