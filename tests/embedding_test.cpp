// Tests for src/embedding: quantization kernels, table images, pruning /
// de-pruning, pooling.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "embedding/embedding_table.h"
#include "embedding/pooling.h"
#include "embedding/pruning.h"
#include "embedding/quantization.h"

namespace sdm {
namespace {

// ---------------------------------------------------------------------------
// Half-precision conversions.
// ---------------------------------------------------------------------------

TEST(Half, ExactValuesRoundTrip) {
  for (const float f : {0.0f, 1.0f, -1.0f, 0.5f, 2.0f, 1024.0f, -0.25f, 65504.0f}) {
    EXPECT_EQ(HalfToFloat(FloatToHalf(f)), f) << f;
  }
}

TEST(Half, RelativeErrorBounded) {
  Rng rng(1);
  for (int i = 0; i < 10'000; ++i) {
    const auto f = static_cast<float>(rng.NextDouble(-1000.0, 1000.0));
    const float back = HalfToFloat(FloatToHalf(f));
    EXPECT_NEAR(back, f, std::fabs(f) * 0x1.0p-10f + 1e-6f);
  }
}

TEST(Half, OverflowGoesToInfinity) {
  EXPECT_TRUE(std::isinf(HalfToFloat(FloatToHalf(1e6f))));
  EXPECT_TRUE(std::isinf(HalfToFloat(FloatToHalf(-1e6f))));
}

TEST(Half, SubnormalsSurvive) {
  const float tiny = 3.0e-7f;  // below half's normal range (~6.1e-5)
  const float back = HalfToFloat(FloatToHalf(tiny));
  EXPECT_GT(back, 0.0f);
  EXPECT_NEAR(back, tiny, 6e-8f);
}

TEST(Half, SignedZero) {
  EXPECT_EQ(FloatToHalf(-0.0f) & 0x8000, 0x8000);
  EXPECT_EQ(HalfToFloat(FloatToHalf(-0.0f)), 0.0f);
}

// ---------------------------------------------------------------------------
// StoredRowBytes.
// ---------------------------------------------------------------------------

TEST(RowLayout, StoredBytesPerType) {
  EXPECT_EQ(StoredRowBytes(DataType::kFp32, 64), 256u);
  EXPECT_EQ(StoredRowBytes(DataType::kFp16, 64), 128u);
  EXPECT_EQ(StoredRowBytes(DataType::kInt8Rowwise, 64), 72u);  // paper's example
  EXPECT_EQ(StoredRowBytes(DataType::kInt4Rowwise, 64), 36u);
  EXPECT_EQ(StoredRowBytes(DataType::kInt4Rowwise, 63), 36u);  // odd dim packs
}

// ---------------------------------------------------------------------------
// Quantize / dequantize round trips.
// ---------------------------------------------------------------------------

struct QuantCase {
  DataType type;
  uint32_t dim;
};

class QuantRoundTrip : public ::testing::TestWithParam<QuantCase> {};

TEST_P(QuantRoundTrip, ErrorWithinBound) {
  const auto [type, dim] = GetParam();
  Rng rng(42 + dim);
  std::vector<float> values(dim);
  float lo = 1e9f;
  float hi = -1e9f;
  for (auto& v : values) {
    v = static_cast<float>(rng.NextDouble(-2.0, 2.0));
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  std::vector<uint8_t> stored(StoredRowBytes(type, dim));
  QuantizeRow(type, values, stored);
  std::vector<float> back(dim);
  DequantizeRow(type, stored, back);
  const float bound = MaxAbsError(type, lo, hi) + 1e-6f;
  for (uint32_t i = 0; i < dim; ++i) {
    EXPECT_NEAR(back[i], values[i], bound) << ToString(type) << " dim=" << dim << " i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllTypesAndDims, QuantRoundTrip,
    ::testing::Values(QuantCase{DataType::kFp32, 1}, QuantCase{DataType::kFp32, 64},
                      QuantCase{DataType::kFp16, 16}, QuantCase{DataType::kFp16, 128},
                      QuantCase{DataType::kInt8Rowwise, 4},
                      QuantCase{DataType::kInt8Rowwise, 64},
                      QuantCase{DataType::kInt8Rowwise, 255},
                      QuantCase{DataType::kInt4Rowwise, 8},
                      QuantCase{DataType::kInt4Rowwise, 63},
                      QuantCase{DataType::kInt4Rowwise, 128}));

TEST(Quantize, Fp32IsExact) {
  std::vector<float> values = {1.5f, -2.25f, 3.75f};
  std::vector<uint8_t> stored(12);
  QuantizeRow(DataType::kFp32, values, stored);
  std::vector<float> back(3);
  DequantizeRow(DataType::kFp32, stored, back);
  EXPECT_EQ(back, values);
}

TEST(Quantize, ConstantRowIsExact) {
  std::vector<float> values(32, 0.7f);
  std::vector<uint8_t> stored(StoredRowBytes(DataType::kInt8Rowwise, 32));
  QuantizeRow(DataType::kInt8Rowwise, values, stored);
  std::vector<float> back(32);
  DequantizeRow(DataType::kInt8Rowwise, stored, back);
  for (const float b : back) EXPECT_FLOAT_EQ(b, 0.7f);
}

TEST(Quantize, EndpointsExactInt8) {
  // Row min and max map to codes 0 and 255 and reconstruct exactly
  // (within float rounding).
  std::vector<float> values = {-3.0f, 0.1f, 5.0f};
  std::vector<uint8_t> stored(StoredRowBytes(DataType::kInt8Rowwise, 3));
  QuantizeRow(DataType::kInt8Rowwise, values, stored);
  std::vector<float> back(3);
  DequantizeRow(DataType::kInt8Rowwise, stored, back);
  EXPECT_NEAR(back[0], -3.0f, 1e-5f);
  EXPECT_NEAR(back[2], 5.0f, 1e-3f);
}

TEST(Quantize, AccumulateMatchesDequantPlusAdd) {
  Rng rng(7);
  std::vector<float> values(48);
  for (auto& v : values) v = static_cast<float>(rng.NextDouble(-1, 1));
  std::vector<uint8_t> stored(StoredRowBytes(DataType::kInt4Rowwise, 48));
  QuantizeRow(DataType::kInt4Rowwise, values, stored);

  std::vector<float> acc1(48, 0.5f);
  DequantizeAccumulate(DataType::kInt4Rowwise, stored, acc1);

  std::vector<float> tmp(48);
  DequantizeRow(DataType::kInt4Rowwise, stored, tmp);
  for (uint32_t i = 0; i < 48; ++i) {
    EXPECT_FLOAT_EQ(acc1[i], 0.5f + tmp[i]);
  }
}

// ---------------------------------------------------------------------------
// EmbeddingTableImage.
// ---------------------------------------------------------------------------

TableConfig SmallConfig(DataType dtype = DataType::kInt8Rowwise) {
  TableConfig cfg;
  cfg.name = "t";
  cfg.num_rows = 100;
  cfg.dim = 16;
  cfg.dtype = dtype;
  return cfg;
}

TEST(TableImage, GenerateIsDeterministic) {
  const auto a = EmbeddingTableImage::GenerateRandom(SmallConfig(), 5);
  const auto b = EmbeddingTableImage::GenerateRandom(SmallConfig(), 5);
  ASSERT_EQ(a.size_bytes(), b.size_bytes());
  EXPECT_TRUE(std::equal(a.bytes().begin(), a.bytes().end(), b.bytes().begin()));
}

TEST(TableImage, DifferentSeedsDiffer) {
  const auto a = EmbeddingTableImage::GenerateRandom(SmallConfig(), 5);
  const auto b = EmbeddingTableImage::GenerateRandom(SmallConfig(), 6);
  EXPECT_FALSE(std::equal(a.bytes().begin(), a.bytes().end(), b.bytes().begin()));
}

TEST(TableImage, RowMatchesReferenceValues) {
  const TableConfig cfg = SmallConfig();
  const auto image = EmbeddingTableImage::GenerateRandom(cfg, 9);
  for (RowIndex r : {RowIndex{0}, RowIndex{57}, RowIndex{99}}) {
    const auto ref = EmbeddingTableImage::ReferenceRowValues(cfg, 9, r);
    const auto got = image.DequantizedRow(r);
    ASSERT_EQ(got.size(), ref.size());
    for (size_t i = 0; i < ref.size(); ++i) {
      EXPECT_NEAR(got[i], ref[i], 2.0f / 255.0f + 1e-5f);
    }
  }
}

TEST(TableImage, SetRowOverwrites) {
  auto image = EmbeddingTableImage::GenerateRandom(SmallConfig(), 3);
  std::vector<float> new_row(16, 0.25f);
  ASSERT_TRUE(image.SetRow(42, new_row).ok());
  const auto back = image.DequantizedRow(42);
  for (const float v : back) EXPECT_NEAR(v, 0.25f, 1e-5f);
}

TEST(TableImage, SetRowValidation) {
  auto image = EmbeddingTableImage::GenerateRandom(SmallConfig(), 3);
  std::vector<float> bad_dim(7);
  EXPECT_EQ(image.SetRow(0, bad_dim).code(), StatusCode::kInvalidArgument);
  std::vector<float> ok(16);
  EXPECT_EQ(image.SetRow(1000, ok).code(), StatusCode::kOutOfRange);
}

TEST(TableImage, ZeroConstructedRowsDequantizeToZero) {
  EmbeddingTableImage image(SmallConfig(DataType::kInt4Rowwise));
  const auto row = image.DequantizedRow(7);
  for (const float v : row) EXPECT_FLOAT_EQ(v, 0.0f);
}

TEST(TableImage, SizeBytesMatchesConfig) {
  const auto image = EmbeddingTableImage::GenerateRandom(SmallConfig(), 1);
  EXPECT_EQ(image.size_bytes(), 100u * (16 + 8));
}

// ---------------------------------------------------------------------------
// Pruning.
// ---------------------------------------------------------------------------

TEST(Pruning, KeepsRequestedFraction) {
  TableConfig cfg = SmallConfig();
  cfg.num_rows = 5000;
  const auto image = EmbeddingTableImage::GenerateRandom(cfg, 11);
  const PrunedTable pruned = PruneTable(image, 0.6, 77);
  EXPECT_NEAR(static_cast<double>(pruned.rows.num_rows()), 3000.0, 150.0);
  EXPECT_EQ(pruned.unpruned_num_rows, 5000u);
  EXPECT_EQ(pruned.mapping.map.size(), 5000u);
}

TEST(Pruning, MappingPointsToIdenticalBytes) {
  const auto image = EmbeddingTableImage::GenerateRandom(SmallConfig(), 13);
  const PrunedTable pruned = PruneTable(image, 0.5, 78);
  for (RowIndex u = 0; u < pruned.unpruned_num_rows; ++u) {
    const auto mapped = pruned.mapping.Lookup(u);
    if (!mapped.has_value()) continue;
    const auto orig = image.Row(u);
    const auto kept = pruned.rows.Row(*mapped);
    EXPECT_TRUE(std::equal(orig.begin(), orig.end(), kept.begin())) << "row " << u;
  }
}

TEST(Pruning, MappingOutOfRangeIsNull) {
  const auto image = EmbeddingTableImage::GenerateRandom(SmallConfig(), 13);
  const PrunedTable pruned = PruneTable(image, 0.5, 79);
  EXPECT_FALSE(pruned.mapping.Lookup(10'000).has_value());
}

TEST(Pruning, KeepAllPreservesEverything) {
  const auto image = EmbeddingTableImage::GenerateRandom(SmallConfig(), 15);
  const PrunedTable pruned = PruneTable(image, 1.0, 80);
  EXPECT_EQ(pruned.rows.num_rows(), image.num_rows());
  for (RowIndex u = 0; u < image.num_rows(); ++u) {
    EXPECT_TRUE(pruned.mapping.Lookup(u).has_value());
  }
}

TEST(Depruning, RebuildsDenseTableWithZeros) {
  const auto image = EmbeddingTableImage::GenerateRandom(SmallConfig(), 17);
  const PrunedTable pruned = PruneTable(image, 0.5, 81);
  const EmbeddingTableImage dense = DeprunedTable(pruned);
  EXPECT_EQ(dense.num_rows(), image.num_rows());
  for (RowIndex u = 0; u < image.num_rows(); ++u) {
    const auto mapped = pruned.mapping.Lookup(u);
    const auto row = dense.DequantizedRow(u);
    if (mapped.has_value()) {
      const auto orig = image.DequantizedRow(u);
      for (size_t i = 0; i < row.size(); ++i) EXPECT_FLOAT_EQ(row[i], orig[i]);
    } else {
      for (const float v : row) EXPECT_FLOAT_EQ(v, 0.0f);
    }
  }
}

TEST(Depruning, FootprintAccountsBothSides) {
  TableConfig cfg = SmallConfig();
  cfg.num_rows = 1000;
  const auto image = EmbeddingTableImage::GenerateRandom(cfg, 19);
  const PrunedTable pruned = PruneTable(image, 0.7, 82);
  const DepruneFootprint f = ComputeDepruneFootprint(pruned);
  EXPECT_EQ(f.fm_bytes_freed, 1000u * 4);  // 4-byte indices
  const uint64_t zero_rows = 1000 - pruned.rows.num_rows();
  EXPECT_EQ(f.sm_bytes_added, zero_rows * cfg.row_bytes());
}

// ---------------------------------------------------------------------------
// Pooling.
// ---------------------------------------------------------------------------

TEST(Pooling, SumMatchesReference) {
  const auto image = EmbeddingTableImage::GenerateRandom(SmallConfig(), 21);
  const std::vector<RowIndex> rows = {1, 5, 9, 33};
  std::vector<std::span<const uint8_t>> stored;
  std::vector<std::vector<float>> dense;
  for (const RowIndex r : rows) {
    stored.push_back(image.Row(r));
    dense.push_back(image.DequantizedRow(r));
  }
  std::vector<float> out(16);
  PoolRows(DataType::kInt8Rowwise, PoolingMode::kSum, stored, out);
  std::vector<float> ref(16);
  PoolDense(PoolingMode::kSum, dense, ref);
  for (size_t i = 0; i < out.size(); ++i) EXPECT_NEAR(out[i], ref[i], 1e-4f);
}

TEST(Pooling, MeanDividesByCount) {
  const auto image = EmbeddingTableImage::GenerateRandom(SmallConfig(), 23);
  std::vector<std::span<const uint8_t>> stored = {image.Row(2), image.Row(2)};
  std::vector<float> mean_out(16);
  PoolRows(DataType::kInt8Rowwise, PoolingMode::kMean, stored, mean_out);
  const auto single = image.DequantizedRow(2);
  for (size_t i = 0; i < 16; ++i) EXPECT_NEAR(mean_out[i], single[i], 1e-5f);
}

TEST(Pooling, EmptyInputGivesZeros) {
  std::vector<float> out(8, 123.0f);
  PoolRows(DataType::kInt8Rowwise, PoolingMode::kSum, {}, out);
  for (const float v : out) EXPECT_FLOAT_EQ(v, 0.0f);
}

TEST(Pooling, CostModelScalesWithBytes) {
  PoolingCostModel cost;
  EXPECT_GT(cost.DequantPoolCost(1024).nanos(), cost.DequantPoolCost(128).nanos());
  EXPECT_EQ(cost.DequantPoolCost(0).nanos(), 0);
}

}  // namespace
}  // namespace sdm
