// Tests for the src/prefetch subsystem and the BatchScheduler's
// low-priority prefetch lane: predictor behavior on synthetic streams,
// lane admission/drop/promotion semantics, bypass-mode parity (the PR 1
// ablation must stay byte-identical), end-to-end byte-identity with
// prefetch on/off, and BufferArena behavior under the enlarged in-flight
// set speculation creates.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <set>
#include <vector>

#include "common/rng.h"
#include "core/lookup_engine.h"
#include "core/model_loader.h"
#include "core/sdm_store.h"
#include "dlrm/model_zoo.h"
#include "io/buffer_arena.h"
#include "prefetch/prefetch_predictor.h"
#include "prefetch/prefetcher.h"
#include "sched/batch_scheduler.h"
#include "serving/host.h"

namespace sdm {
namespace {

// ---------------------------------------------------------------------------
// Predictors: pure unit tests, no devices.
// ---------------------------------------------------------------------------

PredictorGeometry Geometry(Bytes row_bytes = 64, uint64_t num_rows = 4096,
                           Bytes table_offset = 0) {
  PredictorGeometry g;
  g.table_offset = table_offset;
  g.row_bytes = row_bytes;
  g.num_rows = num_rows;
  return g;
}

TEST(HotSetPredictor, LearnsTopRowsOfAZipfStream) {
  HotSetPredictor pred(Geometry());
  Rng rng(7);
  ZipfSampler zipf(4096, 1.0);
  for (int i = 0; i < 20000; ++i) {
    pred.RecordAccess(zipf.Sample(rng));  // rank == row (no permutation)
  }
  const auto top = pred.Predict(8);
  ASSERT_EQ(top.size(), 8u);
  // The hottest Zipf ranks must dominate the prediction; allow the tail of
  // the top-8 some slack, but rank 0 must be the leading candidate.
  EXPECT_EQ(top[0].row, 0u);
  std::set<RowIndex> predicted;
  for (const auto& c : top) {
    predicted.insert(c.row);
    EXPECT_GT(c.confidence, 0.0);
    EXPECT_LE(c.confidence, 1.0);
  }
  int in_top16 = 0;
  for (const auto& c : top) in_top16 += c.row < 16 ? 1 : 0;
  EXPECT_GE(in_top16, 6);
  // Confidence ordering: best first.
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].confidence, top[i].confidence);
  }
}

TEST(HotSetPredictor, DecayTracksWorkloadDrift) {
  HotSetPredictor pred(Geometry());
  // Phase 1: rows 0..3 hot. Phase 2 (4x the traffic + decay): rows 100..103.
  for (int i = 0; i < 4000; ++i) pred.RecordAccess(i % 4);
  for (int i = 0; i < 16000; ++i) pred.RecordAccess(100 + (i % 4));
  const auto top = pred.Predict(4);
  ASSERT_EQ(top.size(), 4u);
  for (const auto& c : top) {
    EXPECT_GE(c.row, 100u);
    EXPECT_LE(c.row, 103u);
  }
}

TEST(HotSetPredictor, BoundsTrackedRows) {
  HotSetPredictor pred(Geometry(64, 1 << 22));
  Rng rng(9);
  for (int i = 0; i < 300000; ++i) {
    pred.RecordAccess(rng.NextBounded(1 << 22));  // uniform: no locality
  }
  EXPECT_LE(pred.tracked_rows(), size_t{1} << 16);
}

TEST(NextBlockPredictor, SequentialMissesPredictNextBlocks) {
  // 64 rows of 64B per 4KB block; misses walking blocks 0,1,2 predict 3+.
  NextBlockPredictor pred(Geometry(64, 4096));
  pred.RecordMiss(0);       // block 0
  pred.RecordMiss(64);      // block 1
  pred.RecordMiss(128);     // block 2
  const auto out = pred.Predict(64);
  ASSERT_FALSE(out.empty());
  for (const auto& c : out) {
    EXPECT_GE(c.row, 192u);  // first row of block 3
    EXPECT_DOUBLE_EQ(c.confidence, 1.0);  // every delta agreed
  }
  EXPECT_EQ(out[0].row, 192u);
}

TEST(NextBlockPredictor, DetectsStrideAndStopsAtTableEnd) {
  NextBlockPredictor pred(Geometry(64, 256));  // 4 blocks total
  pred.RecordMiss(0);    // block 0
  pred.RecordMiss(128);  // block 2: stride +2
  const auto out = pred.Predict(64);
  // Predicted block 4 is past the table: nothing to fetch.
  EXPECT_TRUE(out.empty());

  NextBlockPredictor pred2(Geometry(64, 4096));
  pred2.RecordMiss(0);
  pred2.RecordMiss(128);
  pred2.RecordMiss(256);  // blocks 0,2,4
  const auto out2 = pred2.Predict(4);
  ASSERT_EQ(out2.size(), 4u);
  EXPECT_EQ(out2[0].row, 384u);  // block 6 (stride +2 from block 4) starts at row 384
}

TEST(NextBlockPredictor, NoStrideNoPrediction) {
  NextBlockPredictor pred(Geometry());
  pred.RecordMiss(0);
  EXPECT_TRUE(pred.Predict(8).empty());  // one miss: no delta yet
}

// ---------------------------------------------------------------------------
// BatchScheduler prefetch lane, driven directly against a known device.
// ---------------------------------------------------------------------------

struct SchedulerRig {
  EventLoop loop;
  std::unique_ptr<NvmeDevice> device;
  std::unique_ptr<IoEngine> engine;
  BufferArena arena;
  std::unique_ptr<BatchScheduler> sched;

  explicit SchedulerRig(BatchSchedulerConfig cfg) {
    device = std::make_unique<NvmeDevice>(MakeOptaneSsdSpec(), 64 * kKiB, &loop, 1);
    std::vector<uint8_t> image(64 * kKiB);
    for (size_t i = 0; i < image.size(); ++i) {
      image[i] = static_cast<uint8_t>((i * 7 + 3) & 0xFF);
    }
    EXPECT_TRUE(device->Write(0, image).ok());
    engine = std::make_unique<IoEngine>(device.get(), &loop, IoEngineConfig{});
    sched = std::make_unique<BatchScheduler>(engine.get(), &arena, &loop, cfg);
  }

  BatchScheduler::ReadRequest Request(Bytes begin, Bytes end, int* ok,
                                      bool prefetch = false) {
    BatchScheduler::ReadRequest req;
    req.span_begin = begin;
    req.span_end = end;
    req.first_block = begin / kBlockSize;
    req.last_block = (end - 1) / kBlockSize;
    req.sub_block = false;
    req.kind = prefetch ? BatchScheduler::ReadRequest::Kind::kPrefetch
                        : BatchScheduler::ReadRequest::Kind::kDemand;
    req.rows = 1;
    req.per_row_bus = kBlockSize;
    req.cb = [begin, end, ok](Status s, const uint8_t* data, Bytes base) {
      ASSERT_TRUE(s.ok()) << s.ToString();
      ASSERT_NE(data, nullptr);
      for (Bytes o = begin; o < end; ++o) {
        ASSERT_EQ(data[o - base], static_cast<uint8_t>((o * 7 + 3) & 0xFF));
      }
      ++*ok;
    };
    return req;
  }

  [[nodiscard]] uint64_t DeviceReads() const {
    return device->stats().CounterValue("reads");
  }
  [[nodiscard]] uint64_t Counter(const char* name) const {
    return sched->stats().CounterValue(name);
  }
};

BatchSchedulerConfig LaneConfig() {
  BatchSchedulerConfig cfg;
  cfg.cross_request = true;
  cfg.max_batch_delay = Micros(5);
  cfg.prefetch_flush_delay = Micros(20);
  return cfg;
}

TEST(PrefetchLane, PrefetchOnlyLaneDrainsOnItsOwnTimer) {
  SchedulerRig rig(LaneConfig());
  int ok = 0;
  EXPECT_EQ(rig.sched->Enqueue(rig.Request(100, 200, &ok, /*prefetch=*/true)),
            BatchScheduler::Admission::kNewRead);
  EXPECT_EQ(rig.sched->pending_sqes(), 0u);  // not in the demand batch
  EXPECT_EQ(rig.sched->prefetch_pending_sqes(), 1u);
  rig.loop.RunUntilIdle();
  EXPECT_EQ(ok, 1);
  EXPECT_EQ(rig.DeviceReads(), 1u);
  EXPECT_EQ(rig.Counter("flush_prefetch"), 1u);
  EXPECT_EQ(rig.Counter("flush_deadline"), 0u);
  EXPECT_EQ(rig.Counter("prefetch_reads"), 1u);
  EXPECT_EQ(rig.Counter("device_reads"), 0u);  // demand lane untouched
}

TEST(PrefetchLane, PrefetchRidesTheDemandDoorbell) {
  SchedulerRig rig(LaneConfig());
  int ok = 0;
  (void)rig.sched->Enqueue(rig.Request(100, 200, &ok, /*prefetch=*/true));
  // Demand in a far block: un-mergeable, so two SQEs — but ONE doorbell.
  EXPECT_EQ(rig.sched->Enqueue(rig.Request(8 * kBlockSize + 10, 8 * kBlockSize + 90, &ok)),
            BatchScheduler::Admission::kNewRead);
  rig.loop.RunUntilIdle();
  EXPECT_EQ(ok, 2);
  EXPECT_EQ(rig.DeviceReads(), 2u);
  EXPECT_EQ(rig.Counter("flushes"), 1u);
  EXPECT_EQ(rig.Counter("flush_prefetch"), 0u);  // never needed its own bell
  EXPECT_EQ(rig.Counter("prefetch_reads"), 1u);
  EXPECT_EQ(rig.Counter("device_reads"), 1u);
}

TEST(PrefetchLane, PrefetchNeverTriggersTheSizeFlush) {
  BatchSchedulerConfig cfg = LaneConfig();
  cfg.max_batch_sqes = 2;
  SchedulerRig rig(cfg);
  int ok = 0;
  (void)rig.sched->Enqueue(rig.Request(100, 200, &ok, /*prefetch=*/true));
  (void)rig.sched->Enqueue(
      rig.Request(8 * kBlockSize + 10, 8 * kBlockSize + 90, &ok, /*prefetch=*/true));
  (void)rig.sched->Enqueue(
      rig.Request(12 * kBlockSize + 10, 12 * kBlockSize + 90, &ok, /*prefetch=*/true));
  // Three speculative SQEs sit in the lane; a demand batch of the same size
  // would have flushed at 2.
  EXPECT_EQ(rig.Counter("flush_size"), 0u);
  EXPECT_EQ(rig.sched->prefetch_pending_sqes(), 3u);
  rig.loop.RunUntilIdle();
  EXPECT_EQ(ok, 3);
  EXPECT_EQ(rig.Counter("flush_size"), 0u);
  // The lane drains on its timer in doorbell-room-sized gulps (2, then 1).
  EXPECT_EQ(rig.Counter("flush_prefetch"), 2u);
}

TEST(PrefetchLane, DemandPromotesPendingPrefetch) {
  SchedulerRig rig(LaneConfig());
  int ok = 0;
  (void)rig.sched->Enqueue(rig.Request(100, 200, &ok, /*prefetch=*/true));
  // Demand in the same block: the speculative SQE upgrades to demand and
  // serves both subscribers with one read.
  EXPECT_EQ(rig.sched->Enqueue(rig.Request(300, 400, &ok)),
            BatchScheduler::Admission::kJoinedPending);
  EXPECT_EQ(rig.sched->prefetch_pending_sqes(), 0u);
  EXPECT_EQ(rig.sched->pending_sqes(), 1u);
  rig.loop.RunUntilIdle();
  EXPECT_EQ(ok, 2);
  EXPECT_EQ(rig.DeviceReads(), 1u);
  EXPECT_EQ(rig.Counter("prefetch_promoted"), 1u);
  EXPECT_EQ(rig.Counter("singleflight_hits"), 1u);
  // Promoted = demand SQE: counted as a device read, not a prefetch read.
  EXPECT_EQ(rig.Counter("device_reads"), 1u);
  EXPECT_EQ(rig.Counter("prefetch_reads"), 0u);
}

TEST(PrefetchLane, DemandJoinsInFlightPrefetchRead) {
  BatchSchedulerConfig cfg = LaneConfig();
  cfg.prefetch_flush_delay = SimDuration(0);  // launch speculation instantly
  SchedulerRig rig(cfg);
  int ok = 0;
  (void)rig.sched->Enqueue(rig.Request(100, 200, &ok, /*prefetch=*/true));
  rig.loop.RunUntil(rig.loop.Now() + Micros(2));
  ASSERT_EQ(rig.sched->in_flight_reads(), 1u);
  EXPECT_EQ(rig.sched->Enqueue(rig.Request(300, 400, &ok)),
            BatchScheduler::Admission::kJoinedInFlight);
  rig.loop.RunUntilIdle();
  EXPECT_EQ(ok, 2);
  EXPECT_EQ(rig.DeviceReads(), 1u);
  EXPECT_EQ(rig.Counter("prefetch_promoted"), 1u);
  EXPECT_EQ(rig.Counter("singleflight_hits"), 1u);
}

TEST(PrefetchLane, PrefetchJoinsPendingDemandWithoutGrowingIt) {
  SchedulerRig rig(LaneConfig());
  int ok = 0;
  (void)rig.sched->Enqueue(rig.Request(100, 200, &ok));
  // Covered by the demand block read: free ride.
  EXPECT_EQ(rig.sched->Enqueue(rig.Request(300, 400, &ok, /*prefetch=*/true)),
            BatchScheduler::Admission::kJoinedPending);
  // Adjacent block: a demand run would merge, speculation must NOT grow a
  // demand SQE — it stays in the lane instead.
  EXPECT_EQ(rig.sched->Enqueue(
                rig.Request(kBlockSize + 10, kBlockSize + 90, &ok, /*prefetch=*/true)),
            BatchScheduler::Admission::kNewRead);
  EXPECT_EQ(rig.sched->pending_sqes(), 1u);
  EXPECT_EQ(rig.sched->prefetch_pending_sqes(), 1u);
  rig.loop.RunUntilIdle();
  EXPECT_EQ(ok, 3);
  EXPECT_EQ(rig.Counter("prefetch_singleflight"), 1u);
  EXPECT_EQ(rig.Counter("cross_request_merges"), 0u);
}

TEST(PrefetchLane, DropsUnderByteBudgetPressure) {
  BatchSchedulerConfig cfg = LaneConfig();
  cfg.prefetch_max_inflight_bytes = kBlockSize;  // room for one block read
  SchedulerRig rig(cfg);
  int ok = 0;
  EXPECT_EQ(rig.sched->Enqueue(rig.Request(100, 200, &ok, /*prefetch=*/true)),
            BatchScheduler::Admission::kNewRead);
  EXPECT_EQ(rig.sched->Enqueue(
                rig.Request(8 * kBlockSize + 10, 8 * kBlockSize + 90, &ok, /*prefetch=*/true)),
            BatchScheduler::Admission::kDropped);
  EXPECT_EQ(rig.Counter("prefetch_dropped"), 1u);
  EXPECT_EQ(rig.sched->prefetch_budget_used(), kBlockSize);
  rig.loop.RunUntilIdle();
  EXPECT_EQ(ok, 1);  // the dropped run's callback never fires
  EXPECT_EQ(rig.DeviceReads(), 1u);
  // Budget returns when the speculative read completes.
  EXPECT_EQ(rig.sched->prefetch_budget_used(), 0u);
}

TEST(PrefetchLane, BypassModeLaneIsInert) {
  BatchSchedulerConfig cfg;
  cfg.cross_request = false;
  SchedulerRig rig(cfg);
  int ok = 0;
  auto enqueue_prefetch = [&] {
    return rig.sched->Enqueue(rig.Request(100, 200, &ok, /*prefetch=*/true));
  };
  // Debug builds assert (the Prefetcher is never constructed in bypass
  // mode, so a prefetch enqueue is a wiring bug); release builds drop.
  EXPECT_DEBUG_DEATH(
      {
        const auto admission = enqueue_prefetch();
        // Only reached when NDEBUG: the lane must refuse the request.
        EXPECT_EQ(admission, BatchScheduler::Admission::kDropped);
        EXPECT_EQ(rig.sched->prefetch_pending_sqes(), 0u);
      },
      "lanes require cross_request");
}

// ---------------------------------------------------------------------------
// End-to-end: LookupEngine + Prefetcher on a loaded store.
// ---------------------------------------------------------------------------

struct LoadedStore {
  EventLoop loop;
  std::unique_ptr<SdmStore> store;
  ModelConfig model;
};

TuningConfig PrefetchTuning(bool enable, bool cross_request = true) {
  TuningConfig t;
  t.coalesce_io = true;
  t.cross_request_batching = cross_request;
  t.max_batch_delay = Micros(10);
  t.enable_prefetch = enable;
  t.prefetch_strategy = PrefetchStrategy::kHotSet;
  t.prefetch_depth = 16;
  t.prefetch_min_confidence = 0.0;
  // A small explicit row cache so evictions (and thus re-prefetch
  // opportunities) actually happen at test scale.
  t.row_cache.capacity = 64 * kKiB;
  return t;
}

std::unique_ptr<LoadedStore> MakeStore(TuningConfig tuning) {
  auto ls = std::make_unique<LoadedStore>();
  ls->model = MakeTinyUniformModel(16, 3, 1, 2000);
  SdmStoreConfig cfg;
  cfg.fm_capacity = 8 * kMiB;
  cfg.sm_specs = {MakeOptaneSsdSpec()};
  cfg.sm_backing_bytes = {16 * kMiB};
  cfg.tuning = std::move(tuning);
  ls->store = std::make_unique<SdmStore>(cfg, &ls->loop);
  EXPECT_TRUE(ModelLoader::Load(ls->model, {}, ls->store.get()).ok());
  return ls;
}

std::vector<std::vector<float>> RunWaves(
    LoadedStore& ls, LookupEngine& engine,
    const std::vector<std::vector<std::vector<RowIndex>>>& waves) {
  std::vector<std::vector<float>> out;
  for (const auto& wave : waves) {
    const size_t base = out.size();
    out.resize(base + wave.size());
    for (size_t i = 0; i < wave.size(); ++i) {
      LookupRequest req;
      req.table = MakeTableId(0);
      req.indices = wave[i];
      engine.Lookup(std::move(req),
                    [&out, base, i](Status s, std::vector<float> pooled,
                                    const LookupTrace&) {
                      ASSERT_TRUE(s.ok()) << s.ToString();
                      out[base + i] = std::move(pooled);
                    });
    }
    ls.loop.RunUntilIdle();
  }
  return out;
}

std::vector<std::vector<std::vector<RowIndex>>> ZipfWaves(int waves, int concurrency,
                                                          int bag_len, uint64_t rows,
                                                          uint64_t seed) {
  Rng rng(seed);
  ZipfSampler zipf(rows, 1.0);
  std::vector<std::vector<std::vector<RowIndex>>> out(waves);
  for (auto& wave : out) {
    wave.resize(concurrency);
    for (auto& bag : wave) {
      for (int k = 0; k < bag_len; ++k) bag.push_back(zipf.Sample(rng));
    }
  }
  return out;
}

TEST(PrefetchEndToEnd, ByteIdenticalResultsWithPrefetchOnAndOff) {
  auto ls_off = MakeStore(PrefetchTuning(/*enable=*/false));
  auto ls_on = MakeStore(PrefetchTuning(/*enable=*/true));
  EXPECT_EQ(ls_off->store->prefetcher(), nullptr);
  ASSERT_NE(ls_on->store->prefetcher(), nullptr);
  LookupEngine e_off(ls_off->store.get());
  LookupEngine e_on(ls_on->store.get());

  const auto waves = ZipfWaves(/*waves=*/30, /*concurrency=*/4, /*bag_len=*/8,
                               ls_on->model.tables[0].num_rows, /*seed=*/0xfeed);
  const auto r_off = RunWaves(*ls_off, e_off, waves);
  const auto r_on = RunWaves(*ls_on, e_on, waves);
  ASSERT_EQ(r_off.size(), r_on.size());
  for (size_t i = 0; i < r_off.size(); ++i) {
    ASSERT_EQ(r_on[i], r_off[i]) << "query " << i;
  }

  // Speculation must actually have happened and paid off.
  const PrefetchStats pf = ls_on->store->prefetch_stats();
  EXPECT_GT(pf.rows_issued, 0u);
  EXPECT_GT(pf.rows_hit, 0u);
  EXPECT_GT(e_on.stats().CounterValue("prefetch_hits"), 0u);
  // Every claimed hit the engine credits maps to a prefetcher-issued row.
  EXPECT_EQ(e_on.stats().CounterValue("prefetch_hits"), pf.rows_hit);
}

TEST(PrefetchEndToEnd, BypassModeKeepsPr1BaselineByteAndReadIdentical) {
  // enable_prefetch + cross_request_batching=false must behave EXACTLY like
  // the PR 1 baseline: same bytes AND same device-read count (the lane is
  // inert — no speculation side channel for the ablation).
  auto baseline = MakeStore(PrefetchTuning(/*enable=*/false, /*cross_request=*/false));
  auto with_flag = MakeStore(PrefetchTuning(/*enable=*/true, /*cross_request=*/false));
  EXPECT_EQ(with_flag->store->prefetcher(), nullptr);
  LookupEngine e_base(baseline->store.get());
  LookupEngine e_flag(with_flag->store.get());

  const auto waves = ZipfWaves(20, 4, 8, baseline->model.tables[0].num_rows, 0xabcd);
  const auto r_base = RunWaves(*baseline, e_base, waves);
  const auto r_flag = RunWaves(*with_flag, e_flag, waves);
  for (size_t i = 0; i < r_base.size(); ++i) {
    ASSERT_EQ(r_flag[i], r_base[i]) << "query " << i;
  }
  EXPECT_EQ(with_flag->store->sm_device(0).stats().CounterValue("reads"),
            baseline->store->sm_device(0).stats().CounterValue("reads"));
  EXPECT_EQ(with_flag->store->scheduler(0).stats().CounterValue("prefetch_reads"), 0u);
  const PrefetchStats pf = with_flag->store->prefetch_stats();
  EXPECT_EQ(pf.rows_issued, 0u);
}

TEST(PrefetchEndToEnd, TraceReportsPrefetchHits) {
  auto ls = MakeStore(PrefetchTuning(/*enable=*/true));
  LookupEngine engine(ls->store.get());

  // Warm the predictor + lane on a hot bag, then demand the same rows
  // repeatedly; once speculation lands them, hits get attributed.
  const std::vector<RowIndex> hot = {5, 6, 7, 8};
  uint32_t prefetch_hits = 0;
  for (int i = 0; i < 30; ++i) {
    LookupRequest req;
    req.table = MakeTableId(0);
    req.indices = hot;
    // Mix in churn so misses keep occurring and MaybeIssue keeps running.
    req.indices.push_back(static_cast<RowIndex>(100 + i * 7));
    engine.Lookup(std::move(req),
                  [&prefetch_hits](Status s, std::vector<float>, const LookupTrace& t) {
                    ASSERT_TRUE(s.ok());
                    prefetch_hits += t.rows_prefetch_hit;
                  });
    ls->loop.RunUntilIdle();
  }
  EXPECT_EQ(prefetch_hits, engine.stats().CounterValue("prefetch_hits"));
  EXPECT_GT(ls->store->prefetch_stats().rows_issued, 0u);
}

TEST(PrefetchEndToEnd, HostRunReportCarriesPrefetchStats) {
  HostSimConfig cfg;
  cfg.host = MakeHwSS();
  cfg.fm_capacity = 24 * kMiB;
  cfg.sm_backing_per_device = 64 * kMiB;
  cfg.tuning.enable_prefetch = true;
  cfg.tuning.prefetch_min_confidence = 0.0;
  cfg.tuning.row_cache.capacity = 128 * kKiB;  // small: keep a live miss stream
  HostSimulation sim(cfg);
  ASSERT_TRUE(sim.LoadModel(MakeTinyUniformModel(16, 4, 2, 4000)).ok());
  ASSERT_NE(sim.store().prefetcher(), nullptr);

  sim.Warmup(300);
  const HostRunReport r = sim.Run(2000, 600);
  EXPECT_GT(r.queries_completed, 0u);
  EXPECT_GT(r.prefetch_issued, 0u);
  EXPECT_GE(r.prefetch_hit_rate, 0.0);
  EXPECT_LE(r.prefetch_hit_rate, 1.0);
  EXPECT_NE(r.Summary().find("pf="), std::string::npos);

  // Per-run deltas: a second run reports its own issuance, not the total.
  const HostRunReport r2 = sim.Run(2000, 600);
  const PrefetchStats total = sim.store().prefetch_stats();
  EXPECT_LE(r2.prefetch_issued, total.rows_issued);
}

// ---------------------------------------------------------------------------
// BufferArena under the enlarged in-flight set.
// ---------------------------------------------------------------------------

TEST(BufferArena, ExhaustionBeyondPoolBoundStillServesAndRecyclesBounded) {
  BufferArena arena(/*max_pooled_buffers=*/4);
  // Speculation + demand can hold many bounce buffers at once — more than
  // the pool bound. Acquire well past it and hold everything live.
  std::vector<std::shared_ptr<BufferArena::Buffer>> held;
  for (int i = 0; i < 32; ++i) {
    auto buf = arena.Acquire(kBlockSize);
    ASSERT_NE(buf, nullptr);
    ASSERT_EQ(buf->size(), kBlockSize);
    // Distinct storage: writing one buffer must not alias another.
    (*buf)[0] = static_cast<uint8_t>(i);
    held.push_back(std::move(buf));
  }
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ((*held[static_cast<size_t>(i)])[0], static_cast<uint8_t>(i));
  }
  EXPECT_EQ(arena.stats().acquires, 32u);
  EXPECT_EQ(arena.stats().allocations, 32u);  // pool was empty throughout

  // Release the burst: only max_pooled_buffers return to the free list,
  // the rest are freed (not leaked, not pinned).
  held.clear();
  EXPECT_EQ(arena.pooled_buffers(), 4u);
  EXPECT_EQ(arena.stats().discarded, 28u);

  // And the survivors actually recycle.
  auto again = arena.Acquire(kBlockSize);
  EXPECT_EQ(arena.stats().reuses, 1u);
  EXPECT_EQ(arena.pooled_buffers(), 3u);
}

}  // namespace
}  // namespace sdm
