// Fixture tests for sdm_lint (tools/lint): every check has at least one
// firing and one quiet snippet, suppressions and allowlists are honored, and
// the real src/ tree (via SDM_SOURCE_DIR) lints clean — so `ctest -R lint`
// proves both that the checks bite and that the codebase satisfies them.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "lint/lint_engine.h"

namespace sdm_lint {
namespace {

/// Lints one in-memory source file (no tests/ texts).
std::vector<Finding> LintSrc(const std::string& code,
                             const std::string& path = "src/core/sample.cpp") {
  LintInput in;
  in.files.emplace_back(path, code);
  return RunLint(in);
}

/// True when some finding came from `check`.
bool Fired(const std::vector<Finding>& findings, const std::string& check) {
  return std::any_of(findings.begin(), findings.end(),
                     [&](const Finding& f) { return f.check == check; });
}

std::string Describe(const std::vector<Finding>& findings) {
  std::string out;
  for (const Finding& f : findings) {
    out += f.file + ":" + std::to_string(f.line) + " [" + f.check + "] " +
           f.message + "\n";
  }
  return out;
}

// ---------------------------------------------------------------------------
// no-wall-clock
// ---------------------------------------------------------------------------

TEST(NoWallClock, FiresOnChronoClocksAndLibcTime) {
  const auto findings = LintSrc(R"cpp(
    int64_t Now() { return std::chrono::steady_clock::now().time_since_epoch().count(); }
    long Stamp() { return std::time(nullptr); }
  )cpp");
  ASSERT_EQ(findings.size(), 2u) << Describe(findings);
  EXPECT_EQ(findings[0].check, "no-wall-clock");
  EXPECT_EQ(findings[1].check, "no-wall-clock");
}

TEST(NoWallClock, QuietOnVirtualTimeAndLookalikes) {
  const auto findings = LintSrc(R"cpp(
    class EventLoop {
     public:
      SimTime time() const;            // declaration, not a call
    };
    SimTime Probe(const EventLoop& loop, Sampler* s) {
      s->time(3);                      // member of some other type
      return loop.time();
    }
    int Mine() { return other::time(1); }  // not the libc call
  )cpp");
  EXPECT_TRUE(findings.empty()) << Describe(findings);
}

TEST(NoWallClock, AllowlistedFilesMayReadTheHostClock) {
  const std::string code =
      "double Seconds() { return std::chrono::steady_clock::now().time_since_epoch().count() * 1e-9; }";
  EXPECT_TRUE(Fired(LintSrc(code, "src/core/timer.cpp"), "no-wall-clock"));
  EXPECT_FALSE(Fired(LintSrc(code, "src/bench/bench_util.h"), "no-wall-clock"));
  EXPECT_FALSE(Fired(LintSrc(code, "src/common/thread_pool.cpp"), "no-wall-clock"));
}

// ---------------------------------------------------------------------------
// no-ambient-rng
// ---------------------------------------------------------------------------

TEST(NoAmbientRng, FiresOnAmbientEntropySources) {
  const auto findings = LintSrc(R"cpp(
    uint64_t SeedFromNoise() { std::random_device rd; return rd(); }
    int Roll() { int pips = rand() % 6; return pips; }
    std::mt19937 gen;  // unseeded engine: replays diverge
  )cpp");
  EXPECT_EQ(findings.size(), 3u) << Describe(findings);
  for (const Finding& f : findings) EXPECT_EQ(f.check, "no-ambient-rng");
}

TEST(NoAmbientRng, QuietOnSeededEnginesAndLookalikes) {
  const auto findings = LintSrc(R"cpp(
    std::mt19937 MakeEngine(uint64_t seed) { return std::mt19937(seed); }
    double Draw(Rng& rng) { return rng.NextDouble(0.0, 1.0); }
    int Member(Dist& d) { return d.rand(); }  // member, not libc rand()
  )cpp");
  EXPECT_TRUE(findings.empty()) << Describe(findings);
}

TEST(NoAmbientRng, RngImplementationItselfIsAllowlisted) {
  const std::string code = "std::mt19937_64 engine_;  // seeded in the ctor";
  EXPECT_TRUE(Fired(LintSrc(code, "src/core/sampler.h"), "no-ambient-rng"));
  EXPECT_FALSE(Fired(LintSrc(code, "src/common/rng.h"), "no-ambient-rng"));
  EXPECT_FALSE(Fired(LintSrc(code, "src/common/rng.cpp"), "no-ambient-rng"));
}

// ---------------------------------------------------------------------------
// ordered-exports
// ---------------------------------------------------------------------------

TEST(OrderedExports, FiresOnUnorderedRangeForInExportPath) {
  const auto findings = LintSrc(R"cpp(
    class Ledger {
      std::unordered_map<std::string, uint64_t> counts_;
      std::string ExportJson() const {
        std::string out;
        for (const auto& [key, value] : counts_) {  // unspecified order!
          out += key;
        }
        return out;
      }
    };
  )cpp");
  ASSERT_TRUE(Fired(findings, "ordered-exports")) << Describe(findings);
  EXPECT_NE(findings[0].message.find("counts_"), std::string::npos);
  EXPECT_NE(findings[0].message.find("ExportJson"), std::string::npos);
}

TEST(OrderedExports, QuietOutsideExportPathsAndOnOrderedMaps) {
  const auto findings = LintSrc(R"cpp(
    class Ledger {
      std::unordered_map<std::string, uint64_t> counts_;
      std::map<std::string, uint64_t> sorted_;
      uint64_t Total() const {           // order-independent fold, not an export
        uint64_t sum = 0;
        for (const auto& [key, value] : counts_) sum += value;
        return sum;
      }
      std::string ExportJson() const {   // ordered container: byte-stable
        std::string out;
        for (const auto& [key, value] : sorted_) out += key;
        return out;
      }
    };
  )cpp");
  EXPECT_TRUE(findings.empty()) << Describe(findings);
}

// ---------------------------------------------------------------------------
// knob-inertness
// ---------------------------------------------------------------------------

constexpr char kTuningFixture[] = R"cpp(
  struct TuningConfig {
    /// Documented knob with a default.
    int alpha_budget = 4;
    bool beta_enabled = false;
    std::vector<int> gamma_weights{1, 2, 3};
    [[nodiscard]] Status Validate() const;   // member function: not a knob
    static constexpr int kNotAKnob = 7;      // static: not a knob
  };
)cpp";

std::vector<Finding> LintTuning(const std::string& test_text) {
  LintInput in;
  in.files.emplace_back("src/core/tuning.h", kTuningFixture);
  in.test_texts.emplace_back("tests/sample_test.cpp", test_text);
  return RunLint(in);
}

TEST(KnobInertness, FlagsKnobsNeverMentionedInTests) {
  const auto findings =
      LintTuning("cfg.tuning.alpha_budget = 8;\n// gamma_weights covered here\n");
  ASSERT_EQ(findings.size(), 1u) << Describe(findings);
  EXPECT_EQ(findings[0].check, "knob-inertness");
  EXPECT_NE(findings[0].message.find("beta_enabled"), std::string::npos);
}

TEST(KnobInertness, WordBoundaryMentionsOnlyNoSubstrings) {
  // `xalpha_budgets` must NOT count as a mention of alpha_budget.
  const auto findings = LintTuning(
      "int xalpha_budgets = 1; t.beta_enabled = true; t.gamma_weights = {};\n");
  ASSERT_EQ(findings.size(), 1u) << Describe(findings);
  EXPECT_NE(findings[0].message.find("alpha_budget"), std::string::npos);
}

TEST(KnobInertness, CleanWhenEveryKnobHasATest) {
  const auto findings = LintTuning(
      "t.alpha_budget = 1; t.beta_enabled = true; t.gamma_weights.clear();\n");
  EXPECT_TRUE(findings.empty()) << Describe(findings);
}

// ---------------------------------------------------------------------------
// obs-name-prefix
// ---------------------------------------------------------------------------

TEST(ObsNamePrefix, FiresOnBadLiteralAndMissingPrefix) {
  const auto bad_literal = LintSrc(
      R"cpp(auto* c = ObsCounter(reg, prefix + "Queries/Total");)cpp");
  ASSERT_TRUE(Fired(bad_literal, "obs-name-prefix")) << Describe(bad_literal);

  const auto no_prefix = LintSrc(
      R"cpp(auto* c = ObsCounter(reg, "queries/total");)cpp");
  ASSERT_TRUE(Fired(no_prefix, "obs-name-prefix")) << Describe(no_prefix);
  EXPECT_NE(no_prefix[0].message.find("runtime source prefix"), std::string::npos);
}

TEST(ObsNamePrefix, QuietOnSchemeConformingRegistrations) {
  const auto findings = LintSrc(R"cpp(
    void Register(Observability* obs, const std::string& prefix) {
      auto* reads = ObsCounter(obs, prefix + "device/reads");
      auto* depth = ObsGauge(obs, prefix + "queue/depth_rows");
      auto* lat = ObsHist(obs, prefix + "lookup/latency_ns");
    }
  )cpp");
  EXPECT_TRUE(findings.empty()) << Describe(findings);
}

TEST(ObsNamePrefix, ObsLayerItselfIsExempt) {
  const std::string code = R"cpp(auto* c = ObsCounter(reg, "Raw");)cpp";
  EXPECT_TRUE(Fired(LintSrc(code, "src/serving/host.cpp"), "obs-name-prefix"));
  EXPECT_FALSE(Fired(LintSrc(code, "src/obs/metrics.cpp"), "obs-name-prefix"));
}

// ---------------------------------------------------------------------------
// Suppressions
// ---------------------------------------------------------------------------

TEST(Suppression, AllowOnTheOffendingLineIsHonored) {
  const auto findings = LintSrc(
      "long Stamp() { return std::time(nullptr); }  // sdm-lint: allow(no-wall-clock)\n");
  EXPECT_TRUE(findings.empty()) << Describe(findings);
}

TEST(Suppression, AllowOnTheLineAboveIsHonored) {
  const auto findings = LintSrc(
      "// sdm-lint: allow(no-wall-clock) -- bench-only code path\n"
      "long Stamp() { return std::time(nullptr); }\n");
  EXPECT_TRUE(findings.empty()) << Describe(findings);
}

TEST(Suppression, WildcardAllowSuppressesEveryCheck) {
  const auto findings = LintSrc(
      "std::mt19937 gen;  // sdm-lint: allow(*)\n");
  EXPECT_TRUE(findings.empty()) << Describe(findings);
}

TEST(Suppression, AllowOfADifferentCheckDoesNotSuppress) {
  const auto findings = LintSrc(
      "std::mt19937 gen;  // sdm-lint: allow(no-wall-clock)\n");
  EXPECT_TRUE(Fired(findings, "no-ambient-rng")) << Describe(findings);
}

// ---------------------------------------------------------------------------
// The real tree
// ---------------------------------------------------------------------------

TEST(LintTree, RealSourceTreeLintsClean) {
  LintInput input;
  std::string error;
  ASSERT_TRUE(LoadTree(SDM_SOURCE_DIR, &input, &error)) << error;
  // Sanity: this really is the repository, not an empty directory.
  EXPECT_GT(input.files.size(), 50u);
  EXPECT_GT(input.test_texts.size(), 10u);
  const auto findings = RunLint(input);
  EXPECT_TRUE(findings.empty()) << Describe(findings);
}

}  // namespace
}  // namespace sdm_lint
