// Tests for the coalesced batch IO path: intra-request dedup, block
// grouping / adjacent-block merging, the per-row ablation flag, batched SQE
// submission, the buffer arena, and coalescing-counter accounting.
#include <gtest/gtest.h>

#include <vector>

#include "core/lookup_engine.h"
#include "core/model_loader.h"
#include "core/sdm_store.h"
#include "dlrm/model_zoo.h"
#include "io/buffer_arena.h"

namespace sdm {
namespace {

// ---------------------------------------------------------------------------
// Helpers (mirrors core_test's loaded-store fixture).
// ---------------------------------------------------------------------------

TuningConfig BaseTuning() {
  TuningConfig t;
  t.row_cache.capacity = 0;  // auto-size from FM budget
  t.enable_row_cache = true;
  t.sub_block_reads = true;
  t.coalesce_io = true;
  return t;
}

struct LoadedStore {
  EventLoop loop;
  std::unique_ptr<SdmStore> store;
  ModelConfig model;
};

std::unique_ptr<LoadedStore> MakeStore(TuningConfig tuning = BaseTuning(),
                                       double read_error_probability = 0.0) {
  auto ls = std::make_unique<LoadedStore>();
  // 24B rows (dim 16 int8-rowwise): 170 rows per 4KB block, and every
  // ~171st row straddles a block boundary.
  ls->model = MakeTinyUniformModel(16, 3, 1, 2000);
  SdmStoreConfig cfg;
  cfg.fm_capacity = 8 * kMiB;
  cfg.sm_specs = {MakeOptaneSsdSpec()};
  cfg.sm_specs[0].read_error_probability = read_error_probability;
  cfg.sm_backing_bytes = {16 * kMiB};
  cfg.tuning = std::move(tuning);
  ls->store = std::make_unique<SdmStore>(cfg, &ls->loop);
  EXPECT_TRUE(ModelLoader::Load(ls->model, {}, ls->store.get()).ok());
  return ls;
}

std::pair<std::vector<float>, LookupTrace> RunLookup(LoadedStore& ls, LookupEngine& engine,
                                                     std::vector<RowIndex> indices,
                                                     PoolingMode mode = PoolingMode::kSum) {
  std::vector<float> pooled;
  LookupTrace trace;
  bool done = false;
  LookupRequest req;
  req.table = MakeTableId(0);
  req.indices = std::move(indices);
  req.mode = mode;
  engine.Lookup(std::move(req),
                [&](Status s, std::vector<float> out, const LookupTrace& t) {
                  EXPECT_TRUE(s.ok()) << s.ToString();
                  pooled = std::move(out);
                  trace = t;
                  done = true;
                });
  ls.loop.RunUntilIdle();
  EXPECT_TRUE(done);
  return {pooled, trace};
}

std::vector<float> ReferencePooled(const LoadedStore& ls,
                                   const std::vector<RowIndex>& indices,
                                   PoolingMode mode = PoolingMode::kSum) {
  const TableConfig& cfg = ls.model.tables[0];
  const uint64_t seed = LoaderOptions{}.seed ^ (0xabcdef12345678ULL * 1);
  const auto image = EmbeddingTableImage::GenerateRandom(cfg, seed);
  std::vector<float> out(cfg.dim, 0.0f);
  for (const RowIndex idx : indices) {
    const auto row = image.DequantizedRow(idx);
    for (size_t i = 0; i < out.size(); ++i) out[i] += row[i];
  }
  if (mode == PoolingMode::kMean && !indices.empty()) {
    for (auto& v : out) v /= static_cast<float>(indices.size());
  }
  return out;
}

/// First row of table 0 whose bytes straddle a 4KB block boundary.
RowIndex FirstBoundarySpanningRow(const LoadedStore& ls) {
  const TableRuntime& rt = ls.store->table(MakeTableId(0));
  const Bytes rb = rt.config.row_bytes();
  for (RowIndex r = 0; r < rt.config.num_rows; ++r) {
    const Bytes off = rt.offset + r * rb;
    if (off / kBlockSize != (off + rb - 1) / kBlockSize) return r;
  }
  ADD_FAILURE() << "no boundary-spanning row in table 0";
  return 0;
}

uint64_t DeviceReads(LoadedStore& ls) {
  return ls.store->sm_device(0).stats().CounterValue("reads");
}

// ---------------------------------------------------------------------------
// Dedup of duplicate indices within one bag.
// ---------------------------------------------------------------------------

TEST(Coalescing, DuplicateIndicesFetchOnceSumPooling) {
  auto ls = MakeStore();
  LookupEngine engine(ls->store.get());
  const std::vector<RowIndex> indices = {7, 7, 10, 7, 10};
  const auto [pooled, trace] = RunLookup(*ls, engine, indices);

  // Duplicates still contribute to the sum...
  const auto ref = ReferencePooled(*ls, indices);
  for (size_t i = 0; i < ref.size(); ++i) EXPECT_NEAR(pooled[i], ref[i], 1e-4f);

  // ...but only the two distinct rows hit the device.
  EXPECT_EQ(trace.rows_deduped, 3u);
  EXPECT_EQ(trace.rows_from_sm, 5u);  // dup slots inherit the primary's source
  EXPECT_EQ(DeviceReads(*ls), 1u);    // rows 7 and 10 are 48B apart: one span
}

TEST(Coalescing, DuplicateIndicesMeanPoolingDividesByBagSize) {
  auto ls = MakeStore();
  LookupEngine engine(ls->store.get());
  const std::vector<RowIndex> indices = {12, 12, 12, 40};
  const auto [pooled, trace] = RunLookup(*ls, engine, indices, PoolingMode::kMean);
  const auto ref = ReferencePooled(*ls, indices, PoolingMode::kMean);
  for (size_t i = 0; i < ref.size(); ++i) EXPECT_NEAR(pooled[i], ref[i], 1e-4f);
  EXPECT_EQ(trace.rows_deduped, 2u);
}

TEST(Coalescing, DuplicateOfCachedRowCountsAsCacheHit) {
  auto ls = MakeStore();
  LookupEngine engine(ls->store.get());
  (void)RunLookup(*ls, engine, {50});  // warm the row cache
  const auto [pooled, trace] = RunLookup(*ls, engine, {50, 50});
  EXPECT_EQ(trace.rows_from_cache, 2u);
  EXPECT_EQ(trace.rows_from_sm, 0u);
  EXPECT_EQ(trace.rows_deduped, 1u);
}

// ---------------------------------------------------------------------------
// Block grouping and adjacent-block merging.
// ---------------------------------------------------------------------------

TEST(Coalescing, SameBlockRowsCostOneDeviceRead) {
  auto ls = MakeStore();
  LookupEngine engine(ls->store.get());
  // 24B rows: indices 10..30 all land in block 0 of the table.
  const std::vector<RowIndex> indices = {10, 15, 20, 25, 30};
  const auto [pooled, trace] = RunLookup(*ls, engine, indices);
  EXPECT_EQ(trace.rows_from_sm, 5u);
  EXPECT_EQ(trace.device_reads, 1u);
  EXPECT_EQ(DeviceReads(*ls), 1u);
  const auto ref = ReferencePooled(*ls, indices);
  for (size_t i = 0; i < ref.size(); ++i) EXPECT_NEAR(pooled[i], ref[i], 1e-4f);
}

TEST(Coalescing, AdjacentBlockRunsMergeWithinCap) {
  auto ls = MakeStore();
  LookupEngine engine(ls->store.get());
  // A contiguous run around the first block boundary: the spanning row
  // falls back to its own IO; the rest merge across the two blocks.
  const RowIndex spanning = FirstBoundarySpanningRow(*ls);
  std::vector<RowIndex> indices;
  for (RowIndex r = spanning - 5; r <= spanning + 5; ++r) indices.push_back(r);
  const auto [pooled, trace] = RunLookup(*ls, engine, indices);
  EXPECT_EQ(trace.rows_from_sm, indices.size());
  // One merged two-block run + one un-coalesced read for the spanning row.
  EXPECT_EQ(trace.device_reads, 2u);
  const auto ref = ReferencePooled(*ls, indices);
  for (size_t i = 0; i < ref.size(); ++i) EXPECT_NEAR(pooled[i], ref[i], 1e-4f);
}

TEST(Coalescing, MaxCoalesceBytesSplitsAdjacentBlocks) {
  TuningConfig t = BaseTuning();
  t.max_coalesce_bytes = kBlockSize;  // forbid multi-block merges
  auto ls = MakeStore(t);
  LookupEngine engine(ls->store.get());
  const RowIndex spanning = FirstBoundarySpanningRow(*ls);
  std::vector<RowIndex> indices;
  for (RowIndex r = spanning - 5; r <= spanning + 5; ++r) indices.push_back(r);
  const auto [pooled, trace] = RunLookup(*ls, engine, indices);
  // Block-0 run, block-1 run, and the spanning row's fallback read.
  EXPECT_EQ(trace.device_reads, 3u);
}

TEST(Coalescing, BoundarySpanningRowAloneStaysUncoalesced) {
  auto ls = MakeStore();
  LookupEngine engine(ls->store.get());
  const RowIndex spanning = FirstBoundarySpanningRow(*ls);
  const auto [pooled, trace] = RunLookup(*ls, engine, {spanning});
  EXPECT_EQ(trace.rows_from_sm, 1u);
  EXPECT_EQ(trace.device_reads, 1u);
  const auto ref = ReferencePooled(*ls, {spanning});
  for (size_t i = 0; i < ref.size(); ++i) EXPECT_NEAR(pooled[i], ref[i], 1e-4f);
}

TEST(Coalescing, PerRowAblationFlagIssuesOneIoPerRow) {
  TuningConfig t = BaseTuning();
  t.coalesce_io = false;
  auto ls = MakeStore(t);
  LookupEngine engine(ls->store.get());
  const std::vector<RowIndex> indices = {10, 15, 20, 25, 30};
  const auto [pooled, trace] = RunLookup(*ls, engine, indices);
  EXPECT_EQ(trace.device_reads, 5u);
  EXPECT_EQ(DeviceReads(*ls), 5u);
  EXPECT_EQ(trace.rows_deduped, 0u);  // dedup is part of the coalesced path
  const auto ref = ReferencePooled(*ls, indices);
  for (size_t i = 0; i < ref.size(); ++i) EXPECT_NEAR(pooled[i], ref[i], 1e-4f);
}

// ---------------------------------------------------------------------------
// Counter accounting.
// ---------------------------------------------------------------------------

TEST(Coalescing, CountersReportSavedReadsAndBytes) {
  // Block-read mode makes the savings exact: each per-row read would have
  // moved a whole 4KB block.
  TuningConfig t = BaseTuning();
  t.sub_block_reads = false;
  auto ls = MakeStore(t);
  LookupEngine engine(ls->store.get());
  const auto [pooled, trace] = RunLookup(*ls, engine, {10, 20, 30});

  EXPECT_EQ(trace.device_reads, 1u);
  EXPECT_EQ(trace.io_bytes_saved, 2 * kBlockSize);  // 3 block reads -> 1
  EXPECT_EQ(engine.stats().CounterValue("device_reads"), 1u);
  EXPECT_EQ(engine.stats().CounterValue("io_bytes_saved"), 2 * kBlockSize);

  const StatsRegistry& io = ls->store->io_engine(0).stats();
  EXPECT_EQ(io.CounterValue("batches"), 1u);
  EXPECT_EQ(io.CounterValue("batch_sqes"), 1u);
  EXPECT_EQ(io.CounterValue("coalesced_reads"), 2u);  // merged_reads - 1
  EXPECT_EQ(io.CounterValue("bytes_saved"), 2 * kBlockSize);
}

TEST(Coalescing, TransientErrorsRetryLikeThePerRowPath) {
  // p=0.5: roughly half of all device reads fail transiently; a coalesced
  // run must retry (DirectIoReader semantics) instead of failing the bag
  // on the first media error.
  auto ls = MakeStore(BaseTuning(), /*read_error_probability=*/0.5);
  LookupEngine engine(ls->store.get());
  int ok = 0;
  for (int i = 0; i < 50; ++i) {
    LookupRequest req;
    req.table = MakeTableId(0);
    req.indices = {RowIndex(3 * i), RowIndex(3 * i + 1), RowIndex(3 * i + 2)};
    engine.Lookup(std::move(req),
                  [&](Status s, std::vector<float>, const LookupTrace&) { ok += s.ok(); });
    ls->loop.RunUntilIdle();
  }
  EXPECT_GT(engine.stats().CounterValue("io_retries"), 0u);
  // One retry rescues most requests: far more succeed than the ~50% a
  // no-retry path would leave.
  EXPECT_GT(ok, 25);
}

TEST(Coalescing, ErroredReadsCountOnlyTowardIoErrors) {
  TuningConfig tuning = BaseTuning();
  tuning.graceful_degradation = false;  // legacy fail-stop contract
  auto ls = MakeStore(std::move(tuning), /*read_error_probability=*/1.0);
  LookupEngine engine(ls->store.get());
  Status status = Status::Ok();
  LookupRequest req;
  req.table = MakeTableId(0);
  req.indices = {10, 20, 30};
  engine.Lookup(std::move(req),
                [&](Status s, std::vector<float>, const LookupTrace&) { status = s; });
  ls->loop.RunUntilIdle();
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(engine.stats().CounterValue("rows_sm_read"), 0u);
  EXPECT_GE(engine.stats().CounterValue("io_errors"), 1u);
}

TEST(Coalescing, ExhaustedRetriesDegradeGracefullyByDefault) {
  // Default contract (tuning.graceful_degradation): the bag completes Ok
  // with the failed rows pooled as zeros and surfaced in the trace.
  auto ls = MakeStore(BaseTuning(), /*read_error_probability=*/1.0);
  LookupEngine engine(ls->store.get());
  Status status = InternalError("callback never ran");
  LookupTrace trace;
  std::vector<float> pooled;
  LookupRequest req;
  req.table = MakeTableId(0);
  req.indices = {10, 20, 30};
  engine.Lookup(std::move(req),
                [&](Status s, std::vector<float> out, const LookupTrace& t) {
                  status = s;
                  pooled = std::move(out);
                  trace = t;
                });
  ls->loop.RunUntilIdle();
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_TRUE(trace.degraded);
  EXPECT_EQ(trace.rows_failed, 3u);
  // Failed rows contribute zero to the pooled output.
  for (const float v : pooled) EXPECT_EQ(v, 0.0f);
  EXPECT_EQ(engine.stats().CounterValue("rows_sm_read"), 0u);
  EXPECT_GE(engine.stats().CounterValue("io_errors"), 1u);
  EXPECT_EQ(engine.stats().CounterValue("degraded_lookups"), 1u);
  EXPECT_EQ(engine.stats().CounterValue("rows_failed"), 3u);
}

// ---------------------------------------------------------------------------
// Buffer arena.
// ---------------------------------------------------------------------------

TEST(Coalescing, ArenaRecyclesBounceBuffers) {
  auto ls = MakeStore();
  LookupEngine engine(ls->store.get());
  (void)RunLookup(*ls, engine, {10, 20, 30});
  (void)RunLookup(*ls, engine, {400, 410, 420});
  const BufferArenaStats& stats = ls->store->buffer_arena().stats();
  EXPECT_GE(stats.acquires, 2u);
  EXPECT_GT(stats.reuses, 0u);  // second lookup reuses the first's buffer
}

TEST(BufferArena, BestFitReuseAndBounds) {
  BufferArena arena(/*max_pooled_buffers=*/1);
  const uint8_t* first_data = nullptr;
  {
    auto big = arena.Acquire(8192);
    auto small = arena.Acquire(64);
    first_data = big->data();
    EXPECT_EQ(big->size(), 8192u);
    EXPECT_EQ(small->size(), 64u);
  }
  // Pool bounded at 1: one of the two returns was discarded.
  EXPECT_EQ(arena.pooled_buffers(), 1u);
  EXPECT_EQ(arena.stats().discarded, 1u);

  auto again = arena.Acquire(16);  // served from the pooled buffer
  EXPECT_EQ(again->size(), 16u);
  EXPECT_EQ(arena.stats().reuses, 1u);
  (void)first_data;
}

// ---------------------------------------------------------------------------
// Multi-level (block cache) interaction.
// ---------------------------------------------------------------------------

TEST(Coalescing, MultiBlockRunFillsBlockCache) {
  TuningConfig t = BaseTuning();
  t.enable_block_cache = true;
  t.block_cache_fraction = 0.5;
  auto ls = MakeStore(t);
  LookupEngine engine(ls->store.get());

  // One coalesced read for two same-block rows fills the block layer.
  const auto [p0, t0] = RunLookup(*ls, engine, {10, 20});
  EXPECT_EQ(t0.device_reads, 1u);
  EXPECT_EQ(t0.rows_from_sm, 2u);

  // A neighbour row in the same block is then served from the block cache
  // without device IO.
  const auto [p1, t1] = RunLookup(*ls, engine, {30});
  EXPECT_EQ(t1.rows_from_block_cache, 1u);
  EXPECT_EQ(t1.device_reads, 0u);
}

}  // namespace
}  // namespace sdm
