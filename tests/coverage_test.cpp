// Coverage sweep for corners the per-module suites leave open: fleet math
// edges, router balance, placement interactions, config helpers, and
// histogram/stat boundary behaviour.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "core/model_loader.h"
#include "core/model_updater.h"
#include "dlrm/model_zoo.h"
#include "serving/cluster.h"
#include "serving/power_model.h"

namespace sdm {
namespace {

// ---------------------------------------------------------------------------
// Fleet power math.
// ---------------------------------------------------------------------------

TEST(FleetMath, CeilsFractionalHosts) {
  const FleetEstimate e = EvaluateFleet({"x", 1001, 100, 1.0, 0, 0});
  EXPECT_DOUBLE_EQ(e.main_hosts, 11);  // 10.01 -> 11
}

TEST(FleetMath, HelpersScaleWithMains) {
  const FleetEstimate e = EvaluateFleet({"x", 10'000, 100, 1.0, 0.2, 0.25});
  EXPECT_DOUBLE_EQ(e.main_hosts, 100);
  EXPECT_DOUBLE_EQ(e.helper_hosts, 20);
  EXPECT_DOUBLE_EQ(e.total_power, 100 + 5);
}

TEST(FleetMath, PowerPerKqpsNormalizes) {
  const FleetEstimate e = EvaluateFleet({"x", 10'000, 100, 0.5, 0, 0});
  EXPECT_DOUBLE_EQ(e.power_per_kqps, 50.0 / 10.0);
}

TEST(FleetMath, SavingSymmetry) {
  const FleetEstimate a = EvaluateFleet({"a", 1000, 100, 1.0, 0, 0});
  const FleetEstimate b = EvaluateFleet({"b", 1000, 100, 0.5, 0, 0});
  EXPECT_NEAR(PowerSaving(a, b), 0.5, 1e-9);
  EXPECT_NEAR(PowerSaving(b, a), -1.0, 1e-9);
}

TEST(FleetMath, MultiTenancyNeutralWhenNothingChanges) {
  MultiTenancyScenario s;
  s.base_utilization = 0.7;
  s.sdm_utilization = 0.7;
  s.base_host_power = 1.0;
  s.sdm_host_power = 1.0;
  EXPECT_NEAR(EvaluateMultiTenancy(s).fleet_power_ratio, 1.0, 1e-9);
}

TEST(FleetMath, SsdSizingUtilizationHeadroom) {
  SsdSizingInput in;
  in.qps = 1000;
  in.user_tables = 100;
  in.avg_pooling = 10;
  in.cache_hit_rate = 0.0;
  in.per_ssd_iops = 1e6;
  in.target_device_utilization = 0.5;  // run devices at half rate
  EXPECT_EQ(ComputeSsdRequirement(in).ssds_needed, 2);
  in.target_device_utilization = 1.0;
  EXPECT_EQ(ComputeSsdRequirement(in).ssds_needed, 1);
}

TEST(FleetMath, SsdSizingPerfectCacheNeedsNoDevices) {
  SsdSizingInput in;
  in.qps = 1000;
  in.user_tables = 100;
  in.avg_pooling = 10;
  in.cache_hit_rate = 1.0;
  EXPECT_EQ(ComputeSsdRequirement(in).ssds_needed, 0);
  EXPECT_DOUBLE_EQ(ComputeSsdRequirement(in).required_iops, 0.0);
}

// ---------------------------------------------------------------------------
// StickyRouter distribution.
// ---------------------------------------------------------------------------

TEST(Router, StickyBalancesUsersAcrossHosts) {
  StickyRouter r(8, RoutingPolicy::kUserSticky, 1);
  std::map<size_t, int> counts;
  for (UserId u = 0; u < 80'000; ++u) ++counts[r.Route(u)];
  ASSERT_EQ(counts.size(), 8u);
  for (const auto& [host, n] : counts) {
    EXPECT_NEAR(n, 10'000, 500) << "host " << host;
  }
}

TEST(Router, RandomRoutesEverywhere) {
  StickyRouter r(4, RoutingPolicy::kRandom, 2);
  std::map<size_t, int> counts;
  for (int i = 0; i < 40'000; ++i) ++counts[r.Route(7)];  // same user!
  EXPECT_EQ(counts.size(), 4u);  // random routing scatters even one user
}

TEST(Router, SingleHostDegenerate) {
  StickyRouter r(1, RoutingPolicy::kUserSticky, 3);
  for (UserId u = 0; u < 100; ++u) EXPECT_EQ(r.Route(u), 0u);
}

// ---------------------------------------------------------------------------
// Placement interactions.
// ---------------------------------------------------------------------------

TEST(PlacementEdge, AllowItemTablesOnSmWhenConfigured) {
  ModelConfig model = MakeTinyUniformModel(16, 1, 2, 1000);
  TuningConfig t;
  t.user_tables_only_on_sm = false;  // everything is an SM candidate
  const auto plan = ComputePlacement(model, t);
  ASSERT_TRUE(plan.ok());
  for (const auto& p : plan.value().tables) {
    EXPECT_EQ(p.tier, MemoryTier::kSm);
  }
}

TEST(PlacementEdge, BudgetSmallerThanEveryTableLeavesAllOnSm) {
  ModelConfig model = MakeTinyUniformModel(16, 3, 0, 10'000);
  TuningConfig t;
  t.placement = PlacementPolicy::kFixedFmSmWithCache;
  t.placement_dram_budget = 16;  // can't fit anything
  const auto plan = ComputePlacement(model, t);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value().fm_direct_bytes, 0u);
}

TEST(PlacementEdge, BudgetCoveringEverythingDirectMapsAll) {
  ModelConfig model = MakeTinyUniformModel(16, 3, 0, 1000);
  TuningConfig t;
  t.placement = PlacementPolicy::kFixedFmSmWithCache;
  t.placement_dram_budget = model.TotalBytes() + kMiB;
  const auto plan = ComputePlacement(model, t);
  ASSERT_TRUE(plan.ok());
  for (const auto& p : plan.value().tables) {
    EXPECT_EQ(p.tier, MemoryTier::kFm);
  }
  EXPECT_EQ(plan.value().sm_bytes, 0u);
}

TEST(PlacementEdge, EmptyModelProducesEmptyPlan) {
  ModelConfig model;
  model.name = "empty";
  const auto plan = ComputePlacement(model, TuningConfig{});
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan.value().tables.empty());
}

// ---------------------------------------------------------------------------
// Model config helpers.
// ---------------------------------------------------------------------------

TEST(ModelConfigHelpers, BytesPerQuerySeparatesBatches) {
  ModelConfig m;
  TableConfig user;
  user.role = TableRole::kUser;
  user.dim = 56;  // 64B stored
  user.num_rows = 10;
  user.avg_pooling_factor = 2;
  TableConfig item = user;
  item.role = TableRole::kItem;
  m.tables = {user, item};
  m.user_batch_size = 1;
  m.item_batch_size = 10;
  // user: 1 * 2 * 64 = 128; item: 10 * 2 * 64 = 1280.
  EXPECT_DOUBLE_EQ(m.BytesPerQuery(), 128 + 1280);
}

TEST(ModelConfigHelpers, CountsAndAverages) {
  const ModelConfig m = MakeTinyUniformModel(16, 3, 2, 100);
  EXPECT_EQ(m.CountFor(TableRole::kUser), 3u);
  EXPECT_EQ(m.CountFor(TableRole::kItem), 2u);
  EXPECT_DOUBLE_EQ(m.AvgPoolingFactor(TableRole::kUser), 8.0);
  EXPECT_DOUBLE_EQ(m.AvgPoolingFactor(TableRole::kItem), 4.0);
  EXPECT_EQ(m.TotalBytes(), m.BytesFor(TableRole::kUser) + m.BytesFor(TableRole::kItem));
}

TEST(ModelConfigHelpers, RowBytesTrackDtype) {
  TableConfig t;
  t.dim = 64;
  t.dtype = DataType::kInt8Rowwise;
  EXPECT_EQ(t.row_bytes(), 72u);
  t.dtype = DataType::kFp32;
  EXPECT_EQ(t.row_bytes(), 256u);
  EXPECT_DOUBLE_EQ(t.bytes_per_query(), t.avg_pooling_factor * 256);
}

// ---------------------------------------------------------------------------
// Store / loader interactions not covered elsewhere.
// ---------------------------------------------------------------------------

TEST(StoreEdge, PinnedTableLandsOnFmAndServes) {
  ModelConfig model = MakeTinyUniformModel(16, 2, 0, 1000);
  EventLoop loop;
  SdmStoreConfig cfg;
  cfg.fm_capacity = 8 * kMiB;
  cfg.sm_specs = {MakeOptaneSsdSpec()};
  cfg.sm_backing_bytes = {8 * kMiB};
  cfg.tuning.never_on_sm.insert(model.tables[0].name);
  SdmStore store(cfg, &loop);
  ASSERT_TRUE(ModelLoader::Load(model, {}, &store).ok());
  EXPECT_EQ(store.table(MakeTableId(0)).tier, MemoryTier::kFm);
  EXPECT_EQ(store.table(MakeTableId(1)).tier, MemoryTier::kSm);

  LookupEngine engine(&store);
  bool done = false;
  LookupRequest req;
  req.table = MakeTableId(0);
  req.indices = {5};
  engine.Lookup(std::move(req),
                [&](Status s, std::vector<float> out, const LookupTrace& trace) {
                  ASSERT_TRUE(s.ok());
                  EXPECT_EQ(trace.rows_from_fm_direct, 1u);
                  EXPECT_FALSE(out.empty());
                  done = true;
                });
  loop.RunUntilIdle();
  EXPECT_TRUE(done);
}

TEST(StoreEdge, ExplicitCacheCapacityRespected) {
  ModelConfig model = MakeTinyUniformModel(16, 1, 0, 1000);
  EventLoop loop;
  SdmStoreConfig cfg;
  cfg.fm_capacity = 8 * kMiB;
  cfg.sm_specs = {MakeOptaneSsdSpec()};
  cfg.sm_backing_bytes = {8 * kMiB};
  cfg.tuning.row_cache.capacity = 1 * kMiB;  // explicit, not auto
  SdmStore store(cfg, &loop);
  ASSERT_TRUE(ModelLoader::Load(model, {}, &store).ok());
  EXPECT_EQ(store.row_cache()->capacity(), 1 * kMiB);
}

TEST(StoreEdge, ExplicitCacheOverCommitRejected) {
  ModelConfig model = MakeTinyUniformModel(16, 1, 0, 1000);
  EventLoop loop;
  SdmStoreConfig cfg;
  cfg.fm_capacity = 1 * kMiB;
  cfg.sm_specs = {MakeOptaneSsdSpec()};
  cfg.sm_backing_bytes = {8 * kMiB};
  cfg.tuning.row_cache.capacity = 16 * kMiB;  // bigger than all of FM
  SdmStore store(cfg, &loop);
  EXPECT_FALSE(ModelLoader::Load(model, {}, &store).ok());
}

TEST(StoreEdge, PooledCacheBudgetCappedAtQuarterOfFm) {
  ModelConfig model = MakeTinyUniformModel(16, 1, 0, 1000);
  EventLoop loop;
  SdmStoreConfig cfg;
  cfg.fm_capacity = 8 * kMiB;
  cfg.sm_specs = {MakeOptaneSsdSpec()};
  cfg.sm_backing_bytes = {8 * kMiB};
  cfg.tuning.enable_pooled_cache = true;
  cfg.tuning.pooled_cache.capacity = 1000 * kMiB;  // absurd request
  SdmStore store(cfg, &loop);
  ASSERT_TRUE(ModelLoader::Load(model, {}, &store).ok());
  ASSERT_NE(store.pooled_cache(), nullptr);
  EXPECT_LE(store.pooled_cache()->config().capacity, store.fm_capacity() / 4 + kKiB);
}

// ---------------------------------------------------------------------------
// Warmup / update helpers.
// ---------------------------------------------------------------------------

TEST(WarmupMath, OverheadScalesLinearly) {
  const double base = ModelUpdater::WarmupCapacityOverhead(0.1, 5, 0.5, 30);
  EXPECT_NEAR(ModelUpdater::WarmupCapacityOverhead(0.2, 5, 0.5, 30), 2 * base, 1e-12);
  EXPECT_NEAR(ModelUpdater::WarmupCapacityOverhead(0.1, 10, 0.5, 30), 2 * base, 1e-12);
  EXPECT_NEAR(ModelUpdater::WarmupCapacityOverhead(0.1, 5, 0.5, 60), base / 2, 1e-12);
}

// ---------------------------------------------------------------------------
// Scale-out model.
// ---------------------------------------------------------------------------

TEST(ScaleOutModel, FleetHelperRatioFollowsFanout) {
  ScaleOutModel so;
  so.mains_per_helper = 4;
  const FleetScenario s = so.Fleet("x", 4000, 100, 1.0, 0.25);
  const FleetEstimate e = EvaluateFleet(s);
  EXPECT_DOUBLE_EQ(e.main_hosts, 40);
  EXPECT_DOUBLE_EQ(e.helper_hosts, 10);
}

TEST(ScaleOutModel, UserPathIncludesRttAndService) {
  ScaleOutModel so;
  so.network_rtt = Micros(100);
  so.helper_service = Micros(200);
  EXPECT_EQ(so.UserPathLatency().nanos(), Micros(300).nanos());
}

}  // namespace
}  // namespace sdm
