// Tests for the src/sched subsystem: IoPlanner (pure planning), the
// cross-request BatchScheduler (single-flight, merging, flush triggers,
// starvation/deadline behavior), and the LookupEngine integration —
// including the property that scattered rows are byte-identical across the
// per-row, per-request-coalesced, and cross-request-batched paths.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/lookup_engine.h"
#include "core/model_loader.h"
#include "core/sdm_store.h"
#include "dlrm/model_zoo.h"
#include "fault/fault_injector.h"
#include "sched/batch_scheduler.h"
#include "sched/io_planner.h"

namespace sdm {
namespace {

// ---------------------------------------------------------------------------
// IoPlanner: pure unit tests, no event loop.
// ---------------------------------------------------------------------------

PlannerConfig BlockPlanner(Bytes row_bytes = 24) {
  PlannerConfig c;
  c.row_bytes = row_bytes;
  c.sub_block = false;
  return c;
}

TEST(IoPlanner, EmptyInputPlansNothing) {
  const IoPlan plan = IoPlanner::Plan({}, BlockPlanner());
  EXPECT_TRUE(plan.runs.empty());
  EXPECT_TRUE(plan.fallback_slots.empty());
  EXPECT_EQ(plan.TotalIos(), 0u);
}

TEST(IoPlanner, SameBlockMissesFormOneRun) {
  // Three 24B rows inside block 0.
  const IoPlan plan =
      IoPlanner::Plan({{0, 24}, {1, 240}, {2, 2400}}, BlockPlanner());
  ASSERT_EQ(plan.runs.size(), 1u);
  const PlannedRun& r = plan.runs[0];
  EXPECT_EQ(r.first_block, 0u);
  EXPECT_EQ(r.last_block, 0u);
  EXPECT_EQ(r.span_begin, 24u);
  EXPECT_EQ(r.span_end, 2424u);
  EXPECT_EQ(r.slot_indices, (std::vector<uint32_t>{0, 1, 2}));
  // Block mode: each per-row read would have moved one whole block.
  EXPECT_EQ(r.per_row_bus, 3 * kBlockSize);
}

TEST(IoPlanner, UnsortedMissesAreSortedByOffset) {
  const IoPlan plan =
      IoPlanner::Plan({{7, 2400}, {3, 24}, {5, 240}}, BlockPlanner());
  ASSERT_EQ(plan.runs.size(), 1u);
  EXPECT_EQ(plan.runs[0].slot_indices, (std::vector<uint32_t>{3, 5, 7}));
}

TEST(IoPlanner, AdjacentBlocksMergeUpToCap) {
  PlannerConfig cfg = BlockPlanner(/*row_bytes=*/64);
  cfg.max_coalesce_bytes = 2 * kBlockSize;
  // One aligned row per block in blocks 0,1,2: the cap allows two blocks per
  // run, so blocks 0+1 merge and block 2 starts a new run.
  const IoPlan plan = IoPlanner::Plan(
      {{0, 0}, {1, kBlockSize}, {2, 2 * kBlockSize}}, cfg);
  ASSERT_EQ(plan.runs.size(), 2u);
  EXPECT_EQ(plan.runs[0].first_block, 0u);
  EXPECT_EQ(plan.runs[0].last_block, 1u);
  EXPECT_EQ(plan.runs[1].first_block, 2u);
}

TEST(IoPlanner, NonAdjacentBlocksDoNotMerge) {
  const IoPlan plan =
      IoPlanner::Plan({{0, 0}, {1, 2 * kBlockSize}}, BlockPlanner(/*row_bytes=*/64));
  EXPECT_EQ(plan.runs.size(), 2u);
}

TEST(IoPlanner, SubBlockGapBoundSplitsScatteredRows) {
  PlannerConfig cfg;
  cfg.row_bytes = 24;
  cfg.sub_block = true;
  cfg.coalesce_gap_bytes = 64;
  // Same block, but 1000B of dead gap between the rows: a merge would drag
  // the gap across the bus, so the planner splits.
  const IoPlan plan = IoPlanner::Plan({{0, 0}, {1, 1024}}, cfg);
  EXPECT_EQ(plan.runs.size(), 2u);

  cfg.coalesce_gap_bytes = 2048;  // now the gap is acceptable
  const IoPlan merged = IoPlanner::Plan({{0, 0}, {1, 1024}}, cfg);
  ASSERT_EQ(merged.runs.size(), 1u);
  EXPECT_EQ(merged.runs[0].span_end, 1048u);
}

TEST(IoPlanner, BoundarySpanningRowsFallBack) {
  // A 24B row at 4088 straddles blocks 0 and 1.
  const IoPlan plan = IoPlanner::Plan({{0, 100}, {1, 4088}}, BlockPlanner());
  ASSERT_EQ(plan.runs.size(), 1u);
  EXPECT_EQ(plan.fallback_slots, (std::vector<uint32_t>{1}));
  EXPECT_EQ(plan.TotalIos(), 2u);
}

// ---------------------------------------------------------------------------
// BatchScheduler: driven directly against a device with known bytes.
// ---------------------------------------------------------------------------

struct SchedulerRig {
  EventLoop loop;
  std::unique_ptr<NvmeDevice> device;
  std::unique_ptr<IoEngine> engine;
  BufferArena arena;
  std::unique_ptr<BatchScheduler> sched;

  explicit SchedulerRig(BatchSchedulerConfig cfg, DeviceSpec spec = MakeOptaneSsdSpec()) {
    device = std::make_unique<NvmeDevice>(spec, 64 * kKiB, &loop, 1);
    std::vector<uint8_t> image(64 * kKiB);
    for (size_t i = 0; i < image.size(); ++i) {
      image[i] = static_cast<uint8_t>((i * 7 + 3) & 0xFF);
    }
    EXPECT_TRUE(device->Write(0, image).ok());
    engine = std::make_unique<IoEngine>(device.get(), &loop, IoEngineConfig{});
    sched = std::make_unique<BatchScheduler>(engine.get(), &arena, &loop, cfg);
  }

  /// Request for [begin, end); on success verifies the delivered bytes
  /// against the written pattern and bumps `*ok`.
  BatchScheduler::ReadRequest Request(Bytes begin, Bytes end, int* ok,
                                      bool sub_block = false) {
    BatchScheduler::ReadRequest req;
    req.span_begin = begin;
    req.span_end = end;
    req.first_block = begin / kBlockSize;
    req.last_block = (end - 1) / kBlockSize;
    req.sub_block = sub_block;
    req.rows = 1;
    req.per_row_bus = sub_block ? end - begin : kBlockSize;
    req.cb = [begin, end, ok](Status s, const uint8_t* data, Bytes base) {
      ASSERT_TRUE(s.ok()) << s.ToString();
      ASSERT_NE(data, nullptr);
      for (Bytes o = begin; o < end; ++o) {
        ASSERT_EQ(data[o - base], static_cast<uint8_t>((o * 7 + 3) & 0xFF));
      }
      ++*ok;
    };
    return req;
  }

  [[nodiscard]] uint64_t DeviceReads() const {
    return device->stats().CounterValue("reads");
  }
};

TEST(BatchScheduler, PendingSingleFlightSharesOneRead) {
  BatchSchedulerConfig cfg;
  cfg.cross_request = true;
  cfg.max_batch_delay = Micros(5);
  SchedulerRig rig(cfg);
  int ok = 0;
  EXPECT_EQ(rig.sched->Enqueue(rig.Request(100, 200, &ok)),
            BatchScheduler::Admission::kNewRead);
  // Same block, disjoint byte range: covered by the pending block read.
  EXPECT_EQ(rig.sched->Enqueue(rig.Request(300, 400, &ok)),
            BatchScheduler::Admission::kJoinedPending);
  rig.loop.RunUntilIdle();
  EXPECT_EQ(ok, 2);
  EXPECT_EQ(rig.DeviceReads(), 1u);
  EXPECT_EQ(rig.sched->stats().CounterValue("singleflight_hits"), 1u);
  EXPECT_EQ(rig.sched->stats().CounterValue("device_reads"), 1u);
}

TEST(BatchScheduler, AdjacentSpansMergeAcrossRequests) {
  BatchSchedulerConfig cfg;
  cfg.cross_request = true;
  cfg.max_batch_delay = Micros(5);
  SchedulerRig cross(cfg);
  int ok = 0;
  EXPECT_EQ(cross.sched->Enqueue(cross.Request(100, 200, &ok)),
            BatchScheduler::Admission::kNewRead);
  // Next block over: fuses into one two-block SQE.
  EXPECT_EQ(cross.sched->Enqueue(cross.Request(kBlockSize + 10, kBlockSize + 90, &ok)),
            BatchScheduler::Admission::kMergedPending);
  cross.loop.RunUntilIdle();
  EXPECT_EQ(ok, 2);
  EXPECT_EQ(cross.DeviceReads(), 1u);
  EXPECT_EQ(cross.sched->stats().CounterValue("cross_request_merges"), 1u);
}

TEST(BatchScheduler, BridgingRunFusesIndependentPendingReads) {
  // Blocks [0] and [2] are pending as separate SQEs; a run on block [1]
  // merges with the first AND must drag the second in, or block 2 would
  // cross the bus twice in one flush.
  BatchSchedulerConfig cfg;
  cfg.cross_request = true;
  cfg.max_batch_delay = Micros(5);
  SchedulerRig rig(cfg);
  int ok = 0;
  EXPECT_EQ(rig.sched->Enqueue(rig.Request(100, 200, &ok)),
            BatchScheduler::Admission::kNewRead);
  EXPECT_EQ(rig.sched->Enqueue(rig.Request(2 * kBlockSize + 100, 2 * kBlockSize + 200, &ok)),
            BatchScheduler::Admission::kNewRead);
  EXPECT_EQ(rig.sched->Enqueue(rig.Request(kBlockSize + 100, kBlockSize + 200, &ok)),
            BatchScheduler::Admission::kMergedPending);
  EXPECT_EQ(rig.sched->pending_sqes(), 1u);  // all three fused
  rig.loop.RunUntilIdle();
  EXPECT_EQ(ok, 3);
  EXPECT_EQ(rig.DeviceReads(), 1u);
  EXPECT_EQ(rig.sched->stats().CounterValue("cross_request_merges"), 2u);
}

TEST(BatchScheduler, SubBlockGapRuleBoundsCrossRequestMerges) {
  // Sub-block (SGL) spans only fuse across dead gaps the config allows —
  // the same request-merging rule the planner applies within a request.
  BatchSchedulerConfig tight;
  tight.cross_request = true;
  tight.max_batch_delay = Micros(5);
  tight.coalesce_gap_bytes = 64;
  SchedulerRig rig(tight);
  int ok = 0;
  EXPECT_EQ(rig.sched->Enqueue(rig.Request(0, 24, &ok, /*sub_block=*/true)),
            BatchScheduler::Admission::kNewRead);
  // 1000B dead gap > 64B bound: stays its own SQE.
  EXPECT_EQ(rig.sched->Enqueue(rig.Request(1024, 1048, &ok, /*sub_block=*/true)),
            BatchScheduler::Admission::kNewRead);
  rig.loop.RunUntilIdle();
  EXPECT_EQ(ok, 2);
  EXPECT_EQ(rig.DeviceReads(), 2u);

  BatchSchedulerConfig loose = tight;
  loose.coalesce_gap_bytes = 2048;
  SchedulerRig rig2(loose);
  int ok2 = 0;
  EXPECT_EQ(rig2.sched->Enqueue(rig2.Request(0, 24, &ok2, /*sub_block=*/true)),
            BatchScheduler::Admission::kNewRead);
  EXPECT_EQ(rig2.sched->Enqueue(rig2.Request(1024, 1048, &ok2, /*sub_block=*/true)),
            BatchScheduler::Admission::kMergedPending);
  // Contained span: single-flight, not a merge.
  EXPECT_EQ(rig2.sched->Enqueue(rig2.Request(512, 536, &ok2, /*sub_block=*/true)),
            BatchScheduler::Admission::kJoinedPending);
  rig2.loop.RunUntilIdle();
  EXPECT_EQ(ok2, 3);
  EXPECT_EQ(rig2.DeviceReads(), 1u);
}

TEST(BatchScheduler, SubBlockLateArrivalJoinsWithinDwordWindow) {
  BatchSchedulerConfig cfg;
  cfg.cross_request = true;
  cfg.max_batch_delay = SimDuration(0);
  SchedulerRig rig(cfg);
  int ok = 0;
  (void)rig.sched->Enqueue(rig.Request(100, 200, &ok, /*sub_block=*/true));
  rig.loop.RunUntil(rig.loop.Now() + Micros(2));
  ASSERT_EQ(rig.sched->in_flight_reads(), 1u);
  // Inside the in-flight DWORD window [100, 200): joins. Outside: new read.
  EXPECT_EQ(rig.sched->Enqueue(rig.Request(120, 160, &ok, /*sub_block=*/true)),
            BatchScheduler::Admission::kJoinedInFlight);
  EXPECT_EQ(rig.sched->Enqueue(rig.Request(196, 240, &ok, /*sub_block=*/true)),
            BatchScheduler::Admission::kNewRead);
  rig.loop.RunUntilIdle();
  EXPECT_EQ(ok, 3);
  EXPECT_EQ(rig.DeviceReads(), 2u);
}

TEST(BatchScheduler, LateArrivalJoinsInFlightRead) {
  BatchSchedulerConfig cfg;
  cfg.cross_request = true;
  cfg.max_batch_delay = SimDuration(0);
  SchedulerRig rig(cfg);
  int ok = 0;
  (void)rig.sched->Enqueue(rig.Request(100, 200, &ok));
  // Let the flush + device submission happen, but not the ~10us completion.
  rig.loop.RunUntil(rig.loop.Now() + Micros(2));
  ASSERT_EQ(rig.sched->in_flight_reads(), 1u);
  EXPECT_EQ(rig.sched->Enqueue(rig.Request(500, 600, &ok)),
            BatchScheduler::Admission::kJoinedInFlight);
  rig.loop.RunUntilIdle();
  EXPECT_EQ(ok, 2);
  EXPECT_EQ(rig.DeviceReads(), 1u);
  EXPECT_EQ(rig.sched->stats().CounterValue("singleflight_hits"), 1u);
}

TEST(BatchScheduler, DeadlineFlushesALoneRun) {
  // Starvation guard: a lone run with no co-travellers must still flush at
  // the deadline, not wait forever for the batch to fill.
  BatchSchedulerConfig cfg;
  cfg.cross_request = true;
  cfg.max_batch_sqes = 64;
  cfg.max_batch_delay = Micros(50);
  SchedulerRig rig(cfg);
  int ok = 0;
  SimTime done_at;
  auto req = rig.Request(100, 200, &ok);
  auto inner = std::move(req.cb);
  req.cb = [&, inner = std::move(inner)](Status s, const uint8_t* d, Bytes b) {
    inner(s, d, b);
    done_at = rig.loop.Now();
  };
  (void)rig.sched->Enqueue(std::move(req));
  EXPECT_EQ(rig.sched->pending_sqes(), 1u);
  rig.loop.RunUntilIdle();
  EXPECT_EQ(ok, 1);
  EXPECT_EQ(rig.sched->stats().CounterValue("flush_deadline"), 1u);
  // Completed after the 50us window (plus device time), not before.
  EXPECT_GE(done_at - SimTime(0), Micros(50));
}

TEST(BatchScheduler, SizeTriggerFlushesBeforeDeadline) {
  BatchSchedulerConfig cfg;
  cfg.cross_request = true;
  cfg.max_batch_sqes = 2;
  cfg.max_batch_delay = Millis(10);
  SchedulerRig rig(cfg);
  int ok = 0;
  SimTime done_at;
  (void)rig.sched->Enqueue(rig.Request(100, 200, &ok));
  // Far-apart block, un-mergeable: second SQE fills the batch.
  auto req = rig.Request(8 * kBlockSize + 10, 8 * kBlockSize + 90, &ok);
  auto inner = std::move(req.cb);
  req.cb = [&, inner = std::move(inner)](Status s, const uint8_t* d, Bytes b) {
    inner(s, d, b);
    done_at = rig.loop.Now();
  };
  (void)rig.sched->Enqueue(std::move(req));
  EXPECT_EQ(rig.sched->pending_sqes(), 0u);  // flushed by the size trigger
  rig.loop.RunUntilIdle();
  EXPECT_EQ(ok, 2);
  EXPECT_EQ(rig.sched->stats().CounterValue("flush_size"), 1u);
  EXPECT_LT(done_at - SimTime(0), Millis(1));  // did not wait out the deadline
  EXPECT_DOUBLE_EQ(rig.sched->BatchOccupancy(), 2.0);
}

TEST(BatchScheduler, BypassModeNeverShares) {
  BatchSchedulerConfig cfg;
  cfg.cross_request = false;
  SchedulerRig rig(cfg);
  int ok = 0;
  EXPECT_EQ(rig.sched->Enqueue(rig.Request(100, 200, &ok)),
            BatchScheduler::Admission::kNewRead);
  EXPECT_EQ(rig.sched->Enqueue(rig.Request(300, 400, &ok)),
            BatchScheduler::Admission::kNewRead);
  rig.loop.RunUntilIdle();
  EXPECT_EQ(ok, 2);
  EXPECT_EQ(rig.DeviceReads(), 2u);
  EXPECT_EQ(rig.sched->stats().CounterValue("singleflight_hits"), 0u);
  // Without a caller Flush(), the delay-0 backstop flushed both together.
  EXPECT_EQ(rig.sched->stats().CounterValue("flushes"), 1u);
}

// ---------------------------------------------------------------------------
// Robustness: error fan-out, deadlines, hedging (src/fault layer).
// ---------------------------------------------------------------------------

/// Request whose callback asserts a failed delivery and counts it — the
/// exactly-once error fan-out contract for single-flight waiters.
BatchScheduler::ReadRequest FailingRequest(Bytes begin, Bytes end, int* errors,
                                           StatusCode want = StatusCode::kUnavailable) {
  BatchScheduler::ReadRequest req;
  req.span_begin = begin;
  req.span_end = end;
  req.first_block = begin / kBlockSize;
  req.last_block = (end - 1) / kBlockSize;
  req.rows = 1;
  req.per_row_bus = kBlockSize;
  req.cb = [errors, want](Status s, const uint8_t* data, Bytes /*base*/) {
    EXPECT_EQ(s.code(), want) << s.ToString();
    EXPECT_EQ(data, nullptr);
    ++*errors;
  };
  return req;
}

TEST(BatchScheduler, FailedReadDeliversErrorToEveryWaiterExactlyOnce) {
  // Three requests share one device read; the read fails; each subscriber
  // — owner and both single-flight joiners — hears the error exactly once.
  BatchSchedulerConfig cfg;
  cfg.cross_request = true;
  cfg.max_batch_delay = Micros(5);
  DeviceSpec faulty = MakeOptaneSsdSpec();
  faulty.read_error_probability = 1.0;
  SchedulerRig rig(cfg, faulty);
  int errors = 0;
  EXPECT_EQ(rig.sched->Enqueue(FailingRequest(100, 200, &errors)),
            BatchScheduler::Admission::kNewRead);
  EXPECT_EQ(rig.sched->Enqueue(FailingRequest(300, 400, &errors)),
            BatchScheduler::Admission::kJoinedPending);
  EXPECT_EQ(rig.sched->Enqueue(FailingRequest(500, 600, &errors)),
            BatchScheduler::Admission::kJoinedPending);
  rig.loop.RunUntilIdle();
  EXPECT_EQ(errors, 3);
  // One shared device read failed; the fan-out happened at the scheduler.
  EXPECT_EQ(rig.device->stats().CounterValue("read_errors"), 1u);
}

TEST(BatchScheduler, DeadlineSettlesEverySubscriberExactlyOnce) {
  // io_deadline far below the device's 10us service: both subscribers get
  // kDeadlineExceeded once, and the late genuine completion is dropped
  // instead of delivering a second time.
  BatchSchedulerConfig cfg;
  cfg.cross_request = true;
  cfg.max_batch_delay = SimDuration(0);
  cfg.io_deadline = Micros(1);
  SchedulerRig rig(cfg);
  int expired = 0;
  EXPECT_EQ(rig.sched->Enqueue(
                FailingRequest(100, 200, &expired, StatusCode::kDeadlineExceeded)),
            BatchScheduler::Admission::kNewRead);
  EXPECT_EQ(rig.sched->Enqueue(
                FailingRequest(300, 400, &expired, StatusCode::kDeadlineExceeded)),
            BatchScheduler::Admission::kJoinedPending);
  rig.loop.RunUntilIdle();
  EXPECT_EQ(expired, 2);
  EXPECT_EQ(rig.sched->stats().CounterValue("deadline_expired"), 1u);
  EXPECT_EQ(rig.DeviceReads(), 1u);  // the device still completed its read
}

TEST(BatchScheduler, HedgeRescuesAFailSlowRead) {
  BatchSchedulerConfig cfg;
  cfg.cross_request = true;
  cfg.max_batch_delay = SimDuration(0);
  cfg.hedge_latency_factor = 2.0;  // hedge at 2x observed p99 (~20us)
  cfg.hedge_min_samples = 4;
  SchedulerRig rig(cfg);

  // Prime the demand-latency histogram with healthy reads (~10us each).
  int ok = 0;
  for (int i = 0; i < 6; ++i) {
    const Bytes begin = static_cast<Bytes>(i) * kBlockSize + 100;
    (void)rig.sched->Enqueue(rig.Request(begin, begin + 100, &ok));
    rig.loop.RunUntilIdle();
  }
  ASSERT_EQ(ok, 6);

  // One fail-slow window covering only the next submission instant: the
  // original read runs 500x slow; the hedge (issued ~p99 later, after the
  // window closed) completes at healthy speed and wins.
  FaultPlan plan;
  plan.FailSlow(rig.loop.Now(), rig.loop.Now() + Micros(1), /*multiplier=*/500.0);
  FaultInjector injector(plan, &rig.loop, /*seed=*/99);
  rig.device->set_fault_injector(&injector, 0);

  const SimTime t0 = rig.loop.Now();
  SimTime settled;
  int done = 0;
  BatchScheduler::ReadRequest req;
  req.span_begin = 10 * kBlockSize + 100;
  req.span_end = 10 * kBlockSize + 200;
  req.first_block = 10;
  req.last_block = 10;
  req.rows = 1;
  req.per_row_bus = kBlockSize;
  req.cb = [&](Status s, const uint8_t* data, Bytes base) {
    ASSERT_TRUE(s.ok()) << s.ToString();
    ASSERT_NE(data, nullptr);
    const Bytes o = 10 * kBlockSize + 100;
    EXPECT_EQ(data[o - base], static_cast<uint8_t>((o * 7 + 3) & 0xFF));
    settled = rig.loop.Now();
    ++done;
  };
  EXPECT_EQ(rig.sched->Enqueue(std::move(req)), BatchScheduler::Admission::kNewRead);
  rig.loop.RunUntilIdle();
  EXPECT_EQ(done, 1);  // hedge win settles once; the slow original is dropped
  EXPECT_EQ(rig.sched->stats().CounterValue("hedges_issued"), 1u);
  EXPECT_EQ(rig.sched->stats().CounterValue("hedges_won"), 1u);
  // The hedge settled the read far sooner than the 500x original (~5ms).
  EXPECT_LT((settled - t0).nanos(), Millis(1).nanos());
  EXPECT_EQ(rig.DeviceReads(), 8u);  // 6 primes + original + hedge
}

TEST(BatchScheduler, HedgeRaceContributesExactlyOneLatencySample) {
  BatchSchedulerConfig cfg;
  cfg.cross_request = true;
  cfg.max_batch_delay = SimDuration(0);
  cfg.hedge_latency_factor = 2.0;
  cfg.hedge_min_samples = 4;
  SchedulerRig rig(cfg);

  int ok = 0;
  for (int i = 0; i < 6; ++i) {
    const Bytes begin = static_cast<Bytes>(i) * kBlockSize + 100;
    (void)rig.sched->Enqueue(rig.Request(begin, begin + 100, &ok));
    rig.loop.RunUntilIdle();
  }
  ASSERT_EQ(ok, 6);
  ASSERT_EQ(rig.sched->demand_latency_samples(), 6u);

  FaultPlan plan;
  plan.FailSlow(rig.loop.Now(), rig.loop.Now() + Micros(1), /*multiplier=*/500.0);
  FaultInjector injector(plan, &rig.loop, /*seed=*/99);
  rig.device->set_fault_injector(&injector, 0);

  (void)rig.sched->Enqueue(rig.Request(10 * kBlockSize + 100, 10 * kBlockSize + 200, &ok));
  rig.loop.RunUntilIdle();
  ASSERT_EQ(ok, 7);
  ASSERT_EQ(rig.sched->stats().CounterValue("hedges_won"), 1u);
  // One logical read, two device attempts: the race lands exactly ONE
  // latency sample (the winner's). Double-sampling would drag the hedge
  // timer's own p99 estimate toward the duplicates it creates.
  EXPECT_EQ(rig.sched->demand_latency_samples(), 7u);
}

TEST(BatchScheduler, ReplicaHedgeWinsWithoutPollutingLatencyStats) {
  BatchSchedulerConfig cfg;
  cfg.cross_request = true;
  cfg.max_batch_delay = SimDuration(0);
  cfg.hedge_latency_factor = 2.0;
  cfg.hedge_min_samples = 4;
  SchedulerRig rig(cfg);

  // A replica device holding byte-identical content at shift 0.
  NvmeDevice replica(MakeOptaneSsdSpec(), 64 * kKiB, &rig.loop, 2);
  std::vector<uint8_t> image(64 * kKiB);
  for (size_t i = 0; i < image.size(); ++i) {
    image[i] = static_cast<uint8_t>((i * 7 + 3) & 0xFF);
  }
  ASSERT_TRUE(replica.Write(0, image).ok());
  IoEngine replica_engine(&replica, &rig.loop, IoEngineConfig{});
  rig.sched->set_replica_peer([&](Bytes, Bytes) {
    return std::optional<BatchScheduler::ReplicaPeer>(
        BatchScheduler::ReplicaPeer{&replica_engine, 0});
  });

  int ok = 0;
  for (int i = 0; i < 6; ++i) {
    const Bytes begin = static_cast<Bytes>(i) * kBlockSize + 100;
    (void)rig.sched->Enqueue(rig.Request(begin, begin + 100, &ok));
    rig.loop.RunUntilIdle();
  }
  ASSERT_EQ(ok, 6);

  // The primary stays 500x slow for the whole race; the hedge goes to the
  // healthy replica and wins.
  FaultPlan plan;
  plan.FailSlow(rig.loop.Now(), rig.loop.Now() + Millis(100), /*multiplier=*/500.0);
  FaultInjector injector(plan, &rig.loop, /*seed=*/7);
  rig.device->set_fault_injector(&injector, 0);

  (void)rig.sched->Enqueue(rig.Request(10 * kBlockSize + 100, 10 * kBlockSize + 200, &ok));
  rig.loop.RunUntilIdle();
  ASSERT_EQ(ok, 7);
  EXPECT_EQ(rig.sched->stats().CounterValue("replica_hedges"), 1u);
  EXPECT_EQ(rig.sched->stats().CounterValue("replica_hedge_wins"), 1u);
  EXPECT_EQ(rig.sched->stats().CounterValue("hedges_won"), 1u);
  EXPECT_EQ(replica.stats().CounterValue("reads"), 1u);
  // A replica-served win records NO sample: its latency describes the
  // replica, and feeding it back would disarm THIS device's hedge timer.
  EXPECT_EQ(rig.sched->demand_latency_samples(), 6u);
}

// ---------------------------------------------------------------------------
// LookupEngine integration.
// ---------------------------------------------------------------------------

TuningConfig SchedTuning(bool cross_request, SimDuration delay = SimDuration(0)) {
  TuningConfig t;
  t.enable_row_cache = false;  // expose the IO path on every lookup
  t.coalesce_io = true;
  t.cross_request_batching = cross_request;
  t.max_batch_delay = delay;
  return t;
}

struct LoadedStore {
  EventLoop loop;
  std::unique_ptr<SdmStore> store;
  ModelConfig model;
};

std::unique_ptr<LoadedStore> MakeStore(TuningConfig tuning) {
  auto ls = std::make_unique<LoadedStore>();
  ls->model = MakeTinyUniformModel(16, 3, 1, 2000);
  SdmStoreConfig cfg;
  cfg.fm_capacity = 8 * kMiB;
  cfg.sm_specs = {MakeOptaneSsdSpec()};
  cfg.sm_backing_bytes = {16 * kMiB};
  cfg.tuning = std::move(tuning);
  ls->store = std::make_unique<SdmStore>(cfg, &ls->loop);
  EXPECT_TRUE(ModelLoader::Load(ls->model, {}, ls->store.get()).ok());
  return ls;
}

/// Submits every bag at the same virtual instant and drains the loop;
/// returns (pooled, trace) per bag, in submission order.
std::vector<std::pair<std::vector<float>, LookupTrace>> RunConcurrent(
    LoadedStore& ls, LookupEngine& engine, const std::vector<std::vector<RowIndex>>& bags) {
  std::vector<std::pair<std::vector<float>, LookupTrace>> out(bags.size());
  int done = 0;
  for (size_t i = 0; i < bags.size(); ++i) {
    LookupRequest req;
    req.table = MakeTableId(0);
    req.indices = bags[i];
    engine.Lookup(std::move(req),
                  [&, i](Status s, std::vector<float> pooled, const LookupTrace& t) {
                    EXPECT_TRUE(s.ok()) << s.ToString();
                    out[i] = {std::move(pooled), t};
                    ++done;
                  });
  }
  ls.loop.RunUntilIdle();
  EXPECT_EQ(done, static_cast<int>(bags.size()));
  return out;
}

uint64_t DeviceReads(LoadedStore& ls) {
  return ls.store->sm_device(0).stats().CounterValue("reads");
}

TEST(SchedLookup, ConcurrentIdenticalBagsSingleFlightToOneRead) {
  auto ls = MakeStore(SchedTuning(/*cross_request=*/true, Micros(10)));
  LookupEngine engine(ls->store.get());
  // Four concurrent queries missing the same same-block rows: one device
  // read serves all four.
  const std::vector<std::vector<RowIndex>> bags(4, {10, 15, 20});
  const auto results = RunConcurrent(*ls, engine, bags);
  EXPECT_EQ(DeviceReads(*ls), 1u);
  EXPECT_EQ(engine.stats().CounterValue("singleflight_hits"), 3u);
  EXPECT_EQ(ls->store->scheduler(0).stats().CounterValue("singleflight_hits"), 3u);
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[i].first, results[0].first);  // identical pooled bytes
  }
  EXPECT_EQ(results[0].second.device_reads, 1u);
  EXPECT_EQ(results[1].second.singleflight_hits, 1u);
}

TEST(SchedLookup, BypassModeIssuesPerRequestReads) {
  auto ls = MakeStore(SchedTuning(/*cross_request=*/false));
  LookupEngine engine(ls->store.get());
  const std::vector<std::vector<RowIndex>> bags(4, {10, 15, 20});
  (void)RunConcurrent(*ls, engine, bags);
  EXPECT_EQ(DeviceReads(*ls), 4u);
  EXPECT_EQ(engine.stats().CounterValue("singleflight_hits"), 0u);
  // PR 1 semantics: one ring doorbell per request, even at the same instant.
  EXPECT_EQ(ls->store->scheduler(0).stats().CounterValue("flushes"), 4u);
}

TEST(SchedLookup, InterleavedCompletionJoinsInFlightRead) {
  // B arrives while A's read is on the wire (Optane ~10us): B must join the
  // in-flight read, and both must scatter correct bytes.
  auto ls = MakeStore(SchedTuning(/*cross_request=*/true));
  LookupEngine engine(ls->store.get());
  std::vector<float> pooled_a, pooled_b;
  LookupTrace trace_b;
  int done = 0;
  LookupRequest a;
  a.table = MakeTableId(0);
  a.indices = {10, 20};
  engine.Lookup(std::move(a), [&](Status s, std::vector<float> out, const LookupTrace&) {
    EXPECT_TRUE(s.ok());
    pooled_a = std::move(out);
    ++done;
  });
  ls->loop.ScheduleAfter(Micros(3), [&] {
    LookupRequest b;
    b.table = MakeTableId(0);
    b.indices = {12};  // inside A's span
    engine.Lookup(std::move(b),
                  [&](Status s, std::vector<float> out, const LookupTrace& t) {
                    EXPECT_TRUE(s.ok());
                    pooled_b = std::move(out);
                    trace_b = t;
                    ++done;
                  });
  });
  ls->loop.RunUntilIdle();
  EXPECT_EQ(done, 2);
  EXPECT_EQ(DeviceReads(*ls), 1u);
  EXPECT_EQ(trace_b.singleflight_hits, 1u);
  EXPECT_EQ(trace_b.device_reads, 0u);

  // B's pooled vector must match a fresh isolated read of row 12.
  auto ref = MakeStore(SchedTuning(/*cross_request=*/false));
  LookupEngine ref_engine(ref->store.get());
  const auto ref_out = RunConcurrent(*ref, ref_engine, {{12}});
  EXPECT_EQ(pooled_b, ref_out[0].first);
}

TEST(SchedLookup, DeadlineBoundsLatencyOfALoneLookup) {
  auto ls = MakeStore(SchedTuning(/*cross_request=*/true, Micros(100)));
  LookupEngine engine(ls->store.get());
  const auto results = RunConcurrent(*ls, engine, {{10, 15, 20}});
  // The lone run waited out the batch window, then completed — no deadlock,
  // and the wait is visible in the request latency.
  EXPECT_GE(results[0].second.latency, Micros(100));
  EXPECT_LT(results[0].second.latency, Millis(1));
  EXPECT_EQ(ls->store->scheduler(0).stats().CounterValue("flush_deadline"), 1u);
}

TEST(SchedLookup, PropertyAllIoPathsProduceIdenticalBytes) {
  // Property: for random bags replayed on identical stores, the per-row
  // path, the per-request coalesced path, and the cross-request batched
  // path must produce bit-identical pooled vectors (scattered rows are
  // byte-identical, and pooling order is slot order on every path).
  TuningConfig per_row = SchedTuning(false);
  per_row.coalesce_io = false;
  auto ls_row = MakeStore(per_row);
  auto ls_req = MakeStore(SchedTuning(/*cross_request=*/false));
  auto ls_x = MakeStore(SchedTuning(/*cross_request=*/true, Micros(20)));
  LookupEngine e_row(ls_row->store.get());
  LookupEngine e_req(ls_req->store.get());
  LookupEngine e_x(ls_x->store.get());

  Rng rng(0x5eed);
  const uint64_t rows = ls_x->model.tables[0].num_rows;
  for (int wave = 0; wave < 40; ++wave) {
    std::vector<std::vector<RowIndex>> bags(4);
    for (auto& bag : bags) {
      const size_t len = 1 + rng.NextBounded(12);
      for (size_t k = 0; k < len; ++k) {
        // Mix a hot range (cross-request sharing) with uniform cold rows.
        bag.push_back(rng.NextBounded(2) == 0 ? rng.NextBounded(64)
                                              : rng.NextBounded(rows));
      }
    }
    const auto r_row = RunConcurrent(*ls_row, e_row, bags);
    const auto r_req = RunConcurrent(*ls_req, e_req, bags);
    const auto r_x = RunConcurrent(*ls_x, e_x, bags);
    for (size_t i = 0; i < bags.size(); ++i) {
      ASSERT_EQ(r_req[i].first, r_row[i].first) << "wave " << wave << " bag " << i;
      ASSERT_EQ(r_x[i].first, r_row[i].first) << "wave " << wave << " bag " << i;
    }
  }
  // The cross-request store must actually have exercised sharing.
  EXPECT_GT(ls_x->store->scheduler(0).stats().CounterValue("singleflight_hits"), 0u);
  EXPECT_LE(DeviceReads(*ls_x), DeviceReads(*ls_req));
}

}  // namespace
}  // namespace sdm
