// Tests for src/trace: Feistel permuter, table access streams, query
// generation (stickiness, churn), and the locality analyzers.
#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "dlrm/model_zoo.h"
#include "trace/locality.h"
#include "trace/trace_gen.h"

namespace sdm {
namespace {

// ---------------------------------------------------------------------------
// IndexPermuter.
// ---------------------------------------------------------------------------

class PermuterBijection : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PermuterBijection, IsBijectionOnDomain) {
  const uint64_t n = GetParam();
  IndexPermuter perm(n, 17);
  std::set<uint64_t> image;
  for (uint64_t i = 0; i < n; ++i) {
    const uint64_t y = perm.Permute(i);
    EXPECT_LT(y, n);
    image.insert(y);
  }
  EXPECT_EQ(image.size(), n);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PermuterBijection,
                         ::testing::Values(1, 2, 3, 16, 100, 1023, 4096, 10'000));

TEST(Permuter, DifferentSeedsGiveDifferentPermutations) {
  IndexPermuter a(1000, 1);
  IndexPermuter b(1000, 2);
  int same = 0;
  for (uint64_t i = 0; i < 1000; ++i) {
    if (a.Permute(i) == b.Permute(i)) ++same;
  }
  EXPECT_LT(same, 50);
}

TEST(Permuter, ScattersNeighbours) {
  // Consecutive ranks should not stay consecutive (that would fabricate
  // spatial locality).
  IndexPermuter perm(100'000, 3);
  int adjacent = 0;
  for (uint64_t i = 0; i + 1 < 1000; ++i) {
    const int64_t d = static_cast<int64_t>(perm.Permute(i + 1)) -
                      static_cast<int64_t>(perm.Permute(i));
    if (d == 1 || d == -1) ++adjacent;
  }
  EXPECT_LT(adjacent, 10);
}

// ---------------------------------------------------------------------------
// TableAccessStream.
// ---------------------------------------------------------------------------

TableConfig StreamConfig(double alpha, uint64_t rows = 100'000) {
  TableConfig cfg;
  cfg.name = "s";
  cfg.num_rows = rows;
  cfg.dim = 16;
  cfg.zipf_alpha = alpha;
  return cfg;
}

TEST(AccessStream, IndicesWithinDomain) {
  TableAccessStream stream(StreamConfig(0.9), 5);
  Rng rng(1);
  for (int i = 0; i < 10'000; ++i) EXPECT_LT(stream.Next(rng), 100'000u);
}

TEST(AccessStream, HigherAlphaConcentrates) {
  Rng rng(2);
  auto unique_fraction = [&](double alpha) {
    TableAccessStream stream(StreamConfig(alpha), 7);
    std::unordered_set<RowIndex> uniq;
    for (int i = 0; i < 50'000; ++i) uniq.insert(stream.Next(rng));
    return static_cast<double>(uniq.size()) / 50'000.0;
  };
  EXPECT_LT(unique_fraction(1.1), unique_fraction(0.6));
  EXPECT_LT(unique_fraction(0.6), unique_fraction(0.0));
}

TEST(AccessStream, HottestIndexIsPermutedRankZero) {
  TableAccessStream stream(StreamConfig(1.2, 1000), 9);
  Rng rng(3);
  std::vector<uint64_t> counts(1000, 0);
  for (int i = 0; i < 200'000; ++i) ++counts[stream.Next(rng)];
  const RowIndex hottest_expected = stream.IndexAtRank(0);
  const auto hottest_actual = static_cast<RowIndex>(
      std::max_element(counts.begin(), counts.end()) - counts.begin());
  EXPECT_EQ(hottest_actual, hottest_expected);
}

// ---------------------------------------------------------------------------
// QueryGenerator.
// ---------------------------------------------------------------------------

WorkloadConfig BaseWorkload(double churn = 0.0) {
  WorkloadConfig w;
  w.num_users = 1000;
  w.user_zipf_alpha = 0.8;
  w.user_index_churn = churn;
  w.seed = 99;
  return w;
}

TEST(QueryGen, ShapesMatchModel) {
  const ModelConfig model = MakeTinyUniformModel(16, 3, 2, 10'000);
  QueryGenerator gen(model, BaseWorkload());
  const Query q = gen.Next();
  ASSERT_EQ(q.indices.size(), model.tables.size());
  for (size_t t = 0; t < model.tables.size(); ++t) {
    EXPECT_FALSE(q.indices[t].empty());
    for (const RowIndex idx : q.indices[t]) {
      EXPECT_LT(idx, model.tables[t].num_rows);
    }
  }
}

TEST(QueryGen, ItemTablesCarryBatchedLookups) {
  ModelConfig model = MakeTinyUniformModel(16, 1, 1, 10'000);
  model.item_batch_size = 8;
  QueryGenerator gen(model, BaseWorkload());
  const Query q = gen.Next();
  // Item table (index 1): pf 4 * batch 8 = 32 lookups; user table ~pf 8.
  EXPECT_EQ(q.indices[1].size(), 32u);
  EXPECT_LT(q.indices[0].size(), 32u);
}

TEST(QueryGen, SameUserWithoutChurnRepeatsIndices) {
  const ModelConfig model = MakeTinyUniformModel(16, 2, 1, 10'000);
  QueryGenerator gen(model, BaseWorkload(0.0));
  const Query a = gen.ForUser(42);
  const Query b = gen.ForUser(42);
  for (size_t t = 0; t < model.tables.size(); ++t) {
    if (model.tables[t].role == TableRole::kUser) {
      EXPECT_EQ(a.indices[t], b.indices[t]) << "table " << t;
    }
  }
}

TEST(QueryGen, DifferentUsersDiffer) {
  const ModelConfig model = MakeTinyUniformModel(16, 2, 1, 10'000);
  QueryGenerator gen(model, BaseWorkload(0.0));
  const Query a = gen.ForUser(1);
  const Query b = gen.ForUser(2);
  EXPECT_NE(a.indices[0], b.indices[0]);
}

TEST(QueryGen, ChurnPerturbsSomeIndices) {
  const ModelConfig model = MakeTinyUniformModel(16, 2, 1, 10'000);
  QueryGenerator gen(model, BaseWorkload(0.3));
  const Query a = gen.ForUser(42);
  const Query b = gen.ForUser(42);
  // With churn the sticky sets mostly overlap but are not identical.
  size_t common = 0;
  size_t total = 0;
  for (size_t t = 0; t < model.tables.size(); ++t) {
    if (model.tables[t].role != TableRole::kUser) continue;
    std::multiset<RowIndex> sa(a.indices[t].begin(), a.indices[t].end());
    for (const RowIndex idx : b.indices[t]) {
      if (const auto it = sa.find(idx); it != sa.end()) {
        ++common;
        sa.erase(it);
      }
      ++total;
    }
  }
  EXPECT_GT(common, total / 3);  // substantial overlap
  EXPECT_LT(common, total);      // but not identical
}

TEST(QueryGen, PopularUsersRecur) {
  const ModelConfig model = MakeTinyUniformModel(16, 1, 1, 1000);
  WorkloadConfig w = BaseWorkload();
  w.user_zipf_alpha = 1.1;
  QueryGenerator gen(model, w);
  std::unordered_set<UserId> uniq;
  const int n = 5000;
  for (int i = 0; i < n; ++i) uniq.insert(gen.Next().user);
  // Zipf users: far fewer unique users than queries.
  EXPECT_LT(uniq.size(), static_cast<size_t>(n) / 3);
}

TEST(QueryGen, InferenceEvalBatchesUserSide) {
  // Table 2: InferenceEval runs user batch == item batch > 1, multiplying
  // the user-side lookups by the batch (samples come from distinct users).
  ModelConfig model = MakeTinyUniformModel(16, 1, 1, 10'000);
  QueryGenerator single(model, BaseWorkload(0.0));
  const size_t single_len = single.ForUser(42).indices[0].size();

  model.user_batch_size = 8;
  QueryGenerator batched(model, BaseWorkload(0.0));
  const size_t batched_len = batched.ForUser(42).indices[0].size();
  // ~8x the indices (per-user sticky lengths vary a little).
  EXPECT_GT(batched_len, 4 * single_len);
  EXPECT_LT(batched_len, 16 * single_len);
}

TEST(QueryGen, InferenceEvalStillStartsWithTheRoutedUser) {
  ModelConfig model = MakeTinyUniformModel(16, 1, 0, 10'000);
  QueryGenerator plain(model, BaseWorkload(0.0));
  const auto base = plain.ForUser(42).indices[0];

  model.user_batch_size = 4;
  QueryGenerator eval(model, BaseWorkload(0.0));
  const auto batched = eval.ForUser(42).indices[0];
  // The routed user's own sticky set leads the batch.
  ASSERT_GE(batched.size(), base.size());
  for (size_t i = 0; i < base.size(); ++i) EXPECT_EQ(batched[i], base[i]);
}

// ---------------------------------------------------------------------------
// Temporal locality analysis (Fig. 4).
// ---------------------------------------------------------------------------

std::vector<RowIndex> Trace(double alpha, int n, uint64_t rows = 100'000) {
  TableAccessStream stream(StreamConfig(alpha, rows), 31);
  Rng rng(32);
  std::vector<RowIndex> t;
  t.reserve(n);
  for (int i = 0; i < n; ++i) t.push_back(stream.Next(rng));
  return t;
}

TEST(TemporalLocality, PowerLawTraceConcentrates) {
  const auto trace = Trace(1.0, 200'000);
  const auto result = AnalyzeTemporalLocality(trace);
  EXPECT_EQ(result.total_accesses, 200'000u);
  // Top 10% of unique rows should cover well over half the accesses.
  EXPECT_GT(result.ShareOfTopRows(0.10), 0.5);
  // And the CDF is monotone, ending at 1.
  for (size_t i = 1; i < result.cumulative.size(); ++i) {
    EXPECT_GE(result.cumulative[i], result.cumulative[i - 1]);
  }
  EXPECT_NEAR(result.cumulative.back(), 1.0, 1e-9);
}

TEST(TemporalLocality, UniformTraceDoesNot) {
  const auto trace = Trace(0.0, 200'000);
  const auto result = AnalyzeTemporalLocality(trace);
  EXPECT_LT(result.ShareOfTopRows(0.10), 0.25);
}

TEST(TemporalLocality, ItemAlphaBeatsUserAlpha) {
  // The Fig. 4 (a)-vs-(b) comparison: item tables (higher alpha) show more
  // concentration than user tables.
  const auto user = AnalyzeTemporalLocality(Trace(0.7, 100'000));
  const auto item = AnalyzeTemporalLocality(Trace(1.05, 100'000));
  EXPECT_GT(item.ShareOfTopRows(0.05), user.ShareOfTopRows(0.05));
}

TEST(TemporalLocality, EmptyTrace) {
  const auto result = AnalyzeTemporalLocality({});
  EXPECT_EQ(result.total_accesses, 0u);
  EXPECT_EQ(result.unique_rows, 0u);
  EXPECT_DOUBLE_EQ(result.ShareOfTopRows(0.5), 0.0);
}

// Per-host view under sticky routing shows more locality than under random
// routing (Fig. 4c): sticky keeps all of a user's repeats on one host, so
// that host re-sees the user's index set; random routing scatters them.
TEST(TemporalLocality, StickyRoutedHostMoreLocalThanRandomRouted) {
  const ModelConfig model = MakeTinyUniformModel(16, 1, 0, 50'000);
  WorkloadConfig w = BaseWorkload(0.05);
  w.num_users = 10'000;
  QueryGenerator gen(model, w);
  Rng route_rng(7);
  std::vector<RowIndex> sticky_host;
  std::vector<RowIndex> random_host;
  const size_t kHosts = 8;
  for (int i = 0; i < 40'000; ++i) {
    const Query q = gen.Next();
    const bool to_sticky_host = (q.user % kHosts) == 0;
    const bool to_random_host = route_rng.NextBounded(kHosts) == 0;
    for (const RowIndex idx : q.indices[0]) {
      if (to_sticky_host) sticky_host.push_back(idx);
      if (to_random_host) random_host.push_back(idx);
    }
  }
  const auto s = AnalyzeTemporalLocality(sticky_host);
  const auto r = AnalyzeTemporalLocality(random_host);
  // The sticky host needs fewer unique rows for the same traffic share and
  // concentrates more of its accesses in its hottest rows.
  EXPECT_LT(static_cast<double>(s.unique_rows) / static_cast<double>(s.total_accesses),
            static_cast<double>(r.unique_rows) / static_cast<double>(r.total_accesses));
  EXPECT_GT(s.ShareOfTopRows(0.1), r.ShareOfTopRows(0.1) * 0.98);
}

// ---------------------------------------------------------------------------
// Spatial locality analysis (Fig. 5).
// ---------------------------------------------------------------------------

TEST(SpatialLocality, PermutedZipfTraceIsLow) {
  const auto trace = Trace(0.8, 100'000);
  const auto result = AnalyzeSpatialLocality(trace, 128, 10'000);
  EXPECT_GT(result.windows, 0u);
  EXPECT_EQ(result.rows_per_block, kBlockSize / 128);
  // Fig. 5: production access is spatially cold.
  EXPECT_LT(result.mean_ratio, 0.3);
}

TEST(SpatialLocality, SequentialTraceIsHigh) {
  std::vector<RowIndex> seq;
  for (int r = 0; r < 3; ++r) {
    for (RowIndex i = 0; i < 32'000; ++i) seq.push_back(i);
  }
  const auto result = AnalyzeSpatialLocality(seq, 128, 32'000);
  EXPECT_GT(result.mean_ratio, 0.99);
}

TEST(SpatialLocality, BigRowsFillBlocksTrivially) {
  // 4KB rows: every row is its own block; ratio is always 1.
  const auto trace = Trace(0.8, 10'000);
  const auto result = AnalyzeSpatialLocality(trace, kBlockSize, 5'000);
  EXPECT_EQ(result.rows_per_block, 1u);
  EXPECT_NEAR(result.mean_ratio, 1.0, 1e-9);
}

TEST(SpatialLocality, EmptyTraceHandled) {
  const auto result = AnalyzeSpatialLocality({}, 128, 1000);
  EXPECT_EQ(result.windows, 0u);
  EXPECT_DOUBLE_EQ(result.mean_ratio, 0.0);
}

}  // namespace
}  // namespace sdm
