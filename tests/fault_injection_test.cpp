// Scripted fault injection (src/fault): injector window semantics, health
// monitoring, replay determinism, and the byte-identity guarantee that an
// absent or empty-plan injector changes nothing.
#include <gtest/gtest.h>

#include "dlrm/model_zoo.h"
#include "fault/fault_injector.h"
#include "fault/health_monitor.h"
#include "serving/cluster.h"
#include "serving/host.h"

namespace sdm {
namespace {

// ---------------------------------------------------------------------------
// FaultInjector window semantics.
// ---------------------------------------------------------------------------

TEST(FaultInjector, ErrorBurstFiresOnlyInsideItsWindow) {
  EventLoop loop;
  FaultPlan plan;
  plan.ErrorBurst(SimTime() + Millis(1), SimTime() + Millis(2), /*probability=*/1.0);
  FaultInjector inj(plan, &loop, /*seed=*/1);

  EXPECT_FALSE(inj.DrawReadError(0));  // before the window
  loop.ScheduleAt(SimTime() + Micros(1500), [&] {
    EXPECT_TRUE(inj.DrawReadError(0));  // inside
  });
  loop.ScheduleAt(SimTime() + Millis(2), [&] {
    EXPECT_FALSE(inj.DrawReadError(0));  // half-open: end is outside
  });
  loop.RunUntilIdle();
  EXPECT_EQ(inj.stats().CounterValue("injected_errors"), 1u);
}

TEST(FaultInjector, WindowsTargetOneDeviceOrAll) {
  EventLoop loop;
  FaultPlan plan;
  plan.ErrorBurst(SimTime(), SimTime() + Millis(1), 1.0, /*device=*/1);
  FaultInjector inj(plan, &loop, 1);
  EXPECT_FALSE(inj.DrawReadError(0));
  EXPECT_TRUE(inj.DrawReadError(1));

  FaultPlan all;
  all.ErrorBurst(SimTime(), SimTime() + Millis(1), 1.0);  // device=-1: all
  FaultInjector inj_all(all, &loop, 1);
  EXPECT_TRUE(inj_all.DrawReadError(0));
  EXPECT_TRUE(inj_all.DrawReadError(7));
}

TEST(FaultInjector, OverlappingFailSlowWindowsCompound) {
  EventLoop loop;
  FaultPlan plan;
  plan.FailSlow(SimTime(), SimTime() + Millis(2), 10.0)
      .FailSlow(SimTime() + Millis(1), SimTime() + Millis(3), 3.0, /*device=*/0);
  FaultInjector inj(plan, &loop, 1);
  EXPECT_DOUBLE_EQ(inj.ServiceMultiplier(0), 10.0);  // only the first window
  loop.ScheduleAt(SimTime() + Micros(1500), [&] {
    EXPECT_DOUBLE_EQ(inj.ServiceMultiplier(0), 30.0);  // both overlap
    EXPECT_DOUBLE_EQ(inj.ServiceMultiplier(1), 10.0);  // second targets dev 0
  });
  loop.ScheduleAt(SimTime() + Micros(2500), [&] {
    EXPECT_DOUBLE_EQ(inj.ServiceMultiplier(0), 3.0);
    EXPECT_DOUBLE_EQ(inj.ServiceMultiplier(1), 1.0);
  });
  loop.RunUntilIdle();
}

TEST(FaultInjector, StallWindowsDeferCompletions) {
  EventLoop loop;
  FaultPlan plan;
  plan.Stall(SimTime() + Millis(1), SimTime() + Millis(3));
  FaultInjector inj(plan, &loop, 1);
  // A completion landing inside the stall is held to the window's close.
  EXPECT_EQ(inj.DeferCompletion(0, SimTime() + Millis(2)).nanos(),
            (SimTime() + Millis(3)).nanos());
  // Outside the window completions pass through untouched.
  EXPECT_EQ(inj.DeferCompletion(0, SimTime() + Micros(500)).nanos(),
            (SimTime() + Micros(500)).nanos());
  EXPECT_EQ(inj.DeferCompletion(0, SimTime() + Millis(4)).nanos(),
            (SimTime() + Millis(4)).nanos());
  EXPECT_EQ(inj.stats().CounterValue("stalled_completions"), 1u);
}

TEST(FaultInjector, PartitionDefersFabricTransfersUntilHeal) {
  EventLoop loop;
  FaultPlan plan;
  plan.FabricPartition(SimTime() + Millis(1), SimTime() + Millis(5));
  FaultInjector inj(plan, &loop, 1);
  loop.ScheduleAt(SimTime() + Millis(2), [&] {
    EXPECT_EQ(inj.DeferFabricTransfer(0, loop.Now()).nanos(),
              (SimTime() + Millis(5)).nanos());
    EXPECT_FALSE(inj.DrawFabricDrop(0));  // partition defers, never drops
  });
  loop.RunUntilIdle();
  EXPECT_EQ(inj.stats().CounterValue("partitioned_transfers"), 1u);
  EXPECT_EQ(inj.stats().CounterValue("injected_drops"), 0u);
}

TEST(FaultInjector, EmptyPlanIsInert) {
  EventLoop loop;
  FaultInjector inj(FaultPlan(), &loop, 1);
  EXPECT_TRUE(inj.plan().empty());
  for (int d = 0; d < 4; ++d) {
    EXPECT_FALSE(inj.DrawReadError(d));
    EXPECT_FALSE(inj.DrawFabricDrop(d));
    EXPECT_DOUBLE_EQ(inj.ServiceMultiplier(d), 1.0);
    EXPECT_EQ(inj.DeferCompletion(d, SimTime() + Millis(1)).nanos(),
              (SimTime() + Millis(1)).nanos());
  }
  EXPECT_EQ(inj.stats().CounterValue("injected_errors"), 0u);
  EXPECT_EQ(inj.stats().CounterValue("stalled_completions"), 0u);
}

// ---------------------------------------------------------------------------
// HealthMonitor.
// ---------------------------------------------------------------------------

HealthMonitorConfig SmallHealthConfig() {
  HealthMonitorConfig cfg;
  cfg.enabled = true;
  cfg.window = 8;
  cfg.sick_threshold = 0.5;
  cfg.probe_interval = 4;
  return cfg;
}

TEST(HealthMonitor, SickOnlyWithEnoughEvidence) {
  HealthMonitor hm(SmallHealthConfig(), 2);
  // Three errors: 100% error rate but under window/2 samples — not sick.
  for (int i = 0; i < 3; ++i) hm.Record(0, false);
  EXPECT_FALSE(hm.Sick(0));
  for (int i = 0; i < 2; ++i) hm.Record(0, false);
  EXPECT_TRUE(hm.Sick(0));   // 5 samples, all errors
  EXPECT_FALSE(hm.Sick(1));  // per-endpoint isolation
}

TEST(HealthMonitor, ProbesAdmitEveryNthCallWhileSick) {
  HealthMonitor hm(SmallHealthConfig(), 1);
  for (int i = 0; i < 8; ++i) hm.Record(0, false);
  ASSERT_TRUE(hm.Sick(0));
  int admitted = 0;
  for (int i = 0; i < 8; ++i) {
    if (hm.AdmitProbe(0)) ++admitted;
  }
  EXPECT_EQ(admitted, 2);  // calls 1 and 5 with probe_interval=4
  EXPECT_EQ(hm.stats().CounterValue("probes_admitted"), 2u);
  EXPECT_EQ(hm.stats().CounterValue("sheds"), 6u);
}

TEST(HealthMonitor, ProbeSuccessesWashOutTheWindow) {
  HealthMonitor hm(SmallHealthConfig(), 1);
  for (int i = 0; i < 8; ++i) hm.Record(0, false);
  ASSERT_TRUE(hm.Sick(0));
  for (int i = 0; i < 5; ++i) hm.Record(0, true);  // probes succeed
  EXPECT_FALSE(hm.Sick(0));  // 3 errors / 8 samples < 0.5
  EXPECT_EQ(hm.stats().CounterValue("sick_transitions"), 1u);
}

TEST(HealthMonitor, DisabledMonitorNeverSheds) {
  HealthMonitorConfig cfg;  // enabled = false
  HealthMonitor hm(cfg, 1);
  for (int i = 0; i < 100; ++i) hm.Record(0, false);
  EXPECT_FALSE(hm.Sick(0));
}

// ---------------------------------------------------------------------------
// Replay determinism and byte-identity (serving stack end to end).
// ---------------------------------------------------------------------------

HostSimConfig FaultHostConfig() {
  HostSimConfig cfg;
  cfg.host = MakeHwAO();
  cfg.fm_capacity = 8 * kMiB;
  cfg.sm_backing_per_device = 16 * kMiB;
  cfg.workload.num_users = 1000;
  cfg.workload.seed = 5;
  cfg.seed = 5;
  return cfg;
}

void ExpectReportsIdentical(const HostRunReport& a, const HostRunReport& b) {
  EXPECT_EQ(a.queries_completed, b.queries_completed);
  EXPECT_EQ(a.queries_served, b.queries_served);
  EXPECT_EQ(a.p50.nanos(), b.p50.nanos());
  EXPECT_EQ(a.p99.nanos(), b.p99.nanos());
  EXPECT_EQ(a.mean.nanos(), b.mean.nanos());
  EXPECT_EQ(a.io_errors, b.io_errors);
  EXPECT_EQ(a.io_retries, b.io_retries);
  EXPECT_EQ(a.reader_retries, b.reader_retries);
  EXPECT_EQ(a.queries_degraded, b.queries_degraded);
  EXPECT_EQ(a.rows_failed, b.rows_failed);
  EXPECT_EQ(a.lookups_shed, b.lookups_shed);
  EXPECT_EQ(a.Summary(), b.Summary());
}

HostRunReport RunWithPlan(const FaultPlan* plan, uint64_t seed) {
  HostSimConfig cfg = FaultHostConfig();
  HostSimulation sim(cfg);
  EXPECT_TRUE(sim.LoadModel(MakeTinyUniformModel(16, 2, 1, 2000)).ok());
  std::unique_ptr<FaultInjector> inj;
  if (plan != nullptr) {
    inj = std::make_unique<FaultInjector>(*plan, &sim.loop(), seed);
    sim.store().device_service().InstallFaultInjector(inj.get());
  }
  return sim.Run(200, 400);
}

TEST(HealthMonitor, TuningSickThresholdSetsTheCondemnationPoint) {
  // tuning.health_sick_threshold flows HostSimConfig -> SharedDeviceService
  // -> HealthMonitor: the same 50% error mix condemns an endpoint at the
  // default threshold and leaves it healthy under a stricter one.
  for (const double threshold : {0.5, 0.9}) {
    HostSimConfig cfg = FaultHostConfig();
    cfg.tuning.enable_health_monitor = true;
    cfg.tuning.health_window = 32;
    cfg.tuning.health_sick_threshold = threshold;
    HostSimulation sim(cfg);
    ASSERT_TRUE(sim.LoadModel(MakeTinyUniformModel(16, 2, 1, 2000)).ok());
    HealthMonitor& hm = sim.store().device_service().health();
    for (int i = 0; i < 32; ++i) hm.Record(0, /*ok=*/i % 2 == 0);
    EXPECT_EQ(hm.Sick(0), threshold <= 0.5) << "threshold=" << threshold;
  }
}

TEST(FaultReplay, SamePlanAndSeedReplaysExactly) {
  FaultPlan plan;
  plan.ErrorBurst(SimTime() + Millis(200), SimTime() + Millis(900), 0.5)
      .FailSlow(SimTime() + Millis(1000), SimTime() + Millis(1400), 10.0);
  const HostRunReport a = RunWithPlan(&plan, /*seed=*/42);
  const HostRunReport b = RunWithPlan(&plan, /*seed=*/42);
  ExpectReportsIdentical(a, b);
  EXPECT_GT(a.io_errors, 0u);  // the plan actually bit
}

TEST(FaultReplay, EmptyPlanIsByteIdenticalToNoInjector) {
  const FaultPlan empty;
  ExpectReportsIdentical(RunWithPlan(nullptr, 0), RunWithPlan(&empty, 7));
}

TEST(FaultReplay, EmptyPlanPreservesDeviceRngDrawOrder) {
  // Devices with their own (spec-level) error RNG must see the exact same
  // draw sequence whether or not an inert injector is installed.
  HostSimConfig cfg = FaultHostConfig();
  cfg.host.ssds[0].read_error_probability = 0.05;
  cfg.host.ssds[1].read_error_probability = 0.05;
  HostRunReport reports[2];
  for (int i = 0; i < 2; ++i) {
    HostSimulation sim(cfg);
    ASSERT_TRUE(sim.LoadModel(MakeTinyUniformModel(16, 2, 1, 2000)).ok());
    std::unique_ptr<FaultInjector> inj;
    if (i == 1) {
      inj = std::make_unique<FaultInjector>(FaultPlan(), &sim.loop(), 9);
      sim.store().device_service().InstallFaultInjector(inj.get());
    }
    reports[i] = sim.Run(200, 400);
  }
  ExpectReportsIdentical(reports[0], reports[1]);
  EXPECT_GT(reports[0].io_errors, 0u);  // the spec-level RNG was exercised
}

// ---------------------------------------------------------------------------
// Graceful degradation end to end.
// ---------------------------------------------------------------------------

TEST(FaultServing, ErrorBurstDegradesInsteadOfFailing) {
  HostSimConfig cfg = FaultHostConfig();
  HostSimulation sim(cfg);
  ASSERT_TRUE(sim.LoadModel(MakeTinyUniformModel(16, 2, 1, 2000)).ok());
  FaultPlan plan;  // every SM read fails for the whole run
  plan.ErrorBurst(sim.loop().Now(), sim.loop().Now() + Millis(10'000), 1.0);
  FaultInjector inj(plan, &sim.loop(), 3);
  sim.store().device_service().InstallFaultInjector(&inj);
  const HostRunReport r = sim.Run(200, 300);
  // Graceful degradation: every query still completes; the ones whose rows
  // needed SM pooled zeros and are accounted as degraded.
  EXPECT_EQ(r.queries_completed, 300u);
  EXPECT_GT(r.queries_degraded, 0u);
  EXPECT_GT(r.rows_failed, 0u);
  EXPECT_GT(r.io_errors, 0u);
  EXPECT_GE(r.rows_failed, r.queries_degraded);
}

TEST(FaultServing, HealthMonitorShedsDuringABurst) {
  HostSimConfig cfg = FaultHostConfig();
  cfg.tuning.enable_health_monitor = true;
  cfg.tuning.health_window = 32;
  HostSimulation sim(cfg);
  ASSERT_TRUE(sim.LoadModel(MakeTinyUniformModel(16, 2, 1, 2000)).ok());
  FaultPlan plan;
  plan.ErrorBurst(sim.loop().Now(), sim.loop().Now() + Millis(10'000), 1.0);
  FaultInjector inj(plan, &sim.loop(), 3);
  sim.store().device_service().InstallFaultInjector(&inj);
  const HostRunReport r = sim.Run(200, 300);
  EXPECT_EQ(r.queries_completed, 300u);
  // Once sick, lookups shed without queueing IO onto the failing device.
  EXPECT_GT(r.lookups_shed, 0u);
  EXPECT_GT(r.queries_degraded, 0u);
}

// ---------------------------------------------------------------------------
// Fabric partition on a disaggregated cluster: deadlines unwedge, serving
// degrades, everything completes.
// ---------------------------------------------------------------------------

TEST(FaultFabric, PartitionIsRiddenOutByDeadlines) {
  HostSimConfig cfg;
  cfg.host = MakeHwFAO(2);
  cfg.fm_capacity = 4 * kMiB;
  cfg.sm_backing_per_device = 32 * kMiB;
  cfg.workload.num_users = 2000;
  cfg.workload.seed = 11;
  cfg.seed = 11;
  cfg.tuning.sub_block_reads = false;
  cfg.tuning.enable_row_cache = false;
  cfg.tuning.max_batch_delay = Micros(200);
  cfg.tuning.fabric_latency = Micros(5);
  cfg.tuning.io_deadline = Millis(1);
  cfg.tuning.retry_backoff_base = Micros(20);
  cfg.inference.max_concurrent_queries = 32;

  ModelConfig model = MakeTinyUniformModel(64, 3, 1, 40'000);
  model.tables.back().num_rows = 4'000;

  DisaggregatedConfig dc;
  dc.enabled = true;
  ClusterSimulation cluster(2, cfg, RoutingPolicy::kLocal, dc);
  ASSERT_TRUE(cluster.LoadModel(model).ok());

  EventLoop* loop = cluster.host_store(0).loop();
  FaultPlan plan;  // fabric unreachable for 200ms mid-run (run is ~2s)
  plan.FabricPartition(loop->Now() + Millis(300), loop->Now() + Millis(500));
  FaultInjector inj(plan, loop, 17);
  cluster.fabric_service()->InstallFaultInjector(&inj);

  const DisaggregatedRunReport r = cluster.RunDisaggregated(400, 800);
  uint64_t completed = 0;
  uint64_t served = 0;
  for (const auto& h : r.hosts) {
    completed += h.run.queries_completed;
    served += h.run.queries_served;
  }
  EXPECT_EQ(completed, served);  // nothing wedged behind the partition
  EXPECT_GT(r.fabric.partition_deferred, 0u);
  EXPECT_GT(r.io.deadline_expired, 0u);
  EXPECT_GT(r.queries_degraded, 0u);
  EXPECT_GT(r.rows_failed, 0u);
  EXPECT_EQ(inj.stats().CounterValue("injected_drops"), 0u);
}

}  // namespace
}  // namespace sdm
