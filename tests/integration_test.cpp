// End-to-end integration tests: the full pipeline (model zoo -> loader ->
// SDM -> inference -> fleet math) wired together the way the benches use it,
// with numeric correctness checked against the deterministic table images.
#include <gtest/gtest.h>

#include <cmath>

#include "core/model_updater.h"
#include "dlrm/dlrm_model.h"
#include "dlrm/model_zoo.h"
#include "io/mmap_reader.h"
#include "serving/cluster.h"
#include "serving/host.h"

namespace sdm {
namespace {

HostSimConfig BaseConfig(HostSpec host = MakeHwSS()) {
  HostSimConfig cfg;
  cfg.host = std::move(host);
  cfg.fm_capacity = 16 * kMiB;
  cfg.sm_backing_per_device = 64 * kMiB;
  cfg.workload.num_users = 3000;
  cfg.workload.user_index_churn = 0.05;
  cfg.workload.seed = 21;
  cfg.seed = 21;
  return cfg;
}

// ---------------------------------------------------------------------------
// Numeric correctness through the whole serving stack.
// ---------------------------------------------------------------------------

TEST(EndToEnd, ServedPooledValuesMatchImages) {
  const ModelConfig model = MakeTinyUniformModel(16, 3, 1, 3000);
  HostSimConfig cfg = BaseConfig();
  HostSimulation sim(cfg);
  ASSERT_TRUE(sim.LoadModel(model).ok());

  // Issue one controlled lookup per table and verify against references.
  LookupEngine& engine = sim.engine().lookups();
  for (size_t t = 0; t < model.tables.size(); ++t) {
    const std::vector<RowIndex> indices = {1, 7, 2049 % model.tables[t].num_rows};
    std::vector<float> pooled;
    bool done = false;
    LookupRequest req;
    req.table = MakeTableId(static_cast<uint32_t>(t));
    req.indices = indices;
    engine.Lookup(std::move(req), [&](Status s, std::vector<float> out, const LookupTrace&) {
      ASSERT_TRUE(s.ok());
      pooled = std::move(out);
      done = true;
    });
    sim.loop().RunUntilIdle();
    ASSERT_TRUE(done);

    const uint64_t seed = cfg.loader.seed ^ (0xabcdef12345678ULL * (t + 1));
    const auto image = EmbeddingTableImage::GenerateRandom(model.tables[t], seed);
    std::vector<float> ref(model.tables[t].dim, 0.0f);
    for (const RowIndex idx : indices) {
      const auto row = image.DequantizedRow(idx);
      for (size_t i = 0; i < ref.size(); ++i) ref[i] += row[i];
    }
    for (size_t i = 0; i < ref.size(); ++i) {
      EXPECT_NEAR(pooled[i], ref[i], 1e-4f) << "table " << t;
    }
  }
}

TEST(EndToEnd, DlrmScoresFromServedEmbeddings) {
  // Full real-math query: SDM-served pooled embeddings feed the actual
  // bottom/top MLPs and produce a CTR in (0, 1).
  const ModelConfig model = MakeTinyUniformModel(16, 3, 1, 3000);
  HostSimConfig cfg = BaseConfig();
  HostSimulation sim(cfg);
  ASSERT_TRUE(sim.LoadModel(model).ok());

  DlrmArchitecture arch;
  arch.dense_features = 13;
  arch.bottom_widths = {32};
  arch.top_widths = {32};
  arch.embedding_dim = 16;
  DlrmModel dlrm(arch, model);

  QueryGenerator& workload = sim.workload();
  const Query q = workload.Next();
  std::vector<std::vector<float>> pooled(model.tables.size());
  size_t remaining = model.tables.size();
  for (size_t t = 0; t < model.tables.size(); ++t) {
    LookupRequest req;
    req.table = MakeTableId(static_cast<uint32_t>(t));
    req.indices = q.indices[t];
    sim.engine().lookups().Lookup(
        std::move(req), [&pooled, &remaining, t](Status s, std::vector<float> out,
                                                 const LookupTrace&) {
          ASSERT_TRUE(s.ok());
          pooled[t] = std::move(out);
          --remaining;
        });
  }
  sim.loop().RunUntilIdle();
  ASSERT_EQ(remaining, 0u);

  std::vector<float> dense(13, 0.4f);
  const auto score = dlrm.Score(dense, pooled);
  ASSERT_TRUE(score.ok());
  EXPECT_GT(score.value(), 0.0f);
  EXPECT_LT(score.value(), 1.0f);
}

TEST(EndToEnd, ValuesSurviveModelUpdate) {
  const ModelConfig model = MakeTinyUniformModel(16, 2, 1, 1000);
  HostSimulation sim(BaseConfig());
  ASSERT_TRUE(sim.LoadModel(model).ok());
  sim.Warmup(500);

  ModelUpdater updater(&sim.store());
  UpdateOptions opts;
  opts.row_fraction = 1.0;
  opts.online = true;
  opts.seed = 1234;
  ASSERT_TRUE(updater.Update(opts).ok());

  // After the update the served values must match a freshly generated
  // update stream (same deterministic seeding as ModelUpdater).
  Rng rng(opts.seed);
  // Reconstruct updated row values: ModelUpdater sweeps tables in order,
  // rows sequentially, drawing dim floats per row.
  for (size_t t = 0; t < model.tables.size(); ++t) {
    const TableRuntime& rt = sim.store().table(MakeTableId(static_cast<uint32_t>(t)));
    std::vector<std::vector<float>> expected(rt.config.num_rows,
                                             std::vector<float>(rt.config.dim));
    for (uint64_t r = 0; r < rt.config.num_rows; ++r) {
      for (auto& v : expected[r]) v = static_cast<float>(rng.NextDouble(-1.0, 1.0));
    }
    // Spot-check a few rows through the engine.
    for (const RowIndex probe : {RowIndex{0}, RowIndex{499}, RowIndex{999}}) {
      std::vector<float> pooled;
      bool done = false;
      LookupRequest req;
      req.table = rt.id;
      req.indices = {probe};
      sim.engine().lookups().Lookup(
          std::move(req),
          [&](Status s, std::vector<float> out, const LookupTrace&) {
            ASSERT_TRUE(s.ok());
            pooled = std::move(out);
            done = true;
          });
      sim.loop().RunUntilIdle();
      ASSERT_TRUE(done);
      for (size_t i = 0; i < pooled.size(); ++i) {
        EXPECT_NEAR(pooled[i], expected[probe][i], 2.0f / 255.0f + 1e-4f)
            << "table " << t << " row " << probe;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Design-choice comparisons at system level.
// ---------------------------------------------------------------------------

TEST(EndToEnd, MmapSlowerThanDirectIoWithRowCache) {
  // §4.1's design decision, at the application level: same FM budget spent
  // on a page cache (mmap) versus an application row cache (DIRECT_IO).
  // 128B rows with no spatial locality waste ~32x of every cached page, so
  // the row cache converts the same bytes into a far higher hit rate; the
  // paper observed ~3x higher access latency for mmap.
  EventLoop loop;
  NvmeDevice mmap_dev(MakeOptaneSsdSpec(), 8 * kMiB, &loop, 3);
  NvmeDevice direct_dev(MakeOptaneSsdSpec(), 8 * kMiB, &loop, 3);
  std::vector<uint8_t> init(8 * kMiB, 7);
  ASSERT_TRUE(mmap_dev.Write(0, init).ok());
  ASSERT_TRUE(direct_dev.Write(0, init).ok());
  IoEngine mmap_engine(&mmap_dev, &loop, {});
  IoEngine direct_engine(&direct_dev, &loop, {});

  const Bytes kFmBudget = 1 * kMiB;
  MmapReader mmap(&mmap_engine, MmapReaderConfig{kFmBudget});
  DirectIoReader direct(&direct_engine, DirectReaderConfig{});
  CpuOptimizedCacheConfig row_cfg;
  row_cfg.capacity = kFmBudget;
  CpuOptimizedCache row_cache(row_cfg);

  constexpr Bytes kRowBytes = 128;
  const uint64_t kRows = 8 * kMiB / kRowBytes;
  ZipfSampler zipf(kRows, 0.9);
  IndexPermuter perm(kRows, 9);
  Rng rng(4);
  SimDuration mmap_total;
  SimDuration direct_total;
  const int kReads = 4000;
  for (int i = 0; i < kReads; ++i) {
    const RowIndex row = perm.Permute(zipf.Sample(rng));
    const Bytes offset = row * kRowBytes;
    std::vector<uint8_t> out(kRowBytes);
    mmap.Read(offset, out, [&](Status s, SimDuration lat) {
      ASSERT_TRUE(s.ok());
      mmap_total += lat;
    });
    loop.RunUntilIdle();

    // DIRECT_IO path: row cache first, device on miss, insert on return.
    const RowKey key{MakeTableId(0), row};
    size_t len = 0;
    if (row_cache.Lookup(key, out, &len)) {
      direct_total += row_cfg.lookup_cpu;
    } else {
      direct.ReadRow(offset, out, [&](Status s, SimDuration lat) {
        ASSERT_TRUE(s.ok());
        direct_total += lat;
        row_cache.Insert(key, out);
      });
      loop.RunUntilIdle();
    }
  }
  EXPECT_GT(static_cast<double>(mmap_total.nanos()),
            1.5 * static_cast<double>(direct_total.nanos()));
}

TEST(EndToEnd, DepruningBoostsCacheBudgetAndHitRate) {
  // §4.5: freeing mapping tensors grows the cache; with a tight FM the hit
  // rate (and SM-bound throughput) improves despite +2.5% extra requests.
  // Build a model whose mapping tensors are a large share of FM: big user
  // tables (mapping 4B/row), small item table.
  ModelConfig model = MakeTinyUniformModel(64, 3, 1, 60'000);
  model.tables.back().num_rows = 2000;  // small FM-resident item table
  HostSimConfig base = BaseConfig();
  base.fm_capacity = 1536 * kKiB;  // tight FM so mapping tensors matter
  base.sm_backing_per_device = 64 * kMiB;
  base.loader.prune_keep_fraction = 0.5;

  HostSimConfig mapping_cfg = base;
  HostSimConfig deprune_cfg = base;
  deprune_cfg.tuning.deprune_at_load = true;

  HostSimulation with_mapping(mapping_cfg);
  HostSimulation depruned(deprune_cfg);
  ASSERT_TRUE(with_mapping.LoadModel(model).ok());
  ASSERT_TRUE(depruned.LoadModel(model).ok());
  EXPECT_GT(depruned.store().fm_cache_budget(), with_mapping.store().fm_cache_budget());

  with_mapping.Warmup(2000);
  depruned.Warmup(2000);
  const HostRunReport rm = with_mapping.Run(300, 1000);
  const HostRunReport rd = depruned.Run(300, 1000);
  EXPECT_GT(rd.row_cache_hit_rate, rm.row_cache_hit_rate);
}

TEST(EndToEnd, PooledCacheReducesRowTraffic) {
  ModelConfig model = MakeTinyUniformModel(16, 3, 1, 5000);
  HostSimConfig off_cfg = BaseConfig();
  off_cfg.workload.user_index_churn = 0.0;  // identical workloads both sides
  HostSimConfig on_cfg = off_cfg;
  on_cfg.tuning.enable_pooled_cache = true;
  on_cfg.tuning.pooled_cache.capacity = 2 * kMiB;
  on_cfg.tuning.pooled_cache.len_threshold = 1;

  HostSimulation off(off_cfg);
  HostSimulation on(on_cfg);
  ASSERT_TRUE(off.LoadModel(model).ok());
  ASSERT_TRUE(on.LoadModel(model).ok());
  off.Warmup(2000);
  on.Warmup(2000);
  (void)off.Run(300, 1500);
  const HostRunReport r_on = on.Run(300, 1500);
  EXPECT_GT(r_on.pooled_hit_rate, 0.0);
  // Pooled hits skip row-cache probes entirely.
  const uint64_t probes_on = on.engine().lookups().stats().CounterValue("rows_cache_hit") +
                             on.engine().lookups().stats().CounterValue("rows_sm_read");
  const uint64_t probes_off =
      off.engine().lookups().stats().CounterValue("rows_cache_hit") +
      off.engine().lookups().stats().CounterValue("rows_sm_read");
  EXPECT_LT(probes_on, probes_off);
}

TEST(EndToEnd, M1ScaledModelServesWithHighHitRate) {
  // A scaled-down M1 on HW-SS: the §5.1 configuration. Steady-state cache
  // hit rate should be high (paper: >96%) and the p95 well-behaved.
  const ModelConfig m1 = MakeM1(1.0 / 4096);  // ~35MB
  HostSimConfig cfg = BaseConfig(MakeHwSS());
  cfg.fm_capacity = 24 * kMiB;
  cfg.sm_backing_per_device = 48 * kMiB;
  cfg.workload.num_users = 1000;
  cfg.workload.user_index_churn = 0.01;
  cfg.workload.pooling_scale = 0.25;  // keep runtimes test-friendly
  HostSimulation sim(cfg);
  ASSERT_TRUE(sim.LoadModel(m1).ok());
  sim.Warmup(2000);
  const HostRunReport r = sim.Run(120, 800);
  EXPECT_GT(r.row_cache_hit_rate, 0.80);
  EXPECT_EQ(r.queries_completed, 800u);
  EXPECT_LT(r.p95.millis(), 50.0);
}

TEST(EndToEnd, WarmupRecoversWithinMinutes) {
  // A.4: after a full offline update the cache refills in a bounded number
  // of queries (minutes at production QPS).
  const ModelConfig model = MakeTinyUniformModel(16, 3, 1, 3000);
  HostSimulation sim(BaseConfig());
  ASSERT_TRUE(sim.LoadModel(model).ok());
  sim.Warmup(3000);
  const HostRunReport steady = sim.Run(300, 500);

  ModelUpdater updater(&sim.store());
  UpdateOptions opts;
  opts.online = false;  // cold caches
  ASSERT_TRUE(updater.Update(opts).ok());
  const HostRunReport cold = sim.Run(300, 500);
  EXPECT_LT(cold.row_cache_hit_rate, steady.row_cache_hit_rate);

  sim.Warmup(3000);
  const HostRunReport recovered = sim.Run(300, 500);
  EXPECT_NEAR(recovered.row_cache_hit_rate, steady.row_cache_hit_rate, 0.08);
}

}  // namespace
}  // namespace sdm
