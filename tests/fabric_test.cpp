// Tests for src/fabric: FabricLink timing semantics (latency, bandwidth
// serialization, per-hop FIFO queueing, full-duplex directions, the instant
// short-circuit), the IoEngine fabric hop, and FabricAttachedService
// host registration / ledger plumbing.
#include <gtest/gtest.h>

#include <vector>

#include "common/event_loop.h"
#include "fabric/fabric_attached_service.h"
#include "fabric/fabric_link.h"
#include "io/io_engine.h"

namespace sdm {
namespace {

// ---------------------------------------------------------------------------
// FabricLink.
// ---------------------------------------------------------------------------

TEST(FabricLink, InstantLinkDeliversSynchronouslyButAccounts) {
  EventLoop loop;
  FabricLink link(FabricLinkConfig{}, &loop);
  ASSERT_TRUE(link.config().instant());
  bool delivered = false;
  link.Request(4096, [&] { delivered = true; });
  // Synchronous: no event was scheduled, no virtual time passed.
  EXPECT_TRUE(delivered);
  EXPECT_EQ(loop.pending_events(), 0u);
  EXPECT_EQ(loop.Now().nanos(), 0);
  // Traffic is still accounted so instant links report would-be bytes.
  EXPECT_EQ(link.stats().requests, 1u);
  EXPECT_EQ(link.stats().request_bytes, 4096u);
}

TEST(FabricLink, LatencyDelaysDelivery) {
  EventLoop loop;
  FabricLinkConfig cfg;
  cfg.latency = Micros(5);
  FabricLink link(cfg, &loop);
  SimTime delivered_at;
  link.Request(64, [&] { delivered_at = loop.Now(); });
  EXPECT_EQ(loop.pending_events(), 1u);  // not synchronous any more
  loop.RunUntilIdle();
  EXPECT_EQ(delivered_at.nanos(), Micros(5).nanos());
}

TEST(FabricLink, BandwidthSerializesAndFifoQueues) {
  EventLoop loop;
  FabricLinkConfig cfg;
  cfg.latency = Micros(1);
  cfg.bandwidth_bytes_per_sec = 1e9;  // 4096 B -> 4096 ns on the wire
  cfg.queueing = true;
  FabricLink link(cfg, &loop);
  int64_t first = 0;
  int64_t second = 0;
  link.Response(4096, [&] { first = loop.Now().nanos(); });
  link.Response(4096, [&] { second = loop.Now().nanos(); });
  loop.RunUntilIdle();
  EXPECT_EQ(first, 4096 + Micros(1).nanos());
  // The second transfer waited for the first to leave the port.
  EXPECT_EQ(second, 2 * 4096 + Micros(1).nanos());
  EXPECT_EQ(link.stats().queue_time.nanos(), 4096);
}

TEST(FabricLink, QueueingOffOverlapsTransfers) {
  EventLoop loop;
  FabricLinkConfig cfg;
  cfg.latency = Micros(1);
  cfg.bandwidth_bytes_per_sec = 1e9;
  cfg.queueing = false;
  FabricLink link(cfg, &loop);
  int64_t first = 0;
  int64_t second = 0;
  link.Response(4096, [&] { first = loop.Now().nanos(); });
  link.Response(4096, [&] { second = loop.Now().nanos(); });
  loop.RunUntilIdle();
  EXPECT_EQ(first, 4096 + Micros(1).nanos());
  EXPECT_EQ(second, 4096 + Micros(1).nanos());
  EXPECT_EQ(link.stats().queue_time.nanos(), 0);
}

TEST(FabricLink, DirectionsDoNotContend) {
  EventLoop loop;
  FabricLinkConfig cfg;
  cfg.bandwidth_bytes_per_sec = 1e9;
  cfg.queueing = true;
  FabricLink link(cfg, &loop);
  int64_t req = 0;
  int64_t resp = 0;
  link.Request(4096, [&] { req = loop.Now().nanos(); });
  link.Response(4096, [&] { resp = loop.Now().nanos(); });
  loop.RunUntilIdle();
  // Full duplex: neither waited for the other.
  EXPECT_EQ(req, 4096);
  EXPECT_EQ(resp, 4096);
  EXPECT_EQ(link.stats().queue_time.nanos(), 0);
}

// ---------------------------------------------------------------------------
// IoEngine fabric hop.
// ---------------------------------------------------------------------------

class FabricEngineFixture : public ::testing::Test {
 protected:
  /// Tail-free spec: the latency-equality asserts below need two reads of
  /// the same shape to cost exactly the same media time.
  static DeviceSpec DeterministicOptane() {
    DeviceSpec s = MakeOptaneSsdSpec();
    s.tail_probability = 0;
    s.read_error_probability = 0;
    return s;
  }

  FabricEngineFixture() : dev_(DeterministicOptane(), kStore, &loop_, 11) {
    std::vector<uint8_t> data(kStore);
    for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<uint8_t>(i * 7);
    EXPECT_TRUE(dev_.Write(0, data).ok());
  }

  static constexpr Bytes kStore = 4 * kMiB;
  EventLoop loop_;
  NvmeDevice dev_;
};

TEST_F(FabricEngineFixture, ReadPaysTheFabricRoundTrip) {
  // Same read on a local engine and on one behind a 10us one-way link.
  IoEngine local(&dev_, &loop_, {});
  std::vector<uint8_t> dest(256);
  SimDuration local_lat;
  local.SubmitRead(1024, 256, true, dest, [&](Status s, SimDuration lat) {
    ASSERT_TRUE(s.ok());
    local_lat = lat;
  });
  loop_.RunUntilIdle();

  FabricLinkConfig cfg;
  cfg.latency = Micros(10);
  FabricLink link(cfg, &loop_);
  IoEngine remote(&dev_, &loop_, {});
  remote.set_fabric_link(&link);
  SimDuration remote_lat;
  bool done = false;
  remote.SubmitRead(1024, 256, true, dest, [&](Status s, SimDuration lat) {
    ASSERT_TRUE(s.ok());
    remote_lat = lat;
    done = true;
  });
  loop_.RunUntilIdle();
  ASSERT_TRUE(done);
  // Exactly one SQE crossed and one payload came back.
  EXPECT_EQ(link.stats().requests, 1u);
  EXPECT_EQ(link.stats().responses, 1u);
  EXPECT_EQ(link.stats().response_bytes, 256u);
  // End-to-end latency covers both hops.
  EXPECT_EQ(remote_lat.nanos(), local_lat.nanos() + 2 * Micros(10).nanos());
  // Data still lands bit-exact.
  for (size_t i = 0; i < dest.size(); ++i) {
    EXPECT_EQ(dest[i], static_cast<uint8_t>((1024 + i) * 7));
  }
}

TEST_F(FabricEngineFixture, InstantLinkIsByteAndTimeIdentical) {
  IoEngine local(&dev_, &loop_, {});
  FabricLink link(FabricLinkConfig{}, &loop_);
  IoEngine remote(&dev_, &loop_, {});
  remote.set_fabric_link(&link);

  std::vector<uint8_t> dest_a(512);
  std::vector<uint8_t> dest_b(512);
  SimDuration lat_a;
  SimDuration lat_b;
  local.SubmitRead(2048, 512, true, dest_a, [&](Status s, SimDuration lat) {
    ASSERT_TRUE(s.ok());
    lat_a = lat;
  });
  loop_.RunUntilIdle();
  remote.SubmitRead(2048, 512, true, dest_b, [&](Status s, SimDuration lat) {
    ASSERT_TRUE(s.ok());
    lat_b = lat;
  });
  loop_.RunUntilIdle();
  EXPECT_EQ(lat_a.nanos(), lat_b.nanos());
  EXPECT_EQ(dest_a, dest_b);
}

TEST_F(FabricEngineFixture, BatchDoorbellCrossesOnce) {
  FabricLinkConfig cfg;
  cfg.latency = Micros(2);
  FabricLink link(cfg, &loop_);
  IoEngine engine(&dev_, &loop_, {});
  engine.set_fabric_link(&link);

  std::vector<std::vector<uint8_t>> bufs(8, std::vector<uint8_t>(256));
  int completed = 0;
  std::vector<IoEngine::ReadOp> ops;
  for (size_t i = 0; i < bufs.size(); ++i) {
    IoEngine::ReadOp op;
    op.offset = i * 4096;
    op.length = 256;
    op.sub_block = true;
    op.dest = bufs[i];
    op.cb = [&](Status s, SimDuration) {
      EXPECT_TRUE(s.ok());
      ++completed;
    };
    ops.push_back(std::move(op));
  }
  engine.SubmitBatch(ops);
  loop_.RunUntilIdle();
  EXPECT_EQ(completed, 8);
  // ONE doorbell message carried all 8 SQEs; 8 payloads crossed back.
  EXPECT_EQ(link.stats().requests, 1u);
  EXPECT_EQ(link.stats().request_bytes, 8u * 64u);
  EXPECT_EQ(link.stats().responses, 8u);
  EXPECT_EQ(link.stats().response_bytes, 8u * 256u);
}

// ---------------------------------------------------------------------------
// FabricAttachedService.
// ---------------------------------------------------------------------------

TEST(FabricService, AttachesHostsAndInstallsLinks) {
  EventLoop loop;
  FabricServiceConfig cfg;
  cfg.device.sm_specs = {MakeOptaneSsdSpec(), MakeOptaneSsdSpec()};
  cfg.device.sm_backing_bytes = {8 * kMiB, 8 * kMiB};
  cfg.link.latency = Micros(3);
  FabricAttachedService service(cfg, &loop);

  ASSERT_EQ(service.device_service().device_count(), 2u);
  // Every device engine got its own fabric port.
  for (size_t d = 0; d < service.device_service().device_count(); ++d) {
    EXPECT_EQ(service.device_service().io_engine(d).fabric_link(), &service.link(d));
  }
  const TenantId a = service.AttachHost("host-a");
  const TenantId b = service.AttachHost("host-b", TenantClass::kBackground);
  EXPECT_NE(a, b);
  EXPECT_EQ(service.host_count(), 2u);
  EXPECT_EQ(service.device_service().tenant_class(b), TenantClass::kBackground);
  // Fresh ledger: all zeroes.
  const TenantIoShare share = service.host_io_share(a);
  EXPECT_EQ(share.demand_reads, 0u);
  EXPECT_EQ(share.cross_tenant_hits, 0u);
}

TEST(DisaggregatedTuning, ValidateForDisaggregated) {
  TuningConfig t;
  EXPECT_TRUE(t.ValidateForDisaggregated().ok());
  t.fabric_latency = Micros(-1);
  EXPECT_EQ(t.ValidateForDisaggregated().code(), StatusCode::kInvalidArgument);
  t.fabric_latency = Micros(5);
  t.fabric_bandwidth_bytes_per_sec = -1;
  EXPECT_EQ(t.ValidateForDisaggregated().code(), StatusCode::kInvalidArgument);
  t.fabric_bandwidth_bytes_per_sec = 1e9;
  EXPECT_TRUE(t.ValidateForDisaggregated().ok());
  // Everything a shared device rejects stays rejected.
  t.cross_request_batching = false;
  EXPECT_EQ(t.ValidateForDisaggregated().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace sdm
