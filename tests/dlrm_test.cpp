// Tests for src/dlrm: MLP layers, the DLRM assembly, cost models, and the
// Table 6 model zoo.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "dlrm/dlrm_model.h"
#include "dlrm/mlp.h"
#include "dlrm/model_zoo.h"

namespace sdm {
namespace {

// ---------------------------------------------------------------------------
// LinearLayer / Mlp.
// ---------------------------------------------------------------------------

TEST(LinearLayer, ShapesAndFlops) {
  LinearLayer layer(8, 4, LinearLayer::Activation::kNone, 1);
  EXPECT_EQ(layer.in_dim(), 8u);
  EXPECT_EQ(layer.out_dim(), 4u);
  EXPECT_EQ(layer.flops(), 2u * 8 * 4);
}

TEST(LinearLayer, ReluClampsNegative) {
  LinearLayer layer(4, 16, LinearLayer::Activation::kRelu, 2);
  std::vector<float> in = {1, -1, 0.5f, 2};
  std::vector<float> out(16);
  layer.Forward(in, out);
  for (const float v : out) EXPECT_GE(v, 0.0f);
}

TEST(LinearLayer, SigmoidBounded) {
  LinearLayer layer(4, 8, LinearLayer::Activation::kSigmoid, 3);
  std::vector<float> in = {10, -10, 3, -3};
  std::vector<float> out(8);
  layer.Forward(in, out);
  // Float sigmoid saturates to exactly 0/1 for large |x|; bounds inclusive.
  for (const float v : out) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f);
  }
}

TEST(LinearLayer, DeterministicInSeed) {
  LinearLayer a(4, 4, LinearLayer::Activation::kNone, 7);
  LinearLayer b(4, 4, LinearLayer::Activation::kNone, 7);
  std::vector<float> in = {1, 2, 3, 4};
  std::vector<float> oa(4);
  std::vector<float> ob(4);
  a.Forward(in, oa);
  b.Forward(in, ob);
  EXPECT_EQ(oa, ob);
}

TEST(Mlp, ForwardThroughStack) {
  const std::vector<uint32_t> widths = {13, 32, 16, 8};
  Mlp mlp(widths, LinearLayer::Activation::kRelu, 5);
  EXPECT_EQ(mlp.depth(), 3u);
  EXPECT_EQ(mlp.in_dim(), 13u);
  EXPECT_EQ(mlp.out_dim(), 8u);
  std::vector<float> in(13, 0.5f);
  const auto out = mlp.Forward(in);
  EXPECT_EQ(out.size(), 8u);
}

TEST(Mlp, FlopsSumLayers) {
  const std::vector<uint32_t> widths = {10, 20, 5};
  Mlp mlp(widths, LinearLayer::Activation::kNone, 5);
  EXPECT_EQ(mlp.flops(), 2u * 10 * 20 + 2u * 20 * 5);
}

TEST(Mlp, NonTrivialOutput) {
  const std::vector<uint32_t> widths = {4, 8, 2};
  Mlp mlp(widths, LinearLayer::Activation::kNone, 11);
  const auto zero_out = mlp.Forward(std::vector<float>(4, 0.0f));
  const auto one_out = mlp.Forward(std::vector<float>(4, 1.0f));
  EXPECT_NE(zero_out, one_out);
}

// ---------------------------------------------------------------------------
// DlrmModel.
// ---------------------------------------------------------------------------

DlrmArchitecture TinyArch() {
  DlrmArchitecture a;
  a.dense_features = 13;
  a.bottom_widths = {32};
  a.top_widths = {32, 16};
  a.embedding_dim = 8;
  return a;
}

TEST(Dlrm, InteractionWidthFormula) {
  DlrmModel model(TinyArch(), MakeTinyUniformModel(8, 2, 1, 100));
  // 3 tables + bottom = 4 vectors -> 6 pairwise dots + dim 8.
  EXPECT_EQ(model.InteractionWidth(3), 8u + 6u);
}

TEST(Dlrm, ScoreInUnitInterval) {
  const ModelConfig sparse = MakeTinyUniformModel(8, 2, 1, 100);
  DlrmModel model(TinyArch(), sparse);
  std::vector<float> dense(13, 0.3f);
  std::vector<std::vector<float>> pooled(3, std::vector<float>(8, 0.1f));
  const auto score = model.Score(dense, pooled);
  ASSERT_TRUE(score.ok());
  EXPECT_GT(score.value(), 0.0f);
  EXPECT_LT(score.value(), 1.0f);
}

TEST(Dlrm, ScoreIsDeterministic) {
  const ModelConfig sparse = MakeTinyUniformModel(8, 2, 1, 100);
  DlrmModel a(TinyArch(), sparse);
  DlrmModel b(TinyArch(), sparse);
  std::vector<float> dense(13, 0.3f);
  std::vector<std::vector<float>> pooled(3, std::vector<float>(8, 0.1f));
  EXPECT_EQ(a.Score(dense, pooled).value(), b.Score(dense, pooled).value());
}

TEST(Dlrm, ScoreSensitiveToEmbeddings) {
  const ModelConfig sparse = MakeTinyUniformModel(8, 2, 1, 100);
  DlrmModel model(TinyArch(), sparse);
  std::vector<float> dense(13, 0.3f);
  std::vector<std::vector<float>> p1(3, std::vector<float>(8, 0.1f));
  std::vector<std::vector<float>> p2(3, std::vector<float>(8, -0.8f));
  EXPECT_NE(model.Score(dense, p1).value(), model.Score(dense, p2).value());
}

TEST(Dlrm, ScoreValidatesShapes) {
  const ModelConfig sparse = MakeTinyUniformModel(8, 2, 1, 100);
  DlrmModel model(TinyArch(), sparse);
  std::vector<float> bad_dense(7, 0.0f);
  std::vector<std::vector<float>> pooled(3, std::vector<float>(8, 0.0f));
  EXPECT_FALSE(model.Score(bad_dense, pooled).ok());
  std::vector<float> dense(13, 0.0f);
  std::vector<std::vector<float>> bad_count(2, std::vector<float>(8, 0.0f));
  EXPECT_FALSE(model.Score(dense, bad_count).ok());
  std::vector<std::vector<float>> bad_dim(3, std::vector<float>(4, 0.0f));
  EXPECT_FALSE(model.Score(dense, bad_dim).ok());
}

TEST(Dlrm, InteractContainsBottomCopy) {
  const ModelConfig sparse = MakeTinyUniformModel(8, 1, 1, 100);
  DlrmModel model(TinyArch(), sparse);
  std::vector<float> bottom(8);
  for (size_t i = 0; i < 8; ++i) bottom[i] = static_cast<float>(i);
  std::vector<std::vector<float>> pooled(2, std::vector<float>(8, 1.0f));
  const auto z = model.Interact(bottom, pooled);
  ASSERT_GE(z.size(), 8u);
  for (size_t i = 0; i < 8; ++i) EXPECT_FLOAT_EQ(z[i], bottom[i]);
}

TEST(Dlrm, InteractDotValuesCorrect) {
  const ModelConfig sparse = MakeTinyUniformModel(2, 1, 0, 100);
  DlrmArchitecture arch = TinyArch();
  arch.embedding_dim = 2;
  DlrmModel model(arch, sparse);
  const std::vector<float> bottom = {1.0f, 2.0f};
  std::vector<std::vector<float>> pooled = {{3.0f, 4.0f}};
  const auto z = model.Interact(bottom, pooled);
  // Layout: [bottom(2); dot(bottom, pooled0)] = [1, 2, 11].
  ASSERT_EQ(z.size(), 3u);
  EXPECT_FLOAT_EQ(z[2], 1.0f * 3.0f + 2.0f * 4.0f);
}

TEST(Dlrm, DenseCostScalesWithItemBatch) {
  ModelConfig m = MakeTinyUniformModel();
  DenseCostModel cost;
  m.item_batch_size = 10;
  const auto t10 = cost.TimePerQuery(m);
  m.item_batch_size = 100;
  const auto t100 = cost.TimePerQuery(m);
  EXPECT_NEAR(static_cast<double>(t100.nanos()), 10.0 * static_cast<double>(t10.nanos()),
              static_cast<double>(t10.nanos()));
}

// ---------------------------------------------------------------------------
// Model zoo (Table 6 structure).
// ---------------------------------------------------------------------------

TEST(Zoo, M1Structure) {
  const ModelConfig m1 = MakeM1();
  EXPECT_EQ(m1.CountFor(TableRole::kUser), 61u);
  EXPECT_EQ(m1.CountFor(TableRole::kItem), 30u);
  EXPECT_EQ(m1.item_batch_size, 50);
  EXPECT_EQ(m1.user_batch_size, 1);
  EXPECT_EQ(m1.num_mlp_layers, 31);
  EXPECT_NEAR(m1.AvgPoolingFactor(TableRole::kUser), 42.0, 6.0);
  EXPECT_NEAR(m1.AvgPoolingFactor(TableRole::kItem), 9.0, 2.0);
}

TEST(Zoo, M2Structure) {
  const ModelConfig m2 = MakeM2();
  EXPECT_EQ(m2.CountFor(TableRole::kUser), 450u);
  EXPECT_EQ(m2.CountFor(TableRole::kItem), 280u);
  EXPECT_EQ(m2.item_batch_size, 150);
  EXPECT_NEAR(m2.AvgPoolingFactor(TableRole::kUser), 25.0, 4.0);
}

TEST(Zoo, M3Structure) {
  const ModelConfig m3 = MakeM3();
  EXPECT_EQ(m3.CountFor(TableRole::kUser), 1800u);
  EXPECT_EQ(m3.CountFor(TableRole::kItem), 900u);
  EXPECT_EQ(m3.item_batch_size, 1000);
  EXPECT_EQ(m3.avg_mlp_width, 6000);
}

TEST(Zoo, CapacityScalesAsRequested) {
  const ModelConfig full = MakeM1(1.0 / 512);
  const ModelConfig half = MakeM1(1.0 / 1024);
  EXPECT_NEAR(static_cast<double>(full.TotalBytes()),
              2.0 * static_cast<double>(half.TotalBytes()),
              static_cast<double>(half.TotalBytes()) * 0.2);
}

TEST(Zoo, UserSideDominatesCapacity) {
  // Paper: "more than 2/3 of the model capacity are contributed by the
  // user embeddings".
  for (const ModelConfig& m : {MakeM1(), MakeM2(), MakeFig1Model()}) {
    const double user = static_cast<double>(m.BytesFor(TableRole::kUser));
    const double total = static_cast<double>(m.TotalBytes());
    EXPECT_GT(user / total, 0.6) << m.name;
  }
}

TEST(Zoo, ItemTablesHaveMoreLocality) {
  const ModelConfig m = MakeM2();
  double user_alpha = 0;
  double item_alpha = 0;
  for (const auto& t : m.tables) {
    if (t.role == TableRole::kUser) {
      user_alpha += t.zipf_alpha;
    } else {
      item_alpha += t.zipf_alpha;
    }
  }
  user_alpha /= static_cast<double>(m.CountFor(TableRole::kUser));
  item_alpha /= static_cast<double>(m.CountFor(TableRole::kItem));
  EXPECT_GT(item_alpha, user_alpha);
}

TEST(Zoo, BytesPerQueryFollowsEq2) {
  // Item batch multiplies the item-side BW (Eq. 2): most of the per-query
  // bytes come from item tables despite user tables holding most capacity.
  const ModelConfig m = MakeM2();
  double user_bpq = 0;
  double item_bpq = 0;
  for (const auto& t : m.tables) {
    if (t.role == TableRole::kUser) {
      user_bpq += t.bytes_per_query() * m.user_batch_size;
    } else {
      item_bpq += t.bytes_per_query() * m.item_batch_size;
    }
  }
  EXPECT_GT(item_bpq, user_bpq);
  EXPECT_NEAR(m.BytesPerQuery(), user_bpq + item_bpq, 1.0);
}

TEST(Zoo, LookupsPerQueryMatchesEq8) {
  const ModelConfig m = MakeM1();
  // IOPS candidate load = QPS * sum(p_i) over user tables (B_U = 1).
  double pf_sum = 0;
  for (const auto& t : m.tables) {
    if (t.role == TableRole::kUser) pf_sum += t.avg_pooling_factor;
  }
  EXPECT_NEAR(m.LookupsPerQuery(TableRole::kUser), pf_sum, 1e-6);
}

TEST(Zoo, DeterministicGeneration) {
  const ModelConfig a = MakeM1();
  const ModelConfig b = MakeM1();
  ASSERT_EQ(a.tables.size(), b.tables.size());
  for (size_t i = 0; i < a.tables.size(); ++i) {
    EXPECT_EQ(a.tables[i].num_rows, b.tables[i].num_rows);
    EXPECT_EQ(a.tables[i].dim, b.tables[i].dim);
  }
}

TEST(Zoo, TableSizesAreSkewed) {
  // Fig. 1: a few big tables hold most capacity.
  const ModelConfig m = MakeFig1Model();
  std::vector<Bytes> sizes;
  for (const auto& t : m.tables) sizes.push_back(t.total_bytes());
  std::sort(sizes.begin(), sizes.end(), std::greater<>());
  Bytes top10 = 0;
  Bytes total = 0;
  for (size_t i = 0; i < sizes.size(); ++i) {
    if (i < sizes.size() / 10) top10 += sizes[i];
    total += sizes[i];
  }
  EXPECT_GT(static_cast<double>(top10) / static_cast<double>(total), 0.35);
}

TEST(Zoo, TinyUniformHasOneDim) {
  const ModelConfig m = MakeTinyUniformModel(24, 3, 2, 100);
  EXPECT_EQ(m.tables.size(), 5u);
  for (const auto& t : m.tables) EXPECT_EQ(t.dim, 24u);
}

}  // namespace
}  // namespace sdm
