// Failure-injection tests: media read errors propagate, retries absorb
// transient faults, and serving degrades gracefully instead of wedging.
#include <gtest/gtest.h>

#include "core/lookup_engine.h"
#include "core/model_loader.h"
#include "dlrm/model_zoo.h"
#include "io/direct_reader.h"
#include "serving/host.h"

namespace sdm {
namespace {

DeviceSpec FaultyOptane(double error_probability) {
  DeviceSpec spec = MakeOptaneSsdSpec();
  spec.read_error_probability = error_probability;
  return spec;
}

// ---------------------------------------------------------------------------
// Device level.
// ---------------------------------------------------------------------------

TEST(FaultInjection, DeviceSurfacesUnavailable) {
  EventLoop loop;
  NvmeDevice dev(FaultyOptane(1.0), 64 * kKiB, &loop, 3);
  std::vector<uint8_t> dest(128);
  Status got;
  NvmeDevice::ReadRequest req;
  req.offset = 0;
  req.length = 128;
  req.sub_block = true;
  req.dest = dest;
  req.on_complete = [&](Status s, SimDuration lat) {
    got = s;
    // The fault is discovered at completion: latency was still paid.
    EXPECT_GT(lat.nanos(), 0);
  };
  dev.SubmitRead(std::move(req));
  loop.RunUntilIdle();
  EXPECT_EQ(got.code(), StatusCode::kUnavailable);
}

TEST(FaultInjection, ErrorRateRoughlyMatchesProbability) {
  EventLoop loop;
  NvmeDevice dev(FaultyOptane(0.2), 64 * kKiB, &loop, 5);
  int errors = 0;
  const int n = 2000;
  std::vector<uint8_t> dest(128);
  for (int i = 0; i < n; ++i) {
    NvmeDevice::ReadRequest req;
    req.offset = 0;
    req.length = 128;
    req.sub_block = true;
    req.dest = dest;
    req.on_complete = [&](Status s, SimDuration) {
      if (!s.ok()) ++errors;
    };
    dev.SubmitRead(std::move(req));
  }
  loop.RunUntilIdle();
  EXPECT_NEAR(static_cast<double>(errors) / n, 0.2, 0.04);
}

TEST(FaultInjection, HealthyDeviceNeverErrors) {
  EventLoop loop;
  NvmeDevice dev(MakeOptaneSsdSpec(), 64 * kKiB, &loop, 7);
  int errors = 0;
  std::vector<uint8_t> dest(128);
  for (int i = 0; i < 500; ++i) {
    NvmeDevice::ReadRequest req;
    req.offset = 0;
    req.length = 128;
    req.sub_block = true;
    req.dest = dest;
    req.on_complete = [&](Status s, SimDuration) {
      if (!s.ok()) ++errors;
    };
    dev.SubmitRead(std::move(req));
  }
  loop.RunUntilIdle();
  EXPECT_EQ(errors, 0);
}

// ---------------------------------------------------------------------------
// Reader retries.
// ---------------------------------------------------------------------------

TEST(FaultInjection, RetriesAbsorbTransientErrors) {
  EventLoop loop;
  NvmeDevice dev(FaultyOptane(0.3), 64 * kKiB, &loop, 9);
  std::vector<uint8_t> init(64 * kKiB, 0x5A);
  ASSERT_TRUE(dev.Write(0, init).ok());
  IoEngine engine(&dev, &loop, {});
  DirectReaderConfig rcfg;
  rcfg.max_retries = 4;  // error^5 ~ 0.24% residual failure
  DirectIoReader reader(&engine, rcfg);

  int ok = 0;
  int failed = 0;
  std::vector<std::unique_ptr<std::vector<uint8_t>>> bufs;
  for (int i = 0; i < 500; ++i) {
    auto buf = std::make_unique<std::vector<uint8_t>>(128);
    const std::span<uint8_t> dest(buf->data(), buf->size());
    bufs.push_back(std::move(buf));
    reader.ReadRow(0, dest, [&](Status s, SimDuration) {
      s.ok() ? ++ok : ++failed;
    });
    loop.RunUntilIdle();
  }
  EXPECT_GT(reader.retries(), 0u);
  EXPECT_GT(ok, 480);  // nearly everything recovers
  // Data from recovered reads is intact.
  EXPECT_EQ((*bufs.back())[0], 0x5A);
}

TEST(FaultInjection, RetryLatencyAccumulates) {
  EventLoop loop;
  NvmeDevice healthy(MakeOptaneSsdSpec(), 64 * kKiB, &loop, 11);
  NvmeDevice flaky(FaultyOptane(0.9), 64 * kKiB, &loop, 11);
  std::vector<uint8_t> init(64 * kKiB, 1);
  ASSERT_TRUE(healthy.Write(0, init).ok());
  ASSERT_TRUE(flaky.Write(0, init).ok());
  IoEngine e1(&healthy, &loop, {});
  IoEngine e2(&flaky, &loop, {});
  DirectReaderConfig rcfg;
  rcfg.max_retries = 20;
  DirectIoReader r1(&e1, rcfg);
  DirectIoReader r2(&e2, rcfg);
  std::vector<uint8_t> buf(128);
  SimDuration lat_healthy;
  SimDuration lat_flaky;
  r1.ReadRow(0, buf, [&](Status s, SimDuration l) {
    ASSERT_TRUE(s.ok());
    lat_healthy = l;
  });
  loop.RunUntilIdle();
  r2.ReadRow(0, buf, [&](Status s, SimDuration l) {
    if (s.ok()) lat_flaky = l;
  });
  loop.RunUntilIdle();
  // Each retry pays a full device round trip.
  EXPECT_GT(lat_flaky.nanos(), 2 * lat_healthy.nanos());
}

TEST(FaultInjection, NonRetryableErrorsSurfaceImmediately) {
  EventLoop loop;
  NvmeDevice dev(MakeOptaneSsdSpec(), 64 * kKiB, &loop, 13);
  IoEngine engine(&dev, &loop, {});
  DirectReaderConfig rcfg;
  rcfg.max_retries = 5;
  DirectIoReader reader(&engine, rcfg);
  std::vector<uint8_t> buf(128);
  Status got;
  reader.ReadRow(10 * kMiB, buf, [&](Status s, SimDuration) { got = s; });  // OOR
  loop.RunUntilIdle();
  EXPECT_EQ(got.code(), StatusCode::kOutOfRange);
  EXPECT_EQ(reader.retries(), 0u);  // invalid requests are not retried
}

// ---------------------------------------------------------------------------
// End-to-end serving under faults.
// ---------------------------------------------------------------------------

TEST(FaultInjection, ServingDegradesGracefully) {
  ModelConfig model = MakeTinyUniformModel(16, 2, 1, 2000);
  HostSimConfig cfg;
  cfg.host = MakeHwAO();
  cfg.host.ssds = {FaultyOptane(0.05), FaultyOptane(0.05)};
  cfg.fm_capacity = 8 * kMiB;
  cfg.sm_backing_per_device = 16 * kMiB;
  HostSimulation sim(cfg);
  ASSERT_TRUE(sim.LoadModel(model).ok());
  const HostRunReport r = sim.Run(200, 500);
  // With 5% per-IO error and one retry, nearly every query still completes.
  EXPECT_GT(r.queries_completed, 490u);
  EXPECT_GT(r.achieved_qps, 0.0);
}

TEST(FaultInjection, LookupReportsFirstErrorWhenRetriesExhausted) {
  ModelConfig model = MakeTinyUniformModel(16, 1, 0, 2000);
  EventLoop loop;
  SdmStoreConfig cfg;
  cfg.fm_capacity = 8 * kMiB;
  cfg.sm_specs = {FaultyOptane(1.0)};  // every read fails, retries exhausted
  cfg.sm_backing_bytes = {16 * kMiB};
  cfg.tuning.graceful_degradation = false;  // legacy fail-stop contract
  SdmStore store(cfg, &loop);
  ASSERT_TRUE(ModelLoader::Load(model, {}, &store).ok());
  LookupEngine engine(&store);
  Status got;
  LookupRequest req;
  req.table = MakeTableId(0);
  req.indices = {1, 2, 3};
  engine.Lookup(std::move(req),
                [&](Status s, std::vector<float>, const LookupTrace&) { got = s; });
  loop.RunUntilIdle();
  EXPECT_EQ(got.code(), StatusCode::kUnavailable);
  EXPECT_GT(engine.stats().CounterValue("io_errors"), 0u);
}

}  // namespace
}  // namespace sdm
