// Tests for the sharded parallel runtime (src/common/sharded_runtime.h)
// and the sharded disaggregated cluster built on it
// (src/serving/sharded_cluster.h).
//
// The load-bearing property is DETERMINISM, pinned from three angles:
//   1. ShardedRuntime executes the same trace for every worker count.
//   2. ShardedClusterRuntime reports are field-identical for every
//      num_shards >= 2 (the K-invariance oracle).
//   3. Under serial load — arrivals so sparse that no two hosts' IOs
//      overlap in time — the sharded cluster's aggregate report equals the
//      single-loop path's exactly, across routing policies and under a
//      scripted fault storm (the single-loop determinism oracle).
#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "common/sharded_runtime.h"
#include "dlrm/model_zoo.h"
#include "fault/fault_injector.h"
#include "serving/cluster.h"
#include "serving/sharded_cluster.h"

namespace sdm {
namespace {

/// Absolute virtual time `d` past the epoch (loops start at SimTime(0)).
constexpr SimTime At(SimDuration d) { return SimTime(0) + d; }

// ---------------------------------------------------------------------------
// ShardedRuntime unit tests.
// ---------------------------------------------------------------------------

TEST(ShardedRuntime, RunsLocalEventsAndReportsWindows) {
  ShardedRuntime rt(2);
  const size_t a = rt.AddProcess();
  const size_t b = rt.AddProcess();
  // Both events share the [10us, 15us) window, so they may run on two
  // workers at once — cross-LP state in a window must be atomic.
  std::atomic<int> ran{0};
  rt.loop(a).ScheduleAt(At(Micros(10)), [&] { ++ran; });
  rt.loop(b).ScheduleAt(At(Micros(12)), [&] { ++ran; });
  const uint64_t events = rt.Run(Micros(5));
  EXPECT_EQ(events, 2u);
  EXPECT_EQ(ran.load(), 2);
  EXPECT_GE(rt.windows(), 1u);
  // Both clocks advanced to (at least) their last event.
  EXPECT_GE(rt.loop(a).Now().nanos(), Micros(10).nanos());
  EXPECT_GE(rt.loop(b).Now().nanos(), Micros(12).nanos());
}

TEST(ShardedRuntime, PostCrossesShardsAtTheRequestedTime) {
  ShardedRuntime rt(2);
  const size_t a = rt.AddProcess();
  const size_t b = rt.AddProcess();
  const SimDuration lookahead = Micros(5);
  SimTime delivered_at;
  rt.loop(a).ScheduleAt(At(Micros(3)), [&] {
    rt.Post(a, b, rt.loop(a).Now() + lookahead,
            [&] { delivered_at = rt.loop(b).Now(); });
  });
  rt.Run(lookahead);
  EXPECT_EQ(delivered_at.nanos(), (Micros(3) + lookahead).nanos());
  EXPECT_EQ(rt.messages_delivered(), 1u);
}

TEST(ShardedRuntime, WindowsSkipIdleGaps) {
  // Two events a full virtual second apart must NOT cost ~200k windows of
  // 5us each: windows jump to the next pending work.
  ShardedRuntime rt(1);
  const size_t a = rt.AddProcess();
  rt.loop(a).ScheduleAt(At(Micros(1)), [] {});
  rt.loop(a).ScheduleAt(At(Seconds(1)), [] {});
  rt.Run(Micros(5));
  EXPECT_LE(rt.windows(), 4u);
}

/// Ping-pong-with-fanout workload: every LP reacts to each delivery by
/// posting to every other LP for a few generations. Records a per-LP trace
/// of (virtual time, source) so two runs can be compared exactly.
std::vector<std::vector<std::pair<int64_t, size_t>>> FanoutTrace(
    size_t workers, size_t lps, int generations) {
  ShardedRuntime rt(workers);
  for (size_t i = 0; i < lps; ++i) rt.AddProcess();
  const SimDuration lookahead = Micros(2);
  std::vector<std::vector<std::pair<int64_t, size_t>>> trace(lps);
  // React(lp, from, gen): record, then fan out to every other LP.
  std::function<void(size_t, size_t, int)> react = [&](size_t lp, size_t from,
                                                       int gen) {
    trace[lp].push_back({rt.loop(lp).Now().nanos(), from});
    if (gen <= 0) return;
    for (size_t to = 0; to < lps; ++to) {
      if (to == lp) continue;
      rt.Post(lp, to, rt.loop(lp).Now() + lookahead,
              [&react, to, lp, gen] { react(to, lp, gen - 1); });
    }
  };
  for (size_t i = 0; i < lps; ++i) {
    rt.loop(i).ScheduleAt(At(Micros(1 + i)), [&react, i, generations] {
      react(i, i, generations);
    });
  }
  rt.Run(lookahead);
  return trace;
}

TEST(ShardedRuntime, TraceIsIdenticalForEveryWorkerCount) {
  const auto serial = FanoutTrace(/*workers=*/1, /*lps=*/5, /*generations=*/4);
  for (const size_t workers : {2u, 3u, 8u}) {
    const auto parallel = FanoutTrace(workers, 5, 4);
    ASSERT_EQ(parallel.size(), serial.size()) << "workers=" << workers;
    for (size_t lp = 0; lp < serial.size(); ++lp) {
      EXPECT_EQ(parallel[lp], serial[lp])
          << "workers=" << workers << " lp=" << lp;
    }
  }
}

TEST(ShardedRuntime, RepeatedRunsCarryClocksForward) {
  ShardedRuntime rt(2);
  const size_t a = rt.AddProcess();
  rt.AddProcess();
  rt.loop(a).ScheduleAt(At(Micros(10)), [] {});
  rt.Run(Micros(5));
  // Clocks rest at the END of the last window, past the last event.
  const SimTime after_first = rt.loop(a).Now();
  EXPECT_GE(after_first.nanos(), Micros(10).nanos());
  SimTime fired;
  rt.loop(a).ScheduleAfter(Micros(7), [&] { fired = rt.loop(a).Now(); });
  rt.Run(Micros(5));
  // The second run's relative schedule is anchored on the carried clock.
  EXPECT_EQ(fired.nanos(), (after_first + Micros(7)).nanos());
}

// ---------------------------------------------------------------------------
// Sharded disaggregated cluster: oracles against the single-loop path.
// ---------------------------------------------------------------------------

/// The serving_test disaggregated profile, minus batching delay: with
/// max_batch_delay = 0 the shared single-loop scheduler and the sharded
/// per-host schedulers flush identically, so under serial load the two
/// modes are event-for-event comparable.
HostSimConfig ShardedHostConfig() {
  HostSimConfig cfg;
  cfg.host = MakeHwFAO(2);
  cfg.fm_capacity = 4 * kMiB;
  cfg.sm_backing_per_device = 32 * kMiB;
  cfg.workload.num_users = 2000;
  cfg.workload.seed = 11;
  cfg.seed = 11;
  cfg.tuning.sub_block_reads = false;
  cfg.tuning.enable_row_cache = false;
  cfg.tuning.max_batch_delay = SimDuration(0);
  cfg.tuning.fabric_latency = Micros(5);
  cfg.inference.max_concurrent_queries = 32;
  return cfg;
}

ModelConfig ShardedModel() {
  ModelConfig model = MakeTinyUniformModel(64, 3, 1, 40'000);
  model.tables.back().num_rows = 4'000;  // item side stays FM-direct
  for (auto& t : model.tables) {
    if (t.role == TableRole::kUser) t.zipf_alpha = 1.1;
  }
  return model;
}

DisaggregatedRunReport RunCluster(size_t hosts, const HostSimConfig& cfg,
                                  RoutingPolicy policy, size_t num_shards,
                                  double qps, uint64_t queries,
                                  const FaultPlan* plan = nullptr,
                                  const ModelConfig* model = nullptr) {
  DisaggregatedConfig dc;
  dc.enabled = true;
  dc.num_shards = num_shards;
  ClusterSimulation cluster(hosts, cfg, policy, dc);
  EXPECT_TRUE(cluster.LoadModel(model != nullptr ? *model : ShardedModel()).ok());
  if (plan != nullptr) {
    if (num_shards >= 2) {
      EXPECT_TRUE(
          cluster.sharded_runtime()->InstallFaultPlan(*plan, cfg.seed).ok());
    } else {
      // Single-loop installation: one injector over the whole stack. Leaked
      // into the cluster's lifetime via a static — tests only.
      static std::vector<std::unique_ptr<FaultInjector>> keep_alive;
      keep_alive.push_back(std::make_unique<FaultInjector>(
          *plan, cluster.host_store(0).loop(), cfg.seed));
      cluster.fabric_service()->InstallFaultInjector(keep_alive.back().get());
    }
  }
  return cluster.RunDisaggregated(qps, queries);
}

/// Field-by-field equality of two disaggregated reports (virtual-time
/// metrics only — wall clock never appears in a report).
void ExpectReportsEqual(const DisaggregatedRunReport& a,
                        const DisaggregatedRunReport& b) {
  ASSERT_EQ(a.hosts.size(), b.hosts.size());
  for (size_t i = 0; i < a.hosts.size(); ++i) {
    SCOPED_TRACE(testing::Message() << "host " << i);
    const HostRunReport& x = a.hosts[i].run;
    const HostRunReport& y = b.hosts[i].run;
    EXPECT_EQ(x.queries_served, y.queries_served);
    EXPECT_EQ(x.queries_completed, y.queries_completed);
    EXPECT_EQ(x.p50.nanos(), y.p50.nanos());
    EXPECT_EQ(x.p95.nanos(), y.p95.nanos());
    EXPECT_EQ(x.p99.nanos(), y.p99.nanos());
    EXPECT_EQ(x.mean.nanos(), y.mean.nanos());
    EXPECT_DOUBLE_EQ(x.row_cache_hit_rate, y.row_cache_hit_rate);
    EXPECT_DOUBLE_EQ(x.pooled_hit_rate, y.pooled_hit_rate);
    EXPECT_EQ(x.io_errors, y.io_errors);
    EXPECT_EQ(x.queries_degraded, y.queries_degraded);
    EXPECT_EQ(x.rows_failed, y.rows_failed);
    EXPECT_EQ(x.blocks_corrupt, y.blocks_corrupt);
    EXPECT_EQ(x.replica_reads, y.replica_reads);
    EXPECT_EQ(x.read_repairs, y.read_repairs);
    EXPECT_EQ(x.extents_replicated, y.extents_replicated);
    EXPECT_EQ(a.hosts[i].share.demand_reads, b.hosts[i].share.demand_reads);
    EXPECT_EQ(a.hosts[i].share.demand_bytes, b.hosts[i].share.demand_bytes);
    EXPECT_EQ(a.hosts[i].share.cross_tenant_hits,
              b.hosts[i].share.cross_tenant_hits);
    EXPECT_EQ(a.hosts[i].share.cross_tenant_bytes_saved,
              b.hosts[i].share.cross_tenant_bytes_saved);
  }
  EXPECT_DOUBLE_EQ(a.mean_hit_rate, b.mean_hit_rate);
  EXPECT_EQ(a.sm_device_reads, b.sm_device_reads);
  EXPECT_EQ(a.io.device_reads, b.io.device_reads);
  EXPECT_EQ(a.io.cross_request_merges, b.io.cross_request_merges);
  EXPECT_EQ(a.io.singleflight_hits, b.io.singleflight_hits);
  EXPECT_EQ(a.io.flushes, b.io.flushes);
  EXPECT_EQ(a.io.deadline_expired, b.io.deadline_expired);
  EXPECT_EQ(a.cross_host_hits, b.cross_host_hits);
  EXPECT_EQ(a.cross_host_bytes_saved, b.cross_host_bytes_saved);
  EXPECT_EQ(a.sm_logical_bytes, b.sm_logical_bytes);
  EXPECT_EQ(a.sm_unique_bytes, b.sm_unique_bytes);
  EXPECT_EQ(a.fabric.requests, b.fabric.requests);
  EXPECT_EQ(a.fabric.responses, b.fabric.responses);
  EXPECT_EQ(a.fabric.request_bytes, b.fabric.request_bytes);
  EXPECT_EQ(a.fabric.response_bytes, b.fabric.response_bytes);
  EXPECT_EQ(a.fabric.dropped, b.fabric.dropped);
  EXPECT_EQ(a.fabric.partition_deferred, b.fabric.partition_deferred);
  EXPECT_EQ(a.queries_degraded, b.queries_degraded);
  EXPECT_EQ(a.rows_failed, b.rows_failed);
  EXPECT_EQ(a.blocks_corrupt, b.blocks_corrupt);
  EXPECT_EQ(a.replica_reads, b.replica_reads);
  EXPECT_EQ(a.read_repairs, b.read_repairs);
  EXPECT_EQ(a.extents_replicated, b.extents_replicated);
}

// Serial load: at 2 QPS across the cluster, arrivals are ~500ms apart while
// an IO chain lasts microseconds — the probability of two hosts' IOs
// overlapping (the one regime where the shared single-loop schedulers and
// the per-host sharded schedulers can diverge) is ~0.
constexpr double kSerialQps = 2.0;
constexpr uint64_t kSerialQueries = 120;

TEST(ShardedCluster, SerialLoadMatchesSingleLoopAcrossRoutingPolicies) {
  const HostSimConfig cfg = ShardedHostConfig();
  for (const RoutingPolicy policy :
       {RoutingPolicy::kLocal, RoutingPolicy::kUserSticky,
        RoutingPolicy::kRandom}) {
    SCOPED_TRACE(testing::Message()
                 << "policy " << static_cast<int>(policy));
    const DisaggregatedRunReport single =
        RunCluster(2, cfg, policy, 1, kSerialQps, kSerialQueries);
    const DisaggregatedRunReport sharded =
        RunCluster(2, cfg, policy, 2, kSerialQps, kSerialQueries);
    ExpectReportsEqual(single, sharded);
  }
}

TEST(ShardedCluster, SerialLoadFaultStormMatchesSingleLoop) {
  // Partition + error burst + stall, spread across the ~60s serial run.
  // The plan is deterministic in both modes (partition deferral is a plan
  // scan; error draws happen in device-read order, identical under serial
  // load), so the fault counters must agree exactly. Windows are kept
  // SHORTER than the ~500ms inter-arrival gap: a longer partition/stall
  // queues several hosts' transfers and releases them together at heal
  // time, manufacturing exactly the cross-host IO overlap under which the
  // two modes legitimately diverge.
  const HostSimConfig cfg = ShardedHostConfig();
  FaultPlan plan;
  plan.FabricPartition(At(Seconds(5)), At(Seconds(5) + Millis(150)));
  plan.ErrorBurst(At(Seconds(20)), At(Seconds(30)), /*probability=*/1.0);
  plan.Stall(At(Seconds(40)), At(Seconds(40) + Millis(50)));
  const DisaggregatedRunReport single = RunCluster(
      2, cfg, RoutingPolicy::kUserSticky, 1, kSerialQps, kSerialQueries, &plan);
  const DisaggregatedRunReport sharded = RunCluster(
      2, cfg, RoutingPolicy::kUserSticky, 2, kSerialQps, kSerialQueries, &plan);
  // The storm actually bit: reads failed and queries degraded.
  EXPECT_GT(single.rows_failed, 0u);
  EXPECT_GT(single.queries_degraded, 0u);
  ExpectReportsEqual(single, sharded);
}

TEST(ShardedCluster, ReportIsInvariantAcrossShardCounts) {
  // At HIGH load (real cross-host IO overlap, thousands of messages per
  // window) every num_shards >= 2 must still produce the identical report:
  // the mailbox merge sorts by (time, source, seq), never by thread timing.
  const HostSimConfig cfg = ShardedHostConfig();
  const DisaggregatedRunReport k2 =
      RunCluster(4, cfg, RoutingPolicy::kUserSticky, 2, 2000, 2000);
  const DisaggregatedRunReport k4 =
      RunCluster(4, cfg, RoutingPolicy::kUserSticky, 4, 2000, 2000);
  const DisaggregatedRunReport k8 =
      RunCluster(4, cfg, RoutingPolicy::kUserSticky, 8, 2000, 2000);
  ExpectReportsEqual(k2, k4);
  ExpectReportsEqual(k2, k8);
}

TEST(ShardedCluster, HighLoadExercisesCrossHostSharingAndTheRuntime) {
  const HostSimConfig cfg = ShardedHostConfig();
  DisaggregatedConfig dc;
  dc.enabled = true;
  dc.num_shards = 2;
  ClusterSimulation cluster(2, cfg, RoutingPolicy::kUserSticky, dc);
  ASSERT_TRUE(cluster.disaggregated());
  ASSERT_EQ(cluster.fabric_service(), nullptr);
  ASSERT_NE(cluster.sharded_runtime(), nullptr);
  ASSERT_TRUE(cluster.LoadModel(ShardedModel()).ok());
  const DisaggregatedRunReport r = cluster.RunDisaggregated(2000, 2000);
  uint64_t served = 0;
  for (const auto& h : r.hosts) served += h.run.queries_served;
  EXPECT_EQ(served, 2000u);
  EXPECT_GT(r.sm_device_reads, 0u);
  // Replicas dedup to one extent set, and the endpoint single-flights
  // cross-host duplicates at the device shard.
  EXPECT_LT(r.sm_unique_bytes, r.sm_logical_bytes);
  EXPECT_GT(r.cross_host_hits, 0u);
  EXPECT_GT(r.fabric.requests, 0u);
  EXPECT_GT(r.fabric.response_bytes, 0u);
  // The parallel runtime actually ran windows and crossed shards.
  ShardedClusterRuntime& rt = *cluster.sharded_runtime();
  EXPECT_GT(rt.runtime().windows(), 0u);
  EXPECT_GT(rt.runtime().messages_delivered(), 0u);
  EXPECT_GT(rt.endpoint().doorbells(), 0u);
  EXPECT_FALSE(r.Summary().empty());
}

TEST(ShardedCluster, WarmupThenMeasureRunsBackToBack) {
  const HostSimConfig cfg = ShardedHostConfig();
  DisaggregatedConfig dc;
  dc.enabled = true;
  dc.num_shards = 2;
  ClusterSimulation cluster(2, cfg, RoutingPolicy::kUserSticky, dc);
  ASSERT_TRUE(cluster.LoadModel(ShardedModel()).ok());
  (void)cluster.RunDisaggregated(1000, 400);
  const DisaggregatedRunReport r = cluster.RunDisaggregated(1000, 600);
  uint64_t served = 0;
  for (const auto& h : r.hosts) served += h.run.queries_served;
  EXPECT_EQ(served, 600u);  // second run's arrivals only
}

TEST(ShardedCluster, RejectsInstantFabric) {
  HostSimConfig cfg = ShardedHostConfig();
  cfg.tuning.fabric_latency = SimDuration(0);  // no lookahead -> no windows
  DisaggregatedConfig dc;
  dc.enabled = true;
  dc.num_shards = 4;
  ClusterSimulation cluster(2, cfg, RoutingPolicy::kLocal, dc);
  const Status s = cluster.LoadModel(ShardedModel());
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
}

TEST(ShardedCluster, RejectsFabricDropPlans) {
  // Per-transfer drop draws cannot be replicated across per-shard
  // injectors; the sharded path refuses rather than silently diverging.
  const HostSimConfig cfg = ShardedHostConfig();
  DisaggregatedConfig dc;
  dc.enabled = true;
  dc.num_shards = 2;
  ClusterSimulation cluster(2, cfg, RoutingPolicy::kLocal, dc);
  ASSERT_TRUE(cluster.LoadModel(ShardedModel()).ok());
  FaultPlan plan;
  plan.FabricDrop(At(Seconds(1)), At(Seconds(2)), 0.5);
  const Status s = cluster.sharded_runtime()->InstallFaultPlan(plan, 7);
  EXPECT_FALSE(s.ok());
  // The rejection names the workaround: drop experiments run single-loop.
  EXPECT_NE(s.message().find("num_shards=1"), std::string::npos) << s.ToString();
  // Deterministic kinds still install.
  FaultPlan ok_plan;
  ok_plan.FabricPartition(At(Seconds(1)), At(Seconds(2)));
  EXPECT_TRUE(cluster.sharded_runtime()->InstallFaultPlan(ok_plan, 7).ok());
}

// ---------------------------------------------------------------------------
// Self-healing layer under the sharded runtime.
// ---------------------------------------------------------------------------

/// The sharded profile with the self-healing layer armed. sub_block stays
/// false (inherited): the checksum layer verifies whole-block bounce fills
/// only. The large retry backoff makes replication copy-chunk retries
/// straddle the 2s error burst instead of exhausting inside it, so the
/// copy job deterministically survives to publish its route.
HostSimConfig HealingHostConfig() {
  HostSimConfig cfg = ShardedHostConfig();
  cfg.tuning.enable_checksums = true;
  cfg.tuning.enable_health_monitor = true;
  cfg.tuning.enable_replication = true;
  cfg.tuning.health_window = 8;
  cfg.tuning.health_probe_interval = 16;
  cfg.tuning.retry_backoff_base = Millis(300);
  return cfg;
}

/// One user table per SSD: the sick device owns exactly one extent, so the
/// heat-ranked single-loop picker and the sharded device shard's
/// (heat-blind, id-ordered) picker choose identical replication sets.
ModelConfig HealingModel() { return MakeTinyUniformModel(64, 2, 1, 4000); }

TEST(ShardedCluster, SelfHealingSerialLoadMatchesSingleLoop) {
  // ONE host: the single-loop path shares one fabric-service health monitor
  // across all hosts while the sharded path keeps per-slice monitors, so
  // health state only agrees mode-to-mode when a single host feeds it. The
  // 2s error burst drives device 0 sick, the replication manager copies its
  // extent to device 1 (copy retries outlast the burst), demand reads fail
  // over to the replica, and recovery probes eventually wash the primary
  // healthy — identically in both modes under serial load.
  //
  // Arrivals sit 2s apart (not the usual 500ms): a burst-hit read's full
  // retry + read-repair chain spans up to ~3 backoffs of 300ms, and serial
  // equality needs every chain to retire before the next arrival.
  const HostSimConfig cfg = HealingHostConfig();
  const ModelConfig model = HealingModel();
  FaultPlan plan;
  plan.ErrorBurst(At(Seconds(1)), At(Seconds(3)), /*probability=*/1.0,
                  /*device=*/0);
  const DisaggregatedRunReport single =
      RunCluster(1, cfg, RoutingPolicy::kLocal, 1, /*qps=*/0.5, kSerialQueries,
                 &plan, &model);
  const DisaggregatedRunReport sharded =
      RunCluster(1, cfg, RoutingPolicy::kLocal, 2, /*qps=*/0.5, kSerialQueries,
                 &plan, &model);
  // The healing layer actually engaged: the sick extent re-replicated and
  // demand reads served from the replica.
  EXPECT_GT(single.extents_replicated, 0u);
  EXPECT_GT(single.replica_reads, 0u);
  ExpectReportsEqual(single, sharded);
}

TEST(ShardedCluster, SelfHealingReportInvariantAcrossShardCounts) {
  // The same healing storm over two hosts: every num_shards >= 2 must agree
  // field-for-field, the healing counters included (K-invariance does not
  // need the single-loop oracle's one-host restriction).
  const HostSimConfig cfg = HealingHostConfig();
  const ModelConfig model = HealingModel();
  FaultPlan plan;
  plan.ErrorBurst(At(Seconds(1)), At(Seconds(3)), /*probability=*/1.0,
                  /*device=*/0);
  const DisaggregatedRunReport k2 =
      RunCluster(2, cfg, RoutingPolicy::kUserSticky, 2, kSerialQps,
                 kSerialQueries, &plan, &model);
  const DisaggregatedRunReport k4 =
      RunCluster(2, cfg, RoutingPolicy::kUserSticky, 4, kSerialQps,
                 kSerialQueries, &plan, &model);
  EXPECT_GT(k2.extents_replicated, 0u);
  ExpectReportsEqual(k2, k4);
}

TEST(ShardedCluster, NumShardsOneKeepsTheSingleLoopPath) {
  // num_shards = 1 must never construct the parallel runtime — it IS the
  // single-loop path, byte-identical by construction (the instant-fabric
  // byte-identity anchors in serving_test depend on this).
  const HostSimConfig cfg = ShardedHostConfig();
  DisaggregatedConfig dc;
  dc.enabled = true;
  dc.num_shards = 1;
  ClusterSimulation cluster(2, cfg, RoutingPolicy::kLocal, dc);
  EXPECT_EQ(cluster.sharded_runtime(), nullptr);
  EXPECT_NE(cluster.fabric_service(), nullptr);
}

}  // namespace
}  // namespace sdm
