// Tests for src/serving: host specs, inference engine semantics (Eq. 3
// latency hiding, inter-op parallelism), host simulation, fleet power math
// (Tables 8/9/10/11), cluster routing, multi-tenancy.
#include <gtest/gtest.h>

#include "dlrm/model_zoo.h"
#include "serving/cluster.h"
#include "serving/host.h"
#include "serving/power_model.h"

namespace sdm {
namespace {

// ---------------------------------------------------------------------------
// Helpers.
// ---------------------------------------------------------------------------

HostSimConfig SmallHostConfig(HostSpec host = MakeHwSS()) {
  HostSimConfig cfg;
  cfg.host = std::move(host);
  cfg.fm_capacity = 8 * kMiB;
  cfg.sm_backing_per_device = 16 * kMiB;
  cfg.tuning.row_cache.capacity = 0;  // auto-size
  cfg.workload.num_users = 2000;
  cfg.workload.user_zipf_alpha = 0.9;
  cfg.workload.user_index_churn = 0.05;
  cfg.workload.seed = 5;
  cfg.inference.max_concurrent_queries = 32;
  cfg.seed = 5;
  return cfg;
}

ModelConfig SmallModel() { return MakeTinyUniformModel(16, 4, 2, 4000); }

// ---------------------------------------------------------------------------
// Host specs (Table 7).
// ---------------------------------------------------------------------------

TEST(HostSpecs, Table7Shapes) {
  EXPECT_EQ(MakeHwL().cpu_sockets, 2);
  EXPECT_TRUE(MakeHwL().ssds.empty());
  EXPECT_EQ(MakeHwSS().ssds.size(), 2u);
  EXPECT_EQ(MakeHwSS().ssds[0].technology, Technology::kNandFlash);
  EXPECT_TRUE(MakeHwAN().accelerator);
  EXPECT_EQ(MakeHwAO().ssds[0].technology, Technology::kOptaneSsd);
  EXPECT_EQ(MakeHwFAO().ssds.size(), 9u);
}

TEST(HostSpecs, PowerOrdering) {
  // Table 8: HW-SS is 0.4 of HW-L.
  EXPECT_NEAR(MakeHwSS().power / MakeHwL().power, 0.4, 1e-9);
  // Table 9: HW-S is 0.25 of HW-AN.
  EXPECT_NEAR(MakeHwS().power / MakeHwAN().power, 0.25, 1e-9);
  // Table 11: the Optane complement adds ~1%.
  EXPECT_NEAR(MakeHwFAO().power / MakeHwF().power, 1.01, 1e-9);
}

// ---------------------------------------------------------------------------
// InferenceEngine via HostSimulation.
// ---------------------------------------------------------------------------

TEST(HostSim, LoadsAndServes) {
  HostSimulation sim(SmallHostConfig());
  ASSERT_TRUE(sim.LoadModel(SmallModel()).ok());
  const HostRunReport r = sim.Run(500, 300);
  EXPECT_EQ(r.queries_completed, 300u);
  EXPECT_GT(r.p50.nanos(), 0);
  EXPECT_GE(r.p99, r.p95);
  EXPECT_GE(r.p95, r.p50);
}

TEST(HostSim, HitRateRisesWithWarmth) {
  HostSimulation sim(SmallHostConfig());
  ASSERT_TRUE(sim.LoadModel(SmallModel()).ok());
  const HostRunReport cold = sim.Run(500, 300);
  sim.Warmup(3000);
  const HostRunReport warm = sim.Run(500, 300);
  EXPECT_GT(warm.row_cache_hit_rate, cold.row_cache_hit_rate);
  EXPECT_GT(warm.row_cache_hit_rate, 0.5);
}

TEST(HostSim, WarmCacheReducesSmIops) {
  HostSimulation sim(SmallHostConfig());
  ASSERT_TRUE(sim.LoadModel(SmallModel()).ok());
  const HostRunReport cold = sim.Run(500, 300);
  sim.Warmup(3000);
  const HostRunReport warm = sim.Run(500, 300);
  EXPECT_LT(warm.sm_iops, cold.sm_iops);
}

TEST(HostSim, AchievesOfferedLoadWhenUnderSla) {
  HostSimulation sim(SmallHostConfig());
  ASSERT_TRUE(sim.LoadModel(SmallModel()).ok());
  sim.Warmup(1000);
  const HostRunReport r = sim.Run(200, 1000);
  EXPECT_NEAR(r.achieved_qps, 200, 40);
}

TEST(HostSim, SubBlockReadsKeepAmplificationNearOne) {
  HostSimConfig cfg = SmallHostConfig();
  cfg.tuning.sub_block_reads = true;
  HostSimulation sim(cfg);
  ASSERT_TRUE(sim.LoadModel(SmallModel()).ok());
  const HostRunReport r = sim.Run(300, 500);
  EXPECT_LT(r.sm_read_amplification, 1.2);
}

TEST(HostSim, BlockReadsAmplify) {
  HostSimConfig cfg = SmallHostConfig();
  cfg.tuning.sub_block_reads = false;
  // Per-row block IO is the amplification worst case this test documents;
  // coalescing merges same-block rows and would hide it.
  cfg.tuning.coalesce_io = false;
  HostSimulation sim(cfg);
  ASSERT_TRUE(sim.LoadModel(SmallModel()).ok());
  const HostRunReport r = sim.Run(300, 500);
  // 24B rows (16 dim int8) against 4KB blocks.
  EXPECT_GT(r.sm_read_amplification, 50);
}

TEST(HostSim, UserPathHiddenBehindItemPath) {
  // Eq. 3/4: on an Optane host with a warm cache, the SM user-table time
  // stays under the batched item-side time, so SDM adds no end-to-end
  // latency. (On Nand this is exactly what breaks for M2 in §5.2.)
  HostSimConfig cfg = SmallHostConfig(MakeHwAO());
  cfg.workload.user_index_churn = 0.01;
  ModelConfig model = SmallModel();
  model.item_batch_size = 256;  // heavy item side
  HostSimulation sim(cfg);
  ASSERT_TRUE(sim.LoadModel(model).ok());
  sim.Warmup(4000);
  (void)sim.Run(100, 500);
  const auto& user = sim.engine().user_path_latency();
  const auto& item = sim.engine().item_path_latency();
  EXPECT_LT(user.ValueAtQuantile(0.5), item.ValueAtQuantile(0.5));
}

TEST(HostSim, InterOpParallelismCutsLatency) {
  // A.2: ~20% latency reduction from overlapping embedding operators.
  HostSimConfig serial_cfg = SmallHostConfig();
  serial_cfg.inference.inter_op_parallelism = false;
  HostSimConfig parallel_cfg = SmallHostConfig();
  parallel_cfg.inference.inter_op_parallelism = true;

  HostSimulation serial(serial_cfg);
  HostSimulation parallel(parallel_cfg);
  ASSERT_TRUE(serial.LoadModel(SmallModel()).ok());
  ASSERT_TRUE(parallel.LoadModel(SmallModel()).ok());
  serial.Warmup(1000);
  parallel.Warmup(1000);
  const HostRunReport rs = serial.Run(100, 500);
  const HostRunReport rp = parallel.Run(100, 500);
  EXPECT_LT(rp.p50.nanos(), rs.p50.nanos());
}

TEST(HostSim, AdmissionQueueBoundsConcurrency) {
  HostSimConfig cfg = SmallHostConfig();
  cfg.inference.max_concurrent_queries = 2;
  HostSimulation sim(cfg);
  ASSERT_TRUE(sim.LoadModel(SmallModel()).ok());
  // Overload: latency inflates because queries queue, but all complete.
  const HostRunReport r = sim.Run(100'000, 300);
  EXPECT_EQ(r.queries_completed, 300u);
  EXPECT_GT(r.p99.nanos(), r.p50.nanos());
}

TEST(HostSim, FindMaxQpsRespectsSla) {
  HostSimulation sim(SmallHostConfig());
  ASSERT_TRUE(sim.LoadModel(SmallModel()).ok());
  sim.Warmup(2000);
  const double qps = sim.FindMaxQps(Millis(20), /*use_p99=*/false, 400, 50, 20'000);
  EXPECT_GT(qps, 50);
  const HostRunReport check = sim.Run(qps * 0.9, 500);
  EXPECT_LE(check.p95.nanos(), Millis(20).nanos() * 2);
}

TEST(HostSim, OptaneSustainsHigherQpsThanNandAtSla) {
  // §5.2's core claim: under accelerated (high) QPS the user-embedding IO
  // stream saturates Nand long before Optane — Nand's max SLA-compliant
  // QPS collapses. Row cache off so the devices see the raw Eq. 8 IOPS.
  ModelConfig model = MakeTinyUniformModel(16, 8, 2, 4000);

  HostSimConfig nand_cfg = SmallHostConfig(MakeHwAN());
  nand_cfg.tuning.enable_row_cache = false;
  HostSimConfig optane_cfg = SmallHostConfig(MakeHwAO());
  optane_cfg.tuning.enable_row_cache = false;
  HostSimulation nand(nand_cfg);
  HostSimulation optane(optane_cfg);
  ASSERT_TRUE(nand.LoadModel(model).ok());
  ASSERT_TRUE(optane.LoadModel(model).ok());
  const double nand_qps = nand.FindMaxQps(Millis(2), false, 500, 20, 40'000);
  const double optane_qps = optane.FindMaxQps(Millis(2), false, 500, 20, 40'000);
  EXPECT_GT(optane_qps, 1.5 * nand_qps);
}

// ---------------------------------------------------------------------------
// Power model (Tables 8/9/10/11 arithmetic).
// ---------------------------------------------------------------------------

TEST(PowerModel, Table8Reproduction) {
  // HW-L: 240 QPS at power 1.0; HW-SS+SDM: 120 QPS at power 0.4; demand
  // 288000 QPS total (1200 HW-L hosts).
  FleetScenario hw_l{"HW-L", 288'000, 240, 1.0, 0, 0};
  FleetScenario hw_ss{"HW-SS + SDM", 288'000, 120, 0.4, 0, 0};
  const FleetEstimate a = EvaluateFleet(hw_l);
  const FleetEstimate b = EvaluateFleet(hw_ss);
  EXPECT_DOUBLE_EQ(a.main_hosts, 1200);
  EXPECT_DOUBLE_EQ(b.main_hosts, 2400);
  EXPECT_DOUBLE_EQ(a.total_power, 1200);
  EXPECT_DOUBLE_EQ(b.total_power, 960);
  EXPECT_NEAR(PowerSaving(a, b), 0.20, 1e-9);
}

TEST(PowerModel, Table9Reproduction) {
  const double total = 450.0 * 1500;  // 675K QPS demand
  // Scale-out: HW-AN at 450 QPS + 1 HW-S (0.25 power) per 5 mains.
  ScaleOutModel so;
  const FleetScenario scale_out = so.Fleet("HW-AN + ScaleOut", total, 450, 1.0, 0.25);
  // Nand SDM: QPS collapses (paper: 230); Optane SDM holds 450.
  FleetScenario nand{"HW-AN + SDM", total, 230, 1.0, 0, 0};
  FleetScenario optane{"HW-AO + SDM", total, 450, 1.0, 0, 0};
  const FleetEstimate e_so = EvaluateFleet(scale_out);
  const FleetEstimate e_nand = EvaluateFleet(nand);
  const FleetEstimate e_opt = EvaluateFleet(optane);
  EXPECT_DOUBLE_EQ(e_so.main_hosts, 1500);
  EXPECT_DOUBLE_EQ(e_so.helper_hosts, 300);
  EXPECT_DOUBLE_EQ(e_so.total_power, 1575);
  EXPECT_NEAR(e_nand.main_hosts, 2935, 1);  // paper rounds to 2978
  EXPECT_DOUBLE_EQ(e_opt.total_power, 1500);
  EXPECT_NEAR(PowerSaving(e_so, e_opt), 0.0476, 0.001);  // ~5%
  EXPECT_GT(e_nand.total_power, e_so.total_power);       // Nand loses
}

TEST(PowerModel, Table10SsdSizing) {
  // M3: 3150 QPS, 2000 user tables, PF 30, 80% hit rate -> ~36 MIOPS niner
  // Optane drives (after ~5% utilization headroom the paper implies).
  SsdSizingInput in;
  in.qps = 3150;
  in.user_tables = 2000;
  in.avg_pooling = 30;
  in.cache_hit_rate = 0.80;
  in.per_ssd_iops = 4e6;
  in.target_device_utilization = 1.0;
  const SsdSizingResult r = ComputeSsdRequirement(in);
  EXPECT_NEAR(r.required_iops / 1e6, 37.8, 0.1);  // paper rounds to 36
  EXPECT_EQ(r.ssds_needed, 10);  // ceil(37.8/4); paper's 36 -> 9
  // With the paper's rounded 36 MIOPS figure:
  in.qps = 3000;
  const SsdSizingResult r2 = ComputeSsdRequirement(in);
  EXPECT_EQ(r2.ssds_needed, 9);
}

TEST(PowerModel, Table11MultiTenancy) {
  const MultiTenancyEstimate e = EvaluateMultiTenancy(MultiTenancyScenario{});
  EXPECT_NEAR(e.fleet_power_ratio, 0.71, 0.01);   // paper: 0.71
  EXPECT_NEAR(e.perf_per_watt_gain, 0.41, 0.02);  // "up to 29% power saving"
}

TEST(PowerModel, FleetSummaryReadable) {
  const FleetEstimate e = EvaluateFleet({"x", 1000, 100, 1.0, 0, 0});
  EXPECT_NE(e.Summary().find("hosts=10"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Cluster routing (Fig. 4c).
// ---------------------------------------------------------------------------

TEST(Cluster, StickyRoutingIsDeterministic) {
  StickyRouter r(8, RoutingPolicy::kUserSticky, 1);
  for (UserId u = 0; u < 100; ++u) {
    EXPECT_EQ(r.Route(u), r.Route(u));
  }
}

TEST(Cluster, MeanHitRateIgnoresIdleHosts) {
  // Regression: the old report divided the hit-rate sum by hosts_.size(),
  // so idle hosts (empty user share) deflated the mean. One user -> the
  // sticky router sends ALL traffic to one host; the cluster mean must be
  // that host's hit rate, not hit/6.
  ModelConfig model = MakeTinyUniformModel(16, 3, 1, 8000);
  HostSimConfig cfg = SmallHostConfig();
  cfg.workload.num_users = 1;
  ClusterSimulation cluster(6, cfg, RoutingPolicy::kUserSticky);
  ASSERT_TRUE(cluster.LoadModel(model).ok());
  const ClusterRunReport r = cluster.Run(300, 2000);
  ASSERT_EQ(r.hosts.size(), 6u);
  size_t active = 0;
  size_t active_idx = 0;
  for (size_t i = 0; i < r.hosts.size(); ++i) {
    if (r.hosts[i].queries_served > 0) {
      ++active;
      active_idx = i;
    }
  }
  // Idle hosts are distinguishable: queries_served stays 0 on their
  // default-constructed report entries.
  ASSERT_EQ(active, 1u);
  EXPECT_EQ(r.hosts[active_idx].queries_served, 2000u);
  EXPECT_GT(r.hosts[active_idx].row_cache_hit_rate, 0.0);
  EXPECT_DOUBLE_EQ(r.mean_hit_rate, r.hosts[active_idx].row_cache_hit_rate);
}

TEST(Cluster, LocalRoutingSpreadsArrivalsRoundRobin) {
  ModelConfig model = MakeTinyUniformModel(16, 3, 1, 8000);
  ClusterSimulation cluster(3, SmallHostConfig(), RoutingPolicy::kLocal);
  ASSERT_TRUE(cluster.LoadModel(model).ok());
  const ClusterRunReport r = cluster.Run(300, 900);
  for (const auto& h : r.hosts) EXPECT_EQ(h.queries_served, 300u);
}

TEST(Cluster, StickyBeatsRandomOnHitRate) {
  ModelConfig model = MakeTinyUniformModel(16, 3, 1, 8000);
  HostSimConfig host_cfg = SmallHostConfig();
  host_cfg.workload.num_users = 4000;
  host_cfg.workload.user_index_churn = 0.02;

  ClusterSimulation sticky(4, host_cfg, RoutingPolicy::kUserSticky);
  ClusterSimulation random(4, host_cfg, RoutingPolicy::kRandom);
  ASSERT_TRUE(sticky.LoadModel(model).ok());
  ASSERT_TRUE(random.LoadModel(model).ok());
  const ClusterRunReport rs = sticky.Run(400, 4000);
  const ClusterRunReport rr = random.Run(400, 4000);
  EXPECT_GT(rs.mean_hit_rate, rr.mean_hit_rate);
}

// ---------------------------------------------------------------------------
// Multi-tenancy (§5.3).
// ---------------------------------------------------------------------------

TEST(MultiTenant, CoLocatesModelsAndReportsFm) {
  HostSimConfig base = SmallHostConfig(MakeHwFAO(2));
  base.fm_capacity = 24 * kMiB;          // host-level FM pool
  base.sm_backing_per_device = 32 * kMiB;
  MultiTenantHost host(base, 77);
  // Each tenant's user embeddings (~5-8 MiB on SM) would not fit in the
  // FM shares without SM — the §5.3 memory-capacity-bound setup.
  ASSERT_TRUE(host.AddTenant(MakeTinyUniformModel(64, 2, 1, 40'000), 4 * kMiB).ok());
  ASSERT_TRUE(host.AddTenant(MakeTinyUniformModel(64, 3, 1, 30'000), 4 * kMiB).ok());
  ASSERT_TRUE(host.AddTenant(MakeTinyUniformModel(64, 2, 1, 35'000), 4 * kMiB).ok());
  EXPECT_EQ(host.tenant_count(), 3u);
  const MultiTenantReport r = host.Run(100, 300);
  ASSERT_EQ(r.tenants.size(), 3u);
  for (const auto& t : r.tenants) {
    EXPECT_EQ(t.run.queries_completed, 300u);
    EXPECT_GT(t.sm_used, 0u);
  }
  // The whole point: the tenant set would NOT fit in FM without SM.
  EXPECT_FALSE(r.fits_in_fm);
  EXPECT_GT(r.fm_total, 0u);
}

TEST(ScaleOut, AddsNetworkLatencyToUserPath) {
  const ScaleOutModel so;
  EXPECT_GT(so.UserPathLatency().nanos(), so.network_rtt.nanos());
}

// ---------------------------------------------------------------------------
// Disaggregated SM: hosts sharing one fabric-attached device stack
// (src/fabric).
// ---------------------------------------------------------------------------

/// Capacity-bound profile (the multitenant bench's): block-granularity
/// reads, no row cache, widened merge window — hot blocks recur at the
/// device, which is the traffic cross-host sharing can absorb.
HostSimConfig DisaggHostConfig() {
  HostSimConfig cfg;
  cfg.host = MakeHwFAO(2);
  cfg.fm_capacity = 4 * kMiB;
  cfg.sm_backing_per_device = 32 * kMiB;
  cfg.workload.num_users = 2000;
  cfg.workload.seed = 11;
  cfg.seed = 11;
  cfg.tuning.sub_block_reads = false;
  cfg.tuning.enable_row_cache = false;
  cfg.tuning.max_batch_delay = Micros(200);
  cfg.inference.max_concurrent_queries = 32;
  return cfg;
}

ModelConfig DisaggModel() {
  ModelConfig model = MakeTinyUniformModel(64, 3, 1, 40'000);
  model.tables.back().num_rows = 4'000;  // item side stays FM-direct
  for (auto& t : model.tables) {
    if (t.role == TableRole::kUser) t.zipf_alpha = 1.1;
  }
  return model;
}

TEST(Disaggregated, CrossHostSingleFlightOverFabric) {
  HostSimConfig cfg = DisaggHostConfig();
  cfg.tuning.fabric_latency = Micros(5);
  DisaggregatedConfig dc;
  dc.enabled = true;
  ClusterSimulation cluster(2, cfg, RoutingPolicy::kUserSticky, dc);
  ASSERT_TRUE(cluster.disaggregated());
  ASSERT_TRUE(cluster.LoadModel(DisaggModel()).ok());
  const DisaggregatedRunReport r = cluster.RunDisaggregated(400, 1600);
  ASSERT_EQ(r.hosts.size(), 2u);
  uint64_t per_host_hits = 0;
  for (const auto& h : r.hosts) {
    EXPECT_GT(h.run.queries_served, 0u);
    EXPECT_GT(h.run.queries_completed, 0u);
    per_host_hits += h.share.cross_tenant_hits;
  }
  EXPECT_GT(r.sm_device_reads, 0u);
  // Both hosts serve the same model: replicas dedup to ONE extent set...
  EXPECT_LT(r.sm_unique_bytes, r.sm_logical_bytes);
  // ...and the hosts single-flight each other's hot blocks through the
  // shared fabric service (the per-HOST ledger records whose read it was).
  EXPECT_GT(r.cross_host_hits, 0u);
  EXPECT_EQ(per_host_hits, r.cross_host_hits);
  EXPECT_GT(r.cross_host_bytes_saved, 0u);
  // Every doorbell and every payload paid the fabric.
  EXPECT_GT(r.fabric.requests, 0u);
  EXPECT_EQ(r.fabric.responses, r.sm_device_reads);
  EXPECT_GT(r.fabric.response_bytes, 0u);
  EXPECT_FALSE(r.Summary().empty());
}

TEST(Disaggregated, FabricQueueingKnobGatesFifoSerialization) {
  // tuning.fabric_queueing flows into the shared FabricLink: with a finite
  // bandwidth, FIFO queueing makes concurrent transfers wait behind each
  // other; with the knob off they overlap and no queue delay ever accrues.
  for (const bool queueing : {true, false}) {
    HostSimConfig cfg = DisaggHostConfig();
    cfg.tuning.fabric_latency = Micros(5);
    cfg.tuning.fabric_bandwidth_bytes_per_sec = 1e8;  // 4KiB -> ~40us on the wire
    cfg.tuning.fabric_queueing = queueing;
    DisaggregatedConfig dc;
    dc.enabled = true;
    ClusterSimulation cluster(2, cfg, RoutingPolicy::kUserSticky, dc);
    ASSERT_TRUE(cluster.LoadModel(DisaggModel()).ok());
    const DisaggregatedRunReport r = cluster.RunDisaggregated(400, 1600);
    EXPECT_GT(r.fabric.responses, 0u);
    if (queueing) {
      EXPECT_GT(r.fabric.queue_time.nanos(), 0);
    } else {
      EXPECT_EQ(r.fabric.queue_time.nanos(), 0);
    }
  }
}

TEST(Disaggregated, InstantFabricByteIdenticalToMultiTenantRunShared) {
  // Acceptance anchor: a disaggregated cluster with a zero-latency fabric
  // and kLocal routing IS MultiTenantHost::RunShared with the same stores —
  // same seeds, same arrival interleaving, same shared device stack.
  const HostSimConfig cfg = DisaggHostConfig();  // fabric knobs zero: instant
  const ModelConfig model = DisaggModel();
  constexpr size_t kHosts = 3;

  DisaggregatedConfig dc;
  dc.enabled = true;
  ClusterSimulation cluster(kHosts, cfg, RoutingPolicy::kLocal, dc);
  ASSERT_TRUE(cluster.LoadModel(model).ok());

  MultiTenantHost mth(cfg, /*seed=*/cfg.seed, /*shared_device=*/true);
  for (size_t i = 0; i < kHosts; ++i) {
    ASSERT_TRUE(mth.AddTenant(model, cfg.fm_capacity, TenantClass::kForeground).ok());
  }

  const DisaggregatedRunReport rc = cluster.RunDisaggregated(kHosts * 150.0, kHosts * 400);
  const MultiTenantReport rm = mth.Run(150.0, 400);

  // Device reads and bus bytes match bit for bit, device by device.
  SharedDeviceService& cs = cluster.fabric_service()->device_service();
  SharedDeviceService* ms = mth.service();
  ASSERT_NE(ms, nullptr);
  ASSERT_EQ(cs.device_count(), ms->device_count());
  for (size_t d = 0; d < cs.device_count(); ++d) {
    EXPECT_EQ(cs.device(d).stats().CounterValue("reads"),
              ms->device(d).stats().CounterValue("reads"));
    EXPECT_EQ(cs.device(d).stats().CounterValue("bus_bytes"),
              ms->device(d).stats().CounterValue("bus_bytes"));
  }
  EXPECT_EQ(rc.sm_device_reads, rm.sm_device_reads);
  EXPECT_EQ(rc.io.singleflight_hits, rm.io.singleflight_hits);
  // Per-host serving matches per-tenant serving, latencies included.
  ASSERT_EQ(rc.hosts.size(), rm.tenants.size());
  for (size_t i = 0; i < kHosts; ++i) {
    EXPECT_EQ(rc.hosts[i].run.queries_served, rm.tenants[i].run.queries_served);
    EXPECT_EQ(rc.hosts[i].run.queries_completed, rm.tenants[i].run.queries_completed);
    EXPECT_EQ(rc.hosts[i].run.p99.nanos(), rm.tenants[i].run.p99.nanos());
    EXPECT_EQ(rc.hosts[i].share.cross_tenant_hits, rm.tenants[i].cross_tenant_hits);
  }
  // The instant fabric recorded the traffic it did NOT delay.
  EXPECT_EQ(rc.fabric.responses, rc.sm_device_reads);
  EXPECT_EQ(rc.fabric.queue_time.nanos(), 0);
}

TEST(Disaggregated, DisabledFabricMatchesIsolatedCluster) {
  // A DisaggregatedConfig with enabled=false must build the exact isolated
  // cluster the 3-arg constructor builds.
  ModelConfig model = MakeTinyUniformModel(16, 3, 1, 8000);
  HostSimConfig cfg = SmallHostConfig();
  ClusterSimulation plain(3, cfg, RoutingPolicy::kUserSticky);
  ClusterSimulation disabled(3, cfg, RoutingPolicy::kUserSticky, DisaggregatedConfig{});
  EXPECT_FALSE(disabled.disaggregated());
  ASSERT_TRUE(plain.LoadModel(model).ok());
  ASSERT_TRUE(disabled.LoadModel(model).ok());
  const ClusterRunReport a = plain.Run(300, 1500);
  const ClusterRunReport b = disabled.Run(300, 1500);
  EXPECT_DOUBLE_EQ(a.mean_hit_rate, b.mean_hit_rate);
  ASSERT_EQ(a.hosts.size(), b.hosts.size());
  for (size_t i = 0; i < a.hosts.size(); ++i) {
    EXPECT_EQ(a.hosts[i].queries_served, b.hosts[i].queries_served);
    EXPECT_EQ(a.hosts[i].queries_completed, b.hosts[i].queries_completed);
    EXPECT_EQ(a.hosts[i].p99.nanos(), b.hosts[i].p99.nanos());
  }
  for (size_t i = 0; i < plain.size(); ++i) {
    for (size_t d = 0; d < plain.host(i).store().sm_device_count(); ++d) {
      EXPECT_EQ(plain.host(i).store().sm_device(d).stats().CounterValue("reads"),
                disabled.host(i).store().sm_device(d).stats().CounterValue("reads"));
      EXPECT_EQ(plain.host(i).store().sm_device(d).stats().CounterValue("bus_bytes"),
                disabled.host(i).store().sm_device(d).stats().CounterValue("bus_bytes"));
    }
  }
}

// ---------------------------------------------------------------------------
// Report formatting pins (shared KvFormatter path).
// ---------------------------------------------------------------------------

TEST(ReportFormat, HostRunReportSummaryIsPinned) {
  // Exact-output pin for the KvFormatter-built summary line: a formatting
  // regression (reordered keys, drifted precision, lost separator) must
  // fail loudly, not silently reshuffle every bench log.
  HostRunReport r;
  r.queries_completed = 100;
  r.offered_qps = 100;
  r.achieved_qps = 98.4;
  r.p50 = Millis(1.5);
  r.p95 = Millis(3.25);
  r.p99 = Millis(7);
  r.row_cache_hit_rate = 0.915;
  r.pooled_hit_rate = 0.25;
  r.sm_iops = 1234.6;
  r.sm_read_amplification = 1.75;
  r.avg_cpu_per_query = Micros(42);
  r.singleflight_hits = 5;
  r.cross_request_merges = 3;
  r.batch_occupancy = 2.5;
  r.prefetch_issued = 10;
  r.prefetch_hit_rate = 0.5;
  r.prefetch_wasted_bytes = 8 * kKiB;
  r.io_errors = 1;
  r.io_retries = 2;
  r.reader_retries = 4;
  r.deadline_expired = 1;
  r.hedges_issued = 6;
  r.hedges_won = 2;
  r.queries_degraded = 1;
  r.rows_failed = 3;
  r.lookups_shed = 2;
  r.blocks_corrupt = 1;
  r.read_repairs = 1;
  r.replica_reads = 2;
  r.extents_replicated = 1;
  EXPECT_EQ(r.Summary(),
            "qps=98/100 p50=1.50ms p95=3.25ms p99=7.00ms hit=91.5% "
            "pooled=25.0% iops=1235 amp=1.75 cpu/q=42us sf=5 xmerge=3 "
            "occ=2.5 pf=10 pfhit=50.0% pfwaste=8KiB err=1 retry=2+4 ddl=1 "
            "hedge=2/6 deg=1 rowsf=3 shed=2 rot=1 rrd=1 rep=2 xrep=1");
}

TEST(ReportFormat, DisaggregatedRunReportSummaryIsPinned) {
  DisaggregatedRunReport r;
  r.hosts.resize(2);
  r.aggregate_qps = 512.3;
  r.mean_hit_rate = 0.805;
  r.sm_device_reads = 1000;
  r.io.singleflight_hits = 40;
  r.io.flushes = 10;
  r.io.device_reads = 20;
  r.io.prefetch_reads = 5;
  r.cross_host_hits = 7;
  r.sm_logical_bytes = 24 * kMiB;
  r.sm_unique_bytes = 16 * kMiB;
  r.fabric.response_bytes = 12 * kMiB / 10;  // 1.2 MiB
  r.fabric.queue_time = Micros(150);
  r.fabric.dropped = 2;
  r.fabric.partition_deferred = 3;
  r.io.deadline_expired = 1;
  r.io.hedges_issued = 4;
  r.io.hedges_won = 1;
  r.queries_degraded = 2;
  r.rows_failed = 5;
  r.blocks_corrupt = 1;
  r.read_repairs = 1;
  r.replica_reads = 2;
  r.extents_replicated = 1;
  EXPECT_EQ(r.Summary(),
            "hosts=2 qps=512 hit=80.5% reads=1000 sf=40 xhost=7 dedup=8.0MiB "
            "fabric=1.2MiB(resp) fq=150us occ=2.5 drop=2 part=3 ddl=1 "
            "hedge=1/4 deg=2 rowsf=5 rot=1 rrd=1 rep=2 xrep=1");
}

}  // namespace
}  // namespace sdm
