// Self-healing storage tests (src/fault + src/core):
//  - per-block checksums turn silent bit rot into detectable (transient)
//    read errors, and are byte-inert on fault-free runs;
//  - read-repair serves checksum-failed reads from an extent replica
//    instead of zero-filling;
//  - the ReplicationManager re-replicates a sick endpoint's extents onto a
//    healthy device and lookups route there while the endpoint is sick;
//  - probe-driven recovery returns traffic to the primary;
//  - chronically degraded tables migrate to FM at the next model update,
//    and the placement overload that drives it.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/lookup_engine.h"
#include "core/model_loader.h"
#include "core/model_updater.h"
#include "core/placement.h"
#include "core/sdm_store.h"
#include "dlrm/model_zoo.h"
#include "fault/fault_injector.h"
#include "fault/replication_manager.h"
#include "serving/host.h"

namespace sdm {
namespace {

/// Absolute virtual time `d` past the epoch (loops start at SimTime(0)).
constexpr SimTime At(SimDuration d) { return SimTime(0) + d; }

// ---------------------------------------------------------------------------
// Host-level harness (the fault_injection_test profile: 2 Optane devices).
// ---------------------------------------------------------------------------

HostSimConfig HealHostConfig() {
  HostSimConfig cfg;
  cfg.host = MakeHwAO();
  cfg.fm_capacity = 8 * kMiB;
  cfg.sm_backing_per_device = 16 * kMiB;
  cfg.workload.num_users = 1000;
  cfg.workload.seed = 5;
  cfg.seed = 5;
  return cfg;
}

ModelConfig HealModel() { return MakeTinyUniformModel(16, 2, 1, 2000); }

void ExpectReportsIdentical(const HostRunReport& a, const HostRunReport& b) {
  EXPECT_EQ(a.queries_completed, b.queries_completed);
  EXPECT_EQ(a.queries_served, b.queries_served);
  EXPECT_EQ(a.p50.nanos(), b.p50.nanos());
  EXPECT_EQ(a.p99.nanos(), b.p99.nanos());
  EXPECT_EQ(a.mean.nanos(), b.mean.nanos());
  EXPECT_EQ(a.io_errors, b.io_errors);
  EXPECT_EQ(a.io_retries, b.io_retries);
  EXPECT_EQ(a.reader_retries, b.reader_retries);
  EXPECT_EQ(a.rows_failed, b.rows_failed);
  EXPECT_EQ(a.Summary(), b.Summary());
}

/// One full host run with `tuning` layered onto the base profile and an
/// optional fault plan installed across the device stack.
HostRunReport RunHost(const TuningConfig& tuning, const FaultPlan* plan,
                      uint64_t seed = 5) {
  HostSimConfig cfg = HealHostConfig();
  cfg.tuning = tuning;
  HostSimulation sim(cfg);
  EXPECT_TRUE(sim.LoadModel(HealModel()).ok());
  std::unique_ptr<FaultInjector> inj;
  if (plan != nullptr) {
    inj = std::make_unique<FaultInjector>(*plan, &sim.loop(), seed);
    sim.store().device_service().InstallFaultInjector(inj.get());
  }
  return sim.Run(200, 400);
}

// ---------------------------------------------------------------------------
// Checksums: byte-inert when fault-free, detection under bit rot.
// ---------------------------------------------------------------------------

TEST(SelfHealing, HealingKnobsAreByteInertOnFaultFreeRuns) {
  // The full self-healing stack enabled — checksums stamped and replication
  // armed — must not move a single reported byte on a healthy run: no
  // endpoint ever sickens, no checksum ever misses.
  TuningConfig off;
  TuningConfig on;
  on.enable_checksums = true;
  on.enable_health_monitor = true;
  on.enable_replication = true;
  const HostRunReport a = RunHost(off, nullptr);
  const HostRunReport b = RunHost(on, nullptr);
  ExpectReportsIdentical(a, b);
  EXPECT_EQ(b.blocks_corrupt, 0u);
  EXPECT_EQ(b.read_repairs, 0u);
  EXPECT_EQ(b.replica_reads, 0u);
  EXPECT_EQ(b.extents_replicated, 0u);
}

TEST(SelfHealing, BitRotIsSilentWithoutChecksums) {
  FaultPlan plan;
  plan.BitRot(At(Millis(200)), At(Seconds(5)), /*probability=*/1.0);
  TuningConfig tuning;  // checksums off
  tuning.sub_block_reads = false;  // block-aligned reads (the checksummed unit)
  const HostRunReport r = RunHost(tuning, &plan);
  // Every row still "reads" fine — the corruption sails through undetected.
  EXPECT_EQ(r.blocks_corrupt, 0u);
  EXPECT_EQ(r.io_errors, 0u);
  EXPECT_EQ(r.rows_failed, 0u);
  EXPECT_EQ(r.queries_completed, r.queries_served);
}

TEST(SelfHealing, ChecksumsTurnBitRotIntoDegradedRows) {
  FaultPlan plan;
  plan.BitRot(At(Millis(200)), At(Seconds(5)), /*probability=*/1.0);
  TuningConfig tuning;
  tuning.enable_checksums = true;
  // Checksums verify whole 4KB blocks at bounce-buffer fill; sub-block SGL
  // reads never materialize a full block and sail past them (silent — same
  // as checksums off). Run the checksummed path.
  tuning.sub_block_reads = false;
  const HostRunReport r = RunHost(tuning, &plan);
  // Detection: corrupt blocks counted, reads failed, retries spent (the
  // mismatch is a TRANSIENT kDataLoss — a redraw could heal a burst)...
  EXPECT_GT(r.blocks_corrupt, 0u);
  EXPECT_GT(r.io_errors, 0u);
  EXPECT_GT(r.io_retries, 0u);
  // ...but with no replica anywhere, exhausted reads degrade to zero-fill.
  EXPECT_GT(r.rows_failed, 0u);
  EXPECT_GT(r.queries_degraded, 0u);
  EXPECT_EQ(r.read_repairs, 0u);
}

// ---------------------------------------------------------------------------
// Read-repair from a replica.
// ---------------------------------------------------------------------------

TEST(SelfHealing, ReadRepairRescuesEveryWouldBeZeroFilledRow) {
  // Device 0 rots EVERY read for the whole run. A replica of each device-0
  // extent is staged on device 1 up front (what the ReplicationManager
  // would have produced): terminally-failing reads must repair from it
  // instead of zero-filling.
  HostSimConfig cfg = HealHostConfig();
  cfg.tuning.enable_checksums = true;
  cfg.tuning.sub_block_reads = false;
  HostSimulation sim(cfg);
  ASSERT_TRUE(sim.LoadModel(HealModel()).ok());

  SharedDeviceService& svc = sim.store().device_service();
  ASSERT_GE(svc.device_count(), 2u);
  size_t staged = 0;
  for (size_t i = 0; i < 3; ++i) {  // 2 user tables + 1 item table
    const TableRuntime& rt = sim.store().table(MakeTableId(i));
    if (rt.tier != MemoryTier::kSm || rt.sm_device != 0) continue;
    const auto span = svc.ExtentInfoFor(rt.extent_id);
    ASSERT_TRUE(span.has_value());
    const auto loc = svc.AllocateReplica(rt.extent_id, /*target=*/1);
    ASSERT_TRUE(loc.ok()) << loc.status().ToString();
    ASSERT_TRUE(svc.device(1)
                    .Write(loc.value().offset,
                           svc.device(0).backing().subspan(span->offset, span->size))
                    .ok());
    svc.AddReplicaRoute(rt.extent_id, loc.value());
    ++staged;
  }
  ASSERT_GT(staged, 0u);

  FaultPlan plan;
  plan.BitRot(At(SimDuration(0)), At(Seconds(10'000)), /*probability=*/1.0,
              /*device=*/0);
  FaultInjector inj(plan, &sim.loop(), /*seed=*/5);
  svc.InstallFaultInjector(&inj);

  const HostRunReport r = sim.Run(200, 400);
  EXPECT_GT(r.blocks_corrupt, 0u);
  EXPECT_GT(r.read_repairs, 0u);
  // The rescue is total: every row that would have zero-filled was served
  // from the replica instead.
  EXPECT_EQ(r.rows_failed, 0u);
  EXPECT_EQ(r.queries_degraded, 0u);
  EXPECT_EQ(r.queries_completed, r.queries_served);
}

// ---------------------------------------------------------------------------
// Re-replication off a sick endpoint + probe-driven recovery.
// ---------------------------------------------------------------------------

TEST(SelfHealing, SickEndpointReplicatesRoutesAndRecovers) {
  HostSimConfig cfg = HealHostConfig();
  cfg.tuning.enable_checksums = true;
  cfg.tuning.enable_health_monitor = true;
  // A wide window and sparse probes keep the endpoint condemned long
  // enough for the background copy to publish while traffic still needs
  // the replica (washing 32 errors below 50% takes ~17 probe successes).
  cfg.tuning.health_window = 32;
  cfg.tuning.health_probe_interval = 16;
  cfg.tuning.enable_replication = true;
  HostSimulation sim(cfg);
  ASSERT_TRUE(sim.LoadModel(HealModel()).ok());

  SharedDeviceService& svc = sim.store().device_service();
  ReplicationManager* repl = svc.replication();
  ASSERT_NE(repl, nullptr);
  ASSERT_EQ(repl->extents_replicated(), 0u);

  // Simulate the tail of a fault episode: the monitor has just condemned
  // endpoint 0 (the device itself reads fine again — e.g. a controller
  // reset behind a past error burst).
  for (int i = 0; i < 32; ++i) svc.health().Record(0, false);
  ASSERT_TRUE(svc.health().Sick(0));

  const HostRunReport r = sim.Run(200, 2000);
  // The sick transition drove a background copy of device 0's extents onto
  // the healthy peer...
  EXPECT_GT(repl->extents_replicated(), 0u);
  EXPECT_EQ(repl->extents_replicated(), r.extents_replicated);
  EXPECT_GT(repl->bytes_copied(), 0u);
  // ...demand reads routed to the replica while the endpoint was sick...
  EXPECT_GT(r.replica_reads, 0u);
  // ...and probe successes washed the endpoint healthy again (the device
  // was never actually broken), so the run ends fully recovered.
  EXPECT_FALSE(svc.health().Sick(0));
  EXPECT_EQ(r.queries_completed, r.queries_served);
}

/// One sick-endpoint episode (the harness of the test above) under `tuning`'s
/// replication knobs; reports the copy counters and how many primary extents
/// endpoint 0 actually held (the replication candidate pool).
struct ReplicationEpisode {
  uint64_t extents_replicated = 0;
  uint64_t extents_abandoned = 0;
  uint64_t bytes_copied = 0;
  size_t extents_on_sick_device = 0;
};

ReplicationEpisode RunSickEndpointEpisode(const TuningConfig& knobs) {
  HostSimConfig cfg = HealHostConfig();
  cfg.tuning = knobs;
  cfg.tuning.enable_checksums = true;
  cfg.tuning.enable_health_monitor = true;
  cfg.tuning.health_window = 32;
  cfg.tuning.health_probe_interval = 16;
  cfg.tuning.enable_replication = true;
  HostSimulation sim(cfg);
  EXPECT_TRUE(sim.LoadModel(HealModel()).ok());

  SharedDeviceService& svc = sim.store().device_service();
  ReplicationEpisode ep;
  for (size_t i = 0; i < 3; ++i) {  // 2 user tables + 1 item table
    const TableRuntime& rt = sim.store().table(MakeTableId(i));
    if (rt.tier == MemoryTier::kSm && rt.sm_device == 0) ++ep.extents_on_sick_device;
  }
  for (int i = 0; i < 32; ++i) svc.health().Record(0, false);
  EXPECT_TRUE(svc.health().Sick(0));

  sim.Run(200, 2000);
  ReplicationManager* repl = svc.replication();
  EXPECT_NE(repl, nullptr);
  ep.extents_replicated = repl->extents_replicated();
  ep.extents_abandoned = repl->extents_abandoned();
  ep.bytes_copied = repl->bytes_copied();
  return ep;
}

TEST(SelfHealing, ReplicationHotExtentsKnobCapsExtentsPerTransition) {
  TuningConfig one;
  one.replication_hot_extents = 1;
  TuningConfig many;
  many.replication_hot_extents = 8;
  const ReplicationEpisode capped = RunSickEndpointEpisode(one);
  const ReplicationEpisode open = RunSickEndpointEpisode(many);
  // The cap binds: exactly one extent copied per transition regardless of
  // how many the sick endpoint held...
  ASSERT_GE(capped.extents_on_sick_device, 1u);
  EXPECT_EQ(capped.extents_replicated, 1u);
  // ...and with the cap above the pool size, every primary extent moves.
  EXPECT_EQ(open.extents_replicated,
            static_cast<uint64_t>(open.extents_on_sick_device));
}

TEST(SelfHealing, ReplicationByteBudgetKnobSkipsOversizedExtents) {
  // Each tiny-model extent is ~10s of KiB; a one-block budget admits none
  // of them, so the sick transition replicates nothing at all.
  TuningConfig starved;
  starved.replication_chunk_bytes = 4 * kKiB;
  starved.replication_byte_budget = 4 * kKiB;
  const ReplicationEpisode ep = RunSickEndpointEpisode(starved);
  ASSERT_GE(ep.extents_on_sick_device, 1u);
  EXPECT_EQ(ep.extents_replicated, 0u);
  EXPECT_EQ(ep.bytes_copied, 0u);
}

TEST(SelfHealing, ReplicationChunkBytesKnobIsInertOnCopiedBytes) {
  // Chunking only slices the background staging reads; the bytes that land
  // on the replica are the extents themselves either way.
  TuningConfig small_chunks;
  small_chunks.replication_chunk_bytes = 4 * kKiB;
  TuningConfig big_chunks;
  big_chunks.replication_chunk_bytes = 256 * kKiB;
  const ReplicationEpisode a = RunSickEndpointEpisode(small_chunks);
  const ReplicationEpisode b = RunSickEndpointEpisode(big_chunks);
  EXPECT_GT(a.bytes_copied, 0u);
  EXPECT_EQ(a.bytes_copied, b.bytes_copied);
  EXPECT_EQ(a.extents_replicated, b.extents_replicated);
}

// ---------------------------------------------------------------------------
// Degraded-row-aware placement: feedback into ComputePlacement and the
// ModelUpdater's migration pass.
// ---------------------------------------------------------------------------

TuningConfig MigrationTuning() {
  TuningConfig t;
  t.degraded_placement_feedback = true;
  // FM headroom for the migrated table: no row cache eating the slack.
  t.enable_row_cache = false;
  t.row_cache.capacity = 0;
  return t;
}

struct LoadedStore {
  EventLoop loop;
  std::unique_ptr<SdmStore> store;
  ModelConfig model;
};

std::unique_ptr<LoadedStore> MakeLoadedStore(TuningConfig tuning) {
  auto ls = std::make_unique<LoadedStore>();
  ls->model = MakeTinyUniformModel(16, 2, 1, 2000);
  SdmStoreConfig cfg;
  cfg.fm_capacity = 8 * kMiB;
  cfg.sm_specs = {MakeOptaneSsdSpec()};
  cfg.sm_backing_bytes = {16 * kMiB};
  cfg.tuning = std::move(tuning);
  ls->store = std::make_unique<SdmStore>(cfg, &ls->loop);
  EXPECT_TRUE(ModelLoader::Load(ls->model, {}, ls->store.get()).ok());
  return ls;
}

/// Runs one lookup synchronously; returns the pooled vector.
std::vector<float> PooledLookup(LoadedStore& ls, LookupEngine& engine, TableId table,
                                std::vector<RowIndex> indices) {
  std::vector<float> pooled;
  bool done = false;
  LookupRequest req;
  req.table = table;
  req.indices = std::move(indices);
  req.mode = PoolingMode::kSum;
  engine.Lookup(std::move(req),
                [&](Status s, std::vector<float> out, const LookupTrace&) {
                  EXPECT_TRUE(s.ok()) << s.ToString();
                  pooled = std::move(out);
                  done = true;
                });
  ls.loop.RunUntilIdle();
  EXPECT_TRUE(done);
  return pooled;
}

TEST(DegradedPlacement, UpdaterMigratesChronicallyDegradedTableToFm) {
  auto ls = MakeLoadedStore(MigrationTuning());
  const TableId victim = MakeTableId(0);
  ASSERT_EQ(ls->store->table(victim).tier, MemoryTier::kSm);

  // Last generation zero-filled 100 rows out of this table (>= the
  // degraded_rows_min floor of 64); a neighbor stayed under the floor.
  ls->store->RecordTableDegradedRows(victim, 100);
  ls->store->RecordTableDegradedRows(MakeTableId(1), 10);

  ModelUpdater updater(ls->store.get());
  UpdateOptions opts;
  opts.row_fraction = 0.1;
  const auto report = updater.Update(opts);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report.value().tables_migrated, 1u);
  EXPECT_EQ(ls->store->table(victim).tier, MemoryTier::kFm);
  EXPECT_EQ(ls->store->table(MakeTableId(1)).tier, MemoryTier::kSm);

  // The migrated copy serves the exact same bytes from FM.
  LookupEngine engine(ls->store.get());
  const std::vector<RowIndex> indices = {11, 22, 33};
  const auto pooled = PooledLookup(*ls, engine, victim, indices);
  const TableConfig& tc = ls->model.tables[0];
  const uint64_t seed = LoaderOptions{}.seed ^ (0xabcdef12345678ULL * 1);
  const auto image = EmbeddingTableImage::GenerateRandom(tc, seed);
  std::vector<float> expected(tc.dim, 0.0f);
  for (const RowIndex idx : indices) {
    const auto row = image.DequantizedRow(idx);
    for (size_t i = 0; i < expected.size(); ++i) expected[i] += row[i];
  }
  ASSERT_EQ(pooled.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) EXPECT_NEAR(pooled[i], expected[i], 1e-4f);

  // A second refresh finds nothing left to migrate.
  const auto again = updater.Update(opts);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().tables_migrated, 0u);
}

TEST(DegradedPlacement, FeedbackOffLeavesDegradedTablesOnSm) {
  TuningConfig t = MigrationTuning();
  t.degraded_placement_feedback = false;
  auto ls = MakeLoadedStore(t);
  ls->store->RecordTableDegradedRows(MakeTableId(0), 1000);
  ModelUpdater updater(ls->store.get());
  UpdateOptions opts;
  opts.row_fraction = 0.1;
  const auto report = updater.Update(opts);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().tables_migrated, 0u);
  EXPECT_EQ(ls->store->table(MakeTableId(0)).tier, MemoryTier::kSm);
}

TEST(DegradedPlacement, PlacementOverloadForcesDegradedTablesOntoFm) {
  const ModelConfig model = MakeTinyUniformModel(16, 2, 1, 2000);
  TuningConfig tuning;
  const auto base = ComputePlacement(model, tuning);
  ASSERT_TRUE(base.ok());
  ASSERT_EQ(base.value().For(MakeTableId(0)).tier, MemoryTier::kSm);

  const auto healed =
      ComputePlacement(model, tuning, /*degraded_tables=*/{MakeTableId(0)});
  ASSERT_TRUE(healed.ok());
  const TablePlacement& forced = healed.value().For(MakeTableId(0));
  EXPECT_EQ(forced.tier, MemoryTier::kFm);
  EXPECT_FALSE(forced.cache_enabled);
  EXPECT_NE(forced.reason.find("degraded"), std::string::npos);
  // The byte ledgers moved with the table.
  EXPECT_GT(healed.value().fm_direct_bytes, base.value().fm_direct_bytes);
  EXPECT_LT(healed.value().sm_bytes, base.value().sm_bytes);
  // Untouched tables keep their base decision.
  EXPECT_EQ(healed.value().For(MakeTableId(1)).tier,
            base.value().For(MakeTableId(1)).tier);
}

}  // namespace
}  // namespace sdm
