// Tests for src/device: Table 1 specs, loaded-latency model, simulated NVMe
// device (block + sub-block reads, read amplification, wear), DRAM device.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "common/event_loop.h"
#include "device/device_spec.h"
#include "device/dram_device.h"
#include "device/endurance.h"
#include "device/latency_model.h"
#include "device/nvme_device.h"

namespace sdm {
namespace {

// ---------------------------------------------------------------------------
// DeviceSpec (Table 1).
// ---------------------------------------------------------------------------

TEST(DeviceSpec, Table1Ordering) {
  const auto nand = MakeNandFlashSpec();
  const auto optane = MakeOptaneSsdSpec();
  const auto zssd = MakeZssdSpec();
  const auto dimm = MakeDimmOptaneSpec();
  const auto cxl = MakeCxlOptaneSpec();

  // IOPS: nand < zssd < optane < cxl (Table 1 column 2).
  EXPECT_LT(nand.max_read_iops, zssd.max_read_iops);
  EXPECT_LT(zssd.max_read_iops, optane.max_read_iops);
  EXPECT_LT(optane.max_read_iops, cxl.max_read_iops);

  // Latency: dimm < cxl < optane < zssd <= nand.
  EXPECT_LT(dimm.base_read_latency, cxl.base_read_latency);
  EXPECT_LT(cxl.base_read_latency, optane.base_read_latency);
  EXPECT_LT(optane.base_read_latency, zssd.base_read_latency);
  EXPECT_LE(zssd.base_read_latency, nand.base_read_latency);

  // Cost per GB: everything cheaper than DRAM; nand cheapest.
  EXPECT_LT(nand.cost_per_gb_rel_dram, optane.cost_per_gb_rel_dram);
  EXPECT_LT(optane.cost_per_gb_rel_dram, 1.0);

  // Endurance: optane >> nand.
  EXPECT_GT(optane.endurance_dwpd, nand.endurance_dwpd);

  // Access granularity: optane sub-4K, nand 4K.
  EXPECT_EQ(nand.access_granularity, kBlockSize);
  EXPECT_LT(optane.access_granularity, kBlockSize);
}

TEST(DeviceSpec, Table1HasFiveRows) {
  const auto specs = Table1Specs();
  ASSERT_EQ(specs.size(), 5u);
  EXPECT_EQ(specs[0].technology, Technology::kNandFlash);
  EXPECT_EQ(specs[1].technology, Technology::kOptaneSsd);
}

TEST(DeviceSpec, DescribeMentionsTechnology) {
  EXPECT_NE(MakeNandFlashSpec().Describe().find("Nand"), std::string::npos);
  EXPECT_NE(MakeOptaneSsdSpec().Describe().find("Optane"), std::string::npos);
}

// ---------------------------------------------------------------------------
// LatencyModel.
// ---------------------------------------------------------------------------

TEST(LatencyModel, UnloadedLatencyNearBase) {
  const auto spec = MakeOptaneSsdSpec();
  LatencyModel m(spec, 1);
  const SimTime done = m.CompleteRead(SimTime(0), 512);
  // One IO on an idle device ~ base latency (+ tiny bus time).
  EXPECT_GE(done.nanos(), spec.base_read_latency.nanos() * 0.5);
  EXPECT_LE(done.nanos(), spec.base_read_latency.nanos() * 2.5);
}

TEST(LatencyModel, LatencyGrowsWithLoad) {
  const auto spec = MakeNandFlashSpec();
  // Offered >> capacity: queueing delay must accumulate.
  LatencyModel m(spec, 2);
  SimDuration first;
  SimDuration last;
  for (int i = 0; i < 2000; ++i) {
    const SimTime now(0);  // all arrive at once
    const SimTime done = m.CompleteRead(now, 4096);
    if (i == 0) first = done - now;
    last = done - now;
  }
  EXPECT_GT(last.nanos(), first.nanos() * 5);
}

TEST(LatencyModel, ThroughputCapMatchesSpec) {
  const auto spec = MakeOptaneSsdSpec();
  LatencyModel m(spec, 3);
  // Saturate: N IOs at t=0; the last completion time bounds throughput.
  const int n = 100'000;
  SimTime last(0);
  for (int i = 0; i < n; ++i) last = std::max(last, m.CompleteRead(SimTime(0), 512));
  const double achieved_iops = n / last.seconds();
  EXPECT_NEAR(achieved_iops, spec.max_read_iops, spec.max_read_iops * 0.15);
}

TEST(LatencyModel, OptaneFasterThanNandUnderLoad) {
  const auto nand_spec = MakeNandFlashSpec();
  const auto optane_spec = MakeOptaneSsdSpec();
  LatencyModel nand(nand_spec, 4);
  LatencyModel optane(optane_spec, 4);
  // Same moderate offered load (200K IOPS for 10ms = 2000 IOs).
  SimDuration nand_total;
  SimDuration optane_total;
  for (int i = 0; i < 2000; ++i) {
    const SimTime now(i * 5000);  // 5us spacing = 200K IOPS
    nand_total += nand.CompleteRead(now, 4096) - now;
    optane_total += optane.CompleteRead(now, 512) - now;
  }
  EXPECT_LT(optane_total.nanos(), nand_total.nanos() / 3);
}

TEST(LatencyModel, QueueDelayEstimateNonNegative) {
  LatencyModel m(MakeNandFlashSpec(), 5);
  EXPECT_EQ(m.EstimatedQueueDelay(SimTime(0)).nanos(), 0);
  for (int i = 0; i < 500; ++i) (void)m.CompleteRead(SimTime(0), 4096);
  EXPECT_GT(m.EstimatedQueueDelay(SimTime(0)).nanos(), 0);
  EXPECT_GT(m.InFlight(SimTime(0)), 0);
}

// ---------------------------------------------------------------------------
// WearTracker.
// ---------------------------------------------------------------------------

TEST(Wear, DriveWritesAccumulate) {
  WearTracker w(1000, 1.0);
  w.RecordWrite(500);
  EXPECT_DOUBLE_EQ(w.DriveWrites(), 0.5);
  w.RecordWrite(1500);
  EXPECT_DOUBLE_EQ(w.DriveWrites(), 2.0);
}

TEST(Wear, SustainsIntervalWithinBudget) {
  // 1 DWPD on a 1TB drive; 100GB model => 10 updates/day max => >=144min.
  WearTracker w(1000 * kGiB, 1.0);
  EXPECT_TRUE(w.SustainsUpdateInterval(100 * kGiB, 144.0));
  EXPECT_FALSE(w.SustainsUpdateInterval(100 * kGiB, 100.0));
  EXPECT_NEAR(w.MinUpdateIntervalMinutes(100 * kGiB), 144.0, 0.01);
}

TEST(Wear, UnlimitedEnduranceAlwaysSustains) {
  WearTracker w(1000, 0.0);
  EXPECT_TRUE(w.SustainsUpdateInterval(1 << 30, 0.001));
  EXPECT_DOUBLE_EQ(w.MinUpdateIntervalMinutes(1 << 30), 0.0);
}

TEST(Wear, PaperFormulaMatchesHandComputation) {
  // 2TB nand at 5 DWPD serving a 143GB model: interval ~ 0.0143 days.
  WearTracker w(2000 * kGiB, 5.0);
  EXPECT_NEAR(w.UpdateIntervalPaperFormulaDays(143 * kGiB), 143.0 / (5 * 2000), 1e-6);
}

TEST(Wear, OptaneAllowsMoreFrequentUpdatesThanNand) {
  const auto nand = MakeNandFlashSpec();
  const auto optane = MakeOptaneSsdSpec();
  WearTracker wn(nand.capacity, nand.endurance_dwpd);
  WearTracker wo(optane.capacity, optane.endurance_dwpd);
  const Bytes model = 100 * kGiB;
  EXPECT_GT(wo.dwpd(), wn.dwpd());
  // Per-GB endurance: optane's 100 DWPD on 400GB still beats nand's 5 DWPD
  // on 2TB for update frequency.
  EXPECT_LT(wo.MinUpdateIntervalMinutes(model), wn.MinUpdateIntervalMinutes(model));
}

// ---------------------------------------------------------------------------
// NvmeDevice.
// ---------------------------------------------------------------------------

class NvmeDeviceTest : public ::testing::Test {
 protected:
  NvmeDeviceTest() : dev_(MakeOptaneSsdSpec(), 1 * kMiB, &loop_, 7) {
    // Deterministic content: byte i = i & 0xFF.
    std::vector<uint8_t> data(1 * kMiB);
    for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<uint8_t>(i);
    EXPECT_TRUE(dev_.Write(0, data).ok());
  }

  EventLoop loop_;
  NvmeDevice dev_;
};

TEST_F(NvmeDeviceTest, BusBytesBlockMode) {
  EXPECT_EQ(NvmeDevice::BusBytes(0, 128, false), kBlockSize);
  EXPECT_EQ(NvmeDevice::BusBytes(4090, 10, false), 2 * kBlockSize);
  EXPECT_EQ(NvmeDevice::BusBytes(kBlockSize, kBlockSize, false), kBlockSize);
  EXPECT_EQ(NvmeDevice::BusBytes(0, 0, false), 0u);
}

TEST_F(NvmeDeviceTest, BusBytesSubBlockMode) {
  EXPECT_EQ(NvmeDevice::BusBytes(0, 128, true), 128u);
  EXPECT_EQ(NvmeDevice::BusBytes(2, 4, true), 8u);   // dword-aligned window
  EXPECT_EQ(NvmeDevice::BusBytes(0, 1, true), 4u);
  EXPECT_EQ(NvmeDevice::BusBytes(3, 6, true), 12u);  // [0,12) covers [3,9)
}

TEST_F(NvmeDeviceTest, SubBlockReadReturnsExactBytes) {
  std::vector<uint8_t> dest(128);
  bool done = false;
  NvmeDevice::ReadRequest req;
  req.offset = 512;
  req.length = 128;
  req.sub_block = true;
  req.dest = dest;
  req.on_complete = [&](Status s, SimDuration lat) {
    EXPECT_TRUE(s.ok()) << s.ToString();
    EXPECT_GT(lat.nanos(), 0);
    done = true;
  };
  dev_.SubmitRead(std::move(req));
  loop_.RunUntilIdle();
  ASSERT_TRUE(done);
  for (size_t i = 0; i < dest.size(); ++i) {
    EXPECT_EQ(dest[i], static_cast<uint8_t>(512 + i));
  }
}

TEST_F(NvmeDeviceTest, BlockReadReturnsWholeBlocks) {
  std::vector<uint8_t> dest(kBlockSize);
  bool done = false;
  NvmeDevice::ReadRequest req;
  req.offset = 100;
  req.length = 64;
  req.sub_block = false;
  req.dest = dest;
  req.on_complete = [&](Status s, SimDuration) {
    ASSERT_TRUE(s.ok());
    done = true;
  };
  dev_.SubmitRead(std::move(req));
  loop_.RunUntilIdle();
  ASSERT_TRUE(done);
  // Whole first block arrives; useful data at offset 100.
  EXPECT_EQ(dest[0], 0);
  EXPECT_EQ(dest[100], 100);
  EXPECT_EQ(dest[163], static_cast<uint8_t>(163));
}

TEST_F(NvmeDeviceTest, ReadAmplificationBlockVsSubBlock) {
  // 64 small reads in block mode: 4KB each over the bus for 128B useful.
  for (int i = 0; i < 64; ++i) {
    std::vector<uint8_t> dest(kBlockSize);
    NvmeDevice::ReadRequest req;
    req.offset = static_cast<Bytes>(i) * 8192;
    req.length = 128;
    req.sub_block = false;
    req.dest = dest;
    req.on_complete = [](Status, SimDuration) {};
    dev_.SubmitRead(std::move(req));
    loop_.RunUntilIdle();
  }
  EXPECT_NEAR(dev_.ReadAmplification(), 32.0, 0.5);  // 4096/128
}

TEST_F(NvmeDeviceTest, SubBlockSavesBusBytes) {
  uint64_t before = dev_.stats().CounterValue("bus_bytes");
  std::vector<uint8_t> dest(128);
  NvmeDevice::ReadRequest req;
  req.offset = 0;
  req.length = 128;
  req.sub_block = true;
  req.dest = dest;
  req.on_complete = [](Status, SimDuration) {};
  dev_.SubmitRead(std::move(req));
  loop_.RunUntilIdle();
  EXPECT_EQ(dev_.stats().CounterValue("bus_bytes") - before, 128u);
}

TEST_F(NvmeDeviceTest, OutOfRangeReadFailsViaCallback) {
  std::vector<uint8_t> dest(128);
  Status got;
  NvmeDevice::ReadRequest req;
  req.offset = 2 * kMiB;  // beyond 1MiB backing
  req.length = 128;
  req.sub_block = true;
  req.dest = dest;
  req.on_complete = [&](Status s, SimDuration) { got = s; };
  dev_.SubmitRead(std::move(req));
  loop_.RunUntilIdle();
  EXPECT_EQ(got.code(), StatusCode::kOutOfRange);
  EXPECT_EQ(dev_.stats().CounterValue("read_errors"), 1u);
}

TEST_F(NvmeDeviceTest, WrongDestSizeFails) {
  std::vector<uint8_t> dest(100);  // should be 128 for sub-block
  Status got;
  NvmeDevice::ReadRequest req;
  req.offset = 0;
  req.length = 128;
  req.sub_block = true;
  req.dest = dest;
  req.on_complete = [&](Status s, SimDuration) { got = s; };
  dev_.SubmitRead(std::move(req));
  loop_.RunUntilIdle();
  EXPECT_EQ(got.code(), StatusCode::kInvalidArgument);
}

TEST_F(NvmeDeviceTest, ZeroLengthReadFails) {
  Status got;
  NvmeDevice::ReadRequest req;
  req.offset = 0;
  req.length = 0;
  req.sub_block = true;
  req.on_complete = [&](Status s, SimDuration) { got = s; };
  dev_.SubmitRead(std::move(req));
  loop_.RunUntilIdle();
  EXPECT_EQ(got.code(), StatusCode::kInvalidArgument);
}

TEST_F(NvmeDeviceTest, SubBlockUnsupportedDeviceRejects) {
  DeviceSpec spec = MakeNandFlashSpec();
  spec.supports_sub_block = false;
  NvmeDevice dev(spec, 64 * kKiB, &loop_, 9);
  std::vector<uint8_t> dest(128);
  Status got;
  NvmeDevice::ReadRequest req;
  req.offset = 0;
  req.length = 128;
  req.sub_block = true;
  req.dest = dest;
  req.on_complete = [&](Status s, SimDuration) { got = s; };
  dev.SubmitRead(std::move(req));
  loop_.RunUntilIdle();
  EXPECT_EQ(got.code(), StatusCode::kFailedPrecondition);
}

TEST_F(NvmeDeviceTest, WriteTracksWearAndTime) {
  std::vector<uint8_t> data(64 * kKiB, 0xAB);
  const auto before = dev_.wear().bytes_written();
  const auto result = dev_.Write(0, data);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result.value().nanos(), 0);
  EXPECT_EQ(dev_.wear().bytes_written() - before, 64 * kKiB);
}

TEST_F(NvmeDeviceTest, WriteBeyondStoreFails) {
  std::vector<uint8_t> data(16);
  EXPECT_FALSE(dev_.Write(1 * kMiB - 8, data).ok());
}

TEST_F(NvmeDeviceTest, LatencyHistogramPopulates) {
  std::vector<uint8_t> dest(512);
  for (int i = 0; i < 50; ++i) {
    NvmeDevice::ReadRequest req;
    req.offset = 0;
    req.length = 512;
    req.sub_block = true;
    req.dest = dest;
    req.on_complete = [](Status, SimDuration) {};
    dev_.SubmitRead(std::move(req));
  }
  loop_.RunUntilIdle();
  EXPECT_EQ(dev_.read_latency().count(), 50u);
  EXPECT_GT(dev_.read_latency().P50(), 0);
}

// Completion ordering: a later-submitted IO must not complete before an
// earlier one submitted at the same instant on an idle device (FIFO).
TEST_F(NvmeDeviceTest, FifoCompletionForEqualArrivals) {
  std::vector<int> order;
  std::vector<uint8_t> d1(512);
  std::vector<uint8_t> d2(512);
  for (int i = 0; i < 2; ++i) {
    NvmeDevice::ReadRequest req;
    req.offset = 0;
    req.length = 512;
    req.sub_block = true;
    req.dest = i == 0 ? std::span<uint8_t>(d1) : std::span<uint8_t>(d2);
    req.on_complete = [&order, i](Status, SimDuration) { order.push_back(i); };
    dev_.SubmitRead(std::move(req));
  }
  loop_.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

// ---------------------------------------------------------------------------
// DramDevice.
// ---------------------------------------------------------------------------

TEST(DramDevice, RoundTrip) {
  DramDevice dram(64 * kKiB);
  std::vector<uint8_t> data = {1, 2, 3, 4, 5};
  ASSERT_TRUE(dram.Write(100, data).ok());
  std::vector<uint8_t> out(5);
  auto r = dram.Read(100, out);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(out, data);
  EXPECT_GT(r.value().nanos(), 0);
}

TEST(DramDevice, ViewIsZeroCopy) {
  DramDevice dram(4096);
  std::vector<uint8_t> data = {9, 8, 7};
  ASSERT_TRUE(dram.Write(0, data).ok());
  auto v = dram.View(0, 3);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value()[2], 7);
}

TEST(DramDevice, OutOfRangeFails) {
  DramDevice dram(128);
  std::vector<uint8_t> buf(64);
  EXPECT_FALSE(dram.Read(100, buf).ok());
  EXPECT_FALSE(dram.Write(100, buf).ok());
  EXPECT_FALSE(dram.View(100, 64).ok());
}

TEST(DramDevice, LatencyFarBelowSsd) {
  DramDevice dram(4096);
  const auto optane = MakeOptaneSsdSpec();
  EXPECT_LT(dram.AccessLatency(128).nanos(), optane.base_read_latency.nanos() / 10);
}

}  // namespace
}  // namespace sdm
