// Tests for src/tenant: the BatchScheduler background lane (QoS semantics:
// starvation bound, byte-budget parking, foreground promotion), the
// SharedDeviceService (extent dedup, cross-tenant single-flight, fair-share
// attribution), single-tenant byte-identity of shared vs owned device
// stacks, shared-device tuning validation, and the reworked MultiTenantHost.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/lookup_engine.h"
#include "core/model_loader.h"
#include "core/model_updater.h"
#include "core/sdm_store.h"
#include "dlrm/model_zoo.h"
#include "tenant/multi_tenant_host.h"
#include "tenant/shared_device_service.h"
#include "tenant/tenant.h"

namespace sdm {
namespace {

// ---------------------------------------------------------------------------
// Background lane, driven directly against a known device.
// ---------------------------------------------------------------------------

struct SchedulerRig {
  EventLoop loop;
  std::unique_ptr<NvmeDevice> device;
  std::unique_ptr<IoEngine> engine;
  BufferArena arena;
  std::unique_ptr<BatchScheduler> sched;

  explicit SchedulerRig(BatchSchedulerConfig cfg, Bytes backing = 2 * kMiB) {
    device = std::make_unique<NvmeDevice>(MakeOptaneSsdSpec(), backing, &loop, 1);
    std::vector<uint8_t> image(backing);
    for (size_t i = 0; i < image.size(); ++i) {
      image[i] = static_cast<uint8_t>((i * 7 + 3) & 0xFF);
    }
    EXPECT_TRUE(device->Write(0, image).ok());
    engine = std::make_unique<IoEngine>(device.get(), &loop, IoEngineConfig{});
    sched = std::make_unique<BatchScheduler>(engine.get(), &arena, &loop, cfg);
  }

  BatchScheduler::ReadRequest Request(
      Bytes begin, Bytes end, int* ok,
      BatchScheduler::ReadRequest::Kind kind = BatchScheduler::ReadRequest::Kind::kDemand,
      uint32_t tenant = 0) {
    BatchScheduler::ReadRequest req;
    req.span_begin = begin;
    req.span_end = end;
    req.first_block = begin / kBlockSize;
    req.last_block = (end - 1) / kBlockSize;
    req.sub_block = false;
    req.kind = kind;
    req.tenant = tenant;
    req.rows = 1;
    req.per_row_bus = kBlockSize;
    req.cb = [begin, end, ok](Status s, const uint8_t* data, Bytes base) {
      ASSERT_TRUE(s.ok()) << s.ToString();
      ASSERT_NE(data, nullptr);
      for (Bytes o = begin; o < end; ++o) {
        ASSERT_EQ(data[o - base], static_cast<uint8_t>((o * 7 + 3) & 0xFF));
      }
      ++*ok;
    };
    return req;
  }

  [[nodiscard]] uint64_t DeviceReads() const {
    return device->stats().CounterValue("reads");
  }
  [[nodiscard]] uint64_t Counter(const char* name) const {
    return sched->stats().CounterValue(name);
  }
};

constexpr auto kBg = BatchScheduler::ReadRequest::Kind::kBackground;

TEST(BackgroundLane, RidesDemandDoorbellWithLeftoverRoom) {
  BatchSchedulerConfig cfg;
  cfg.max_batch_delay = Micros(5);
  cfg.background_flush_delay = Micros(100);
  SchedulerRig rig(cfg);
  int ok = 0;
  SimTime bg_done;
  auto bg = rig.Request(8 * kBlockSize, 8 * kBlockSize + 64, &ok, kBg);
  auto inner = std::move(bg.cb);
  bg.cb = [&rig, &bg_done, inner = std::move(inner)](Status s, const uint8_t* d, Bytes b) {
    bg_done = rig.loop.Now();
    inner(s, d, b);
  };
  EXPECT_EQ(rig.sched->Enqueue(std::move(bg)), BatchScheduler::Admission::kNewRead);
  EXPECT_EQ(rig.sched->pending_sqes(), 0u);  // not in the demand batch
  EXPECT_EQ(rig.sched->background_pending_sqes(), 1u);
  // A demand run arrives; its deadline flush carries the background SQE
  // long before the lane's own (100us) drain timer.
  EXPECT_EQ(rig.sched->Enqueue(rig.Request(100, 200, &ok)),
            BatchScheduler::Admission::kNewRead);
  rig.loop.RunUntilIdle();
  EXPECT_EQ(ok, 2);
  EXPECT_EQ(rig.DeviceReads(), 2u);
  EXPECT_EQ(rig.Counter("flushes"), 1u);  // one doorbell for both lanes
  EXPECT_EQ(rig.Counter("background_reads"), 1u);
  EXPECT_EQ(rig.Counter("device_reads"), 1u);
  EXPECT_EQ(rig.Counter("flush_background"), 0u);  // never needed its own timer
  // Doorbell at the 5us demand deadline + ~80us of 4KiB media service —
  // well before the lane timer (100us) could even have rung the doorbell.
  EXPECT_LE(bg_done.nanos(), Micros(95).nanos());
}

TEST(BackgroundLane, StarvationBoundedUnderSustainedForegroundPressure) {
  BatchSchedulerConfig cfg;
  cfg.max_batch_sqes = 2;  // every demand flush runs with a FULL doorbell
  cfg.max_batch_delay = Micros(5);
  cfg.background_flush_delay = Micros(50);
  SchedulerRig rig(cfg);

  int bg_ok = 0;
  SimTime bg_done;
  auto bg = rig.Request(4 * kBlockSize, 4 * kBlockSize + 64, &bg_ok, kBg);
  auto inner = std::move(bg.cb);
  bg.cb = [&rig, &bg_done, inner = std::move(inner)](Status s, const uint8_t* d, Bytes b) {
    bg_done = rig.loop.Now();
    inner(s, d, b);
  };
  EXPECT_EQ(rig.sched->Enqueue(std::move(bg)), BatchScheduler::Admission::kNewRead);

  // Sustained foreground pressure: a fresh FULL-doorbell demand batch every
  // 5us for 300us (0.4M IOPS of 4KiB reads — heavy but under the device's
  // 0.5M capacity, so queueing stays bounded and the measurement isolates
  // doorbell starvation), spread over non-adjacent far-away blocks so
  // nothing merges with (or covers) the background run.
  int fg_ok = 0;
  int next_block = 16;
  for (int t = 0; t < 60; ++t) {
    rig.loop.ScheduleAt(SimTime(Micros(5 * t).nanos()), [&rig, &fg_ok, &next_block] {
      for (int i = 0; i < 2; ++i) {
        const Bytes begin = static_cast<Bytes>(next_block) * kBlockSize;
        next_block += 3;
        if (next_block > 480) next_block = 16;
        (void)rig.sched->Enqueue(rig.Request(begin, begin + 64, &fg_ok));
      }
    });
  }
  rig.loop.RunUntilIdle();

  EXPECT_EQ(bg_ok, 1);
  EXPECT_GT(fg_ok, 0);
  EXPECT_GE(rig.Counter("flush_background"), 1u);
  // The lane drain timer fired despite the doorbell never having room: the
  // run reached the device by the 50us bound and completed after ~80us of
  // 4KiB media service plus modest queueing — far earlier than the 300us+
  // a doorbell-room-only policy would strand it for.
  EXPECT_LE(bg_done.nanos(), Micros(170).nanos())
      << "background run starved: completed at " << bg_done.nanos() << "ns";
}

TEST(BackgroundLane, OverBudgetRunsParkAndDrainInOrder) {
  BatchSchedulerConfig cfg;
  cfg.background_max_inflight_bytes = kBlockSize;  // exactly one block read
  cfg.background_flush_delay = Micros(5);
  SchedulerRig rig(cfg);
  int ok = 0;
  EXPECT_EQ(rig.sched->Enqueue(rig.Request(kBlockSize, kBlockSize + 64, &ok, kBg)),
            BatchScheduler::Admission::kNewRead);
  // Over budget: parked, NOT dropped (this is demand), and still reported
  // as a (deferred) new read.
  EXPECT_EQ(rig.sched->Enqueue(rig.Request(3 * kBlockSize, 3 * kBlockSize + 64, &ok, kBg)),
            BatchScheduler::Admission::kNewRead);
  EXPECT_EQ(rig.sched->background_pending_sqes(), 1u);
  EXPECT_EQ(rig.sched->background_parked_runs(), 1u);
  EXPECT_EQ(rig.Counter("background_parked"), 1u);
  EXPECT_EQ(rig.Counter("prefetch_dropped"), 0u);

  rig.loop.RunUntilIdle();
  // The first read's completion released budget, admitted the parked run,
  // and the lane timer drained it.
  EXPECT_EQ(ok, 2);
  EXPECT_EQ(rig.Counter("background_reads"), 2u);
  EXPECT_EQ(rig.sched->background_parked_runs(), 0u);
  EXPECT_EQ(rig.sched->background_budget_used(), 0u);
}

TEST(BackgroundLane, ForegroundOverlapPromotesPendingBackgroundSqe) {
  BatchSchedulerConfig cfg;
  cfg.max_batch_delay = Micros(5);
  cfg.background_flush_delay = Micros(100);
  SchedulerRig rig(cfg);
  int bg_ok = 0;
  int fg_ok = 0;
  EXPECT_EQ(rig.sched->Enqueue(rig.Request(2 * kBlockSize, 2 * kBlockSize + 256, &bg_ok, kBg)),
            BatchScheduler::Admission::kNewRead);
  // Foreground demand inside the background SQE's block coverage: the SQE
  // is promoted into the demand batch instead of a second read issuing.
  EXPECT_EQ(rig.sched->Enqueue(rig.Request(2 * kBlockSize + 512, 2 * kBlockSize + 600, &fg_ok)),
            BatchScheduler::Admission::kJoinedPending);
  EXPECT_EQ(rig.sched->background_pending_sqes(), 0u);
  EXPECT_EQ(rig.sched->pending_sqes(), 1u);
  EXPECT_EQ(rig.Counter("background_promoted"), 1u);
  rig.loop.RunUntilIdle();
  EXPECT_EQ(bg_ok, 1);
  EXPECT_EQ(fg_ok, 1);
  EXPECT_EQ(rig.DeviceReads(), 1u);  // one shared read served both classes
  EXPECT_EQ(rig.Counter("singleflight_hits"), 1u);
  // The promoted read keeps its background budget charge until completion,
  // then releases it.
  EXPECT_EQ(rig.sched->background_budget_used(), 0u);
}

TEST(BackgroundLane, CoveredByPendingPrefetchPromotesIntoBackgroundLane) {
  BatchSchedulerConfig cfg;
  cfg.max_batch_delay = Micros(5);
  cfg.background_flush_delay = Micros(20);
  cfg.prefetch_flush_delay = Micros(500);  // speculation would drain LATE
  SchedulerRig rig(cfg);
  int pf_ok = 0;
  int bg_ok = 0;
  SimTime bg_done;
  EXPECT_EQ(rig.sched->Enqueue(rig.Request(2 * kBlockSize, 2 * kBlockSize + 256, &pf_ok,
                                           BatchScheduler::ReadRequest::Kind::kPrefetch)),
            BatchScheduler::Admission::kNewRead);
  // The slot-free (WouldShare) contract: background demand covered by the
  // speculative SQE must share it — and must not inherit the prefetch
  // lane's unhurried drain timer.
  EXPECT_TRUE(rig.sched->WouldShare(2 * kBlockSize + 512, 2 * kBlockSize + 600,
                                    2, 2, false));
  auto bg = rig.Request(2 * kBlockSize + 512, 2 * kBlockSize + 600, &bg_ok, kBg);
  auto inner = std::move(bg.cb);
  bg.cb = [&rig, &bg_done, inner = std::move(inner)](Status s, const uint8_t* d, Bytes b) {
    bg_done = rig.loop.Now();
    inner(s, d, b);
  };
  EXPECT_EQ(rig.sched->Enqueue(std::move(bg)),
            BatchScheduler::Admission::kJoinedPending);
  EXPECT_EQ(rig.sched->prefetch_pending_sqes(), 0u);  // promoted out
  EXPECT_EQ(rig.sched->background_pending_sqes(), 1u);
  EXPECT_EQ(rig.Counter("prefetch_promoted"), 1u);
  rig.loop.RunUntilIdle();
  EXPECT_EQ(pf_ok, 1);
  EXPECT_EQ(bg_ok, 1);
  EXPECT_EQ(rig.DeviceReads(), 1u);
  // Drained by the background lane's 20us timer, not speculation's 500us.
  EXPECT_LE(bg_done.nanos(), Micros(150).nanos());
  EXPECT_EQ(rig.sched->background_budget_used(), 0u);
  EXPECT_EQ(rig.sched->prefetch_budget_used(), 0u);
}

TEST(BackgroundLane, RunLargerThanBudgetStillProgressesWhenLaneIdle) {
  BatchSchedulerConfig cfg;
  cfg.background_max_inflight_bytes = kBlockSize;  // smaller than the run
  cfg.background_flush_delay = Micros(5);
  cfg.max_coalesce_bytes = 64 * kKiB;
  SchedulerRig rig(cfg);
  int ok = 0;
  // A 4-block run exceeds the whole lane budget; with the lane idle it
  // must be admitted anyway — parking it would strand it forever (no
  // completion would ever re-admit it).
  EXPECT_EQ(rig.sched->Enqueue(rig.Request(8 * kBlockSize, 12 * kBlockSize, &ok, kBg)),
            BatchScheduler::Admission::kNewRead);
  EXPECT_EQ(rig.sched->background_parked_runs(), 0u);
  EXPECT_EQ(rig.sched->background_pending_sqes(), 1u);
  rig.loop.RunUntilIdle();
  EXPECT_EQ(ok, 1);
  EXPECT_EQ(rig.Counter("background_reads"), 1u);
  EXPECT_EQ(rig.sched->background_budget_used(), 0u);
}

TEST(BackgroundLane, TenantSharesAttributeLaneBytesAndCrossTenantHits) {
  BatchSchedulerConfig cfg;
  cfg.max_batch_delay = Micros(5);
  SchedulerRig rig(cfg);
  int ok = 0;
  // Tenant 1 (foreground lane) owns a read; tenant 2's identical demand
  // single-flights on it cross-tenant; tenant 2 also owns a background read.
  EXPECT_EQ(rig.sched->Enqueue(rig.Request(kBlockSize, kBlockSize + 128, &ok,
                                           BatchScheduler::ReadRequest::Kind::kDemand, 1)),
            BatchScheduler::Admission::kNewRead);
  EXPECT_EQ(rig.sched->Enqueue(rig.Request(kBlockSize + 128, kBlockSize + 256, &ok,
                                           BatchScheduler::ReadRequest::Kind::kDemand, 2)),
            BatchScheduler::Admission::kJoinedPending);
  EXPECT_EQ(rig.sched->Enqueue(rig.Request(6 * kBlockSize, 6 * kBlockSize + 64, &ok, kBg, 2)),
            BatchScheduler::Admission::kNewRead);
  rig.loop.RunUntilIdle();
  EXPECT_EQ(ok, 3);

  const TenantIoShare t1 = rig.sched->tenant_share(1);
  EXPECT_EQ(t1.demand_reads, 1u);
  EXPECT_GT(t1.demand_bytes, 0u);
  EXPECT_EQ(t1.cross_tenant_hits, 0u);

  const TenantIoShare t2 = rig.sched->tenant_share(2);
  EXPECT_EQ(t2.demand_reads, 0u);  // its demand rode tenant 1's read
  EXPECT_EQ(t2.singleflight_hits, 1u);
  EXPECT_EQ(t2.cross_tenant_hits, 1u);
  EXPECT_GT(t2.cross_tenant_bytes_saved, 0u);
  EXPECT_EQ(t2.background_reads, 1u);
  EXPECT_GT(t2.background_bytes, 0u);
}

// ---------------------------------------------------------------------------
// SharedDeviceService: extents, cross-tenant single-flight, byte identity.
// ---------------------------------------------------------------------------

TuningConfig TenantTuning() {
  TuningConfig t;
  t.row_cache.capacity = 0;  // auto-size from FM budget
  t.enable_row_cache = true;
  t.sub_block_reads = true;
  return t;
}

struct SharedRig {
  EventLoop loop;
  std::unique_ptr<SharedDeviceService> service;
  std::vector<std::unique_ptr<SdmStore>> stores;
  std::vector<std::unique_ptr<LookupEngine>> engines;
  ModelConfig model;

  explicit SharedRig(size_t tenants, ModelConfig m = MakeTinyUniformModel(32, 2, 1, 4000),
                     TuningConfig tuning = TenantTuning())
      : model(std::move(m)) {
    SharedDeviceConfig dcfg;
    dcfg.sm_specs = {MakeOptaneSsdSpec()};
    dcfg.sm_backing_bytes = {32 * kMiB};
    dcfg.tuning = tuning;
    dcfg.seed = 42;
    service = std::make_unique<SharedDeviceService>(std::move(dcfg), &loop);
    for (size_t i = 0; i < tenants; ++i) AddTenant(tuning);
  }

  void AddTenant(TuningConfig tuning, TenantClass cls = TenantClass::kForeground) {
    const TenantId id = service->RegisterTenant("t" + std::to_string(stores.size()), cls);
    SdmStoreConfig cfg;
    cfg.fm_capacity = 2 * kMiB;
    cfg.tuning = std::move(tuning);
    cfg.seed = 42 + id;
    cfg.shared_device = service.get();
    cfg.tenant_id = id;
    cfg.tenant_class = cls;
    stores.push_back(std::make_unique<SdmStore>(cfg, &loop));
    auto report = ModelLoader::Load(model, LoaderOptions{}, stores.back().get());
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    engines.push_back(std::make_unique<LookupEngine>(stores.back().get()));
  }

  /// Finds a table this tenant serves from SM.
  TableId SmTable(size_t tenant) const {
    for (size_t t = 0; t < stores[tenant]->table_count(); ++t) {
      const TableId id = MakeTableId(static_cast<uint32_t>(t));
      if (stores[tenant]->table(id).tier == MemoryTier::kSm) return id;
    }
    ADD_FAILURE() << "no SM table";
    return MakeTableId(0);
  }
};

TEST(SharedDevice, DedupsIdenticalContentAcrossTenantsOnly) {
  SharedRig rig(2);
  // Both tenants loaded byte-identical models: every SM table deduped.
  Bytes logical = rig.stores[0]->sm_used_bytes() + rig.stores[1]->sm_used_bytes();
  EXPECT_GT(logical, 0u);
  EXPECT_EQ(rig.service->sm_used_bytes() * 2, logical);
  EXPECT_EQ(rig.service->sm_dedup_saved_bytes(), rig.stores[1]->sm_used_bytes());
  // The second tenant's tables point at the first tenant's extents.
  const TableId t0 = rig.SmTable(0);
  const TableId t1 = rig.SmTable(1);
  EXPECT_FALSE(rig.stores[0]->table(t0).shared_extent);
  EXPECT_TRUE(rig.stores[1]->table(t1).shared_extent);
  EXPECT_EQ(rig.stores[0]->table(t0).offset, rig.stores[1]->table(t1).offset);
}

TEST(SharedDevice, DifferentContentGetsPrivateExtents) {
  SharedRig rig(1);
  TuningConfig tuning = TenantTuning();
  // Different shape => different bytes => no sharing.
  SharedRig other(0);
  (void)other;
  const Bytes before = rig.service->sm_used_bytes();
  rig.model = MakeTinyUniformModel(32, 2, 1, 5000);
  rig.AddTenant(tuning);
  EXPECT_GT(rig.service->sm_used_bytes(), before);
  EXPECT_EQ(rig.service->sm_dedup_saved_bytes(), 0u);
}

/// Runs one lookup to completion on the rig's loop.
std::pair<std::vector<float>, LookupTrace> RunLookup(EventLoop& loop, LookupEngine& engine,
                                                     TableId table,
                                                     std::vector<RowIndex> indices) {
  std::vector<float> pooled;
  LookupTrace trace;
  bool done = false;
  LookupRequest req;
  req.table = table;
  req.indices = std::move(indices);
  engine.Lookup(std::move(req),
                [&](Status s, std::vector<float> out, const LookupTrace& t) {
                  EXPECT_TRUE(s.ok()) << s.ToString();
                  pooled = std::move(out);
                  trace = t;
                  done = true;
                });
  loop.RunUntilIdle();
  EXPECT_TRUE(done);
  return {std::move(pooled), trace};
}

TEST(SharedDevice, CrossTenantSingleFlightOnOverlappingHotRows) {
  SharedRig rig(2);
  const TableId table0 = rig.SmTable(0);
  const TableId table1 = rig.SmTable(1);

  const uint64_t reads_before = rig.service->device(0).stats().CounterValue("reads");

  // Both tenants miss the same rows of the same (deduped) table at the same
  // virtual instant: the second tenant's runs must ride the first's reads.
  std::vector<float> out0, out1;
  LookupTrace tr0, tr1;
  int done = 0;
  for (int tenant = 0; tenant < 2; ++tenant) {
    LookupRequest req;
    req.table = tenant == 0 ? table0 : table1;
    req.indices = {11, 12, 13, 14};
    rig.engines[tenant]->Lookup(
        std::move(req), [&, tenant](Status s, std::vector<float> out, const LookupTrace& t) {
          ASSERT_TRUE(s.ok()) << s.ToString();
          (tenant == 0 ? out0 : out1) = std::move(out);
          (tenant == 0 ? tr0 : tr1) = t;
          ++done;
        });
  }
  rig.loop.RunUntilIdle();
  ASSERT_EQ(done, 2);

  // Identical content => identical pooled outputs.
  ASSERT_EQ(out0.size(), out1.size());
  for (size_t i = 0; i < out0.size(); ++i) EXPECT_FLOAT_EQ(out0[i], out1[i]);

  // One tenant issued the reads, the other single-flighted on them.
  const uint64_t reads = rig.service->device(0).stats().CounterValue("reads") - reads_before;
  EXPECT_GT(tr0.device_reads + tr1.device_reads, 0u);
  EXPECT_GT(tr0.singleflight_hits + tr1.singleflight_hits, 0u);
  EXPECT_LT(reads, static_cast<uint64_t>(tr0.rows_from_sm + tr1.rows_from_sm));
  const TenantIoShare s0 = rig.service->tenant_io_share(0);
  const TenantIoShare s1 = rig.service->tenant_io_share(1);
  EXPECT_GT(s0.cross_tenant_hits + s1.cross_tenant_hits, 0u);
  EXPECT_GT(s0.cross_tenant_bytes_saved + s1.cross_tenant_bytes_saved, 0u);
}

TEST(SharedDevice, SingleTenantSharedRunByteIdenticalToOwnedDevice) {
  // Owned-device store (today's path).
  EventLoop owned_loop;
  SdmStoreConfig owned_cfg;
  owned_cfg.fm_capacity = 2 * kMiB;
  owned_cfg.sm_specs = {MakeOptaneSsdSpec()};
  owned_cfg.sm_backing_bytes = {32 * kMiB};
  owned_cfg.tuning = TenantTuning();
  owned_cfg.seed = 42;
  SdmStore owned(owned_cfg, &owned_loop);
  const ModelConfig model = MakeTinyUniformModel(32, 2, 1, 4000);
  auto owned_report = ModelLoader::Load(model, LoaderOptions{}, &owned);
  ASSERT_TRUE(owned_report.ok());
  LookupEngine owned_engine(&owned);

  // One tenant attached to an explicit shared service.
  SharedRig rig(1, model);

  // Same request sequence on both; every latency, trace counter, and pooled
  // value must match bit for bit.
  std::vector<std::vector<RowIndex>> sequence = {
      {1, 2, 3}, {100, 200, 300, 100}, {1, 2, 3}, {7, 8, 9, 10, 11}, {3000, 1, 3001}};
  const TableId table = rig.SmTable(0);
  for (const auto& indices : sequence) {
    auto [o_pool, o_trace] = RunLookup(owned_loop, owned_engine, table, indices);
    auto [s_pool, s_trace] = RunLookup(rig.loop, *rig.engines[0], table, indices);
    ASSERT_EQ(o_pool.size(), s_pool.size());
    for (size_t i = 0; i < o_pool.size(); ++i) EXPECT_EQ(o_pool[i], s_pool[i]);
    EXPECT_EQ(o_trace.latency.nanos(), s_trace.latency.nanos());
    EXPECT_EQ(o_trace.device_reads, s_trace.device_reads);
    EXPECT_EQ(o_trace.rows_from_sm, s_trace.rows_from_sm);
    EXPECT_EQ(o_trace.rows_from_cache, s_trace.rows_from_cache);
    EXPECT_EQ(o_trace.cpu_time.nanos(), s_trace.cpu_time.nanos());
  }
  EXPECT_EQ(owned.sm_device(0).stats().CounterValue("reads"),
            rig.service->device(0).stats().CounterValue("reads"));
  EXPECT_EQ(owned.sm_device(0).stats().CounterValue("bus_bytes"),
            rig.service->device(0).stats().CounterValue("bus_bytes"));
  EXPECT_EQ(owned_loop.Now().nanos(), rig.loop.Now().nanos());
}

TEST(SharedDevice, ModelUpdaterRefusesInPlaceUpdateOfSharedExtent) {
  SharedRig rig(2);
  // Tenant 1's SM tables are deduped onto tenant 0's extents: an in-place
  // update would corrupt tenant 0's reads, so it must be refused.
  ModelUpdater updater(rig.stores[1].get());
  UpdateOptions opts;
  opts.row_fraction = 0.1;
  const auto report = updater.Update(opts);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kFailedPrecondition);
  // The extent OWNER (no shared_extent flag) may still update in place.
  ModelUpdater owner_updater(rig.stores[0].get());
  EXPECT_TRUE(owner_updater.Update(opts).ok());
}

// ---------------------------------------------------------------------------
// Tuning validation for shared devices.
// ---------------------------------------------------------------------------

TEST(TenantTuning, ValidateForSharedDeviceRejectsInconsistentKnobs) {
  TuningConfig t = TenantTuning();
  EXPECT_TRUE(t.ValidateForSharedDevice().ok());

  TuningConfig no_xreq = TenantTuning();
  no_xreq.cross_request_batching = false;
  EXPECT_EQ(no_xreq.ValidateForSharedDevice().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(no_xreq.Validate().ok());  // fine for single-tenant ablations

  TuningConfig no_coalesce = TenantTuning();
  no_coalesce.coalesce_io = false;
  EXPECT_EQ(no_coalesce.ValidateForSharedDevice().code(), StatusCode::kInvalidArgument);

  TuningConfig zero_budget = TenantTuning();
  zero_budget.background_max_inflight_bytes = 0;
  EXPECT_EQ(zero_budget.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(TenantTuning, AttachedStoreRejectsInconsistentKnobsAtLoad) {
  EventLoop loop;
  SharedDeviceConfig dcfg;
  dcfg.sm_specs = {MakeOptaneSsdSpec()};
  dcfg.sm_backing_bytes = {8 * kMiB};
  dcfg.tuning = TenantTuning();
  SharedDeviceService service(std::move(dcfg), &loop);

  SdmStoreConfig cfg;
  cfg.fm_capacity = 2 * kMiB;
  cfg.tuning = TenantTuning();
  cfg.tuning.cross_request_batching = false;  // inconsistent with sharing
  cfg.shared_device = &service;
  cfg.tenant_id = service.RegisterTenant("bad", TenantClass::kForeground);
  SdmStore store(cfg, &loop);
  const ModelConfig model = MakeTinyUniformModel(32, 1, 1, 1000);
  auto report = ModelLoader::Load(model, LoaderOptions{}, &store);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
}

TEST(TenantTuning, MultiTenantHostSurfacesValidationError) {
  HostSimConfig base;
  base.host = MakeHwFAO(2);
  base.tuning.cross_request_batching = false;
  MultiTenantHost host(base, 1, /*shared_device=*/true);
  const Status s = host.AddTenant(MakeTinyUniformModel(32, 1, 1, 1000), 4 * kMiB);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// MultiTenantHost on the real shared-device path.
// ---------------------------------------------------------------------------

HostSimConfig TenantHostConfig() {
  HostSimConfig cfg;
  cfg.host = MakeHwFAO(2);
  cfg.fm_capacity = 24 * kMiB;
  cfg.sm_backing_per_device = 32 * kMiB;
  cfg.workload.num_users = 2000;
  cfg.workload.seed = 11;
  cfg.seed = 11;
  return cfg;
}

TEST(MultiTenantShared, RunsShardsOnOneDeviceStackAndReports) {
  MultiTenantHost host(TenantHostConfig(), 77, /*shared_device=*/true);
  ModelConfig shared_model = MakeTinyUniformModel(64, 2, 1, 40'000);
  ASSERT_TRUE(host.AddTenant(shared_model, 4 * kMiB, TenantClass::kForeground).ok());
  ASSERT_TRUE(host.AddTenant(shared_model, 4 * kMiB, TenantClass::kBackground).ok());
  ASSERT_TRUE(
      host.AddTenant(MakeTinyUniformModel(64, 3, 1, 30'000), 4 * kMiB).ok());
  EXPECT_EQ(host.tenant_count(), 3u);
  ASSERT_NE(host.service(), nullptr);

  const MultiTenantReport r = host.Run(/*qps_per_tenant=*/200, /*queries=*/400);
  ASSERT_EQ(r.tenants.size(), 3u);
  EXPECT_TRUE(r.shared_device);
  for (const auto& t : r.tenants) {
    EXPECT_EQ(t.run.queries_completed, 400u);
    EXPECT_GT(t.sm_used, 0u);
    EXPECT_FALSE(t.Summary().empty());
  }
  // The twin tenants deduped their tables: physical < logical SM bytes.
  EXPECT_LT(r.sm_unique_bytes, r.sm_logical_bytes);
  // The background tenant's demand rode the background lane; foreground
  // tenants rode the demand lane.
  EXPECT_EQ(r.tenants[1].cls, TenantClass::kBackground);
  EXPECT_GT(r.tenants[1].bg_lane_bytes, 0u);
  EXPECT_EQ(r.tenants[1].fg_lane_bytes, 0u);
  EXPECT_GT(r.tenants[0].fg_lane_bytes, 0u);
  EXPECT_EQ(r.tenants[0].bg_lane_bytes, 0u);
  EXPECT_GT(r.io.background_reads, 0u);
  EXPECT_GT(r.sm_device_reads, 0u);
  EXPECT_FALSE(r.Summary().empty());
  // The whole point of §5.3: the tenant set would NOT fit in FM without SM.
  EXPECT_FALSE(r.fits_in_fm);
}

TEST(MultiTenantShared, IsolatedModeStillWorks) {
  MultiTenantHost host(TenantHostConfig(), 77);
  ASSERT_TRUE(host.AddTenant(MakeTinyUniformModel(64, 2, 1, 40'000), 4 * kMiB).ok());
  ASSERT_TRUE(host.AddTenant(MakeTinyUniformModel(64, 3, 1, 30'000), 4 * kMiB).ok());
  const MultiTenantReport r = host.Run(100, 200);
  ASSERT_EQ(r.tenants.size(), 2u);
  EXPECT_FALSE(r.shared_device);
  for (const auto& t : r.tenants) EXPECT_EQ(t.run.queries_completed, 200u);
  EXPECT_EQ(r.sm_unique_bytes, r.sm_logical_bytes);
}

TEST(MultiTenant, TenantReportSummaryIsPinned) {
  // Exact-output pin for the KvFormatter-built tenant line (see the host
  // and cluster pins in serving_test).
  TenantReport t;
  t.model_name = "rm1";
  t.cls = TenantClass::kBackground;
  t.run.offered_qps = 200;
  t.run.achieved_qps = 199.6;
  t.run.p95 = Millis(2.5);
  t.run.p99 = Millis(4);
  t.run.row_cache_hit_rate = 0.5;
  t.singleflight_hits = 12;
  t.cross_tenant_hits = 7;
  t.fg_lane_bytes = 0;
  t.bg_lane_bytes = 96 * kKiB;
  t.throttle_queue_time = Micros(250);
  EXPECT_EQ(t.Summary(),
            "rm1 [background] qps=200/200 p95=2.50ms p99=4.00ms hit=50.0% sf=12 "
            "xsf=7 fg=0KiB bg=96KiB tq=250us");
}

}  // namespace
}  // namespace sdm
