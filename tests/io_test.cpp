// Tests for src/io: IoEngine (QD, polling vs interrupt), TableThrottle,
// DirectIoReader, MmapReader.
#include <gtest/gtest.h>

#include <vector>

#include "common/event_loop.h"
#include "io/direct_reader.h"
#include "io/io_engine.h"
#include "io/mmap_reader.h"
#include "io/throttle.h"

namespace sdm {
namespace {

class IoFixture : public ::testing::Test {
 protected:
  IoFixture() : dev_(MakeOptaneSsdSpec(), kStore, &loop_, 11) {
    std::vector<uint8_t> data(kStore);
    for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<uint8_t>(i * 7);
    EXPECT_TRUE(dev_.Write(0, data).ok());
  }

  static constexpr Bytes kStore = 4 * kMiB;
  EventLoop loop_;
  NvmeDevice dev_;
};

// ---------------------------------------------------------------------------
// IoEngine.
// ---------------------------------------------------------------------------

TEST_F(IoFixture, CompletesReadWithData) {
  IoEngine engine(&dev_, &loop_, {});
  std::vector<uint8_t> dest(256);
  bool done = false;
  engine.SubmitRead(1024, 256, true, dest, [&](Status s, SimDuration lat) {
    EXPECT_TRUE(s.ok());
    EXPECT_GT(lat.nanos(), 0);
    done = true;
  });
  loop_.RunUntilIdle();
  ASSERT_TRUE(done);
  for (size_t i = 0; i < dest.size(); ++i) {
    EXPECT_EQ(dest[i], static_cast<uint8_t>((1024 + i) * 7));
  }
}

TEST_F(IoFixture, EnforcesQueueDepth) {
  IoEngineConfig cfg;
  cfg.queue_depth = 4;
  IoEngine engine(&dev_, &loop_, cfg);
  std::vector<std::vector<uint8_t>> bufs(16, std::vector<uint8_t>(512));
  int completed = 0;
  for (auto& b : bufs) {
    engine.SubmitRead(0, 512, true, b, [&](Status s, SimDuration) {
      EXPECT_TRUE(s.ok());
      ++completed;
    });
  }
  // Before the loop runs: at most QD dispatched, the rest spilled.
  EXPECT_LE(engine.outstanding(), 4);
  EXPECT_EQ(engine.queued(), 12u);
  EXPECT_EQ(engine.stats().CounterValue("spilled"), 12u);
  loop_.RunUntilIdle();
  EXPECT_EQ(completed, 16);
  EXPECT_EQ(engine.outstanding(), 0);
  EXPECT_EQ(engine.queued(), 0u);
}

TEST_F(IoFixture, BatchSubmitSpillsAtQueueDepth) {
  IoEngineConfig cfg;
  cfg.queue_depth = 4;
  IoEngine engine(&dev_, &loop_, cfg);
  std::vector<std::vector<uint8_t>> bufs(16, std::vector<uint8_t>(512));
  int completed = 0;
  std::vector<IoEngine::ReadOp> ops;
  for (auto& b : bufs) {
    IoEngine::ReadOp op;
    op.offset = 0;
    op.length = 512;
    op.sub_block = true;
    op.dest = b;
    op.cb = [&](Status s, SimDuration) {
      EXPECT_TRUE(s.ok());
      ++completed;
    };
    ops.push_back(std::move(op));
  }
  engine.SubmitBatch(ops);
  // One doorbell, 16 SQEs: at most QD dispatched, the rest spilled FIFO.
  EXPECT_LE(engine.outstanding(), 4);
  EXPECT_EQ(engine.queued(), 12u);
  EXPECT_EQ(engine.stats().CounterValue("spilled"), 12u);
  EXPECT_EQ(engine.stats().CounterValue("batches"), 1u);
  EXPECT_EQ(engine.stats().CounterValue("batch_sqes"), 16u);
  loop_.RunUntilIdle();
  EXPECT_EQ(completed, 16);
  EXPECT_EQ(engine.outstanding(), 0);
  EXPECT_EQ(engine.queued(), 0u);
}

TEST_F(IoFixture, BatchSubmissionAmortizesSubmitCpu) {
  IoEngineConfig cfg;
  IoEngine batched(&dev_, &loop_, cfg);
  IoEngine single(&dev_, &loop_, cfg);

  std::vector<std::vector<uint8_t>> bufs(8, std::vector<uint8_t>(512));
  std::vector<IoEngine::ReadOp> ops;
  for (auto& b : bufs) {
    IoEngine::ReadOp op;
    op.offset = 0;
    op.length = 512;
    op.sub_block = true;
    op.dest = b;
    op.cb = [](Status, SimDuration) {};
    ops.push_back(std::move(op));
  }
  batched.SubmitBatch(ops);
  const SimDuration batched_submit_cpu = batched.cpu_time();

  std::vector<std::vector<uint8_t>> bufs2(8, std::vector<uint8_t>(512));
  for (auto& b : bufs2) single.SubmitRead(0, 512, true, b, [](Status, SimDuration) {});
  const SimDuration single_submit_cpu = single.cpu_time();

  // 1 doorbell + 7 cheap SQEs vs 8 full submissions.
  EXPECT_EQ(batched_submit_cpu,
            cfg.cpu_submit_cost + cfg.cpu_submit_cost_batch_sqe * 7.0);
  EXPECT_EQ(single_submit_cpu, cfg.cpu_submit_cost * 8.0);
  EXPECT_LT(batched_submit_cpu.nanos(), single_submit_cpu.nanos());
  loop_.RunUntilIdle();
}

TEST_F(IoFixture, PollingImprovesIopsPerCoreBy50Percent) {
  IoEngineConfig irq;
  irq.completion_mode = CompletionMode::kInterrupt;
  IoEngineConfig poll;
  poll.completion_mode = CompletionMode::kPolling;
  IoEngine e_irq(&dev_, &loop_, irq);
  IoEngine e_poll(&dev_, &loop_, poll);

  std::vector<uint8_t> buf(512);
  for (int i = 0; i < 1000; ++i) {
    e_irq.SubmitRead(0, 512, true, buf, [](Status, SimDuration) {});
    e_poll.SubmitRead(0, 512, true, buf, [](Status, SimDuration) {});
  }
  loop_.RunUntilIdle();
  // A.1: polling -> ~1.5x IOPS/core (2400ns vs 1600ns per IO).
  EXPECT_NEAR(e_poll.IopsPerCore() / e_irq.IopsPerCore(), 1.5, 0.05);
}

TEST_F(IoFixture, InterruptModeAddsDeliveryLatency) {
  IoEngineConfig irq;
  irq.completion_mode = CompletionMode::kInterrupt;
  IoEngineConfig poll;
  poll.completion_mode = CompletionMode::kPolling;
  IoEngine e_irq(&dev_, &loop_, irq);
  IoEngine e_poll(&dev_, &loop_, poll);
  std::vector<uint8_t> buf(512);
  SimDuration lat_irq;
  SimDuration lat_poll;
  e_irq.SubmitRead(0, 512, true, buf, [&](Status, SimDuration l) { lat_irq = l; });
  loop_.RunUntilIdle();
  e_poll.SubmitRead(0, 512, true, buf, [&](Status, SimDuration l) { lat_poll = l; });
  loop_.RunUntilIdle();
  EXPECT_NEAR((lat_irq - lat_poll).nanos(), irq.interrupt_delay.nanos(), 500);
}

TEST_F(IoFixture, ErrorsPropagateAndCount) {
  IoEngine engine(&dev_, &loop_, {});
  std::vector<uint8_t> dest(512);
  Status got;
  engine.SubmitRead(kStore + 1024, 512, true, dest,
                    [&](Status s, SimDuration) { got = s; });
  loop_.RunUntilIdle();
  EXPECT_FALSE(got.ok());
  EXPECT_EQ(engine.stats().CounterValue("errors"), 1u);
}

TEST_F(IoFixture, LatencyHistogramTracksEndToEnd) {
  IoEngine engine(&dev_, &loop_, {});
  std::vector<uint8_t> buf(512);
  for (int i = 0; i < 20; ++i) {
    engine.SubmitRead(0, 512, true, buf, [](Status, SimDuration) {});
  }
  loop_.RunUntilIdle();
  EXPECT_EQ(engine.latency().count(), 20u);
  EXPECT_GT(engine.latency().P50(), 0);
}

// Queue-depth limiting smooths Nand tail latency under bursts (§4.1).
TEST_F(IoFixture, SmallerQdLowersNandTail) {
  NvmeDevice nand_hi(MakeNandFlashSpec(), kStore, &loop_, 21);
  NvmeDevice nand_lo(MakeNandFlashSpec(), kStore, &loop_, 21);
  std::vector<uint8_t> init(kStore, 1);
  ASSERT_TRUE(nand_hi.Write(0, init).ok());
  ASSERT_TRUE(nand_lo.Write(0, init).ok());

  IoEngineConfig hi;
  hi.queue_depth = 4096;
  IoEngineConfig lo;
  lo.queue_depth = 64;
  IoEngine e_hi(&nand_hi, &loop_, hi);
  IoEngine e_lo(&nand_lo, &loop_, lo);
  std::vector<uint8_t> buf(kBlockSize);
  // A burst of 2000 IOs at t=0.
  for (int i = 0; i < 2000; ++i) {
    e_hi.SubmitRead(0, 4096, false, buf, [](Status, SimDuration) {});
    e_lo.SubmitRead(0, 4096, false, buf, [](Status, SimDuration) {});
  }
  loop_.RunUntilIdle();
  // Device-observed latency: the limited engine keeps the device queue
  // short, so device latency stays near service time.
  EXPECT_LT(nand_lo.read_latency().P99(), nand_hi.read_latency().P99());
}

// ---------------------------------------------------------------------------
// TableThrottle.
// ---------------------------------------------------------------------------

TEST(Throttle, RunsWithinPerTableLimit) {
  ThrottleConfig cfg;
  cfg.max_outstanding_per_table = 2;
  TableThrottle th(cfg);
  const TableId t0 = MakeTableId(0);
  int running = 0;
  th.Acquire(t0, [&] { ++running; });
  th.Acquire(t0, [&] { ++running; });
  th.Acquire(t0, [&] { ++running; });
  EXPECT_EQ(running, 2);
  EXPECT_EQ(th.InFlight(t0), 2);
  EXPECT_EQ(th.QueuedFor(t0), 1u);
  EXPECT_EQ(th.deferred(), 1u);
  th.Release(t0);
  EXPECT_EQ(running, 3);  // queued one dispatched
  th.Release(t0);
  th.Release(t0);
  EXPECT_EQ(th.InFlight(t0), 0);
}

TEST(Throttle, UnlimitedWhenZero) {
  TableThrottle th(ThrottleConfig{0, 0});
  const TableId t0 = MakeTableId(0);
  int running = 0;
  for (int i = 0; i < 100; ++i) th.Acquire(t0, [&] { ++running; });
  EXPECT_EQ(running, 100);
}

TEST(Throttle, GlobalTableSlotLimit) {
  ThrottleConfig cfg;
  cfg.max_outstanding_per_table = 8;
  cfg.max_concurrent_tables = 1;
  TableThrottle th(cfg);
  const TableId t0 = MakeTableId(0);
  const TableId t1 = MakeTableId(1);
  int r0 = 0;
  int r1 = 0;
  th.Acquire(t0, [&] { ++r0; });
  th.Acquire(t1, [&] { ++r1; });  // blocked: t0 holds the only table slot
  EXPECT_EQ(r0, 1);
  EXPECT_EQ(r1, 0);
  EXPECT_EQ(th.ActiveTables(), 1);
  th.Release(t0);  // t0 drains -> t1 gets the slot
  EXPECT_EQ(r1, 1);
  EXPECT_EQ(th.ActiveTables(), 1);
}

TEST(Throttle, SameTableSharesSlotUnderGlobalLimit) {
  ThrottleConfig cfg;
  cfg.max_outstanding_per_table = 4;
  cfg.max_concurrent_tables = 1;
  TableThrottle th(cfg);
  const TableId t0 = MakeTableId(0);
  int r = 0;
  th.Acquire(t0, [&] { ++r; });
  th.Acquire(t0, [&] { ++r; });  // same table: no new slot needed
  EXPECT_EQ(r, 2);
}

// ---------------------------------------------------------------------------
// DirectIoReader.
// ---------------------------------------------------------------------------

TEST_F(IoFixture, DirectReaderSubBlockDataCorrect) {
  IoEngine engine(&dev_, &loop_, {});
  DirectIoReader reader(&engine, DirectReaderConfig{true, 12e9});
  std::vector<uint8_t> row(136);
  bool done = false;
  reader.ReadRow(1000, row, [&](Status s, SimDuration) {
    ASSERT_TRUE(s.ok());
    done = true;
  });
  loop_.RunUntilIdle();
  ASSERT_TRUE(done);
  for (size_t i = 0; i < row.size(); ++i) {
    EXPECT_EQ(row[i], static_cast<uint8_t>((1000 + i) * 7));
  }
  EXPECT_TRUE(reader.sub_block());
  EXPECT_EQ(reader.extra_copies(), 0u);
}

TEST_F(IoFixture, DirectReaderBlockModeDataCorrect) {
  IoEngine engine(&dev_, &loop_, {});
  DirectIoReader reader(&engine, DirectReaderConfig{false, 12e9});
  std::vector<uint8_t> row(136);
  bool done = false;
  reader.ReadRow(5000, row, [&](Status s, SimDuration) {  // offset inside block 1
    ASSERT_TRUE(s.ok());
    done = true;
  });
  loop_.RunUntilIdle();
  ASSERT_TRUE(done);
  for (size_t i = 0; i < row.size(); ++i) {
    EXPECT_EQ(row[i], static_cast<uint8_t>((5000 + i) * 7));
  }
  EXPECT_EQ(reader.extra_copies(), 1u);
}

TEST_F(IoFixture, BlockModeMovesOver2xFmBytes) {
  IoEngine e1(&dev_, &loop_, {});
  IoEngine e2(&dev_, &loop_, {});
  DirectIoReader sub(&e1, DirectReaderConfig{true, 12e9});
  DirectIoReader blk(&e2, DirectReaderConfig{false, 12e9});
  std::vector<uint8_t> row(128);
  for (int i = 0; i < 10; ++i) {
    sub.ReadRow(static_cast<Bytes>(i) * 8192, row, [](Status, SimDuration) {});
    blk.ReadRow(static_cast<Bytes>(i) * 8192, row, [](Status, SimDuration) {});
  }
  loop_.RunUntilIdle();
  // §4.3: block path needs >2X FM BW per useful byte; sub-block ~1x (+copy).
  EXPECT_GT(blk.fm_bytes_moved(), 10 * (kBlockSize + 2 * 128) - 1);
  EXPECT_LE(sub.fm_bytes_moved(), 10 * 3 * 128);
}

TEST_F(IoFixture, DirectReaderErrorPath) {
  IoEngine engine(&dev_, &loop_, {});
  DirectIoReader reader(&engine, DirectReaderConfig{true, 12e9});
  std::vector<uint8_t> row(128);
  Status got;
  reader.ReadRow(kStore + 10, row, [&](Status s, SimDuration) { got = s; });
  loop_.RunUntilIdle();
  EXPECT_FALSE(got.ok());
}

// ---------------------------------------------------------------------------
// MmapReader.
// ---------------------------------------------------------------------------

TEST_F(IoFixture, MmapFaultsOnceThenHits) {
  IoEngine engine(&dev_, &loop_, {});
  MmapReader mmap(&engine, MmapReaderConfig{1 * kMiB});
  std::vector<uint8_t> out(128);
  SimDuration first;
  SimDuration second;
  mmap.Read(100, out, [&](Status s, SimDuration l) {
    ASSERT_TRUE(s.ok());
    first = l;
  });
  loop_.RunUntilIdle();
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<uint8_t>((100 + i) * 7));
  }
  mmap.Read(200, out, [&](Status s, SimDuration l) {  // same page
    ASSERT_TRUE(s.ok());
    second = l;
  });
  loop_.RunUntilIdle();
  EXPECT_EQ(mmap.page_faults(), 1u);
  EXPECT_EQ(mmap.page_hits(), 1u);
  EXPECT_LT(second.nanos(), first.nanos() / 10);
}

TEST_F(IoFixture, MmapSpanningReadFaultsBothPages) {
  IoEngine engine(&dev_, &loop_, {});
  MmapReader mmap(&engine, MmapReaderConfig{1 * kMiB});
  std::vector<uint8_t> out(256);
  bool done = false;
  mmap.Read(kBlockSize - 100, out, [&](Status s, SimDuration) {
    ASSERT_TRUE(s.ok());
    done = true;
  });
  loop_.RunUntilIdle();
  ASSERT_TRUE(done);
  EXPECT_EQ(mmap.page_faults(), 2u);
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<uint8_t>((kBlockSize - 100 + i) * 7));
  }
}

TEST_F(IoFixture, MmapEvictsAtCapacity) {
  IoEngine engine(&dev_, &loop_, {});
  MmapReader mmap(&engine, MmapReaderConfig{8 * kBlockSize});
  std::vector<uint8_t> out(16);
  for (int i = 0; i < 32; ++i) {
    mmap.Read(static_cast<Bytes>(i) * kBlockSize, out, [](Status, SimDuration) {});
    loop_.RunUntilIdle();
  }
  EXPECT_LE(mmap.resident_pages(), 8u);
  EXPECT_GE(mmap.stats().CounterValue("evictions"), 24u);
}

TEST_F(IoFixture, MmapWastesFmVsRowCaching) {
  // 128B rows, one per page: page cache holds capacity/4KB rows, a row
  // cache would hold capacity/128 — the 32x FM waste of §4.1.
  IoEngine engine(&dev_, &loop_, {});
  const Bytes capacity = 64 * kBlockSize;
  MmapReader mmap(&engine, MmapReaderConfig{capacity});
  std::vector<uint8_t> out(128);
  // Touch 256 distinct rows, each on its own page.
  for (int i = 0; i < 256; ++i) {
    mmap.Read(static_cast<Bytes>(i) * kBlockSize, out, [](Status, SimDuration) {});
    loop_.RunUntilIdle();
  }
  // Re-touch them: with 64-page capacity almost everything misses again.
  const uint64_t faults_before = mmap.page_faults();
  for (int i = 0; i < 256; ++i) {
    mmap.Read(static_cast<Bytes>(i) * kBlockSize, out, [](Status, SimDuration) {});
    loop_.RunUntilIdle();
  }
  const uint64_t refaults = mmap.page_faults() - faults_before;
  EXPECT_GT(refaults, 200u);  // page cache thrashes where a row cache would hit
}

}  // namespace
}  // namespace sdm
