// Tests for src/core: tuning validation, placement policies, SdmStore
// loading/accounting, LookupEngine (Algorithm 1), ModelLoader transforms,
// ModelUpdater.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/lookup_engine.h"
#include "core/model_loader.h"
#include "core/model_updater.h"
#include "core/placement.h"
#include "core/sdm_store.h"
#include "dlrm/model_zoo.h"

namespace sdm {
namespace {

// ---------------------------------------------------------------------------
// Helpers.
// ---------------------------------------------------------------------------

ModelConfig TinyModel(size_t user_tables = 3, size_t item_tables = 1,
                      uint64_t rows = 2000, uint32_t dim = 16) {
  return MakeTinyUniformModel(dim, user_tables, item_tables, rows);
}

TuningConfig BaseTuning() {
  TuningConfig t;
  t.row_cache.capacity = 0;  // auto-size from FM budget
  t.enable_row_cache = true;
  t.sub_block_reads = true;
  return t;
}

SdmStoreConfig BaseStoreConfig(TuningConfig tuning = BaseTuning()) {
  SdmStoreConfig cfg;
  cfg.fm_capacity = 8 * kMiB;
  cfg.sm_specs = {MakeOptaneSsdSpec()};
  cfg.sm_backing_bytes = {16 * kMiB};
  cfg.tuning = std::move(tuning);
  return cfg;
}

struct LoadedStore {
  EventLoop loop;
  std::unique_ptr<SdmStore> store;
  LoadReport report;
  ModelConfig model;
};

std::unique_ptr<LoadedStore> MakeLoadedStore(ModelConfig model,
                                             TuningConfig tuning = BaseTuning(),
                                             LoaderOptions loader = {},
                                             SdmStoreConfig base = BaseStoreConfig()) {
  auto ls = std::make_unique<LoadedStore>();
  ls->model = std::move(model);
  base.tuning = std::move(tuning);
  ls->store = std::make_unique<SdmStore>(base, &ls->loop);
  auto report = ModelLoader::Load(ls->model, loader, ls->store.get());
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  ls->report = std::move(report).value();
  return ls;
}

/// Runs one lookup synchronously on the loop; returns (pooled, trace).
std::pair<std::vector<float>, LookupTrace> RunLookup(LoadedStore& ls, LookupEngine& engine,
                                                     TableId table,
                                                     std::vector<RowIndex> indices,
                                                     PoolingMode mode = PoolingMode::kSum) {
  std::vector<float> pooled;
  LookupTrace trace;
  bool done = false;
  LookupRequest req;
  req.table = table;
  req.indices = std::move(indices);
  req.mode = mode;
  engine.Lookup(std::move(req),
                [&](Status s, std::vector<float> out, const LookupTrace& t) {
                  EXPECT_TRUE(s.ok()) << s.ToString();
                  pooled = std::move(out);
                  trace = t;
                  done = true;
                });
  ls.loop.RunUntilIdle();
  EXPECT_TRUE(done);
  return {pooled, trace};
}

/// Reference pooled value computed straight from the deterministic images.
std::vector<float> ReferencePooled(const LoadedStore& ls, size_t table,
                                   const std::vector<RowIndex>& indices,
                                   const LoaderOptions& loader = {}) {
  const TableConfig& cfg = ls.model.tables[table];
  const uint64_t seed = loader.seed ^ (0xabcdef12345678ULL * (table + 1));
  const auto image = EmbeddingTableImage::GenerateRandom(cfg, seed);
  std::vector<float> out(cfg.dim, 0.0f);
  for (const RowIndex idx : indices) {
    const auto row = image.DequantizedRow(idx);
    for (size_t i = 0; i < out.size(); ++i) out[i] += row[i];
  }
  return out;
}

// ---------------------------------------------------------------------------
// TuningConfig.
// ---------------------------------------------------------------------------

TEST(Tuning, DefaultValidates) { EXPECT_TRUE(BaseTuning().Validate().ok()); }

TEST(Tuning, RejectsBadQueueDepth) {
  TuningConfig t = BaseTuning();
  t.io_queue_depth = 0;
  EXPECT_FALSE(t.Validate().ok());
}

TEST(Tuning, RejectsBadFraction) {
  TuningConfig t = BaseTuning();
  t.row_cache.memory_optimized_fraction = 1.5;
  EXPECT_FALSE(t.Validate().ok());
}

TEST(Tuning, FixedFmNeedsBudget) {
  TuningConfig t = BaseTuning();
  t.placement = PlacementPolicy::kFixedFmSmWithCache;
  t.placement_dram_budget = 0;
  EXPECT_FALSE(t.Validate().ok());
  t.placement_dram_budget = kMiB;
  EXPECT_TRUE(t.Validate().ok());
}

// ---------------------------------------------------------------------------
// Placement.
// ---------------------------------------------------------------------------

TEST(Placement, SmOnlyPutsUserTablesOnSmItemOnFm) {
  const ModelConfig model = TinyModel(3, 2);
  const auto plan = ComputePlacement(model, BaseTuning());
  ASSERT_TRUE(plan.ok());
  for (size_t i = 0; i < model.tables.size(); ++i) {
    const auto& p = plan.value().tables[i];
    if (model.tables[i].role == TableRole::kUser) {
      EXPECT_EQ(p.tier, MemoryTier::kSm) << i;
      EXPECT_TRUE(p.cache_enabled);
    } else {
      EXPECT_EQ(p.tier, MemoryTier::kFm) << i;
    }
  }
}

TEST(Placement, NeverOnSmPinsToFm) {
  const ModelConfig model = TinyModel(3, 1);
  TuningConfig t = BaseTuning();
  t.never_on_sm.insert(model.tables[0].name);
  const auto plan = ComputePlacement(model, t);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value().tables[0].tier, MemoryTier::kFm);
  EXPECT_EQ(plan.value().tables[1].tier, MemoryTier::kSm);
}

TEST(Placement, FixedFmPicksHighestBwDensity) {
  ModelConfig model = TinyModel(3, 0);
  // Table 0: small and hot (high density); table 1: huge and cold.
  model.tables[0].num_rows = 100;
  model.tables[0].avg_pooling_factor = 50;
  model.tables[1].num_rows = 100'000;
  model.tables[1].avg_pooling_factor = 1;
  TuningConfig t = BaseTuning();
  t.placement = PlacementPolicy::kFixedFmSmWithCache;
  t.placement_dram_budget = model.tables[0].total_bytes() + 1024;
  const auto plan = ComputePlacement(model, t);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value().tables[0].tier, MemoryTier::kFm);
  EXPECT_EQ(plan.value().tables[1].tier, MemoryTier::kSm);
  EXPECT_GT(plan.value().tables[0].bw_density, plan.value().tables[1].bw_density);
}

TEST(Placement, PerTableCacheEnablementDisablesLowAlpha) {
  ModelConfig model = TinyModel(2, 0);
  model.tables[0].zipf_alpha = 0.1;  // essentially uniform access
  model.tables[1].zipf_alpha = 0.9;
  TuningConfig t = BaseTuning();
  t.placement = PlacementPolicy::kPerTableCacheEnablement;
  t.cache_enable_min_alpha = 0.4;
  const auto plan = ComputePlacement(model, t);
  ASSERT_TRUE(plan.ok());
  EXPECT_FALSE(plan.value().tables[0].cache_enabled);
  EXPECT_TRUE(plan.value().tables[1].cache_enabled);
}

TEST(Placement, DescribeMentionsTiers) {
  const ModelConfig model = TinyModel(2, 1);
  const auto plan = ComputePlacement(model, BaseTuning());
  ASSERT_TRUE(plan.ok());
  const std::string desc = DescribePlacement(plan.value(), model);
  EXPECT_NE(desc.find("on FM"), std::string::npos);
  EXPECT_NE(desc.find("on SM"), std::string::npos);
}

// ---------------------------------------------------------------------------
// SdmStore.
// ---------------------------------------------------------------------------

TEST(SdmStore, LoadsAndSeals) {
  auto ls = MakeLoadedStore(TinyModel());
  EXPECT_TRUE(ls->store->loading_finished());
  EXPECT_EQ(ls->store->table_count(), 4u);
  EXPECT_GT(ls->store->sm_used_bytes(), 0u);
  EXPECT_GT(ls->store->fm_direct_bytes(), 0u);  // item table
  EXPECT_NE(ls->store->row_cache(), nullptr);
}

TEST(SdmStore, CacheAutoSizedFromRemainingFm) {
  auto ls = MakeLoadedStore(TinyModel());
  const Bytes budget = ls->store->fm_cache_budget();
  EXPECT_EQ(ls->store->row_cache()->capacity(), budget);
  EXPECT_LE(ls->store->fm_direct_bytes() + budget, ls->store->fm_capacity());
}

TEST(SdmStore, RejectsLoadAfterSeal) {
  auto ls = MakeLoadedStore(TinyModel());
  const auto image = EmbeddingTableImage::GenerateRandom(ls->model.tables[0], 1);
  TablePlacement p;
  p.tier = MemoryTier::kSm;
  const auto r = ls->store->LoadTable(image, p, std::nullopt, 100);
  EXPECT_FALSE(r.ok());
}

TEST(SdmStore, FmOverCommitFails) {
  SdmStoreConfig cfg = BaseStoreConfig();
  cfg.fm_capacity = 4 * kKiB;  // far too small for the item table
  EventLoop loop;
  SdmStore store(cfg, &loop);
  const auto report = ModelLoader::Load(TinyModel(), {}, &store);
  EXPECT_FALSE(report.ok());
}

TEST(SdmStore, SmOverCommitFails) {
  SdmStoreConfig cfg = BaseStoreConfig();
  cfg.sm_backing_bytes = {32 * kKiB};  // too small for user tables
  EventLoop loop;
  SdmStore store(cfg, &loop);
  const auto report = ModelLoader::Load(TinyModel(), {}, &store);
  EXPECT_FALSE(report.ok());
}

TEST(SdmStore, BalancesTablesAcrossDevices) {
  SdmStoreConfig cfg = BaseStoreConfig();
  cfg.sm_specs = {MakeOptaneSsdSpec(), MakeOptaneSsdSpec()};
  cfg.sm_backing_bytes = {16 * kMiB, 16 * kMiB};
  EventLoop loop;
  SdmStore store(cfg, &loop);
  const ModelConfig model = TinyModel(4, 0);
  ASSERT_TRUE(ModelLoader::Load(model, {}, &store).ok());
  // With 4 similar user tables and 2 devices, both must hold data.
  size_t devices_used = 0;
  for (size_t d = 0; d < store.sm_device_count(); ++d) {
    if (store.sm_device(d).stats().CounterValue("written_bytes") > 0) ++devices_used;
  }
  EXPECT_EQ(devices_used, 2u);
}

TEST(SdmStore, DisabledRowCacheLeavesNull) {
  TuningConfig t = BaseTuning();
  t.enable_row_cache = false;
  auto ls = MakeLoadedStore(TinyModel(), t);
  EXPECT_EQ(ls->store->row_cache(), nullptr);
}

TEST(SdmStore, SubBlockTuningOffDisablesDeviceSupport) {
  TuningConfig t = BaseTuning();
  t.sub_block_reads = false;
  auto ls = MakeLoadedStore(TinyModel(), t);
  EXPECT_FALSE(ls->store->sm_device(0).spec().supports_sub_block);
}

// ---------------------------------------------------------------------------
// LookupEngine — Algorithm 1 correctness.
// ---------------------------------------------------------------------------

TEST(LookupEngine, PooledValueMatchesReference) {
  auto ls = MakeLoadedStore(TinyModel());
  LookupEngine engine(ls->store.get());
  const std::vector<RowIndex> indices = {3, 17, 944, 3};  // duplicates allowed
  const auto [pooled, trace] = RunLookup(*ls, engine, MakeTableId(0), indices);
  const auto ref = ReferencePooled(*ls, 0, indices);
  ASSERT_EQ(pooled.size(), ref.size());
  for (size_t i = 0; i < ref.size(); ++i) EXPECT_NEAR(pooled[i], ref[i], 1e-4f);
  EXPECT_EQ(trace.rows_requested, 4u);
  EXPECT_EQ(trace.rows_from_sm + trace.rows_from_cache, 4u);
}

TEST(LookupEngine, FmDirectTableServedWithoutIo) {
  auto ls = MakeLoadedStore(TinyModel());
  LookupEngine engine(ls->store.get());
  // Table 3 is the item table -> FM.
  const TableId item = MakeTableId(3);
  ASSERT_EQ(ls->store->table(item).tier, MemoryTier::kFm);
  const std::vector<RowIndex> indices = {1, 2, 3};
  const auto [pooled, trace] = RunLookup(*ls, engine, item, indices);
  EXPECT_EQ(trace.rows_from_fm_direct, 3u);
  EXPECT_EQ(trace.rows_from_sm, 0u);
  const auto ref = ReferencePooled(*ls, 3, indices);
  for (size_t i = 0; i < ref.size(); ++i) EXPECT_NEAR(pooled[i], ref[i], 1e-4f);
}

TEST(LookupEngine, SecondLookupHitsRowCache) {
  auto ls = MakeLoadedStore(TinyModel());
  LookupEngine engine(ls->store.get());
  const std::vector<RowIndex> indices = {10, 20, 30};
  const auto [p1, t1] = RunLookup(*ls, engine, MakeTableId(0), indices);
  EXPECT_EQ(t1.rows_from_sm, 3u);
  const auto [p2, t2] = RunLookup(*ls, engine, MakeTableId(0), indices);
  EXPECT_EQ(t2.rows_from_cache, 3u);
  EXPECT_EQ(t2.rows_from_sm, 0u);
  EXPECT_EQ(p1, p2);
  // Cache hits are also much faster (no device access).
  EXPECT_LT(t2.latency.nanos(), t1.latency.nanos());
}

TEST(LookupEngine, MeanPoolingDividesByIndexCount) {
  auto ls = MakeLoadedStore(TinyModel());
  LookupEngine engine(ls->store.get());
  const std::vector<RowIndex> indices = {5, 5};
  const auto [sum, ts] = RunLookup(*ls, engine, MakeTableId(0), indices, PoolingMode::kSum);
  const auto [mean, tm] =
      RunLookup(*ls, engine, MakeTableId(0), indices, PoolingMode::kMean);
  for (size_t i = 0; i < sum.size(); ++i) EXPECT_NEAR(mean[i], sum[i] / 2.0f, 1e-5f);
}

TEST(LookupEngine, OutOfDomainIndexContributesZero) {
  auto ls = MakeLoadedStore(TinyModel());
  LookupEngine engine(ls->store.get());
  const auto [with_bad, trace] =
      RunLookup(*ls, engine, MakeTableId(0), {7, 999'999'999});
  const auto [just_good, t2] = RunLookup(*ls, engine, MakeTableId(0), {7});
  EXPECT_EQ(trace.rows_pruned_skipped, 1u);
  for (size_t i = 0; i < with_bad.size(); ++i) {
    EXPECT_NEAR(with_bad[i], just_good[i], 1e-5f);
  }
}

TEST(LookupEngine, PooledCacheShortCircuitsSecondRequest) {
  TuningConfig t = BaseTuning();
  t.enable_pooled_cache = true;
  t.pooled_cache.capacity = 256 * kKiB;
  t.pooled_cache.len_threshold = 2;
  auto ls = MakeLoadedStore(TinyModel(), t);
  LookupEngine engine(ls->store.get());
  const std::vector<RowIndex> indices = {4, 8, 15, 16, 23, 42};
  const auto [p1, t1] = RunLookup(*ls, engine, MakeTableId(0), indices);
  EXPECT_FALSE(t1.pooled_cache_hit);
  const auto [p2, t2] = RunLookup(*ls, engine, MakeTableId(0), indices);
  EXPECT_TRUE(t2.pooled_cache_hit);
  EXPECT_EQ(p1, p2);
  EXPECT_EQ(t2.rows_from_sm + t2.rows_from_cache, 0u);  // skipped entirely
  EXPECT_LT(t2.latency.nanos(), t1.latency.nanos());
}

TEST(LookupEngine, PooledCacheHitsPermutedSequence) {
  TuningConfig t = BaseTuning();
  t.enable_pooled_cache = true;
  t.pooled_cache.len_threshold = 2;
  auto ls = MakeLoadedStore(TinyModel(), t);
  LookupEngine engine(ls->store.get());
  (void)RunLookup(*ls, engine, MakeTableId(0), {4, 8, 15});
  const auto [p, trace] = RunLookup(*ls, engine, MakeTableId(0), {15, 4, 8});
  EXPECT_TRUE(trace.pooled_cache_hit);
}

TEST(LookupEngine, CacheDisabledTableAlwaysReadsSm) {
  TuningConfig t = BaseTuning();
  t.placement = PlacementPolicy::kPerTableCacheEnablement;
  t.cache_enable_min_alpha = 2.0;  // disable caching for every table
  auto ls = MakeLoadedStore(TinyModel(), t);
  LookupEngine engine(ls->store.get());
  const std::vector<RowIndex> indices = {10, 20};
  (void)RunLookup(*ls, engine, MakeTableId(0), indices);
  const auto [p, trace] = RunLookup(*ls, engine, MakeTableId(0), indices);
  EXPECT_EQ(trace.rows_from_cache, 0u);
  EXPECT_EQ(trace.rows_from_sm, 2u);
}

TEST(LookupEngine, ThrottleBoundsInFlightIos) {
  TuningConfig t = BaseTuning();
  t.throttle.max_outstanding_per_table = 2;
  // Per-row IO so 16 rows really are 16 device IOs contending for the two
  // throttle slots (coalescing would merge them into one read).
  t.coalesce_io = false;
  auto ls = MakeLoadedStore(TinyModel(), t);
  LookupEngine engine(ls->store.get());
  // 16 distinct rows -> 16 IOs, but never more than 2 outstanding.
  std::vector<RowIndex> indices;
  for (RowIndex i = 0; i < 16; ++i) indices.push_back(i * 7);
  const auto [pooled, trace] = RunLookup(*ls, engine, MakeTableId(0), indices);
  EXPECT_EQ(trace.rows_from_sm, 16u);
  EXPECT_GT(ls->store->throttle().deferred(), 0u);
  const auto ref = ReferencePooled(*ls, 0, indices);
  for (size_t i = 0; i < ref.size(); ++i) EXPECT_NEAR(pooled[i], ref[i], 1e-4f);
}

TEST(LookupEngine, LatencyIncludesDeviceTime) {
  auto ls = MakeLoadedStore(TinyModel());
  LookupEngine engine(ls->store.get());
  const auto [p, trace] = RunLookup(*ls, engine, MakeTableId(0), {123});
  // One SM read: latency must be at least the device base latency.
  EXPECT_GE(trace.latency.nanos(),
            ls->store->sm_device(0).spec().base_read_latency.nanos() / 2);
}

TEST(LookupEngine, StatsAccumulate) {
  auto ls = MakeLoadedStore(TinyModel());
  LookupEngine engine(ls->store.get());
  (void)RunLookup(*ls, engine, MakeTableId(0), {1, 2, 3});
  (void)RunLookup(*ls, engine, MakeTableId(0), {1, 2, 3});
  EXPECT_EQ(engine.stats().CounterValue("lookups"), 2u);
  EXPECT_EQ(engine.stats().CounterValue("rows_sm_read"), 3u);
  EXPECT_EQ(engine.stats().CounterValue("rows_cache_hit"), 3u);
  EXPECT_GT(engine.cpu_time().nanos(), 0);
  EXPECT_EQ(engine.latency().count(), 2u);
}

// ---------------------------------------------------------------------------
// Pruned tables through the engine.
// ---------------------------------------------------------------------------

TEST(LookupEnginePruning, MappingServedLookupMatchesDeprunedSemantics) {
  LoaderOptions loader;
  loader.prune_keep_fraction = 0.5;
  auto ls = MakeLoadedStore(TinyModel(), BaseTuning(), loader);
  const TableRuntime& rt = ls->store->table(MakeTableId(0));
  ASSERT_TRUE(rt.mapping.has_value());
  EXPECT_GT(ls->store->fm_mapping_bytes(), 0u);

  LookupEngine engine(ls->store.get());
  const std::vector<RowIndex> indices = {0, 1, 2, 3, 4, 5, 6, 7};
  const auto [pooled, trace] = RunLookup(*ls, engine, MakeTableId(0), indices);
  // Reference: original rows for kept indices, zero for pruned.
  const TableConfig& cfg = ls->model.tables[0];
  const uint64_t seed = loader.seed ^ (0xabcdef12345678ULL * 1);
  const auto image = EmbeddingTableImage::GenerateRandom(cfg, seed);
  const PrunedTable pruned = PruneTable(image, 0.5, seed + 1);
  std::vector<float> ref(cfg.dim, 0.0f);
  uint32_t kept = 0;
  for (const RowIndex idx : indices) {
    if (pruned.mapping.Lookup(idx).has_value()) {
      const auto row = image.DequantizedRow(idx);
      for (size_t i = 0; i < ref.size(); ++i) ref[i] += row[i];
      ++kept;
    }
  }
  EXPECT_EQ(trace.rows_pruned_skipped, indices.size() - kept);
  for (size_t i = 0; i < ref.size(); ++i) EXPECT_NEAR(pooled[i], ref[i], 1e-4f);
}

TEST(LookupEnginePruning, DepruneAtLoadDropsMappingAndMatches) {
  LoaderOptions loader;
  loader.prune_keep_fraction = 0.5;
  TuningConfig t = BaseTuning();
  t.deprune_at_load = true;
  auto ls = MakeLoadedStore(TinyModel(), t, loader);
  const TableRuntime& rt = ls->store->table(MakeTableId(0));
  EXPECT_FALSE(rt.mapping.has_value());
  EXPECT_EQ(ls->store->fm_mapping_bytes(), 0u);

  LookupEngine engine(ls->store.get());
  const std::vector<RowIndex> indices = {0, 1, 2, 3, 4, 5, 6, 7};
  const auto [pooled, trace] = RunLookup(*ls, engine, MakeTableId(0), indices);
  EXPECT_EQ(trace.rows_from_sm, indices.size());  // zero rows are read too
  EXPECT_EQ(trace.rows_pruned_skipped, 0u);

  // Same numeric result as the mapping-served variant.
  LoaderOptions loader2 = loader;
  auto ls2 = MakeLoadedStore(TinyModel(), BaseTuning(), loader2);
  LookupEngine engine2(ls2->store.get());
  const auto [pooled2, t2] = RunLookup(*ls2, engine2, MakeTableId(0), indices);
  ASSERT_EQ(pooled.size(), pooled2.size());
  for (size_t i = 0; i < pooled.size(); ++i) EXPECT_NEAR(pooled[i], pooled2[i], 1e-4f);
}

TEST(LookupEnginePruning, DepruneFreesFmForCache) {
  LoaderOptions loader;
  loader.prune_keep_fraction = 0.5;
  auto with_mapping = MakeLoadedStore(TinyModel(), BaseTuning(), loader);
  TuningConfig t = BaseTuning();
  t.deprune_at_load = true;
  auto depruned = MakeLoadedStore(TinyModel(), t, loader);
  // §4.5: de-pruning converts mapping-tensor FM into cache budget.
  EXPECT_GT(depruned->store->fm_cache_budget(), with_mapping->store->fm_cache_budget());
  // ...at the cost of more SM bytes (zero rows).
  EXPECT_GT(depruned->store->sm_used_bytes(), with_mapping->store->sm_used_bytes());
}

// ---------------------------------------------------------------------------
// De-quantization at load (A.5).
// ---------------------------------------------------------------------------

TEST(Dequant, ExpandsSmTablesToFp32) {
  TuningConfig t = BaseTuning();
  t.dequantize_at_load = true;
  auto ls = MakeLoadedStore(TinyModel(), t);
  const TableRuntime& user = ls->store->table(MakeTableId(0));
  EXPECT_EQ(user.config.dtype, DataType::kFp32);
  // Item (FM) tables stay quantized.
  const TableRuntime& item = ls->store->table(MakeTableId(3));
  EXPECT_EQ(item.config.dtype, DataType::kInt8Rowwise);
  EXPECT_EQ(ls->report.tables_dequantized, 3u);
}

TEST(Dequant, LookupStillMatchesReferenceWithinQuantError) {
  TuningConfig t = BaseTuning();
  t.dequantize_at_load = true;
  auto ls = MakeLoadedStore(TinyModel(), t);
  LookupEngine engine(ls->store.get());
  const std::vector<RowIndex> indices = {11, 22, 33};
  const auto [pooled, trace] = RunLookup(*ls, engine, MakeTableId(0), indices);
  const auto ref = ReferencePooled(*ls, 0, indices);
  for (size_t i = 0; i < ref.size(); ++i) EXPECT_NEAR(pooled[i], ref[i], 1e-4f);
}

// ---------------------------------------------------------------------------
// ModelUpdater.
// ---------------------------------------------------------------------------

TEST(Updater, FullUpdateRewritesEverything) {
  auto ls = MakeLoadedStore(TinyModel(2, 1, 500));
  ModelUpdater updater(ls->store.get());
  UpdateOptions opts;
  opts.row_fraction = 1.0;
  const auto report = updater.Update(opts);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().rows_updated, 3u * 500u);
  EXPECT_GT(report.value().bytes_written, 0u);
  EXPECT_GT(report.value().write_time.nanos(), 0);
}

TEST(Updater, IncrementalWritesFraction) {
  auto ls = MakeLoadedStore(TinyModel(2, 1, 1000));
  ModelUpdater updater(ls->store.get());
  UpdateOptions opts;
  opts.row_fraction = 0.1;
  const auto report = updater.Update(opts);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().rows_updated, 3u * 100u);
}

TEST(Updater, OnlineUpdateKeepsServingCorrectValues) {
  auto ls = MakeLoadedStore(TinyModel(2, 1, 200));
  LookupEngine engine(ls->store.get());
  // Warm the cache with row 5.
  (void)RunLookup(*ls, engine, MakeTableId(0), {5});
  ModelUpdater updater(ls->store.get());
  UpdateOptions opts;
  opts.row_fraction = 1.0;
  opts.online = true;
  ASSERT_TRUE(updater.Update(opts).ok());
  // Read back: must see the *new* value (no stale cache), which equals the
  // device contents.
  const auto [pooled, trace] = RunLookup(*ls, engine, MakeTableId(0), {5});
  const TableRuntime& rt = ls->store->table(MakeTableId(0));
  std::vector<uint8_t> raw(rt.config.row_bytes());
  bool read_done = false;
  NvmeDevice::ReadRequest req;
  req.offset = rt.offset + 5 * rt.config.row_bytes();
  req.length = raw.size();
  req.sub_block = true;
  req.dest = raw;
  req.on_complete = [&](Status s, SimDuration) {
    ASSERT_TRUE(s.ok());
    read_done = true;
  };
  ls->store->sm_device(rt.sm_device).SubmitRead(std::move(req));
  ls->loop.RunUntilIdle();
  ASSERT_TRUE(read_done);
  std::vector<float> expected(rt.config.dim);
  DequantizeRow(rt.config.dtype, raw, expected);
  for (size_t i = 0; i < expected.size(); ++i) EXPECT_NEAR(pooled[i], expected[i], 1e-5f);
}

TEST(Updater, OfflineUpdateColdCaches) {
  auto ls = MakeLoadedStore(TinyModel(2, 1, 200));
  LookupEngine engine(ls->store.get());
  (void)RunLookup(*ls, engine, MakeTableId(0), {1, 2, 3});
  EXPECT_GT(ls->store->row_cache()->entry_count(), 0u);
  ModelUpdater updater(ls->store.get());
  UpdateOptions opts;
  opts.online = false;
  ASSERT_TRUE(updater.Update(opts).ok());
  EXPECT_EQ(ls->store->row_cache()->entry_count(), 0u);
}

TEST(Updater, WearAccumulatesAcrossUpdates) {
  auto ls = MakeLoadedStore(TinyModel(2, 1, 500));
  ModelUpdater updater(ls->store.get());
  UpdateOptions opts;
  opts.row_fraction = 1.0;
  const auto r1 = updater.Update(opts);
  const auto r2 = updater.Update(opts);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_GT(r2.value().sm_drive_writes, r1.value().sm_drive_writes);
}

TEST(Updater, RejectsBadFraction) {
  auto ls = MakeLoadedStore(TinyModel());
  ModelUpdater updater(ls->store.get());
  UpdateOptions opts;
  opts.row_fraction = 1.5;
  EXPECT_FALSE(updater.Update(opts).ok());
}

TEST(Updater, WarmupRooflineFormula) {
  // Paper A.4's worked example: r=10%, w=5min, p=50%, t=30min.
  const double overhead = ModelUpdater::WarmupCapacityOverhead(0.10, 5.0, 0.50, 30.0);
  EXPECT_NEAR(overhead, (0.10 * 5.0) / (0.50 * 30.0), 1e-9);
}

// ---------------------------------------------------------------------------
// Load report.
// ---------------------------------------------------------------------------

TEST(Loader, ReportCountsTransforms) {
  LoaderOptions loader;
  loader.prune_keep_fraction = 0.8;
  TuningConfig t = BaseTuning();
  t.deprune_at_load = true;
  auto ls = MakeLoadedStore(TinyModel(3, 1), t, loader);
  EXPECT_EQ(ls->report.tables_loaded, 4u);
  EXPECT_EQ(ls->report.tables_pruned, 3u);    // user tables only
  EXPECT_EQ(ls->report.tables_depruned, 3u);  // all SM-placed pruned tables
  EXPECT_GT(ls->report.sm_write_time.nanos(), 0);
}

}  // namespace
}  // namespace sdm
