// Tests for the extension features: the block cache and multi-level
// arrangement (§4.3 ablation), predicate (cold-row) pruning, media-unit
// latency scaling, and the per-core host capacity model.
#include <gtest/gtest.h>

#include <unordered_set>

#include "cache/block_cache.h"
#include "core/lookup_engine.h"
#include "core/model_loader.h"
#include "dlrm/model_zoo.h"
#include "serving/host.h"
#include "trace/trace_gen.h"

namespace sdm {
namespace {

// ---------------------------------------------------------------------------
// BlockCache.
// ---------------------------------------------------------------------------

std::vector<uint8_t> PatternBlock(uint8_t seed) {
  std::vector<uint8_t> block(kBlockSize);
  for (size_t i = 0; i < block.size(); ++i) {
    block[i] = static_cast<uint8_t>(seed + i);
  }
  return block;
}

TEST(BlockCache, MissOnEmpty) {
  BlockCache cache(BlockCacheConfig{});
  std::vector<uint8_t> out(64);
  EXPECT_FALSE(cache.ReadRange({0, 5}, 0, out));
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(BlockCache, RangeReadReturnsSubset) {
  BlockCache cache(BlockCacheConfig{});
  cache.InsertBlock({0, 7}, PatternBlock(3));
  std::vector<uint8_t> out(16);
  ASSERT_TRUE(cache.ReadRange({0, 7}, 100, out));
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<uint8_t>(3 + 100 + i));
  }
}

TEST(BlockCache, DevicesAreDistinct) {
  BlockCache cache(BlockCacheConfig{});
  cache.InsertBlock({0, 7}, PatternBlock(1));
  std::vector<uint8_t> out(8);
  EXPECT_FALSE(cache.ReadRange({1, 7}, 0, out));
  EXPECT_TRUE(cache.ReadRange({0, 7}, 0, out));
}

TEST(BlockCache, EvictsLruAtCapacity) {
  BlockCacheConfig cfg;
  cfg.capacity = 4 * (kBlockSize + 64);  // 4 blocks
  BlockCache cache(cfg);
  for (uint64_t b = 0; b < 8; ++b) cache.InsertBlock({0, b}, PatternBlock(1));
  EXPECT_LE(cache.block_count(), 4u);
  std::vector<uint8_t> out(8);
  EXPECT_FALSE(cache.ReadRange({0, 0}, 0, out));  // oldest gone
  EXPECT_TRUE(cache.ReadRange({0, 7}, 0, out));   // newest present
  EXPECT_GE(cache.stats().evictions, 4u);
}

TEST(BlockCache, TouchRefreshesLru) {
  BlockCacheConfig cfg;
  cfg.capacity = 2 * (kBlockSize + 64);
  BlockCache cache(cfg);
  std::vector<uint8_t> out(8);
  cache.InsertBlock({0, 1}, PatternBlock(1));
  cache.InsertBlock({0, 2}, PatternBlock(2));
  ASSERT_TRUE(cache.ReadRange({0, 1}, 0, out));  // 1 becomes MRU
  cache.InsertBlock({0, 3}, PatternBlock(3));    // evicts 2
  EXPECT_TRUE(cache.Contains({0, 1}));
  EXPECT_FALSE(cache.Contains({0, 2}));
}

TEST(BlockCache, OverwriteReplacesData) {
  BlockCache cache(BlockCacheConfig{});
  cache.InsertBlock({0, 1}, PatternBlock(1));
  cache.InsertBlock({0, 1}, PatternBlock(9));
  std::vector<uint8_t> out(4);
  ASSERT_TRUE(cache.ReadRange({0, 1}, 0, out));
  EXPECT_EQ(out[0], 9);
  EXPECT_EQ(cache.block_count(), 1u);
}

TEST(BlockCache, ClearResets) {
  BlockCache cache(BlockCacheConfig{});
  cache.InsertBlock({0, 1}, PatternBlock(1));
  cache.Clear();
  EXPECT_EQ(cache.block_count(), 0u);
  EXPECT_EQ(cache.memory_used(), 0u);
}

// ---------------------------------------------------------------------------
// Multi-level cache through the store.
// ---------------------------------------------------------------------------

struct MlStore {
  EventLoop loop;
  std::unique_ptr<SdmStore> store;
  ModelConfig model;
  LoaderOptions loader;
};

std::unique_ptr<MlStore> MakeMultiLevelStore(double block_fraction = 0.5) {
  auto ms = std::make_unique<MlStore>();
  ms->model = MakeTinyUniformModel(16, 2, 1, 2000);
  SdmStoreConfig cfg;
  cfg.fm_capacity = 8 * kMiB;
  cfg.sm_specs = {MakeOptaneSsdSpec()};
  cfg.sm_backing_bytes = {16 * kMiB};
  cfg.tuning.enable_block_cache = true;
  cfg.tuning.block_cache_fraction = block_fraction;
  ms->store = std::make_unique<SdmStore>(cfg, &ms->loop);
  auto report = ModelLoader::Load(ms->model, ms->loader, ms->store.get());
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  return ms;
}

TEST(MultiLevel, StoreBuildsBlockCacheWithSplitBudget) {
  auto ms = MakeMultiLevelStore(0.5);
  ASSERT_NE(ms->store->block_cache(), nullptr);
  ASSERT_NE(ms->store->row_cache(), nullptr);
  const Bytes budget = ms->store->fm_cache_budget();
  EXPECT_NEAR(static_cast<double>(ms->store->row_cache()->capacity()),
              static_cast<double>(budget) / 2, static_cast<double>(budget) * 0.02);
  EXPECT_NEAR(static_cast<double>(ms->store->block_cache()->capacity()),
              static_cast<double>(budget) / 2, static_cast<double>(budget) * 0.02);
}

TEST(MultiLevel, DisabledByDefault) {
  EventLoop loop;
  SdmStoreConfig cfg;
  cfg.fm_capacity = 8 * kMiB;
  cfg.sm_specs = {MakeOptaneSsdSpec()};
  cfg.sm_backing_bytes = {16 * kMiB};
  SdmStore store(cfg, &loop);
  ASSERT_TRUE(ModelLoader::Load(MakeTinyUniformModel(16, 1, 1, 500), {}, &store).ok());
  EXPECT_EQ(store.block_cache(), nullptr);
}

std::pair<std::vector<float>, LookupTrace> DoLookup(MlStore& ms, LookupEngine& engine,
                                                    std::vector<RowIndex> indices) {
  std::vector<float> pooled;
  LookupTrace trace;
  LookupRequest req;
  req.table = MakeTableId(0);
  req.indices = std::move(indices);
  engine.Lookup(std::move(req),
                [&](Status s, std::vector<float> out, const LookupTrace& t) {
                  EXPECT_TRUE(s.ok()) << s.ToString();
                  pooled = std::move(out);
                  trace = t;
                });
  ms.loop.RunUntilIdle();
  return {pooled, trace};
}

TEST(MultiLevel, NeighbourRowServedFromBlockCache) {
  auto ms = MakeMultiLevelStore();
  LookupEngine engine(ms->store.get());
  // Rows 0 and 1 share a 4KB block (24B rows). Read row 0: block IO fills
  // the block cache. Reading row 1 must then hit the block layer, not SM.
  const auto [p0, t0] = DoLookup(*ms, engine, {0});
  EXPECT_EQ(t0.rows_from_sm, 1u);
  const auto [p1, t1] = DoLookup(*ms, engine, {1});
  EXPECT_EQ(t1.rows_from_block_cache, 1u);
  EXPECT_EQ(t1.rows_from_sm, 0u);

  // And the value is still bit-exact versus the source image.
  const uint64_t seed = ms->loader.seed ^ (0xabcdef12345678ULL * 1);
  const auto image = EmbeddingTableImage::GenerateRandom(ms->model.tables[0], seed);
  const auto ref = image.DequantizedRow(1);
  for (size_t i = 0; i < ref.size(); ++i) EXPECT_NEAR(p1[i], ref[i], 1e-5f);
}

TEST(MultiLevel, RowCacheStillFirstLevel) {
  auto ms = MakeMultiLevelStore();
  LookupEngine engine(ms->store.get());
  (void)DoLookup(*ms, engine, {5});
  const auto [p, trace] = DoLookup(*ms, engine, {5});  // row cache now holds it
  EXPECT_EQ(trace.rows_from_cache, 1u);
  EXPECT_EQ(trace.rows_from_block_cache, 0u);
}

TEST(MultiLevel, BlockReadsAmplifyBusTraffic) {
  auto ms = MakeMultiLevelStore();
  LookupEngine engine(ms->store.get());
  const auto [p, trace] = DoLookup(*ms, engine, {100});
  // The miss fetched a whole 4KB block for one 24B row: 170x the single-
  // level sub-block path's bus traffic.
  EXPECT_EQ(trace.rows_from_sm, 1u);
  EXPECT_GE(ms->store->sm_device(0).stats().CounterValue("bus_bytes"), kBlockSize);
}

// ---------------------------------------------------------------------------
// Predicate (cold-row) pruning through the loader.
// ---------------------------------------------------------------------------

TEST(PredicatePruning, KeepsExactlyThePredicateRows) {
  const ModelConfig model = MakeTinyUniformModel(16, 1, 0, 1000);
  EventLoop loop;
  SdmStoreConfig cfg;
  cfg.fm_capacity = 8 * kMiB;
  cfg.sm_specs = {MakeOptaneSsdSpec()};
  cfg.sm_backing_bytes = {16 * kMiB};
  SdmStore store(cfg, &loop);
  LoaderOptions loader;
  loader.prune_keep_predicate = [](size_t /*table*/, RowIndex row) {
    return row % 3 == 0;  // keep every third row
  };
  auto report = ModelLoader::Load(model, loader, &store);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report.value().tables_pruned, 1u);

  const TableRuntime& rt = store.table(MakeTableId(0));
  ASSERT_TRUE(rt.mapping.has_value());
  for (RowIndex r = 0; r < 1000; ++r) {
    EXPECT_EQ(rt.mapping->Lookup(r).has_value(), r % 3 == 0) << r;
  }
  EXPECT_EQ(rt.config.num_rows, 334u);  // ceil(1000/3)
}

TEST(PredicatePruning, LookupSkipsPredicatePrunedRows) {
  const ModelConfig model = MakeTinyUniformModel(16, 1, 0, 1000);
  EventLoop loop;
  SdmStoreConfig cfg;
  cfg.fm_capacity = 8 * kMiB;
  cfg.sm_specs = {MakeOptaneSsdSpec()};
  cfg.sm_backing_bytes = {16 * kMiB};
  SdmStore store(cfg, &loop);
  LoaderOptions loader;
  loader.prune_keep_predicate = [](size_t, RowIndex row) { return row % 3 == 0; };
  ASSERT_TRUE(ModelLoader::Load(model, loader, &store).ok());
  LookupEngine engine(&store);
  LookupTrace trace;
  LookupRequest req;
  req.table = MakeTableId(0);
  req.indices = {0, 1, 2, 3};  // 0 and 3 kept; 1 and 2 pruned
  engine.Lookup(std::move(req), [&](Status s, std::vector<float>, const LookupTrace& t) {
    ASSERT_TRUE(s.ok());
    trace = t;
  });
  loop.RunUntilIdle();
  EXPECT_EQ(trace.rows_pruned_skipped, 2u);
  EXPECT_EQ(trace.rows_from_sm, 2u);
}

// ---------------------------------------------------------------------------
// Media-unit latency scaling (size-dependent device occupancy).
// ---------------------------------------------------------------------------

TEST(MediaUnits, LargeReadsSaturateEarlier) {
  // On Optane (512B natural unit), 4KB reads should cap throughput at ~1/8
  // of the 512B rate.
  const DeviceSpec spec = MakeOptaneSsdSpec();
  auto throughput = [&](Bytes bytes) {
    LatencyModel model(spec, 5);
    const int n = 50'000;
    SimTime last(0);
    for (int i = 0; i < n; ++i) {
      last = std::max(last, model.CompleteRead(SimTime(0), bytes));
    }
    return n / last.seconds();
  };
  const double small_iops = throughput(512);
  const double big_iops = throughput(4096);
  EXPECT_NEAR(small_iops / big_iops, 8.0, 1.0);
}

TEST(MediaUnits, SubUnitReadsCostOneUnit) {
  const DeviceSpec spec = MakeOptaneSsdSpec();
  LatencyModel a(spec, 6);
  LatencyModel b(spec, 6);
  // 64B and 512B reads occupy the channel identically (one unit).
  const SimDuration lat_small = a.CompleteRead(SimTime(0), 64) - SimTime(0);
  const SimDuration lat_unit = b.CompleteRead(SimTime(0), 512) - SimTime(0);
  EXPECT_NEAR(static_cast<double>(lat_small.nanos()),
              static_cast<double>(lat_unit.nanos()),
              static_cast<double>(lat_unit.nanos()) * 0.1);
}

// ---------------------------------------------------------------------------
// Per-core host capacity model.
// ---------------------------------------------------------------------------

TEST(HostCapacity, CoresFollowSockets) {
  EXPECT_EQ(MakeHwL().cores(), 40);
  EXPECT_EQ(MakeHwSS().cores(), 20);
}

TEST(HostCapacity, AdmissionDefaultsToCores) {
  HostSimConfig cfg;
  cfg.host = MakeHwSS();
  cfg.fm_capacity = 8 * kMiB;
  cfg.sm_backing_per_device = 16 * kMiB;
  cfg.inference.max_concurrent_queries = 0;  // auto
  HostSimulation sim(cfg);
  ASSERT_TRUE(sim.LoadModel(MakeTinyUniformModel(16, 2, 1, 2000)).ok());
  EXPECT_EQ(sim.engine().config().max_concurrent_queries, 20);
}

TEST(HostCapacity, TwoSocketsSustainRoughlyTwiceTheQps) {
  // Same model, same per-core speed; the dual-socket host should saturate
  // at about 2x the single-socket host's throughput (the Table 8 mechanism).
  ModelConfig model = MakeTinyUniformModel(16, 2, 1, 2000);
  model.num_mlp_layers = 8;
  model.avg_mlp_width = 256;  // ~1M flops/sample -> dense-dominated

  auto max_qps = [&](HostSpec host) {
    HostSimConfig cfg;
    cfg.host = std::move(host);
    cfg.fm_capacity = 8 * kMiB;
    cfg.sm_backing_per_device = 16 * kMiB;
    cfg.workload.num_users = 500;
    HostSimulation sim(cfg);
    EXPECT_TRUE(sim.LoadModel(model).ok());
    sim.Warmup(1000);
    return sim.FindMaxQps(Millis(5), false, 800, 50, 500'000);
  };
  const HostSpec one = MakeHwSS();
  HostSpec two = MakeHwSS();  // same host type, doubled sockets
  two.name = "HW-SS-2S";
  two.cpu_sockets = 2;
  const double q1 = max_qps(one);
  const double q2 = max_qps(two);
  EXPECT_NEAR(q2 / q1, 2.0, 0.6);
}

TEST(HostCapacity, PerRunCpuAccountingIsStable) {
  HostSimConfig cfg;
  cfg.host = MakeHwSS();
  cfg.fm_capacity = 8 * kMiB;
  cfg.sm_backing_per_device = 16 * kMiB;
  HostSimulation sim(cfg);
  ASSERT_TRUE(sim.LoadModel(MakeTinyUniformModel(16, 2, 1, 2000)).ok());
  sim.Warmup(2000);
  const HostRunReport a = sim.Run(200, 500);
  const HostRunReport b = sim.Run(200, 500);
  // Per-run deltas: consecutive steady-state runs should agree, not grow
  // with accumulated history.
  EXPECT_NEAR(static_cast<double>(a.avg_cpu_per_query.nanos()),
              static_cast<double>(b.avg_cpu_per_query.nanos()),
              static_cast<double>(a.avg_cpu_per_query.nanos()) * 0.25);
}

TEST(HostCapacity, SummaryStringHasKeyFields) {
  HostRunReport r;
  r.achieved_qps = 100;
  r.offered_qps = 120;
  const std::string s = r.Summary();
  EXPECT_NE(s.find("qps="), std::string::npos);
  EXPECT_NE(s.find("p99"), std::string::npos);
}

}  // namespace
}  // namespace sdm
