// Tests for src/cache: both row-cache designs, the dual router, and the
// pooled-embedding cache.
#include <gtest/gtest.h>

#include <vector>

#include "cache/cpu_optimized_cache.h"
#include "cache/dual_cache.h"
#include "cache/memory_optimized_cache.h"
#include "cache/pooled_cache.h"
#include "common/rng.h"

namespace sdm {
namespace {

std::vector<uint8_t> Value(size_t len, uint8_t fill) {
  return std::vector<uint8_t>(len, fill);
}

RowKey Key(uint32_t table, RowIndex row) { return RowKey{MakeTableId(table), row}; }

// ---------------------------------------------------------------------------
// Shared behaviour of both designs (typed tests).
// ---------------------------------------------------------------------------

template <typename T>
std::unique_ptr<RowCache> MakeCache(Bytes capacity);

template <>
std::unique_ptr<RowCache> MakeCache<CpuOptimizedCache>(Bytes capacity) {
  CpuOptimizedCacheConfig cfg;
  cfg.capacity = capacity;
  cfg.shards = 4;
  return std::make_unique<CpuOptimizedCache>(cfg);
}

template <>
std::unique_ptr<RowCache> MakeCache<MemoryOptimizedCache>(Bytes capacity) {
  MemoryOptimizedCacheConfig cfg;
  cfg.capacity = capacity;
  cfg.expected_value_bytes = 64;
  return std::make_unique<MemoryOptimizedCache>(cfg);
}

template <typename T>
class RowCacheTypedTest : public ::testing::Test {
 protected:
  std::unique_ptr<RowCache> NewCache(Bytes capacity = 1 * kMiB) {
    return MakeCache<T>(capacity);
  }
};

using CacheTypes = ::testing::Types<CpuOptimizedCache, MemoryOptimizedCache>;
TYPED_TEST_SUITE(RowCacheTypedTest, CacheTypes);

TYPED_TEST(RowCacheTypedTest, MissOnEmpty) {
  auto cache = this->NewCache();
  std::vector<uint8_t> out(64);
  size_t len = 0;
  EXPECT_FALSE(cache->Lookup(Key(0, 1), out, &len));
  EXPECT_EQ(cache->stats().misses, 1u);
}

TYPED_TEST(RowCacheTypedTest, InsertThenHitReturnsValue) {
  auto cache = this->NewCache();
  cache->Insert(Key(0, 1), Value(64, 0xAA));
  std::vector<uint8_t> out(64);
  size_t len = 0;
  ASSERT_TRUE(cache->Lookup(Key(0, 1), out, &len));
  EXPECT_EQ(len, 64u);
  for (const uint8_t b : out) EXPECT_EQ(b, 0xAA);
  EXPECT_EQ(cache->stats().hits, 1u);
}

TYPED_TEST(RowCacheTypedTest, DistinctKeysDoNotCollide) {
  auto cache = this->NewCache();
  cache->Insert(Key(0, 1), Value(8, 1));
  cache->Insert(Key(0, 2), Value(8, 2));
  cache->Insert(Key(1, 1), Value(8, 3));
  std::vector<uint8_t> out(8);
  size_t len = 0;
  ASSERT_TRUE(cache->Lookup(Key(0, 1), out, &len));
  EXPECT_EQ(out[0], 1);
  ASSERT_TRUE(cache->Lookup(Key(0, 2), out, &len));
  EXPECT_EQ(out[0], 2);
  ASSERT_TRUE(cache->Lookup(Key(1, 1), out, &len));
  EXPECT_EQ(out[0], 3);
}

TYPED_TEST(RowCacheTypedTest, OverwriteReplacesValue) {
  auto cache = this->NewCache();
  cache->Insert(Key(0, 7), Value(16, 1));
  cache->Insert(Key(0, 7), Value(16, 9));
  std::vector<uint8_t> out(16);
  size_t len = 0;
  ASSERT_TRUE(cache->Lookup(Key(0, 7), out, &len));
  EXPECT_EQ(out[0], 9);
  EXPECT_EQ(cache->entry_count(), 1u);
}

TYPED_TEST(RowCacheTypedTest, EraseRemoves) {
  auto cache = this->NewCache();
  cache->Insert(Key(0, 7), Value(16, 1));
  EXPECT_TRUE(cache->Erase(Key(0, 7)));
  EXPECT_FALSE(cache->Erase(Key(0, 7)));
  std::vector<uint8_t> out(16);
  EXPECT_FALSE(cache->Lookup(Key(0, 7), out, nullptr));
  EXPECT_EQ(cache->entry_count(), 0u);
}

TYPED_TEST(RowCacheTypedTest, CapacityBoundedUnderPressure) {
  auto cache = this->NewCache(16 * kKiB);
  for (uint64_t i = 0; i < 4000; ++i) {
    cache->Insert(Key(0, i), Value(64, static_cast<uint8_t>(i)));
  }
  EXPECT_LE(cache->memory_used(), 16 * kKiB + 4096);  // small slack per shard/bucket
  EXPECT_GT(cache->stats().evictions, 0u);
}

TYPED_TEST(RowCacheTypedTest, ClearEmptiesEverything) {
  auto cache = this->NewCache();
  for (uint64_t i = 0; i < 100; ++i) cache->Insert(Key(0, i), Value(32, 1));
  cache->Clear();
  EXPECT_EQ(cache->entry_count(), 0u);
  EXPECT_EQ(cache->memory_used(), 0u);
}

TYPED_TEST(RowCacheTypedTest, ReferencedKeysOutliveUnreferencedOnes) {
  // LRU (exact) and CLOCK (second chance) both privilege re-referenced keys
  // over untouched ones under scan pressure. Compare survival of a hot set
  // (touched every round) against a cold control set (inserted once).
  auto cache = this->NewCache(64 * kKiB);
  const uint64_t kSetSize = 32;
  for (uint64_t h = 0; h < kSetSize; ++h) cache->Insert(Key(9, h), Value(64, 7));
  for (uint64_t c = 0; c < kSetSize; ++c) cache->Insert(Key(8, c), Value(64, 3));
  std::vector<uint8_t> out(64);
  for (int round = 0; round < 50; ++round) {
    for (uint64_t h = 0; h < kSetSize; ++h) (void)cache->Lookup(Key(9, h), out, nullptr);
    for (uint64_t i = 0; i < 20; ++i) {
      cache->Insert(Key(0, static_cast<uint64_t>(round) * 100 + i), Value(64, 1));
    }
  }
  int hot_survivors = 0;
  int cold_survivors = 0;
  for (uint64_t h = 0; h < kSetSize; ++h) {
    if (cache->Lookup(Key(9, h), out, nullptr)) ++hot_survivors;
  }
  for (uint64_t c = 0; c < kSetSize; ++c) {
    if (cache->Lookup(Key(8, c), out, nullptr)) ++cold_survivors;
  }
  EXPECT_GT(hot_survivors, cold_survivors);
  EXPECT_GE(hot_survivors, static_cast<int>(kSetSize) / 4);
}

TYPED_TEST(RowCacheTypedTest, VariableValueSizes) {
  auto cache = this->NewCache();
  cache->Insert(Key(0, 1), Value(24, 3));
  cache->Insert(Key(0, 2), Value(300, 4));
  std::vector<uint8_t> out(300);
  size_t len = 0;
  ASSERT_TRUE(cache->Lookup(Key(0, 1), out, &len));
  EXPECT_EQ(len, 24u);
  ASSERT_TRUE(cache->Lookup(Key(0, 2), out, &len));
  EXPECT_EQ(len, 300u);
}

// ---------------------------------------------------------------------------
// Design-specific properties.
// ---------------------------------------------------------------------------

TEST(CacheOverheads, MemoryOptimizedHasLowerOverheadHigherCpu) {
  MemoryOptimizedCacheConfig mcfg;
  CpuOptimizedCacheConfig ccfg;
  EXPECT_LT(mcfg.per_entry_overhead, ccfg.per_entry_overhead);
  EXPECT_GT(mcfg.lookup_cpu, ccfg.lookup_cpu);
}

TEST(CacheOverheads, SameBudgetHoldsMoreSmallRowsInMemoryOptimized) {
  const Bytes budget = 256 * kKiB;
  auto mem = MakeCache<MemoryOptimizedCache>(budget);
  auto cpu = MakeCache<CpuOptimizedCache>(budget);
  for (uint64_t i = 0; i < 100'000; ++i) {
    mem->Insert(Key(0, i), Value(64, 1));
    cpu->Insert(Key(0, i), Value(64, 1));
  }
  // 16B vs 56B metadata per 64B value: the memory-optimized design fits
  // meaningfully more entries into the same budget.
  EXPECT_GT(mem->entry_count(), cpu->entry_count());
  EXPECT_GT(static_cast<double>(mem->entry_count()),
            1.2 * static_cast<double>(cpu->entry_count()));
}

TEST(CpuOptimized, ExactLruEviction) {
  CpuOptimizedCacheConfig cfg;
  cfg.capacity = (64 + 56) * 4;  // exactly 4 entries
  cfg.shards = 1;
  CpuOptimizedCache cache(cfg);
  for (uint64_t i = 0; i < 4; ++i) cache.Insert(Key(0, i), Value(64, 1));
  std::vector<uint8_t> out(64);
  // Touch 0 so 1 becomes LRU.
  ASSERT_TRUE(cache.Lookup(Key(0, 0), out, nullptr));
  cache.Insert(Key(0, 99), Value(64, 1));  // evicts key 1
  EXPECT_TRUE(cache.Lookup(Key(0, 0), out, nullptr));
  EXPECT_FALSE(cache.Lookup(Key(0, 1), out, nullptr));
}

TEST(MemoryOptimized, BucketCountScalesWithCapacity) {
  MemoryOptimizedCacheConfig small;
  small.capacity = 64 * kKiB;
  MemoryOptimizedCacheConfig big;
  big.capacity = 1 * kMiB;
  EXPECT_GT(MemoryOptimizedCache(big).bucket_count(),
            MemoryOptimizedCache(small).bucket_count());
}

// ---------------------------------------------------------------------------
// DualRowCache.
// ---------------------------------------------------------------------------

DualCacheConfig SmallDualConfig() {
  DualCacheConfig cfg;
  cfg.capacity = 1 * kMiB;
  cfg.memory_optimized_fraction = 0.5;
  cfg.routing_threshold = 255;
  return cfg;
}

TEST(DualCache, RoutesByRowSize) {
  DualRowCache cache(SmallDualConfig());
  cache.RegisterTable(MakeTableId(0), 64);    // small -> memory optimized
  cache.RegisterTable(MakeTableId(1), 512);   // big -> cpu optimized
  cache.RegisterTable(MakeTableId(2), 255);   // boundary -> memory optimized
  cache.RegisterTable(MakeTableId(3), 256);   // just above -> cpu optimized
  EXPECT_TRUE(cache.IsMemoryOptimizedRoute(MakeTableId(0)));
  EXPECT_FALSE(cache.IsMemoryOptimizedRoute(MakeTableId(1)));
  EXPECT_TRUE(cache.IsMemoryOptimizedRoute(MakeTableId(2)));
  EXPECT_FALSE(cache.IsMemoryOptimizedRoute(MakeTableId(3)));
}

TEST(DualCache, TrafficLandsInRoutedPartition) {
  DualRowCache cache(SmallDualConfig());
  cache.RegisterTable(MakeTableId(0), 64);
  cache.RegisterTable(MakeTableId(1), 512);
  cache.Insert(Key(0, 1), Value(64, 1));
  cache.Insert(Key(1, 1), Value(512, 2));
  EXPECT_EQ(cache.memory_optimized().entry_count(), 1u);
  EXPECT_EQ(cache.cpu_optimized().entry_count(), 1u);
  std::vector<uint8_t> out(512);
  size_t len = 0;
  EXPECT_TRUE(cache.Lookup(Key(0, 1), out, &len));
  EXPECT_TRUE(cache.Lookup(Key(1, 1), out, &len));
}

TEST(DualCache, CombinedStatsAggregate) {
  DualRowCache cache(SmallDualConfig());
  cache.RegisterTable(MakeTableId(0), 64);
  cache.RegisterTable(MakeTableId(1), 512);
  std::vector<uint8_t> out(512);
  (void)cache.Lookup(Key(0, 1), out, nullptr);  // miss in mem partition
  (void)cache.Lookup(Key(1, 1), out, nullptr);  // miss in cpu partition
  EXPECT_EQ(cache.stats().misses, 2u);
  cache.Insert(Key(0, 1), Value(64, 1));
  (void)cache.Lookup(Key(0, 1), out, nullptr);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(DualCache, RouteCpuCostDiffers) {
  DualRowCache cache(SmallDualConfig());
  cache.RegisterTable(MakeTableId(0), 64);
  cache.RegisterTable(MakeTableId(1), 512);
  EXPECT_GT(cache.RouteCpuCost(MakeTableId(0)).nanos(),
            cache.RouteCpuCost(MakeTableId(1)).nanos());
}

TEST(DualCache, CapacitySplitRespectsFraction) {
  DualCacheConfig cfg = SmallDualConfig();
  cfg.memory_optimized_fraction = 0.25;
  DualRowCache cache(cfg);
  EXPECT_NEAR(static_cast<double>(cache.memory_optimized().capacity()),
              0.25 * static_cast<double>(cfg.capacity),
              static_cast<double>(cfg.capacity) * 0.05);
}

TEST(DualCache, ClearBothPartitions) {
  DualRowCache cache(SmallDualConfig());
  cache.RegisterTable(MakeTableId(0), 64);
  cache.RegisterTable(MakeTableId(1), 512);
  cache.Insert(Key(0, 1), Value(64, 1));
  cache.Insert(Key(1, 1), Value(512, 1));
  cache.Clear();
  EXPECT_EQ(cache.entry_count(), 0u);
}

// ---------------------------------------------------------------------------
// OrderInvariantHash.
// ---------------------------------------------------------------------------

TEST(OrderInvariantHash, PermutationInvariant) {
  const std::vector<RowIndex> a = {5, 9, 200, 7};
  const std::vector<RowIndex> b = {200, 7, 5, 9};
  EXPECT_EQ(OrderInvariantHash(a), OrderInvariantHash(b));
}

TEST(OrderInvariantHash, DistinguishesMultiplicity) {
  const std::vector<RowIndex> a = {5};
  const std::vector<RowIndex> b = {5, 5};
  EXPECT_NE(OrderInvariantHash(a), OrderInvariantHash(b));
}

TEST(OrderInvariantHash, DistinguishesDifferentSets) {
  const std::vector<RowIndex> a = {1, 2, 3};
  const std::vector<RowIndex> b = {1, 2, 4};
  EXPECT_NE(OrderInvariantHash(a), OrderInvariantHash(b));
}

TEST(OrderInvariantHash, EmptyIsStable) {
  EXPECT_EQ(OrderInvariantHash({}), OrderInvariantHash({}));
}

// ---------------------------------------------------------------------------
// PooledEmbeddingCache.
// ---------------------------------------------------------------------------

PooledCacheConfig PooledConfig(size_t len_threshold = 4, Bytes capacity = 64 * kKiB) {
  PooledCacheConfig cfg;
  cfg.capacity = capacity;
  cfg.len_threshold = len_threshold;
  return cfg;
}

TEST(PooledCache, HitAfterInsert) {
  PooledEmbeddingCache cache(PooledConfig());
  const std::vector<RowIndex> seq = {1, 2, 3, 4, 5};
  cache.Insert(MakeTableId(0), seq, std::vector<float>{1.0f, 2.0f});
  const auto* hit = cache.Lookup(MakeTableId(0), seq);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ((*hit)[1], 2.0f);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(PooledCache, PermutedSequenceHits) {
  PooledEmbeddingCache cache(PooledConfig());
  cache.Insert(MakeTableId(0), std::vector<RowIndex>{1, 2, 3, 4},
               std::vector<float>{7.0f});
  const auto* hit = cache.Lookup(MakeTableId(0), std::vector<RowIndex>{4, 3, 2, 1});
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ((*hit)[0], 7.0f);
}

TEST(PooledCache, BelowThresholdUncacheable) {
  PooledEmbeddingCache cache(PooledConfig(4));
  const std::vector<RowIndex> shortseq = {1, 2, 3};
  cache.Insert(MakeTableId(0), shortseq, std::vector<float>{1.0f});
  EXPECT_EQ(cache.Lookup(MakeTableId(0), shortseq), nullptr);
  EXPECT_EQ(cache.entry_count(), 0u);
  EXPECT_EQ(cache.stats().uncacheable, 1u);
}

TEST(PooledCache, TablesAreIsolated) {
  PooledEmbeddingCache cache(PooledConfig());
  const std::vector<RowIndex> seq = {1, 2, 3, 4};
  cache.Insert(MakeTableId(0), seq, std::vector<float>{1.0f});
  EXPECT_EQ(cache.Lookup(MakeTableId(1), seq), nullptr);
}

TEST(PooledCache, EvictsAtCapacity) {
  PooledEmbeddingCache cache(PooledConfig(4, 4 * kKiB));
  for (uint64_t i = 0; i < 200; ++i) {
    cache.Insert(MakeTableId(0), std::vector<RowIndex>{i, i + 1, i + 2, i + 3},
                 std::vector<float>(64, 1.0f));
  }
  EXPECT_LE(cache.memory_used(), 4 * kKiB);
  EXPECT_GT(cache.stats().evictions, 0u);
}

TEST(PooledCache, InvalidateTableDropsOnlyThatTable) {
  PooledEmbeddingCache cache(PooledConfig());
  const std::vector<RowIndex> seq = {1, 2, 3, 4};
  cache.Insert(MakeTableId(0), seq, std::vector<float>{1.0f});
  cache.Insert(MakeTableId(1), seq, std::vector<float>{2.0f});
  cache.InvalidateTable(MakeTableId(0));
  EXPECT_EQ(cache.Lookup(MakeTableId(0), seq), nullptr);
  EXPECT_NE(cache.Lookup(MakeTableId(1), seq), nullptr);
}

TEST(PooledCache, HitStatsTrackLength) {
  PooledEmbeddingCache cache(PooledConfig(2));
  cache.Insert(MakeTableId(0), std::vector<RowIndex>{1, 2, 3, 4, 5, 6},
               std::vector<float>{1.0f});
  (void)cache.Lookup(MakeTableId(0), std::vector<RowIndex>{1, 2, 3, 4, 5, 6});
  EXPECT_DOUBLE_EQ(cache.stats().AvgHitLength(), 6.0);
}

TEST(PooledCache, LenThresholdSweepChangesAdmissions) {
  // Table 4's knob: higher threshold -> fewer cacheable requests but longer
  // average hit length.
  for (const size_t threshold : {size_t{1}, size_t{8}, size_t{32}}) {
    PooledEmbeddingCache cache(PooledConfig(threshold, 1 * kMiB));
    Rng rng(5);
    uint64_t cacheable = 0;
    for (int i = 0; i < 1000; ++i) {
      const size_t len = 1 + rng.NextBounded(40);
      std::vector<RowIndex> seq(len);
      for (auto& s : seq) s = rng.NextBounded(1000);
      if (len >= threshold) ++cacheable;
      cache.Insert(MakeTableId(0), seq, std::vector<float>{1.0f});
    }
    EXPECT_EQ(cache.stats().inserts, cacheable);
  }
}

TEST(PooledCache, LruEvictionKeepsRecent) {
  PooledCacheConfig cfg;
  // Fits ~4 entries of 64 floats (256B + 64 overhead).
  cfg.capacity = 4 * (256 + 64);
  cfg.len_threshold = 2;
  PooledEmbeddingCache cache(cfg);
  for (uint64_t i = 0; i < 8; ++i) {
    cache.Insert(MakeTableId(0), std::vector<RowIndex>{i, i + 100},
                 std::vector<float>(64, static_cast<float>(i)));
  }
  // The most recent insert must still be there.
  EXPECT_NE(cache.Lookup(MakeTableId(0), std::vector<RowIndex>{7, 107}), nullptr);
  // The oldest must be gone.
  EXPECT_EQ(cache.Lookup(MakeTableId(0), std::vector<RowIndex>{0, 100}), nullptr);
}

}  // namespace
}  // namespace sdm
