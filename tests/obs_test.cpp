// Tests for the observability layer (src/obs) and its serving-stack wiring.
//
// Three invariants carry the layer:
//   1. OFF is byte-inert and ON is timing-inert: serving reports are
//      field-identical with observability on or off, in every runtime shape
//      (single host, single-loop disaggregated, sharded, shared tenants).
//   2. Exports are deterministic: the sharded runtime's merged documents are
//      bit-identical for every worker count, and the single-loop path agrees
//      with the sharded path on aggregate counters at serial load (the same
//      oracle sharded_runtime_test pins for serving reports).
//   3. The primitives behave: windows close lazily and stay sparse, span
//      rings bound memory by dropping NEW events, SLO watchdogs debounce and
//      emit both edges through the pluggable log sink.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "dlrm/model_zoo.h"
#include "obs/observability.h"
#include "serving/cluster.h"
#include "serving/host.h"
#include "tenant/multi_tenant_host.h"

namespace sdm {
namespace {

/// Absolute virtual time `d` past the epoch (loops start at SimTime(0)).
constexpr SimTime At(SimDuration d) { return SimTime(0) + d; }

[[nodiscard]] bool Contains(const std::string& doc, const std::string& needle) {
  return doc.find(needle) != std::string::npos;
}

[[nodiscard]] size_t CountOccurrences(const std::string& doc,
                                      const std::string& needle) {
  size_t n = 0;
  for (size_t at = doc.find(needle); at != std::string::npos;
       at = doc.find(needle, at + needle.size())) {
    ++n;
  }
  return n;
}

/// Sums the per-window values of one counter series in a metrics document.
/// Returns -1 when the series is absent (distinct from an all-zero series).
[[nodiscard]] double SumCounterPoints(const std::string& doc,
                                      const std::string& name) {
  const std::string needle =
      "{\"name\":\"" + name + "\",\"kind\":\"counter\",\"points\":[";
  const size_t at = doc.find(needle);
  if (at == std::string::npos) return -1;
  double total = 0;
  size_t i = at + needle.size();
  while (i < doc.size() && doc[i] == '[') {  // [window_start,value],...
    const size_t comma = doc.find(',', i);
    total += std::strtod(doc.c_str() + comma + 1, nullptr);
    i = doc.find(']', comma) + 1;
    if (i < doc.size() && doc[i] == ',') ++i;
  }
  return total;
}

// ---------------------------------------------------------------------------
// Metrics primitives.
// ---------------------------------------------------------------------------

ObsConfig MetricsOnly() {
  ObsConfig o;
  o.enable_metrics = true;
  o.metrics_interval = Millis(1);
  return o;
}

TEST(ObsMetrics, WindowsCloseLazilyAndSparseWindowsEmitNoPoints) {
  Observability obs(MetricsOnly());
  WindowedCounter* c = ObsCounter(&obs, "t/requests");
  ASSERT_NE(c, nullptr);
  c->Add(At(Micros(100)));
  c->Add(At(Micros(900)));
  // Window 1 sees no traffic: it must not appear in the series at all.
  c->Add(At(Millis(2) + Micros(500)));
  obs.Finalize();
  const std::string doc = obs.MetricsJson();
  EXPECT_TRUE(Contains(doc,
                       "{\"name\":\"t/requests\",\"kind\":\"counter\","
                       "\"points\":[[0,2],[2000000,1]]}"))
      << doc;
}

TEST(ObsMetrics, SameNameResolvesToTheSameHandle) {
  Observability obs(MetricsOnly());
  EXPECT_EQ(obs.metrics()->Counter("x"), obs.metrics()->Counter("x"));
  EXPECT_EQ(obs.metrics()->Gauge("g"), obs.metrics()->Gauge("g"));
  EXPECT_EQ(obs.metrics()->Hist("h"), obs.metrics()->Hist("h"));
}

TEST(ObsMetrics, HistogramWindowsResetBetweenWindows) {
  Observability obs(MetricsOnly());
  WindowedHistogram* h = ObsHist(&obs, "t/latency_ns");
  for (int i = 0; i < 4; ++i) h->Record(At(Micros(10 * (i + 1))), Micros(100));
  h->Record(At(Millis(1) + Micros(10)), Micros(900));
  obs.Finalize();
  const std::string doc = obs.MetricsJson();
  // Points are [window_start, count, mean, p50, p95, p99, max]: window 0
  // holds four 100us samples, window 1 exactly one 900us sample — the
  // second window's count proves per-window reset, its mean proves the
  // first window's samples did not leak forward.
  EXPECT_TRUE(Contains(doc, "\"kind\":\"hist\",\"points\":[[0,4,100")) << doc;
  EXPECT_TRUE(Contains(doc, "],[1000000,1,9")) << doc;
}

TEST(ObsMetrics, FinalizeIsIdempotent) {
  Observability obs(MetricsOnly());
  ObsCounter(&obs, "t/requests")->Add(At(Micros(1)));
  obs.Finalize();
  const std::string once = obs.MetricsJson();
  obs.Finalize();
  EXPECT_EQ(obs.MetricsJson(), once);
}

TEST(ObsMetrics, HandlesAreNullWhenSubsystemIsOff) {
  ObsConfig off;
  EXPECT_FALSE(off.enabled());
  EXPECT_EQ(ObsCounter(nullptr, "x"), nullptr);
  ObsConfig trace_only;
  trace_only.enable_tracing = true;
  Observability obs(trace_only);
  EXPECT_EQ(obs.metrics(), nullptr);
  EXPECT_EQ(ObsHist(&obs, "x"), nullptr);
  EXPECT_NE(ObsSpans(&obs), nullptr);
}

// ---------------------------------------------------------------------------
// Span recorder.
// ---------------------------------------------------------------------------

TEST(ObsSpans, ExportsChromeTraceEventsWithArgs) {
  SpanRecorder rec(/*sample_every=*/1, /*max_events=*/16);
  const SpanRecorder::TrackId q = rec.Track("host0", "queries");
  const SpanRecorder::TrackId l = rec.Track("host0", "lookup");
  rec.Span(q, "query", At(Micros(1)), At(Micros(5)), "{\"rows\":3}");
  rec.Instant(l, "join", At(Micros(2)));
  const std::vector<const SpanRecorder*> recs = {&rec};
  const std::string doc = SpanRecorder::ExportChromeTrace(recs);
  EXPECT_TRUE(Contains(doc, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
  EXPECT_TRUE(Contains(doc, "\"ph\":\"b\"")) << doc;
  EXPECT_TRUE(Contains(doc, "\"ph\":\"e\"")) << doc;
  EXPECT_TRUE(Contains(doc, "\"ph\":\"i\"")) << doc;
  EXPECT_TRUE(Contains(doc, "\"name\":\"query\"")) << doc;
  EXPECT_TRUE(Contains(doc, "{\"rows\":3}")) << doc;
}

TEST(ObsSpans, ExportDoesNotDependOnTrackRegistrationOrder) {
  // pids/tids are assigned from SORTED names at export, so two recorders
  // that interned their tracks in opposite order emit identical bytes.
  SpanRecorder a(1, 16), b(1, 16);
  const auto a_q = a.Track("host0", "queries");
  const auto a_l = a.Track("host0", "lookup");
  const auto b_l = b.Track("host0", "lookup");
  const auto b_q = b.Track("host0", "queries");
  a.Span(a_q, "query", At(Micros(1)), At(Micros(5)));
  a.Span(a_l, "lookup", At(Micros(2)), At(Micros(4)));
  b.Span(b_q, "query", At(Micros(1)), At(Micros(5)));
  b.Span(b_l, "lookup", At(Micros(2)), At(Micros(4)));
  const std::vector<const SpanRecorder*> ra = {&a};
  const std::vector<const SpanRecorder*> rb = {&b};
  EXPECT_EQ(SpanRecorder::ExportChromeTrace(ra),
            SpanRecorder::ExportChromeTrace(rb));
}

TEST(ObsSpans, RingDropsNewEventsWhenFullAndCountsThem) {
  SpanRecorder rec(1, /*max_events=*/2);
  const auto t = rec.Track("host0", "queries");
  rec.Span(t, "q1", At(Micros(1)), At(Micros(2)));
  rec.Span(t, "q2", At(Micros(3)), At(Micros(4)));
  rec.Span(t, "q3", At(Micros(5)), At(Micros(6)));  // dropped, not evicting
  EXPECT_EQ(rec.event_count(), 2u);
  EXPECT_EQ(rec.dropped(), 1u);
  const std::vector<const SpanRecorder*> recs = {&rec};
  const std::string doc = SpanRecorder::ExportChromeTrace(recs);
  EXPECT_TRUE(Contains(doc, "\"name\":\"q1\""));
  EXPECT_FALSE(Contains(doc, "\"name\":\"q3\""));
}

// ---------------------------------------------------------------------------
// SLO watchdog.
// ---------------------------------------------------------------------------

TEST(ObsSlo, DebouncesFiresOnceAndClearsThroughTheLogSink) {
  ObsConfig o = MetricsOnly();
  SloRule rule;
  rule.name = "err-rate";
  rule.metric = "t/errors";
  rule.stat = SloRule::Stat::kValue;
  rule.op = SloRule::Op::kAbove;
  rule.threshold = 5;
  rule.for_windows = 2;
  o.slo_rules = {rule};
  Observability obs(o);
  ASSERT_NE(obs.slo(), nullptr);

  std::vector<std::string> warns;
  SetLogSink([&](LogLevel level, const char*, int, const std::string& msg) {
    if (level == LogLevel::kWarn) warns.push_back(msg);
  });
  WindowedCounter* errors = ObsCounter(&obs, "t/errors");
  // Window 0: 10 errors (breach #1 — debounced, no event yet).
  for (int i = 0; i < 10; ++i) errors->Add(At(Micros(i + 1)));
  // Window 1: 10 errors (breach #2 — fires when the window closes).
  for (int i = 0; i < 10; ++i) errors->Add(At(Millis(1) + Micros(i + 1)));
  // Window 2: 1 error (below threshold — clears when the window closes).
  errors->Add(At(Millis(2) + Micros(1)));
  obs.Finalize();
  SetLogSink({});  // restore stderr

  const std::vector<SloEvent>& events = obs.slo()->events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_TRUE(events[0].fired);
  EXPECT_EQ(events[0].rule, "err-rate");
  EXPECT_EQ(events[0].consecutive, 2);
  EXPECT_DOUBLE_EQ(events[0].value, 10);
  EXPECT_FALSE(events[1].fired);
  EXPECT_EQ(obs.slo()->firing(), 0u);
  // Both edges went through the pluggable sink at WARN.
  ASSERT_EQ(warns.size(), 2u);
  EXPECT_TRUE(Contains(warns[0], "err-rate"));
  // And the export carries them in order.
  const std::string doc = obs.SloJson();
  EXPECT_TRUE(Contains(doc, "\"rule\":\"err-rate\"")) << doc;
  EXPECT_TRUE(Contains(doc, "\"fired\":true")) << doc;
  EXPECT_TRUE(Contains(doc, "\"fired\":false")) << doc;
}

// ---------------------------------------------------------------------------
// Serving-stack wiring: the on/off byte-identity and export determinism.
// ---------------------------------------------------------------------------

/// The sharded_runtime_test profile: batching delay off so the single-loop
/// and sharded schedulers flush identically under serial load.
HostSimConfig ObsHostConfig() {
  HostSimConfig cfg;
  cfg.host = MakeHwFAO(2);
  cfg.fm_capacity = 4 * kMiB;
  cfg.sm_backing_per_device = 32 * kMiB;
  cfg.workload.num_users = 2000;
  cfg.workload.seed = 11;
  cfg.seed = 11;
  cfg.tuning.sub_block_reads = false;
  cfg.tuning.enable_row_cache = false;
  cfg.tuning.max_batch_delay = SimDuration(0);
  cfg.tuning.fabric_latency = Micros(5);
  cfg.inference.max_concurrent_queries = 32;
  return cfg;
}

ModelConfig ObsModel() {
  ModelConfig model = MakeTinyUniformModel(64, 3, 1, 40'000);
  model.tables.back().num_rows = 4'000;  // item side stays FM-direct
  for (auto& t : model.tables) {
    if (t.role == TableRole::kUser) t.zipf_alpha = 1.1;
  }
  return model;
}

/// Full-fat observability: metrics + trace-every-query + one rule that is
/// guaranteed to fire (any completed query has p99 latency above 1ns).
ObsConfig FullObs() {
  ObsConfig o;
  o.enable_metrics = true;
  o.metrics_interval = Millis(1);
  o.enable_tracing = true;
  o.trace_sample_every = 1;
  SloRule rule;
  rule.name = "query-p99";
  rule.metric = "host0/query/latency_ns";
  rule.stat = SloRule::Stat::kP99;
  rule.op = SloRule::Op::kAbove;
  rule.threshold = 1;
  o.slo_rules = {rule};
  return o;
}

/// Field-by-field equality of two host reports — the whole struct, because
/// "timing-inert when on" means not one counter may move.
void ExpectHostReportsEqual(const HostRunReport& a, const HostRunReport& b) {
  EXPECT_EQ(a.queries_completed, b.queries_completed);
  EXPECT_EQ(a.queries_served, b.queries_served);
  EXPECT_DOUBLE_EQ(a.achieved_qps, b.achieved_qps);
  EXPECT_EQ(a.p50.nanos(), b.p50.nanos());
  EXPECT_EQ(a.p95.nanos(), b.p95.nanos());
  EXPECT_EQ(a.p99.nanos(), b.p99.nanos());
  EXPECT_EQ(a.mean.nanos(), b.mean.nanos());
  EXPECT_DOUBLE_EQ(a.row_cache_hit_rate, b.row_cache_hit_rate);
  EXPECT_DOUBLE_EQ(a.pooled_hit_rate, b.pooled_hit_rate);
  EXPECT_DOUBLE_EQ(a.sm_iops, b.sm_iops);
  EXPECT_DOUBLE_EQ(a.sm_read_amplification, b.sm_read_amplification);
  EXPECT_EQ(a.cross_request_merges, b.cross_request_merges);
  EXPECT_EQ(a.singleflight_hits, b.singleflight_hits);
  EXPECT_DOUBLE_EQ(a.batch_occupancy, b.batch_occupancy);
  EXPECT_EQ(a.prefetch_issued, b.prefetch_issued);
  EXPECT_DOUBLE_EQ(a.prefetch_hit_rate, b.prefetch_hit_rate);
  EXPECT_EQ(a.prefetch_wasted_bytes, b.prefetch_wasted_bytes);
  EXPECT_EQ(a.io_errors, b.io_errors);
  EXPECT_EQ(a.io_retries, b.io_retries);
  EXPECT_EQ(a.reader_retries, b.reader_retries);
  EXPECT_EQ(a.deadline_expired, b.deadline_expired);
  EXPECT_EQ(a.hedges_issued, b.hedges_issued);
  EXPECT_EQ(a.hedges_won, b.hedges_won);
  EXPECT_EQ(a.queries_degraded, b.queries_degraded);
  EXPECT_EQ(a.rows_failed, b.rows_failed);
  EXPECT_EQ(a.lookups_shed, b.lookups_shed);
  EXPECT_EQ(a.blocks_corrupt, b.blocks_corrupt);
  EXPECT_EQ(a.replica_reads, b.replica_reads);
  EXPECT_EQ(a.read_repairs, b.read_repairs);
  EXPECT_EQ(a.extents_replicated, b.extents_replicated);
  EXPECT_EQ(a.avg_cpu_per_query.nanos(), b.avg_cpu_per_query.nanos());
}

TEST(ObsServing, SingleHostReportIsByteIdenticalWithObsOnAndOff) {
  const ModelConfig model = ObsModel();
  const HostSimConfig off = ObsHostConfig();
  HostSimConfig on = off;
  on.tuning.obs = FullObs();

  HostSimulation a(off);
  HostSimulation b(on);
  ASSERT_TRUE(a.LoadModel(model).ok());
  ASSERT_TRUE(b.LoadModel(model).ok());
  const HostRunReport ra = a.Run(/*target_qps=*/800, /*num_queries=*/500);
  const HostRunReport rb = b.Run(800, 500);
  ExpectHostReportsEqual(ra, rb);

  // Off exports nothing; on exports every layer under the host0/ prefix.
  EXPECT_EQ(a.ObsMetricsJson(), "{}");
  EXPECT_EQ(a.ObsTraceJson(), "{}");
  const std::string metrics = b.ObsMetricsJson();
  EXPECT_TRUE(Contains(metrics, "host0/query/requests")) << metrics;
  EXPECT_TRUE(Contains(metrics, "host0/query/latency_ns"));
  EXPECT_TRUE(Contains(metrics, "host0/lookup/requests"));
  EXPECT_TRUE(Contains(metrics, "host0/dev0/sched/"));
  EXPECT_EQ(SumCounterPoints(metrics, "host0/query/requests"),
            static_cast<double>(rb.queries_completed));
  const std::string trace = b.ObsTraceJson();
  EXPECT_TRUE(Contains(trace, "\"traceEvents\":["));
  EXPECT_TRUE(Contains(trace, "\"name\":\"query\""));
  EXPECT_TRUE(Contains(trace, "\"name\":\"lookup\""));
  EXPECT_TRUE(Contains(b.ObsSloJson(), "query-p99"));
}

TEST(ObsServing, TraceSamplingBoundsSpanVolumeDeterministically) {
  const ModelConfig model = ObsModel();
  HostSimConfig every = ObsHostConfig();
  every.tuning.obs.enable_tracing = true;
  HostSimConfig tenth = ObsHostConfig();
  tenth.tuning.obs.enable_tracing = true;
  tenth.tuning.obs.trace_sample_every = 10;

  HostSimulation a(every);
  HostSimulation b(tenth);
  ASSERT_TRUE(a.LoadModel(model).ok());
  ASSERT_TRUE(b.LoadModel(model).ok());
  (void)a.Run(800, 500);
  (void)b.Run(800, 500);
  const size_t all = CountOccurrences(a.ObsTraceJson(), "\"name\":\"query\"");
  const size_t sampled = CountOccurrences(b.ObsTraceJson(), "\"name\":\"query\"");
  EXPECT_EQ(all, 2u * 500u);  // one "b" + one "e" record per span
  EXPECT_EQ(sampled, 2u * 50u);
}

// ---------------------------------------------------------------------------
// Cluster shapes.
// ---------------------------------------------------------------------------

struct ClusterRun {
  DisaggregatedRunReport report;
  std::string metrics;
  std::string trace;
  std::string slo;
};

ClusterRun RunClusterObs(size_t hosts, const HostSimConfig& cfg,
                         size_t num_shards, double qps, uint64_t queries) {
  DisaggregatedConfig dc;
  dc.enabled = true;
  dc.num_shards = num_shards;
  ClusterSimulation cluster(hosts, cfg, RoutingPolicy::kUserSticky, dc);
  EXPECT_TRUE(cluster.LoadModel(ObsModel()).ok());
  ClusterRun out;
  out.report = cluster.RunDisaggregated(qps, queries);
  out.metrics = cluster.ObsMetricsJson();
  out.trace = cluster.ObsTraceJson();
  out.slo = cluster.ObsSloJson();
  return out;
}

/// The subset of DisaggregatedRunReport the obs on/off identity pins (the
/// full-field version lives in sharded_runtime_test; this covers every
/// family the instrumentation touches).
void ExpectClusterReportsEqual(const DisaggregatedRunReport& a,
                               const DisaggregatedRunReport& b) {
  ASSERT_EQ(a.hosts.size(), b.hosts.size());
  for (size_t i = 0; i < a.hosts.size(); ++i) {
    SCOPED_TRACE(testing::Message() << "host " << i);
    ExpectHostReportsEqual(a.hosts[i].run, b.hosts[i].run);
  }
  EXPECT_EQ(a.sm_device_reads, b.sm_device_reads);
  EXPECT_EQ(a.io.device_reads, b.io.device_reads);
  EXPECT_EQ(a.io.cross_request_merges, b.io.cross_request_merges);
  EXPECT_EQ(a.io.singleflight_hits, b.io.singleflight_hits);
  EXPECT_EQ(a.cross_host_hits, b.cross_host_hits);
  EXPECT_EQ(a.fabric.requests, b.fabric.requests);
  EXPECT_EQ(a.fabric.responses, b.fabric.responses);
  EXPECT_EQ(a.fabric.request_bytes, b.fabric.request_bytes);
  EXPECT_EQ(a.fabric.response_bytes, b.fabric.response_bytes);
}

TEST(ObsServing, DisaggregatedReportIsByteIdenticalWithObsOnAndOff) {
  const HostSimConfig off = ObsHostConfig();
  HostSimConfig on = off;
  on.tuning.obs = FullObs();
  // Single-loop and sharded runtimes, both pinned.
  for (const size_t shards : {size_t{1}, size_t{2}}) {
    SCOPED_TRACE(testing::Message() << "num_shards " << shards);
    const ClusterRun ro = RunClusterObs(2, off, shards, 400, 600);
    const ClusterRun rx = RunClusterObs(2, on, shards, 400, 600);
    ExpectClusterReportsEqual(ro.report, rx.report);
    EXPECT_EQ(ro.metrics, "{}");
    EXPECT_TRUE(Contains(rx.metrics, "host1/query/requests")) << rx.metrics;
    EXPECT_TRUE(Contains(rx.trace, "\"name\":\"query\""));
  }
}

TEST(ObsServing, ShardedExportsAreBitIdenticalAcrossWorkerCounts) {
  HostSimConfig cfg = ObsHostConfig();
  cfg.tuning.obs = FullObs();
  // High load — real cross-host overlap, thousands of cross-LP messages —
  // yet the merged documents must not move by one byte with worker count.
  const ClusterRun k2 = RunClusterObs(2, cfg, 2, 2000, 1500);
  const ClusterRun k3 = RunClusterObs(2, cfg, 3, 2000, 1500);
  const ClusterRun k4 = RunClusterObs(2, cfg, 4, 2000, 1500);
  EXPECT_EQ(k2.metrics, k3.metrics);
  EXPECT_EQ(k2.metrics, k4.metrics);
  EXPECT_EQ(k2.trace, k3.trace);
  EXPECT_EQ(k2.trace, k4.trace);
  EXPECT_EQ(k2.slo, k3.slo);
  EXPECT_EQ(k2.slo, k4.slo);
  // The documents carry both sides of the split fabric instrumentation.
  EXPECT_TRUE(Contains(k2.metrics, "host0/dev0/fabric/")) << k2.metrics;
  EXPECT_TRUE(Contains(k2.metrics, "svc/host0/dev0/fabric/"));
}

TEST(ObsServing, SerialLoadSingleLoopAndShardedAgreeOnAggregates) {
  // The single-loop determinism oracle, extended to the metric plane: under
  // serial load the host-side counters (queries, lookups, rows) must agree
  // exactly between the two runtimes. Device/scheduler metric NAMES differ
  // structurally between the shapes (single-loop hosts own scheduler slices
  // under host<i>/, the sharded device shard records under svc/), so the
  // comparison pins the host-plane series that exist in both.
  HostSimConfig cfg = ObsHostConfig();
  cfg.tuning.obs = FullObs();
  const ClusterRun single = RunClusterObs(2, cfg, 1, 2.0, 120);
  const ClusterRun sharded = RunClusterObs(2, cfg, 2, 2.0, 120);
  ExpectClusterReportsEqual(single.report, sharded.report);
  uint64_t completed = 0;
  for (const auto& h : single.report.hosts) completed += h.run.queries_completed;
  double single_total = 0, sharded_total = 0;
  for (const std::string host : {"host0/", "host1/"}) {
    for (const std::string series :
         {"query/requests", "lookup/requests", "lookup/sm_rows"}) {
      SCOPED_TRACE(host + series);
      const double s = SumCounterPoints(single.metrics, host + series);
      const double k = SumCounterPoints(sharded.metrics, host + series);
      EXPECT_GE(s, 0) << "series missing from single-loop export";
      EXPECT_EQ(s, k);
    }
    single_total += SumCounterPoints(single.metrics, host + "query/requests");
    sharded_total += SumCounterPoints(sharded.metrics, host + "query/requests");
  }
  EXPECT_EQ(single_total, static_cast<double>(completed));
  EXPECT_EQ(sharded_total, static_cast<double>(completed));
  // Query spans are host-plane too: same sampled population in both shapes.
  EXPECT_EQ(CountOccurrences(single.trace, "\"name\":\"query\""),
            CountOccurrences(sharded.trace, "\"name\":\"query\""));
}

TEST(ObsServing, SharedTenantsReportIsByteIdenticalWithObsOnAndOff) {
  HostSimConfig base = ObsHostConfig();
  base.fm_capacity = 24 * kMiB;
  HostSimConfig on = base;
  on.tuning.obs.enable_metrics = true;
  on.tuning.obs.enable_tracing = true;

  const ModelConfig model = MakeTinyUniformModel(64, 2, 1, 40'000);
  MultiTenantHost a(base, 77, /*shared_device=*/true);
  MultiTenantHost b(on, 77, /*shared_device=*/true);
  for (MultiTenantHost* h : {&a, &b}) {
    ASSERT_TRUE(h->AddTenant(model, 4 * kMiB, TenantClass::kForeground).ok());
    ASSERT_TRUE(h->AddTenant(model, 4 * kMiB, TenantClass::kBackground).ok());
  }
  const MultiTenantReport ra = a.Run(/*qps_per_tenant=*/200, /*queries=*/300);
  const MultiTenantReport rb = b.Run(200, 300);
  ASSERT_EQ(ra.tenants.size(), rb.tenants.size());
  for (size_t i = 0; i < ra.tenants.size(); ++i) {
    SCOPED_TRACE(testing::Message() << "tenant " << i);
    ExpectHostReportsEqual(ra.tenants[i].run, rb.tenants[i].run);
    EXPECT_EQ(ra.tenants[i].fg_lane_bytes, rb.tenants[i].fg_lane_bytes);
    EXPECT_EQ(ra.tenants[i].bg_lane_bytes, rb.tenants[i].bg_lane_bytes);
  }
  EXPECT_EQ(ra.sm_device_reads, rb.sm_device_reads);
  EXPECT_EQ(a.ObsMetricsJson(), "{}");
  const std::string metrics = b.ObsMetricsJson();
  EXPECT_TRUE(Contains(metrics, "tenant0/query/requests")) << metrics;
  EXPECT_TRUE(Contains(metrics, "tenant1/query/requests"));
  EXPECT_TRUE(Contains(metrics, "svc/"));
}

// ---------------------------------------------------------------------------
// Export stability: the lint-time ordered-exports invariant, pinned at
// runtime. Every Obs*Json accessor must be a pure fold over ordered state —
// exporting twice, or exporting from a byte-identical fresh run, yields the
// exact same document. A hash-ordered container anywhere in the export
// pipeline would break one of these equalities.
// ---------------------------------------------------------------------------

TEST(ObsExportStability, ClusterExportsRepeatAndReproduceByteIdentically) {
  HostSimConfig cfg = ObsHostConfig();
  cfg.tuning.obs = FullObs();
  DisaggregatedConfig dc;
  dc.enabled = true;
  std::string first_metrics, first_trace, first_slo;
  for (int round = 0; round < 2; ++round) {
    SCOPED_TRACE(testing::Message() << "round " << round);
    ClusterSimulation cluster(2, cfg, RoutingPolicy::kUserSticky, dc);
    ASSERT_TRUE(cluster.LoadModel(ObsModel()).ok());
    (void)cluster.RunDisaggregated(400, 600);
    const std::string m = cluster.ObsMetricsJson();
    const std::string t = cluster.ObsTraceJson();
    const std::string s = cluster.ObsSloJson();
    EXPECT_FALSE(m == "{}");
    // Re-exporting moves no bytes...
    EXPECT_EQ(cluster.ObsMetricsJson(), m);
    EXPECT_EQ(cluster.ObsTraceJson(), t);
    EXPECT_EQ(cluster.ObsSloJson(), s);
    if (round == 0) {
      first_metrics = m;
      first_trace = t;
      first_slo = s;
    } else {
      // ...and neither does running the identical simulation again.
      EXPECT_EQ(m, first_metrics);
      EXPECT_EQ(t, first_trace);
      EXPECT_EQ(s, first_slo);
    }
  }
}

TEST(ObsExportStability, MultiTenantExportsRepeatAndReproduceByteIdentically) {
  HostSimConfig cfg = ObsHostConfig();
  cfg.fm_capacity = 24 * kMiB;
  cfg.tuning.obs = FullObs();
  const ModelConfig model = MakeTinyUniformModel(64, 2, 1, 40'000);
  std::string first_metrics, first_trace;
  for (int round = 0; round < 2; ++round) {
    SCOPED_TRACE(testing::Message() << "round " << round);
    MultiTenantHost host(cfg, 77, /*shared_device=*/true);
    ASSERT_TRUE(host.AddTenant(model, 4 * kMiB, TenantClass::kForeground).ok());
    ASSERT_TRUE(host.AddTenant(model, 4 * kMiB, TenantClass::kBackground).ok());
    (void)host.Run(/*qps_per_tenant=*/200, /*queries=*/300);
    const std::string m = host.ObsMetricsJson();
    const std::string t = host.ObsTraceJson();
    EXPECT_FALSE(m == "{}");
    EXPECT_EQ(host.ObsMetricsJson(), m);
    EXPECT_EQ(host.ObsTraceJson(), t);
    if (round == 0) {
      first_metrics = m;
      first_trace = t;
    } else {
      EXPECT_EQ(m, first_metrics);
      EXPECT_EQ(t, first_trace);
    }
  }
}

}  // namespace
}  // namespace sdm
