// Tests for src/common: units, Result, RNG/Zipf, histogram, stats,
// event loop, thread pool.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/event_loop.h"
#include "common/histogram.h"
#include "common/kv_format.h"
#include "common/logging.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/thread_pool.h"
#include "common/types.h"

namespace sdm {
namespace {

// ---------------------------------------------------------------------------
// Units.
// ---------------------------------------------------------------------------

TEST(Types, DurationConversions) {
  EXPECT_EQ(Micros(1).nanos(), 1000);
  EXPECT_EQ(Millis(1).nanos(), 1'000'000);
  EXPECT_EQ(Seconds(1).nanos(), 1'000'000'000);
  EXPECT_DOUBLE_EQ(Millis(2.5).millis(), 2.5);
  EXPECT_DOUBLE_EQ(Seconds(0.25).seconds(), 0.25);
}

TEST(Types, DurationArithmetic) {
  const SimDuration a = Micros(10);
  const SimDuration b = Micros(4);
  EXPECT_EQ((a + b).nanos(), 14'000);
  EXPECT_EQ((a - b).nanos(), 6'000);
  EXPECT_EQ((a * 2.5).nanos(), 25'000);
  EXPECT_EQ((a / 2).nanos(), 5'000);
  EXPECT_LT(b, a);
}

TEST(Types, TimePlusDuration) {
  SimTime t(1000);
  t += Micros(1);
  EXPECT_EQ(t.nanos(), 2000);
  EXPECT_EQ((t - SimTime(500)).nanos(), 1500);
}

TEST(Types, BlockMath) {
  EXPECT_EQ(BlocksFor(0), 0u);
  EXPECT_EQ(BlocksFor(1), 1u);
  EXPECT_EQ(BlocksFor(kBlockSize), 1u);
  EXPECT_EQ(BlocksFor(kBlockSize + 1), 2u);
  EXPECT_DOUBLE_EQ(AsGiB(kGiB), 1.0);
  EXPECT_DOUBLE_EQ(AsMiB(512 * kKiB), 0.5);
}

// ---------------------------------------------------------------------------
// Result / Status.
// ---------------------------------------------------------------------------

TEST(Status, OkByDefault) {
  const Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  const Status s = NotFoundError("row 7");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_NE(s.ToString().find("row 7"), std::string::npos);
}

TEST(Result, HoldsValue) {
  const Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(Result, HoldsError) {
  const Result<int> r = InvalidArgumentError("bad");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(Result, MoveOut) {
  Result<std::vector<int>> r = std::vector<int>{1, 2, 3};
  const std::vector<int> v = std::move(r).value();
  EXPECT_EQ(v.size(), 3u);
}

// ---------------------------------------------------------------------------
// Rng.
// ---------------------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, BoundedStaysInRange) {
  Rng rng(3);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(Rng, BoundedIsRoughlyUniform) {
  Rng rng(11);
  std::vector<int> buckets(10, 0);
  const int n = 100'000;
  for (int i = 0; i < n; ++i) ++buckets[rng.NextBounded(10)];
  for (const int c : buckets) {
    EXPECT_NEAR(c, n / 10, n / 10 * 0.1);
  }
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10'000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(13);
  double sum = 0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) sum += rng.NextExponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, GaussianMoments) {
  Rng rng(17);
  double sum = 0;
  double sq = 0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, LogNormalMedian) {
  Rng rng(19);
  std::vector<double> vals;
  const int n = 50'001;
  vals.reserve(n);
  for (int i = 0; i < n; ++i) vals.push_back(rng.NextLogNormal(8.0, 0.7));
  std::nth_element(vals.begin(), vals.begin() + n / 2, vals.end());
  EXPECT_NEAR(vals[n / 2], 8.0, 0.4);
}

TEST(Rng, ForkIsIndependent) {
  Rng parent(23);
  Rng child = parent.Fork();
  EXPECT_NE(parent.Next(), child.Next());
}

TEST(RandomPermutationTest, IsBijection) {
  Rng rng(29);
  const auto perm = RandomPermutation(1000, rng);
  std::set<uint64_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 1000u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 999u);
}

// ---------------------------------------------------------------------------
// ZipfSampler.
// ---------------------------------------------------------------------------

TEST(Zipf, AlphaZeroIsUniform) {
  ZipfSampler z(100, 0.0);
  Rng rng(31);
  std::vector<int> counts(100, 0);
  const int n = 200'000;
  for (int i = 0; i < n; ++i) ++counts[z.Sample(rng)];
  for (const int c : counts) EXPECT_NEAR(c, n / 100, n / 100 * 0.15);
}

TEST(Zipf, SamplesWithinDomain) {
  ZipfSampler z(50, 1.1);
  Rng rng(37);
  for (int i = 0; i < 50'000; ++i) EXPECT_LT(z.Sample(rng), 50u);
}

TEST(Zipf, SingleElementDomain) {
  ZipfSampler z(1, 1.0);
  Rng rng(41);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(z.Sample(rng), 0u);
}

TEST(Zipf, PmfSumsToOne) {
  ZipfSampler z(1000, 0.9);
  double sum = 0;
  for (uint64_t r = 0; r < 1000; ++r) sum += z.Pmf(r);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Zipf, EmpiricalMatchesPmfForHotRanks) {
  ZipfSampler z(10'000, 1.0);
  Rng rng(43);
  const int n = 500'000;
  std::vector<uint64_t> counts(16, 0);
  for (int i = 0; i < n; ++i) {
    const uint64_t s = z.Sample(rng);
    if (s < counts.size()) ++counts[s];
  }
  for (size_t r = 0; r < counts.size(); ++r) {
    const double expected = z.Pmf(r) * n;
    EXPECT_NEAR(counts[r], expected, expected * 0.08 + 30)
        << "rank " << r;
  }
}

// Higher alpha concentrates more mass at the top — the property the
// user/item locality split (Fig. 4) relies on.
class ZipfConcentration : public ::testing::TestWithParam<double> {};

TEST_P(ZipfConcentration, TopMassGrowsWithAlpha) {
  const double alpha = GetParam();
  ZipfSampler weak(100'000, alpha);
  ZipfSampler strong(100'000, alpha + 0.3);
  EXPECT_GT(strong.TopMass(100), weak.TopMass(100));
}

INSTANTIATE_TEST_SUITE_P(AlphaSweep, ZipfConcentration,
                         ::testing::Values(0.2, 0.5, 0.7, 0.9, 1.1));

// ---------------------------------------------------------------------------
// Histogram.
// ---------------------------------------------------------------------------

TEST(Histogram, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.P99(), 0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Histogram, SingleValue) {
  Histogram h;
  h.Record(5000);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 5000);
  EXPECT_EQ(h.max(), 5000);
  EXPECT_NEAR(h.P50(), 5000, 5000 * 0.05);
}

TEST(Histogram, PercentilesOfUniformRamp) {
  Histogram h;
  for (int64_t v = 1; v <= 100'000; ++v) h.Record(v);
  EXPECT_NEAR(h.P50(), 50'000, 50'000 * 0.05);
  EXPECT_NEAR(h.P95(), 95'000, 95'000 * 0.05);
  EXPECT_NEAR(h.P99(), 99'000, 99'000 * 0.05);
  EXPECT_NEAR(h.mean(), 50'000, 500);
}

TEST(Histogram, BoundedRelativeError) {
  Histogram h;
  const std::vector<int64_t> values = {1,    7,     63,     999,       4096,
                                       5000, 77777, 123456, 999999999, 1};
  for (const int64_t v : values) {
    h.Reset();
    h.Record(v);
    const int64_t q = h.ValueAtQuantile(1.0);
    EXPECT_GE(q, v);           // upper bound of bucket
    EXPECT_LE(q, v + v / 16 + 1);  // within one sub-bucket (1/32 rel + slack)
  }
}

TEST(Histogram, MergeAddsCounts) {
  Histogram a;
  Histogram b;
  for (int i = 0; i < 100; ++i) a.Record(100);
  for (int i = 0; i < 100; ++i) b.Record(10'000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 200u);
  EXPECT_GE(a.max(), 10'000);
  EXPECT_NEAR(a.ValueAtQuantile(0.25), 100, 10);
}

TEST(Histogram, RecordsDurations) {
  Histogram h;
  h.Record(Micros(150));
  EXPECT_NEAR(h.P50(), 150'000, 150'000 * 0.05);
}

TEST(Histogram, ClampsToMaxValue) {
  Histogram h(1 << 20);
  h.Record(int64_t{1} << 40);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(h.ValueAtQuantile(1.0), 1 << 20);
}

TEST(Histogram, SummaryStringContainsFields) {
  Histogram h;
  h.Record(Micros(10));
  const std::string s = h.SummaryString();
  EXPECT_NE(s.find("count=1"), std::string::npos);
  EXPECT_NE(s.find("p99"), std::string::npos);
}

TEST(Histogram, LowValuesClampIntoTheTrackedDomain) {
  // Zero and negative samples must clamp to 1 BEFORE the summary stats see
  // them: otherwise mean()/min() go negative while the bucket counts stay
  // clamped, and quantiles (capped at observed_max_) disagree with count().
  Histogram h;
  h.Record(0);
  h.Record(-5'000);
  h.Record(int64_t{-1} << 40);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 1);
  EXPECT_DOUBLE_EQ(h.mean(), 1.0);
  EXPECT_EQ(h.ValueAtQuantile(0.0), 1);
  EXPECT_EQ(h.ValueAtQuantile(1.0), 1);
}

TEST(Histogram, QuantilesAreMonotoneInQ) {
  // Property: for ANY recorded population, ValueAtQuantile must be a
  // non-decreasing function of q — a sweep can never report p95 < p50.
  Rng rng(1234);
  Histogram h;
  for (int i = 0; i < 5'000; ++i) {
    h.Record(static_cast<int64_t>(rng.NextLogNormal(/*median=*/50'000, /*sigma=*/2.0)));
  }
  int64_t prev = h.ValueAtQuantile(0.0);
  for (double q = 0.01; q <= 1.0 + 1e-9; q += 0.01) {
    const int64_t v = h.ValueAtQuantile(q);
    EXPECT_GE(v, prev) << "q=" << q;
    prev = v;
  }
}

TEST(Histogram, RandomSamplesStayWithinRelativeErrorBound) {
  // Property over a random heavy-tailed population: every reported quantile
  // lies within the log-bucket resolution (1/32 relative, plus integer
  // slack) of the exact order statistic.
  Rng rng(99);
  std::vector<int64_t> values;
  Histogram h;
  for (int i = 0; i < 2'000; ++i) {
    const int64_t v =
        std::max<int64_t>(1, static_cast<int64_t>(rng.NextExponential(1.0) * 1e6));
    values.push_back(v);
    h.Record(v);
  }
  std::sort(values.begin(), values.end());
  for (const double q : {0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 1.0}) {
    const size_t rank =
        std::min(values.size() - 1,
                 static_cast<size_t>(q * static_cast<double>(values.size())));
    const double exact = static_cast<double>(values[rank]);
    const double got = static_cast<double>(h.ValueAtQuantile(q));
    // The bucket upper bound can sit one sub-bucket above the exact value;
    // rank rounding adds at most one neighbouring sample of slack.
    EXPECT_NEAR(got, exact, exact / 8 + 2) << "q=" << q;
  }
}

// ---------------------------------------------------------------------------
// KvFormatter.
// ---------------------------------------------------------------------------

TEST(KvFormat, BuildsSpaceSeparatedTokens) {
  KvFormatter f;
  f.Kv("qps", "%.1f", 12.5).Kv("n", "%d", 3).Kv("tag", "%s", "hot");
  EXPECT_EQ(f.str(), "qps=12.5 n=3 tag=hot");
}

TEST(KvFormat, RawTokenAndEmptyFormatter) {
  KvFormatter empty;
  EXPECT_EQ(empty.str(), "");
  KvFormatter f;
  f.Raw("[host0]").Kv("p99", "%.2fms", 1.25).Raw("(degraded)");
  EXPECT_EQ(f.str(), "[host0] p99=1.25ms (degraded)");
}

TEST(KvFormat, CompositeValueSpecs) {
  // Reports lean on multi-argument specs ("a/b", "a+b"); pin one of each.
  KvFormatter f;
  f.Kv("qps", "%.0f/%.0f", 98.0, 100.0).Kv("retry", "%d+%d", 2, 7);
  EXPECT_EQ(f.str(), "qps=98/100 retry=2+7");
}

// ---------------------------------------------------------------------------
// Pluggable log sink.
// ---------------------------------------------------------------------------

TEST(Logging, SinkCapturesRecordsAndEmptyRestoresStderr) {
  std::vector<std::pair<LogLevel, std::string>> got;
  std::string last_file;
  SetLogSink([&](LogLevel level, const char* file, int line, const std::string& msg) {
    ASSERT_NE(file, nullptr);
    EXPECT_GT(line, 0);
    last_file = file;
    got.push_back({level, msg});
  });
  SDM_LOG_WARN << "queue depth " << 42 << " above limit";
  SDM_LOG_INFO << "benign";
  SetLogSink({});  // restore the stderr default
  SDM_LOG_INFO << "not captured";

  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].first, LogLevel::kWarn);
  EXPECT_EQ(got[0].second, "queue depth 42 above limit");
  EXPECT_EQ(got[1].first, LogLevel::kInfo);
  EXPECT_NE(last_file.find("common_test.cpp"), std::string::npos);
}

// ---------------------------------------------------------------------------
// StatsRegistry.
// ---------------------------------------------------------------------------

TEST(Stats, CounterLifecycle) {
  StatsRegistry reg;
  Counter* c = reg.GetCounter("ios");
  c->Add();
  c->Add(9);
  EXPECT_EQ(reg.CounterValue("ios"), 10u);
  EXPECT_EQ(reg.CounterValue("missing"), 0u);
}

TEST(Stats, SameNameSameCounter) {
  StatsRegistry reg;
  EXPECT_EQ(reg.GetCounter("x"), reg.GetCounter("x"));
  EXPECT_NE(reg.GetCounter("x"), reg.GetCounter("y"));
}

TEST(Stats, GaugeSetAndAdd) {
  StatsRegistry reg;
  Gauge* g = reg.GetGauge("depth");
  g->Set(4);
  g->Add(2);
  EXPECT_DOUBLE_EQ(reg.GaugeValue("depth"), 6.0);
}

TEST(Stats, ResetAllZeroes) {
  StatsRegistry reg;
  reg.GetCounter("a")->Add(5);
  reg.GetGauge("b")->Set(7);
  reg.ResetAll();
  EXPECT_EQ(reg.CounterValue("a"), 0u);
  EXPECT_DOUBLE_EQ(reg.GaugeValue("b"), 0.0);
}

TEST(Stats, SnapshotSorted) {
  StatsRegistry reg;
  reg.GetCounter("zz")->Add(1);
  reg.GetCounter("aa")->Add(2);
  const auto snap = reg.Counters();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].first, "aa");
  EXPECT_EQ(snap[1].first, "zz");
}

// ---------------------------------------------------------------------------
// EventLoop.
// ---------------------------------------------------------------------------

TEST(EventLoop, RunsInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.ScheduleAt(SimTime(300), [&] { order.push_back(3); });
  loop.ScheduleAt(SimTime(100), [&] { order.push_back(1); });
  loop.ScheduleAt(SimTime(200), [&] { order.push_back(2); });
  loop.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.Now().nanos(), 300);
}

TEST(EventLoop, FifoTieBreakAtEqualTimes) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    loop.ScheduleAt(SimTime(50), [&order, i] { order.push_back(i); });
  }
  loop.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventLoop, ScheduleAfterAdvancesFromNow) {
  EventLoop loop;
  int64_t fired_at = -1;
  loop.ScheduleAt(SimTime(1000), [&] {
    loop.ScheduleAfter(Nanos(500), [&] { fired_at = loop.Now().nanos(); });
  });
  loop.RunUntilIdle();
  EXPECT_EQ(fired_at, 1500);
}

TEST(EventLoop, RunUntilStopsAtDeadline) {
  EventLoop loop;
  int ran = 0;
  loop.ScheduleAt(SimTime(100), [&] { ++ran; });
  loop.ScheduleAt(SimTime(900), [&] { ++ran; });
  loop.RunUntil(SimTime(500));
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(loop.Now().nanos(), 500);
  EXPECT_EQ(loop.pending_events(), 1u);
  loop.RunUntilIdle();
  EXPECT_EQ(ran, 2);
}

TEST(EventLoop, PastSchedulingClampsToNow) {
  EventLoop loop;
  loop.ScheduleAt(SimTime(1000), [&] {
    loop.ScheduleAt(SimTime(10), [&] {
      // Runs "now", not in the past.
      EXPECT_GE(loop.Now().nanos(), 1000);
    });
  });
  loop.RunUntilIdle();
}

TEST(EventLoop, CascadedEventsAllRun) {
  EventLoop loop;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) loop.ScheduleAfter(Nanos(1), recurse);
  };
  loop.ScheduleAfter(Nanos(1), recurse);
  const uint64_t n = loop.RunUntilIdle();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(n, 100u);
}

TEST(EventLoop, RunWindowIsStrictlyExclusiveOfItsEnd) {
  // The conservative-window primitive: a window [start, end) owns events
  // BEFORE end; an event exactly AT end (a cross-shard message one
  // lookahead away) belongs to the next window.
  EventLoop loop;
  std::vector<int> order;
  loop.ScheduleAt(SimTime(100), [&] { order.push_back(1); });
  loop.ScheduleAt(SimTime(199), [&] { order.push_back(2); });
  loop.ScheduleAt(SimTime(200), [&] { order.push_back(3); });
  EXPECT_EQ(loop.RunWindow(SimTime(200)), 2u);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(loop.Now().nanos(), 200);  // clock rests at the window end
  EXPECT_EQ(loop.pending_events(), 1u);
  EXPECT_EQ(loop.RunWindow(SimTime(300)), 1u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventLoop, NextEventTimeTracksTheHeapHead) {
  EventLoop loop;
  EXPECT_EQ(loop.next_event_time(), SimTime::Max());  // idle
  loop.ScheduleAt(SimTime(500), [] {});
  loop.ScheduleAt(SimTime(300), [] {});
  EXPECT_EQ(loop.next_event_time().nanos(), 300);
  loop.RunWindow(SimTime(400));
  EXPECT_EQ(loop.next_event_time().nanos(), 500);
}

TEST(EventLoop, LastEventTimeIgnoresArtificialDeadlines) {
  // Now() advances to RunUntil/RunWindow deadlines; last_event_time()
  // reports when the simulation actually went quiet.
  EventLoop loop;
  loop.ScheduleAt(SimTime(100), [] {});
  loop.RunUntil(SimTime(10'000));
  EXPECT_EQ(loop.Now().nanos(), 10'000);
  EXPECT_EQ(loop.last_event_time().nanos(), 100);
  EXPECT_EQ(loop.events_run(), 1u);
}

// ---------------------------------------------------------------------------
// ThreadPool.
// ---------------------------------------------------------------------------

TEST(ThreadPool, ExecutesSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 32; ++i) {
    futs.push_back(pool.Submit([&] { done.fetch_add(1); }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(done.load(), 32);
  EXPECT_EQ(pool.tasks_completed(), 32u);
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyIsNoop) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL() << "must not run"; });
}

TEST(ThreadPool, ParallelForWithFewerItemsThanWorkers) {
  // n < workers: every index still runs exactly once and the call returns
  // (the idle workers' empty ranges must not deadlock the rendezvous).
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.ParallelFor(3, [&](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForNonDivisibleSplit) {
  // 10 items over 4 workers: contiguous ranges of uneven length must tile
  // [0, n) exactly — no index skipped, none run twice.
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(10);
  pool.ParallelFor(10, [&](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SubmitFutureResolvesAfterTheTaskRan) {
  ThreadPool pool(2);
  std::atomic<bool> ran{false};
  std::future<void> f = pool.Submit([&] { ran.store(true); });
  f.get();  // resolves strictly after the task body finished
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, TasksCompletedIsMonotonic) {
  ThreadPool pool(4);
  uint64_t last = pool.tasks_completed();
  EXPECT_EQ(last, 0u);
  for (int round = 0; round < 3; ++round) {
    std::vector<std::future<void>> futs;
    for (int i = 0; i < 8; ++i) futs.push_back(pool.Submit([] {}));
    for (auto& f : futs) f.get();
    const uint64_t now = pool.tasks_completed();
    EXPECT_GE(now, last + 8);
    last = now;
  }
  EXPECT_EQ(last, 24u);
}

TEST(ThreadPool, DrainsQueueOnDestruction) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 16; ++i) {
      (void)pool.Submit([&] { done.fetch_add(1); });
    }
  }
  EXPECT_EQ(done.load(), 16);
}

}  // namespace
}  // namespace sdm
