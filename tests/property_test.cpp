// Property-based sweeps over the library's core invariants, using
// parameterized gtest suites as the sweep harness.
//
// Invariants covered:
//  1. Quantize/dequantize round-trip error is bounded for every dtype/dim.
//  2. Pooling over SDM equals pooling over the source image (any placement,
//     cache config, granularity, throttle, or device technology).
//  3. Cache capacity accounting never exceeds budget under random churn.
//  4. Prune -> deprune -> lookup semantics are index-stable.
//  5. Device bus accounting: sub-block bytes <= block bytes, both >= useful.
//  6. Loaded-latency monotonicity in offered load for every technology.
#include <gtest/gtest.h>

#include <cmath>

#include "cache/cpu_optimized_cache.h"
#include "cache/memory_optimized_cache.h"
#include "core/lookup_engine.h"
#include "core/model_loader.h"
#include "dlrm/model_zoo.h"

namespace sdm {
namespace {

// ---------------------------------------------------------------------------
// 1. Quantization error bound, randomized rows.
// ---------------------------------------------------------------------------

struct QuantSweep {
  DataType type;
  uint32_t dim;
  double range;
};

class QuantProperty : public ::testing::TestWithParam<QuantSweep> {};

TEST_P(QuantProperty, RoundTripBoundHoldsOverRandomRows) {
  const auto [type, dim, range] = GetParam();
  Rng rng(dim * 31 + static_cast<uint32_t>(range * 100));
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<float> values(dim);
    float lo = 1e30f;
    float hi = -1e30f;
    for (auto& v : values) {
      v = static_cast<float>(rng.NextDouble(-range, range));
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    std::vector<uint8_t> stored(StoredRowBytes(type, dim));
    QuantizeRow(type, values, stored);
    std::vector<float> back(dim);
    DequantizeRow(type, stored, back);
    const float bound = MaxAbsError(type, lo, hi) + 1e-6f;
    for (uint32_t i = 0; i < dim; ++i) {
      ASSERT_NEAR(back[i], values[i], bound)
          << ToString(type) << " dim=" << dim << " range=" << range;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, QuantProperty,
    ::testing::Values(QuantSweep{DataType::kInt8Rowwise, 4, 1.0},
                      QuantSweep{DataType::kInt8Rowwise, 64, 10.0},
                      QuantSweep{DataType::kInt8Rowwise, 200, 0.01},
                      QuantSweep{DataType::kInt4Rowwise, 16, 1.0},
                      QuantSweep{DataType::kInt4Rowwise, 65, 5.0},
                      QuantSweep{DataType::kFp16, 32, 100.0},
                      QuantSweep{DataType::kFp32, 48, 1000.0}));

// ---------------------------------------------------------------------------
// 2. SDM lookup equals image pooling under any configuration.
// ---------------------------------------------------------------------------

struct StoreSweep {
  bool sub_block;
  bool row_cache;
  bool pooled_cache;
  int throttle;
  int device;  // 0 = optane, 1 = nand, 2 = two optanes
  double prune_keep;
  bool deprune;
};

class StoreProperty : public ::testing::TestWithParam<StoreSweep> {};

TEST_P(StoreProperty, LookupAlwaysMatchesReferenceSemantics) {
  const StoreSweep sweep = GetParam();
  const ModelConfig model = MakeTinyUniformModel(24, 2, 1, 2000);

  SdmStoreConfig cfg;
  cfg.fm_capacity = 8 * kMiB;
  if (sweep.device == 0) {
    cfg.sm_specs = {MakeOptaneSsdSpec()};
    cfg.sm_backing_bytes = {16 * kMiB};
  } else if (sweep.device == 1) {
    cfg.sm_specs = {MakeNandFlashSpec()};
    cfg.sm_backing_bytes = {16 * kMiB};
  } else {
    cfg.sm_specs = {MakeOptaneSsdSpec(), MakeOptaneSsdSpec()};
    cfg.sm_backing_bytes = {16 * kMiB, 16 * kMiB};
  }
  cfg.tuning.sub_block_reads = sweep.sub_block;
  cfg.tuning.enable_row_cache = sweep.row_cache;
  cfg.tuning.enable_pooled_cache = sweep.pooled_cache;
  cfg.tuning.pooled_cache.len_threshold = 2;
  cfg.tuning.throttle.max_outstanding_per_table = sweep.throttle;
  cfg.tuning.deprune_at_load = sweep.deprune;

  LoaderOptions loader;
  loader.prune_keep_fraction = sweep.prune_keep;

  EventLoop loop;
  SdmStore store(cfg, &loop);
  auto report = ModelLoader::Load(model, loader, &store);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  LookupEngine engine(&store);

  // Reference structures.
  const uint64_t seed0 = loader.seed ^ (0xabcdef12345678ULL * 1);
  const auto image = EmbeddingTableImage::GenerateRandom(model.tables[0], seed0);
  std::optional<PrunedTable> pruned;
  if (sweep.prune_keep < 1.0) {
    pruned = PruneTable(image, sweep.prune_keep, seed0 + 1);
  }

  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<RowIndex> indices;
    const size_t len = 1 + rng.NextBounded(12);
    for (size_t i = 0; i < len; ++i) indices.push_back(rng.NextBounded(2000));

    std::vector<float> pooled;
    bool done = false;
    LookupRequest req;
    req.table = MakeTableId(0);
    req.indices = indices;
    engine.Lookup(std::move(req),
                  [&](Status s, std::vector<float> out, const LookupTrace&) {
                    ASSERT_TRUE(s.ok()) << s.ToString();
                    pooled = std::move(out);
                    done = true;
                  });
    loop.RunUntilIdle();
    ASSERT_TRUE(done);

    std::vector<float> ref(model.tables[0].dim, 0.0f);
    for (const RowIndex idx : indices) {
      if (pruned.has_value() && !pruned->mapping.Lookup(idx).has_value()) continue;
      const auto row = image.DequantizedRow(idx);
      for (size_t i = 0; i < ref.size(); ++i) ref[i] += row[i];
    }
    for (size_t i = 0; i < ref.size(); ++i) {
      ASSERT_NEAR(pooled[i], ref[i], 1e-4f)
          << "trial " << trial << " sub_block=" << sweep.sub_block
          << " cache=" << sweep.row_cache << " pooled=" << sweep.pooled_cache;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    ConfigSweep, StoreProperty,
    ::testing::Values(StoreSweep{true, true, false, 0, 0, 1.0, false},
                      StoreSweep{false, true, false, 0, 0, 1.0, false},
                      StoreSweep{true, false, false, 0, 0, 1.0, false},
                      StoreSweep{true, true, true, 0, 0, 1.0, false},
                      StoreSweep{true, true, false, 2, 0, 1.0, false},
                      StoreSweep{true, true, false, 0, 1, 1.0, false},
                      StoreSweep{false, false, false, 1, 1, 1.0, false},
                      StoreSweep{true, true, false, 0, 2, 1.0, false},
                      StoreSweep{true, true, false, 0, 0, 0.5, false},
                      StoreSweep{true, true, false, 0, 0, 0.5, true},
                      StoreSweep{true, true, true, 3, 2, 0.7, true}));

// ---------------------------------------------------------------------------
// 3. Cache capacity safety under random churn.
// ---------------------------------------------------------------------------

class CacheChurnProperty : public ::testing::TestWithParam<int> {};

TEST_P(CacheChurnProperty, NeverExceedsBudgetMeaningfully) {
  const int seed = GetParam();
  Rng rng(seed);
  const Bytes budget = (16 + rng.NextBounded(64)) * kKiB;

  CpuOptimizedCacheConfig ccfg;
  ccfg.capacity = budget;
  ccfg.shards = 1 + static_cast<int>(rng.NextBounded(8));
  CpuOptimizedCache cpu(ccfg);

  MemoryOptimizedCacheConfig mcfg;
  mcfg.capacity = budget;
  mcfg.expected_value_bytes = 32 + rng.NextBounded(128);
  MemoryOptimizedCache mem(mcfg);

  for (int op = 0; op < 20'000; ++op) {
    const RowKey key{MakeTableId(static_cast<uint32_t>(rng.NextBounded(4))),
                     rng.NextBounded(5000)};
    const size_t len = 8 + rng.NextBounded(256);
    const std::vector<uint8_t> value(len, static_cast<uint8_t>(op));
    const int action = static_cast<int>(rng.NextBounded(10));
    std::vector<uint8_t> out(512);
    if (action < 6) {
      cpu.Insert(key, value);
      mem.Insert(key, value);
    } else if (action < 9) {
      (void)cpu.Lookup(key, out, nullptr);
      (void)mem.Lookup(key, out, nullptr);
    } else {
      (void)cpu.Erase(key);
      (void)mem.Erase(key);
    }
    ASSERT_LE(cpu.memory_used(), budget + 4096);
    ASSERT_LE(mem.memory_used(), budget + 4096);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheChurnProperty, ::testing::Values(1, 2, 3, 4, 5));

// ---------------------------------------------------------------------------
// 4. Prune/deprune index stability.
// ---------------------------------------------------------------------------

class PruneProperty : public ::testing::TestWithParam<double> {};

TEST_P(PruneProperty, DeprunePreservesEveryKeptRowAndZeroesRest) {
  const double keep = GetParam();
  TableConfig cfg;
  cfg.name = "p";
  cfg.num_rows = 3000;
  cfg.dim = 8;
  cfg.dtype = DataType::kInt8Rowwise;
  const auto image = EmbeddingTableImage::GenerateRandom(cfg, 5);
  const PrunedTable pruned = PruneTable(image, keep, 6);
  const EmbeddingTableImage dense = DeprunedTable(pruned);
  ASSERT_EQ(dense.num_rows(), cfg.num_rows);
  uint64_t kept = 0;
  for (RowIndex r = 0; r < cfg.num_rows; ++r) {
    const auto out = dense.DequantizedRow(r);
    if (pruned.mapping.Lookup(r).has_value()) {
      ++kept;
      const auto orig = image.DequantizedRow(r);
      for (size_t i = 0; i < out.size(); ++i) ASSERT_FLOAT_EQ(out[i], orig[i]);
    } else {
      for (const float v : out) ASSERT_FLOAT_EQ(v, 0.0f);
    }
  }
  EXPECT_EQ(kept, pruned.rows.num_rows());
}

INSTANTIATE_TEST_SUITE_P(KeepFractions, PruneProperty,
                         ::testing::Values(0.0, 0.1, 0.5, 0.9, 1.0));

// ---------------------------------------------------------------------------
// 5. Bus-byte accounting invariants.
// ---------------------------------------------------------------------------

class BusBytesProperty : public ::testing::TestWithParam<int> {};

TEST_P(BusBytesProperty, SubBlockNeverExceedsBlockAndCoversRequest) {
  Rng rng(GetParam());
  for (int i = 0; i < 10'000; ++i) {
    const Bytes offset = rng.NextBounded(1 << 22);
    const Bytes length = 1 + rng.NextBounded(1024);
    const Bytes sub = NvmeDevice::BusBytes(offset, length, true);
    const Bytes block = NvmeDevice::BusBytes(offset, length, false);
    ASSERT_GE(sub, length);
    ASSERT_LT(sub, length + 2 * kDwordBytes);
    ASSERT_GE(block, length);
    ASSERT_EQ(block % kBlockSize, 0u);
    ASSERT_LE(sub, block);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BusBytesProperty, ::testing::Values(11, 22, 33));

// ---------------------------------------------------------------------------
// 6. Loaded latency monotone in offered load, per technology.
// ---------------------------------------------------------------------------

class LatencyMonotoneProperty : public ::testing::TestWithParam<int> {};

TEST_P(LatencyMonotoneProperty, MeanLatencyNonDecreasingInLoad) {
  const auto specs = Table1Specs();
  const DeviceSpec spec = specs[static_cast<size_t>(GetParam())];
  // Mean latency at three offered loads: 20%, 60%, 95% of the IOPS ceiling.
  std::vector<double> means;
  for (const double util : {0.2, 0.6, 0.95}) {
    LatencyModel model(spec, 77);
    const double iops = spec.max_read_iops * util;
    const int n = 20'000;
    double total_ns = 0;
    for (int i = 0; i < n; ++i) {
      const SimTime now(static_cast<int64_t>(i * 1e9 / iops));
      total_ns += static_cast<double>(
          (model.CompleteRead(now, spec.access_granularity) - now).nanos());
    }
    means.push_back(total_ns / n);
  }
  EXPECT_LE(means[0], means[1] * 1.05);
  EXPECT_LE(means[1], means[2] * 1.05);
}

INSTANTIATE_TEST_SUITE_P(AllTechnologies, LatencyMonotoneProperty,
                         ::testing::Values(0, 1, 2, 3, 4));

}  // namespace
}  // namespace sdm
