#include "lint/lint_engine.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace sdm_lint {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Harvest every `allow(name)` after an `sdm-lint:` marker in comment text.
void ParseAllows(const std::string& comment, int line,
                 std::map<int, std::set<std::string>>* allows) {
  size_t marker = comment.find("sdm-lint:");
  if (marker == std::string::npos) return;
  size_t pos = marker;
  while ((pos = comment.find("allow(", pos)) != std::string::npos) {
    pos += 6;
    size_t end = comment.find(')', pos);
    if (end == std::string::npos) return;
    std::string name = comment.substr(pos, end - pos);
    // Trim surrounding spaces so `allow( foo )` works too.
    while (!name.empty() && name.front() == ' ') name.erase(name.begin());
    while (!name.empty() && name.back() == ' ') name.pop_back();
    if (!name.empty()) (*allows)[line].insert(name);
    pos = end;
  }
}

}  // namespace

bool FileContext::Suppressed(const std::string& check, int line) const {
  for (int l : {line, line - 1}) {
    auto it = allows.find(l);
    if (it == allows.end()) continue;
    if (it->second.count(check) || it->second.count("*")) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

FileContext Tokenize(const std::string& path, const std::string& content) {
  FileContext ctx;
  ctx.path = path;
  size_t slash = path.find_last_of('/');
  ctx.filename = slash == std::string::npos ? path : path.substr(slash + 1);

  const size_t n = content.size();
  size_t i = 0;
  int line = 1;
  bool at_line_start = true;  // only whitespace seen since the newline

  auto push = [&](Token::Kind kind, std::string text) {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.line = line;
    ctx.tokens.push_back(std::move(t));
  };

  while (i < n) {
    char c = content[i];
    if (c == '\n') {
      ++line;
      at_line_start = true;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Preprocessor directives: skip the whole (possibly continued) line so
    // `#include <unordered_map>` never reads as an identifier use.
    if (c == '#' && at_line_start) {
      while (i < n) {
        if (content[i] == '\\' && i + 1 < n && content[i + 1] == '\n') {
          i += 2;
          ++line;
          continue;
        }
        if (content[i] == '\n') break;
        ++i;
      }
      continue;
    }
    at_line_start = false;
    // Line comment (suppression carrier).
    if (c == '/' && i + 1 < n && content[i + 1] == '/') {
      size_t end = content.find('\n', i);
      if (end == std::string::npos) end = n;
      ParseAllows(content.substr(i, end - i), line, &ctx.allows);
      i = end;
      continue;
    }
    // Block comment; allows attach to the line the comment starts on.
    if (c == '/' && i + 1 < n && content[i + 1] == '*') {
      int start_line = line;
      size_t end = content.find("*/", i + 2);
      if (end == std::string::npos) end = n;
      std::string body = content.substr(i, end - i);
      ParseAllows(body, start_line, &ctx.allows);
      line += static_cast<int>(std::count(body.begin(), body.end(), '\n'));
      i = end == n ? n : end + 2;
      continue;
    }
    // Raw string literal R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && content[i + 1] == '"') {
      size_t paren = content.find('(', i + 2);
      if (paren != std::string::npos) {
        std::string delim = content.substr(i + 2, paren - (i + 2));
        std::string closer = ")" + delim + "\"";
        size_t end = content.find(closer, paren + 1);
        if (end == std::string::npos) end = n;
        std::string body = content.substr(paren + 1, end - paren - 1);
        push(Token::Kind::kString, body);
        line += static_cast<int>(std::count(body.begin(), body.end(), '\n'));
        i = end == n ? n : end + closer.size();
        continue;
      }
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      std::string body;
      ++i;
      while (i < n && content[i] != quote) {
        if (content[i] == '\\' && i + 1 < n) {
          body.push_back(content[i]);
          body.push_back(content[i + 1]);
          i += 2;
          continue;
        }
        if (content[i] == '\n') ++line;  // unterminated; be tolerant
        body.push_back(content[i]);
        ++i;
      }
      if (i < n) ++i;  // closing quote
      push(quote == '"' ? Token::Kind::kString : Token::Kind::kChar, body);
      continue;
    }
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < n && IsIdentChar(content[i])) ++i;
      push(Token::Kind::kIdent, content.substr(start, i - start));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(content[i + 1])))) {
      // pp-number: digits, idents, quotes-as-separators, and exponent signs.
      size_t start = i;
      ++i;
      while (i < n) {
        char d = content[i];
        if (IsIdentChar(d) || d == '.' || d == '\'') {
          ++i;
        } else if ((d == '+' || d == '-') &&
                   (content[i - 1] == 'e' || content[i - 1] == 'E' ||
                    content[i - 1] == 'p' || content[i - 1] == 'P')) {
          ++i;
        } else {
          break;
        }
      }
      push(Token::Kind::kNumber, content.substr(start, i - start));
      continue;
    }
    // Punctuation. Only "::" and "->" matter as multi-char units here.
    if (c == ':' && i + 1 < n && content[i + 1] == ':') {
      push(Token::Kind::kPunct, "::");
      i += 2;
      continue;
    }
    if (c == '-' && i + 1 < n && content[i + 1] == '>') {
      push(Token::Kind::kPunct, "->");
      i += 2;
      continue;
    }
    push(Token::Kind::kPunct, std::string(1, c));
    ++i;
  }
  return ctx;
}

// ---------------------------------------------------------------------------
// Token utilities
// ---------------------------------------------------------------------------

size_t MatchForward(const std::vector<Token>& tokens, size_t open) {
  if (open >= tokens.size() || tokens[open].kind != Token::Kind::kPunct) {
    return tokens.size();
  }
  const std::string& o = tokens[open].text;
  std::string close;
  if (o == "(") close = ")";
  else if (o == "[") close = "]";
  else if (o == "{") close = "}";
  else if (o == "<") close = ">";
  else return tokens.size();

  int depth = 0;
  for (size_t i = open; i < tokens.size(); ++i) {
    const Token& t = tokens[i];
    if (t.kind != Token::Kind::kPunct) continue;
    if (o == "<") {
      // Conservative template matching: ; or { aborts (it was a comparison).
      if (t.text == ";" || t.text == "{") return tokens.size();
      if (t.text == "<") ++depth;
      else if (t.text == ">" && --depth == 0) return i;
    } else {
      if (t.text == o) ++depth;
      else if (t.text == close && --depth == 0) return i;
    }
  }
  return tokens.size();
}

namespace {

const std::set<std::string>& ControlKeywords() {
  static const std::set<std::string> kw = {
      "if",     "for",    "while",  "switch",   "catch",  "return",
      "sizeof", "static", "assert", "decltype", "alignof", "alignas",
      "new",    "delete", "throw",  "co_await", "co_return"};
  return kw;
}

/// Reads a qualified name ENDING at token `i` (an identifier); returns the
/// index of its first token and the joined text, e.g. `A::B` -> "A::B".
size_t QualifiedNameStart(const std::vector<Token>& tokens, size_t i,
                          std::string* text) {
  size_t start = i;
  *text = tokens[i].text;
  while (start >= 2 && tokens[start - 1].IsPunct("::") &&
         tokens[start - 2].kind == Token::Kind::kIdent) {
    start -= 2;
    *text = tokens[start].text + "::" + *text;
  }
  return start;
}

/// From the token after a parameter-list `)`, decide whether a function BODY
/// `{` follows (skipping cv/ref qualifiers, noexcept(...), override/final,
/// trailing return types, = default/delete, and ctor initializer lists).
/// Returns the body-`{` index, or tokens.size() when this is not a definition.
size_t FindBodyBrace(const std::vector<Token>& tokens, size_t i) {
  const size_t n = tokens.size();
  while (i < n) {
    const Token& t = tokens[i];
    if (t.kind == Token::Kind::kIdent) {
      if (t.text == "const" || t.text == "noexcept" || t.text == "override" ||
          t.text == "final" || t.text == "mutable" || t.text == "try") {
        ++i;
        continue;
      }
      return n;  // some other identifier: a declaration like `int f() bar;`
    }
    if (t.IsPunct("&")) { ++i; continue; }
    if (t.IsPunct("(")) {  // noexcept(...)
      size_t close = MatchForward(tokens, i);
      if (close == n) return n;
      i = close + 1;
      continue;
    }
    if (t.IsPunct("->")) {
      // Trailing return type: skip tokens until the body `{` or a `;`.
      ++i;
      while (i < n && !tokens[i].IsPunct("{") && !tokens[i].IsPunct(";")) {
        if (tokens[i].IsPunct("(")) {
          size_t close = MatchForward(tokens, i);
          if (close == n) return n;
          i = close;
        }
        ++i;
      }
      continue;
    }
    if (t.IsPunct(":")) {
      // Constructor initializer list: entries are `name (args)` or
      // `name {args}` separated by commas; the body `{` follows the last.
      ++i;
      while (i < n) {
        // qualified/templated member or base name
        while (i < n && (tokens[i].kind == Token::Kind::kIdent ||
                         tokens[i].IsPunct("::"))) {
          ++i;
        }
        if (i < n && tokens[i].IsPunct("<")) {
          size_t close = MatchForward(tokens, i);
          if (close != n) i = close + 1;
          else return n;
        }
        if (i >= n) return n;
        if (tokens[i].IsPunct("(") || tokens[i].IsPunct("{")) {
          size_t close = MatchForward(tokens, i);
          if (close == n) return n;
          i = close + 1;
        } else {
          return n;  // malformed for our purposes
        }
        if (i < n && tokens[i].IsPunct(",")) {
          ++i;
          continue;
        }
        break;
      }
      continue;
    }
    if (t.IsPunct("{")) return i;
    return n;  // ';', '=', ',', ')' ... — declaration or expression
  }
  return n;
}

}  // namespace

std::vector<std::string> EnclosingFunctionNames(const std::vector<Token>& tokens) {
  const size_t n = tokens.size();
  // body-brace index -> function name
  std::map<size_t, std::string> bodies;
  for (size_t i = 0; i < n; ++i) {
    if (tokens[i].kind != Token::Kind::kIdent) continue;
    if (i + 1 >= n || !tokens[i + 1].IsPunct("(")) continue;
    if (ControlKeywords().count(tokens[i].text)) continue;
    std::string name;
    QualifiedNameStart(tokens, i, &name);
    size_t close = MatchForward(tokens, i + 1);
    if (close == n) continue;
    size_t body = FindBodyBrace(tokens, close + 1);
    if (body != n) bodies[body] = name;
  }

  std::vector<std::string> out(n);
  // Stack of (brace token kind marker, function name or "").
  std::vector<std::string> scope;  // innermost last; "" = non-function brace
  std::string current;
  for (size_t i = 0; i < n; ++i) {
    out[i] = current;
    const Token& t = tokens[i];
    if (t.IsPunct("{")) {
      auto it = bodies.find(i);
      scope.push_back(current);
      if (it != bodies.end()) current = it->second;
      out[i] = current;  // the brace itself belongs to the function
    } else if (t.IsPunct("}")) {
      if (!scope.empty()) {
        current = scope.back();
        scope.pop_back();
      } else {
        current.clear();
      }
    }
  }
  return out;
}

std::set<std::string> UnorderedContainerNames(const std::vector<Token>& tokens) {
  static const std::set<std::string> kContainers = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  std::set<std::string> names;
  const size_t n = tokens.size();
  for (size_t i = 0; i < n; ++i) {
    if (tokens[i].kind != Token::Kind::kIdent || !kContainers.count(tokens[i].text)) {
      continue;
    }
    size_t j = i + 1;
    if (j < n && tokens[j].IsPunct("<")) {
      size_t close = MatchForward(tokens, j);
      if (close == n) continue;
      j = close + 1;
    }
    // `::iterator`, `::value_type`... — a use, not a declaration.
    if (j < n && tokens[j].IsPunct("::")) continue;
    // Skip declarators and cv noise between the type and the declared name.
    while (j < n && (tokens[j].IsPunct("&") || tokens[j].IsPunct("*") ||
                     tokens[j].IsIdent("const"))) {
      ++j;
    }
    if (j < n && tokens[j].kind == Token::Kind::kIdent) {
      names.insert(tokens[j].text);
    }
  }
  return names;
}

// ---------------------------------------------------------------------------
// Check base + engine
// ---------------------------------------------------------------------------

void Check::RunFile(const FileContext&, std::vector<Finding>*) const {}
void Check::RunProject(const ProjectContext&, std::vector<Finding>*) const {}

std::vector<Finding> RunLint(const LintInput& input) {
  ProjectContext project;
  project.files.reserve(input.files.size());
  for (const auto& [path, content] : input.files) {
    project.files.push_back(Tokenize(path, content));
  }
  for (const auto& [path, content] : input.test_texts) {
    project.test_texts[path] = content;
  }

  std::vector<Finding> raw;
  auto checks = BuildAllChecks();
  for (const auto& check : checks) {
    for (const FileContext& file : project.files) {
      check->RunFile(file, &raw);
    }
    check->RunProject(project, &raw);
  }

  // Apply suppressions, then order deterministically.
  std::map<std::string, const FileContext*> by_path;
  for (const FileContext& file : project.files) by_path[file.path] = &file;
  std::vector<Finding> out;
  for (Finding& f : raw) {
    auto it = by_path.find(f.file);
    if (it != by_path.end() && it->second->Suppressed(f.check, f.line)) continue;
    out.push_back(std::move(f));
  }
  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    return a.check < b.check;
  });
  return out;
}

bool LoadTree(const std::string& root, LintInput* input, std::string* error) {
  namespace fs = std::filesystem;
  const fs::path src = fs::path(root) / "src";
  const fs::path tests = fs::path(root) / "tests";
  if (!fs::is_directory(src)) {
    *error = "not a source tree (missing " + src.string() + ")";
    return false;
  }
  auto read = [](const fs::path& p) {
    std::ifstream in(p, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
  };
  std::vector<fs::path> files;
  for (const auto& entry : fs::recursive_directory_iterator(src)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext == ".h" || ext == ".cpp" || ext == ".cc" || ext == ".hpp") {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  for (const fs::path& p : files) {
    input->files.emplace_back(fs::relative(p, root).generic_string(), read(p));
  }
  if (fs::is_directory(tests)) {
    std::vector<fs::path> test_files;
    for (const auto& entry : fs::directory_iterator(tests)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext == ".h" || ext == ".cpp" || ext == ".cc") {
        test_files.push_back(entry.path());
      }
    }
    std::sort(test_files.begin(), test_files.end());
    for (const fs::path& p : test_files) {
      input->test_texts.emplace_back(fs::relative(p, root).generic_string(),
                                     read(p));
    }
  }
  return true;
}

}  // namespace sdm_lint
