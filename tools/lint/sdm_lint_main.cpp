// sdm_lint CLI. Exit codes: 0 = clean, 1 = findings, 2 = usage/IO error.
//
//   sdm_lint [--root DIR] [--fix-list] [--list-checks]
//
// --root DIR      repository root holding src/ and tests/ (default ".")
// --fix-list      machine-readable output: file<TAB>line<TAB>check<TAB>message
// --list-checks   print the registered checks and exit
//
// Suppress a finding in source with `// sdm-lint: allow(<check>)` on the
// offending line or the comment line directly above it.
#include <cstdio>
#include <cstring>
#include <string>

#include "lint/lint_engine.h"

int main(int argc, char** argv) {
  std::string root = ".";
  bool fix_list = false;
  bool list_checks = false;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--fix-list") == 0) {
      fix_list = true;
    } else if (std::strcmp(arg, "--list-checks") == 0) {
      list_checks = true;
    } else if (std::strcmp(arg, "--root") == 0 && i + 1 < argc) {
      root = argv[++i];
    } else if (std::strncmp(arg, "--root=", 7) == 0) {
      root = arg + 7;
    } else if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      std::printf(
          "usage: sdm_lint [--root DIR] [--fix-list] [--list-checks]\n"
          "lints DIR/src (*.h, *.cpp) with the determinism-invariant checks;\n"
          "DIR/tests feeds the knob-inertness check. exit 1 on findings.\n");
      return 0;
    } else {
      std::fprintf(stderr, "sdm_lint: unknown argument '%s'\n", arg);
      return 2;
    }
  }

  if (list_checks) {
    for (const auto& check : sdm_lint::BuildAllChecks()) {
      std::printf("%-18s %s\n", check->name(), check->description());
    }
    return 0;
  }

  sdm_lint::LintInput input;
  std::string error;
  if (!sdm_lint::LoadTree(root, &input, &error)) {
    std::fprintf(stderr, "sdm_lint: %s\n", error.c_str());
    return 2;
  }

  const std::vector<sdm_lint::Finding> findings = sdm_lint::RunLint(input);
  for (const sdm_lint::Finding& f : findings) {
    if (fix_list) {
      std::printf("%s\t%d\t%s\t%s\n", f.file.c_str(), f.line, f.check.c_str(),
                  f.message.c_str());
    } else {
      std::printf("%s:%d: [%s] %s\n", f.file.c_str(), f.line, f.check.c_str(),
                  f.message.c_str());
    }
  }
  if (!fix_list) {
    if (findings.empty()) {
      std::printf("sdm_lint: %zu files clean\n", input.files.size());
    } else {
      std::printf("sdm_lint: %zu finding(s) across %zu files\n", findings.size(),
                  input.files.size());
    }
  }
  return findings.empty() ? 0 : 1;
}
