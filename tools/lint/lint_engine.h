// sdm_lint — a determinism-invariant linter for this repository.
//
// The serving stack's headline guarantee is bit-identical results across
// worker counts, byte-inert knobs, and replayable fault plans. The runtime
// oracle tests (sharded_runtime_test, obs_test, fault_injection_test) catch a
// violation only AFTER someone writes wall-clock reads, ambient RNG, or
// unordered-container iteration into a report path. This tool catches those
// classes at lint time, before the oracle ever runs.
//
// Design: a hand-rolled C++ tokenizer (no external deps, C++17) feeds a
// registry of checks. Checks are token-pattern matchers plus a lightweight
// enclosing-function tracker — deliberately NOT a real parser: a linter with
// per-line suppressions can afford heuristics that a compiler cannot.
//
// Suppressions: `// sdm-lint: allow(<check>)` on the offending line, or on a
// comment line directly above it. `allow(*)` suppresses every check.
//
// The engine lints in-memory (path, content) pairs so the fixture tests in
// tests/lint_test.cpp can feed it snippets without touching the filesystem;
// the sdm_lint binary loads the real tree through LoadTree().
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

namespace sdm_lint {

// ---------------------------------------------------------------------------
// Tokens
// ---------------------------------------------------------------------------

struct Token {
  enum class Kind {
    kIdent,   // identifiers and keywords
    kNumber,  // numeric literals (pp-number-ish)
    kString,  // string literal, text EXCLUDES the quotes
    kChar,    // character literal
    kPunct,   // punctuation; "::" and "->" are single tokens, rest one char
  };
  Kind kind = Kind::kPunct;
  std::string text;
  int line = 0;

  bool Is(Kind k, const char* t) const { return kind == k && text == t; }
  bool IsIdent(const char* t) const { return Is(Kind::kIdent, t); }
  bool IsPunct(const char* t) const { return Is(Kind::kPunct, t); }
};

// ---------------------------------------------------------------------------
// Findings and suppression
// ---------------------------------------------------------------------------

struct Finding {
  std::string check;
  std::string file;  // path as given to the engine
  int line = 0;
  std::string message;
};

/// One tokenized source file plus its suppression comments.
struct FileContext {
  std::string path;      // as given, e.g. "src/sched/batch_scheduler.cpp"
  std::string filename;  // basename, e.g. "batch_scheduler.cpp"
  std::vector<Token> tokens;
  /// line -> checks allowed on that line (from `// sdm-lint: allow(...)`).
  std::map<int, std::set<std::string>> allows;

  /// True when `check` findings on `line` are suppressed: an allow on the
  /// line itself or on the line directly above covers it.
  bool Suppressed(const std::string& check, int line) const;
};

/// Everything a project-level check can see. `files` covers src/;
/// `test_texts` holds the RAW text of tests/ sources (project checks that
/// only need "is this name mentioned in a test" don't tokenize them).
struct ProjectContext {
  std::vector<FileContext> files;
  std::map<std::string, std::string> test_texts;  // path -> raw content
};

// ---------------------------------------------------------------------------
// Check registry
// ---------------------------------------------------------------------------

class Check {
 public:
  virtual ~Check() = default;
  virtual const char* name() const = 0;
  virtual const char* description() const = 0;
  /// Per-file hook; default no-op. Append findings (suppression is applied
  /// by the engine afterwards, checks need not consult ctx.allows).
  virtual void RunFile(const FileContext& ctx, std::vector<Finding>* out) const;
  /// Whole-project hook (e.g. knob-inertness); default no-op.
  virtual void RunProject(const ProjectContext& project,
                          std::vector<Finding>* out) const;
};

/// The five shipping checks, in registration order.
std::vector<std::unique_ptr<Check>> BuildAllChecks();

// ---------------------------------------------------------------------------
// Engine entry points
// ---------------------------------------------------------------------------

/// Tokenize one source (handles comments, strings, raw strings, preprocessor
/// lines) and harvest its `sdm-lint: allow(...)` suppressions.
FileContext Tokenize(const std::string& path, const std::string& content);

struct LintInput {
  /// (path, content) pairs for the files to lint (the src/ tree).
  std::vector<std::pair<std::string, std::string>> files;
  /// (path, content) pairs for tests/ sources (project checks only).
  std::vector<std::pair<std::string, std::string>> test_texts;
};

/// Run every registered check over `input`; returns unsuppressed findings
/// sorted by (file, line, check).
std::vector<Finding> RunLint(const LintInput& input);

/// Load *.h/*.cpp under `root`/src and `root`/tests into a LintInput.
/// Returns false (with *error set) when the directories are missing.
bool LoadTree(const std::string& root, LintInput* input, std::string* error);

// ---------------------------------------------------------------------------
// Shared token utilities (used by checks and tested directly)
// ---------------------------------------------------------------------------

/// Index of the matching closer for the opener at `open` ("(", "[", "{", or
/// "<" with conservative template matching); tokens.size() when unmatched.
size_t MatchForward(const std::vector<Token>& tokens, size_t open);

/// For each token index, the qualified name of the innermost enclosing
/// function definition ("" at namespace/class scope). Heuristic: an
/// identifier (possibly `A::B` qualified) followed by a balanced parameter
/// list and then a body `{` — after skipping cv-qualifiers, noexcept,
/// trailing-return types, and constructor initializer lists — starts a
/// function scope. Control-flow keywords are excluded.
std::vector<std::string> EnclosingFunctionNames(const std::vector<Token>& tokens);

/// Identifiers declared in this file as std::unordered_{map,set,multimap,
/// multiset} (members, locals, and reference/pointer parameters alike).
std::set<std::string> UnorderedContainerNames(const std::vector<Token>& tokens);

}  // namespace sdm_lint
