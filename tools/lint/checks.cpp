// The five shipping sdm_lint checks. Each encodes a real invariant of this
// repository (see lint_engine.h for the registry contract):
//
//   no-wall-clock    simulation code must read virtual time (EventLoop), not
//                    the host clock — wall-clock reads break bit-identical
//                    replay across machines and worker counts.
//   no-ambient-rng   all randomness flows through src/common/rng.h's seeded
//                    streams; ambient RNG breaks (plan, seed) replays.
//   ordered-exports  report/export/Summary/Json paths must not iterate
//                    unordered containers — iteration order is unspecified
//                    and differs across libstdc++/libc++, so exports would
//                    not be byte-stable cross-platform.
//   knob-inertness   every TuningConfig knob must be mentioned in tests/ —
//                    the discipline since PR 1 is that each knob has a
//                    byte-identity (or behavior) test pinning its default.
//   obs-name-prefix  metric registrations follow PR 9's source-prefixed
//                    "group/metric" scheme: a runtime source prefix plus a
//                    lowercase slash-separated literal, so per-LP registries
//                    stay disjoint and sharded merges stay bit-identical.
#include <cctype>

#include "lint/lint_engine.h"

namespace sdm_lint {

namespace {

std::string Lower(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool PathEndsWith(const std::string& path, const std::string& suffix) {
  return path.size() >= suffix.size() &&
         path.compare(path.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// ---------------------------------------------------------------------------
// no-wall-clock
// ---------------------------------------------------------------------------

class NoWallClockCheck : public Check {
 public:
  const char* name() const override { return "no-wall-clock"; }
  const char* description() const override {
    return "ban host-clock reads (std::chrono clocks, time(), gettimeofday) "
           "outside the wall-clock allowlist; simulation code uses virtual time";
  }

  void RunFile(const FileContext& ctx, std::vector<Finding>* out) const override {
    // bench_util.h owns the benches' wall-clock timers; thread_pool.cpp may
    // block on real time (condition variables) without touching results.
    if (ctx.filename == "bench_util.h" || ctx.filename == "thread_pool.cpp") {
      return;
    }
    const auto& toks = ctx.tokens;
    for (size_t i = 0; i < toks.size(); ++i) {
      if (toks[i].kind != Token::Kind::kIdent) continue;
      const std::string& id = toks[i].text;
      if (id == "system_clock" || id == "steady_clock" ||
          id == "high_resolution_clock" || id == "gettimeofday" ||
          id == "clock_gettime" || id == "timespec_get") {
        out->push_back({name(), ctx.path, toks[i].line,
                        "wall-clock read '" + id +
                            "' — simulation code must use virtual time "
                            "(EventLoop::now)"});
        continue;
      }
      // Bare calls `time(...)` / `clock(...)`: a call site has an operator or
      // delimiter before it; an identifier or '>' before it is a declaration
      // (`SimTime time()`), and '.'/'->' a member of some other type.
      if ((id == "time" || id == "clock") && i + 1 < toks.size() &&
          toks[i + 1].IsPunct("(")) {
        if (i > 0) {
          const Token& prev = toks[i - 1];
          if (prev.IsPunct(".") || prev.IsPunct("->")) continue;
          if (prev.kind == Token::Kind::kIdent || prev.IsPunct(">")) continue;
          if (prev.IsPunct("::")) {
            // std::time / ::time are the libc call; other::time is not.
            if (i >= 2 && toks[i - 2].kind == Token::Kind::kIdent &&
                toks[i - 2].text != "std") {
              continue;
            }
          }
        }
        out->push_back({name(), ctx.path, toks[i].line,
                        "wall-clock call '" + id +
                            "()' — simulation code must use virtual time "
                            "(EventLoop::now)"});
      }
    }
  }
};

// ---------------------------------------------------------------------------
// no-ambient-rng
// ---------------------------------------------------------------------------

class NoAmbientRngCheck : public Check {
 public:
  const char* name() const override { return "no-ambient-rng"; }
  const char* description() const override {
    return "ban std::random_device, rand()/srand(), and unseeded std::mt19937 "
           "outside src/common/rng.*; randomness flows through seeded Rng streams";
  }

  void RunFile(const FileContext& ctx, std::vector<Finding>* out) const override {
    // The seeded-stream implementation itself may touch the raw engines.
    if (PathEndsWith(ctx.path, "common/rng.h") ||
        PathEndsWith(ctx.path, "common/rng.cpp")) {
      return;
    }
    const auto& toks = ctx.tokens;
    for (size_t i = 0; i < toks.size(); ++i) {
      if (toks[i].kind != Token::Kind::kIdent) continue;
      const std::string& id = toks[i].text;
      if (id == "random_device") {
        out->push_back({name(), ctx.path, toks[i].line,
                        "ambient entropy 'std::random_device' — draw from a "
                        "seeded sdm::Rng stream instead"});
        continue;
      }
      if ((id == "rand" || id == "srand") && i + 1 < toks.size() &&
          toks[i + 1].IsPunct("(")) {
        if (i > 0 && (toks[i - 1].IsPunct(".") || toks[i - 1].IsPunct("->") ||
                      toks[i - 1].kind == Token::Kind::kIdent)) {
          continue;  // member call or declaration of an unrelated `rand`
        }
        out->push_back({name(), ctx.path, toks[i].line,
                        "ambient RNG '" + id +
                            "()' — draw from a seeded sdm::Rng stream instead"});
        continue;
      }
      if (id == "mt19937" || id == "mt19937_64") {
        // Unseeded forms: `mt19937 g;`, `mt19937 g{};`, `mt19937()`,
        // `mt19937{}`. Seeded forms carry tokens inside the initializer.
        size_t j = i + 1;
        if (j < toks.size() && toks[j].kind == Token::Kind::kIdent) ++j;
        bool unseeded = false;
        if (j >= toks.size() || toks[j].IsPunct(";") || toks[j].IsPunct(",") ||
            toks[j].IsPunct(")")) {
          unseeded = true;  // default-constructed variable / member
        } else if (toks[j].IsPunct("(") || toks[j].IsPunct("{")) {
          size_t close = MatchForward(toks, j);
          unseeded = close == j + 1;  // empty initializer
        }
        if (unseeded) {
          out->push_back({name(), ctx.path, toks[i].line,
                          "unseeded 'std::" + id +
                              "' — every engine must be seeded from the run's "
                              "Rng so replays are exact"});
        }
      }
    }
  }
};

// ---------------------------------------------------------------------------
// ordered-exports
// ---------------------------------------------------------------------------

class OrderedExportsCheck : public Check {
 public:
  const char* name() const override { return "ordered-exports"; }
  const char* description() const override {
    return "flag range-for over unordered containers inside report/export/"
           "Summary/Json functions; sort keys first (or suppress a proven-"
           "order-independent fold)";
  }

  static bool IsExportFunction(const std::string& qualified_name) {
    const std::string lower = Lower(qualified_name);
    for (const char* marker : {"report", "export", "summary", "json"}) {
      if (lower.find(marker) != std::string::npos) return true;
    }
    return false;
  }

  void RunFile(const FileContext& ctx, std::vector<Finding>* out) const override {
    const auto& toks = ctx.tokens;
    const std::set<std::string> unordered = UnorderedContainerNames(toks);
    if (unordered.empty()) return;
    const std::vector<std::string> enclosing = EnclosingFunctionNames(toks);

    for (size_t i = 0; i + 1 < toks.size(); ++i) {
      if (!toks[i].IsIdent("for") || !toks[i + 1].IsPunct("(")) continue;
      size_t close = MatchForward(toks, i + 1);
      if (close == toks.size()) continue;
      // The range-for ':' sits at paren depth 1 relative to the for's '('.
      size_t colon = toks.size();
      int depth = 0;
      for (size_t j = i + 1; j < close; ++j) {
        if (toks[j].kind != Token::Kind::kPunct) continue;
        if (toks[j].text == "(" || toks[j].text == "[" || toks[j].text == "{") {
          ++depth;
        } else if (toks[j].text == ")" || toks[j].text == "]" ||
                   toks[j].text == "}") {
          --depth;
        } else if (toks[j].text == ":" && depth == 1) {
          colon = j;
          break;
        } else if (toks[j].text == ";") {
          break;  // classic for loop
        }
      }
      if (colon == toks.size()) continue;
      if (!IsExportFunction(enclosing[i])) continue;
      for (size_t j = colon + 1; j < close; ++j) {
        if (toks[j].kind == Token::Kind::kIdent && unordered.count(toks[j].text)) {
          out->push_back(
              {name(), ctx.path, toks[j].line,
               "range-for over unordered container '" + toks[j].text +
                   "' in export path '" + enclosing[i] +
                   "' — iteration order is unspecified and the export would "
                   "not be byte-stable; copy to a sorted vector (or std::map) "
                   "first"});
          break;
        }
      }
    }
  }
};

// ---------------------------------------------------------------------------
// knob-inertness
// ---------------------------------------------------------------------------

class KnobInertnessCheck : public Check {
 public:
  const char* name() const override { return "knob-inertness"; }
  const char* description() const override {
    return "every TuningConfig field in src/core/tuning.h must be mentioned "
           "in tests/ — each knob keeps a byte-identity or behavior test";
  }

  void RunProject(const ProjectContext& project,
                  std::vector<Finding>* out) const override {
    const FileContext* tuning = nullptr;
    for (const FileContext& file : project.files) {
      if (PathEndsWith(file.path, "core/tuning.h")) {
        tuning = &file;
        break;
      }
    }
    if (tuning == nullptr) return;  // fixture trees without a tuning header

    for (const auto& [field, line] : StructFields(tuning->tokens, "TuningConfig")) {
      bool mentioned = false;
      for (const auto& [path, text] : project.test_texts) {
        (void)path;
        if (MentionsWord(text, field)) {
          mentioned = true;
          break;
        }
      }
      if (!mentioned) {
        out->push_back({name(), tuning->path, line,
                        "TuningConfig knob '" + field +
                            "' is never mentioned in tests/ — add a test "
                            "pinning its default-off byte-identity or its "
                            "behavior when set"});
      }
    }
  }

  /// Data members of `struct <which> { ... }`: (name, line) pairs. Member
  /// functions, nested bodies, using/enum/static declarations are skipped.
  static std::vector<std::pair<std::string, int>> StructFields(
      const std::vector<Token>& toks, const std::string& which) {
    std::vector<std::pair<std::string, int>> fields;
    size_t body = toks.size();
    for (size_t i = 0; i + 2 < toks.size(); ++i) {
      if (toks[i].IsIdent("struct") && toks[i + 1].IsIdent(which.c_str()) &&
          toks[i + 2].IsPunct("{")) {
        body = i + 2;
        break;
      }
    }
    if (body == toks.size()) return fields;
    size_t end = MatchForward(toks, body);
    if (end == toks.size()) return fields;

    size_t i = body + 1;
    while (i < end) {
      // One "statement" at struct depth; nested braces are skipped whole.
      size_t stmt_begin = i;
      bool has_paren_before_init = false;
      bool skip = false;
      std::string last_ident;
      int last_ident_line = 0;
      while (i < end) {
        const Token& t = toks[i];
        if (t.kind == Token::Kind::kIdent) {
          if (i == stmt_begin &&
              (t.text == "using" || t.text == "enum" || t.text == "friend" ||
               t.text == "static" || t.text == "template" || t.text == "typedef" ||
               t.text == "struct" || t.text == "class" || t.text == "public" ||
               t.text == "private" || t.text == "protected")) {
            skip = true;
          }
          last_ident = t.text;
          last_ident_line = t.line;
          ++i;
          continue;
        }
        if (t.IsPunct("[")) {  // attributes like [[nodiscard]]
          size_t close = MatchForward(toks, i);
          i = close == toks.size() ? i + 1 : close + 1;
          stmt_begin = i;  // let the statement-head keyword test re-run
          continue;
        }
        if (t.IsPunct("<")) {  // template args in the member's type
          size_t close = MatchForward(toks, i);
          if (close != toks.size() && close < end) {
            i = close + 1;
            last_ident.clear();  // the type, not the member name
            continue;
          }
          ++i;
          continue;
        }
        if (t.IsPunct("(")) {
          has_paren_before_init = true;
          size_t close = MatchForward(toks, i);
          i = close == toks.size() ? i + 1 : close + 1;
          continue;
        }
        if (t.IsPunct("=")) {
          // Default initializer: the member name is the identifier before it.
          if (!skip && !has_paren_before_init && !last_ident.empty()) {
            fields.emplace_back(last_ident, last_ident_line);
          }
          skip = true;  // consume the rest of the statement
          ++i;
          continue;
        }
        if (t.IsPunct("{")) {
          // Either a brace initializer (member) or a function body (skip).
          if (!skip && !has_paren_before_init && !last_ident.empty()) {
            fields.emplace_back(last_ident, last_ident_line);
          }
          size_t close = MatchForward(toks, i);
          i = close == toks.size() ? i + 1 : close + 1;
          skip = true;
          // A function body ends the statement without a ';'.
          if (i < end && !toks[i].IsPunct(";")) break;
          continue;
        }
        if (t.IsPunct(";")) {
          if (!skip && !has_paren_before_init && !last_ident.empty()) {
            fields.emplace_back(last_ident, last_ident_line);
          }
          ++i;
          break;
        }
        ++i;
      }
      if (i == stmt_begin) ++i;  // safety against non-advancing statements
    }
    return fields;
  }

  static bool MentionsWord(const std::string& text, const std::string& word) {
    size_t pos = 0;
    while ((pos = text.find(word, pos)) != std::string::npos) {
      const bool left_ok =
          pos == 0 || (!std::isalnum(static_cast<unsigned char>(text[pos - 1])) &&
                       text[pos - 1] != '_');
      const size_t after = pos + word.size();
      const bool right_ok =
          after >= text.size() ||
          (!std::isalnum(static_cast<unsigned char>(text[after])) &&
           text[after] != '_');
      if (left_ok && right_ok) return true;
      pos += word.size();
    }
    return false;
  }
};

// ---------------------------------------------------------------------------
// obs-name-prefix
// ---------------------------------------------------------------------------

class ObsNamePrefixCheck : public Check {
 public:
  const char* name() const override { return "obs-name-prefix"; }
  const char* description() const override {
    return "ObsCounter/ObsGauge/ObsHist registrations must be `prefix + "
           "\"group/metric\"`: a runtime source prefix plus a lowercase "
           "slash-separated literal (PR 9 naming scheme)";
  }

  static bool ValidMetricLiteral(const std::string& s) {
    if (s.empty() || s.front() == '/' || s.back() == '/') return false;
    bool has_slash = false;
    for (char c : s) {
      if (c == '/') {
        has_slash = true;
        continue;
      }
      if (!(std::islower(static_cast<unsigned char>(c)) ||
            std::isdigit(static_cast<unsigned char>(c)) || c == '_')) {
        return false;
      }
    }
    if (!has_slash) return false;
    return s.find("//") == std::string::npos;
  }

  void RunFile(const FileContext& ctx, std::vector<Finding>* out) const override {
    // src/obs defines the handle types; registrations live at the call sites.
    if (ctx.path.find("obs/") != std::string::npos) return;
    const auto& toks = ctx.tokens;
    for (size_t i = 0; i + 1 < toks.size(); ++i) {
      if (toks[i].kind != Token::Kind::kIdent) continue;
      const std::string& id = toks[i].text;
      if (id != "ObsCounter" && id != "ObsGauge" && id != "ObsHist") continue;
      if (!toks[i + 1].IsPunct("(")) continue;
      size_t close = MatchForward(toks, i + 1);
      if (close == toks.size()) continue;

      // Split the arguments at top-level commas; registration calls are
      // (observability, name-expression).
      std::vector<std::pair<size_t, size_t>> args;  // [begin, end) token ranges
      int depth = 0;
      size_t arg_begin = i + 2;
      for (size_t j = i + 2; j < close; ++j) {
        const Token& t = toks[j];
        if (t.kind == Token::Kind::kPunct) {
          if (t.text == "(" || t.text == "[" || t.text == "{") ++depth;
          if (t.text == ")" || t.text == "]" || t.text == "}") --depth;
          if (t.text == "," && depth == 0) {
            args.emplace_back(arg_begin, j);
            arg_begin = j + 1;
          }
        }
      }
      args.emplace_back(arg_begin, close);
      if (args.size() != 2) continue;  // declaration or unrelated overload

      const auto [nb, ne] = args[1];
      const Token* last_literal = nullptr;
      bool has_prefix_expr = false;
      for (size_t j = nb; j < ne; ++j) {
        if (toks[j].kind == Token::Kind::kString) last_literal = &toks[j];
        if (toks[j].kind == Token::Kind::kIdent) has_prefix_expr = true;
      }
      if (last_literal == nullptr) continue;  // fully dynamic name: can't check
      if (!ValidMetricLiteral(last_literal->text)) {
        out->push_back({name(), ctx.path, last_literal->line,
                        "metric literal \"" + last_literal->text +
                            "\" does not match the `group/metric` scheme "
                            "(lowercase [a-z0-9_] segments joined by '/')"});
      }
      if (!has_prefix_expr) {
        out->push_back({name(), ctx.path, last_literal->line,
                        "metric registered without a runtime source prefix — "
                        "write `prefix + \"" + last_literal->text +
                            "\"` so per-LP registries stay disjoint and "
                            "sharded merges stay bit-identical"});
      }
    }
  }
};

}  // namespace

std::vector<std::unique_ptr<Check>> BuildAllChecks() {
  std::vector<std::unique_ptr<Check>> checks;
  checks.push_back(std::make_unique<NoWallClockCheck>());
  checks.push_back(std::make_unique<NoAmbientRngCheck>());
  checks.push_back(std::make_unique<OrderedExportsCheck>());
  checks.push_back(std::make_unique<KnobInertnessCheck>());
  checks.push_back(std::make_unique<ObsNamePrefixCheck>());
  return checks;
}

}  // namespace sdm_lint
