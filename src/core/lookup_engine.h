// LookupEngine — pooled embedding lookup over the SDM (paper Algorithm 1).
//
// One Lookup() call is one embedding-bag operator execution:
//
//   if len(indices) > LenThreshold and pooled cache hits -> done
//   map indices through the pruning mapping tensor (if present)
//   for each index: row cache probe; misses become throttled async SM IOs
//   when every row is in FM: fused dequantize+pool; insert rows and the
//   pooled output into their caches
//
// The engine orchestrates; the IO policy lives in src/sched. Misses are
// planned into coalesced runs by IoPlanner (pure, per request) and handed
// to the device's BatchScheduler, which merges and single-flights reads
// across every concurrent lookup before ringing the IoEngine doorbell.
// This engine's completions then scatter rows out of the (possibly
// shared) read buffers and fill the caches.
//
// Timing: CPU phases run in virtual time before (probe/hash/map) and after
// (dequant/pool/insert) the IO phase; IOs from one request proceed
// concurrently, so request latency = cpu_pre + max(io latencies) + cpu_post
// — matching how an async operator with io_uring behaves.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/histogram.h"
#include "core/sdm_store.h"
#include "embedding/pooling.h"
#include "sched/batch_scheduler.h"
#include "sched/io_planner.h"

namespace sdm {

struct LookupRequest {
  TableId table{};
  std::vector<RowIndex> indices;  ///< in the unpruned index domain
  PoolingMode mode = PoolingMode::kSum;
  /// Query tracing (src/obs): set by the inference layer on sampled
  /// queries; the engine records a lookup span when tracing is on. Purely
  /// observational — never changes scheduling.
  bool traced = false;
};

/// Per-request execution trace (for tests, tuning, and the benches).
struct LookupTrace {
  bool pooled_cache_hit = false;
  uint32_t rows_requested = 0;
  uint32_t rows_pruned_skipped = 0;  ///< mapped to kPrunedRow
  uint32_t rows_from_fm_direct = 0;
  uint32_t rows_from_cache = 0;
  uint32_t rows_from_block_cache = 0;  ///< multi-level ablation path
  uint32_t rows_from_sm = 0;
  /// Of the cache hits above, rows resident because the Prefetcher read
  /// them ahead of demand (tuning.enable_prefetch) — each prefetched row
  /// is credited to the first request that demands it.
  uint32_t rows_prefetch_hit = 0;

  // ---- Coalesced-IO effectiveness (tuning.coalesce_io) ----
  /// Duplicate-index slots served by a sibling slot's fetch instead of
  /// their own (counted on top of the category counters above).
  uint32_t rows_deduped = 0;
  /// SM device IOs issued (or merged into a shared SQE) for this request.
  /// With coalescing, N missing rows in one block (or an adjacent-block
  /// run) cost one device read, so device_reads <= rows_from_sm.
  uint32_t device_reads = 0;
  /// Runs of this request served by another in-flight request's device
  /// read (cross-request single-flight in the BatchScheduler); these issue
  /// no IO of their own and are not part of device_reads.
  uint32_t singleflight_hits = 0;
  /// Bus bytes avoided versus issuing every missing row as its own read.
  Bytes io_bytes_saved = 0;

  // ---- Graceful degradation (tuning.graceful_degradation) ----
  /// Rows whose IO exhausted retries (or was shed from a sick endpoint):
  /// they pooled as zero vectors instead of failing the query.
  uint32_t rows_failed = 0;
  /// True when any row failed — the query completed Ok but its pooled
  /// output is missing rows_failed contributions.
  bool degraded = false;

  // ---- Self-healing (tuning.enable_replication) ----
  /// Device reads this request routed to an extent replica because the
  /// primary endpoint was sick (failover instead of shedding).
  uint32_t replica_reads = 0;
  /// Terminally-failed reads re-driven against a replica and served — rows
  /// that would otherwise have pooled as zeros.
  uint32_t read_repairs = 0;

  SimDuration cpu_time;
  SimDuration latency;
};

using LookupCallback =
    std::function<void(Status, std::vector<float> pooled, const LookupTrace& trace)>;

class LookupEngine {
 public:
  explicit LookupEngine(SdmStore* store);

  LookupEngine(const LookupEngine&) = delete;
  LookupEngine& operator=(const LookupEngine&) = delete;

  /// Executes one embedding-bag lookup; the callback fires on the event
  /// loop when the pooled vector is ready.
  void Lookup(LookupRequest request, LookupCallback cb);

  // ---- Aggregate observability ----

  [[nodiscard]] const Histogram& latency() const { return latency_; }
  [[nodiscard]] const StatsRegistry& stats() const { return stats_; }

  /// Total modeled CPU ns across all requests (operator-side work only;
  /// IO-engine CPU is tracked by the engines).
  [[nodiscard]] SimDuration cpu_time() const { return SimDuration(cpu_ns_->value()); }

  /// Cost model used for CPU-phase charging (exposed for calibration).
  [[nodiscard]] PoolingCostModel& cost_model() { return cost_; }

 private:
  struct RequestState;
  struct RunContext;

  void StartIoPhase(std::shared_ptr<RequestState> st);
  /// Submits one missing row as its own throttled device IO (the per-row
  /// ablation path, and the fallback for rows straddling a block boundary).
  void SubmitRowIo(const std::shared_ptr<RequestState>& st, uint32_t slot_index);
  /// One whole-block read attempt for the multi-level per-row path, with
  /// transient-error retries inside the held throttle slot.
  void BlockRowReadAttempt(const std::shared_ptr<RequestState>& st, Bytes off,
                           Bytes block_start, std::span<uint8_t> dest, uint32_t device,
                           int64_t shift, int attempts_left,
                           std::function<void(Status)> done);
  /// Acquires a throttle slot per planned run and hands each run to the
  /// device's BatchScheduler (which owns batching and cross-request
  /// merging; the planning itself already happened in IoPlanner).
  void SubmitPlannedRuns(const std::shared_ptr<RequestState>& st,
                         std::vector<PlannedRun> runs);
  /// Enqueues one admitted run with the scheduler. Trace/counter accounting
  /// happens only on the first attempt (retries must not double-count).
  /// `acquired_slot` says whether the caller holds a throttle slot for this
  /// run — WouldShare runs skip the throttle entirely, and a slot-holding
  /// run that ends up sharing releases its slot here (admission budgets
  /// device reads after merging, not logical runs).
  void EnqueueRun(const std::shared_ptr<RequestState>& st,
                  const std::shared_ptr<RunContext>& run, bool block_cache_mode,
                  int attempts_left, bool first_attempt, bool acquired_slot);
  /// Completion for one planned run: scatter rows out of the (possibly
  /// shared) read buffer, fill caches, and — like DirectIoReader — retry
  /// transient device errors `attempts_left` more times before surfacing
  /// the failure.
  BatchScheduler::Completion MakeRunCompletion(const std::shared_ptr<RequestState>& st,
                                               const std::shared_ptr<RunContext>& run,
                                               bool block_cache_mode, int attempts_left);
  /// Where a terminally-failed read on `failed_device` can be re-driven: the
  /// extent's replica when the primary failed, the (healthy) primary when a
  /// replica read failed, nullopt when no second copy exists. Shared by the
  /// run path and the per-row path.
  std::optional<SharedDeviceService::ReplicaRoute> RepairRoute(TableId table_id,
                                                               size_t failed_device);
  void FinishRequest(const std::shared_ptr<RequestState>& st);
  /// Windowed metrics + (sampled) lookup span at request completion; called
  /// from both completion tails once trace.latency is final.
  void RecordObsCompletion(const RequestState& st);
  /// Modeled CPU time of copying `bytes` (shared with DirectIoReader's
  /// memcpy_bytes_per_sec so the two paths charge the same throughput).
  [[nodiscard]] SimDuration CopyCost(Bytes bytes) const;

  SdmStore* store_;
  EventLoop* loop_;
  double memcpy_bytes_per_sec_ = 12e9;
  PoolingCostModel cost_;
  Histogram latency_;
  StatsRegistry stats_;
  Counter* lookups_ = nullptr;
  Counter* pooled_hits_ = nullptr;
  Counter* rows_cache_hit_ = nullptr;
  Counter* rows_block_hit_ = nullptr;
  Counter* rows_sm_read_ = nullptr;
  Counter* rows_fm_read_ = nullptr;
  Counter* rows_pruned_ = nullptr;
  Counter* rows_deduped_ = nullptr;
  Counter* prefetch_hits_ = nullptr;
  Counter* device_reads_ = nullptr;
  Counter* singleflight_hits_ = nullptr;
  Counter* io_bytes_saved_ = nullptr;
  Counter* cpu_ns_ = nullptr;
  Counter* io_errors_ = nullptr;
  Counter* io_retries_ = nullptr;
  Counter* rows_failed_ = nullptr;
  Counter* degraded_lookups_ = nullptr;
  Counter* shed_lookups_ = nullptr;
  Counter* replica_reads_ = nullptr;
  Counter* read_repairs_ = nullptr;

  // ---- Observability (src/obs); all null when off ----
  WindowedCounter* obs_lookups_ = nullptr;
  WindowedCounter* obs_cache_rows_ = nullptr;
  WindowedCounter* obs_sm_rows_ = nullptr;
  WindowedCounter* obs_degraded_ = nullptr;
  WindowedCounter* obs_shed_ = nullptr;
  WindowedHistogram* obs_lat_ = nullptr;
  SpanRecorder* obs_spans_ = nullptr;
  SpanRecorder::TrackId obs_track_ = 0;
};

}  // namespace sdm
