// LookupEngine — pooled embedding lookup over the SDM (paper Algorithm 1).
//
// One Lookup() call is one embedding-bag operator execution:
//
//   if len(indices) > LenThreshold and pooled cache hits -> done
//   map indices through the pruning mapping tensor (if present)
//   for each index: row cache probe; misses become throttled async SM IOs
//   when every row is in FM: fused dequantize+pool; insert rows and the
//   pooled output into their caches
//
// Timing: CPU phases run in virtual time before (probe/hash/map) and after
// (dequant/pool/insert) the IO phase; IOs from one request proceed
// concurrently, so request latency = cpu_pre + max(io latencies) + cpu_post
// — matching how an async operator with io_uring behaves.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/histogram.h"
#include "core/sdm_store.h"
#include "embedding/pooling.h"

namespace sdm {

struct LookupRequest {
  TableId table{};
  std::vector<RowIndex> indices;  ///< in the unpruned index domain
  PoolingMode mode = PoolingMode::kSum;
};

/// Per-request execution trace (for tests, tuning, and the benches).
struct LookupTrace {
  bool pooled_cache_hit = false;
  uint32_t rows_requested = 0;
  uint32_t rows_pruned_skipped = 0;  ///< mapped to kPrunedRow
  uint32_t rows_from_fm_direct = 0;
  uint32_t rows_from_cache = 0;
  uint32_t rows_from_block_cache = 0;  ///< multi-level ablation path
  uint32_t rows_from_sm = 0;
  SimDuration cpu_time;
  SimDuration latency;
};

using LookupCallback =
    std::function<void(Status, std::vector<float> pooled, const LookupTrace& trace)>;

class LookupEngine {
 public:
  explicit LookupEngine(SdmStore* store);

  LookupEngine(const LookupEngine&) = delete;
  LookupEngine& operator=(const LookupEngine&) = delete;

  /// Executes one embedding-bag lookup; the callback fires on the event
  /// loop when the pooled vector is ready.
  void Lookup(LookupRequest request, LookupCallback cb);

  // ---- Aggregate observability ----

  [[nodiscard]] const Histogram& latency() const { return latency_; }
  [[nodiscard]] const StatsRegistry& stats() const { return stats_; }

  /// Total modeled CPU ns across all requests (operator-side work only;
  /// IO-engine CPU is tracked by the engines).
  [[nodiscard]] SimDuration cpu_time() const { return SimDuration(cpu_ns_->value()); }

  /// Cost model used for CPU-phase charging (exposed for calibration).
  [[nodiscard]] PoolingCostModel& cost_model() { return cost_; }

 private:
  struct RequestState;

  void StartIoPhase(std::shared_ptr<RequestState> st);
  void FinishRequest(const std::shared_ptr<RequestState>& st);

  SdmStore* store_;
  EventLoop* loop_;
  PoolingCostModel cost_;
  Histogram latency_;
  StatsRegistry stats_;
  Counter* lookups_ = nullptr;
  Counter* pooled_hits_ = nullptr;
  Counter* rows_cache_hit_ = nullptr;
  Counter* rows_block_hit_ = nullptr;
  Counter* rows_sm_read_ = nullptr;
  Counter* rows_fm_read_ = nullptr;
  Counter* rows_pruned_ = nullptr;
  Counter* cpu_ns_ = nullptr;
  Counter* io_errors_ = nullptr;
};

}  // namespace sdm
