#include "core/sdm_store.h"

#include <algorithm>
#include <cassert>

#include "common/logging.h"

namespace sdm {

SdmStore::SdmStore(SdmStoreConfig config, EventLoop* loop)
    : config_(std::move(config)), loop_(loop) {
  assert(loop != nullptr);

  fm_ = std::make_unique<DramDevice>(config_.fm_capacity);

  if (config_.shared_device != nullptr) {
    // Attach mode: the device stack (and its throttle, schedulers, arena)
    // is shared with co-located tenant stores.
    assert(config_.sm_specs.empty() &&
           "attached stores must not configure their own SM devices");
    device_service_ = config_.shared_device;
  } else {
    // Owned mode: a private service, built exactly as the shared one would
    // be — one code path, so a single-tenant shared-device run is
    // byte-identical to this store owning its stack outright.
    SharedDeviceConfig dcfg;
    dcfg.sm_specs = config_.sm_specs;
    dcfg.sm_backing_bytes = config_.sm_backing_bytes;
    dcfg.tuning = config_.tuning;
    dcfg.seed = config_.seed;
    dcfg.obs = config_.obs;
    dcfg.obs_prefix = config_.obs_prefix;
    owned_service_ = std::make_unique<SharedDeviceService>(std::move(dcfg), loop_);
    device_service_ = owned_service_.get();
    if (device_service_->tenant_count() == 0) {
      (void)device_service_->RegisterTenant("owner", config_.tenant_class);
    }
  }
}

Result<TableId> SdmStore::LoadTable(const EmbeddingTableImage& image,
                                    const TablePlacement& placement,
                                    std::optional<MappingTensor> mapping,
                                    uint64_t index_domain) {
  if (finished_) return FailedPreconditionError("LoadTable after FinishLoading");
  if (attached()) {
    // The seam every tenant/lane knob must hold for: reject inconsistent
    // configurations here (with a Status) instead of asserting deep in the
    // IO path at serving time.
    if (Status s = config_.tuning.ValidateForSharedDevice(); !s.ok()) return s;
  }

  TableRuntime rt;
  rt.id = MakeTableId(static_cast<uint32_t>(tables_.size()));
  rt.config = image.config();
  rt.tier = placement.tier;
  rt.cache_enabled = placement.cache_enabled;
  rt.index_domain = index_domain;

  const Bytes size = image.size_bytes();
  if (rt.tier == MemoryTier::kFm) {
    if (fm_used_ + size > config_.fm_capacity) {
      return ResourceExhaustedError("FM over-committed by direct table " + rt.config.name);
    }
    rt.offset = fm_used_;
    if (Status s = fm_->Write(rt.offset, image.bytes()); !s.ok()) return s;
    fm_used_ += size;
    fm_direct_bytes_ += size;
  } else {
    auto placed = device_service_->PlaceTable(config_.tenant_id, rt.config.name,
                                              image.bytes());
    if (!placed.ok()) return placed.status();
    rt.sm_device = placed.value().device;
    rt.offset = placed.value().offset;
    rt.shared_extent = placed.value().shared;
    rt.extent_id = placed.value().id;
    load_write_time_ += placed.value().write_time;
    sm_used_total_ += size;
  }

  if (mapping.has_value()) {
    fm_mapping_bytes_ += mapping->size_bytes();
    rt.mapping = std::move(mapping);
  }

  tables_.push_back(std::move(rt));
  return tables_.back().id;
}

Bytes SdmStore::fm_cache_budget() const {
  const Bytes committed = fm_direct_bytes_ + fm_mapping_bytes_;
  return committed >= config_.fm_capacity ? 0 : config_.fm_capacity - committed;
}

Status SdmStore::FinishLoading() {
  if (finished_) return FailedPreconditionError("FinishLoading called twice");

  const Bytes budget = fm_cache_budget();
  TuningConfig& tuning = config_.tuning;

  Bytes pooled_capacity = 0;
  if (tuning.enable_pooled_cache) {
    pooled_capacity = std::min<Bytes>(tuning.pooled_cache.capacity, budget / 4);
  }

  if (tuning.enable_row_cache) {
    DualCacheConfig ccfg = tuning.row_cache;
    if (ccfg.capacity == 0) {
      // Auto-size: whatever FM the direct tables and mapping tensors left,
      // minus the pooled cache's cut. This is how de-pruning "frees up the
      // memory used by mapping tensors" into cache space (§4.5).
      ccfg.capacity = budget - pooled_capacity;
    }
    Bytes block_capacity = 0;
    if (tuning.enable_block_cache) {
      // The block layer takes its share out of the same FM budget — the
      // dilution that made the paper reject the multi-level arrangement.
      block_capacity = static_cast<Bytes>(static_cast<double>(ccfg.capacity) *
                                          tuning.block_cache_fraction);
      ccfg.capacity -= block_capacity;
    }
    if (ccfg.capacity + block_capacity + pooled_capacity + fm_direct_bytes_ +
            fm_mapping_bytes_ >
        config_.fm_capacity) {
      return ResourceExhaustedError("FM over-committed: caches + tables exceed capacity");
    }
    if (ccfg.capacity < 4 * kKiB) {
      return ResourceExhaustedError("FM budget leaves no usable row-cache space");
    }
    fm_cache_committed_ = ccfg.capacity + block_capacity + pooled_capacity;
    row_cache_ = std::make_unique<DualRowCache>(ccfg);
    for (const auto& t : tables_) {
      row_cache_->RegisterTable(t.id, t.config.row_bytes());
    }
    if (tuning.enable_block_cache) {
      BlockCacheConfig bcfg = tuning.block_cache;
      bcfg.capacity = block_capacity;
      block_cache_ = std::make_unique<BlockCache>(bcfg);
    }
  }

  if (tuning.enable_pooled_cache) {
    PooledCacheConfig pcfg = tuning.pooled_cache;
    pcfg.capacity = pooled_capacity;
    pooled_cache_ = std::make_unique<PooledEmbeddingCache>(pcfg);
  }

  // Speculative prefetch rides the cross-request scheduler's low-priority
  // lane and pays off by filling the row cache ahead of demand — so it is
  // only built when all three exist. In particular it stays inert in the
  // cross_request_batching=false ablation (bypass-mode parity: the PR 1
  // baseline must not gain a speculation side channel).
  if (tuning.enable_prefetch && tuning.cross_request_batching &&
      device_service_->device_count() > 0 && row_cache_ != nullptr) {
    PrefetchConfig pfcfg;
    pfcfg.strategy = tuning.prefetch_strategy;
    pfcfg.depth = tuning.prefetch_depth;
    pfcfg.min_confidence = tuning.prefetch_min_confidence;
    pfcfg.max_coalesce_bytes = tuning.max_coalesce_bytes;
    pfcfg.coalesce_gap_bytes = tuning.coalesce_gap_bytes;
    pfcfg.tenant = config_.tenant_id;
    std::vector<BatchScheduler*> scheds;
    scheds.reserve(device_service_->device_count());
    for (size_t i = 0; i < device_service_->device_count(); ++i) {
      scheds.push_back(&device_service_->scheduler(i));
    }
    prefetcher_ = std::make_unique<Prefetcher>(pfcfg, row_cache_.get(),
                                               block_cache_.get(), std::move(scheds));
    if (config_.obs != nullptr) {
      prefetcher_->set_obs(config_.obs, loop_, config_.obs_prefix);
    }
    for (const TableRuntime& t : tables_) {
      if (t.tier != MemoryTier::kSm) continue;
      // A cache-bypassing table (kPerTableCacheEnablement) has nowhere to
      // put prefetched rows — speculation for it would be pure wasted IO
      // that also can never be claimed.
      if (!t.cache_enabled) continue;
      Prefetcher::TableInfo info;
      info.id = t.id;
      info.table_offset = t.offset;
      info.row_bytes = t.config.row_bytes();
      info.num_rows = t.config.num_rows;
      info.device = t.sm_device;
      info.cache_enabled = t.cache_enabled;
      info.block_mode = block_cache_ != nullptr && t.cache_enabled;
      info.sub_block =
          !info.block_mode && device_service_->reader(t.sm_device).sub_block();
      prefetcher_->RegisterTable(info);
    }
  }

  finished_ = true;
  SDM_LOG_INFO << "SdmStore ready: " << tables_.size() << " tables, FM direct "
               << AsMiB(fm_direct_bytes_) << " MiB, mappings " << AsMiB(fm_mapping_bytes_)
               << " MiB, cache budget " << AsMiB(fm_cache_budget()) << " MiB, SM "
               << AsMiB(sm_used_total_) << " MiB"
               << (attached() ? " (shared device)" : "");
  return Status::Ok();
}

void SdmStore::InvalidateRow(TableId table, RowIndex row) {
  if (row_cache_ != nullptr) {
    (void)row_cache_->Erase(RowKey{table, row});
  }
}

void SdmStore::InvalidatePooledFor(TableId table) {
  if (pooled_cache_ != nullptr) {
    pooled_cache_->InvalidateTable(table);
  }
}

Status SdmStore::MigrateTableToFm(TableId table) {
  TableRuntime& rt = tables_[Raw(table)];
  if (rt.tier != MemoryTier::kSm) {
    return FailedPreconditionError("table is already FM-resident");
  }
  if (rt.shared_extent) {
    return FailedPreconditionError(
        "cannot migrate a shared extent: co-tenants still serve from it");
  }
  const Bytes size =
      static_cast<Bytes>(rt.config.num_rows) * rt.config.row_bytes();
  if (fm_used_ + size + fm_mapping_bytes_ + fm_cache_committed_ >
      config_.fm_capacity) {
    return ResourceExhaustedError("FM lacks headroom for degraded-table migration");
  }
  // The device backing store is ground truth (bit rot is in-flight only),
  // so this is the same offline copy a refresh-time re-load would do.
  NvmeDevice& dev = device_service_->device(rt.sm_device);
  const Bytes new_offset = fm_used_;
  if (Status s = fm_->Write(new_offset, dev.backing().subspan(rt.offset, size));
      !s.ok()) {
    return s;
  }
  rt.tier = MemoryTier::kFm;
  rt.offset = new_offset;
  fm_used_ += size;
  fm_direct_bytes_ += size;
  sm_used_total_ -= size;
  rt.extent_id = 0;  // no longer routable SM bytes
  SDM_LOG_INFO << "degraded placement: migrated table " << rt.config.name
               << " (" << AsMiB(size) << " MiB, " << rt.degraded_rows
               << " degraded rows) to FM";
  return Status::Ok();
}

}  // namespace sdm
