#include "core/sdm_store.h"

#include <algorithm>
#include <cassert>

#include "common/logging.h"

namespace sdm {

SdmStore::SdmStore(SdmStoreConfig config, EventLoop* loop)
    : config_(std::move(config)), loop_(loop), throttle_(config_.tuning.throttle) {
  assert(loop != nullptr);
  assert(config_.sm_specs.size() == config_.sm_backing_bytes.size());

  fm_ = std::make_unique<DramDevice>(config_.fm_capacity);

  Rng rng(config_.seed);
  for (size_t i = 0; i < config_.sm_specs.size(); ++i) {
    DeviceSpec spec = config_.sm_specs[i];
    if (!config_.tuning.sub_block_reads) {
      // Tuning knob: force the plain block path even on capable devices.
      spec.supports_sub_block = false;
    }
    sm_.push_back(std::make_unique<NvmeDevice>(spec, config_.sm_backing_bytes[i], loop_,
                                               rng.Next()));
    IoEngineConfig ecfg;
    ecfg.queue_depth = config_.tuning.io_queue_depth;
    ecfg.completion_mode = config_.tuning.completion_mode;
    engines_.push_back(std::make_unique<IoEngine>(sm_.back().get(), loop_, ecfg));
    DirectReaderConfig rcfg;
    rcfg.sub_block = config_.tuning.sub_block_reads;
    readers_.push_back(
        std::make_unique<DirectIoReader>(engines_.back().get(), rcfg, &buffer_arena_));
    BatchSchedulerConfig bcfg;
    bcfg.cross_request = config_.tuning.cross_request_batching;
    bcfg.max_batch_sqes = config_.tuning.max_batch_sqes;
    bcfg.max_batch_delay = config_.tuning.max_batch_delay;
    bcfg.max_coalesce_bytes = config_.tuning.max_coalesce_bytes;
    bcfg.coalesce_gap_bytes = config_.tuning.coalesce_gap_bytes;
    bcfg.prefetch_max_inflight_bytes = config_.tuning.prefetch_max_inflight_bytes;
    schedulers_.push_back(std::make_unique<BatchScheduler>(engines_.back().get(),
                                                           &buffer_arena_, loop_, bcfg));
  }
  sm_used_.assign(sm_.size(), 0);
}

CrossRequestIoStats SdmStore::cross_request_io_stats() const {
  CrossRequestIoStats agg;
  for (const auto& s : schedulers_) {
    const CrossRequestIoStats one = s->Snapshot();
    agg.device_reads += one.device_reads;
    agg.cross_request_merges += one.cross_request_merges;
    agg.singleflight_hits += one.singleflight_hits;
    agg.singleflight_bytes_saved += one.singleflight_bytes_saved;
    agg.flushes += one.flushes;
  }
  return agg;
}

Result<TableId> SdmStore::LoadTable(const EmbeddingTableImage& image,
                                    const TablePlacement& placement,
                                    std::optional<MappingTensor> mapping,
                                    uint64_t index_domain) {
  if (finished_) return FailedPreconditionError("LoadTable after FinishLoading");

  TableRuntime rt;
  rt.id = MakeTableId(static_cast<uint32_t>(tables_.size()));
  rt.config = image.config();
  rt.tier = placement.tier;
  rt.cache_enabled = placement.cache_enabled;
  rt.index_domain = index_domain;

  const Bytes size = image.size_bytes();
  if (rt.tier == MemoryTier::kFm) {
    if (fm_used_ + size > config_.fm_capacity) {
      return ResourceExhaustedError("FM over-committed by direct table " + rt.config.name);
    }
    rt.offset = fm_used_;
    if (Status s = fm_->Write(rt.offset, image.bytes()); !s.ok()) return s;
    fm_used_ += size;
    fm_direct_bytes_ += size;
  } else {
    if (sm_.empty()) return FailedPreconditionError("no SM devices configured");
    // Least-filled device gets the table (simple balance; tables are the
    // striping unit, as in the paper's two-SSD hosts).
    size_t best = 0;
    for (size_t i = 1; i < sm_.size(); ++i) {
      if (sm_used_[i] < sm_used_[best]) best = i;
    }
    if (sm_used_[best] + size > sm_[best]->backing_size()) {
      return ResourceExhaustedError("SM device over-committed by table " + rt.config.name);
    }
    rt.sm_device = best;
    rt.offset = sm_used_[best];
    auto wrote = sm_[best]->Write(rt.offset, image.bytes());
    if (!wrote.ok()) return wrote.status();
    load_write_time_ += wrote.value();
    sm_used_[best] += size;
    sm_used_total_ += size;
  }

  if (mapping.has_value()) {
    fm_mapping_bytes_ += mapping->size_bytes();
    rt.mapping = std::move(mapping);
  }

  tables_.push_back(std::move(rt));
  return tables_.back().id;
}

Bytes SdmStore::fm_cache_budget() const {
  const Bytes committed = fm_direct_bytes_ + fm_mapping_bytes_;
  return committed >= config_.fm_capacity ? 0 : config_.fm_capacity - committed;
}

Status SdmStore::FinishLoading() {
  if (finished_) return FailedPreconditionError("FinishLoading called twice");

  const Bytes budget = fm_cache_budget();
  TuningConfig& tuning = config_.tuning;

  Bytes pooled_capacity = 0;
  if (tuning.enable_pooled_cache) {
    pooled_capacity = std::min<Bytes>(tuning.pooled_cache.capacity, budget / 4);
  }

  if (tuning.enable_row_cache) {
    DualCacheConfig ccfg = tuning.row_cache;
    if (ccfg.capacity == 0) {
      // Auto-size: whatever FM the direct tables and mapping tensors left,
      // minus the pooled cache's cut. This is how de-pruning "frees up the
      // memory used by mapping tensors" into cache space (§4.5).
      ccfg.capacity = budget - pooled_capacity;
    }
    Bytes block_capacity = 0;
    if (tuning.enable_block_cache) {
      // The block layer takes its share out of the same FM budget — the
      // dilution that made the paper reject the multi-level arrangement.
      block_capacity = static_cast<Bytes>(static_cast<double>(ccfg.capacity) *
                                          tuning.block_cache_fraction);
      ccfg.capacity -= block_capacity;
    }
    if (ccfg.capacity + block_capacity + pooled_capacity + fm_direct_bytes_ +
            fm_mapping_bytes_ >
        config_.fm_capacity) {
      return ResourceExhaustedError("FM over-committed: caches + tables exceed capacity");
    }
    if (ccfg.capacity < 4 * kKiB) {
      return ResourceExhaustedError("FM budget leaves no usable row-cache space");
    }
    row_cache_ = std::make_unique<DualRowCache>(ccfg);
    for (const auto& t : tables_) {
      row_cache_->RegisterTable(t.id, t.config.row_bytes());
    }
    if (tuning.enable_block_cache) {
      BlockCacheConfig bcfg = tuning.block_cache;
      bcfg.capacity = block_capacity;
      block_cache_ = std::make_unique<BlockCache>(bcfg);
    }
  }

  if (tuning.enable_pooled_cache) {
    PooledCacheConfig pcfg = tuning.pooled_cache;
    pcfg.capacity = pooled_capacity;
    pooled_cache_ = std::make_unique<PooledEmbeddingCache>(pcfg);
  }

  // Speculative prefetch rides the cross-request scheduler's low-priority
  // lane and pays off by filling the row cache ahead of demand — so it is
  // only built when all three exist. In particular it stays inert in the
  // cross_request_batching=false ablation (bypass-mode parity: the PR 1
  // baseline must not gain a speculation side channel).
  if (tuning.enable_prefetch && tuning.cross_request_batching && !sm_.empty() &&
      row_cache_ != nullptr) {
    PrefetchConfig pfcfg;
    pfcfg.strategy = tuning.prefetch_strategy;
    pfcfg.depth = tuning.prefetch_depth;
    pfcfg.min_confidence = tuning.prefetch_min_confidence;
    pfcfg.max_coalesce_bytes = tuning.max_coalesce_bytes;
    pfcfg.coalesce_gap_bytes = tuning.coalesce_gap_bytes;
    std::vector<BatchScheduler*> scheds;
    scheds.reserve(schedulers_.size());
    for (const auto& s : schedulers_) scheds.push_back(s.get());
    prefetcher_ = std::make_unique<Prefetcher>(pfcfg, row_cache_.get(),
                                               block_cache_.get(), std::move(scheds));
    for (const TableRuntime& t : tables_) {
      if (t.tier != MemoryTier::kSm) continue;
      // A cache-bypassing table (kPerTableCacheEnablement) has nowhere to
      // put prefetched rows — speculation for it would be pure wasted IO
      // that also can never be claimed.
      if (!t.cache_enabled) continue;
      Prefetcher::TableInfo info;
      info.id = t.id;
      info.table_offset = t.offset;
      info.row_bytes = t.config.row_bytes();
      info.num_rows = t.config.num_rows;
      info.device = t.sm_device;
      info.cache_enabled = t.cache_enabled;
      info.block_mode = block_cache_ != nullptr && t.cache_enabled;
      info.sub_block = !info.block_mode && readers_[t.sm_device]->sub_block();
      prefetcher_->RegisterTable(info);
    }
  }

  finished_ = true;
  SDM_LOG_INFO << "SdmStore ready: " << tables_.size() << " tables, FM direct "
               << AsMiB(fm_direct_bytes_) << " MiB, mappings " << AsMiB(fm_mapping_bytes_)
               << " MiB, cache budget " << AsMiB(fm_cache_budget()) << " MiB, SM "
               << AsMiB(sm_used_total_) << " MiB";
  return Status::Ok();
}

void SdmStore::InvalidateRow(TableId table, RowIndex row) {
  if (row_cache_ != nullptr) {
    (void)row_cache_->Erase(RowKey{table, row});
  }
}

void SdmStore::InvalidatePooledFor(TableId table) {
  if (pooled_cache_ != nullptr) {
    pooled_cache_->InvalidateTable(table);
  }
}

}  // namespace sdm
