#include "core/model_loader.h"

#include "common/logging.h"
#include "embedding/pruning.h"

namespace sdm {

namespace {

/// Expands a quantized image to fp32 storage (A.5 de-quantization at load).
EmbeddingTableImage DequantizedImage(const EmbeddingTableImage& image) {
  TableConfig cfg = image.config();
  cfg.dtype = DataType::kFp32;
  EmbeddingTableImage out(cfg);
  std::vector<float> row(cfg.dim);
  for (RowIndex r = 0; r < image.num_rows(); ++r) {
    DequantizeRow(image.config().dtype, image.Row(r), row);
    const Status s = out.SetRow(r, row);
    assert(s.ok());
    (void)s;
  }
  return out;
}

}  // namespace

Result<LoadReport> ModelLoader::Load(const ModelConfig& model, const LoaderOptions& options,
                                     SdmStore* store) {
  if (store->loading_finished()) {
    return FailedPreconditionError("store already sealed");
  }
  auto plan_result = ComputePlacement(model, store->tuning());
  if (!plan_result.ok()) return plan_result.status();

  LoadReport report;
  report.plan = std::move(plan_result).value();
  const TuningConfig& tuning = store->tuning();

  for (size_t i = 0; i < model.tables.size(); ++i) {
    const TableConfig& cfg = model.tables[i];
    const TablePlacement& placement = report.plan.tables[i];
    const uint64_t table_seed = options.seed ^ (0xabcdef12345678ULL * (i + 1));

    EmbeddingTableImage image = EmbeddingTableImage::GenerateRandom(cfg, table_seed);
    std::optional<MappingTensor> mapping;
    const uint64_t index_domain = cfg.num_rows;

    // -- Pruning --------------------------------------------------------
    const bool prune =
        (options.prune_keep_fraction < 1.0 || options.prune_keep_predicate) &&
        (!options.prune_user_tables_only || cfg.role == TableRole::kUser);
    if (prune) {
      PrunedTable pruned =
          options.prune_keep_predicate
              ? PruneTableWithPredicate(image,
                                        [&options, i](RowIndex row) {
                                          return options.prune_keep_predicate(i, row);
                                        })
              : PruneTable(image, options.prune_keep_fraction, table_seed + 1);
      ++report.tables_pruned;
      if (tuning.deprune_at_load && placement.tier == MemoryTier::kSm) {
        // Algorithm 2: dense table, no mapping tensor.
        image = DeprunedTable(pruned);
        ++report.tables_depruned;
      } else {
        image = std::move(pruned.rows);
        mapping = std::move(pruned.mapping);
      }
    }

    // -- De-quantization at load (SM tables only; A.5) --------------------
    if (tuning.dequantize_at_load && placement.tier == MemoryTier::kSm &&
        image.config().dtype != DataType::kFp32) {
      image = DequantizedImage(image);
      ++report.tables_dequantized;
    }

    auto loaded = store->LoadTable(image, placement, std::move(mapping), index_domain);
    if (!loaded.ok()) return loaded.status();
    ++report.tables_loaded;
  }

  if (Status s = store->FinishLoading(); !s.ok()) return s;

  report.fm_direct_bytes = store->fm_direct_bytes();
  report.fm_mapping_bytes = store->fm_mapping_bytes();
  report.sm_bytes = store->sm_used_bytes();
  report.sm_write_time = store->load_write_time();
  SDM_LOG_INFO << "Loaded " << report.tables_loaded << " tables (" << report.tables_pruned
               << " pruned, " << report.tables_depruned << " de-pruned, "
               << report.tables_dequantized << " de-quantized)";
  return report;
}

}  // namespace sdm
