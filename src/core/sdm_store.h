// SdmStore — the Software Defined Memory runtime (paper §4).
//
// Owns the two memory tiers and every mechanism the paper layers on top:
//   FM  : a DRAM arena holding direct-mapped tables, pruning mapping
//         tensors, and the storage budget of the software caches;
//   SM  : one or more simulated NVMe devices, each fronted by an io_uring
//         style IoEngine and a shared per-table throttle;
//   caches: the unified dual row cache (§4.3) + pooled-embedding cache
//         (§4.4), built at FinishLoading() so their FM budget can be
//         auto-sized to whatever direct tables and mapping tensors left.
//
// Device ownership (src/tenant): the SM device stack (devices, IO engines,
// readers, batch schedulers, buffer arena, throttle) lives in a
// SharedDeviceService. A standalone store constructs a PRIVATE service
// from its own sm_specs — today's owned-device path, byte-identical to
// when the stack was inlined here. A multi-tenant shard instead ATTACHES
// to an external service (config.shared_device), sharing the device stack
// with its co-located tenants so their reads single-flight across store
// boundaries; the store keeps per-tenant FM, caches, and tables, and
// stamps its TenantId/TenantClass onto every scheduler request.
//
// Lifecycle: construct -> LoadTable()* -> FinishLoading() -> lookups via
// LookupEngine. Model refresh goes through ModelUpdater.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cache/dual_cache.h"
#include "cache/pooled_cache.h"
#include "common/event_loop.h"
#include "common/result.h"
#include "common/stats.h"
#include "core/placement.h"
#include "core/tuning.h"
#include "device/dram_device.h"
#include "device/nvme_device.h"
#include "embedding/pruning.h"
#include "embedding/embedding_table.h"
#include "io/buffer_arena.h"
#include "io/direct_reader.h"
#include "io/io_engine.h"
#include "io/throttle.h"
#include "obs/observability.h"
#include "prefetch/prefetcher.h"
#include "sched/batch_scheduler.h"
#include "tenant/shared_device_service.h"
#include "tenant/tenant.h"

namespace sdm {

struct SdmStoreConfig {
  /// Host FM (DRAM) available to the SDM: direct tables + mapping tensors +
  /// row/pooled cache storage must fit here. Per tenant in attach mode.
  Bytes fm_capacity = 256 * kMiB;

  /// SM devices on the host (specs define latency/IOPS; backing sizes the
  /// actual byte store for scaled-down runs). Owned mode only — must be
  /// empty when `shared_device` is set.
  std::vector<DeviceSpec> sm_specs;
  std::vector<Bytes> sm_backing_bytes;

  TuningConfig tuning;
  uint64_t seed = 42;

  // ---- Multi-tenant attach mode (src/tenant) ----
  /// Non-null: attach to this shared device stack instead of owning one.
  /// The service must outlive the store; tuning must pass
  /// ValidateForSharedDevice() (checked at LoadTable).
  SharedDeviceService* shared_device = nullptr;
  /// This shard's identity on the shared device (from RegisterTenant).
  TenantId tenant_id = 0;
  TenantClass tenant_class = TenantClass::kForeground;

  // ---- Observability (src/obs) ----
  /// The per-event-loop observability instance this store's components
  /// record into (null = off). Owned by the simulation layer and shared by
  /// everything on the same loop; never crosses a shard boundary.
  Observability* obs = nullptr;
  /// Source prefix for metric names and trace tracks ("host0/", ...). Kept
  /// runtime-shape-independent so sharded and single-loop exports match.
  std::string obs_prefix;
};

/// Runtime state of one loaded table.
struct TableRuntime {
  TableId id{};
  TableConfig config;  ///< post-transform (deprune/dequant) configuration
  MemoryTier tier = MemoryTier::kSm;
  bool cache_enabled = true;
  size_t sm_device = 0;  ///< valid when tier == kSm
  Bytes offset = 0;      ///< byte offset on its tier's store
  /// The SM extent holds bytes another tenant placed first (shared-device
  /// content dedup); read-only by construction.
  bool shared_extent = false;
  /// Present for pruned tables served with an FM-resident mapping tensor.
  std::optional<MappingTensor> mapping;
  /// Size of the index domain requests use (unpruned row count).
  uint64_t index_domain = 0;
  /// Extent-registry id of this table's SM bytes (0 for FM tables) — the
  /// key for demand heat, replica routing, and read-repair (src/fault).
  uint64_t extent_id = 0;
  /// Rows of this table that pooled as zeros (exhausted retries, checksum
  /// failures, or sheds from a sick endpoint). Degraded-row-aware
  /// placement feeds on this: the ModelUpdater migrates chronically
  /// degraded tables toward FM at the next refresh.
  uint64_t degraded_rows = 0;
};

class SdmStore {
 public:
  SdmStore(SdmStoreConfig config, EventLoop* loop);

  SdmStore(const SdmStore&) = delete;
  SdmStore& operator=(const SdmStore&) = delete;

  // ---- Loading ------------------------------------------------------------

  /// Writes `image` to the placed tier and registers the table. `mapping`
  /// accompanies pruned tables (nullopt when dense or de-pruned);
  /// `index_domain` is the unpruned row count requests address.
  Result<TableId> LoadTable(const EmbeddingTableImage& image, const TablePlacement& placement,
                            std::optional<MappingTensor> mapping, uint64_t index_domain);

  /// Seals loading: sizes and builds the caches from the remaining FM
  /// budget; fails if FM is over-committed. No lookups before this.
  Status FinishLoading();

  [[nodiscard]] bool loading_finished() const { return finished_; }

  // ---- Table access --------------------------------------------------------

  [[nodiscard]] size_t table_count() const { return tables_.size(); }
  [[nodiscard]] const TableRuntime& table(TableId id) const { return tables_[Raw(id)]; }
  [[nodiscard]] TableRuntime& mutable_table(TableId id) { return tables_[Raw(id)]; }

  // ---- Components ----------------------------------------------------------

  [[nodiscard]] DualRowCache* row_cache() { return row_cache_.get(); }
  [[nodiscard]] PooledEmbeddingCache* pooled_cache() { return pooled_cache_.get(); }
  /// Second-level block cache (nullptr unless tuning.enable_block_cache).
  [[nodiscard]] BlockCache* block_cache() { return block_cache_.get(); }
  [[nodiscard]] TableThrottle& throttle() { return device_service_->throttle(); }
  [[nodiscard]] DramDevice& fm() { return *fm_; }
  [[nodiscard]] size_t sm_device_count() const { return device_service_->device_count(); }
  [[nodiscard]] NvmeDevice& sm_device(size_t i) { return device_service_->device(i); }
  [[nodiscard]] IoEngine& io_engine(size_t i) { return device_service_->io_engine(i); }
  [[nodiscard]] DirectIoReader& reader(size_t i) { return device_service_->reader(i); }
  /// Per-device cross-request batch scheduler (src/sched). All concurrent
  /// lookups on the host — every attached tenant's, in shared mode —
  /// funnel their planned reads through these.
  [[nodiscard]] BatchScheduler& scheduler(size_t i) { return device_service_->scheduler(i); }
  /// Device-stack-wide scheduler effectiveness (spans every tenant of a
  /// shared device; exactly this host's traffic when the stack is owned).
  [[nodiscard]] CrossRequestIoStats cross_request_io_stats() const {
    return device_service_->cross_request_io_stats();
  }
  /// The device stack this store reads from — private in owned mode,
  /// shared across tenants in attach mode.
  [[nodiscard]] SharedDeviceService& device_service() { return *device_service_; }
  [[nodiscard]] bool attached() const { return owned_service_ == nullptr; }

  // ---- Tenant identity (src/tenant) -----------------------------------------

  [[nodiscard]] TenantId tenant_id() const { return config_.tenant_id; }
  [[nodiscard]] TenantClass tenant_class() const { return config_.tenant_class; }
  /// Scheduler lane this store's demand reads ride: foreground tenants use
  /// the demand lane, background tenants the byte-budgeted background lane.
  [[nodiscard]] BatchScheduler::ReadRequest::Kind demand_kind() const {
    return config_.tenant_class == TenantClass::kBackground
               ? BatchScheduler::ReadRequest::Kind::kBackground
               : BatchScheduler::ReadRequest::Kind::kDemand;
  }
  /// Tenant-scoped throttle admission (§4.1): slots are keyed by
  /// (tenant, table) so co-located tenants cannot eat each other's budget.
  void AcquireIoSlot(TableId table, TableThrottle::Runner fn) {
    throttle().Acquire(config_.tenant_id, table, std::move(fn));
  }
  void ReleaseIoSlot(TableId table) { throttle().Release(config_.tenant_id, table); }

  /// Speculative readahead through the schedulers' low-priority lane.
  /// Null unless tuning.enable_prefetch — and inert by construction when
  /// cross_request_batching is off (the PR 1 ablation baseline) or there is
  /// no row cache to fill.
  [[nodiscard]] Prefetcher* prefetcher() { return prefetcher_.get(); }
  [[nodiscard]] PrefetchStats prefetch_stats() const {
    return prefetcher_ == nullptr ? PrefetchStats{} : prefetcher_->stats();
  }
  /// Shared pool of device-read bounce buffers (coalesced IO path).
  [[nodiscard]] BufferArena& buffer_arena() { return device_service_->buffer_arena(); }
  [[nodiscard]] EventLoop* loop() { return loop_; }
  [[nodiscard]] const TuningConfig& tuning() const { return config_.tuning; }
  [[nodiscard]] const SdmStoreConfig& config() const { return config_; }

  // ---- Observability (src/obs) ----
  [[nodiscard]] Observability* obs() const { return config_.obs; }
  [[nodiscard]] const std::string& obs_prefix() const { return config_.obs_prefix; }

  // ---- FM accounting --------------------------------------------------------

  [[nodiscard]] Bytes fm_capacity() const { return config_.fm_capacity; }
  [[nodiscard]] Bytes fm_direct_bytes() const { return fm_direct_bytes_; }
  [[nodiscard]] Bytes fm_mapping_bytes() const { return fm_mapping_bytes_; }
  /// FM left for cache storage after direct tables and mapping tensors.
  [[nodiscard]] Bytes fm_cache_budget() const;

  /// Aggregate SM bytes of this store's loaded tables — the tenant's
  /// LOGICAL footprint; shared extents are counted here but occupy device
  /// space only once (see SharedDeviceService::sm_used_bytes()).
  [[nodiscard]] Bytes sm_used_bytes() const { return sm_used_total_; }

  /// Virtual time spent writing table images during load (per §A.3 updates
  /// take longer when embeddings must be saved to SM).
  [[nodiscard]] SimDuration load_write_time() const { return load_write_time_; }

  [[nodiscard]] StatsRegistry& stats() { return stats_; }

  /// Invalidates one row in the row cache (model update path).
  void InvalidateRow(TableId table, RowIndex row);

  /// Drops every pooled-cache entry for `table` (any row change invalidates
  /// pooled outputs that may contain it).
  void InvalidatePooledFor(TableId table);

  // ---- Self-healing feedback (src/fault) ------------------------------------

  /// Charges `n` zero-pooled rows to `table`'s degraded tally (fed by the
  /// LookupEngine's degraded accounting).
  void RecordTableDegradedRows(TableId table, uint64_t n) {
    tables_[Raw(table)].degraded_rows += n;
  }

  /// Moves a chronically degraded SM table's bytes into FM (refresh-time,
  /// offline — the ModelUpdater's degraded-placement feedback). Fails when
  /// the table is FM-resident already, rides a shared extent (other tenants
  /// still serve from it), or FM lacks headroom beyond what the caches and
  /// direct tables committed. The vacated SM extent is not reclaimed (bump
  /// allocator), matching how table space behaves everywhere else.
  Status MigrateTableToFm(TableId table);

 private:
  SdmStoreConfig config_;
  EventLoop* loop_;
  std::unique_ptr<DramDevice> fm_;
  /// The private device stack of an owned-mode store (null when attached).
  /// Declared before the caches/prefetcher that point into it.
  std::unique_ptr<SharedDeviceService> owned_service_;
  SharedDeviceService* device_service_ = nullptr;
  std::unique_ptr<DualRowCache> row_cache_;
  std::unique_ptr<PooledEmbeddingCache> pooled_cache_;
  std::unique_ptr<BlockCache> block_cache_;
  // Declared after the caches and the service whose schedulers it points into.
  std::unique_ptr<Prefetcher> prefetcher_;

  std::vector<TableRuntime> tables_;
  Bytes fm_used_ = 0;  // direct-table arena bump allocator
  Bytes fm_direct_bytes_ = 0;
  Bytes fm_mapping_bytes_ = 0;
  Bytes sm_used_total_ = 0;
  /// FM the caches committed at FinishLoading (row + block + pooled
  /// capacities) — the part of fm_capacity no later migration may eat.
  Bytes fm_cache_committed_ = 0;
  SimDuration load_write_time_;
  bool finished_ = false;
  StatsRegistry stats_;
};

}  // namespace sdm
