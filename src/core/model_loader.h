// ModelLoader — builds table images and loads them into an SdmStore.
//
// Applies the load-time transforms of paper §4.5 / Appendix A.5 in order:
//   1. generation  : deterministic random quantized tables from the config;
//   2. pruning     : optionally prune user tables (mapping tensor appears);
//   3. de-pruning  : if tuning.deprune_at_load, rebuild dense tables so the
//                    mapping tensors release their FM (Algorithm 2);
//   4. de-quant    : if tuning.dequantize_at_load, expand SM-placed tables
//                    to fp32 at load (spends cheap SM, larger cached rows);
//   5. placement   : ComputePlacement decides FM vs SM and cache enablement;
//   6. load        : bytes written to devices, store sealed by the caller.
#pragma once

#include <cstdint>
#include <functional>

#include "common/result.h"
#include "core/placement.h"
#include "core/sdm_store.h"
#include "embedding/table_config.h"

namespace sdm {

struct LoaderOptions {
  /// Fraction of rows kept when pruning (1.0 = no pruning).
  double prune_keep_fraction = 1.0;
  /// Prune only user tables (the paper prunes the capacity-heavy side).
  bool prune_user_tables_only = true;
  /// When set, decides survivors instead of the random keep fraction —
  /// lets experiments prune *cold* rows the way production does (so
  /// de-pruning adds only a small fraction of extra requests, §4.5).
  std::function<bool(size_t table_index, RowIndex row)> prune_keep_predicate;
  uint64_t seed = 1234;
};

struct LoadReport {
  PlacementPlan plan;
  size_t tables_loaded = 0;
  size_t tables_pruned = 0;
  size_t tables_depruned = 0;
  size_t tables_dequantized = 0;
  Bytes fm_direct_bytes = 0;
  Bytes fm_mapping_bytes = 0;
  Bytes sm_bytes = 0;
  SimDuration sm_write_time;
};

class ModelLoader {
 public:
  /// Generates, transforms, places and loads every table of `model` into
  /// `store`, then seals the store (FinishLoading). The store's tuning
  /// config governs the §4.5 transforms.
  [[nodiscard]] static Result<LoadReport> Load(const ModelConfig& model,
                                               const LoaderOptions& options, SdmStore* store);
};

}  // namespace sdm
