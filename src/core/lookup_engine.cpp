#include "core/lookup_engine.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstring>
#include <unordered_map>

namespace sdm {

namespace {

/// CPU cost of translating one index through the mapping tensor.
constexpr SimDuration kMapCostPerIndex = Nanos(4);

/// CPU cost of the intra-request dedup hash probe per index (coalesced
/// path only; the per-row ablation path skips dedup entirely).
constexpr SimDuration kDedupCostPerIndex = Nanos(3);

}  // namespace

struct LookupEngine::RequestState {
  LookupRequest request;
  LookupCallback cb;
  SimTime start;

  // Rows resolved in the mapped (physical) space; kept per requested index
  // so pooling skips pruned slots.
  struct Slot {
    enum class Source : uint8_t { kNone, kFmDirect, kCache, kBlockCache, kSm };

    RowIndex physical_row = 0;
    bool pruned = false;
    bool needs_io = false;
    /// >= 0: this slot repeats slots[dup_of]'s physical row; its bytes are
    /// fanned out from that slot once every fetch has landed.
    int32_t dup_of = -1;
    Source source = Source::kNone;
  };
  std::vector<Slot> slots;
  std::vector<uint8_t> row_bytes;  // slots.size() * row_bytes contiguous
  Bytes stored_row_bytes = 0;

  SimDuration cpu_pre;   // before/at IO issue
  SimDuration cpu_post;  // after last IO
  int outstanding_ios = 0;
  bool io_phase_started = false;
  Status first_error;
  LookupTrace trace;

  /// Device this request's SM IOs go to — the table's primary unless the
  /// health monitor shed us onto a replica (self-healing failover).
  size_t io_device = 0;
  /// Primary-space -> io_device-space offset delta (0 on the primary;
  /// always a multiple of kBlockSize on a replica).
  int64_t io_shift = 0;
};

/// One planned run plus the submission context this engine needs when its
/// (possibly shared, possibly retried) device read completes.
struct LookupEngine::RunContext {
  PlannedRun run;
  bool sgl = false;
  /// Bus bytes this run would move as its own SQE, and the savings versus
  /// per-row reads — request-level accounting; the scheduler recomputes
  /// SQE-level numbers after cross-request merging.
  Bytes bus = 0;
  Bytes bytes_saved = 0;
  /// Whether this run owns its blocks' block-cache fill. Single-flight
  /// joiners ride a read whose owner already inserts those blocks; a
  /// second insert would only duplicate the copy cost and LRU churn.
  bool insert_blocks = true;
  /// Scheduler-aware throttling: only runs that became their own SQE
  /// (Admission::kNewRead) keep holding a throttle slot until completion —
  /// admission budgets *device reads after merging*. Shared runs release
  /// their slot at enqueue and this stays false.
  bool holds_slot = true;
  /// Device this run reads from and its primary-space shift (inherited
  /// from the request's routing; read-repair may re-point a single run).
  size_t device = 0;
  int64_t shift = 0;
  /// Set when this run is being re-driven against a replica after its
  /// terminal failure (one repair attempt per run).
  bool repairing = false;
};

LookupEngine::LookupEngine(SdmStore* store) : store_(store), loop_(store->loop()) {
  assert(store->loading_finished() && "SdmStore must be sealed before lookups");
  lookups_ = stats_.GetCounter("lookups");
  pooled_hits_ = stats_.GetCounter("pooled_hits");
  rows_cache_hit_ = stats_.GetCounter("rows_cache_hit");
  rows_block_hit_ = stats_.GetCounter("rows_block_hit");
  rows_sm_read_ = stats_.GetCounter("rows_sm_read");
  rows_fm_read_ = stats_.GetCounter("rows_fm_read");
  rows_pruned_ = stats_.GetCounter("rows_pruned");
  rows_deduped_ = stats_.GetCounter("rows_deduped");
  prefetch_hits_ = stats_.GetCounter("prefetch_hits");
  device_reads_ = stats_.GetCounter("device_reads");
  singleflight_hits_ = stats_.GetCounter("singleflight_hits");
  io_bytes_saved_ = stats_.GetCounter("io_bytes_saved");
  cpu_ns_ = stats_.GetCounter("cpu_ns");
  io_errors_ = stats_.GetCounter("io_errors");
  io_retries_ = stats_.GetCounter("io_retries");
  rows_failed_ = stats_.GetCounter("rows_failed");
  degraded_lookups_ = stats_.GetCounter("degraded_lookups");
  shed_lookups_ = stats_.GetCounter("shed_lookups");
  replica_reads_ = stats_.GetCounter("replica_reads");
  read_repairs_ = stats_.GetCounter("read_repairs");
  if (store->sm_device_count() > 0) {
    memcpy_bytes_per_sec_ = store->reader(0).memcpy_bytes_per_sec();
  }
  Observability* obs = store->obs();
  const std::string& prefix = store->obs_prefix();
  obs_lookups_ = ObsCounter(obs, prefix + "lookup/requests");
  obs_cache_rows_ = ObsCounter(obs, prefix + "lookup/cache_rows");
  obs_sm_rows_ = ObsCounter(obs, prefix + "lookup/sm_rows");
  obs_degraded_ = ObsCounter(obs, prefix + "lookup/degraded");
  obs_shed_ = ObsCounter(obs, prefix + "lookup/shed");
  obs_lat_ = ObsHist(obs, prefix + "lookup/latency_ns");
  obs_spans_ = ObsSpans(obs);
  if (obs_spans_ != nullptr) {
    std::string process = prefix;
    if (!process.empty() && process.back() == '/') process.pop_back();
    if (process.empty()) process = "host";
    obs_track_ = obs_spans_->Track(process, "lookup");
  }
}

void LookupEngine::RecordObsCompletion(const RequestState& st) {
  const SimTime now = loop_->Now();
  if (obs_lookups_ != nullptr) {
    obs_lookups_->Add(now);
    obs_cache_rows_->Add(now, st.trace.rows_from_cache);
    obs_sm_rows_->Add(now, st.trace.rows_from_sm);
    if (st.trace.degraded) obs_degraded_->Add(now);
    obs_lat_->Record(now, st.trace.latency);
  }
  if (obs_spans_ != nullptr && st.request.traced) {
    // One stack-formatted arg blob; string temporaries per traced lookup
    // would dominate the recording cost.
    char args[96];
    std::snprintf(args, sizeof(args),
                  "{\"rows\":%zu,\"sm_rows\":%zu,\"device_reads\":%zu}",
                  static_cast<size_t>(st.trace.rows_requested),
                  static_cast<size_t>(st.trace.rows_from_sm),
                  static_cast<size_t>(st.trace.device_reads));
    obs_spans_->Span(obs_track_, "lookup", st.start, now, args);
  }
}

SimDuration LookupEngine::CopyCost(Bytes bytes) const {
  return Seconds(static_cast<double>(bytes) / memcpy_bytes_per_sec_);
}

void LookupEngine::Lookup(LookupRequest request, LookupCallback cb) {
  lookups_->Add(1);
  auto st = std::make_shared<RequestState>();
  st->request = std::move(request);
  st->cb = std::move(cb);
  st->start = loop_->Now();
  st->trace.rows_requested = static_cast<uint32_t>(st->request.indices.size());

  const TableRuntime& table = store_->table(st->request.table);
  st->stored_row_bytes = table.config.row_bytes();

  // ---- Pooled-embedding cache probe (Algorithm 1 head) ----
  PooledEmbeddingCache* pooled = store_->pooled_cache();
  if (pooled != nullptr) {
    st->cpu_pre += pooled->LookupCpuCost(st->request.indices.size());
    const std::vector<float>* hit = pooled->Lookup(st->request.table, st->request.indices);
    if (hit != nullptr) {
      pooled_hits_->Add(1);
      st->trace.pooled_cache_hit = true;
      cpu_ns_->Add(static_cast<uint64_t>(st->cpu_pre.nanos()));
      st->trace.cpu_time = st->cpu_pre;
      // One copy, constructed straight into the callback's output slot
      // (the entry may be evicted before the callback runs).
      loop_->ScheduleAfter(st->cpu_pre,
                           [this, st, out = std::vector<float>(*hit)]() mutable {
                             st->trace.latency = loop_->Now() - st->start;
                             latency_.Record(st->trace.latency);
                             RecordObsCompletion(*st);
                             st->cb(Status::Ok(), std::move(out), st->trace);
                           });
      return;
    }
  }

  // ---- Index mapping (pruned tables served with an FM mapping tensor) ----
  st->slots.resize(st->request.indices.size());
  for (size_t i = 0; i < st->request.indices.size(); ++i) {
    const RowIndex idx = st->request.indices[i];
    auto& slot = st->slots[i];
    if (table.mapping.has_value()) {
      st->cpu_pre += kMapCostPerIndex;
      const auto mapped = table.mapping->Lookup(idx);
      if (!mapped.has_value()) {
        slot.pruned = true;
        rows_pruned_->Add(1);
        ++st->trace.rows_pruned_skipped;
        continue;
      }
      slot.physical_row = *mapped;
    } else {
      if (idx >= table.config.num_rows) {
        // Out-of-domain index: treat as missing row (contributes zero),
        // matching EmbeddingBag-with-pruning semantics rather than failing
        // the whole query.
        slot.pruned = true;
        rows_pruned_->Add(1);
        ++st->trace.rows_pruned_skipped;
        continue;
      }
      slot.physical_row = idx;
    }
  }

  st->row_bytes.assign(st->slots.size() * st->stored_row_bytes, 0);

  // ---- Row resolution: dedup / FM direct / row cache / SM IO ----
  const bool coalesce = store_->tuning().coalesce_io;
  std::unordered_map<RowIndex, uint32_t> first_slot_for_row;
  if (coalesce) first_slot_for_row.reserve(st->slots.size());
  DualRowCache* cache = store_->row_cache();
  int misses = 0;
  for (size_t i = 0; i < st->slots.size(); ++i) {
    auto& slot = st->slots[i];
    if (slot.pruned) continue;

    if (coalesce) {
      // Duplicate indices within the bag resolve once; the other slots fan
      // out from that fetch (whatever source it comes from).
      st->cpu_pre += kDedupCostPerIndex;
      const auto [it, inserted] =
          first_slot_for_row.try_emplace(slot.physical_row, static_cast<uint32_t>(i));
      if (!inserted) {
        slot.dup_of = static_cast<int32_t>(it->second);
        ++st->trace.rows_deduped;
        rows_deduped_->Add(1);
        continue;
      }
    }

    std::span<uint8_t> dest(st->row_bytes.data() + i * st->stored_row_bytes,
                            st->stored_row_bytes);

    if (table.tier == MemoryTier::kFm) {
      const Bytes off = table.offset + slot.physical_row * st->stored_row_bytes;
      auto read = store_->fm().Read(off, dest);
      assert(read.ok());
      st->cpu_pre += read.value();
      rows_fm_read_->Add(1);
      ++st->trace.rows_from_fm_direct;
      slot.source = RequestState::Slot::Source::kFmDirect;
      continue;
    }

    // SM tier: probe the cache first when this table uses it.
    if (cache != nullptr && table.cache_enabled) {
      st->cpu_pre += cache->RouteCpuCost(st->request.table);
      size_t len = 0;
      if (cache->Lookup(RowKey{st->request.table, slot.physical_row}, dest, &len)) {
        assert(len == st->stored_row_bytes);
        rows_cache_hit_->Add(1);
        ++st->trace.rows_from_cache;
        slot.source = RequestState::Slot::Source::kCache;
        // Credit the prefetcher when it put this row here (first demand
        // touch claims it; the row then counts as an ordinary cache line).
        if (Prefetcher* pf = store_->prefetcher();
            pf != nullptr && pf->ClaimHit(st->request.table, slot.physical_row)) {
          prefetch_hits_->Add(1);
          ++st->trace.rows_prefetch_hit;
        }
        continue;
      }
      // Second level (multi-level ablation): a block hit avoids device IO
      // but pays a probe + copy, and fills the row cache.
      BlockCache* blocks = store_->block_cache();
      if (blocks != nullptr) {
        const Bytes off = table.offset + slot.physical_row * st->stored_row_bytes;
        const BlockCache::BlockKey bkey{static_cast<uint32_t>(table.sm_device),
                                        off / kBlockSize};
        st->cpu_pre += blocks->LookupCpuCost();
        // Only serve fully-contained rows from one block; spanning rows go
        // to IO (rare for the dword-aligned layouts used here).
        if (off / kBlockSize == (off + st->stored_row_bytes - 1) / kBlockSize &&
            blocks->ReadRange(bkey, off % kBlockSize, dest)) {
          rows_block_hit_->Add(1);
          ++st->trace.rows_from_block_cache;
          slot.source = RequestState::Slot::Source::kBlockCache;
          if (Prefetcher* pf = store_->prefetcher();
              pf != nullptr && pf->ClaimHit(st->request.table, slot.physical_row)) {
            prefetch_hits_->Add(1);
            ++st->trace.rows_prefetch_hit;
          }
          cache->Insert(RowKey{st->request.table, slot.physical_row}, dest);
          st->cpu_pre += cache->RouteCpuCost(st->request.table);
          continue;
        }
      }
    }
    slot.needs_io = true;
    ++misses;
  }

  // ---- Predictor feed (speculative prefetch) ----
  // The prefetcher learns from the post-dedup demand stream: one access per
  // distinct SM-tier row, plus which of them are about to pay device IO.
  // Prediction/issue happens in StartIoPhase, after the demand runs are
  // enqueued, so speculation rides the demand doorbell. Bookkeeping only —
  // no CPU is charged to the query (background work in a real deployment).
  if (Prefetcher* pf = store_->prefetcher();
      pf != nullptr && table.tier == MemoryTier::kSm) {
    for (const auto& slot : st->slots) {
      if (slot.pruned || slot.dup_of >= 0) continue;
      pf->RecordAccess(st->request.table, slot.physical_row);
      if (slot.needs_io) pf->RecordMiss(st->request.table, slot.physical_row);
    }
  }

  // ---- IO phase (or straight to pooling) ----
  if (misses == 0) {
    FinishRequest(st);
    return;
  }
  // The CPU pre-phase runs before submissions hit the device.
  loop_->ScheduleAfter(st->cpu_pre, [this, st] { StartIoPhase(st); });
}

void LookupEngine::StartIoPhase(std::shared_ptr<RequestState> st) {
  st->io_phase_started = true;
  const TuningConfig& tuning = store_->tuning();
  const TableRuntime& table = store_->table(st->request.table);
  st->io_device = table.sm_device;

  // Demand heat for the replication manager's ranking: one bump per lookup
  // that reaches the IO phase on this table's extent (no-op for id 0).
  store_->device_service().RecordExtentDemand(table.extent_id);

  // Health-monitor shed: while this table's SM endpoint is sick, only every
  // Nth lookup probes the device; the rest fail over to the extent's
  // replica when the self-healing layer has placed one, and otherwise
  // complete immediately with their IO rows failed (degraded mode) instead
  // of queueing onto a failing device or fabric. On a disaggregated host —
  // whose SM lives entirely behind the fabric — this IS the failover:
  // replica, FM-resident rows, and caches still serve. Inert unless
  // tuning.enable_health_monitor.
  {
    HealthMonitor& health = store_->device_service().health();
    const size_t dev = table.sm_device;
    if (health.Sick(dev) && !health.AdmitProbe(dev)) {
      const auto route =
          store_->device_service().FindReplicaRoute(table.extent_id, dev);
      if (route.has_value() && tuning.coalesce_io) {
        st->io_device = route->device;
        st->io_shift = route->shift;
      } else {
        shed_lookups_->Add(1);
        if (obs_shed_ != nullptr) obs_shed_->Add(loop_->Now());
        for (auto& slot : st->slots) slot.needs_io = false;  // source stays kNone
        st->first_error = UnavailableError("lookup shed: SM endpoint unhealthy");
        FinishRequest(st);
        return;
      }
    }
  }

  if (!tuning.coalesce_io) {
    // Per-row ablation path: one device IO per missing row.
    int ios = 0;
    for (const auto& slot : st->slots) ios += slot.needs_io ? 1 : 0;
    st->outstanding_ios = ios;
    for (uint32_t i = 0; i < st->slots.size(); ++i) {
      if (st->slots[i].needs_io) SubmitRowIo(st, i);
    }
    if (Prefetcher* pf = store_->prefetcher(); pf != nullptr) {
      pf->MaybeIssue(st->request.table);
    }
    return;
  }

  DirectIoReader& reader = store_->reader(table.sm_device);
  const bool block_cache_mode = store_->block_cache() != nullptr && table.cache_enabled;
  const bool sgl = !block_cache_mode && reader.sub_block();
  const Bytes rb = st->stored_row_bytes;

  std::vector<IoPlanner::Miss> misses;
  for (uint32_t i = 0; i < st->slots.size(); ++i) {
    if (!st->slots[i].needs_io) continue;
    misses.push_back(IoPlanner::Miss{i, table.offset + st->slots[i].physical_row * rb});
  }

  // Planning (dedup happened at slot resolution; block grouping and
  // adjacent-run merging live in the planner) is pure; batching across
  // concurrent requests is the scheduler's job.
  PlannerConfig pcfg;
  pcfg.row_bytes = rb;
  pcfg.sub_block = sgl;
  pcfg.max_coalesce_bytes = tuning.max_coalesce_bytes;
  pcfg.coalesce_gap_bytes = tuning.coalesce_gap_bytes;
  IoPlan plan = IoPlanner::Plan(std::move(misses), pcfg);

  st->outstanding_ios = static_cast<int>(plan.TotalIos());
  for (const uint32_t i : plan.fallback_slots) SubmitRowIo(st, i);
  if (!plan.runs.empty()) SubmitPlannedRuns(st, std::move(plan.runs));

  // Demand runs are enqueued (holding whatever batch is forming); now let
  // the prefetcher speculate into the scheduler's low-priority lane, where
  // its reads share this request's doorbell but never force one.
  if (Prefetcher* pf = store_->prefetcher(); pf != nullptr) {
    pf->MaybeIssue(st->request.table);
  }
}

void LookupEngine::SubmitRowIo(const std::shared_ptr<RequestState>& st,
                               uint32_t slot_index) {
  const TableRuntime& table = store_->table(st->request.table);
  DirectIoReader& reader = store_->reader(st->io_device);
  const bool block_mode = store_->block_cache() != nullptr && table.cache_enabled;

  auto& slot = st->slots[slot_index];
  // `off` stays in primary space (cache keys live there); the device offset
  // applies the request's replica shift at issue time.
  const Bytes off = table.offset + slot.physical_row * st->stored_row_bytes;
  const int64_t shift = st->io_shift;
  std::span<uint8_t> dest(st->row_bytes.data() + slot_index * st->stored_row_bytes,
                          st->stored_row_bytes);
  const RowIndex physical = slot.physical_row;

  ++st->trace.device_reads;
  device_reads_->Add(1);
  if (st->io_device != table.sm_device) {
    ++st->trace.replica_reads;
    replica_reads_->Add(1);
  }

  // Shared completion: cache fills + join bookkeeping. Errored reads count
  // only toward io_errors, not toward rows served from SM. `device` is the
  // device that served (or terminally failed) the row — after a repair
  // re-drive it differs from st->io_device.
  auto on_row_done = [this, st, slot_index, dest, physical](Status status,
                                                           size_t device) {
    store_->ReleaseIoSlot(st->request.table);
    store_->device_service().health().Record(device, status.ok());
    if (!status.ok()) {
      io_errors_->Add(1);
      if (st->first_error.ok()) st->first_error = status;
    } else {
      rows_sm_read_->Add(1);
      ++st->trace.rows_from_sm;
      st->slots[slot_index].source = RequestState::Slot::Source::kSm;
      // Read-through insert (§4.3): with sub-block reads the row goes
      // straight into cache storage.
      DualRowCache* cache = store_->row_cache();
      const TableRuntime& t = store_->table(st->request.table);
      if (cache != nullptr && t.cache_enabled) {
        cache->Insert(RowKey{st->request.table, physical}, dest);
        st->cpu_post += cache->RouteCpuCost(st->request.table);
      }
    }
    if (--st->outstanding_ios == 0) FinishRequest(st);
  };

  // Both branches below re-drive a terminally-failed row once against the
  // extent's other copy (the per-row twin of MakeRunCompletion's
  // read-repair) before the row is allowed to pool as zeros.
  if (block_mode && off / kBlockSize == (off + st->stored_row_bytes - 1) / kBlockSize) {
    // Multi-level path: fetch the whole 4KB block, fill the block cache,
    // then extract the row.
    const Bytes block_start = off / kBlockSize * kBlockSize;
    const auto device = static_cast<uint32_t>(st->io_device);
    const int max_retries = reader.max_retries();
    store_->AcquireIoSlot(st->request.table, [this, st, off, dest, block_start, device,
                                              shift, max_retries, on_row_done] {
      BlockRowReadAttempt(
          st, off, block_start, dest, device, shift, max_retries,
          [this, st, off, dest, block_start, device, on_row_done](Status status) {
            std::optional<SharedDeviceService::ReplicaRoute> route;
            if (!status.ok()) route = RepairRoute(st->request.table, device);
            if (!route.has_value()) {
              on_row_done(std::move(status), device);
              return;
            }
            const auto rdev = static_cast<uint32_t>(route->device);
            BlockRowReadAttempt(st, off, block_start, dest, rdev, route->shift,
                                store_->reader(rdev).max_retries(),
                                [this, st, rdev, on_row_done](Status repaired) {
                                  if (repaired.ok()) {
                                    read_repairs_->Add(1);
                                    ++st->trace.read_repairs;
                                  }
                                  on_row_done(std::move(repaired), rdev);
                                });
          });
    });
    return;
  }

  store_->AcquireIoSlot(st->request.table, [this, st, off, shift, dest, on_row_done] {
    const size_t device = st->io_device;
    const Bytes routed = static_cast<Bytes>(static_cast<int64_t>(off) + shift);
    store_->reader(device).ReadRow(
        routed, dest,
        [this, st, off, dest, device, on_row_done](Status status, SimDuration /*lat*/) {
          std::optional<SharedDeviceService::ReplicaRoute> route;
          if (!status.ok()) route = RepairRoute(st->request.table, device);
          if (!route.has_value()) {
            on_row_done(std::move(status), device);
            return;
          }
          const Bytes rerouted =
              static_cast<Bytes>(static_cast<int64_t>(off) + route->shift);
          store_->reader(route->device)
              .ReadRow(rerouted, dest,
                       [this, st, dev = route->device, on_row_done](Status repaired,
                                                                    SimDuration) {
                         if (repaired.ok()) {
                           read_repairs_->Add(1);
                           ++st->trace.read_repairs;
                         }
                         on_row_done(std::move(repaired), dev);
                       });
        });
  });
}

void LookupEngine::BlockRowReadAttempt(const std::shared_ptr<RequestState>& st, Bytes off,
                                       Bytes block_start, std::span<uint8_t> dest,
                                       uint32_t device, int64_t shift, int attempts_left,
                                       std::function<void(Status)> done) {
  IoEngine& engine = store_->io_engine(device);
  auto block_buf = store_->buffer_arena().Acquire(kBlockSize);
  const std::span<uint8_t> block_span(block_buf->data(), block_buf->size());
  // off/block_start are primary-space; the replica shift (a whole number of
  // blocks) only moves the device offset — cache keys stay primary.
  const Bytes routed_start = static_cast<Bytes>(static_cast<int64_t>(block_start) + shift);
  engine.SubmitRead(
      routed_start, kBlockSize, /*sub_block=*/false, block_span,
      [this, st, off, dest, block_start, device, shift, attempts_left, block_buf,
       done = std::move(done)](Status status, SimDuration /*lat*/) mutable {
        // Retry transient media errors inside the held throttle slot, like
        // DirectIoReader does for the sub-block path (same backoff schedule).
        if (!status.ok() && IsTransientError(status.code()) && attempts_left > 0) {
          io_retries_->Add(1);
          const int attempt_index =
              store_->reader(device).max_retries() - attempts_left;
          const SimDuration backoff =
              SimDuration(store_->tuning().retry_backoff_base.nanos()
                          << std::min(attempt_index, 30));
          if (backoff > SimDuration(0)) {
            loop_->ScheduleAfter(backoff, [this, st, off, block_start, dest, device,
                                           shift, attempts_left,
                                           done = std::move(done)]() mutable {
              BlockRowReadAttempt(st, off, block_start, dest, device, shift,
                                  attempts_left - 1, std::move(done));
            });
            return;
          }
          BlockRowReadAttempt(st, off, block_start, dest, device, shift,
                              attempts_left - 1, std::move(done));
          return;
        }
        if (status.ok()) {
          const auto primary =
              static_cast<uint32_t>(store_->table(st->request.table).sm_device);
          store_->block_cache()->InsertBlock(
              BlockCache::BlockKey{primary, block_start / kBlockSize}, *block_buf);
          std::memcpy(dest.data(), block_buf->data() + (off - block_start), dest.size());
          st->cpu_post += CopyCost(kBlockSize);
        }
        done(std::move(status));
      });
}

void LookupEngine::SubmitPlannedRuns(const std::shared_ptr<RequestState>& st,
                                     std::vector<PlannedRun> runs) {
  const TableRuntime& table = store_->table(st->request.table);
  DirectIoReader& reader = store_->reader(st->io_device);
  const bool block_cache_mode = store_->block_cache() != nullptr && table.cache_enabled;
  const bool sgl = !block_cache_mode && reader.sub_block();
  const int max_retries = reader.max_retries();

  // Bypass ablation = PR 1 semantics: runs admitted during this call share
  // one request-private doorbell; throttled stragglers (admitted after
  // `collecting` drops) ring their own bell the moment they enqueue, so a
  // straggler never shares a flush with another request's batch.
  const bool bypass = !store_->tuning().cross_request_batching;
  auto collecting = std::make_shared<bool>(true);

  for (PlannedRun& planned : runs) {
    auto run = std::make_shared<RunContext>();
    run->run = std::move(planned);
    run->sgl = sgl;
    run->device = st->io_device;
    run->shift = st->io_shift;
    run->bus = NvmeDevice::BusBytes(run->run.span_begin,
                                    run->run.span_end - run->run.span_begin, sgl);
    run->bytes_saved = run->run.per_row_bus > run->bus ? run->run.per_row_bus - run->bus : 0;

    // Scheduler-aware throttle admission: the per-table budget (§4.1)
    // counts device reads *after* merging. A run the scheduler will join
    // or merge adds no device read, so it enqueues immediately without a
    // slot — queueing it would let the read it shares retire first and
    // force a duplicate read. Only runs that need their own SQE go
    // through Acquire (and if merging happens by dispatch time anyway,
    // EnqueueRun releases the slot on the spot). The probe uses the same
    // shifted coordinates the enqueue will.
    BatchScheduler& scheduler = store_->scheduler(run->device);
    const int64_t shift = run->shift;
    const auto sb = static_cast<Bytes>(static_cast<int64_t>(run->run.span_begin) + shift);
    const auto se = static_cast<Bytes>(static_cast<int64_t>(run->run.span_end) + shift);
    const uint64_t fb = run->run.first_block + static_cast<uint64_t>(shift / kBlockSize);
    const uint64_t lb = run->run.last_block + static_cast<uint64_t>(shift / kBlockSize);
    if (scheduler.WouldShare(sb, se, fb, lb, sgl)) {
      EnqueueRun(st, run, block_cache_mode, max_retries, /*first_attempt=*/true,
                 /*acquired_slot=*/false);
      continue;
    }
    store_->AcquireIoSlot(st->request.table, [this, st, run, block_cache_mode,
                                              max_retries, bypass, collecting] {
      EnqueueRun(st, run, block_cache_mode, max_retries, /*first_attempt=*/true,
                 /*acquired_slot=*/true);
      if (bypass && !*collecting) {
        store_->scheduler(run->device).Flush();
      }
    });
  }

  *collecting = false;
  if (bypass) store_->scheduler(st->io_device).Flush();
}

void LookupEngine::EnqueueRun(const std::shared_ptr<RequestState>& st,
                              const std::shared_ptr<RunContext>& run,
                              bool block_cache_mode, int attempts_left,
                              bool first_attempt, bool acquired_slot) {
  BatchScheduler& scheduler = store_->scheduler(run->device);

  // Spans and block ids are shifted into the serving device's address
  // space; completions shift back when scattering (replica shift is a
  // whole number of blocks, so block math survives the translation).
  const int64_t shift = run->shift;
  BatchScheduler::ReadRequest req;
  req.span_begin = static_cast<Bytes>(static_cast<int64_t>(run->run.span_begin) + shift);
  req.span_end = static_cast<Bytes>(static_cast<int64_t>(run->run.span_end) + shift);
  req.first_block = run->run.first_block + static_cast<uint64_t>(shift / kBlockSize);
  req.last_block = run->run.last_block + static_cast<uint64_t>(shift / kBlockSize);
  req.sub_block = run->sgl;
  // QoS lane + fair-share identity: a background-class tenant's demand
  // rides the scheduler's byte-budgeted background lane (src/tenant).
  req.kind = store_->demand_kind();
  req.tenant = store_->tenant_id();
  // Coalescing counters only on the first attempt; a retry is the same
  // logical read and must not double-count.
  req.rows = first_attempt ? static_cast<uint32_t>(run->run.slot_indices.size()) : 0;
  req.per_row_bus = first_attempt ? run->run.per_row_bus : 0;
  req.cb = MakeRunCompletion(st, run, block_cache_mode, attempts_left);

  const BatchScheduler::Admission admission = scheduler.Enqueue(std::move(req));
  assert(admission != BatchScheduler::Admission::kDropped);  // demand is never dropped

  // Scheduler-aware throttling (§4.1's outstanding-IO budget, counted
  // *after* merging): a run that merged into or joined another request's
  // SQE adds no device read. A WouldShare run arrives without a slot; a
  // run that acquired one but shares by dispatch time releases it on the
  // spot. Either way only the SQE's owner holds a slot for the read.
  const bool shared = admission != BatchScheduler::Admission::kNewRead;
  assert(acquired_slot || shared);  // the WouldShare probe is exact in-turn
  run->holds_slot = acquired_slot && !shared;
  if (acquired_slot && shared) store_->ReleaseIoSlot(st->request.table);

  if (!first_attempt) return;
  if (admission == BatchScheduler::Admission::kJoinedPending ||
      admission == BatchScheduler::Admission::kJoinedInFlight) {
    // Another request's read carries these rows: no IO of our own, every
    // per-row bus byte saved — and the read's owner fills the block layer.
    run->insert_blocks = false;
    ++st->trace.singleflight_hits;
    singleflight_hits_->Add(1);
    st->trace.io_bytes_saved += run->run.per_row_bus;
    io_bytes_saved_->Add(run->run.per_row_bus);
  } else {
    ++st->trace.device_reads;
    device_reads_->Add(1);
    st->trace.io_bytes_saved += run->bytes_saved;
    io_bytes_saved_->Add(run->bytes_saved);
  }
  if (run->device != store_->table(st->request.table).sm_device) {
    ++st->trace.replica_reads;
    replica_reads_->Add(1);
  }
}

std::optional<SharedDeviceService::ReplicaRoute> LookupEngine::RepairRoute(
    TableId table_id, size_t failed_device) {
  const TableRuntime& table = store_->table(table_id);
  SharedDeviceService& svc = store_->device_service();
  const size_t primary = table.sm_device;
  if (failed_device == primary) {
    return svc.FindReplicaRoute(table.extent_id, primary);
  }
  if (!svc.health().Sick(primary)) {
    return SharedDeviceService::ReplicaRoute{primary, 0};
  }
  return std::nullopt;
}

BatchScheduler::Completion LookupEngine::MakeRunCompletion(
    const std::shared_ptr<RequestState>& st, const std::shared_ptr<RunContext>& run,
    bool block_cache_mode, int attempts_left) {
  return [this, st, run, block_cache_mode, attempts_left](Status status,
                                                          const uint8_t* data,
                                                          Bytes base) {
    if (run->holds_slot) store_->ReleaseIoSlot(st->request.table);
    store_->device_service().health().Record(run->device, status.ok());
    if (!status.ok()) {
      // Transient (device-side) errors are retried like DirectIoReader's
      // per-row reads; invalid requests surface immediately.
      if (IsTransientError(status.code()) && attempts_left > 0) {
        io_retries_->Add(1);
        const int attempt_index =
            store_->reader(run->device).max_retries() - attempts_left;
        const SimDuration backoff =
            SimDuration(store_->tuning().retry_backoff_base.nanos()
                        << std::min(attempt_index, 30));
        auto reenqueue = [this, st, run, block_cache_mode, attempts_left] {
          store_->AcquireIoSlot(st->request.table,
                                [this, st, run, block_cache_mode, attempts_left] {
                                  EnqueueRun(st, run, block_cache_mode, attempts_left - 1,
                                             /*first_attempt=*/false,
                                             /*acquired_slot=*/true);
                                });
        };
        if (backoff > SimDuration(0)) {
          loop_->ScheduleAfter(backoff, std::move(reenqueue));
        } else {
          reenqueue();
        }
        return;
      }
      // Read-repair: one re-drive of the terminally-failed run against the
      // extent's replica (or back to a recovered primary when the replica
      // was the one failing). The run's rows would otherwise pool as zeros
      // — bit rot and exhausted retries both land here.
      if (!run->repairing) {
        const auto route = RepairRoute(st->request.table, run->device);
        if (route.has_value()) {
          run->repairing = true;
          run->device = route->device;
          run->shift = route->shift;
          const int retries = store_->reader(run->device).max_retries();
          store_->AcquireIoSlot(st->request.table,
                                [this, st, run, block_cache_mode, retries] {
                                  EnqueueRun(st, run, block_cache_mode, retries,
                                             /*first_attempt=*/false,
                                             /*acquired_slot=*/true);
                                });
          return;
        }
      }
      // One failed device read fails every row it carried; only io_errors
      // is charged (not rows_from_sm).
      io_errors_->Add(1);
      if (st->first_error.ok()) st->first_error = status;
    } else {
      if (run->repairing) {
        read_repairs_->Add(1);
        ++st->trace.read_repairs;
      }
      const TableRuntime& t = store_->table(st->request.table);
      DualRowCache* cache = store_->row_cache();
      // `base` is in the serving device's space; row offsets are primary-
      // space, so the scatter applies the run's shift.
      const int64_t shift = run->shift;
      Bytes copied = 0;
      for (const uint32_t i : run->run.slot_indices) {
        auto& slot = st->slots[i];
        const Bytes off = t.offset + slot.physical_row * st->stored_row_bytes;
        std::span<uint8_t> dest(st->row_bytes.data() + i * st->stored_row_bytes,
                                st->stored_row_bytes);
        std::memcpy(dest.data(),
                    data + (static_cast<int64_t>(off) + shift - static_cast<int64_t>(base)),
                    dest.size());
        copied += dest.size();
        slot.source = RequestState::Slot::Source::kSm;
        rows_sm_read_->Add(1);
        ++st->trace.rows_from_sm;
        if (cache != nullptr && t.cache_enabled) {
          cache->Insert(RowKey{st->request.table, slot.physical_row}, dest);
          st->cpu_post += cache->RouteCpuCost(st->request.table);
        }
      }
      st->cpu_post += CopyCost(copied);
      if (block_cache_mode && run->insert_blocks) {
        // The shared buffer holds whole blocks: fill the block layer with
        // this run's slice of them (joiners skip this; the owner inserts).
        // Replica bytes are content-identical, so the keys stay primary.
        const uint64_t blocks =
            run->run.last_block - run->run.first_block + 1;
        store_->block_cache()->InsertBlocks(
            static_cast<uint32_t>(t.sm_device), run->run.first_block,
            std::span<const uint8_t>(
                data + (static_cast<int64_t>(run->run.first_block * kBlockSize) + shift -
                        static_cast<int64_t>(base)),
                blocks * kBlockSize));
        st->cpu_post += CopyCost(blocks * kBlockSize);
      }
    }
    if (--st->outstanding_ios == 0) FinishRequest(st);
  };
}

void LookupEngine::FinishRequest(const std::shared_ptr<RequestState>& st) {
  if (!st->first_error.ok()) {
    if (!store_->tuning().graceful_degradation) {
      // Legacy fail-stop contract: the first exhausted-retry error fails
      // the whole lookup.
      cpu_ns_->Add(static_cast<uint64_t>((st->cpu_pre + st->cpu_post).nanos()));
      st->trace.cpu_time = st->cpu_pre + st->cpu_post;
      st->cb(st->first_error, {}, st->trace);
      return;
    }
    // Graceful degradation: the failed rows' buffers were zero-initialized
    // and never written, so pooling proceeds and they contribute nothing —
    // an embedding query missing a few rows beats a failed query. The gap
    // is surfaced via trace.degraded / trace.rows_failed.
    st->trace.degraded = true;
    degraded_lookups_->Add(1);
  }

  const TableRuntime& table = store_->table(st->request.table);
  const uint32_t dim = table.config.dim;

  // Fan duplicate-index slots out from the sibling that fetched the row;
  // they inherit its source for the accounting.
  Bytes dup_copied = 0;
  for (size_t i = 0; i < st->slots.size(); ++i) {
    auto& slot = st->slots[i];
    if (slot.dup_of < 0) continue;
    const auto& primary = st->slots[static_cast<size_t>(slot.dup_of)];
    std::memcpy(
        st->row_bytes.data() + i * st->stored_row_bytes,
        st->row_bytes.data() + static_cast<size_t>(slot.dup_of) * st->stored_row_bytes,
        st->stored_row_bytes);
    dup_copied += st->stored_row_bytes;
    slot.source = primary.source;
    switch (primary.source) {
      case RequestState::Slot::Source::kFmDirect:
        rows_fm_read_->Add(1);
        ++st->trace.rows_from_fm_direct;
        break;
      case RequestState::Slot::Source::kCache:
        rows_cache_hit_->Add(1);
        ++st->trace.rows_from_cache;
        break;
      case RequestState::Slot::Source::kBlockCache:
        rows_block_hit_->Add(1);
        ++st->trace.rows_from_block_cache;
        break;
      case RequestState::Slot::Source::kSm:
        rows_sm_read_->Add(1);
        ++st->trace.rows_from_sm;
        break;
      case RequestState::Slot::Source::kNone:
        break;  // primary's fetch failed; this duplicate pools as zeros too
    }
  }
  if (dup_copied > 0) st->cpu_post += CopyCost(dup_copied);

  // Degraded accounting: every non-pruned slot still unresolved after the
  // fan-out lost its row (exhausted retries, or shed from a sick endpoint)
  // and pools as a zero vector.
  if (st->trace.degraded) {
    for (const auto& slot : st->slots) {
      if (!slot.pruned && slot.source == RequestState::Slot::Source::kNone) {
        ++st->trace.rows_failed;
        rows_failed_->Add(1);
      }
    }
    // Per-table degraded-row tally feeds the placement layer: a chronically
    // degraded table is a candidate for migration to FM at the next model
    // refresh (tuning.degraded_placement_feedback).
    if (st->trace.rows_failed > 0) {
      store_->RecordTableDegradedRows(st->request.table, st->trace.rows_failed);
    }
  }

  // Fused dequant+pool over resolved slots.
  std::vector<float> out(dim, 0.0f);
  uint32_t pooled_rows = 0;
  for (size_t i = 0; i < st->slots.size(); ++i) {
    if (st->slots[i].pruned) continue;
    const std::span<const uint8_t> row(st->row_bytes.data() + i * st->stored_row_bytes,
                                       st->stored_row_bytes);
    DequantizeAccumulate(table.config.dtype, row, out);
    ++pooled_rows;
  }
  if (st->request.mode == PoolingMode::kMean && !st->request.indices.empty()) {
    const float inv = 1.0f / static_cast<float>(st->request.indices.size());
    for (auto& v : out) v *= inv;
  }
  // fp32 rows skip the dequant math and pool at plain-add throughput (this
  // is what de-quantization at load buys, A.5).
  const Bytes pooled_bytes = static_cast<Bytes>(pooled_rows) * st->stored_row_bytes;
  st->cpu_post += table.config.dtype == DataType::kFp32
                      ? cost_.DensePoolCost(pooled_bytes)
                      : cost_.DequantPoolCost(pooled_bytes);

  // Pooled-cache fill (Algorithm 1 tail). Degraded outputs are missing row
  // contributions and must not be cached — a later fault-free repeat of the
  // same bag would serve the incomplete vector.
  PooledEmbeddingCache* pooled = store_->pooled_cache();
  if (pooled != nullptr && !st->trace.pooled_cache_hit && !st->trace.degraded) {
    pooled->Insert(st->request.table, st->request.indices, out);
    st->cpu_post += cost_.DensePoolCost(static_cast<Bytes>(out.size()) * sizeof(float));
  }

  const SimDuration total_cpu = st->cpu_pre + st->cpu_post;
  cpu_ns_->Add(static_cast<uint64_t>(total_cpu.nanos()));
  st->trace.cpu_time = total_cpu;

  // If no IO happened the pre-phase CPU hasn't been charged to the clock
  // yet; either way the post-phase runs now.
  const SimDuration tail = st->io_phase_started ? st->cpu_post : total_cpu;
  loop_->ScheduleAfter(tail, [this, st, out = std::move(out)]() mutable {
    st->trace.latency = loop_->Now() - st->start;
    latency_.Record(st->trace.latency);
    RecordObsCompletion(*st);
    st->cb(Status::Ok(), std::move(out), st->trace);
  });
}

}  // namespace sdm
