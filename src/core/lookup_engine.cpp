#include "core/lookup_engine.h"

#include <cassert>
#include <cstring>

namespace sdm {

namespace {

/// CPU cost of translating one index through the mapping tensor.
constexpr SimDuration kMapCostPerIndex = Nanos(4);

}  // namespace

struct LookupEngine::RequestState {
  LookupRequest request;
  LookupCallback cb;
  SimTime start;

  // Rows resolved in the mapped (physical) space; kept per requested index
  // so pooling skips pruned slots.
  struct Slot {
    RowIndex physical_row = 0;
    bool pruned = false;
    bool needs_io = false;
  };
  std::vector<Slot> slots;
  std::vector<uint8_t> row_bytes;  // slots.size() * row_bytes contiguous
  Bytes stored_row_bytes = 0;

  SimDuration cpu_pre;   // before/at IO issue
  SimDuration cpu_post;  // after last IO
  int outstanding_ios = 0;
  bool io_phase_started = false;
  Status first_error;
  LookupTrace trace;
};

LookupEngine::LookupEngine(SdmStore* store) : store_(store), loop_(store->loop()) {
  assert(store->loading_finished() && "SdmStore must be sealed before lookups");
  lookups_ = stats_.GetCounter("lookups");
  pooled_hits_ = stats_.GetCounter("pooled_hits");
  rows_cache_hit_ = stats_.GetCounter("rows_cache_hit");
  rows_block_hit_ = stats_.GetCounter("rows_block_hit");
  rows_sm_read_ = stats_.GetCounter("rows_sm_read");
  rows_fm_read_ = stats_.GetCounter("rows_fm_read");
  rows_pruned_ = stats_.GetCounter("rows_pruned");
  cpu_ns_ = stats_.GetCounter("cpu_ns");
  io_errors_ = stats_.GetCounter("io_errors");
}

void LookupEngine::Lookup(LookupRequest request, LookupCallback cb) {
  lookups_->Add(1);
  auto st = std::make_shared<RequestState>();
  st->request = std::move(request);
  st->cb = std::move(cb);
  st->start = loop_->Now();
  st->trace.rows_requested = static_cast<uint32_t>(st->request.indices.size());

  const TableRuntime& table = store_->table(st->request.table);
  st->stored_row_bytes = table.config.row_bytes();

  // ---- Pooled-embedding cache probe (Algorithm 1 head) ----
  PooledEmbeddingCache* pooled = store_->pooled_cache();
  if (pooled != nullptr) {
    st->cpu_pre += pooled->LookupCpuCost(st->request.indices.size());
    const std::vector<float>* hit = pooled->Lookup(st->request.table, st->request.indices);
    if (hit != nullptr) {
      pooled_hits_->Add(1);
      st->trace.pooled_cache_hit = true;
      std::vector<float> out = *hit;  // copy: entry may be evicted later
      cpu_ns_->Add(static_cast<uint64_t>(st->cpu_pre.nanos()));
      st->trace.cpu_time = st->cpu_pre;
      loop_->ScheduleAfter(st->cpu_pre, [this, st, out = std::move(out)]() mutable {
        st->trace.latency = loop_->Now() - st->start;
        latency_.Record(st->trace.latency);
        st->cb(Status::Ok(), std::move(out), st->trace);
      });
      return;
    }
  }

  // ---- Index mapping (pruned tables served with an FM mapping tensor) ----
  st->slots.resize(st->request.indices.size());
  for (size_t i = 0; i < st->request.indices.size(); ++i) {
    const RowIndex idx = st->request.indices[i];
    auto& slot = st->slots[i];
    if (table.mapping.has_value()) {
      st->cpu_pre += kMapCostPerIndex;
      const auto mapped = table.mapping->Lookup(idx);
      if (!mapped.has_value()) {
        slot.pruned = true;
        rows_pruned_->Add(1);
        ++st->trace.rows_pruned_skipped;
        continue;
      }
      slot.physical_row = *mapped;
    } else {
      if (idx >= table.config.num_rows) {
        // Out-of-domain index: treat as missing row (contributes zero),
        // matching EmbeddingBag-with-pruning semantics rather than failing
        // the whole query.
        slot.pruned = true;
        rows_pruned_->Add(1);
        ++st->trace.rows_pruned_skipped;
        continue;
      }
      slot.physical_row = idx;
    }
  }

  st->row_bytes.assign(st->slots.size() * st->stored_row_bytes, 0);

  // ---- Row resolution: FM direct / row cache / SM IO ----
  DualRowCache* cache = store_->row_cache();
  for (size_t i = 0; i < st->slots.size(); ++i) {
    auto& slot = st->slots[i];
    if (slot.pruned) continue;
    std::span<uint8_t> dest(st->row_bytes.data() + i * st->stored_row_bytes,
                            st->stored_row_bytes);

    if (table.tier == MemoryTier::kFm) {
      const Bytes off = table.offset + slot.physical_row * st->stored_row_bytes;
      auto read = store_->fm().Read(off, dest);
      assert(read.ok());
      st->cpu_pre += read.value();
      rows_fm_read_->Add(1);
      ++st->trace.rows_from_fm_direct;
      continue;
    }

    // SM tier: probe the cache first when this table uses it.
    if (cache != nullptr && table.cache_enabled) {
      st->cpu_pre += cache->RouteCpuCost(st->request.table);
      size_t len = 0;
      if (cache->Lookup(RowKey{st->request.table, slot.physical_row}, dest, &len)) {
        assert(len == st->stored_row_bytes);
        rows_cache_hit_->Add(1);
        ++st->trace.rows_from_cache;
        continue;
      }
      // Second level (multi-level ablation): a block hit avoids device IO
      // but pays a probe + copy, and fills the row cache.
      BlockCache* blocks = store_->block_cache();
      if (blocks != nullptr) {
        const Bytes off = table.offset + slot.physical_row * st->stored_row_bytes;
        const BlockCache::BlockKey bkey{static_cast<uint32_t>(table.sm_device),
                                        off / kBlockSize};
        st->cpu_pre += blocks->LookupCpuCost();
        // Only serve fully-contained rows from one block; spanning rows go
        // to IO (rare for the dword-aligned layouts used here).
        if (off / kBlockSize == (off + st->stored_row_bytes - 1) / kBlockSize &&
            blocks->ReadRange(bkey, off % kBlockSize, dest)) {
          rows_block_hit_->Add(1);
          ++st->trace.rows_from_block_cache;
          cache->Insert(RowKey{st->request.table, slot.physical_row}, dest);
          st->cpu_pre += cache->RouteCpuCost(st->request.table);
          continue;
        }
      }
    }
    slot.needs_io = true;
    ++st->outstanding_ios;
  }

  // ---- IO phase (or straight to pooling) ----
  if (st->outstanding_ios == 0) {
    FinishRequest(st);
    return;
  }
  // The CPU pre-phase runs before submissions hit the device.
  loop_->ScheduleAfter(st->cpu_pre, [this, st] { StartIoPhase(st); });
}

void LookupEngine::StartIoPhase(std::shared_ptr<RequestState> st) {
  st->io_phase_started = true;
  const TableRuntime& table = store_->table(st->request.table);
  DirectIoReader& reader = store_->reader(table.sm_device);
  TableThrottle& throttle = store_->throttle();
  const bool block_mode = store_->block_cache() != nullptr && table.cache_enabled;

  for (size_t i = 0; i < st->slots.size(); ++i) {
    auto& slot = st->slots[i];
    if (!slot.needs_io) continue;
    const Bytes off = table.offset + slot.physical_row * st->stored_row_bytes;
    std::span<uint8_t> dest(st->row_bytes.data() + i * st->stored_row_bytes,
                            st->stored_row_bytes);
    const RowIndex physical = slot.physical_row;

    // Shared completion: cache fills + join bookkeeping.
    auto on_row_done = [this, st, dest, physical, &throttle](Status status) {
      throttle.Release(st->request.table);
      rows_sm_read_->Add(1);
      ++st->trace.rows_from_sm;
      if (!status.ok()) {
        io_errors_->Add(1);
        if (st->first_error.ok()) st->first_error = status;
      } else {
        // Read-through insert (§4.3): with sub-block reads the row goes
        // straight into cache storage.
        DualRowCache* cache = store_->row_cache();
        const TableRuntime& t = store_->table(st->request.table);
        if (cache != nullptr && t.cache_enabled) {
          cache->Insert(RowKey{st->request.table, physical}, dest);
          st->cpu_post += cache->RouteCpuCost(st->request.table);
        }
      }
      if (--st->outstanding_ios == 0) FinishRequest(st);
    };

    if (block_mode && off / kBlockSize == (off + st->stored_row_bytes - 1) / kBlockSize) {
      // Multi-level path: fetch the whole 4KB block, fill the block cache,
      // then extract the row.
      const Bytes block_start = off / kBlockSize * kBlockSize;
      const auto device = static_cast<uint32_t>(table.sm_device);
      IoEngine& engine = store_->io_engine(table.sm_device);
      throttle.Acquire(st->request.table, [this, st, off, dest, block_start, device,
                                           &engine, on_row_done] {
        auto block_buf = std::make_shared<std::vector<uint8_t>>(kBlockSize);
        const std::span<uint8_t> block_span(block_buf->data(), block_buf->size());
        engine.SubmitRead(
            block_start, kBlockSize, /*sub_block=*/false, block_span,
            [this, st, off, dest, block_start, device, block_buf, on_row_done](
                Status status, SimDuration /*lat*/) mutable {
              if (status.ok()) {
                store_->block_cache()->InsertBlock(
                    BlockCache::BlockKey{device, block_start / kBlockSize}, *block_buf);
                std::memcpy(dest.data(), block_buf->data() + (off - block_start),
                            dest.size());
                st->cpu_post += Nanos(static_cast<int64_t>(kBlockSize / 12));  // memcpy
              }
              on_row_done(std::move(status));
            });
      });
      continue;
    }

    throttle.Acquire(st->request.table, [off, dest, &reader, on_row_done] {
      reader.ReadRow(off, dest, [on_row_done](Status status, SimDuration /*lat*/) {
        on_row_done(std::move(status));
      });
    });
  }
}

void LookupEngine::FinishRequest(const std::shared_ptr<RequestState>& st) {
  if (!st->first_error.ok()) {
    cpu_ns_->Add(static_cast<uint64_t>((st->cpu_pre + st->cpu_post).nanos()));
    st->trace.cpu_time = st->cpu_pre + st->cpu_post;
    st->cb(st->first_error, {}, st->trace);
    return;
  }

  const TableRuntime& table = store_->table(st->request.table);
  const uint32_t dim = table.config.dim;

  // Fused dequant+pool over resolved slots.
  std::vector<float> out(dim, 0.0f);
  uint32_t pooled_rows = 0;
  for (size_t i = 0; i < st->slots.size(); ++i) {
    if (st->slots[i].pruned) continue;
    const std::span<const uint8_t> row(st->row_bytes.data() + i * st->stored_row_bytes,
                                       st->stored_row_bytes);
    DequantizeAccumulate(table.config.dtype, row, out);
    ++pooled_rows;
  }
  if (st->request.mode == PoolingMode::kMean && !st->request.indices.empty()) {
    const float inv = 1.0f / static_cast<float>(st->request.indices.size());
    for (auto& v : out) v *= inv;
  }
  // fp32 rows skip the dequant math and pool at plain-add throughput (this
  // is what de-quantization at load buys, A.5).
  const Bytes pooled_bytes = static_cast<Bytes>(pooled_rows) * st->stored_row_bytes;
  st->cpu_post += table.config.dtype == DataType::kFp32
                      ? cost_.DensePoolCost(pooled_bytes)
                      : cost_.DequantPoolCost(pooled_bytes);

  // Pooled-cache fill (Algorithm 1 tail).
  PooledEmbeddingCache* pooled = store_->pooled_cache();
  if (pooled != nullptr && !st->trace.pooled_cache_hit) {
    pooled->Insert(st->request.table, st->request.indices, out);
    st->cpu_post += cost_.DensePoolCost(static_cast<Bytes>(out.size()) * sizeof(float));
  }

  const SimDuration total_cpu = st->cpu_pre + st->cpu_post;
  cpu_ns_->Add(static_cast<uint64_t>(total_cpu.nanos()));
  st->trace.cpu_time = total_cpu;

  // If no IO happened the pre-phase CPU hasn't been charged to the clock
  // yet; either way the post-phase runs now.
  const SimDuration tail = st->io_phase_started ? st->cpu_post : total_cpu;
  loop_->ScheduleAfter(tail, [this, st, out = std::move(out)]() mutable {
    st->trace.latency = loop_->Now() - st->start;
    latency_.Record(st->trace.latency);
    st->cb(Status::Ok(), std::move(out), st->trace);
  });
}

}  // namespace sdm
