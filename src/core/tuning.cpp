#include "core/tuning.h"

namespace sdm {

const char* ToString(PlacementPolicy p) {
  switch (p) {
    case PlacementPolicy::kSmOnlyWithCache: return "sm_only_with_cache";
    case PlacementPolicy::kFixedFmSmWithCache: return "fixed_fm_sm_with_cache";
    case PlacementPolicy::kPerTableCacheEnablement: return "per_table_cache_enablement";
  }
  return "unknown";
}

Status TuningConfig::Validate() const {
  if (io_queue_depth < 1) {
    return InvalidArgumentError("io_queue_depth must be >= 1");
  }
  if (coalesce_io && max_coalesce_bytes < kBlockSize) {
    return InvalidArgumentError("max_coalesce_bytes must be >= one 4KB block");
  }
  if (max_batch_sqes < 1) {
    return InvalidArgumentError("max_batch_sqes must be >= 1");
  }
  if (max_batch_delay < SimDuration(0)) {
    return InvalidArgumentError("max_batch_delay must be >= 0");
  }
  if (enable_prefetch && prefetch_depth < 1) {
    return InvalidArgumentError("prefetch_depth must be >= 1");
  }
  if (prefetch_min_confidence < 0 || prefetch_min_confidence > 1) {
    return InvalidArgumentError("prefetch_min_confidence must be in [0,1]");
  }
  if (background_max_inflight_bytes == 0) {
    return InvalidArgumentError(
        "background_max_inflight_bytes must be > 0: background-tenant demand "
        "is parked, not dropped, so a zero budget would never admit it");
  }
  if (background_flush_delay < SimDuration(0)) {
    return InvalidArgumentError("background_flush_delay must be >= 0");
  }
  if (io_deadline < SimDuration(0)) {
    return InvalidArgumentError("io_deadline must be >= 0");
  }
  if (retry_backoff_base < SimDuration(0)) {
    return InvalidArgumentError("retry_backoff_base must be >= 0");
  }
  if (hedge_latency_factor < 0) {
    return InvalidArgumentError("hedge_latency_factor must be >= 0");
  }
  if (hedge_latency_factor > 0 && hedge_min_samples < 1) {
    return InvalidArgumentError("hedge_min_samples must be >= 1 when hedging");
  }
  if (health_sick_threshold <= 0 || health_sick_threshold > 1) {
    return InvalidArgumentError("health_sick_threshold must be in (0,1]");
  }
  if (health_window < 1) {
    return InvalidArgumentError("health_window must be >= 1");
  }
  if (health_probe_interval < 1) {
    return InvalidArgumentError("health_probe_interval must be >= 1");
  }
  if (enable_replication) {
    if (!enable_health_monitor) {
      return InvalidArgumentError(
          "enable_replication requires enable_health_monitor: re-replication "
          "is driven by health-monitor sickness transitions");
    }
    if (replication_hot_extents < 1) {
      return InvalidArgumentError("replication_hot_extents must be >= 1");
    }
    if (replication_chunk_bytes < kBlockSize) {
      return InvalidArgumentError("replication_chunk_bytes must be >= one 4KB block");
    }
    if (replication_byte_budget < replication_chunk_bytes) {
      return InvalidArgumentError(
          "replication_byte_budget must admit at least one chunk");
    }
  }
  if (row_cache.memory_optimized_fraction < 0 || row_cache.memory_optimized_fraction > 1) {
    return InvalidArgumentError("memory_optimized_fraction must be in [0,1]");
  }
  if (cache_enable_min_alpha < 0) {
    return InvalidArgumentError("cache_enable_min_alpha must be >= 0");
  }
  if (placement == PlacementPolicy::kFixedFmSmWithCache && placement_dram_budget == 0) {
    return InvalidArgumentError("kFixedFmSmWithCache requires a placement_dram_budget");
  }
  return Status::Ok();
}

Status TuningConfig::ValidateForSharedDevice() const {
  if (Status s = Validate(); !s.ok()) return s;
  if (!cross_request_batching) {
    return InvalidArgumentError(
        "shared device requires cross_request_batching: without the batch "
        "scheduler, tenants cannot single-flight each other's reads and the "
        "QoS lanes are inert");
  }
  if (!coalesce_io) {
    return InvalidArgumentError(
        "shared device requires coalesce_io: the per-row ablation path "
        "bypasses the scheduler that shared-device tenants must go through");
  }
  return Status::Ok();
}

Status TuningConfig::ValidateForDisaggregated() const {
  if (Status s = ValidateForSharedDevice(); !s.ok()) return s;
  if (fabric_latency < SimDuration(0)) {
    return InvalidArgumentError("fabric_latency must be >= 0");
  }
  if (fabric_bandwidth_bytes_per_sec < 0) {
    return InvalidArgumentError("fabric_bandwidth_bytes_per_sec must be >= 0");
  }
  return Status::Ok();
}

}  // namespace sdm
