// ModelUpdater — model refresh over the SDM (paper Appendix A.3/A.4).
//
// Supports full and incremental updates of SM/FM-resident tables:
//   - incremental updates rewrite only a fraction of rows, shrinking both
//     write time and endurance consumption;
//   - online updates keep serving: refreshed rows are written through the
//     row cache (dirty rows reach SM immediately in this model) and stale
//     cache entries are invalidated;
//   - full updates clear the caches, triggering the cold-cache warmup whose
//     cost A.4's capacity roofline quantifies.
#pragma once

#include <cstdint>

#include "common/result.h"
#include "core/sdm_store.h"

namespace sdm {

struct UpdateOptions {
  /// Fraction of each table's rows refreshed (1.0 = full update).
  double row_fraction = 1.0;
  /// Online: write-through the caches and invalidate stale entries.
  /// Offline: drop the caches entirely (host out of rotation), so serving
  /// resumes cold.
  bool online = true;
  uint64_t seed = 99;
};

struct UpdateReport {
  uint64_t rows_updated = 0;
  Bytes bytes_written = 0;
  SimDuration write_time;       ///< device-limited transfer time
  double sm_drive_writes = 0;   ///< cumulative full-drive writes after update
  /// Chronically degraded SM tables moved to FM by this refresh
  /// (tuning.degraded_placement_feedback).
  uint32_t tables_migrated = 0;
};

class ModelUpdater {
 public:
  explicit ModelUpdater(SdmStore* store) : store_(store) {}

  /// Refreshes every loaded table per `options`. New row values are
  /// deterministic in (options.seed, table, row).
  [[nodiscard]] Result<UpdateReport> Update(const UpdateOptions& options);

  /// A.4 warmup roofline: extra capacity needed to absorb cold-cache hosts,
  /// (r * w) / (p * t) for rolling-update fraction r, warmup minutes w,
  /// warmup relative performance p, update interval minutes t.
  [[nodiscard]] static double WarmupCapacityOverhead(double rolling_fraction,
                                                     double warmup_minutes,
                                                     double warmup_relative_perf,
                                                     double update_interval_minutes);

 private:
  SdmStore* store_;
};

}  // namespace sdm
