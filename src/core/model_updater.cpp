#include "core/model_updater.h"

#include <cassert>
#include <vector>

#include "embedding/quantization.h"

namespace sdm {

Result<UpdateReport> ModelUpdater::Update(const UpdateOptions& options) {
  if (!store_->loading_finished()) {
    return FailedPreconditionError("store not sealed; nothing to update");
  }
  if (options.row_fraction < 0 || options.row_fraction > 1) {
    return InvalidArgumentError("row_fraction must be in [0,1]");
  }

  UpdateReport report;
  Rng rng(options.seed);

  // Degraded-row-aware placement (self-healing layer): a refresh is the
  // natural point to act on serving-time health feedback — the host is
  // already touching every table. SM tables that lost at least
  // degraded_rows_min rows to exhausted retries / sick-endpoint sheds move
  // to FM, where no SM fault can reach them. A migration that cannot
  // proceed (no FM headroom, shared extent) is skipped, not fatal: degraded
  // service beats a failed refresh.
  if (store_->tuning().degraded_placement_feedback) {
    for (size_t t = 0; t < store_->table_count(); ++t) {
      const TableId id = MakeTableId(static_cast<uint32_t>(t));
      const TableRuntime& table = store_->table(id);
      if (table.tier != MemoryTier::kSm || table.shared_extent) continue;
      if (table.degraded_rows < store_->tuning().degraded_rows_min) continue;
      if (store_->MigrateTableToFm(id).ok()) ++report.tables_migrated;
    }
  }

  for (size_t t = 0; t < store_->table_count(); ++t) {
    const TableId id = MakeTableId(static_cast<uint32_t>(t));
    const TableRuntime& table = store_->table(id);
    if (table.shared_extent) {
      // Shared-device content dedup (src/tenant): these bytes are another
      // tenant's extent too — an in-place update would corrupt every
      // co-tenant reading it. Copy-on-write refresh is a ROADMAP item;
      // until then updating a deduped table is an error, not corruption.
      return FailedPreconditionError("table " + table.config.name +
                                     " is served from a shared extent; in-place "
                                     "updates of deduped tables are not supported");
    }
    const Bytes row_bytes = table.config.row_bytes();
    const uint64_t rows = table.config.num_rows;
    const auto updates = static_cast<uint64_t>(static_cast<double>(rows) *
                                               options.row_fraction);
    if (updates == 0) continue;

    std::vector<float> values(table.config.dim);
    std::vector<uint8_t> stored(row_bytes);
    bool pooled_invalidated = false;

    for (uint64_t u = 0; u < updates; ++u) {
      // Full updates sweep sequentially; partial updates sample rows.
      const RowIndex row = options.row_fraction >= 1.0 ? u : rng.NextBounded(rows);
      for (auto& v : values) v = static_cast<float>(rng.NextDouble(-1.0, 1.0));
      QuantizeRow(table.config.dtype, values, stored);

      const Bytes off = table.offset + row * row_bytes;
      if (table.tier == MemoryTier::kSm) {
        auto wrote = store_->sm_device(table.sm_device).Write(off, stored);
        if (!wrote.ok()) return wrote.status();
        report.write_time += wrote.value();
      } else {
        if (Status s = store_->fm().Write(off, stored); !s.ok()) return s;
      }
      report.bytes_written += row_bytes;
      ++report.rows_updated;

      if (options.online) {
        // Write-through: replace the stale cached row (if any) with the new
        // bytes so readers never see torn data, and drop pooled outputs
        // that may embed the old value.
        if (table.tier == MemoryTier::kSm && table.cache_enabled &&
            store_->row_cache() != nullptr) {
          store_->InvalidateRow(id, row);
          store_->row_cache()->Insert(RowKey{id, row}, stored);
        }
        if (!pooled_invalidated) {
          store_->InvalidatePooledFor(id);
          pooled_invalidated = true;
        }
      }
    }
  }

  if (!options.online) {
    // Offline refresh: the host rejoins with cold caches (A.4 warmup).
    if (store_->row_cache() != nullptr) store_->row_cache()->Clear();
    if (store_->pooled_cache() != nullptr) store_->pooled_cache()->Clear();
  }

  double drive_writes = 0;
  for (size_t d = 0; d < store_->sm_device_count(); ++d) {
    drive_writes = std::max(drive_writes, store_->sm_device(d).wear().DriveWrites());
  }
  report.sm_drive_writes = drive_writes;
  return report;
}

double ModelUpdater::WarmupCapacityOverhead(double rolling_fraction, double warmup_minutes,
                                            double warmup_relative_perf,
                                            double update_interval_minutes) {
  assert(warmup_relative_perf > 0);
  assert(update_interval_minutes > 0);
  return (rolling_fraction * warmup_minutes) /
         (warmup_relative_perf * update_interval_minutes);
}

}  // namespace sdm
