// The SDM tuning API (paper §4, "Tuning API" paragraphs).
//
// Every knob the paper exposes for deployment-time tuning is collected here
// so an auto-tuner (or the benches) can sweep them:
//   §4.1  outstanding IOs per table, concurrent tables, queue depth,
//         completion mode, sub-block reads on/off
//   §4.3  cache sizes and partitions
//   §4.4  pooled-embedding-cache LenThreshold
//   §4.5  de-pruning / de-quantization at load
//   §4.6  placement policy and DRAM budget
#pragma once

#include <set>
#include <string>

#include "cache/block_cache.h"
#include "cache/dual_cache.h"
#include "cache/pooled_cache.h"
#include "common/result.h"
#include "io/io_engine.h"
#include "io/throttle.h"
#include "obs/obs_config.h"
#include "prefetch/prefetch_predictor.h"

namespace sdm {

/// Placement strategies (paper Table 5).
enum class PlacementPolicy : uint8_t {
  /// All candidate (user) tables on SM; FM holds only the cache.
  kSmOnlyWithCache,
  /// A DRAM budget direct-maps the highest-benefit tables to FM; the rest
  /// go to SM with cache.
  kFixedFmSmWithCache,
  /// Like kSmOnlyWithCache, but low-temporal-locality tables bypass the
  /// cache ("per table cache enablement").
  kPerTableCacheEnablement,
};

[[nodiscard]] const char* ToString(PlacementPolicy p);

struct TuningConfig {
  // ---- Fast IO (§4.1) ----
  ThrottleConfig throttle;
  int io_queue_depth = 256;
  CompletionMode completion_mode = CompletionMode::kInterrupt;
  /// Use SGL bit-bucket sub-block reads when the device supports them.
  bool sub_block_reads = true;

  // ---- Coalesced batch IO (§4.1 extension) ----
  /// Dedup duplicate indices within a request, group misses by 4KB block
  /// (N rows in one block cost one device read), merge adjacent blocks, and
  /// submit the request's device reads as one batched io_uring doorbell.
  /// `false` restores the one-IO-per-row path (ablation baseline).
  bool coalesce_io = true;
  /// Upper bound on the byte span of one merged multi-block read.
  Bytes max_coalesce_bytes = 64 * kKiB;
  /// In sub-block (SGL) mode, the largest dead gap (bytes) a merged read
  /// may bridge between consecutive rows; larger gaps split the read so
  /// scattered rows don't inflate bus traffic (block-layer request-merging
  /// semantics). Block-mode reads ignore this: whole blocks cross the bus
  /// either way, so same-block rows always share one read.
  Bytes coalesce_gap_bytes = 512;

  // ---- Cross-request batch scheduling (src/sched) ----
  /// Combine planned device reads across concurrent lookups in the
  /// per-device BatchScheduler: N requests missing the same block share one
  /// device read (single-flight), overlapping/adjacent spans from different
  /// requests fuse into one SQE, and batches flush as one host-wide ring
  /// doorbell. `false` restores PR 1's per-request batches (ablation).
  bool cross_request_batching = true;
  /// Flush the accumulating batch once it holds this many SQEs.
  int max_batch_sqes = 64;
  /// Flush deadline, armed by the first run of a batch. Zero adds no
  /// latency (runs submitted at the same virtual instant still share a
  /// doorbell); raising it widens the cross-request merge window at the
  /// cost of up to that much added IO latency.
  SimDuration max_batch_delay{0};

  // ---- Speculative prefetch (src/prefetch; §4.2's locality data) ----
  /// Predict hot/next rows from the demand stream and read them ahead of
  /// demand through the BatchScheduler's low-priority lane. Exploits the
  /// temporal skew of Fig. 4 (most accesses concentrate in few rows) to
  /// convert demand SM latency into background bandwidth. Off by default:
  /// the paper's deployment does not prefetch, so every paper-reproduction
  /// bench keeps its baseline; bench_prefetch sweeps the knobs.
  bool enable_prefetch = false;
  /// kHotSet rides Fig. 4's temporal locality (decayed top-K histogram);
  /// kNextBlock is classic stride readahead on the miss-block stream — it
  /// needs the spatial locality Fig. 5 says production lacks, and exists
  /// for scan-shaped workloads and as the ablation partner.
  PrefetchStrategy prefetch_strategy = PrefetchStrategy::kHotSet;
  /// Max candidate rows issued per prediction opportunity. Deeper issues
  /// convert more misses but with falling precision (bench_prefetch's depth
  /// sweep); 8 balances hit rate against wasted bytes at Fig. 4 skews.
  int prefetch_depth = 8;
  /// Byte budget of speculative reads (pending + in-flight bus bytes);
  /// candidates beyond it are dropped, never queued — speculation must not
  /// compete with §4.1's outstanding-IO budget for demand.
  Bytes prefetch_max_inflight_bytes = 256 * kKiB;
  /// Candidates below this predictor confidence (share of recent traffic
  /// for kHotSet, stride agreement for kNextBlock) are not issued — the
  /// floor cuts the ranking's noise tail. Raising it makes speculation
  /// more conservative (fewer wasted bytes, fewer hits).
  double prefetch_min_confidence = 1e-5;

  // ---- Multi-tenant QoS lanes (src/tenant; §5.3 co-location) ----
  /// Byte budget of the scheduler's background lane (pending + in-flight
  /// bus bytes of background-tenant demand reads). Over-budget runs are
  /// PARKED until budget releases — background demand is never dropped —
  /// so this caps the device occupancy background tenants hold at once.
  Bytes background_max_inflight_bytes = 256 * kKiB;
  /// Starvation bound of the background lane: a background SQE that keeps
  /// missing doorbell room (foreground batches run full) gets its own
  /// doorbell after at most this long.
  SimDuration background_flush_delay = Micros(10);

  // ---- Disaggregated fabric (src/fabric; §5.2's scale-out made real) ----
  /// One-way propagation latency of the fabric hop in front of a
  /// fabric-attached device stack. Zero (with unlimited bandwidth) makes
  /// the fabric instant: disaggregated mode becomes byte-identical to a
  /// local shared device.
  SimDuration fabric_latency{0};
  /// Per-direction fabric bandwidth (bytes/sec; 0 = unlimited). Doorbells
  /// pay 64B per SQE on the request direction, read payloads their bus
  /// bytes on the response direction.
  double fabric_bandwidth_bytes_per_sec = 0;
  /// Model per-hop FIFO queueing: transfers in one direction serialize
  /// behind each other (needs a finite bandwidth to matter).
  bool fabric_queueing = true;

  // ---- Fault tolerance / robustness (src/fault) ----
  /// Deadline on one scheduler device read (demand lanes). When the read
  /// has not completed this long after its doorbell, every joined request
  /// gets kDeadlineExceeded and can retry/degrade instead of wedging on a
  /// stalled device or a dropped fabric transfer. Zero disables deadlines
  /// (byte-identical to pre-deadline behavior).
  SimDuration io_deadline{0};
  /// Base of the exponential backoff between IO retry attempts (lookup runs,
  /// per-row reads, DirectIoReader). Attempt k waits base * 2^k. Zero keeps
  /// the legacy immediate re-read.
  SimDuration retry_backoff_base{0};
  /// Hedged reads: when an in-flight demand read exceeds
  /// `hedge_latency_factor * p99` of the device's observed demand-read
  /// latency, a duplicate read is submitted and the first completion wins.
  /// Zero disables hedging.
  double hedge_latency_factor = 0;
  /// Completed demand reads observed before the adaptive hedge threshold
  /// arms (the p99 estimate needs a population).
  uint64_t hedge_min_samples = 64;
  /// Lookups whose IOs exhaust retries complete Ok with zero-filled rows,
  /// accounted as rows_failed/degraded in traces and reports. `false`
  /// restores the legacy first-error contract (the query fails).
  bool graceful_degradation = true;
  /// Score device/endpoint health from IO outcomes and shed lookups to
  /// degraded mode while an endpoint is sick (probing for recovery).
  bool enable_health_monitor = false;
  /// Error fraction of the health window at which an endpoint is sick.
  double health_sick_threshold = 0.5;
  /// IO outcomes per endpoint in the sliding health window.
  int health_window = 64;
  /// While sick, every Nth lookup is admitted as a probe to detect recovery.
  int health_probe_interval = 16;

  // ---- Self-healing storage (src/fault; PR 8) ----
  /// Per-4KB-block checksums on every SM device: stamped at write, verified
  /// at bounce-buffer fill, so bit-rot windows surface as kDataLoss
  /// (transient, feeding retries/health) instead of serving garbage. Off by
  /// default — byte-identical when off OR when on without corruption.
  bool enable_checksums = false;
  /// Let a ReplicationManager watch HealthMonitor sickness transitions and
  /// re-replicate a sick device's hottest extents onto a healthy device via
  /// the scheduler's background lane; the extent registry gains replica
  /// sets, and lookups/hedges route to the healthiest replica. Requires
  /// enable_health_monitor (transitions drive it).
  bool enable_replication = false;
  /// Hottest extents re-replicated per sickness transition.
  int replication_hot_extents = 2;
  /// Byte budget per sickness transition: extents beyond it wait for the
  /// next transition (bounded background work per event).
  Bytes replication_byte_budget = 8 * kMiB;
  /// Chunk size of replication staging reads on the background lane.
  Bytes replication_chunk_bytes = 64 * kKiB;
  /// Feed per-table degradation (zero-filled rows, shed lookups) back into
  /// placement: a chronically degraded SM table migrates to FM at the next
  /// ModelUpdater refresh (if FM headroom allows).
  bool degraded_placement_feedback = false;
  /// rows_failed + sheds a table must accumulate to count as chronically
  /// degraded for the placement feedback above.
  uint64_t degraded_rows_min = 64;

  // ---- Observability (src/obs) ----
  /// Windowed time-series metrics, sampled query tracing, and SLO watchdog
  /// rules. All default off (no Observability object is created); when on,
  /// observation is timing-inert — serving results stay byte-identical.
  ObsConfig obs;

  // ---- Cache organization (§4.3) ----
  bool enable_row_cache = true;
  /// capacity == 0 (the default) auto-sizes the cache to whatever FM the
  /// direct tables and mapping tensors leave free (see SdmStore).
  DualCacheConfig row_cache = AutoSizedRowCache();

  [[nodiscard]] static DualCacheConfig AutoSizedRowCache() {
    DualCacheConfig c;
    c.capacity = 0;
    return c;
  }

  // ---- Pooled embedding cache (§4.4) ----
  bool enable_pooled_cache = false;
  PooledCacheConfig pooled_cache;

  // ---- Multi-level cache (§4.3, evaluated and rejected by the paper) ----
  /// Back the row cache with a block cache. Kept as an ablation: with the
  /// low spatial locality of Fig. 5 it wastes FM (see bench_ablation_multilevel).
  bool enable_block_cache = false;
  /// Share of the FM cache budget diverted to the block layer.
  double block_cache_fraction = 0.5;
  BlockCacheConfig block_cache;

  // ---- SM vs FM capacity trades (§4.5, A.5) ----
  bool deprune_at_load = false;
  bool dequantize_at_load = false;

  // ---- Placement (§4.6) ----
  PlacementPolicy placement = PlacementPolicy::kSmOnlyWithCache;
  /// FM bytes the placement may spend on direct-mapped tables. The row
  /// cache's capacity is separate (row_cache.capacity).
  Bytes placement_dram_budget = 0;
  /// Tables that must not be placed on SM (offline placement escape hatch).
  std::set<std::string> never_on_sm;
  /// Zipf-alpha below which kPerTableCacheEnablement disables the cache.
  double cache_enable_min_alpha = 0.4;

  /// Item tables stay on FM/accelerator in all the paper's deployments;
  /// placement only considers user tables for SM unless this is false.
  bool user_tables_only_on_sm = true;

  [[nodiscard]] Status Validate() const;

  /// Validation for a store ATTACHED to a SharedDeviceService (src/tenant).
  /// Cross-store single-flight and the tenant QoS lanes live in the batch
  /// scheduler and the planned-run path, so knob combinations that bypass
  /// them (fine for single-tenant ablations) are inconsistent on a shared
  /// device and are rejected here instead of asserting at runtime.
  [[nodiscard]] Status ValidateForSharedDevice() const;

  /// Validation for cluster hosts attached to a fabric-attached device
  /// stack (src/fabric): everything a shared device requires, plus sane
  /// fabric knobs. The disaggregated run loop rejects inconsistent configs
  /// with a Status at LoadModel instead of asserting mid-run.
  [[nodiscard]] Status ValidateForDisaggregated() const;
};

}  // namespace sdm
