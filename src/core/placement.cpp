#include "core/placement.h"

#include <algorithm>
#include <numeric>
#include <sstream>

namespace sdm {

namespace {

/// Whether the policy may put this table on SM at all.
bool SmCandidate(const TableConfig& t, const TuningConfig& tuning) {
  if (tuning.never_on_sm.contains(t.name)) return false;
  if (tuning.user_tables_only_on_sm && t.role != TableRole::kUser) return false;
  return true;
}

}  // namespace

Result<PlacementPlan> ComputePlacement(const ModelConfig& model, const TuningConfig& tuning) {
  if (Status s = tuning.Validate(); !s.ok()) return s;

  PlacementPlan plan;
  plan.tables.resize(model.tables.size());

  // Pass 1: mandatory FM tables (item tables / pinned) and SM candidates.
  std::vector<size_t> candidates;
  for (size_t i = 0; i < model.tables.size(); ++i) {
    const TableConfig& t = model.tables[i];
    TablePlacement& p = plan.tables[i];
    p.table = MakeTableId(static_cast<uint32_t>(i));
    p.bw_density = t.total_bytes() == 0
                       ? 0
                       : t.bytes_per_query() / static_cast<double>(t.total_bytes());
    if (!SmCandidate(t, tuning)) {
      p.tier = MemoryTier::kFm;
      p.cache_enabled = false;
      p.reason = tuning.never_on_sm.contains(t.name) ? "pinned to FM" : "item table on FM";
      plan.fm_direct_bytes += t.total_bytes();
      continue;
    }
    p.tier = MemoryTier::kSm;
    p.cache_enabled = true;
    p.reason = "SM candidate";
    candidates.push_back(i);
  }

  // Pass 2: policy-specific refinement.
  switch (tuning.placement) {
    case PlacementPolicy::kSmOnlyWithCache:
      break;

    case PlacementPolicy::kFixedFmSmWithCache: {
      // Highest BW-density tables are the best use of scarce FM bytes:
      // they demand many bytes/query but occupy little capacity.
      std::sort(candidates.begin(), candidates.end(), [&](size_t a, size_t b) {
        return plan.tables[a].bw_density > plan.tables[b].bw_density;
      });
      Bytes budget = tuning.placement_dram_budget;
      for (const size_t i : candidates) {
        const Bytes size = model.tables[i].total_bytes();
        if (size <= budget) {
          budget -= size;
          plan.tables[i].tier = MemoryTier::kFm;
          plan.tables[i].cache_enabled = false;
          plan.tables[i].reason = "direct-mapped to FM (high BW density)";
          plan.fm_direct_bytes += size;
        }
      }
      break;
    }

    case PlacementPolicy::kPerTableCacheEnablement: {
      for (const size_t i : candidates) {
        if (model.tables[i].zipf_alpha < tuning.cache_enable_min_alpha) {
          plan.tables[i].cache_enabled = false;
          plan.tables[i].reason = "cache bypass (low temporal locality)";
        }
      }
      break;
    }
  }

  for (size_t i = 0; i < model.tables.size(); ++i) {
    if (plan.tables[i].tier == MemoryTier::kSm) {
      plan.sm_bytes += model.tables[i].total_bytes();
    }
  }

  // The explicit budget only constrains policy-placed tables; mandatory FM
  // tables (item/pinned) are assumed to be provisioned separately (e.g. on
  // the accelerator), mirroring the paper's deployments.
  return plan;
}

Result<PlacementPlan> ComputePlacement(const ModelConfig& model, const TuningConfig& tuning,
                                       const std::vector<TableId>& degraded_tables) {
  auto plan = ComputePlacement(model, tuning);
  if (!plan.ok()) return plan;
  for (const TableId id : degraded_tables) {
    if (Raw(id) >= plan.value().tables.size()) continue;
    TablePlacement& p = plan.value().tables[Raw(id)];
    if (p.tier != MemoryTier::kSm) continue;
    const Bytes size = model.tables[Raw(id)].total_bytes();
    p.tier = MemoryTier::kFm;
    p.cache_enabled = false;
    p.reason = "degraded rows on SM last generation: forced to FM";
    plan.value().fm_direct_bytes += size;
    plan.value().sm_bytes -= size;
  }
  return plan;
}

std::string DescribePlacement(const PlacementPlan& plan, const ModelConfig& model) {
  size_t fm_count = 0;
  size_t sm_count = 0;
  size_t cache_off = 0;
  for (const auto& p : plan.tables) {
    if (p.tier == MemoryTier::kFm) {
      ++fm_count;
    } else {
      ++sm_count;
      if (!p.cache_enabled) ++cache_off;
    }
  }
  std::ostringstream os;
  os << model.name << ": " << fm_count << " tables on FM ("
     << AsMiB(plan.fm_direct_bytes) << " MiB direct), " << sm_count << " on SM ("
     << AsMiB(plan.sm_bytes) << " MiB), " << cache_off << " SM tables bypass cache";
  return os.str();
}

}  // namespace sdm
