// Table placement across FM and SM (paper §4.6, Table 5).
//
// Given a model and a tuning config, ComputePlacement decides per table:
// which tier it lives on, whether the SM cache serves it, and flags the
// decision inputs so reports can explain *why*. Policies:
//   kSmOnlyWithCache        — every SM-candidate table goes to SM.
//   kFixedFmSmWithCache     — a DRAM budget direct-maps the tables with the
//                             highest BW-density (bytes-per-query per byte
//                             of capacity) onto FM; the rest go to SM.
//   kPerTableCacheEnablement— SM-only, but tables with weak temporal
//                             locality (low zipf alpha) bypass the cache.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/tuning.h"
#include "embedding/table_config.h"

namespace sdm {

struct TablePlacement {
  TableId table{};
  MemoryTier tier = MemoryTier::kSm;
  bool cache_enabled = true;
  /// BW density used for ranking (bytes/query ÷ table bytes).
  double bw_density = 0;
  std::string reason;
};

struct PlacementPlan {
  std::vector<TablePlacement> tables;  // indexed by table id
  Bytes fm_direct_bytes = 0;           ///< direct-mapped table bytes on FM
  Bytes sm_bytes = 0;

  [[nodiscard]] const TablePlacement& For(TableId id) const {
    return tables[Raw(id)];
  }
};

/// Computes a placement plan. Tables are identified by their position in
/// `model.tables` (TableId == index). Fails if FM-pinned tables exceed the
/// DRAM budget.
[[nodiscard]] Result<PlacementPlan> ComputePlacement(const ModelConfig& model,
                                                     const TuningConfig& tuning);

/// Placement with serving-time health feedback (self-healing layer): tables
/// that served chronically degraded rows from SM last generation are forced
/// onto FM this generation, ahead of any policy ranking — availability
/// outranks BW-density once a table has demonstrably lost rows.
[[nodiscard]] Result<PlacementPlan> ComputePlacement(
    const ModelConfig& model, const TuningConfig& tuning,
    const std::vector<TableId>& degraded_tables);

/// Human-readable summary (counts and bytes per tier).
[[nodiscard]] std::string DescribePlacement(const PlacementPlan& plan,
                                            const ModelConfig& model);

}  // namespace sdm
