#include "trace/locality.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

namespace sdm {

TemporalLocality AnalyzeTemporalLocality(std::span<const RowIndex> trace, size_t max_points) {
  TemporalLocality out;
  out.total_accesses = trace.size();
  if (trace.empty()) return out;

  std::unordered_map<RowIndex, uint64_t> counts;
  counts.reserve(trace.size() / 4);
  for (const RowIndex r : trace) ++counts[r];
  out.unique_rows = counts.size();

  std::vector<uint64_t> freq;
  freq.reserve(counts.size());
  for (const auto& [row, c] : counts) freq.push_back(c);
  std::sort(freq.begin(), freq.end(), std::greater<>());

  // Downsample the cumulative curve to max_points evenly spaced ranks.
  const size_t points = std::min(max_points, freq.size());
  out.cumulative.reserve(points);
  const double total = static_cast<double>(trace.size());
  size_t next_emit = 0;
  uint64_t running = 0;
  for (size_t i = 0; i < freq.size(); ++i) {
    running += freq[i];
    // Emit when rank i crosses the next sample position.
    const size_t target = (next_emit + 1) * freq.size() / points - 1;
    if (i >= target && next_emit < points) {
      out.cumulative.push_back(static_cast<double>(running) / total);
      ++next_emit;
    }
  }
  while (out.cumulative.size() < points) out.cumulative.push_back(1.0);
  return out;
}

double TemporalLocality::ShareOfTopRows(double fraction) const {
  if (cumulative.empty()) return 0;
  const double f = std::clamp(fraction, 0.0, 1.0);
  const size_t idx = f >= 1.0 ? cumulative.size() - 1
                              : static_cast<size_t>(f * static_cast<double>(cumulative.size()));
  return cumulative[std::min(idx, cumulative.size() - 1)];
}

SpatialLocality AnalyzeSpatialLocality(std::span<const RowIndex> trace, Bytes row_bytes,
                                       size_t window) {
  SpatialLocality out;
  assert(row_bytes > 0);
  out.rows_per_block = std::max<uint64_t>(1, kBlockSize / row_bytes);
  if (trace.empty() || window == 0) return out;

  out.min_ratio = 1.0;
  double sum = 0;
  size_t windows = 0;
  for (size_t begin = 0; begin < trace.size(); begin += window) {
    const size_t end = std::min(trace.size(), begin + window);
    std::unordered_set<RowIndex> unique_rows;
    std::unordered_set<uint64_t> unique_blocks;
    for (size_t i = begin; i < end; ++i) {
      unique_rows.insert(trace[i]);
      unique_blocks.insert(trace[i] * row_bytes / kBlockSize);
    }
    if (unique_blocks.empty()) continue;
    const double ratio = static_cast<double>(unique_rows.size()) /
                         static_cast<double>(unique_blocks.size()) /
                         static_cast<double>(out.rows_per_block);
    sum += ratio;
    out.min_ratio = std::min(out.min_ratio, ratio);
    out.max_ratio = std::max(out.max_ratio, ratio);
    ++windows;
  }
  out.windows = windows;
  out.mean_ratio = windows == 0 ? 0 : sum / static_cast<double>(windows);
  return out;
}

}  // namespace sdm
