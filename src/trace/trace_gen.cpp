#include "trace/trace_gen.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace sdm {

namespace {

uint64_t Mix64(uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

IndexPermuter::IndexPermuter(uint64_t n, uint64_t seed) : n_(std::max<uint64_t>(n, 1)) {
  // Smallest even-bit domain 2^(2h) >= n, h >= 1.
  half_bits_ = 1;
  while ((uint64_t{1} << (2 * half_bits_)) < n_) ++half_bits_;
  domain_ = uint64_t{1} << (2 * half_bits_);
  uint64_t s = seed;
  for (auto& k : keys_) k = Mix64(s++);
}

uint64_t IndexPermuter::FeistelOnce(uint64_t x) const {
  const uint64_t mask = (uint64_t{1} << half_bits_) - 1;
  uint64_t left = x >> half_bits_;
  uint64_t right = x & mask;
  for (const uint64_t key : keys_) {
    const uint64_t f = Mix64(right ^ key) & mask;
    const uint64_t new_left = right;
    right = left ^ f;
    left = new_left;
  }
  return (left << half_bits_) | right;
}

uint64_t IndexPermuter::Permute(uint64_t x) const {
  assert(x < n_);
  if (n_ == 1) return 0;
  // Cycle-walk until we land back inside [0, n).
  uint64_t y = FeistelOnce(x);
  while (y >= n_) y = FeistelOnce(y);
  return y;
}

TableAccessStream::TableAccessStream(const TableConfig& config, uint64_t seed)
    : zipf_(std::max<uint64_t>(config.num_rows, 1), config.zipf_alpha),
      permuter_(std::max<uint64_t>(config.num_rows, 1), seed) {}

RowIndex TableAccessStream::Next(Rng& rng) const {
  return permuter_.Permute(zipf_.Sample(rng));
}

RowIndex TableAccessStream::IndexAtRank(uint64_t rank) const {
  return permuter_.Permute(rank);
}

QueryGenerator::QueryGenerator(const ModelConfig& model, WorkloadConfig config)
    : model_(model),
      config_(config),
      user_sampler_(std::max<uint64_t>(config.num_users, 1), config.user_zipf_alpha),
      user_permuter_(std::max<uint64_t>(config.num_users, 1), config.seed ^ 0xabcd),
      rng_(config.seed) {
  streams_.reserve(model_.tables.size());
  for (size_t i = 0; i < model_.tables.size(); ++i) {
    streams_.emplace_back(model_.tables[i], config_.seed ^ Mix64(i));
  }
}

std::vector<RowIndex> QueryGenerator::UserTableIndices(UserId user, size_t table) {
  const TableConfig& cfg = model_.tables[table];
  // Sticky set: deterministic in (user, table). Its length is also sticky —
  // heavy-feature users stay heavy — and its indices follow the table's
  // popularity law so aggregate locality matches the stream.
  Rng sticky(Mix64(user * 0x9e3779b97f4a7c15ULL) ^ Mix64(table) ^ config_.seed);
  const double pf = cfg.avg_pooling_factor * config_.pooling_scale;
  const auto len = static_cast<size_t>(
      std::max<long>(1, std::lround(pf * std::exp(sticky.NextGaussian() * 0.4))));
  std::vector<RowIndex> out;
  out.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    if (config_.user_index_churn > 0 && rng_.NextBernoulli(config_.user_index_churn)) {
      out.push_back(streams_[table].Next(rng_));  // churned: fresh draw
    } else {
      out.push_back(streams_[table].Next(sticky));  // sticky: deterministic
    }
  }
  return out;
}

std::vector<RowIndex> QueryGenerator::ItemTableIndices(size_t table) {
  const TableConfig& cfg = model_.tables[table];
  const double pf = cfg.avg_pooling_factor * config_.pooling_scale;
  const auto per_item = static_cast<size_t>(std::max<long>(1, std::lround(pf)));
  const auto total = per_item * static_cast<size_t>(std::max(1, model_.item_batch_size));
  std::vector<RowIndex> out;
  out.reserve(total);
  for (size_t i = 0; i < total; ++i) out.push_back(streams_[table].Next(rng_));
  return out;
}

Query QueryGenerator::Next() {
  const UserId user = user_permuter_.Permute(user_sampler_.Sample(rng_));
  return ForUser(user);
}

Query QueryGenerator::ForUser(UserId user) {
  Query q;
  q.user = user;
  q.indices.resize(model_.tables.size());
  for (size_t t = 0; t < model_.tables.size(); ++t) {
    if (model_.tables[t].role != TableRole::kUser) {
      q.indices[t] = ItemTableIndices(t);
      continue;
    }
    q.indices[t] = UserTableIndices(user, t);
    // InferenceEval (paper Table 2): user batch > 1 means each query
    // carries samples for several *different* users, so the user side is
    // batched just like the item side (and far less sticky per host).
    for (int extra = 1; extra < model_.user_batch_size; ++extra) {
      const UserId other = user_permuter_.Permute(user_sampler_.Sample(rng_));
      const std::vector<RowIndex> more = UserTableIndices(other, t);
      q.indices[t].insert(q.indices[t].end(), more.begin(), more.end());
    }
  }
  return q;
}

}  // namespace sdm
