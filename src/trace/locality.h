// Locality analyzers (paper §4.2, Figs. 4 and 5).
//
// Temporal: cumulative-access CDF over popularity ranks — power-law tables
// concentrate most accesses in few rows (the row cache's reason to exist).
// Spatial: per-window ratio of unique indices to unique 4KB blocks,
// normalized by rows-per-block; 1.0 means accessed rows pack perfectly into
// blocks (high spatial locality), ~rows_per_block^-1 means fully scattered.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.h"

namespace sdm {

struct TemporalLocality {
  uint64_t total_accesses = 0;
  uint64_t unique_rows = 0;
  /// cumulative[i] = fraction of all accesses covered by the (i+1) hottest
  /// rows, downsampled to at most `max_points` points.
  std::vector<double> cumulative;

  /// Fraction of accesses covered by the hottest `fraction` of unique rows.
  [[nodiscard]] double ShareOfTopRows(double fraction) const;
};

[[nodiscard]] TemporalLocality AnalyzeTemporalLocality(std::span<const RowIndex> trace,
                                                       size_t max_points = 1000);

struct SpatialLocality {
  /// Mean over windows of (unique_indices / unique_blocks) / rows_per_block.
  double mean_ratio = 0;
  double min_ratio = 0;
  double max_ratio = 0;
  size_t windows = 0;
  uint64_t rows_per_block = 0;
};

/// `row_bytes` sizes rows within 4KB blocks; `window` is the paper's
/// averaging interval (~25M accesses at production scale).
[[nodiscard]] SpatialLocality AnalyzeSpatialLocality(std::span<const RowIndex> trace,
                                                     Bytes row_bytes,
                                                     size_t window = 100'000);

}  // namespace sdm
