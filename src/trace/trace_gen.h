// Synthetic access-trace generation (substitute for the paper's 6-day
// production samples; see DESIGN.md substitution table).
//
// Per-table index streams follow a Zipf popularity law whose exponent is
// the table's zipf_alpha (item > user, reproducing Fig. 4's split), with a
// Feistel permutation scattering hot ranks across the index space so there
// is no artificial spatial locality (Fig. 5 shows production has little).
//
// Query-level structure:
//   - users are drawn Zipf-popular; each (user, table) pair has a sticky,
//     deterministic index set with configurable churn — repeated queries
//     from one user re-issue (mostly) the same indices, which is what makes
//     user-to-host sticky routing and the pooled-embedding cache work;
//   - item-table indices are drawn fresh per query (B_I items batched).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "embedding/table_config.h"

namespace sdm {

/// Bijective pseudo-random permutation of [0, n) (4-round Feistel with
/// cycle-walking). Used to decouple popularity rank from index value.
class IndexPermuter {
 public:
  IndexPermuter(uint64_t n, uint64_t seed);

  [[nodiscard]] uint64_t Permute(uint64_t x) const;
  [[nodiscard]] uint64_t n() const { return n_; }

 private:
  [[nodiscard]] uint64_t FeistelOnce(uint64_t x) const;

  uint64_t n_;
  int half_bits_;
  uint64_t domain_;  // 2^(2*half_bits) >= n
  uint64_t keys_[4];
};

/// Zipf-popular index stream for one table.
class TableAccessStream {
 public:
  TableAccessStream(const TableConfig& config, uint64_t seed);

  /// Next index (popularity-ranked through the permutation).
  [[nodiscard]] RowIndex Next(Rng& rng) const;

  /// The index at popularity rank r (rank 0 = hottest).
  [[nodiscard]] RowIndex IndexAtRank(uint64_t rank) const;

  [[nodiscard]] const ZipfSampler& zipf() const { return zipf_; }

 private:
  ZipfSampler zipf_;
  IndexPermuter permuter_;
};

struct WorkloadConfig {
  uint64_t num_users = 50'000;
  /// Popularity skew of users (heavy users dominate traffic).
  double user_zipf_alpha = 0.8;
  /// Per-index probability that a sticky user index is redrawn this query.
  double user_index_churn = 0.10;
  /// Scales every table's pooling factor (1.0 = paper averages).
  double pooling_scale = 1.0;
  uint64_t seed = 2024;
};

/// One inference query's embedding work.
struct Query {
  UserId user = 0;
  /// Index list per table (parallel to ModelConfig::tables). User tables
  /// carry ~pf indices; item tables carry ~pf * item_batch (flattened).
  std::vector<std::vector<RowIndex>> indices;
};

class QueryGenerator {
 public:
  QueryGenerator(const ModelConfig& model, WorkloadConfig config);

  /// Generates the next query (user drawn from the popularity law).
  [[nodiscard]] Query Next();

  /// Generates a query for a specific user (sticky-routing experiments).
  [[nodiscard]] Query ForUser(UserId user);

  [[nodiscard]] const ModelConfig& model() const { return model_; }
  [[nodiscard]] const WorkloadConfig& config() const { return config_; }
  [[nodiscard]] const TableAccessStream& stream(size_t table) const {
    return streams_[table];
  }

 private:
  [[nodiscard]] std::vector<RowIndex> UserTableIndices(UserId user, size_t table);
  [[nodiscard]] std::vector<RowIndex> ItemTableIndices(size_t table);

  ModelConfig model_;
  WorkloadConfig config_;
  std::vector<TableAccessStream> streams_;
  ZipfSampler user_sampler_;
  IndexPermuter user_permuter_;
  Rng rng_;
};

}  // namespace sdm
