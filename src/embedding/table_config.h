// Embedding-table and model-image configuration.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "embedding/quantization.h"

namespace sdm {

/// Static description of one embedding table.
struct TableConfig {
  std::string name;
  TableRole role = TableRole::kUser;
  uint64_t num_rows = 0;
  uint32_t dim = 0;  ///< elements per row
  DataType dtype = DataType::kInt8Rowwise;

  /// Average lookups per query into this table (paper: pooling factor p_i).
  double avg_pooling_factor = 1.0;

  /// Zipf exponent of the index distribution (temporal locality, Fig. 4).
  /// Item tables show more locality (higher alpha) than user tables.
  double zipf_alpha = 0.8;

  [[nodiscard]] Bytes row_bytes() const { return StoredRowBytes(dtype, dim); }
  [[nodiscard]] Bytes total_bytes() const { return row_bytes() * num_rows; }

  /// BW contribution per query in bytes (p_i * d_i of Eq. 1), before the
  /// item-batch multiplier.
  [[nodiscard]] double bytes_per_query() const {
    return avg_pooling_factor * static_cast<double>(row_bytes());
  }
};

/// Configuration of a whole model's sparse part plus its dense-layer shape
/// (used by the dlrm module; kept here so images can be built without it).
struct ModelConfig {
  std::string name;
  std::vector<TableConfig> tables;

  int item_batch_size = 1;   ///< B_I in Eq. 2
  int user_batch_size = 1;   ///< B_U in Eq. 2 (1 for latency-bound inference)

  int num_mlp_layers = 0;
  int avg_mlp_width = 0;

  [[nodiscard]] Bytes TotalBytes() const;
  [[nodiscard]] Bytes BytesFor(TableRole role) const;
  [[nodiscard]] size_t CountFor(TableRole role) const;
  [[nodiscard]] double AvgPoolingFactor(TableRole role) const;

  /// Aggregate embedding-BW requirement per query in bytes (Eq. 2):
  /// B_I * sum_item(p_i d_i) + B_U * sum_user(p_j d_j).
  [[nodiscard]] double BytesPerQuery() const;

  /// IO operations per query hitting tables of `role` (Eq. 8 numerator).
  [[nodiscard]] double LookupsPerQuery(TableRole role) const;
};

}  // namespace sdm
