#include "embedding/embedding_table.h"

#include <cassert>

namespace sdm {

EmbeddingTableImage::EmbeddingTableImage(TableConfig config) : config_(std::move(config)) {
  assert(config_.dim > 0);
  data_.assign(config_.row_bytes() * config_.num_rows, 0);
  // Zero rows must still carry valid quant params; QuantizeRow of a zero row
  // produces exactly that, so write each row once for quantized dtypes.
  if (config_.dtype == DataType::kInt8Rowwise || config_.dtype == DataType::kInt4Rowwise) {
    const std::vector<float> zeros(config_.dim, 0.0f);
    std::vector<uint8_t> row(config_.row_bytes());
    QuantizeRow(config_.dtype, zeros, row);
    for (uint64_t r = 0; r < config_.num_rows; ++r) {
      std::copy(row.begin(), row.end(), data_.begin() + static_cast<ptrdiff_t>(r * row.size()));
    }
  }
}

std::vector<float> EmbeddingTableImage::ReferenceRowValues(const TableConfig& config,
                                                           uint64_t seed, RowIndex row) {
  Rng rng(seed ^ (0x9e3779b97f4a7c15ULL * (row + 1)));
  std::vector<float> values(config.dim);
  for (auto& v : values) v = static_cast<float>(rng.NextDouble(-1.0, 1.0));
  return values;
}

EmbeddingTableImage EmbeddingTableImage::GenerateRandom(TableConfig config, uint64_t seed) {
  EmbeddingTableImage image(std::move(config));
  std::vector<uint8_t> row_buf(image.row_bytes());
  for (uint64_t r = 0; r < image.num_rows(); ++r) {
    const std::vector<float> values = ReferenceRowValues(image.config_, seed, r);
    QuantizeRow(image.config_.dtype, values, row_buf);
    std::copy(row_buf.begin(), row_buf.end(),
              image.data_.begin() + static_cast<ptrdiff_t>(r * row_buf.size()));
  }
  return image;
}

std::span<const uint8_t> EmbeddingTableImage::Row(RowIndex row) const {
  assert(row < config_.num_rows);
  return std::span<const uint8_t>(data_.data() + row * row_bytes(), row_bytes());
}

std::span<uint8_t> EmbeddingTableImage::MutableRow(RowIndex row) {
  assert(row < config_.num_rows);
  return std::span<uint8_t>(data_.data() + row * row_bytes(), row_bytes());
}

std::vector<float> EmbeddingTableImage::DequantizedRow(RowIndex row) const {
  std::vector<float> out(config_.dim);
  DequantizeRow(config_.dtype, Row(row), out);
  return out;
}

Status EmbeddingTableImage::SetRow(RowIndex row, std::span<const float> values) {
  if (row >= config_.num_rows) return OutOfRangeError("row index beyond table");
  if (values.size() != config_.dim) return InvalidArgumentError("value count != dim");
  QuantizeRow(config_.dtype, values, MutableRow(row));
  return Status::Ok();
}

}  // namespace sdm
