#include "embedding/quantization.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <cstring>
#include <limits>

namespace sdm {

const char* ToString(DataType t) {
  switch (t) {
    case DataType::kFp32: return "fp32";
    case DataType::kFp16: return "fp16";
    case DataType::kInt8Rowwise: return "int8_rowwise";
    case DataType::kInt4Rowwise: return "int4_rowwise";
  }
  return "unknown";
}

Bytes StoredRowBytes(DataType type, uint32_t dim) {
  switch (type) {
    case DataType::kFp32: return Bytes{4} * dim;
    case DataType::kFp16: return Bytes{2} * dim;
    case DataType::kInt8Rowwise: return Bytes{dim} + 8;            // + fp32 scale/bias
    case DataType::kInt4Rowwise: return Bytes{(dim + 1) / 2} + 4;  // + fp16 scale/bias
  }
  return 0;
}

uint16_t FloatToHalf(float f) {
  const uint32_t bits = std::bit_cast<uint32_t>(f);
  const uint32_t sign = (bits >> 16) & 0x8000u;
  const int32_t exponent = static_cast<int32_t>((bits >> 23) & 0xFF) - 127 + 15;
  uint32_t mantissa = bits & 0x7FFFFFu;

  if (exponent >= 0x1F) {
    // Overflow or inf/nan.
    const bool is_nan = ((bits >> 23) & 0xFF) == 0xFF && mantissa != 0;
    return static_cast<uint16_t>(sign | 0x7C00u | (is_nan ? 0x200u : 0));
  }
  if (exponent <= 0) {
    if (exponent < -10) return static_cast<uint16_t>(sign);  // underflow to 0
    // Subnormal half.
    mantissa |= 0x800000u;
    const int shift = 14 - exponent;
    uint32_t sub = mantissa >> shift;
    // Round to nearest even.
    const uint32_t rem = mantissa & ((1u << shift) - 1);
    const uint32_t halfway = 1u << (shift - 1);
    if (rem > halfway || (rem == halfway && (sub & 1))) ++sub;
    return static_cast<uint16_t>(sign | sub);
  }
  // Normal half with round-to-nearest-even on the dropped 13 bits.
  uint32_t half = sign | (static_cast<uint32_t>(exponent) << 10) | (mantissa >> 13);
  const uint32_t rem = mantissa & 0x1FFFu;
  if (rem > 0x1000u || (rem == 0x1000u && (half & 1))) ++half;
  return static_cast<uint16_t>(half);
}

float HalfToFloat(uint16_t h) {
  const uint32_t sign = static_cast<uint32_t>(h & 0x8000u) << 16;
  const uint32_t exponent = (h >> 10) & 0x1F;
  const uint32_t mantissa = h & 0x3FFu;

  uint32_t bits;
  if (exponent == 0) {
    if (mantissa == 0) {
      bits = sign;  // +-0
    } else {
      // Subnormal: normalize.
      int e = -1;
      uint32_t m = mantissa;
      do {
        ++e;
        m <<= 1;
      } while ((m & 0x400u) == 0);
      bits = sign | (static_cast<uint32_t>(127 - 15 - e) << 23) | ((m & 0x3FFu) << 13);
    }
  } else if (exponent == 0x1F) {
    bits = sign | 0x7F800000u | (mantissa << 13);  // inf/nan
  } else {
    bits = sign | ((exponent - 15 + 127) << 23) | (mantissa << 13);
  }
  return std::bit_cast<float>(bits);
}

namespace {

struct RowRange {
  float lo;
  float scale_inv;  // levels / (hi - lo), 0 when hi == lo
  float scale;      // (hi - lo) / levels
};

RowRange ComputeRange(std::span<const float> values, int levels) {
  float lo = std::numeric_limits<float>::max();
  float hi = std::numeric_limits<float>::lowest();
  for (const float v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  if (values.empty()) lo = hi = 0;
  RowRange r;
  r.lo = lo;
  const float span = hi - lo;
  r.scale = span > 0 ? span / static_cast<float>(levels) : 1.0f;
  r.scale_inv = span > 0 ? static_cast<float>(levels) / span : 0.0f;
  return r;
}

uint32_t QuantizeValue(float v, const RowRange& r, int levels) {
  const float scaled = (v - r.lo) * r.scale_inv;
  const auto q = static_cast<int32_t>(std::lrintf(scaled));
  return static_cast<uint32_t>(std::clamp<int32_t>(q, 0, levels));
}

}  // namespace

void QuantizeRow(DataType type, std::span<const float> values, std::span<uint8_t> dest) {
  assert(dest.size() == StoredRowBytes(type, static_cast<uint32_t>(values.size())));
  switch (type) {
    case DataType::kFp32: {
      std::memcpy(dest.data(), values.data(), values.size() * 4);
      return;
    }
    case DataType::kFp16: {
      for (size_t i = 0; i < values.size(); ++i) {
        const uint16_t h = FloatToHalf(values[i]);
        std::memcpy(dest.data() + 2 * i, &h, 2);
      }
      return;
    }
    case DataType::kInt8Rowwise: {
      const RowRange r = ComputeRange(values, 255);
      for (size_t i = 0; i < values.size(); ++i) {
        dest[i] = static_cast<uint8_t>(QuantizeValue(values[i], r, 255));
      }
      std::memcpy(dest.data() + values.size(), &r.scale, 4);
      std::memcpy(dest.data() + values.size() + 4, &r.lo, 4);
      return;
    }
    case DataType::kInt4Rowwise: {
      const RowRange r = ComputeRange(values, 15);
      const size_t packed = (values.size() + 1) / 2;
      for (size_t i = 0; i < packed; ++i) {
        const uint32_t lo_nibble = QuantizeValue(values[2 * i], r, 15);
        const uint32_t hi_nibble =
            2 * i + 1 < values.size() ? QuantizeValue(values[2 * i + 1], r, 15) : 0;
        dest[i] = static_cast<uint8_t>(lo_nibble | (hi_nibble << 4));
      }
      const uint16_t hscale = FloatToHalf(r.scale);
      const uint16_t hbias = FloatToHalf(r.lo);
      std::memcpy(dest.data() + packed, &hscale, 2);
      std::memcpy(dest.data() + packed + 2, &hbias, 2);
      return;
    }
  }
}

namespace {

// Shared decode loop: invokes op(i, value) for each element.
template <typename Op>
void DecodeRow(DataType type, std::span<const uint8_t> src, size_t dim, Op&& op) {
  switch (type) {
    case DataType::kFp32: {
      for (size_t i = 0; i < dim; ++i) {
        float v;
        std::memcpy(&v, src.data() + 4 * i, 4);
        op(i, v);
      }
      return;
    }
    case DataType::kFp16: {
      for (size_t i = 0; i < dim; ++i) {
        uint16_t h;
        std::memcpy(&h, src.data() + 2 * i, 2);
        op(i, HalfToFloat(h));
      }
      return;
    }
    case DataType::kInt8Rowwise: {
      float scale;
      float bias;
      std::memcpy(&scale, src.data() + dim, 4);
      std::memcpy(&bias, src.data() + dim + 4, 4);
      for (size_t i = 0; i < dim; ++i) {
        op(i, static_cast<float>(src[i]) * scale + bias);
      }
      return;
    }
    case DataType::kInt4Rowwise: {
      const size_t packed = (dim + 1) / 2;
      uint16_t hscale;
      uint16_t hbias;
      std::memcpy(&hscale, src.data() + packed, 2);
      std::memcpy(&hbias, src.data() + packed + 2, 2);
      const float scale = HalfToFloat(hscale);
      const float bias = HalfToFloat(hbias);
      for (size_t i = 0; i < dim; ++i) {
        const uint8_t byte = src[i / 2];
        const uint32_t code = (i % 2 == 0) ? (byte & 0x0F) : (byte >> 4);
        op(i, static_cast<float>(code) * scale + bias);
      }
      return;
    }
  }
}

}  // namespace

void DequantizeRow(DataType type, std::span<const uint8_t> src, std::span<float> out) {
  assert(src.size() == StoredRowBytes(type, static_cast<uint32_t>(out.size())));
  DecodeRow(type, src, out.size(), [&](size_t i, float v) { out[i] = v; });
}

void DequantizeAccumulate(DataType type, std::span<const uint8_t> src, std::span<float> acc) {
  assert(src.size() == StoredRowBytes(type, static_cast<uint32_t>(acc.size())));
  DecodeRow(type, src, acc.size(), [&](size_t i, float v) { acc[i] += v; });
}

float MaxAbsError(DataType type, float lo, float hi) {
  const float span = hi - lo;
  switch (type) {
    case DataType::kFp32: return 0.0f;
    case DataType::kFp16: {
      const float m = std::max(std::fabs(lo), std::fabs(hi));
      return m * 0x1.0p-11f;  // half has 11 significand bits
    }
    case DataType::kInt8Rowwise: return span / 255.0f * 0.5f;
    case DataType::kInt4Rowwise: {
      // Half-precision scale/bias add rounding on top of the code error.
      const float m = std::max(std::fabs(lo), std::fabs(hi));
      return span / 15.0f * 0.5f + m * 0x1.0p-9f;
    }
  }
  return 0.0f;
}

}  // namespace sdm
