#include "embedding/pruning.h"

#include <cassert>
#include <cmath>
#include <memory>

namespace sdm {

namespace {

PrunedTable PruneImpl(const EmbeddingTableImage& image, const PruneKeepPredicate& keep) {
  const TableConfig& cfg = image.config();
  std::vector<RowIndex> kept;
  MappingTensor mapping;
  mapping.map.assign(cfg.num_rows, kPrunedRow);
  for (RowIndex r = 0; r < cfg.num_rows; ++r) {
    // Exactly-zero rows are always pruned (the heuristic's easy case).
    bool all_zero = true;
    for (const float v : image.DequantizedRow(r)) {
      if (v != 0.0f) {
        all_zero = false;
        break;
      }
    }
    if (!all_zero && keep(r)) {
      mapping.map[r] = static_cast<int64_t>(kept.size());
      kept.push_back(r);
    }
  }

  // Compact surviving rows.
  TableConfig pruned_cfg = cfg;
  pruned_cfg.num_rows = kept.size();
  pruned_cfg.name = cfg.name + ".pruned";
  EmbeddingTableImage compact(pruned_cfg);
  for (size_t i = 0; i < kept.size(); ++i) {
    const auto src = image.Row(kept[i]);
    const auto dst = compact.MutableRow(i);
    std::copy(src.begin(), src.end(), dst.begin());
  }

  PrunedTable out{std::move(compact), std::move(mapping), cfg.num_rows};
  return out;
}

}  // namespace

PrunedTable PruneTable(const EmbeddingTableImage& image, double keep_fraction, uint64_t seed) {
  assert(keep_fraction >= 0.0 && keep_fraction <= 1.0);
  // Shared Rng captured mutably: PruneImpl evaluates rows in ascending
  // order, so the draw sequence is deterministic.
  auto rng = std::make_shared<Rng>(seed);
  return PruneImpl(image, [rng, keep_fraction](RowIndex) {
    return rng->NextBernoulli(keep_fraction);
  });
}

PrunedTable PruneTableWithPredicate(const EmbeddingTableImage& image,
                                    const PruneKeepPredicate& keep) {
  assert(keep);
  return PruneImpl(image, keep);
}

EmbeddingTableImage DeprunedTable(const PrunedTable& pruned) {
  TableConfig cfg = pruned.rows.config();
  cfg.num_rows = pruned.unpruned_num_rows;
  // Restore the original (unpruned) name when the convention applies.
  if (const auto pos = cfg.name.rfind(".pruned"); pos != std::string::npos) {
    cfg.name = cfg.name.substr(0, pos) + ".depruned";
  }
  EmbeddingTableImage dense(cfg);  // all-zero rows with valid quant params
  for (RowIndex unpruned = 0; unpruned < pruned.unpruned_num_rows; ++unpruned) {
    const auto mapped = pruned.mapping.Lookup(unpruned);
    if (!mapped.has_value()) continue;  // stays a zero row
    const auto src = pruned.rows.Row(*mapped);
    const auto dst = dense.MutableRow(unpruned);
    std::copy(src.begin(), src.end(), dst.begin());
  }
  return dense;
}

DepruneFootprint ComputeDepruneFootprint(const PrunedTable& pruned) {
  DepruneFootprint f;
  f.fm_bytes_freed = pruned.mapping.size_bytes();
  const uint64_t zero_rows = pruned.unpruned_num_rows - pruned.rows.num_rows();
  f.sm_bytes_added = zero_rows * pruned.rows.row_bytes();
  return f;
}

}  // namespace sdm
