// Row-wise embedding quantization (paper §3 "row-wise quantization",
// Guan et al. 2019 post-training 4/8-bit schemes).
//
// Storage layouts (one embedding row of `dim` elements):
//   kFp32        : dim * 4 bytes of IEEE floats
//   kFp16        : dim * 2 bytes of IEEE halfs
//   kInt8Rowwise : dim bytes of uint8 codes, then float32 scale, float32 bias
//   kInt4Rowwise : ceil(dim/2) bytes of packed nibbles (low nibble = even
//                  element), then float16 scale, float16 bias
// value = code * scale + bias; codes quantize the row's own [min, max].
#pragma once

#include <cstdint>
#include <span>

#include "common/types.h"

namespace sdm {

enum class DataType : uint8_t { kFp32, kFp16, kInt8Rowwise, kInt4Rowwise };

[[nodiscard]] const char* ToString(DataType t);

/// Bytes one stored row occupies for the given element count.
[[nodiscard]] Bytes StoredRowBytes(DataType type, uint32_t dim);

/// IEEE 754 binary16 <-> binary32 conversions (round-to-nearest-even).
[[nodiscard]] uint16_t FloatToHalf(float f);
[[nodiscard]] float HalfToFloat(uint16_t h);

/// Quantizes `values` into `dest` using the row-wise layout above.
/// dest.size() must equal StoredRowBytes(type, values.size()).
void QuantizeRow(DataType type, std::span<const float> values, std::span<uint8_t> dest);

/// Inverse of QuantizeRow. src.size() must equal StoredRowBytes(type, dim)
/// and out.size() must equal dim.
void DequantizeRow(DataType type, std::span<const uint8_t> src, std::span<float> out);

/// Accumulates the dequantized row into `acc` (acc[i] += row[i]) without
/// materializing an intermediate — the fused dequant+pool kernel used by
/// SLS-style pooling (§4.4: "dequantization and pooling").
void DequantizeAccumulate(DataType type, std::span<const uint8_t> src, std::span<float> acc);

/// Worst-case absolute quantization error for a row spanning [lo, hi].
[[nodiscard]] float MaxAbsError(DataType type, float lo, float hi);

}  // namespace sdm
