#include "embedding/pooling.h"

#include <algorithm>
#include <cassert>

namespace sdm {

void PoolRows(DataType dtype, PoolingMode mode,
              std::span<const std::span<const uint8_t>> rows, std::span<float> out) {
  std::fill(out.begin(), out.end(), 0.0f);
  for (const auto& row : rows) {
    DequantizeAccumulate(dtype, row, out);
  }
  if (mode == PoolingMode::kMean && !rows.empty()) {
    const float inv = 1.0f / static_cast<float>(rows.size());
    for (auto& v : out) v *= inv;
  }
}

void PoolDense(PoolingMode mode, std::span<const std::vector<float>> rows,
               std::span<float> out) {
  std::fill(out.begin(), out.end(), 0.0f);
  for (const auto& row : rows) {
    assert(row.size() == out.size());
    for (size_t i = 0; i < out.size(); ++i) out[i] += row[i];
  }
  if (mode == PoolingMode::kMean && !rows.empty()) {
    const float inv = 1.0f / static_cast<float>(rows.size());
    for (auto& v : out) v *= inv;
  }
}

}  // namespace sdm
