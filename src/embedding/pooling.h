// SLS-style pooling over quantized rows (SparseLengthsSum / EmbeddingBag).
//
// The embedding operator of a DLRM gathers `pooling factor` rows per table
// per sample and reduces them (sum or mean) into one dense vector that feeds
// the interaction layer. Kernels here consume *stored* (quantized) rows and
// fuse dequantization with accumulation.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.h"
#include "embedding/quantization.h"

namespace sdm {

enum class PoolingMode : uint8_t { kSum, kMean };

/// Accumulates `row` (stored bytes, dtype layout) into `acc`.
inline void PoolRow(DataType dtype, std::span<const uint8_t> row, std::span<float> acc) {
  DequantizeAccumulate(dtype, row, acc);
}

/// Pools a batch of stored rows into `out` (sized dim). `rows` are the
/// stored bytes of each gathered row.
void PoolRows(DataType dtype, PoolingMode mode,
              std::span<const std::span<const uint8_t>> rows, std::span<float> out);

/// Reference pooling over already-dequantized vectors (for goldens).
void PoolDense(PoolingMode mode, std::span<const std::vector<float>> rows,
               std::span<float> out);

/// CPU-cost model for one pooled lookup: dequant+accumulate cost scales with
/// pooled bytes; used by the simulator to charge virtual ns for operator
/// execution. Calibrated to a few GB/s of dequant throughput per core.
struct PoolingCostModel {
  double dequant_bytes_per_sec = 4e9;  ///< int8 dequant+add throughput
  double pool_fp32_bytes_per_sec = 8e9;  ///< fp32 add throughput (pre-dequantized)

  [[nodiscard]] SimDuration DequantPoolCost(Bytes stored_bytes) const {
    return Seconds(static_cast<double>(stored_bytes) / dequant_bytes_per_sec);
  }
  [[nodiscard]] SimDuration DensePoolCost(Bytes fp32_bytes) const {
    return Seconds(static_cast<double>(fp32_bytes) / pool_fp32_bytes_per_sec);
  }
};

}  // namespace sdm
