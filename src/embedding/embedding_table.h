// In-memory image of one quantized embedding table.
//
// An EmbeddingTableImage is the serialized artifact a trainer would publish:
// TableConfig + contiguous row-major quantized rows. The SDM store loads
// images onto the FM/SM tiers; tests use the deterministic generator to get
// bit-exact reference rows back.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "embedding/table_config.h"

namespace sdm {

class EmbeddingTableImage {
 public:
  /// Builds an image with all rows zero-quantized.
  explicit EmbeddingTableImage(TableConfig config);

  /// Deterministically generates row contents: row r's elements are drawn
  /// from a per-row RNG seeded with (seed, r), uniform in [-1, 1]. The same
  /// (config, seed) always produces identical bytes.
  [[nodiscard]] static EmbeddingTableImage GenerateRandom(TableConfig config, uint64_t seed);

  [[nodiscard]] const TableConfig& config() const { return config_; }
  [[nodiscard]] Bytes row_bytes() const { return config_.row_bytes(); }
  [[nodiscard]] uint64_t num_rows() const { return config_.num_rows; }
  [[nodiscard]] Bytes size_bytes() const { return data_.size(); }

  /// Stored (quantized) bytes of one row.
  [[nodiscard]] std::span<const uint8_t> Row(RowIndex row) const;
  [[nodiscard]] std::span<uint8_t> MutableRow(RowIndex row);

  /// Reference dequantization of one row (allocates; for tests/goldens).
  [[nodiscard]] std::vector<float> DequantizedRow(RowIndex row) const;

  /// Overwrites one row from float values (quantizing on the way in).
  Status SetRow(RowIndex row, std::span<const float> values);

  /// Raw bytes of the whole image (what gets written to a device).
  [[nodiscard]] std::span<const uint8_t> bytes() const { return data_; }

  /// The float values GenerateRandom would assign to `row` — reference data
  /// for tests without materializing a second image.
  [[nodiscard]] static std::vector<float> ReferenceRowValues(const TableConfig& config,
                                                             uint64_t seed, RowIndex row);

 private:
  TableConfig config_;
  std::vector<uint8_t> data_;
};

}  // namespace sdm
