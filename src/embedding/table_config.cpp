#include "embedding/table_config.h"

namespace sdm {

Bytes ModelConfig::TotalBytes() const {
  Bytes total = 0;
  for (const auto& t : tables) total += t.total_bytes();
  return total;
}

Bytes ModelConfig::BytesFor(TableRole role) const {
  Bytes total = 0;
  for (const auto& t : tables) {
    if (t.role == role) total += t.total_bytes();
  }
  return total;
}

size_t ModelConfig::CountFor(TableRole role) const {
  size_t n = 0;
  for (const auto& t : tables) {
    if (t.role == role) ++n;
  }
  return n;
}

double ModelConfig::AvgPoolingFactor(TableRole role) const {
  double sum = 0;
  size_t n = 0;
  for (const auto& t : tables) {
    if (t.role == role) {
      sum += t.avg_pooling_factor;
      ++n;
    }
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

double ModelConfig::BytesPerQuery() const {
  double user = 0;
  double item = 0;
  for (const auto& t : tables) {
    if (t.role == TableRole::kUser) {
      user += t.bytes_per_query();
    } else {
      item += t.bytes_per_query();
    }
  }
  return static_cast<double>(user_batch_size) * user +
         static_cast<double>(item_batch_size) * item;
}

double ModelConfig::LookupsPerQuery(TableRole role) const {
  double lookups = 0;
  const double batch = role == TableRole::kUser ? user_batch_size : item_batch_size;
  for (const auto& t : tables) {
    if (t.role == role) lookups += t.avg_pooling_factor * batch;
  }
  return lookups;
}

}  // namespace sdm
