// Embedding-table pruning and de-pruning (paper §4.5, Algorithm 2).
//
// Post-training pruning removes near-zero rows and introduces a *mapping
// tensor* translating unpruned indices to pruned ones (-1 for removed rows).
// Serving a pruned table from SM needs either two SM accesses per lookup or
// the mapping tensor resident in FM — FM that is taken away from the cache.
// De-pruning at load time (Algorithm 2) rebuilds the dense table with zero
// rows so the mapping tensor disappears, trading cheap SM capacity for FM.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "embedding/embedding_table.h"

namespace sdm {

/// Sentinel in the mapping tensor for a pruned (removed) row.
constexpr int64_t kPrunedRow = -1;

/// Mapping tensor: unpruned index -> pruned index or kPrunedRow.
/// Size = NumRow(unpruned) * IdxType (paper uses 4- or 8-byte indices).
struct MappingTensor {
  std::vector<int64_t> map;
  uint32_t index_bytes = 4;  ///< 4 or 8; affects FM footprint only

  [[nodiscard]] Bytes size_bytes() const { return map.size() * index_bytes; }
  [[nodiscard]] uint64_t num_unpruned_rows() const { return map.size(); }

  /// Pruned-space index for `unpruned`, or nullopt if the row was removed.
  [[nodiscard]] std::optional<RowIndex> Lookup(RowIndex unpruned) const {
    if (unpruned >= map.size()) return std::nullopt;
    const int64_t v = map[unpruned];
    if (v == kPrunedRow) return std::nullopt;
    return static_cast<RowIndex>(v);
  }
};

/// A pruned table: compacted rows plus the mapping tensor.
struct PrunedTable {
  EmbeddingTableImage rows;  ///< config().num_rows == number of kept rows
  MappingTensor mapping;
  uint64_t unpruned_num_rows = 0;
};

/// Prunes `image`, keeping each row independently with probability
/// `keep_fraction` (deterministic given `seed`); rows whose dequantized
/// L2 norm is exactly 0 are always pruned first, mirroring the "values very
/// close to 0 are heuristically removed" rule.
[[nodiscard]] PrunedTable PruneTable(const EmbeddingTableImage& image, double keep_fraction,
                                     uint64_t seed);

/// Decides per row whether it survives pruning. Used to model production
/// pruning, which removes *cold* (rarely-accessed, near-zero) rows — the
/// reason de-pruning adds only ~2.5% extra requests in the paper (§4.5).
using PruneKeepPredicate = std::function<bool(RowIndex)>;

/// Prunes `image` keeping exactly the rows `keep(row)` approves (zero rows
/// are still always pruned).
[[nodiscard]] PrunedTable PruneTableWithPredicate(const EmbeddingTableImage& image,
                                                  const PruneKeepPredicate& keep);

/// Algorithm 2: reconstructs a dense table of unpruned_num_rows rows, with
/// zero rows where the mapping says kPrunedRow. The result needs no mapping
/// tensor at serving time.
[[nodiscard]] EmbeddingTableImage DeprunedTable(const PrunedTable& pruned);

/// FM bytes freed by de-pruning (the mapping tensor) and SM bytes added
/// (the zero rows), for capacity-planning reports.
struct DepruneFootprint {
  Bytes fm_bytes_freed = 0;
  Bytes sm_bytes_added = 0;
};
[[nodiscard]] DepruneFootprint ComputeDepruneFootprint(const PrunedTable& pruned);

}  // namespace sdm
