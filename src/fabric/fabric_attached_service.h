// FabricAttachedService — a SharedDeviceService on the far side of a fabric
// (ROADMAP "Multi-host queues / disaggregated SM"; the real counterpart of
// the §5.2 ScaleOutModel's analytic remote-embedding penalty).
//
// PR 4's SharedDeviceService let N tenant stores WITHIN one host share a
// device stack. This wraps the same service for N HOSTS of a cluster: the
// device stack lives behind a FabricLink per device port (latency +
// bandwidth + optional per-hop queueing, installed in front of each
// IoEngine submission), and every host attaches exactly like a tenant
// shard. Host attribution rides the tenant machinery unchanged — HostId IS
// the TenantId the fair-share TenantIoShare ledger and the (tenant, table)
// throttle key on, so `cross_tenant_hits` reads as cross-HOST single-flight
// hits: reads one host's queries rode that another host's read paid for.
//
// What the fabric buys over per-host local SM: hosts serving replicas of
// one model content-dedup to ONE extent set (the registry keys on
// name+size+hash, cross-tenant only), so their overlapping hot blocks
// single-flight in the shared per-device BatchSchedulers — the wider the
// fabric RTT holds reads in flight, the more late hosts join them instead
// of reissuing. What it costs: every doorbell and every read payload pays
// the link's latency/serialization. bench_table9_m2_scaleout measures both
// sides against the analytic model.
//
// Table placement happens at load time through the attached stores as
// usual; load-time writes are treated as offline (they do not traverse the
// fabric — only the serving-path IO does).
//
// Single-threaded on one EventLoop like everything it owns; the service
// must outlive every attached host's store.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "fabric/fabric_link.h"
#include "tenant/shared_device_service.h"

namespace sdm {

struct FabricServiceConfig {
  /// The remote SM device stack (devices, engines, schedulers, throttle).
  SharedDeviceConfig device;
  /// Fabric hop installed in front of each device's IoEngine. An instant
  /// link (the default) makes the service behave exactly like a local
  /// SharedDeviceService — the byte-identity anchor.
  FabricLinkConfig link;
};

class FabricAttachedService {
 public:
  FabricAttachedService(FabricServiceConfig config, EventLoop* loop);

  FabricAttachedService(const FabricAttachedService&) = delete;
  FabricAttachedService& operator=(const FabricAttachedService&) = delete;

  /// Registers one host and returns its identity on the service — the
  /// TenantId that scopes its throttle keys, scheduler attribution, and
  /// extent-dedup domain (hosts dedup against each OTHER, never against
  /// themselves — exactly the tenant rule).
  TenantId AttachHost(std::string name, TenantClass cls = TenantClass::kForeground);

  [[nodiscard]] size_t host_count() const { return service_.tenant_count(); }

  /// The inner device stack. Stores attach to it via
  /// SdmStoreConfig::shared_device exactly like tenant shards.
  [[nodiscard]] SharedDeviceService& device_service() { return service_; }
  [[nodiscard]] const FabricLink& link(size_t device) const { return *links_[device]; }
  [[nodiscard]] const FabricLinkConfig& link_config() const { return link_config_; }

  /// One host's fair-share ledger (lane bus bytes, cross-HOST single-flight
  /// hits), aggregated over every device.
  [[nodiscard]] TenantIoShare host_io_share(TenantId id) const {
    return service_.tenant_io_share(id);
  }
  [[nodiscard]] SimDuration host_throttle_queue_time(TenantId id) const {
    return service_.throttle_queue_time(id);
  }

  /// Fabric traffic aggregated over every device link.
  [[nodiscard]] FabricLinkStats fabric_stats() const;

  /// Routes scripted faults to the whole remote stack: media faults to the
  /// devices (via the inner service) and drop/partition windows to each
  /// device's fabric link. Pass nullptr to detach.
  void InstallFaultInjector(FaultInjector* injector);

 private:
  FabricLinkConfig link_config_;
  SharedDeviceService service_;
  std::vector<std::unique_ptr<FabricLink>> links_;  ///< one per device port
};

}  // namespace sdm
