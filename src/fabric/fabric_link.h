// FabricLink — the fabric hop in front of a disaggregated SM device stack
// (ROADMAP "Multi-host queues / disaggregated SM"; the measured version of
// the §5.2 ScaleOutModel's fixed analytic network penalty).
//
// Models one full-duplex host-side port of a fabric-attached device: each
// direction has a one-way propagation latency, an optional finite bandwidth
// (a transfer pays payload/bandwidth serialization time), and optional
// per-hop FIFO queueing — a transfer cannot start serializing until the
// previous one in its direction finished, the store-and-forward queue of a
// fabric switch port. Requests (ring doorbells carrying SQEs) and responses
// (read payloads coming back) ride opposite directions and never contend
// with each other.
//
// An INSTANT link (zero latency, unlimited bandwidth) delivers callbacks
// synchronously, so a zero-latency fabric is event-order identical to no
// fabric at all — the byte-identity anchor the cluster tests pin
// (disaggregated mode with an instant fabric == MultiTenantHost::RunShared
// with the same stores). Traffic is still accounted, so an instant link
// reports how many bytes WOULD have crossed.
#pragma once

#include "common/event_loop.h"
#include "common/types.h"
#include "obs/observability.h"

namespace sdm {

struct FabricLinkConfig {
  /// One-way propagation latency per direction.
  SimDuration latency{0};
  /// Serialization bandwidth per direction (bytes/sec; 0 = unlimited).
  double bandwidth_bytes_per_sec = 0;
  /// Per-hop FIFO queueing: transfers in one direction serialize behind
  /// each other. Meaningless without a finite bandwidth.
  bool queueing = true;

  /// Instant links add no virtual time and deliver synchronously.
  [[nodiscard]] bool instant() const {
    return latency <= SimDuration(0) && bandwidth_bytes_per_sec <= 0;
  }
};

struct FabricLinkStats {
  uint64_t requests = 0;   ///< host->device transfers (doorbells)
  uint64_t responses = 0;  ///< device->host transfers (read payloads)
  Bytes request_bytes = 0;
  Bytes response_bytes = 0;
  /// Total time transfers waited behind earlier ones in their direction
  /// (nonzero only with queueing and a finite bandwidth).
  SimDuration queue_time;
  /// Transfers lost to injected fabric-drop windows (the payload vanished;
  /// only an IO deadline recovers the waiting request).
  uint64_t dropped = 0;
  /// Transfers that waited out an injected partition window.
  uint64_t partition_deferred = 0;
};

class FaultInjector;

class FabricLink {
 public:
  FabricLink(FabricLinkConfig config, EventLoop* loop);

  FabricLink(const FabricLink&) = delete;
  FabricLink& operator=(const FabricLink&) = delete;

  /// Carries `payload` bytes host->device, then runs `deliver`. Instant
  /// links run it synchronously.
  void Request(Bytes payload, EventLoop::Callback deliver);

  /// Carries `payload` bytes device->host, then runs `deliver`.
  void Response(Bytes payload, EventLoop::Callback deliver);

  [[nodiscard]] const FabricLinkConfig& config() const { return config_; }
  [[nodiscard]] const FabricLinkStats& stats() const { return stats_; }

  /// Installs (or clears, with nullptr) a scripted fault injector
  /// (src/fault): drop windows lose transfers (the deliver callback is
  /// discarded), partition windows defer a transfer's start until the
  /// window heals. Fabric faults apply only to non-instant links — an
  /// instant link models no fabric at all, so it cannot fail. A null
  /// injector is byte-identical to today.
  void set_fault_injector(FaultInjector* injector, int device_index) {
    injector_ = injector;
    device_index_ = device_index;
  }

  /// Cross-shard delivery (src/common/sharded_runtime.h): when set, a
  /// transfer's arrival is handed to `deliver_to(arrival_time, cb)` —
  /// which posts it to the RECEIVING shard's loop — instead of being
  /// scheduled on this link's own loop. Timing (serialization, queueing,
  /// partition deferral) is still computed here against the SENDING
  /// shard's clock, which owns this direction's busy state. The one-way
  /// latency is then the sharded runtime's lookahead, so arrival_time is
  /// always at least one lookahead ahead of the sender.
  using Delivery = std::function<void(SimTime at, EventLoop::Callback cb)>;
  void set_remote_delivery(Delivery deliver_to) { delivery_ = std::move(deliver_to); }

  /// Observability (src/obs): windowed metrics under `<name>fabric/` and one
  /// trace track for transfer spans. Null obs keeps every handle null.
  void set_obs(Observability* obs, const std::string& name);

 private:
  /// One direction's serialization state.
  struct Direction {
    SimTime busy_until{};
  };

  void Traverse(Direction& dir, Bytes payload, EventLoop::Callback deliver,
                const char* span_name);

  FabricLinkConfig config_;
  EventLoop* loop_;
  Delivery delivery_;  ///< cross-shard handoff; empty = deliver locally
  FaultInjector* injector_ = nullptr;
  int device_index_ = -1;
  Direction request_dir_;
  Direction response_dir_;
  FabricLinkStats stats_;

  // ---- Observability (src/obs); all null when off ----
  WindowedCounter* obs_transfers_ = nullptr;
  WindowedCounter* obs_bytes_ = nullptr;
  WindowedCounter* obs_dropped_ = nullptr;
  WindowedCounter* obs_deferred_ = nullptr;
  SpanRecorder* obs_spans_ = nullptr;
  SpanRecorder::TrackId obs_track_ = 0;
};

}  // namespace sdm
