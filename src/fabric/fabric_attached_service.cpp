#include "fabric/fabric_attached_service.h"

#include <cassert>
#include <utility>

namespace sdm {

FabricAttachedService::FabricAttachedService(FabricServiceConfig config, EventLoop* loop)
    : link_config_(config.link), service_(std::move(config.device), loop) {
  assert(loop != nullptr);
  links_.reserve(service_.device_count());
  for (size_t d = 0; d < service_.device_count(); ++d) {
    links_.push_back(std::make_unique<FabricLink>(link_config_, loop));
    service_.io_engine(d).set_fabric_link(links_.back().get());
    if (service_.config().obs != nullptr) {
      links_.back()->set_obs(
          service_.config().obs,
          service_.config().obs_prefix + "dev" + std::to_string(d) + "/");
    }
  }
}

TenantId FabricAttachedService::AttachHost(std::string name, TenantClass cls) {
  return service_.RegisterTenant(std::move(name), cls);
}

void FabricAttachedService::InstallFaultInjector(FaultInjector* injector) {
  service_.InstallFaultInjector(injector);
  for (size_t d = 0; d < links_.size(); ++d) {
    links_[d]->set_fault_injector(injector, static_cast<int>(d));
  }
}

FabricLinkStats FabricAttachedService::fabric_stats() const {
  FabricLinkStats agg;
  for (const auto& link : links_) {
    const FabricLinkStats& one = link->stats();
    agg.requests += one.requests;
    agg.responses += one.responses;
    agg.request_bytes += one.request_bytes;
    agg.response_bytes += one.response_bytes;
    agg.queue_time += one.queue_time;
    agg.dropped += one.dropped;
    agg.partition_deferred += one.partition_deferred;
  }
  return agg;
}

}  // namespace sdm
