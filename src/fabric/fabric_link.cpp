#include "fabric/fabric_link.h"

#include <cassert>
#include <utility>

#include "fault/fault_injector.h"

namespace sdm {

FabricLink::FabricLink(FabricLinkConfig config, EventLoop* loop)
    : config_(config), loop_(loop) {
  assert(loop != nullptr);
  assert(config.latency >= SimDuration(0));
  assert(config.bandwidth_bytes_per_sec >= 0);
}

void FabricLink::set_obs(Observability* obs, const std::string& name) {
  obs_transfers_ = ObsCounter(obs, name + "fabric/transfers");
  obs_bytes_ = ObsCounter(obs, name + "fabric/bytes");
  obs_dropped_ = ObsCounter(obs, name + "fabric/dropped");
  obs_deferred_ = ObsCounter(obs, name + "fabric/deferred");
  obs_spans_ = ObsSpans(obs);
  if (obs_spans_ != nullptr) {
    std::string process = name;
    if (!process.empty() && process.back() == '/') process.pop_back();
    obs_track_ = obs_spans_->Track(process, "fabric");
  }
}

void FabricLink::Request(Bytes payload, EventLoop::Callback deliver) {
  ++stats_.requests;
  stats_.request_bytes += payload;
  if (obs_transfers_ != nullptr) {
    obs_transfers_->Add(loop_->Now());
    obs_bytes_->Add(loop_->Now(), payload);
  }
  Traverse(request_dir_, payload, std::move(deliver), "fabric.request");
}

void FabricLink::Response(Bytes payload, EventLoop::Callback deliver) {
  ++stats_.responses;
  stats_.response_bytes += payload;
  if (obs_transfers_ != nullptr) {
    obs_transfers_->Add(loop_->Now());
    obs_bytes_->Add(loop_->Now(), payload);
  }
  Traverse(response_dir_, payload, std::move(deliver), "fabric.response");
}

void FabricLink::Traverse(Direction& dir, Bytes payload, EventLoop::Callback deliver,
                          const char* span_name) {
  if (config_.instant()) {
    // Synchronous delivery keeps event ordering identical to no fabric at
    // all — the zero-latency byte-identity the cluster tests pin.
    deliver();
    return;
  }
  if (injector_ != nullptr && injector_->DrawFabricDrop(device_index_)) {
    // The transfer vanishes: `deliver` is discarded, so whatever waited on
    // it sees silence (and is rescued, if at all, by an IO deadline).
    // Buffers held by the dropped closure free through its captures.
    ++stats_.dropped;
    if (obs_dropped_ != nullptr) obs_dropped_->Add(loop_->Now());
    if (obs_spans_ != nullptr) obs_spans_->Instant(obs_track_, "fabric.drop", loop_->Now());
    return;
  }
  const SimTime now = loop_->Now();
  SimDuration serialization{0};
  if (config_.bandwidth_bytes_per_sec > 0) {
    serialization =
        Seconds(static_cast<double>(payload) / config_.bandwidth_bytes_per_sec);
  }
  SimTime start = now;
  if (config_.queueing && dir.busy_until > start) start = dir.busy_until;
  if (injector_ != nullptr) {
    // Partition: nothing crosses until the window heals; the transfer
    // queues (store-and-forward) rather than being lost.
    const SimTime deferred = injector_->DeferFabricTransfer(device_index_, start);
    if (deferred > start) {
      ++stats_.partition_deferred;
      if (obs_deferred_ != nullptr) obs_deferred_->Add(now);
      start = deferred;
    }
  }
  stats_.queue_time += start - now;
  dir.busy_until = start + serialization;
  const SimTime arrival = start + serialization + config_.latency;
  if (obs_spans_ != nullptr) {
    obs_spans_->Span(obs_track_, span_name, now, arrival,
                     "{\"bytes\":" + std::to_string(payload) + "}");
  }
  if (delivery_) {
    delivery_(arrival, std::move(deliver));
    return;
  }
  loop_->ScheduleAt(arrival, std::move(deliver));
}

}  // namespace sdm
