#include "fabric/fabric_link.h"

#include <cassert>
#include <utility>

namespace sdm {

FabricLink::FabricLink(FabricLinkConfig config, EventLoop* loop)
    : config_(config), loop_(loop) {
  assert(loop != nullptr);
  assert(config.latency >= SimDuration(0));
  assert(config.bandwidth_bytes_per_sec >= 0);
}

void FabricLink::Request(Bytes payload, EventLoop::Callback deliver) {
  ++stats_.requests;
  stats_.request_bytes += payload;
  Traverse(request_dir_, payload, std::move(deliver));
}

void FabricLink::Response(Bytes payload, EventLoop::Callback deliver) {
  ++stats_.responses;
  stats_.response_bytes += payload;
  Traverse(response_dir_, payload, std::move(deliver));
}

void FabricLink::Traverse(Direction& dir, Bytes payload, EventLoop::Callback deliver) {
  if (config_.instant()) {
    // Synchronous delivery keeps event ordering identical to no fabric at
    // all — the zero-latency byte-identity the cluster tests pin.
    deliver();
    return;
  }
  const SimTime now = loop_->Now();
  SimDuration serialization{0};
  if (config_.bandwidth_bytes_per_sec > 0) {
    serialization =
        Seconds(static_cast<double>(payload) / config_.bandwidth_bytes_per_sec);
  }
  SimTime start = now;
  if (config_.queueing && dir.busy_until > start) start = dir.busy_until;
  stats_.queue_time += start - now;
  dir.busy_until = start + serialization;
  loop_->ScheduleAt(start + serialization + config_.latency, std::move(deliver));
}

}  // namespace sdm
