#include "obs/slo_watchdog.h"

#include <cstdio>

#include "common/logging.h"

namespace sdm {

namespace {

double ExtractStat(SloRule::Stat stat, const WindowSample& w) {
  switch (stat) {
    case SloRule::Stat::kValue: return w.value;
    case SloRule::Stat::kCount: return static_cast<double>(w.count);
    case SloRule::Stat::kMean: return w.mean;
    case SloRule::Stat::kP50: return static_cast<double>(w.p50);
    case SloRule::Stat::kP95: return static_cast<double>(w.p95);
    case SloRule::Stat::kP99: return static_cast<double>(w.p99);
    case SloRule::Stat::kMax: return static_cast<double>(w.max);
  }
  return 0;
}

}  // namespace

SloWatchdog::SloWatchdog(std::vector<SloRule> rules) {
  rules_.reserve(rules.size());
  for (SloRule& r : rules) {
    if (r.for_windows < 1) r.for_windows = 1;
    rules_.push_back(RuleState{std::move(r), 0, false});
  }
}

void SloWatchdog::OnWindow(const std::string& metric, const WindowSample& w) {
  for (RuleState& state : rules_) {
    if (state.rule.metric != metric) continue;
    const double value = ExtractStat(state.rule.stat, w);
    const bool breach = state.rule.op == SloRule::Op::kAbove
                            ? value > state.rule.threshold
                            : value < state.rule.threshold;
    if (breach) {
      ++state.consecutive;
      if (state.consecutive >= state.rule.for_windows && !state.firing) {
        state.firing = true;
        events_.push_back(SloEvent{w.window_start_ns, state.rule.name, value,
                                   state.rule.threshold, state.consecutive, true});
        SDM_LOG_WARN << "SLO breach: " << state.rule.name << " (" << metric
                     << " = " << value << " vs " << state.rule.threshold << " for "
                     << state.consecutive << " windows) at t=" << w.window_start_ns
                     << "ns";
      }
    } else {
      if (state.firing) {
        events_.push_back(SloEvent{w.window_start_ns, state.rule.name, value,
                                   state.rule.threshold, state.consecutive, false});
        SDM_LOG_WARN << "SLO recovered: " << state.rule.name << " (" << metric
                     << " = " << value << ") at t=" << w.window_start_ns << "ns";
      }
      state.firing = false;
      state.consecutive = 0;
    }
  }
}

size_t SloWatchdog::firing() const {
  size_t n = 0;
  for (const RuleState& state : rules_) n += state.firing ? 1 : 0;
  return n;
}

void SloWatchdog::AppendEventJson(std::string* out, const SloEvent& e) {
  out->append("{\"t_ns\":");
  obs_internal::AppendJsonNumber(out, static_cast<double>(e.t_ns));
  out->append(",\"rule\":\"");
  out->append(e.rule);
  out->append("\",\"value\":");
  obs_internal::AppendJsonNumber(out, e.value);
  out->append(",\"threshold\":");
  obs_internal::AppendJsonNumber(out, e.threshold);
  out->append(",\"consecutive\":");
  obs_internal::AppendJsonNumber(out, e.consecutive);
  out->append(",\"fired\":");
  out->append(e.fired ? "true" : "false");
  out->push_back('}');
}

}  // namespace sdm
