// Observability owner (src/obs): one instance per event loop.
//
// Owns the metrics registry, span recorder, and SLO watchdog for everything
// running on one EventLoop. Single-loop simulations hold exactly one; the
// sharded runtime holds one per LP (device shard + each host) so recording
// never crosses a thread boundary, and the static Merged*Json exporters fold
// per-LP buffers into documents that are bit-identical to the single-loop
// export (metric names carry their source prefix, series merge by name,
// spans merge by (ts, track, seq)).
//
// Components hold `Observability*` that is nullptr when the subsystem is
// off; every accessor below is also null-safe to keep call sites one-liners.
#pragma once

#include <memory>
#include <span>
#include <string>

#include "obs/metrics.h"
#include "obs/obs_config.h"
#include "obs/slo_watchdog.h"
#include "obs/span_recorder.h"

namespace sdm {

class Observability {
 public:
  explicit Observability(const ObsConfig& config);

  /// Null when metrics are off.
  [[nodiscard]] MetricsRegistry* metrics() const { return metrics_.get(); }
  /// Null when tracing is off.
  [[nodiscard]] SpanRecorder* spans() const { return spans_.get(); }
  /// Null when metrics are off or no rules were configured.
  [[nodiscard]] SloWatchdog* slo() const { return slo_.get(); }

  /// Closes open metric windows. Call once after the run, before export.
  void Finalize();

  [[nodiscard]] std::string MetricsJson() const;
  [[nodiscard]] std::string TraceJson() const;
  [[nodiscard]] std::string SloJson() const;

  /// Merged exports over per-LP instances (null entries skipped). With a
  /// single instance these equal the instance's own exports.
  [[nodiscard]] static std::string MergedMetricsJson(
      std::span<Observability* const> instances);
  [[nodiscard]] static std::string MergedTraceJson(
      std::span<Observability* const> instances);
  [[nodiscard]] static std::string MergedSloJson(
      std::span<Observability* const> instances);

 private:
  std::unique_ptr<MetricsRegistry> metrics_;
  std::unique_ptr<SpanRecorder> spans_;
  std::unique_ptr<SloWatchdog> slo_;
};

// ---------------------------------------------------------------------------
// Null-safe handle resolution for instrumented components. Each returns the
// metric handle when that part of observability is on, else nullptr; the
// component stores the pointer and guards each hot-path update with one
// branch (`if (x_ != nullptr) x_->Add(...)`).
// ---------------------------------------------------------------------------

[[nodiscard]] inline WindowedCounter* ObsCounter(Observability* obs,
                                                 const std::string& name) {
  return obs != nullptr && obs->metrics() != nullptr ? obs->metrics()->Counter(name)
                                                     : nullptr;
}

[[nodiscard]] inline WindowedGauge* ObsGauge(Observability* obs,
                                             const std::string& name) {
  return obs != nullptr && obs->metrics() != nullptr ? obs->metrics()->Gauge(name)
                                                     : nullptr;
}

[[nodiscard]] inline WindowedHistogram* ObsHist(Observability* obs,
                                                const std::string& name) {
  return obs != nullptr && obs->metrics() != nullptr ? obs->metrics()->Hist(name)
                                                     : nullptr;
}

[[nodiscard]] inline SpanRecorder* ObsSpans(Observability* obs) {
  return obs != nullptr ? obs->spans() : nullptr;
}

}  // namespace sdm
