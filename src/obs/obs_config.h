// Observability knobs (src/obs).
//
// Everything here defaults OFF and byte-inert: with the knobs at their
// defaults no Observability object is created and no subsystem records
// anything. When enabled, observation is *timing-inert* — metrics and spans
// are pure functions of the virtual-time event stream and never schedule
// loop work, draw randomness, or touch another shard's state, so serving
// results stay byte-identical with observability on or off.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace sdm {

/// Declarative SLO rule evaluated against closed metric windows: "stat of
/// `metric` is `op` `threshold` for `for_windows` consecutive windows".
struct SloRule {
  /// Which statistic of the window to evaluate. kValue reads a counter's
  /// per-window delta or a gauge's last value; the rest apply to histograms.
  enum class Stat : uint8_t { kValue, kCount, kMean, kP50, kP95, kP99, kMax };
  enum class Op : uint8_t { kAbove, kBelow };

  std::string name;    ///< Event label, e.g. "p99-slo".
  std::string metric;  ///< Full metric name including source prefix.
  Stat stat = Stat::kValue;
  Op op = Op::kAbove;
  double threshold = 0;
  /// Breaches must persist this many consecutive windows before firing
  /// (debounce; 1 = fire on the first breaching window).
  int for_windows = 1;
};

struct ObsConfig {
  /// Windowed time-series metrics (QPS, latency percentiles, lane occupancy,
  /// cache hit rates, ... per metrics_interval of virtual time).
  bool enable_metrics = false;
  SimDuration metrics_interval = Millis(1);

  /// Query-lifecycle span tracing into bounded ring buffers, exportable as
  /// Chrome trace-event JSON (chrome://tracing / Perfetto).
  bool enable_tracing = false;
  /// Every Nth submitted query gets a full lifecycle trace (1 = all).
  uint32_t trace_sample_every = 1;
  /// Ring-buffer bound per recorder; new events beyond it are dropped
  /// (and counted) rather than evicting old ones.
  size_t trace_max_spans = size_t{1} << 16;

  /// Watchdog rules; evaluated only when enable_metrics is set.
  std::vector<SloRule> slo_rules;

  [[nodiscard]] bool enabled() const { return enable_metrics || enable_tracing; }
};

}  // namespace sdm
