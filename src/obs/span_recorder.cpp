#include "obs/span_recorder.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace sdm {

SpanRecorder::SpanRecorder(uint32_t sample_every, size_t max_events)
    : sample_every_(sample_every == 0 ? 1 : sample_every), max_events_(max_events) {}

SpanRecorder::TrackId SpanRecorder::Track(const std::string& process,
                                          const std::string& thread) {
  const auto [it, inserted] =
      track_ids_.try_emplace({process, thread}, static_cast<TrackId>(tracks_.size()));
  if (inserted) tracks_.push_back(TrackInfo{process, thread, 0});
  return it->second;
}

bool SpanRecorder::Admit() {
  if (events_.size() >= max_events_) {
    ++dropped_;
    return false;
  }
  return true;
}

void SpanRecorder::Span(TrackId track, const char* name, SimTime start, SimTime end,
                        std::string args_json) {
  assert(track < tracks_.size());
  if (!Admit()) return;
  events_.push_back(Event{start.nanos(), end.nanos(), track, tracks_[track].next_seq++,
                          name, std::move(args_json)});
}

void SpanRecorder::Instant(TrackId track, const char* name, SimTime at,
                           std::string args_json) {
  assert(track < tracks_.size());
  if (!Admit()) return;
  events_.push_back(
      Event{at.nanos(), -1, track, tracks_[track].next_seq++, name, std::move(args_json)});
}

namespace {

/// One emitted trace record: a span expands into a "b" and an "e" record
/// sharing an id; an instant stays one "i" record.
struct Rec {
  int64_t ts_ns;
  int pid;
  int tid;
  uint64_t track_seq;
  int phase;  ///< 0 = "b", 1 = "i", 2 = "e" — begins sort before same-ts ends.
  const SpanRecorder* owner;
  const void* span_key;  ///< Event identity for id pairing (null for instants).
  const char* name;
  const std::string* args;
};

void AppendTs(std::string* out, int64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(ns) / 1e3);
  out->append(buf);
}

void AppendCommon(std::string* out, const Rec& r) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\"pid\":%d,\"tid\":%d,\"ts\":", r.pid, r.tid);
  out->append(buf);
  AppendTs(out, r.ts_ns);
  out->append(",\"name\":\"");
  out->append(r.name);
  out->push_back('"');
  if (r.args != nullptr && !r.args->empty()) {
    out->append(",\"args\":");
    out->append(*r.args);
  }
}

}  // namespace

std::string SpanRecorder::ExportChromeTrace(
    std::span<const SpanRecorder* const> recorders) {
  // pid/tid assignment from sorted names, independent of registration order
  // and of how tracks are spread across recorders.
  std::map<std::string, std::map<std::string, int>> names;  // process -> threads
  for (const SpanRecorder* rec : recorders) {
    if (rec == nullptr) continue;
    for (const TrackInfo& t : rec->tracks_) names[t.process][t.thread] = 0;
  }
  std::map<std::string, int> pids;
  int next_pid = 0;
  for (auto& [process, threads] : names) {
    pids[process] = next_pid++;
    int next_tid = 0;
    for (auto& [thread, tid] : threads) tid = next_tid++;
  }

  std::vector<Rec> recs;
  for (const SpanRecorder* rec : recorders) {
    if (rec == nullptr) continue;
    for (const Event& ev : rec->events_) {
      const TrackInfo& t = rec->tracks_[ev.track];
      const int pid = pids[t.process];
      const int tid = names[t.process][t.thread];
      if (ev.end_ns < 0) {
        recs.push_back(Rec{ev.start_ns, pid, tid, ev.track_seq, 1, rec, nullptr,
                           ev.name, &ev.args});
      } else {
        recs.push_back(
            Rec{ev.start_ns, pid, tid, ev.track_seq, 0, rec, &ev, ev.name, &ev.args});
        recs.push_back(
            Rec{ev.end_ns, pid, tid, ev.track_seq, 2, rec, &ev, ev.name, nullptr});
      }
    }
  }
  std::sort(recs.begin(), recs.end(), [](const Rec& a, const Rec& b) {
    if (a.ts_ns != b.ts_ns) return a.ts_ns < b.ts_ns;
    if (a.pid != b.pid) return a.pid < b.pid;
    if (a.tid != b.tid) return a.tid < b.tid;
    if (a.track_seq != b.track_seq) return a.track_seq < b.track_seq;
    return a.phase < b.phase;
  });

  std::string out;
  out.reserve(256 + recs.size() * 96);
  out.append("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
  bool first = true;
  char buf[96];

  // Track-naming metadata first (ts-less), in pid/tid order.
  for (const auto& [process, pid] : pids) {
    if (!first) out.push_back(',');
    first = false;
    std::snprintf(buf, sizeof(buf), "{\"ph\":\"M\",\"pid\":%d,\"tid\":0,", pid);
    out.append(buf);
    out.append("\"name\":\"process_name\",\"args\":{\"name\":\"");
    out.append(process);
    out.append("\"}}");
    for (const auto& [thread, tid] : names[process]) {
      out.push_back(',');
      std::snprintf(buf, sizeof(buf), "{\"ph\":\"M\",\"pid\":%d,\"tid\":%d,", pid, tid);
      out.append(buf);
      out.append("\"name\":\"thread_name\",\"args\":{\"name\":\"");
      out.append(thread);
      out.append("\"}}");
    }
  }

  // Async-span ids in merged order (first "b" encounter), so numbering is a
  // function of the merged stream, not of per-recorder insertion order.
  std::map<const void*, uint64_t> span_ids;
  uint64_t next_id = 1;
  for (const Rec& r : recs) {
    if (!first) out.push_back(',');
    first = false;
    if (r.phase == 1) {
      out.append("{\"ph\":\"i\",\"s\":\"t\",\"cat\":\"sdm\",");
      AppendCommon(&out, r);
      out.append("}");
      continue;
    }
    auto [it, inserted] = span_ids.try_emplace(r.span_key, next_id);
    if (inserted) ++next_id;
    std::snprintf(buf, sizeof(buf), "{\"ph\":\"%c\",\"cat\":\"sdm\",\"id\":\"0x%llx\",",
                  r.phase == 0 ? 'b' : 'e',
                  static_cast<unsigned long long>(it->second));
    out.append(buf);
    AppendCommon(&out, r);
    out.append("}");
  }
  out.append("]}");
  return out;
}

}  // namespace sdm
