// Windowed time-series metrics (src/obs).
//
// A MetricsRegistry holds named windowed counters/gauges/histograms. Unlike
// the cumulative StatsRegistry (src/common/stats.h), every metric here is
// bucketed into fixed virtual-time windows and emits one series point per
// *active* window — the in-run time series the end-of-run reports cannot
// express (when did p99 spike, when did the hedges fire).
//
// Windows close lazily at update time, not on a scheduled sampler tick: a
// self-rescheduling loop event would keep RunUntilIdle from terminating and
// would behave differently on the sharded runtime's transiently-idle per-LP
// loops. Closing on the next update (or at Finalize) makes every window a
// pure function of the timestamped update stream, so exports are bit-identical
// across worker counts and between the sharded and single-loop runtimes.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/types.h"

namespace sdm {

class MetricsRegistry;

/// One closed window of any metric. Counters/gauges fill `value`; histograms
/// fill count/mean/percentiles/max and leave `value` at 0.
struct WindowSample {
  int64_t window_start_ns = 0;
  double value = 0;
  uint64_t count = 0;
  double mean = 0;
  int64_t p50 = 0;
  int64_t p95 = 0;
  int64_t p99 = 0;
  int64_t max = 0;
};

/// Per-window delta counter. Sparse: windows with no Add emit no point.
class WindowedCounter {
 public:
  void Add(SimTime now, uint64_t delta = 1);

  [[nodiscard]] const std::vector<WindowSample>& series() const { return series_; }

 private:
  friend class MetricsRegistry;
  WindowedCounter(MetricsRegistry* owner, std::string name)
      : owner_(owner), name_(std::move(name)) {}
  void Flush();

  MetricsRegistry* owner_;
  std::string name_;
  bool open_ = false;
  int64_t window_start_ = 0;
  int64_t window_end_ = 0;  ///< exclusive; in-window updates skip the divide
  uint64_t value_ = 0;
  std::vector<WindowSample> series_;
};

/// Last-write-wins per-window gauge (queue depth, parked bytes, ...).
class WindowedGauge {
 public:
  void Set(SimTime now, double value);

  [[nodiscard]] const std::vector<WindowSample>& series() const { return series_; }

 private:
  friend class MetricsRegistry;
  WindowedGauge(MetricsRegistry* owner, std::string name)
      : owner_(owner), name_(std::move(name)) {}
  void Flush();

  MetricsRegistry* owner_;
  std::string name_;
  bool open_ = false;
  int64_t window_start_ = 0;
  int64_t window_end_ = 0;
  double value_ = 0;
  std::vector<WindowSample> series_;
};

/// Per-window latency distribution; the histogram resets at every window
/// close, so each point is that window's own p50/p95/p99, not a cumulative.
class WindowedHistogram {
 public:
  void Record(SimTime now, int64_t value);
  void Record(SimTime now, SimDuration d) { Record(now, d.nanos()); }

  [[nodiscard]] const std::vector<WindowSample>& series() const { return series_; }

 private:
  friend class MetricsRegistry;
  WindowedHistogram(MetricsRegistry* owner, std::string name)
      : owner_(owner), name_(std::move(name)) {}
  void Flush();

  MetricsRegistry* owner_;
  std::string name_;
  bool open_ = false;
  int64_t window_start_ = 0;
  int64_t window_end_ = 0;
  Histogram hist_;
  std::vector<WindowSample> series_;
};

/// Owns windowed metrics by name. Handles are stable pointers resolved once
/// at component construction; hot paths pay one comparison + add per event.
class MetricsRegistry {
 public:
  using WindowListener =
      std::function<void(const std::string& name, const WindowSample&)>;

  explicit MetricsRegistry(SimDuration interval);
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  [[nodiscard]] WindowedCounter* Counter(const std::string& name);
  [[nodiscard]] WindowedGauge* Gauge(const std::string& name);
  [[nodiscard]] WindowedHistogram* Hist(const std::string& name);

  /// Closes every open window. Call once after the run, before export;
  /// idempotent (a second call with no new updates flushes nothing).
  void Finalize();

  /// Invoked on every window close, in close order (deterministic: closes
  /// happen at update time). The SLO watchdog subscribes here.
  void SetWindowListener(WindowListener listener) { listener_ = std::move(listener); }

  [[nodiscard]] int64_t interval_ns() const { return interval_ns_; }

  /// A view of one metric's closed windows, for export.
  struct SeriesRef {
    const std::string* name;
    const char* kind;  ///< "counter" | "gauge" | "hist"
    const std::vector<WindowSample>* series;
  };

  /// Appends every non-empty series to `out`. The merged exporter sorts the
  /// combined list by name, so per-LP registries with disjoint prefixes and
  /// the single-loop registry holding all names produce identical JSON.
  void CollectSeries(std::vector<SeriesRef>* out) const;

  /// Writes one series as a JSON object {"name":..,"kind":..,"points":[..]}.
  static void AppendSeriesJson(std::string* out, const SeriesRef& ref);

 private:
  friend class WindowedCounter;
  friend class WindowedGauge;
  friend class WindowedHistogram;

  [[nodiscard]] int64_t WindowStart(SimTime now) const {
    return now.nanos() / interval_ns_ * interval_ns_;
  }
  void NotifyWindow(const std::string& name, const WindowSample& w) {
    if (listener_) listener_(name, w);
  }

  int64_t interval_ns_;
  WindowListener listener_;
  std::map<std::string, std::unique_ptr<WindowedCounter>> counters_;
  std::map<std::string, std::unique_ptr<WindowedGauge>> gauges_;
  std::map<std::string, std::unique_ptr<WindowedHistogram>> hists_;
};

namespace obs_internal {
/// Deterministic JSON number: integral values print as integers, the rest
/// round-trip via %.17g — byte-stable across runs and worker counts.
void AppendJsonNumber(std::string* out, double v);
}  // namespace obs_internal

}  // namespace sdm
