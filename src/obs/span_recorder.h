// Query-lifecycle span tracing (src/obs).
//
// Dapper-style causal tracing over virtual time: components record spans
// (plan, lane residency, device service, fabric hop, retry/hedge/repair) and
// instants (join, merge, promote, sick transition) onto named tracks. Events
// land in a bounded ring per recorder — when full, NEW events are dropped and
// counted, never evicting history — and export merges any number of recorders
// (one per LP under the sharded runtime) into one Chrome trace-event JSON
// document viewable in chrome://tracing or Perfetto.
//
// Recording is timing-inert: virtual timestamps are read, never advanced,
// and nothing is scheduled. Export determinism: pids/tids are assigned from
// the *sorted* process/thread names at export time and events are globally
// sorted by (ts, pid, tid, per-track seq, phase), so the emitted bytes do not
// depend on registration order, recorder count, or worker interleaving.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/types.h"

namespace sdm {

class SpanRecorder {
 public:
  using TrackId = uint32_t;

  SpanRecorder(uint32_t sample_every, size_t max_events);

  /// Interns a (process, thread) track — e.g. ("host0", "queries") or
  /// ("svc/dev0", "sched"). Idempotent; resolve once at component setup.
  [[nodiscard]] TrackId Track(const std::string& process, const std::string& thread);

  /// Records a completed span [start, end] on `track`. `args_json` is either
  /// empty or a complete JSON object ("{\"rows\":3}") emitted verbatim.
  void Span(TrackId track, const char* name, SimTime start, SimTime end,
            std::string args_json = {});

  /// Records a zero-duration instant event.
  void Instant(TrackId track, const char* name, SimTime at, std::string args_json = {});

  /// Query-sampling period for the inference layer (1 = trace every query).
  [[nodiscard]] uint32_t sample_every() const { return sample_every_; }

  [[nodiscard]] size_t event_count() const { return events_.size(); }
  [[nodiscard]] uint64_t dropped() const { return dropped_; }

  /// Merges the recorders' rings into one Chrome trace-event JSON document.
  [[nodiscard]] static std::string ExportChromeTrace(
      std::span<const SpanRecorder* const> recorders);

 private:
  struct TrackInfo {
    std::string process;
    std::string thread;
    uint64_t next_seq = 0;  ///< Per-track record order, the merge tie-break.
  };

  struct Event {
    int64_t start_ns;
    int64_t end_ns;  ///< < 0 marks an instant.
    TrackId track;
    uint64_t track_seq;
    const char* name;  ///< String literals only (component-owned static text).
    std::string args;
  };

  [[nodiscard]] bool Admit();

  uint32_t sample_every_;
  size_t max_events_;
  uint64_t dropped_ = 0;
  std::vector<TrackInfo> tracks_;
  std::map<std::pair<std::string, std::string>, TrackId> track_ids_;
  std::vector<Event> events_;
};

}  // namespace sdm
