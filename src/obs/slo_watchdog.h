// Declarative SLO watchdogs over windowed metrics (src/obs).
//
// Rules ("p99 above X for K consecutive windows", "availability below Y")
// are evaluated synchronously as metric windows close, so verdicts are a
// pure function of the metric stream — deterministic across runs and across
// the sharded runtime's worker counts. A rule fires once when its breach
// streak reaches for_windows and clears once on the first non-breaching
// window; both edges emit a structured SloEvent and a WARN log record
// (routed through the pluggable log sink).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/obs_config.h"

namespace sdm {

/// One fire or clear edge of a rule.
struct SloEvent {
  int64_t t_ns = 0;  ///< Start of the window that produced the edge.
  std::string rule;
  double value = 0;      ///< Observed stat in that window.
  double threshold = 0;
  int consecutive = 0;   ///< Breach streak length at the edge.
  bool fired = false;    ///< true = fired, false = cleared.
};

class SloWatchdog {
 public:
  explicit SloWatchdog(std::vector<SloRule> rules);

  /// Feed one closed window; wire this as the MetricsRegistry's listener.
  void OnWindow(const std::string& metric, const WindowSample& w);

  [[nodiscard]] const std::vector<SloEvent>& events() const { return events_; }

  /// Number of rules currently in the firing state.
  [[nodiscard]] size_t firing() const;

  /// Appends events as JSON objects, comma-separated.
  static void AppendEventJson(std::string* out, const SloEvent& e);

 private:
  struct RuleState {
    SloRule rule;
    int consecutive = 0;
    bool firing = false;
  };

  std::vector<RuleState> rules_;
  std::vector<SloEvent> events_;
};

}  // namespace sdm
