#include "obs/metrics.h"

#include <cassert>
#include <cmath>
#include <cstdio>

namespace sdm {

namespace obs_internal {

void AppendJsonNumber(std::string* out, double v) {
  char buf[40];
  if (v == std::floor(v) && std::fabs(v) < 9.0e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  out->append(buf);
}

}  // namespace obs_internal

// ---------------------------------------------------------------------------
// WindowedCounter
// ---------------------------------------------------------------------------

void WindowedCounter::Add(SimTime now, uint64_t delta) {
  // Fast path: still inside the open window — two compares, no division.
  const int64_t t = now.nanos();
  if (!open_ || t < window_start_ || t >= window_end_) {
    Flush();
    open_ = true;
    window_start_ = owner_->WindowStart(now);
    window_end_ = window_start_ + owner_->interval_ns();
    value_ = 0;
  }
  value_ += delta;
}

void WindowedCounter::Flush() {
  if (!open_) return;
  open_ = false;
  WindowSample w;
  w.window_start_ns = window_start_;
  w.value = static_cast<double>(value_);
  series_.push_back(w);
  owner_->NotifyWindow(name_, w);
}

// ---------------------------------------------------------------------------
// WindowedGauge
// ---------------------------------------------------------------------------

void WindowedGauge::Set(SimTime now, double value) {
  const int64_t t = now.nanos();
  if (!open_ || t < window_start_ || t >= window_end_) {
    Flush();
    open_ = true;
    window_start_ = owner_->WindowStart(now);
    window_end_ = window_start_ + owner_->interval_ns();
  }
  value_ = value;
}

void WindowedGauge::Flush() {
  if (!open_) return;
  open_ = false;
  WindowSample w;
  w.window_start_ns = window_start_;
  w.value = value_;
  series_.push_back(w);
  owner_->NotifyWindow(name_, w);
}

// ---------------------------------------------------------------------------
// WindowedHistogram
// ---------------------------------------------------------------------------

void WindowedHistogram::Record(SimTime now, int64_t value) {
  const int64_t t = now.nanos();
  if (!open_ || t < window_start_ || t >= window_end_) {
    Flush();
    open_ = true;
    window_start_ = owner_->WindowStart(now);
    window_end_ = window_start_ + owner_->interval_ns();
  }
  hist_.Record(value);
}

void WindowedHistogram::Flush() {
  if (!open_) return;
  open_ = false;
  WindowSample w;
  w.window_start_ns = window_start_;
  w.count = hist_.count();
  w.mean = hist_.mean();
  w.p50 = hist_.P50();
  w.p95 = hist_.P95();
  w.p99 = hist_.P99();
  w.max = hist_.max();
  series_.push_back(w);
  hist_.Reset();
  owner_->NotifyWindow(name_, w);
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

MetricsRegistry::MetricsRegistry(SimDuration interval)
    : interval_ns_(interval.nanos()) {
  assert(interval_ns_ > 0 && "metrics_interval must be positive");
}

WindowedCounter* MetricsRegistry::Counter(const std::string& name) {
  auto& slot = counters_[name];
  if (slot == nullptr) slot.reset(new WindowedCounter(this, name));
  return slot.get();
}

WindowedGauge* MetricsRegistry::Gauge(const std::string& name) {
  auto& slot = gauges_[name];
  if (slot == nullptr) slot.reset(new WindowedGauge(this, name));
  return slot.get();
}

WindowedHistogram* MetricsRegistry::Hist(const std::string& name) {
  auto& slot = hists_[name];
  if (slot == nullptr) slot.reset(new WindowedHistogram(this, name));
  return slot.get();
}

void MetricsRegistry::Finalize() {
  for (auto& [name, c] : counters_) c->Flush();
  for (auto& [name, g] : gauges_) g->Flush();
  for (auto& [name, h] : hists_) h->Flush();
}

namespace {

void AppendPointsCounterLike(std::string* out, const std::vector<WindowSample>& series) {
  out->push_back('[');
  for (size_t i = 0; i < series.size(); ++i) {
    if (i > 0) out->push_back(',');
    out->push_back('[');
    obs_internal::AppendJsonNumber(out, static_cast<double>(series[i].window_start_ns));
    out->push_back(',');
    obs_internal::AppendJsonNumber(out, series[i].value);
    out->push_back(']');
  }
  out->push_back(']');
}

void AppendPointsHist(std::string* out, const std::vector<WindowSample>& series) {
  out->push_back('[');
  for (size_t i = 0; i < series.size(); ++i) {
    const WindowSample& w = series[i];
    if (i > 0) out->push_back(',');
    out->push_back('[');
    obs_internal::AppendJsonNumber(out, static_cast<double>(w.window_start_ns));
    out->push_back(',');
    obs_internal::AppendJsonNumber(out, static_cast<double>(w.count));
    out->push_back(',');
    obs_internal::AppendJsonNumber(out, w.mean);
    out->push_back(',');
    obs_internal::AppendJsonNumber(out, static_cast<double>(w.p50));
    out->push_back(',');
    obs_internal::AppendJsonNumber(out, static_cast<double>(w.p95));
    out->push_back(',');
    obs_internal::AppendJsonNumber(out, static_cast<double>(w.p99));
    out->push_back(',');
    obs_internal::AppendJsonNumber(out, static_cast<double>(w.max));
    out->push_back(']');
  }
  out->push_back(']');
}

}  // namespace

void MetricsRegistry::CollectSeries(std::vector<SeriesRef>* out) const {
  for (const auto& [name, c] : counters_) {
    if (!c->series().empty()) out->push_back({&name, "counter", &c->series()});
  }
  for (const auto& [name, g] : gauges_) {
    if (!g->series().empty()) out->push_back({&name, "gauge", &g->series()});
  }
  for (const auto& [name, h] : hists_) {
    if (!h->series().empty()) out->push_back({&name, "hist", &h->series()});
  }
}

void MetricsRegistry::AppendSeriesJson(std::string* out, const SeriesRef& ref) {
  out->append("{\"name\":\"");
  out->append(*ref.name);
  out->append("\",\"kind\":\"");
  out->append(ref.kind);
  out->append("\",\"points\":");
  if (ref.kind[0] == 'h') {
    AppendPointsHist(out, *ref.series);
  } else {
    AppendPointsCounterLike(out, *ref.series);
  }
  out->push_back('}');
}

}  // namespace sdm
