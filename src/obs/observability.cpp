#include "obs/observability.h"

#include <algorithm>

namespace sdm {

Observability::Observability(const ObsConfig& config) {
  if (config.enable_metrics) {
    metrics_ = std::make_unique<MetricsRegistry>(config.metrics_interval);
    if (!config.slo_rules.empty()) {
      slo_ = std::make_unique<SloWatchdog>(config.slo_rules);
      metrics_->SetWindowListener([watchdog = slo_.get()](
                                      const std::string& name, const WindowSample& w) {
        watchdog->OnWindow(name, w);
      });
    }
  }
  if (config.enable_tracing) {
    spans_ = std::make_unique<SpanRecorder>(config.trace_sample_every,
                                            config.trace_max_spans);
  }
}

void Observability::Finalize() {
  if (metrics_ != nullptr) metrics_->Finalize();
}

std::string Observability::MetricsJson() const {
  Observability* self = const_cast<Observability*>(this);
  return MergedMetricsJson(std::span<Observability* const>(&self, 1));
}

std::string Observability::TraceJson() const {
  Observability* self = const_cast<Observability*>(this);
  return MergedTraceJson(std::span<Observability* const>(&self, 1));
}

std::string Observability::SloJson() const {
  Observability* self = const_cast<Observability*>(this);
  return MergedSloJson(std::span<Observability* const>(&self, 1));
}

std::string Observability::MergedMetricsJson(
    std::span<Observability* const> instances) {
  int64_t interval_ns = 0;
  std::vector<MetricsRegistry::SeriesRef> series;
  for (Observability* obs : instances) {
    if (obs == nullptr || obs->metrics() == nullptr) continue;
    interval_ns = obs->metrics()->interval_ns();
    obs->metrics()->CollectSeries(&series);
  }
  // Per-LP registries carry disjoint source-prefixed names; the global sort
  // makes the merged document identical to the single-registry one.
  std::sort(series.begin(), series.end(),
            [](const MetricsRegistry::SeriesRef& a, const MetricsRegistry::SeriesRef& b) {
              return *a.name < *b.name;
            });
  std::string out;
  out.append("{\"interval_ns\":");
  obs_internal::AppendJsonNumber(&out, static_cast<double>(interval_ns));
  out.append(",\"series\":[");
  for (size_t i = 0; i < series.size(); ++i) {
    if (i > 0) out.push_back(',');
    MetricsRegistry::AppendSeriesJson(&out, series[i]);
  }
  out.append("]}");
  return out;
}

std::string Observability::MergedTraceJson(std::span<Observability* const> instances) {
  std::vector<const SpanRecorder*> recorders;
  for (Observability* obs : instances) {
    if (obs != nullptr && obs->spans() != nullptr) recorders.push_back(obs->spans());
  }
  return SpanRecorder::ExportChromeTrace(recorders);
}

std::string Observability::MergedSloJson(std::span<Observability* const> instances) {
  std::vector<const SloEvent*> events;
  for (Observability* obs : instances) {
    if (obs == nullptr || obs->slo() == nullptr) continue;
    for (const SloEvent& e : obs->slo()->events()) events.push_back(&e);
  }
  // Event order within one watchdog follows metric-flush order; the export
  // re-sorts so documents match across runtime shapes.
  std::sort(events.begin(), events.end(), [](const SloEvent* a, const SloEvent* b) {
    if (a->t_ns != b->t_ns) return a->t_ns < b->t_ns;
    if (a->rule != b->rule) return a->rule < b->rule;
    return a->fired < b->fired;
  });
  std::string out;
  out.append("{\"events\":[");
  for (size_t i = 0; i < events.size(); ++i) {
    if (i > 0) out.push_back(',');
    SloWatchdog::AppendEventJson(&out, *events[i]);
  }
  out.append("]}");
  return out;
}

}  // namespace sdm
