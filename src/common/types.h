// Fundamental value types and units shared by every sdm module.
//
// Following C++ Core Guidelines I.4 / ES.8, quantities that are easy to
// confuse (bytes vs rows, virtual nanoseconds vs wall time, table ids vs row
// ids) get distinct types so the compiler catches unit mistakes.
#pragma once

#include <cassert>
#include <compare>
#include <cstdint>
#include <limits>
#include <string>

namespace sdm {

// ---------------------------------------------------------------------------
// Virtual time.
//
// All simulation latencies are expressed in virtual nanoseconds. SimTime is
// an absolute point on the simulated clock; SimDuration is a difference.
// Both are thin wrappers over int64_t (about 292 years of range).
// ---------------------------------------------------------------------------

class SimDuration {
 public:
  constexpr SimDuration() = default;
  constexpr explicit SimDuration(int64_t ns) : ns_(ns) {}

  [[nodiscard]] constexpr int64_t nanos() const { return ns_; }
  [[nodiscard]] constexpr double micros() const { return static_cast<double>(ns_) / 1e3; }
  [[nodiscard]] constexpr double millis() const { return static_cast<double>(ns_) / 1e6; }
  [[nodiscard]] constexpr double seconds() const { return static_cast<double>(ns_) / 1e9; }

  constexpr auto operator<=>(const SimDuration&) const = default;

  constexpr SimDuration operator+(SimDuration o) const { return SimDuration(ns_ + o.ns_); }
  constexpr SimDuration operator-(SimDuration o) const { return SimDuration(ns_ - o.ns_); }
  constexpr SimDuration& operator+=(SimDuration o) {
    ns_ += o.ns_;
    return *this;
  }
  constexpr SimDuration& operator-=(SimDuration o) {
    ns_ -= o.ns_;
    return *this;
  }
  constexpr SimDuration operator*(double k) const {
    return SimDuration(static_cast<int64_t>(static_cast<double>(ns_) * k));
  }
  constexpr SimDuration operator/(int64_t k) const { return SimDuration(ns_ / k); }
  [[nodiscard]] constexpr double ratio(SimDuration o) const {
    return o.ns_ == 0 ? 0.0 : static_cast<double>(ns_) / static_cast<double>(o.ns_);
  }

 private:
  int64_t ns_ = 0;
};

[[nodiscard]] constexpr SimDuration Nanos(int64_t n) { return SimDuration(n); }
[[nodiscard]] constexpr SimDuration Micros(double us) {
  return SimDuration(static_cast<int64_t>(us * 1e3));
}
[[nodiscard]] constexpr SimDuration Millis(double ms) {
  return SimDuration(static_cast<int64_t>(ms * 1e6));
}
[[nodiscard]] constexpr SimDuration Seconds(double s) {
  return SimDuration(static_cast<int64_t>(s * 1e9));
}

class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(int64_t ns) : ns_(ns) {}

  [[nodiscard]] constexpr int64_t nanos() const { return ns_; }
  [[nodiscard]] constexpr double seconds() const { return static_cast<double>(ns_) / 1e9; }
  [[nodiscard]] static constexpr SimTime Max() {
    return SimTime(std::numeric_limits<int64_t>::max());
  }

  constexpr auto operator<=>(const SimTime&) const = default;

  constexpr SimTime operator+(SimDuration d) const { return SimTime(ns_ + d.nanos()); }
  constexpr SimDuration operator-(SimTime o) const { return SimDuration(ns_ - o.ns_); }
  constexpr SimTime& operator+=(SimDuration d) {
    ns_ += d.nanos();
    return *this;
  }

 private:
  int64_t ns_ = 0;
};

// ---------------------------------------------------------------------------
// Identifiers.
// ---------------------------------------------------------------------------

/// Index of an embedding table within a model.
enum class TableId : uint32_t {};
[[nodiscard]] constexpr uint32_t Raw(TableId id) { return static_cast<uint32_t>(id); }
[[nodiscard]] constexpr TableId MakeTableId(uint32_t v) { return static_cast<TableId>(v); }

/// Row index within one embedding table (post-hash categorical value).
using RowIndex = uint64_t;

/// Identifier of a simulated host in a fleet.
enum class HostId : uint32_t {};
[[nodiscard]] constexpr uint32_t Raw(HostId id) { return static_cast<uint32_t>(id); }

/// Identifier of a user (drives sticky routing and user-table locality).
using UserId = uint64_t;

// ---------------------------------------------------------------------------
// Sizes.
// ---------------------------------------------------------------------------

/// A byte count. Plain alias (arithmetic-heavy), but named for readability.
using Bytes = uint64_t;

constexpr Bytes kKiB = 1024;
constexpr Bytes kMiB = 1024 * kKiB;
constexpr Bytes kGiB = 1024 * kMiB;

/// NVMe logical block size used throughout (paper assumes 4KB blocks).
constexpr Bytes kBlockSize = 4 * kKiB;

/// Smallest read granularity enabled by the SGL bit-bucket path (a DWORD).
constexpr Bytes kDwordBytes = 4;

[[nodiscard]] constexpr double AsGiB(Bytes b) { return static_cast<double>(b) / static_cast<double>(kGiB); }
[[nodiscard]] constexpr double AsMiB(Bytes b) { return static_cast<double>(b) / static_cast<double>(kMiB); }

/// Number of whole blocks needed to hold `b` bytes.
[[nodiscard]] constexpr uint64_t BlocksFor(Bytes b) { return (b + kBlockSize - 1) / kBlockSize; }

// ---------------------------------------------------------------------------
// Memory tier names (paper §3: FM = fast memory, SM = slow memory).
// ---------------------------------------------------------------------------

enum class MemoryTier : uint8_t {
  kFm,  ///< Fast memory (DRAM / HBM equivalent).
  kSm,  ///< Slow memory (SCM: Nand, Optane, ...).
};

[[nodiscard]] inline const char* ToString(MemoryTier t) {
  return t == MemoryTier::kFm ? "FM" : "SM";
}

// ---------------------------------------------------------------------------
// Embedding-table roles (paper §2.1: user vs item embeddings).
// ---------------------------------------------------------------------------

enum class TableRole : uint8_t {
  kUser,  ///< User-side categorical feature; batch size 1 per query.
  kItem,  ///< Item-side categorical feature; batch size O(100) per query.
};

[[nodiscard]] inline const char* ToString(TableRole r) {
  return r == TableRole::kUser ? "user" : "item";
}

}  // namespace sdm
