#include "common/rng.h"

#include <cmath>

namespace sdm {

namespace {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  assert(bound > 0);
  // Lemire's nearly-divisionless method.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
  auto l = static_cast<uint64_t>(m);
  if (l < bound) {
    const uint64_t t = -bound % bound;
    while (l < t) {
      x = Next();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

bool Rng::NextBernoulli(double p) {
  if (p <= 0) return false;
  if (p >= 1) return true;
  return NextDouble() < p;
}

double Rng::NextExponential(double mean) {
  assert(mean > 0);
  double u = NextDouble();
  // Guard against log(0).
  if (u <= 0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::NextGaussian() {
  // Marsaglia polar method; discards the second variate for simplicity.
  for (;;) {
    const double u = NextDouble(-1.0, 1.0);
    const double v = NextDouble(-1.0, 1.0);
    const double s = u * u + v * v;
    if (s > 0 && s < 1) {
      return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

double Rng::NextLogNormal(double median, double sigma) {
  assert(median > 0);
  return median * std::exp(sigma * NextGaussian());
}

Rng Rng::Fork() { return Rng(Next()); }

// ---------------------------------------------------------------------------
// ZipfSampler — Hörmann & Derflinger rejection-inversion.
// ---------------------------------------------------------------------------

ZipfSampler::ZipfSampler(uint64_t n, double alpha) : n_(n), alpha_(alpha) {
  assert(n >= 1);
  assert(alpha >= 0);
  h_x1_ = H(1.5) - 1.0;
  h_n_ = H(static_cast<double>(n) + 0.5);
  s_ = 2.0 - HInv(H(2.5) - std::pow(2.0, -alpha));
}

double ZipfSampler::H(double x) const {
  // H(x) = integral of t^-alpha dt; log for alpha == 1.
  if (alpha_ == 1.0) return std::log(x);
  return (std::pow(x, 1.0 - alpha_) - 1.0) / (1.0 - alpha_);
}

double ZipfSampler::HInv(double x) const {
  if (alpha_ == 1.0) return std::exp(x);
  return std::pow(1.0 + x * (1.0 - alpha_), 1.0 / (1.0 - alpha_));
}

uint64_t ZipfSampler::Sample(Rng& rng) const {
  if (n_ == 1) return 0;
  if (alpha_ == 0.0) return rng.NextBounded(n_);
  for (;;) {
    const double u = h_n_ + rng.NextDouble() * (h_x1_ - h_n_);
    const double x = HInv(u);
    auto k = static_cast<uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n_) k = n_;
    const double kd = static_cast<double>(k);
    if (kd - x <= s_ || u >= H(kd + 0.5) - std::pow(kd, -alpha_)) {
      return k - 1;  // ranks are 0-based externally
    }
  }
}

double ZipfSampler::Pmf(uint64_t rank) const {
  assert(rank < n_);
  if (harmonic_ == 0) {
    double h = 0;
    for (uint64_t i = 1; i <= n_; ++i) h += std::pow(static_cast<double>(i), -alpha_);
    harmonic_ = h;
  }
  return std::pow(static_cast<double>(rank + 1), -alpha_) / harmonic_;
}

double ZipfSampler::TopMass(uint64_t k) const {
  double m = 0;
  const uint64_t limit = k < n_ ? k : n_;
  for (uint64_t i = 0; i < limit; ++i) m += Pmf(i);
  return m;
}

std::vector<uint64_t> RandomPermutation(uint64_t n, Rng& rng) {
  std::vector<uint64_t> perm(n);
  for (uint64_t i = 0; i < n; ++i) perm[i] = i;
  for (uint64_t i = n; i > 1; --i) {
    const uint64_t j = rng.NextBounded(i);
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

}  // namespace sdm
