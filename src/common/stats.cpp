#include "common/stats.h"

#include <sstream>

namespace sdm {

Counter* StatsRegistry::GetCounter(const std::string& name) {
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* StatsRegistry::GetGauge(const std::string& name) {
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

uint64_t StatsRegistry::CounterValue(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

double StatsRegistry::GaugeValue(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second->value();
}

std::vector<std::pair<std::string, uint64_t>> StatsRegistry::Counters() const {
  std::vector<std::pair<std::string, uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) out.emplace_back(name, counter->value());
  return out;
}

void StatsRegistry::ResetAll() {
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Set(0);
}

std::string StatsRegistry::ToString() const {
  std::ostringstream os;
  for (const auto& [name, counter] : counters_) {
    os << name << " = " << counter->value() << "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    os << name << " = " << gauge->value() << "\n";
  }
  return os.str();
}

}  // namespace sdm
