// Minimal Status / Result<T> error-handling vocabulary.
//
// The library uses value-based error returns on fallible public APIs
// (Core Guidelines E.27 flavor: no exceptions across module boundaries for
// expected failures; exceptions remain for programming errors via assert).
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace sdm {

enum class StatusCode : uint8_t {
  kOk = 0,
  kNotFound,
  kInvalidArgument,
  kOutOfRange,
  kResourceExhausted,
  kFailedPrecondition,
  kUnavailable,
  kInternal,
  kDeadlineExceeded,
  kDataLoss,
};

[[nodiscard]] inline const char* ToString(StatusCode c) {
  switch (c) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case StatusCode::kDataLoss: return "DATA_LOSS";
  }
  return "UNKNOWN";
}

/// A success-or-error outcome with a human-readable message on error.
class [[nodiscard]] Status {
 public:
  Status() = default;  // OK
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  [[nodiscard]] static Status Ok() { return {}; }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  [[nodiscard]] std::string ToString() const {
    if (ok()) return "OK";
    return std::string(sdm::ToString(code_)) + ": " + message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

[[nodiscard]] inline Status NotFoundError(std::string m) {
  return {StatusCode::kNotFound, std::move(m)};
}
[[nodiscard]] inline Status InvalidArgumentError(std::string m) {
  return {StatusCode::kInvalidArgument, std::move(m)};
}
[[nodiscard]] inline Status OutOfRangeError(std::string m) {
  return {StatusCode::kOutOfRange, std::move(m)};
}
[[nodiscard]] inline Status ResourceExhaustedError(std::string m) {
  return {StatusCode::kResourceExhausted, std::move(m)};
}
[[nodiscard]] inline Status FailedPreconditionError(std::string m) {
  return {StatusCode::kFailedPrecondition, std::move(m)};
}
[[nodiscard]] inline Status UnavailableError(std::string m) {
  return {StatusCode::kUnavailable, std::move(m)};
}
[[nodiscard]] inline Status InternalError(std::string m) {
  return {StatusCode::kInternal, std::move(m)};
}
[[nodiscard]] inline Status DeadlineExceededError(std::string m) {
  return {StatusCode::kDeadlineExceeded, std::move(m)};
}
[[nodiscard]] inline Status DataLossError(std::string m) {
  return {StatusCode::kDataLoss, std::move(m)};
}

/// True for errors a retry can plausibly fix: transient media faults
/// (kUnavailable), reads abandoned past their IO deadline
/// (kDeadlineExceeded), and payloads that failed checksum verification
/// (kDataLoss — the backing media is intact in the bit-rot model, so a
/// re-read redraws the corruption and usually delivers clean bytes).
[[nodiscard]] inline bool IsTransientError(StatusCode c) {
  return c == StatusCode::kUnavailable || c == StatusCode::kDeadlineExceeded ||
         c == StatusCode::kDataLoss;
}

/// Either a value of T or an error Status. Accessing value() on an error is a
/// programming bug (asserts), mirroring absl::StatusOr semantics.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : data_(std::move(value)) {}          // NOLINT(google-explicit-constructor)
  Result(Status status) : data_(std::move(status)) {    // NOLINT(google-explicit-constructor)
    assert(!std::get<Status>(data_).ok() && "Result built from OK status has no value");
  }

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(data_); }

  [[nodiscard]] const T& value() const& {
    assert(ok());
    return std::get<T>(data_);
  }
  [[nodiscard]] T& value() & {
    assert(ok());
    return std::get<T>(data_);
  }
  [[nodiscard]] T&& value() && {
    assert(ok());
    return std::get<T>(std::move(data_));
  }

  [[nodiscard]] const T& value_or(const T& fallback) const& {
    return ok() ? std::get<T>(data_) : fallback;
  }

  [[nodiscard]] Status status() const {
    return ok() ? Status::Ok() : std::get<Status>(data_);
  }

 private:
  std::variant<T, Status> data_;
};

}  // namespace sdm
