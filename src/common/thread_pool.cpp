#include "common/thread_pool.h"

#include <algorithm>
#include <cassert>

namespace sdm {

ThreadPool::ThreadPool(size_t num_threads) {
  assert(num_threads >= 1);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerMain(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  assert(task);
  Task t;
  t.fn = std::move(task);
  std::future<void> fut = t.done.get_future();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    assert(!shutdown_);
    queue_.push_back(std::move(t));
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  const size_t num_chunks = std::min(n, workers_.size());
  const size_t chunk = (n + num_chunks - 1) / num_chunks;
  std::vector<std::future<void>> futs;
  futs.reserve(num_chunks);
  for (size_t c = 0; c < num_chunks; ++c) {
    const size_t begin = c * chunk;
    const size_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    futs.push_back(Submit([begin, end, &fn] {
      for (size_t i = begin; i < end; ++i) fn(i);
    }));
  }
  for (auto& f : futs) f.get();
}

uint64_t ThreadPool::tasks_completed() const {
  return tasks_completed_.load(std::memory_order_relaxed);
}

void ThreadPool::WorkerMain() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task.fn();
    // Count before completing the future so waiters observe the increment.
    tasks_completed_.fetch_add(1, std::memory_order_relaxed);
    task.done.set_value();
  }
}

}  // namespace sdm
