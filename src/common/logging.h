// Tiny leveled logger.
//
// Kept deliberately simple: a single global level, stderr sink, and a
// streaming macro. Benchmarks set the level to kWarn so hot paths stay quiet.
#pragma once

#include <atomic>
#include <sstream>
#include <string>

namespace sdm {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

namespace log_internal {

/// Process-wide minimum level that will be emitted.
[[nodiscard]] LogLevel GlobalLevel();
void SetGlobalLevel(LogLevel level);

/// Emits one formatted record to stderr. Thread-safe (single write call).
void Emit(LogLevel level, const char* file, int line, const std::string& msg);

/// Stream collector whose destructor emits the record.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  ~LogMessage() { Emit(level_, file_, line_, stream_.str()); }

  [[nodiscard]] std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace log_internal

#define SDM_LOG(level)                                                   \
  if (static_cast<int>(::sdm::LogLevel::level) <                         \
      static_cast<int>(::sdm::log_internal::GlobalLevel())) {            \
  } else                                                                 \
    ::sdm::log_internal::LogMessage(::sdm::LogLevel::level, __FILE__, __LINE__).stream()

#define SDM_LOG_DEBUG SDM_LOG(kDebug)
#define SDM_LOG_INFO SDM_LOG(kInfo)
#define SDM_LOG_WARN SDM_LOG(kWarn)
#define SDM_LOG_ERROR SDM_LOG(kError)

/// Sets the process-wide log level (e.g. in benchmark main()).
inline void SetLogLevel(LogLevel level) { log_internal::SetGlobalLevel(level); }

}  // namespace sdm
