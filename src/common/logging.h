// Tiny leveled logger.
//
// Kept deliberately simple: a single global level, a pluggable sink
// (default stderr), and a streaming macro. Benchmarks set the level to kWarn
// so hot paths stay quiet; tests install a capturing sink to assert on
// WARN-level records instead of scraping stderr.
#pragma once

#include <atomic>
#include <functional>
#include <sstream>
#include <string>

namespace sdm {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Receives every emitted record (already level-filtered).
using LogSink = std::function<void(LogLevel level, const char* file, int line,
                                   const std::string& msg)>;

/// Installs a process-wide sink; an empty sink restores the stderr default.
/// Emission is serialized, so the sink never runs concurrently with itself.
void SetLogSink(LogSink sink);

namespace log_internal {

/// Process-wide minimum level that will be emitted.
[[nodiscard]] LogLevel GlobalLevel();
void SetGlobalLevel(LogLevel level);

/// Emits one formatted record to the installed sink (stderr by default).
/// Thread-safe (sink runs under one mutex).
void Emit(LogLevel level, const char* file, int line, const std::string& msg);

/// Stream collector whose destructor emits the record.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  ~LogMessage() { Emit(level_, file_, line_, stream_.str()); }

  [[nodiscard]] std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace log_internal

#define SDM_LOG(level)                                                   \
  if (static_cast<int>(::sdm::LogLevel::level) <                         \
      static_cast<int>(::sdm::log_internal::GlobalLevel())) {            \
  } else                                                                 \
    ::sdm::log_internal::LogMessage(::sdm::LogLevel::level, __FILE__, __LINE__).stream()

#define SDM_LOG_DEBUG SDM_LOG(kDebug)
#define SDM_LOG_INFO SDM_LOG(kInfo)
#define SDM_LOG_WARN SDM_LOG(kWarn)
#define SDM_LOG_ERROR SDM_LOG(kError)

/// Sets the process-wide log level (e.g. in benchmark main()).
inline void SetLogLevel(LogLevel level) { log_internal::SetGlobalLevel(level); }

}  // namespace sdm
