// Shared key=value report formatter.
//
// Every run report used to hand-roll one giant snprintf with a 500-byte
// buffer and a 20-argument tail that had to be kept in sync with its format
// string. KvFormatter builds the same "key=value key=value ..." line token by
// token: each value keeps its own printf spec (reports pin exact output), and
// the key sits next to its arguments instead of 15 lines away.
#pragma once

#include <cstdarg>
#include <string>

namespace sdm {

class KvFormatter {
 public:
  /// Appends "key=<formatted args>" as one space-separated token.
  KvFormatter& Kv(const char* key, const char* fmt, ...)
      __attribute__((format(printf, 3, 4)));

  /// Appends a pre-formatted token verbatim (e.g. a report's name prefix).
  KvFormatter& Raw(const std::string& token);

  [[nodiscard]] const std::string& str() const { return out_; }

 private:
  void AppendSeparator();

  std::string out_;
};

}  // namespace sdm
