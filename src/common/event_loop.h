// Deterministic discrete-event simulator core.
//
// Every latency-bearing component (NVMe device, IO engine, inference engine,
// cluster) schedules callbacks on one EventLoop. Virtual time only advances
// when the loop dequeues the next event, so a whole end-to-end serving
// experiment is exactly reproducible — crucial for the several hundred tests
// that assert latency distributions.
//
// Single-threaded by design: determinism beats parallelism for simulation
// correctness. Real parallelism composes ABOVE the loop: ShardedRuntime
// (sharded_runtime.h) runs many loops — one per logical process — on worker
// threads, synchronizing them with conservative time windows; each
// individual loop stays single-threaded.
//
// The event queue is a binary heap over a plain vector (the exact
// make/push/pop_heap algorithm std::priority_queue specifies, so ordering is
// bit-for-bit identical to the previous std::priority_queue implementation)
// rather than std::priority_queue itself, because top() is const there and
// dequeuing had to COPY the event's std::function — one heap allocation per
// event on the hottest loop in the codebase. pop_heap moves the top to the
// back of the vector, where it can be moved out legally.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.h"

namespace sdm {

class EventLoop {
 public:
  using Callback = std::function<void()>;

  EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Current virtual time.
  [[nodiscard]] SimTime Now() const { return now_; }

  /// Schedules `fn` to run at absolute time `at` (>= Now()). Events at equal
  /// times run in scheduling order (stable FIFO tie-break).
  void ScheduleAt(SimTime at, Callback fn);

  /// Schedules `fn` to run `delay` from now.
  void ScheduleAfter(SimDuration delay, Callback fn);

  /// Runs events until the queue is empty. Returns the number of events run.
  uint64_t RunUntilIdle();

  /// Runs events with time <= deadline; leaves later events queued. Virtual
  /// time ends at min(deadline, last event time processed... ) — precisely,
  /// Now() advances to each processed event and finally to `deadline`.
  uint64_t RunUntil(SimTime deadline);

  /// Runs events with time STRICTLY BEFORE `end`, then advances Now() to
  /// `end`. This is the conservative-window primitive of ShardedRuntime: a
  /// window [start, end) owns every local event before `end`; events AT
  /// `end` (e.g. cross-shard messages delivered exactly one lookahead away)
  /// belong to the next window. Returns the number of events run.
  uint64_t RunWindow(SimTime end);

  /// Runs exactly one event if any is pending. Returns whether one ran.
  bool RunOne();

  /// Timestamp of the earliest pending event (SimTime::Max() when idle) —
  /// what a conservative parallel runner advances the global window to.
  [[nodiscard]] SimTime next_event_time() const {
    return heap_.empty() ? SimTime::Max() : heap_.front().at;
  }

  /// Timestamp of the last event executed (SimTime(0) before any ran).
  /// Unlike Now(), never advanced artificially by RunUntil/RunWindow
  /// deadlines, so it reports when the simulation actually went quiet.
  [[nodiscard]] SimTime last_event_time() const { return last_event_at_; }

  [[nodiscard]] size_t pending_events() const { return heap_.size(); }
  [[nodiscard]] bool idle() const { return heap_.empty(); }

  /// Total events executed since construction.
  [[nodiscard]] uint64_t events_run() const { return events_run_; }

 private:
  struct Event {
    SimTime at;
    uint64_t seq;  // FIFO tie-break for equal timestamps
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  /// Moves the earliest event out of the heap. Pre: !heap_.empty().
  [[nodiscard]] Event PopEarliest();

  SimTime now_{0};
  SimTime last_event_at_{0};
  uint64_t next_seq_ = 0;
  uint64_t events_run_ = 0;
  std::vector<Event> heap_;  // binary heap ordered by Later
};

}  // namespace sdm
