// Deterministic discrete-event simulator core.
//
// Every latency-bearing component (NVMe device, IO engine, inference engine,
// cluster) schedules callbacks on one EventLoop. Virtual time only advances
// when the loop dequeues the next event, so a whole end-to-end serving
// experiment is exactly reproducible — crucial for the several hundred tests
// that assert latency distributions.
//
// Single-threaded by design: determinism beats parallelism for simulation
// correctness (real threading lives in thread_pool.h for data-path work).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.h"

namespace sdm {

class EventLoop {
 public:
  using Callback = std::function<void()>;

  EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Current virtual time.
  [[nodiscard]] SimTime Now() const { return now_; }

  /// Schedules `fn` to run at absolute time `at` (>= Now()). Events at equal
  /// times run in scheduling order (stable FIFO tie-break).
  void ScheduleAt(SimTime at, Callback fn);

  /// Schedules `fn` to run `delay` from now.
  void ScheduleAfter(SimDuration delay, Callback fn);

  /// Runs events until the queue is empty. Returns the number of events run.
  uint64_t RunUntilIdle();

  /// Runs events with time <= deadline; leaves later events queued. Virtual
  /// time ends at min(deadline, last event time processed... ) — precisely,
  /// Now() advances to each processed event and finally to `deadline`.
  uint64_t RunUntil(SimTime deadline);

  /// Runs exactly one event if any is pending. Returns whether one ran.
  bool RunOne();

  [[nodiscard]] size_t pending_events() const { return queue_.size(); }
  [[nodiscard]] bool idle() const { return queue_.empty(); }

  /// Total events executed since construction.
  [[nodiscard]] uint64_t events_run() const { return events_run_; }

 private:
  struct Event {
    SimTime at;
    uint64_t seq;  // FIFO tie-break for equal timestamps
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  SimTime now_{0};
  uint64_t next_seq_ = 0;
  uint64_t events_run_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace sdm
