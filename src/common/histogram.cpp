#include "common/histogram.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <limits>

namespace sdm {

namespace {

int Log2Floor(uint64_t v) { return 63 - std::countl_zero(v | 1); }

}  // namespace

Histogram::Histogram(int64_t max_value, int sub_buckets_per_pow2)
    : max_value_(max_value) {
  assert(max_value > 0);
  assert(sub_buckets_per_pow2 >= 1);
  sub_bucket_bits_ = Log2Floor(static_cast<uint64_t>(sub_buckets_per_pow2));
  const int max_pow2 = Log2Floor(static_cast<uint64_t>(max_value)) + 1;
  buckets_.assign(static_cast<size_t>(max_pow2 + 1) << sub_bucket_bits_, 0);
  observed_min_ = std::numeric_limits<int64_t>::max();
}

size_t Histogram::BucketFor(int64_t value) const {
  if (value < 1) value = 1;
  if (value > max_value_) value = max_value_;
  const auto v = static_cast<uint64_t>(value);
  const int pow2 = Log2Floor(v);
  // Index of the sub-bucket within this power-of-two range.
  const int shift = pow2 > sub_bucket_bits_ ? pow2 - sub_bucket_bits_ : 0;
  const uint64_t sub = (v >> shift) & ((uint64_t{1} << sub_bucket_bits_) - 1);
  const size_t idx = (static_cast<size_t>(pow2) << sub_bucket_bits_) + static_cast<size_t>(sub);
  return std::min(idx, buckets_.size() - 1);
}

int64_t Histogram::BucketUpperBound(size_t bucket) const {
  const auto pow2 = static_cast<int>(bucket >> sub_bucket_bits_);
  const auto sub = static_cast<uint64_t>(bucket & ((uint64_t{1} << sub_bucket_bits_) - 1));
  uint64_t value;
  if (pow2 < sub_bucket_bits_) {
    // Sub-bucket width is 1 in this range and `sub` encodes the exact value.
    value = sub;
  } else {
    // Values in this bucket are [(2^bits + sub) << shift, (2^bits + sub + 1) << shift).
    const int shift = pow2 - sub_bucket_bits_;
    value = (((uint64_t{1} << sub_bucket_bits_) + sub + 1) << shift) - 1;
  }
  return static_cast<int64_t>(std::min<uint64_t>(value, static_cast<uint64_t>(max_value_)));
}

void Histogram::Record(int64_t value) {
  // Clamp into the tracked domain [1, max_value] BEFORE touching the summary
  // stats, not just the bucket index — otherwise a negative or oversized
  // sample corrupts mean()/min()/max() (and quantiles, which are capped at
  // observed_max_) while the bucket counts stay clamped.
  value = std::clamp<int64_t>(value, 1, max_value_);
  buckets_[BucketFor(value)]++;
  count_++;
  sum_ += static_cast<double>(value);
  observed_min_ = std::min(observed_min_, value);
  observed_max_ = std::max(observed_max_, value);
}

void Histogram::Merge(const Histogram& other) {
  assert(buckets_.size() == other.buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  if (other.count_ > 0) {
    observed_min_ = std::min(observed_min_, other.observed_min_);
    observed_max_ = std::max(observed_max_, other.observed_max_);
  }
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0;
  observed_min_ = std::numeric_limits<int64_t>::max();
  observed_max_ = 0;
}

int64_t Histogram::min() const {
  return count_ == 0 ? 0 : observed_min_;
}

double Histogram::mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

int64_t Histogram::ValueAtQuantile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<uint64_t>(std::ceil(q * static_cast<double>(count_)));
  uint64_t running = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    running += buckets_[i];
    if (running >= target && buckets_[i] > 0) {
      return std::min(BucketUpperBound(i), observed_max_);
    }
  }
  return observed_max_;
}

std::string Histogram::SummaryString(const std::string& unit) const {
  const double div = unit == "ns" ? 1.0 : unit == "us" ? 1e3 : unit == "ms" ? 1e6 : 1e3;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "count=%llu mean=%.1f%s p50=%.1f%s p95=%.1f%s p99=%.1f%s max=%.1f%s",
                static_cast<unsigned long long>(count_), mean() / div, unit.c_str(),
                static_cast<double>(P50()) / div, unit.c_str(),
                static_cast<double>(P95()) / div, unit.c_str(),
                static_cast<double>(P99()) / div, unit.c_str(),
                static_cast<double>(max()) / div, unit.c_str());
  return buf;
}

}  // namespace sdm
