#include "common/logging.h"

#include <cstdio>
#include <mutex>

namespace sdm::log_internal {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_emit_mutex;
LogSink g_sink;  // guarded by g_emit_mutex; empty = stderr default

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "D";
    case LogLevel::kInfo: return "I";
    case LogLevel::kWarn: return "W";
    case LogLevel::kError: return "E";
    case LogLevel::kOff: return "?";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* base = path;
  for (const char* p = path; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  return base;
}

}  // namespace

LogLevel GlobalLevel() { return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed)); }

void SetGlobalLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

void Emit(LogLevel level, const char* file, int line, const std::string& msg) {
  const std::lock_guard<std::mutex> lock(g_emit_mutex);
  if (g_sink) {
    g_sink(level, Basename(file), line, msg);
    return;
  }
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), Basename(file), line, msg.c_str());
}

}  // namespace sdm::log_internal

namespace sdm {

void SetLogSink(LogSink sink) {
  const std::lock_guard<std::mutex> lock(log_internal::g_emit_mutex);
  log_internal::g_sink = std::move(sink);
}

}  // namespace sdm
