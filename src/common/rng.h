// Deterministic pseudo-random generation for the simulator.
//
// - Rng: splitmix64/xoshiro256** engine. Every component takes an explicit
//   seed so experiments are reproducible run-to-run (no global RNG state).
// - ZipfSampler: power-law index sampler using Hörmann's rejection-inversion
//   method — O(1) per sample, no O(N) tables — used to model the temporal
//   locality the paper observes for embedding accesses (Fig. 4).
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

namespace sdm {

/// xoshiro256** PRNG seeded via splitmix64. Not cryptographic; fast and
/// statistically solid for simulation workloads.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  [[nodiscard]] uint64_t Next();

  /// Uniform in [0, bound). bound must be > 0. Uses Lemire rejection to
  /// avoid modulo bias.
  [[nodiscard]] uint64_t NextBounded(uint64_t bound);

  /// Uniform double in [0, 1).
  [[nodiscard]] double NextDouble();

  /// Uniform double in [lo, hi).
  [[nodiscard]] double NextDouble(double lo, double hi);

  /// True with probability p (p clamped to [0,1]).
  [[nodiscard]] bool NextBernoulli(double p);

  /// Exponentially distributed value with the given mean (> 0). Used for
  /// Poisson arrival processes in the serving simulator.
  [[nodiscard]] double NextExponential(double mean);

  /// Standard normal via Marsaglia polar method.
  [[nodiscard]] double NextGaussian();

  /// Log-normal with the given median and sigma of the underlying normal.
  /// Models long-tail device latency (Nand flash p99 spikes).
  [[nodiscard]] double NextLogNormal(double median, double sigma);

  /// Derives an independent child generator (stable given call order).
  [[nodiscard]] Rng Fork();

 private:
  uint64_t s_[4];
};

/// Samples ranks in [0, n) with probability proportional to 1/(rank+1)^alpha.
/// alpha == 0 degenerates to uniform. Rank 0 is the hottest item.
///
/// Callers typically compose this with a per-table random permutation so the
/// hot rows are not the low indices (see trace/trace_gen.h).
class ZipfSampler {
 public:
  /// n must be >= 1; alpha must be >= 0.
  ZipfSampler(uint64_t n, double alpha);

  [[nodiscard]] uint64_t Sample(Rng& rng) const;

  [[nodiscard]] uint64_t n() const { return n_; }
  [[nodiscard]] double alpha() const { return alpha_; }

  /// Probability mass of a single rank (for analytical assertions in tests).
  [[nodiscard]] double Pmf(uint64_t rank) const;

  /// Fraction of total mass in the top `k` ranks. O(k).
  [[nodiscard]] double TopMass(uint64_t k) const;

 private:
  [[nodiscard]] double H(double x) const;     // integral of x^-alpha
  [[nodiscard]] double HInv(double x) const;  // inverse of H

  uint64_t n_;
  double alpha_;
  double h_x1_;          // H(1.5) - 1
  double h_n_;           // H(n + 0.5)
  double s_;             // 2 - HInv(H(2.5) - 2^-alpha)
  mutable double harmonic_ = 0;  // generalized harmonic number (lazy, for Pmf)
};

/// Fisher-Yates permutation of [0, n). Deterministic given the seed.
[[nodiscard]] std::vector<uint64_t> RandomPermutation(uint64_t n, Rng& rng);

}  // namespace sdm
