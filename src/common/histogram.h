// Log-bucketed latency histogram with percentile queries.
//
// HDR-histogram style: values are bucketed with bounded relative error
// (~3% by default), so p50/p95/p99 queries over millions of samples are O(1)
// memory. Used for every latency metric in the serving simulator — the paper
// reports p95/p99 SLAs (§2.3).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace sdm {

class Histogram {
 public:
  /// Tracks values in [1, max_value] nanoseconds-equivalents with the given
  /// number of sub-buckets per power of two (higher = finer resolution).
  explicit Histogram(int64_t max_value = int64_t{1} << 40, int sub_buckets_per_pow2 = 32);

  void Record(int64_t value);
  void Record(SimDuration d) { Record(d.nanos()); }

  /// Merges another histogram's samples into this one (same geometry only).
  void Merge(const Histogram& other);

  void Reset();

  [[nodiscard]] uint64_t count() const { return count_; }
  [[nodiscard]] int64_t min() const;
  [[nodiscard]] int64_t max() const { return observed_max_; }
  [[nodiscard]] double mean() const;

  /// Value at quantile q in [0, 1]. Returns 0 for an empty histogram.
  [[nodiscard]] int64_t ValueAtQuantile(double q) const;

  [[nodiscard]] int64_t P50() const { return ValueAtQuantile(0.50); }
  [[nodiscard]] int64_t P95() const { return ValueAtQuantile(0.95); }
  [[nodiscard]] int64_t P99() const { return ValueAtQuantile(0.99); }

  /// "count=.. mean=..us p50=..us p95=..us p99=..us max=..us"
  [[nodiscard]] std::string SummaryString(const std::string& unit = "us") const;

 private:
  [[nodiscard]] size_t BucketFor(int64_t value) const;
  [[nodiscard]] int64_t BucketUpperBound(size_t bucket) const;

  int sub_bucket_bits_;
  int64_t max_value_;
  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  double sum_ = 0;
  int64_t observed_min_ = 0;
  int64_t observed_max_ = 0;
};

}  // namespace sdm
