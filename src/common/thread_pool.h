// Fixed-size worker pool for real (wall-clock) parallel work.
//
// Used by the data-path examples and micro-benchmarks where actual CPU
// parallelism matters (e.g. parallel dequantization, inter-op execution of
// embedding operators). The discrete-event simulator never uses this — it is
// single-threaded for determinism.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace sdm {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1).
  explicit ThreadPool(size_t num_threads);
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  ~ThreadPool();

  /// Enqueues a task; returns a future for its completion.
  std::future<void> Submit(std::function<void()> task);

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  /// Work is divided into contiguous ranges, one per worker.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  [[nodiscard]] size_t size() const { return workers_.size(); }

  /// Tasks executed since construction (approximate across threads).
  [[nodiscard]] uint64_t tasks_completed() const;

 private:
  void WorkerMain();

  struct Task {
    std::function<void()> fn;
    std::promise<void> done;
  };

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Task> queue_;
  bool shutdown_ = false;
  std::atomic<uint64_t> tasks_completed_{0};
  std::vector<std::thread> workers_;
};

}  // namespace sdm
