// MpscMailbox — lock-free multi-producer / single-consumer mailbox for
// cross-shard message handoff in the sharded simulation runtime.
//
// Producers (worker threads executing OTHER shards' event windows) push
// messages with one atomic exchange-free CAS loop on a single head pointer
// (a Treiber stack); the owning shard drains the whole mailbox with one
// atomic exchange at its window barrier. No locks, no per-message fences
// beyond the release/acquire pair that publishes the payload.
//
// Ordering: the stack yields messages in no particular order (reverse push
// order per producer, arbitrary across producers). That is fine — and is
// the reason this can be so simple — because the conservative runtime
// NEVER executes messages in arrival order: the consumer sorts its drained
// batch by the deterministic key (deliver_at, source, seq) before
// scheduling, so results are independent of which worker pushed first in
// wall-clock time. Determinism comes from the sort key, not the queue.
//
// Memory: nodes are heap-allocated by the sender (the only allocation on
// the cross-shard path) and freed by the consumer after scheduling.
#pragma once

#include <atomic>
#include <vector>

namespace sdm {

/// T must derive from MpscMailbox<T>::Node (intrusive hook).
template <typename T>
class MpscMailbox {
 public:
  struct Node {
    T* mpsc_next = nullptr;
  };

  MpscMailbox() = default;
  MpscMailbox(const MpscMailbox&) = delete;
  MpscMailbox& operator=(const MpscMailbox&) = delete;
  ~MpscMailbox() {
    std::vector<T*> leftovers;
    DrainInto(leftovers);
    for (T* m : leftovers) delete m;
  }

  /// Producer side: takes ownership of `msg`. Safe from any thread,
  /// concurrently with other producers and with the consumer draining.
  void Push(T* msg) {
    T* expected = head_.load(std::memory_order_relaxed);
    do {
      msg->mpsc_next = expected;
    } while (!head_.compare_exchange_weak(expected, msg, std::memory_order_release,
                                          std::memory_order_relaxed));
  }

  /// Consumer side: detaches every queued message into `out` (appended; no
  /// meaningful order — see file header) and returns how many were taken.
  /// Ownership transfers to the caller.
  size_t DrainInto(std::vector<T*>& out) {
    T* n = head_.exchange(nullptr, std::memory_order_acquire);
    size_t taken = 0;
    while (n != nullptr) {
      out.push_back(n);
      n = n->mpsc_next;
      ++taken;
    }
    return taken;
  }

  /// Consumer-side peek: true when at least one message is queued. Producers
  /// may race this; the runtime only calls it at barriers, when every
  /// producer is quiescent.
  [[nodiscard]] bool empty() const {
    return head_.load(std::memory_order_acquire) == nullptr;
  }

 private:
  std::atomic<T*> head_{nullptr};
};

}  // namespace sdm
