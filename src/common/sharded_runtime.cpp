#include "common/sharded_runtime.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>

namespace sdm {

ShardedRuntime::ShardedRuntime(size_t num_workers)
    : num_workers_(num_workers == 0 ? 1 : num_workers) {}

size_t ShardedRuntime::AddProcess() {
  lps_.push_back(std::make_unique<Process>());
  return lps_.size() - 1;
}

void ShardedRuntime::Post(size_t from, size_t to, SimTime at, EventLoop::Callback fn) {
  assert(from < lps_.size() && to < lps_.size());
  assert(fn);
#ifndef NDEBUG
  // The conservative contract: a message may not land inside the window its
  // sender could still be executing. Violations would make results depend
  // on thread timing; catching them here is what keeps W-invariance honest.
  assert(lookahead_ <= SimDuration(0) ||
         at >= lps_[from]->loop.Now() + lookahead_);
#endif
  auto* msg = new Message();
  msg->at = at;
  msg->from = static_cast<uint32_t>(from);
  msg->seq = lps_[from]->send_seq++;
  msg->fn = std::move(fn);
  lps_[to]->mailbox.Push(msg);
}

bool ShardedRuntime::PrepareWindow(SimDuration lookahead, SimTime* window_end) {
  SimTime global_next = SimTime::Max();
  for (auto& lp : lps_) {
    lp->mailbox.DrainInto(lp->staged);
    SimTime next = lp->loop.next_event_time();
    for (const Message* m : lp->staged) next = std::min(next, m->at);
    global_next = std::min(global_next, next);
  }
  if (global_next == SimTime::Max()) return false;
  // Windows skip straight to the earliest pending instant instead of
  // stepping fixed lookahead quanta across idle virtual time.
  *window_end = global_next + lookahead;
  return true;
}

uint64_t ShardedRuntime::events_run() const {
  uint64_t total = 0;
  for (const auto& lp : lps_) total += lp->loop.events_run();
  return total;
}

void ShardedRuntime::RunWorkerSlice(size_t worker, SimTime window_end) {
  for (size_t i = worker; i < lps_.size(); i += active_workers_) {
    Process& lp = *lps_[i];
    if (!lp.staged.empty()) {
      // The mailbox yields messages in wall-clock arrival order, which is
      // nondeterministic; the sort key below is not. Everything downstream
      // (RNG draws, counters, latencies) hangs off this order.
      std::sort(lp.staged.begin(), lp.staged.end(),
                [](const Message* a, const Message* b) {
                  if (a->at != b->at) return a->at < b->at;
                  if (a->from != b->from) return a->from < b->from;
                  return a->seq < b->seq;
                });
      for (Message* m : lp.staged) {
        lp.loop.ScheduleAt(m->at, std::move(m->fn));
        delete m;
      }
      lp.staged.clear();
    }
    lp.loop.RunWindow(window_end);
  }
}

uint64_t ShardedRuntime::Run(SimDuration lookahead) {
  assert(lookahead > SimDuration(0));
  assert(!lps_.empty());
#ifndef NDEBUG
  lookahead_ = lookahead;
#endif
  uint64_t events_before = 0;
  uint64_t staged_messages = 0;
  for (const auto& lp : lps_) events_before += lp->loop.events_run();

  // More workers than LPs is waste, and more spinning threads than cores is
  // actively harmful (barrier parties descheduled mid-round). The
  // coordinator spins at the end barrier during each window, so it counts
  // as a party: cap workers at cores - 1. Results are W-invariant, so
  // clamping is free. SDM_SHARD_WORKERS overrides the hardware cap (CI's
  // TSan smoke forces real threads on small runners).
  const size_t hw = std::max<size_t>(1, std::thread::hardware_concurrency());
  size_t cap = std::max<size_t>(1, hw - 1);
  if (const char* env = std::getenv("SDM_SHARD_WORKERS"); env != nullptr) {
    if (const unsigned long v = std::strtoul(env, nullptr, 10); v >= 1) cap = v;
  }
  const size_t workers = std::min({num_workers_, lps_.size(), cap});
  active_workers_ = workers;

  if (workers == 1) {
    // Degenerate schedule: no threads, no barriers — the coordinator runs
    // every LP's window inline. Exactly the parallel semantics (same drain,
    // same sort, same windows), minus the synchronization.
    for (;;) {
      SimTime window_end{};
      if (!PrepareWindow(lookahead, &window_end)) break;
      for (const auto& lp : lps_) staged_messages += lp->staged.size();
      ++windows_;
      RunWorkerSlice(0, window_end);
    }
    messages_delivered_ += staged_messages;
    uint64_t events_after = 0;
    for (const auto& lp : lps_) events_after += lp->loop.events_run();
    return events_after - events_before;
  }

  SpinBarrier start(static_cast<uint32_t>(workers + 1));
  SpinBarrier end(static_cast<uint32_t>(workers + 1));
  start_barrier_ = &start;
  end_barrier_ = &end;
  stop_.store(false, std::memory_order_relaxed);

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    pool.emplace_back([this, w] {
      for (;;) {
        start_barrier_->Arrive();
        if (stop_.load(std::memory_order_acquire)) return;
        RunWorkerSlice(w, window_end_);
        end_barrier_->Arrive();
      }
    });
  }

  for (;;) {
    SimTime window_end{};
    if (!PrepareWindow(lookahead, &window_end)) {
      stop_.store(true, std::memory_order_release);
      start.Arrive();  // releases workers into their exit check
      break;
    }
    for (const auto& lp : lps_) staged_messages += lp->staged.size();
    window_end_ = window_end;
    ++windows_;
    start.Arrive();  // workers execute the window
    end.Arrive();    // wait for them; producers now quiescent for the drain
  }
  for (auto& t : pool) t.join();
  start_barrier_ = nullptr;
  end_barrier_ = nullptr;
  messages_delivered_ += staged_messages;

  uint64_t events_after = 0;
  for (const auto& lp : lps_) events_after += lp->loop.events_run();
  return events_after - events_before;
}

}  // namespace sdm
