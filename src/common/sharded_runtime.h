// ShardedRuntime — conservative windowed parallel discrete-event runtime.
//
// Runs N logical processes (LPs) — each owning a PRIVATE EventLoop and
// whatever simulation state hangs off it — across W worker threads, while
// producing results that are bit-identical for every W >= 1. The classic
// conservative (Chandy–Misra style, window-barrier variant) recipe:
//
//   - Every cross-LP interaction is a message posted through Post() with a
//     delivery time at least `lookahead` ahead of the sender's clock. In
//     this codebase the only cross-shard boundary is the fabric hop
//     (host shard <-> device shard), so the lookahead is the minimum
//     one-way fabric latency — which is why sharded mode requires a
//     non-instant fabric.
//   - Execution proceeds in global windows [G, G + lookahead), where G is
//     the earliest pending event or message across all LPs (windows SKIP
//     idle gaps instead of stepping fixed quanta). Within a window every LP
//     runs its local events independently on its worker thread: no event
//     it executes can affect another LP before the window ends, by the
//     lookahead guarantee.
//   - Messages travel through lock-free MPSC mailboxes (mpsc_mailbox.h);
//     the event hot path takes no locks. Mailboxes are drained at the
//     window barrier, and the drained batch is sorted by the deterministic
//     key (deliver_at, source LP, source sequence) before scheduling — so
//     the merge order, and therefore every downstream RNG draw and
//     counter, is independent of thread timing. Determinism by sort key,
//     not by arrival order.
//
// The barrier is a sense-reversing spin barrier over std::atomic (cheap at
// the ~microsecond window cadence fabric latencies produce, and fully
// visible to TSan). The main thread coordinates: it drains mailboxes and
// picks the next window while workers wait, so mailbox consumption never
// races producers.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "common/event_loop.h"
#include "common/mpsc_mailbox.h"
#include "common/types.h"

namespace sdm {

/// Reusable N-party sense-reversing barrier. Spins with periodic yields:
/// parties are worker threads pinned to a round cadence of microseconds,
/// where parking on a futex would dominate the window itself.
class SpinBarrier {
 public:
  explicit SpinBarrier(uint32_t parties) : parties_(parties) {}

  SpinBarrier(const SpinBarrier&) = delete;
  SpinBarrier& operator=(const SpinBarrier&) = delete;

  void Arrive() {
    const uint64_t gen = generation_.load(std::memory_order_acquire);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
      arrived_.store(0, std::memory_order_relaxed);
      generation_.fetch_add(1, std::memory_order_release);  // releases the rest
      return;
    }
    uint32_t spins = 0;
    while (generation_.load(std::memory_order_acquire) == gen) {
      if (++spins >= kSpinsBeforeYield) {
        spins = 0;
        std::this_thread::yield();
      }
    }
  }

 private:
  static constexpr uint32_t kSpinsBeforeYield = 4096;
  const uint32_t parties_;
  std::atomic<uint32_t> arrived_{0};
  std::atomic<uint64_t> generation_{0};
};

class ShardedRuntime {
 public:
  /// `num_workers` worker threads execute LP windows (>= 1). LPs are
  /// statically assigned round-robin; results never depend on the count.
  explicit ShardedRuntime(size_t num_workers);

  ShardedRuntime(const ShardedRuntime&) = delete;
  ShardedRuntime& operator=(const ShardedRuntime&) = delete;

  /// Registers one logical process and returns its id. All processes must
  /// be added before Run(); the runtime owns their loops.
  size_t AddProcess();

  [[nodiscard]] size_t process_count() const { return lps_.size(); }
  [[nodiscard]] size_t num_workers() const { return num_workers_; }
  [[nodiscard]] EventLoop& loop(size_t lp) { return lps_[lp]->loop; }

  /// Cross-LP send: schedules `fn` on `to`'s loop at absolute time `at`.
  /// Must be called from an event executing on `from`'s loop (or before
  /// Run() starts), with `at` at least one lookahead past `from`'s clock —
  /// the conservative-correctness contract, asserted in debug builds.
  /// Lock-free; safe concurrently from every worker.
  void Post(size_t from, size_t to, SimTime at, EventLoop::Callback fn);

  /// Runs every process to global idle using conservative windows of width
  /// `lookahead` (> 0). Returns total events executed across all loops.
  /// May be called repeatedly (e.g. one serving run after another); clocks
  /// carry over exactly like a single EventLoop's would.
  uint64_t Run(SimDuration lookahead);

  /// Total events executed across every LP's loop (all Run() calls).
  [[nodiscard]] uint64_t events_run() const;
  /// Windows executed across all Run() calls (idle gaps are skipped, so
  /// this is the number of barrier rounds actually paid).
  [[nodiscard]] uint64_t windows() const { return windows_; }
  /// Cross-LP messages delivered across all Run() calls.
  [[nodiscard]] uint64_t messages_delivered() const { return messages_delivered_; }

 private:
  struct Message : MpscMailbox<Message>::Node {
    SimTime at;
    uint32_t from = 0;  ///< sender LP (deterministic tie-break, not identity)
    uint64_t seq = 0;   ///< sender-local monotonic sequence
    EventLoop::Callback fn;
  };

  struct Process {
    EventLoop loop;
    MpscMailbox<Message> mailbox;
    std::vector<Message*> staged;  ///< drained, not yet scheduled
    uint64_t send_seq = 0;         ///< written only by this LP's worker
  };

  /// Serial (coordinator) part of a round: drains every mailbox and picks
  /// the next window [G, G+L). Returns false when everything is idle.
  bool PrepareWindow(SimDuration lookahead, SimTime* window_end);

  /// Parallel part: one worker executes its LPs' windows.
  void RunWorkerSlice(size_t worker, SimTime window_end);

  const size_t num_workers_;
  /// Effective worker count of the active Run() — num_workers_ clamped to
  /// LP count and hardware concurrency; the LP->worker stride.
  size_t active_workers_ = 1;
  std::vector<std::unique_ptr<Process>> lps_;
  uint64_t windows_ = 0;
  uint64_t messages_delivered_ = 0;
#ifndef NDEBUG
  SimDuration lookahead_{0};  ///< active Run()'s lookahead, for the contract assert
#endif

  // Round coordination (valid during Run only).
  SpinBarrier* start_barrier_ = nullptr;
  SpinBarrier* end_barrier_ = nullptr;
  std::atomic<bool> stop_{false};
  SimTime window_end_{0};  ///< written serially, read by workers post-barrier
};

}  // namespace sdm
