#include "common/event_loop.h"

#include <cassert>
#include <utility>

namespace sdm {

void EventLoop::ScheduleAt(SimTime at, Callback fn) {
  assert(fn);
  // Clamp to now: scheduling "in the past" runs as-soon-as-possible rather
  // than corrupting the clock. This happens legitimately when a zero-latency
  // model rounds down.
  if (at < now_) at = now_;
  heap_.push_back(Event{at, next_seq_++, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

void EventLoop::ScheduleAfter(SimDuration delay, Callback fn) {
  assert(delay >= SimDuration(0));
  ScheduleAt(now_ + delay, std::move(fn));
}

EventLoop::Event EventLoop::PopEarliest() {
  // pop_heap moves the earliest event to the back, where — unlike
  // std::priority_queue::top() — it is mutable and can be MOVED out instead
  // of copying the std::function (one heap allocation per event saved).
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Event ev = std::move(heap_.back());
  heap_.pop_back();
  return ev;
}

uint64_t EventLoop::RunUntilIdle() {
  uint64_t n = 0;
  while (RunOne()) ++n;
  return n;
}

uint64_t EventLoop::RunUntil(SimTime deadline) {
  uint64_t n = 0;
  while (!heap_.empty() && heap_.front().at <= deadline) {
    RunOne();
    ++n;
  }
  if (now_ < deadline) now_ = deadline;
  return n;
}

uint64_t EventLoop::RunWindow(SimTime end) {
  uint64_t n = 0;
  while (!heap_.empty() && heap_.front().at < end) {
    RunOne();
    ++n;
  }
  if (now_ < end) now_ = end;
  return n;
}

bool EventLoop::RunOne() {
  if (heap_.empty()) return false;
  Event ev = PopEarliest();
  assert(ev.at >= now_);
  now_ = ev.at;
  last_event_at_ = ev.at;
  ++events_run_;
  ev.fn();
  return true;
}

}  // namespace sdm
