#include "common/event_loop.h"

#include <cassert>
#include <utility>

namespace sdm {

void EventLoop::ScheduleAt(SimTime at, Callback fn) {
  assert(fn);
  // Clamp to now: scheduling "in the past" runs as-soon-as-possible rather
  // than corrupting the clock. This happens legitimately when a zero-latency
  // model rounds down.
  if (at < now_) at = now_;
  queue_.push(Event{at, next_seq_++, std::move(fn)});
}

void EventLoop::ScheduleAfter(SimDuration delay, Callback fn) {
  assert(delay >= SimDuration(0));
  ScheduleAt(now_ + delay, std::move(fn));
}

uint64_t EventLoop::RunUntilIdle() {
  uint64_t n = 0;
  while (RunOne()) ++n;
  return n;
}

uint64_t EventLoop::RunUntil(SimTime deadline) {
  uint64_t n = 0;
  while (!queue_.empty() && queue_.top().at <= deadline) {
    RunOne();
    ++n;
  }
  if (now_ < deadline) now_ = deadline;
  return n;
}

bool EventLoop::RunOne() {
  if (queue_.empty()) return false;
  // priority_queue::top() is const; move out via const_cast is UB-adjacent,
  // so copy the callback handle instead (std::function copy is cheap enough
  // off the per-IO hot path, which batches completions).
  Event ev = queue_.top();
  queue_.pop();
  assert(ev.at >= now_);
  now_ = ev.at;
  ++events_run_;
  ev.fn();
  return true;
}

}  // namespace sdm
