// Named counters/gauges registry.
//
// Components expose operational counters (IOs issued, cache hits, bytes over
// the bus, ...) through a StatsRegistry owned by the enclosing system object
// — no global mutable state (Core Guidelines I.2). Counter handles are
// stable pointers, so hot paths pay one pointer bump per event.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace sdm {

/// Monotonic event counter.
class Counter {
 public:
  void Add(uint64_t delta = 1) { value_ += delta; }
  [[nodiscard]] uint64_t value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  uint64_t value_ = 0;
};

/// Instantaneous value (e.g. current queue depth).
class Gauge {
 public:
  void Set(double v) { value_ = v; }
  void Add(double delta) { value_ += delta; }
  [[nodiscard]] double value() const { return value_; }

 private:
  double value_ = 0;
};

/// Owns counters/gauges by name. Lookup is O(log n); intended to be done once
/// at construction of the component, not per event.
class StatsRegistry {
 public:
  StatsRegistry() = default;
  StatsRegistry(const StatsRegistry&) = delete;
  StatsRegistry& operator=(const StatsRegistry&) = delete;

  /// Returns the counter registered under `name`, creating it on first use.
  /// The returned pointer remains valid for the registry's lifetime.
  [[nodiscard]] Counter* GetCounter(const std::string& name);

  [[nodiscard]] Gauge* GetGauge(const std::string& name);

  /// Value of a counter, 0 if never registered (convenient in tests).
  [[nodiscard]] uint64_t CounterValue(const std::string& name) const;

  [[nodiscard]] double GaugeValue(const std::string& name) const;

  /// Snapshot of all counters, sorted by name.
  [[nodiscard]] std::vector<std::pair<std::string, uint64_t>> Counters() const;

  void ResetAll();

  /// Multi-line "name = value" dump for reports.
  [[nodiscard]] std::string ToString() const;

 private:
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
};

}  // namespace sdm
