#include "common/kv_format.h"

#include <cstdio>

namespace sdm {

void KvFormatter::AppendSeparator() {
  if (!out_.empty()) out_.push_back(' ');
}

KvFormatter& KvFormatter::Kv(const char* key, const char* fmt, ...) {
  AppendSeparator();
  out_.append(key);
  out_.push_back('=');
  char buf[128];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  out_.append(buf);
  return *this;
}

KvFormatter& KvFormatter::Raw(const std::string& token) {
  AppendSeparator();
  out_.append(token);
  return *this;
}

}  // namespace sdm
