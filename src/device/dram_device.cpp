#include "device/dram_device.h"

#include <cstring>

namespace sdm {

DramDevice::DramDevice(Bytes size, DeviceSpec spec) : spec_(std::move(spec)), store_(size, 0) {
  reads_ = stats_.GetCounter("reads");
  read_bytes_ = stats_.GetCounter("read_bytes");
  writes_ = stats_.GetCounter("writes");
}

Status DramDevice::Write(Bytes offset, std::span<const uint8_t> data) {
  if (offset + data.size() > store_.size()) {
    return OutOfRangeError("DRAM write beyond store");
  }
  std::memcpy(store_.data() + offset, data.data(), data.size());
  writes_->Add(1);
  return Status::Ok();
}

Result<SimDuration> DramDevice::Read(Bytes offset, std::span<uint8_t> dest) {
  if (offset + dest.size() > store_.size()) {
    return OutOfRangeError("DRAM read beyond store");
  }
  std::memcpy(dest.data(), store_.data() + offset, dest.size());
  reads_->Add(1);
  read_bytes_->Add(dest.size());
  return AccessLatency(dest.size());
}

Result<std::span<const uint8_t>> DramDevice::View(Bytes offset, Bytes length) const {
  if (offset + length > store_.size()) {
    return OutOfRangeError("DRAM view beyond store");
  }
  reads_->Add(1);
  read_bytes_->Add(length);
  return std::span<const uint8_t>(store_.data() + offset, length);
}

SimDuration DramDevice::AccessLatency(Bytes length) const {
  const double bw_term = static_cast<double>(length) / spec_.bus_bw_bytes_per_sec;
  return spec_.base_read_latency + Seconds(bw_term);
}

}  // namespace sdm
