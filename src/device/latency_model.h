// Loaded-latency model for simulated devices.
//
// Reproduces the load/latency behaviour of Fig. 3: per-device channels
// service IOs FIFO; queueing delay grows as offered IOPS approach the
// device ceiling; Nand additionally shows stochastic long-tail service
// times (GC / media retries) which dominate p99 under load.
//
// The model is intentionally closed-form and event-driven (no Monte Carlo
// convergence issues): an IO's completion time is derived from the earliest
// available channel plus its own service + bus-transfer time.
#pragma once

#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "device/device_spec.h"

namespace sdm {

class FaultInjector;

class LatencyModel {
 public:
  LatencyModel(const DeviceSpec& spec, uint64_t seed);

  /// Installs (or clears, with nullptr) a fault injector: active fail-slow
  /// windows multiply this model's service time. A null injector consumes
  /// no extra RNG and is byte-identical to today.
  void set_fault_injector(FaultInjector* injector, int device_index) {
    injector_ = injector;
    device_index_ = device_index;
  }

  /// Computes the completion time for a read arriving at `now` that moves
  /// `bus_bytes` over the device bus. Mutates internal channel bookkeeping,
  /// so calls must be made in non-decreasing `now` order (the EventLoop
  /// guarantees this).
  [[nodiscard]] SimTime CompleteRead(SimTime now, Bytes bus_bytes);

  /// Queueing delay the *next* arrival at `now` would see (for tests and for
  /// admission-control heuristics). Does not mutate state.
  [[nodiscard]] SimDuration EstimatedQueueDelay(SimTime now) const;

  /// Number of IOs currently queued or in service at time `now`.
  [[nodiscard]] int InFlight(SimTime now) const;

  /// Per-channel service duration at the natural granularity.
  [[nodiscard]] SimDuration ServiceTime() const { return service_time_; }

 private:
  DeviceSpec spec_;
  Rng rng_;
  FaultInjector* injector_ = nullptr;
  int device_index_ = -1;
  SimDuration service_time_;  // channels / max_iops
  // Earliest time each channel is free. Small fixed vector; min-scan is
  // cheap at the channel counts in Table 1 (<= 64).
  std::vector<SimTime> channel_free_at_;
};

}  // namespace sdm
