// Endurance (write wear) accounting for SM devices.
//
// Paper §3: endurance translates to a minimum model-update interval —
// UpdateInterval = 365 * ModelSize / (pDWPD * SMCapacity). The tracker
// records bytes written and answers "how often can this model be refreshed
// without exceeding the drive's DWPD rating".
#pragma once

#include <cstdint>

#include "common/types.h"

namespace sdm {

class WearTracker {
 public:
  /// `rated_capacity` is the device's nominal capacity; `dwpd` its rated
  /// Physical Drive Writes Per Day (<= 0 means unlimited endurance).
  WearTracker(Bytes rated_capacity, double dwpd)
      : rated_capacity_(rated_capacity), dwpd_(dwpd) {}

  void RecordWrite(Bytes bytes) { bytes_written_ += bytes; }

  [[nodiscard]] Bytes bytes_written() const { return bytes_written_; }

  /// Full-drive writes consumed so far.
  [[nodiscard]] double DriveWrites() const {
    return rated_capacity_ == 0
               ? 0.0
               : static_cast<double>(bytes_written_) / static_cast<double>(rated_capacity_);
  }

  /// Whether a workload writing `model_size` every `interval_minutes` stays
  /// within the DWPD rating.
  [[nodiscard]] bool SustainsUpdateInterval(Bytes model_size, double interval_minutes) const;

  /// Minimum update interval (minutes) the rating allows for a model of the
  /// given size. Returns 0 when endurance is unlimited.
  [[nodiscard]] double MinUpdateIntervalMinutes(Bytes model_size) const;

  /// Paper §3 formula verbatim: 365 * ModelSize / (pDWPD * SMCapacity) —
  /// update interval expressed in days assuming one update consumes
  /// ModelSize of writes and the drive budget is spread over a year.
  [[nodiscard]] double UpdateIntervalPaperFormulaDays(Bytes model_size) const;

  [[nodiscard]] double dwpd() const { return dwpd_; }
  [[nodiscard]] Bytes rated_capacity() const { return rated_capacity_; }

 private:
  Bytes rated_capacity_;
  double dwpd_;
  Bytes bytes_written_ = 0;
};

}  // namespace sdm
