#include "device/endurance.h"

namespace sdm {

bool WearTracker::SustainsUpdateInterval(Bytes model_size, double interval_minutes) const {
  if (dwpd_ <= 0) return true;
  if (interval_minutes <= 0) return false;
  const double updates_per_day = 1440.0 / interval_minutes;
  const double bytes_per_day = updates_per_day * static_cast<double>(model_size);
  const double budget_per_day = dwpd_ * static_cast<double>(rated_capacity_);
  return bytes_per_day <= budget_per_day;
}

double WearTracker::MinUpdateIntervalMinutes(Bytes model_size) const {
  if (dwpd_ <= 0) return 0.0;
  const double budget_per_day = dwpd_ * static_cast<double>(rated_capacity_);
  if (budget_per_day <= 0) return 0.0;
  const double updates_per_day = budget_per_day / static_cast<double>(model_size);
  return 1440.0 / updates_per_day;
}

double WearTracker::UpdateIntervalPaperFormulaDays(Bytes model_size) const {
  if (dwpd_ <= 0 || rated_capacity_ == 0) return 0.0;
  // Paper §3 writes "365 * ModelSize / (pDWPD * SMCapacity)": the DWPD
  // budget taken over a year and the interval read back in days, so the
  // 365s cancel — interval_days = ModelSize / (daily write budget).
  return static_cast<double>(model_size) / (dwpd_ * static_cast<double>(rated_capacity_));
}

}  // namespace sdm
