#include "device/latency_model.h"

#include <algorithm>
#include <cassert>

#include "fault/fault_injector.h"

namespace sdm {

LatencyModel::LatencyModel(const DeviceSpec& spec, uint64_t seed)
    : spec_(spec), rng_(seed) {
  assert(spec.max_read_iops > 0);
  assert(spec.channels >= 1);
  service_time_ =
      Seconds(static_cast<double>(spec.channels) / spec.max_read_iops);
  channel_free_at_.assign(static_cast<size_t>(spec.channels), SimTime(0));
}

SimTime LatencyModel::CompleteRead(SimTime now, Bytes bus_bytes) {
  // Pick the earliest-free channel (FIFO across the device).
  auto it = std::min_element(channel_free_at_.begin(), channel_free_at_.end());
  const SimTime start = std::max(*it, now);

  // Media service time. Transfers larger than the device's natural access
  // unit occupy the channel proportionally longer — this is why 4KB reads
  // cap a 512B-rated Optane at ~1/8th of its headline IOPS, and why
  // sub-block reads restore the full rate (§4.1.1).
  const Bytes unit = std::max<Bytes>(spec_.access_granularity, 1);
  const auto media_units = std::max<Bytes>(1, (bus_bytes + unit - 1) / unit);
  SimDuration service = service_time_ * static_cast<double>(media_units);
  if (spec_.tail_probability > 0 && rng_.NextBernoulli(spec_.tail_probability)) {
    service = service * spec_.tail_multiplier;
  }
  // Injected fail-slow (GC pause / thermal throttle) multiplies service
  // after the organic tail draw, so the device's own RNG stream is
  // untouched and fault-free runs stay byte-identical.
  if (injector_ != nullptr) {
    const double mult = injector_->ServiceMultiplier(device_index_);
    if (mult != 1.0) service = service * mult;
  }

  const SimTime channel_done = start + service;
  *it = channel_done;

  // Fixed pipeline latency (command issue, FTL, interconnect) applies once
  // per IO and overlaps channel occupancy of other IOs. Media service beyond
  // the base is already covered by service_time_, so take the max rather
  // than double-count.
  const SimDuration pipeline = std::max(SimDuration(0), spec_.base_read_latency - service_time_);

  // Bus transfer: proportional to bytes actually moved (this is where the
  // SGL bit-bucket sub-block read saves time, §4.1.1).
  const SimDuration bus =
      Seconds(static_cast<double>(bus_bytes) / spec_.bus_bw_bytes_per_sec);

  return channel_done + pipeline + bus;
}

SimDuration LatencyModel::EstimatedQueueDelay(SimTime now) const {
  const auto it = std::min_element(channel_free_at_.begin(), channel_free_at_.end());
  return *it > now ? *it - now : SimDuration(0);
}

int LatencyModel::InFlight(SimTime now) const {
  int n = 0;
  for (const SimTime t : channel_free_at_) {
    if (t > now) ++n;
  }
  return n;
}

}  // namespace sdm
