// FM-tier (DRAM) byte store.
//
// Tables placed directly in fast memory and the software cache's storage
// both live here. Access is synchronous from the simulator's point of view;
// the (tiny) access latency is returned so callers can account CPU time.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/result.h"
#include "common/stats.h"
#include "common/types.h"
#include "device/device_spec.h"

namespace sdm {

class DramDevice {
 public:
  explicit DramDevice(Bytes size, DeviceSpec spec = MakeDramSpec());

  DramDevice(const DramDevice&) = delete;
  DramDevice& operator=(const DramDevice&) = delete;

  [[nodiscard]] Bytes size() const { return store_.size(); }
  [[nodiscard]] const DeviceSpec& spec() const { return spec_; }

  /// Copies `data` into the store.
  Status Write(Bytes offset, std::span<const uint8_t> data);

  /// Copies from the store into `dest`; returns the modeled access latency.
  Result<SimDuration> Read(Bytes offset, std::span<uint8_t> dest);

  /// Zero-copy view of a range (valid until the next Write to it). The
  /// modeled latency is the same as Read's; callers on the simulated path
  /// should account it.
  [[nodiscard]] Result<std::span<const uint8_t>> View(Bytes offset, Bytes length) const;

  /// Latency model: base cacheline latency plus bandwidth term.
  [[nodiscard]] SimDuration AccessLatency(Bytes length) const;

  [[nodiscard]] const StatsRegistry& stats() const { return stats_; }

 private:
  DeviceSpec spec_;
  std::vector<uint8_t> store_;
  StatsRegistry stats_;
  Counter* reads_ = nullptr;
  Counter* read_bytes_ = nullptr;
  Counter* writes_ = nullptr;
};

}  // namespace sdm
