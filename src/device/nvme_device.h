// Simulated NVMe block device.
//
// Holds *real bytes* in a backing store (so the embedding data path is
// bit-exact end to end) while read latency is produced by the calibrated
// LatencyModel in virtual time on an EventLoop.
//
// Two read paths, matching paper §4.1.1:
//  - Block reads: the host receives every 4KB block overlapping the request;
//    bus traffic is block-rounded (read amplification) and the caller must
//    memcpy the useful sub-range out of the bounce buffer.
//  - Sub-block (SGL bit-bucket) reads: only the DWORD-rounded byte range
//    crosses the bus and lands directly in the caller's buffer.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/event_loop.h"
#include "common/histogram.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/stats.h"
#include "device/device_spec.h"
#include "device/endurance.h"
#include "device/latency_model.h"

namespace sdm {

class FaultInjector;

class NvmeDevice {
 public:
  /// `backing_size` is the actual allocated store (experiments run scaled
  /// down; the spec's nominal capacity is used for cost/endurance math).
  NvmeDevice(DeviceSpec spec, Bytes backing_size, EventLoop* loop, uint64_t seed);

  NvmeDevice(const NvmeDevice&) = delete;
  NvmeDevice& operator=(const NvmeDevice&) = delete;

  [[nodiscard]] const DeviceSpec& spec() const { return spec_; }
  [[nodiscard]] Bytes backing_size() const { return store_.size(); }

  // -- Write path (model load / update) -------------------------------------

  /// Synchronously writes `data` at `offset` into the backing store and
  /// charges wear. Returns the virtual time the transfer occupies (callers
  /// schedule it if they care about update duration).
  Result<SimDuration> Write(Bytes offset, std::span<const uint8_t> data);

  // -- Read path -------------------------------------------------------------

  struct ReadRequest {
    Bytes offset = 0;  ///< Logical byte offset of the useful data.
    Bytes length = 0;  ///< Useful bytes wanted by the application.
    /// Use the SGL bit-bucket sub-block path (requires spec support).
    bool sub_block = false;
    /// Destination. Must hold exactly BusBytes(offset, length, sub_block).
    /// For block reads, data lands block-aligned: the useful range begins at
    /// `offset % kBlockSize` within dest. For sub-block reads it begins at
    /// `offset % kDwordBytes` (0 for the DWORD-aligned rows the embedding
    /// layout guarantees).
    std::span<uint8_t> dest;
    /// Completion callback, invoked on the event loop at completion time
    /// with the device-observed latency of this IO.
    std::function<void(Status, SimDuration)> on_complete;
  };

  /// Number of bytes that will cross the bus for a request. Block path:
  /// whole blocks spanning the range. Sub-block path: DWORD-rounded range.
  [[nodiscard]] static Bytes BusBytes(Bytes offset, Bytes length, bool sub_block);

  /// Submits an asynchronous read. Validation failures surface through the
  /// callback (scheduled immediately) so callers have one error path.
  void SubmitRead(ReadRequest req);

  /// Enables per-4KB-block checksums (TuningConfig::enable_checksums):
  /// every backing block gets a CRC stamped at (re)write time, and every
  /// BLOCK-path read verifies its payload after the DMA copy — i.e. at
  /// bounce-buffer fill, after any bit-rot window mutated it. A mismatch
  /// completes the read with kDataLoss (transient: the backing media is
  /// intact, so retries redraw the corruption) instead of serving garbage.
  /// Sub-block (SGL) payloads are not block-shaped and stay unverified.
  /// Off (the default) leaves reads byte-identical: verification of a
  /// clean payload has no timing or RNG footprint either way.
  void set_checksums(bool enabled);
  [[nodiscard]] bool checksums() const { return !block_crc_.empty(); }

  /// Direct view of the backing store for OFFLINE copies — replication
  /// staging and refresh-time FM migration read source bytes here instead
  /// of modeling serving-path IO (the same convention as load-time writes,
  /// which are offline too). Never used on the serving path.
  [[nodiscard]] std::span<const uint8_t> backing() const { return store_; }

  /// Installs (or clears, with nullptr) a scripted fault injector
  /// (src/fault): error-burst windows fail reads at completion time, stall
  /// windows defer completions, fail-slow windows stretch service time
  /// (via the LatencyModel hook, installed here too). The injector draws
  /// from its OWN Rng, so a null injector — or one with an empty plan —
  /// leaves every device RNG stream and completion byte-identical.
  void set_fault_injector(FaultInjector* injector, int device_index) {
    injector_ = injector;
    device_index_ = device_index;
    latency_.set_fault_injector(injector, device_index);
  }

  // -- Introspection ----------------------------------------------------------

  [[nodiscard]] const StatsRegistry& stats() const { return stats_; }
  [[nodiscard]] StatsRegistry& stats() { return stats_; }
  [[nodiscard]] const Histogram& read_latency() const { return read_latency_; }
  [[nodiscard]] const WearTracker& wear() const { return wear_; }
  [[nodiscard]] LatencyModel& latency_model() { return latency_; }

  /// bus bytes / useful bytes over the device lifetime (>= 1).
  [[nodiscard]] double ReadAmplification() const;

 private:
  DeviceSpec spec_;
  EventLoop* loop_;
  LatencyModel latency_;
  WearTracker wear_;
  Rng fault_rng_;
  FaultInjector* injector_ = nullptr;
  int device_index_ = -1;
  std::vector<uint8_t> store_;
  /// Per-4KB-block CRCs over the backing store; empty = checksums off.
  /// A partial tail block (backing not block-multiple) stays unstamped.
  std::vector<uint32_t> block_crc_;
  StatsRegistry stats_;
  Histogram read_latency_;

  Counter* reads_ = nullptr;
  Counter* read_errors_ = nullptr;
  Counter* bus_bytes_ = nullptr;
  Counter* useful_bytes_ = nullptr;
  Counter* sub_block_reads_ = nullptr;
  Counter* writes_ = nullptr;
  Counter* written_bytes_ = nullptr;
  Counter* checksum_failed_reads_ = nullptr;
  Counter* blocks_corrupt_ = nullptr;
};

}  // namespace sdm
