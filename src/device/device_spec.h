// Device technology catalog (paper Table 1).
//
// Each SM technology option is described by a DeviceSpec: IOPS ceiling,
// unloaded latency, access granularity, endurance, relative cost and power.
// The numbers mirror Table 1 of the paper (public figures for PCIe Nand
// Flash, PCIe 3DXP "Optane", ZSSD, DIMM 3DXP, CXL 3DXP) plus a DRAM entry
// used for the FM tier and for cost/power comparisons.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace sdm {

enum class Technology : uint8_t {
  kDram,
  kNandFlash,   // PCIe Nand Flash SSD
  kOptaneSsd,   // PCIe 3DXP (Optane) SSD
  kZssd,        // PCIe ZSSD (low-latency SLC-ish Nand)
  kDimmOptane,  // DIMM 3DXP (memory bus attached)
  kCxlOptane,   // CXL-attached 3DXP
};

[[nodiscard]] const char* ToString(Technology t);

/// Vendor availability (paper Table 1 "Sourcing" column).
enum class Sourcing : uint8_t { kSingle, kMulti };

struct DeviceSpec {
  Technology technology = Technology::kNandFlash;
  std::string name;

  /// Usable capacity of one device.
  Bytes capacity = 0;

  /// Random-read IOPS ceiling for the device's natural access granularity.
  double max_read_iops = 0;

  /// Unloaded (QD~1) read latency.
  SimDuration base_read_latency;

  /// Internal parallelism: number of IOs the device services concurrently.
  /// max_read_iops / channels gives the per-channel service time.
  int channels = 1;

  /// Smallest unit the device transfers over the bus without the SGL
  /// bit-bucket extension (4KB for block devices, 64B for memory-like).
  Bytes access_granularity = kBlockSize;

  /// Whether the NVMe SGL bit-bucket sub-block read extension is available
  /// (paper §4.1.1; requires the patched kernel + driver path).
  bool supports_sub_block = false;

  /// Sequential write bandwidth (model update path).
  double write_bw_bytes_per_sec = 0;

  /// Rated endurance in Physical Drive Writes Per Day. <= 0 means
  /// effectively unlimited (DRAM, 3DXP DIMM/CXL).
  double endurance_dwpd = 0;

  /// Cost per GB relative to DDR4 DRAM (Table 1 "Cost" column; DRAM = 1).
  double cost_per_gb_rel_dram = 1.0;

  /// Active power per device, normalized to a 64GB DDR4 DIMM == 1.0.
  double power_rel_dimm = 1.0;

  /// Bus bandwidth device->host (PCIe lanes for SSDs).
  double bus_bw_bytes_per_sec = 0;

  /// Long-tail behaviour: probability that a read hits a slow internal path
  /// (GC, media retry) and the latency multiplier applied when it does.
  /// Nand flash has a pronounced tail (paper §5.1 observes p99 spikes).
  double tail_probability = 0;
  double tail_multiplier = 1.0;

  /// Fault injection: probability a read completes with an UNAVAILABLE
  /// error (uncorrectable media / transport fault). 0 for healthy devices;
  /// tests and failure-injection benches raise it.
  double read_error_probability = 0;

  Sourcing sourcing = Sourcing::kSingle;

  [[nodiscard]] std::string Describe() const;
};

/// Factory functions for Table 1 rows. `capacity` defaults to the sizes the
/// paper deploys (Table 7), scaled by `scale` for laptop-sized runs.
[[nodiscard]] DeviceSpec MakeNandFlashSpec(Bytes capacity = 2000 * kGiB);
[[nodiscard]] DeviceSpec MakeOptaneSsdSpec(Bytes capacity = 400 * kGiB);
[[nodiscard]] DeviceSpec MakeZssdSpec(Bytes capacity = 800 * kGiB);
[[nodiscard]] DeviceSpec MakeDimmOptaneSpec(Bytes capacity = 512 * kGiB);
[[nodiscard]] DeviceSpec MakeCxlOptaneSpec(Bytes capacity = 1024 * kGiB);
[[nodiscard]] DeviceSpec MakeDramSpec(Bytes capacity = 64 * kGiB);

/// All Table 1 rows in paper order (for the Table 1 reproduction bench).
[[nodiscard]] std::vector<DeviceSpec> Table1Specs();

}  // namespace sdm
