#include "device/device_spec.h"

#include <cstdio>

namespace sdm {

const char* ToString(Technology t) {
  switch (t) {
    case Technology::kDram: return "DRAM";
    case Technology::kNandFlash: return "PCIe Nand Flash";
    case Technology::kOptaneSsd: return "PCIe 3DXP (Optane)";
    case Technology::kZssd: return "PCIe ZSSD";
    case Technology::kDimmOptane: return "DIMM 3DXP (Optane)";
    case Technology::kCxlOptane: return "CXL 3DXP";
  }
  return "unknown";
}

std::string DeviceSpec::Describe() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%-20s iops=%.1fM lat=%.1fus gran=%lluB cost=%.3f dwpd=%.0f",
                ToString(technology), max_read_iops / 1e6, base_read_latency.micros(),
                static_cast<unsigned long long>(access_granularity), cost_per_gb_rel_dram,
                endurance_dwpd);
  return buf;
}

DeviceSpec MakeNandFlashSpec(Bytes capacity) {
  DeviceSpec s;
  s.technology = Technology::kNandFlash;
  s.name = "nand";
  s.capacity = capacity;
  s.max_read_iops = 500'000;            // Table 1: 0.5M
  s.base_read_latency = Micros(90);     // Table 1: O(100)us
  s.channels = 48;                      // 48 / 0.5M = 96us per-channel service
  s.access_granularity = kBlockSize;    // 4K
  s.supports_sub_block = true;          // with patched kernel/driver (§4.1.1)
  s.write_bw_bytes_per_sec = 2.0e9;
  s.endurance_dwpd = 5;
  s.cost_per_gb_rel_dram = 1.0 / 30.0;
  s.power_rel_dimm = 1.2;               // ~12W device vs ~10W 64GB DIMM
  s.bus_bw_bytes_per_sec = 3.2e9;       // PCIe3 x4
  s.tail_probability = 0.02;            // GC / media retries: long p99 tail
  s.tail_multiplier = 8.0;
  s.sourcing = Sourcing::kMulti;
  return s;
}

DeviceSpec MakeOptaneSsdSpec(Bytes capacity) {
  DeviceSpec s;
  s.technology = Technology::kOptaneSsd;
  s.name = "optane";
  s.capacity = capacity;
  s.max_read_iops = 4'000'000;          // Table 1: 4M @ 512B
  s.base_read_latency = Micros(10);     // Table 1: O(10)us
  s.channels = 40;                      // 40 / 4M = 10us per-channel service
  s.access_granularity = 512;
  s.supports_sub_block = true;
  s.write_bw_bytes_per_sec = 2.2e9;
  s.endurance_dwpd = 100;
  s.cost_per_gb_rel_dram = 1.0 / 5.0;
  s.power_rel_dimm = 1.4;
  s.bus_bw_bytes_per_sec = 6.4e9;       // PCIe4 x4-ish
  s.tail_probability = 0.001;           // 3DXP has no GC; tail is tiny
  s.tail_multiplier = 2.0;
  s.sourcing = Sourcing::kSingle;
  return s;
}

DeviceSpec MakeZssdSpec(Bytes capacity) {
  DeviceSpec s;
  s.technology = Technology::kZssd;
  s.name = "zssd";
  s.capacity = capacity;
  s.max_read_iops = 1'000'000;          // Table 1: 1M
  s.base_read_latency = Micros(60);     // Table 1: O(100)us, better than Nand
  s.channels = 64;
  s.access_granularity = kBlockSize;
  s.supports_sub_block = true;
  s.write_bw_bytes_per_sec = 2.0e9;
  s.endurance_dwpd = 5;
  s.cost_per_gb_rel_dram = 1.0 / 10.0;
  s.power_rel_dimm = 1.2;
  s.bus_bw_bytes_per_sec = 3.2e9;
  s.tail_probability = 0.01;
  s.tail_multiplier = 5.0;
  s.sourcing = Sourcing::kSingle;
  return s;
}

DeviceSpec MakeDimmOptaneSpec(Bytes capacity) {
  DeviceSpec s;
  s.technology = Technology::kDimmOptane;
  s.name = "dimm3dxp";
  s.capacity = capacity;
  s.max_read_iops = 40'000'000;         // memory-bus attached; latency-bound
  s.base_read_latency = Nanos(300);     // Table 1: O(0.1)us
  s.channels = 16;
  s.access_granularity = 64;            // cacheline
  s.supports_sub_block = true;          // byte-addressable: fine-grained reads
                                        // are native (no SGL patch needed)
  s.write_bw_bytes_per_sec = 2.0e9;
  s.endurance_dwpd = 0;                 // not a limiter
  s.cost_per_gb_rel_dram = 1.0 / 3.0;
  s.power_rel_dimm = 1.5;
  s.bus_bw_bytes_per_sec = 8.0e9;
  s.tail_probability = 0;
  s.tail_multiplier = 1;
  s.sourcing = Sourcing::kSingle;
  return s;
}

DeviceSpec MakeCxlOptaneSpec(Bytes capacity) {
  DeviceSpec s;
  s.technology = Technology::kCxlOptane;
  s.name = "cxl3dxp";
  s.capacity = capacity;
  s.max_read_iops = 12'000'000;         // Table 1: >10M
  s.base_read_latency = Nanos(500);     // Table 1: O(0.5)us
  s.channels = 12;
  s.access_granularity = 64;            // Table 1: 64-128B
  s.supports_sub_block = true;          // byte-addressable over CXL
  s.write_bw_bytes_per_sec = 8.0e9;
  s.endurance_dwpd = 0;
  s.cost_per_gb_rel_dram = 1.0 / 4.0;   // not public; between DIMM and SSD
  s.power_rel_dimm = 1.5;
  s.bus_bw_bytes_per_sec = 32.0e9;      // CXL x8
  s.tail_probability = 0;
  s.tail_multiplier = 1;
  s.sourcing = Sourcing::kSingle;
  return s;
}

DeviceSpec MakeDramSpec(Bytes capacity) {
  DeviceSpec s;
  s.technology = Technology::kDram;
  s.name = "dram";
  s.capacity = capacity;
  s.max_read_iops = 400'000'000;        // effectively unbounded for our use
  s.base_read_latency = Nanos(100);
  s.channels = 64;
  s.access_granularity = 64;
  s.supports_sub_block = false;
  s.write_bw_bytes_per_sec = 20.0e9;
  s.endurance_dwpd = 0;
  s.cost_per_gb_rel_dram = 1.0;
  s.power_rel_dimm = 1.0;
  s.bus_bw_bytes_per_sec = 100.0e9;
  s.tail_probability = 0;
  s.tail_multiplier = 1;
  s.sourcing = Sourcing::kMulti;
  return s;
}

std::vector<DeviceSpec> Table1Specs() {
  return {MakeNandFlashSpec(), MakeOptaneSsdSpec(), MakeZssdSpec(), MakeDimmOptaneSpec(),
          MakeCxlOptaneSpec()};
}

}  // namespace sdm
